package eventcap_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// parallelSweep is the representative workload behind the speedup
// numbers: a 16-point sweep of independent simulations, the same shape
// every experiment driver fans through parallel.Map. Simulation (not
// policy computation) dominates, so no caching blurs the measurement.
func parallelSweep(workers int) ([]float64, error) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFICached(d, 0.5, p)
	if err != nil {
		return nil, err
	}
	return parallel.Map(workers, 16, func(i int) (float64, error) {
		res, err := sim.Run(sim.Config{
			Dist:   d,
			Params: p,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.5, 1)
				return r
			},
			NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy} },
			BatteryCap: 1000,
			Slots:      200_000,
			Seed:       uint64(i + 1),
		})
		if err != nil {
			return 0, err
		}
		return res.QoM, nil
	})
}

func benchParallelSweep(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := parallelSweep(workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup compares the sweep at one worker against the
// full pool; the ratio of the two ns/op figures is the engine's speedup
// on this machine.
func BenchmarkParallelSpeedup(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchParallelSweep(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.NumCPU()), func(b *testing.B) {
		benchParallelSweep(b, 0)
	})
}

// TestEmitBenchParallelJSON measures the sequential and pooled sweep and
// writes BENCH_parallel.json (machine-readable speedup record). Gated by
// BENCH_PARALLEL_JSON=<path> so normal test runs stay fast:
//
//	BENCH_PARALLEL_JSON=BENCH_parallel.json go test -run TestEmitBenchParallelJSON .
func TestEmitBenchParallelJSON(t *testing.T) {
	path := os.Getenv("BENCH_PARALLEL_JSON")
	if path == "" {
		t.Skip("set BENCH_PARALLEL_JSON=<path> to emit the benchmark record")
	}
	seq := testing.Benchmark(func(b *testing.B) { benchParallelSweep(b, 1) })
	par := testing.Benchmark(func(b *testing.B) { benchParallelSweep(b, 0) })
	rec := struct {
		Benchmark                   string  `json:"benchmark"`
		CPUs                        int     `json:"cpus"`
		Jobs                        int     `json:"jobs"`
		SlotsPerJob                 int64   `json:"slots_per_job"`
		SequentialNs                int64   `json:"sequential_ns_per_op"`
		ParallelNs                  int64   `json:"parallel_ns_per_op"`
		Speedup                     float64 `json:"speedup"`
		GoMaxProcs                  int     `json:"gomaxprocs"`
		GoVersion                   string  `json:"go_version"`
		DeterministicByConstruction bool    `json:"deterministic_by_construction"`
	}{
		Benchmark:                   "BenchmarkParallelSpeedup",
		CPUs:                        runtime.NumCPU(),
		Jobs:                        16,
		SlotsPerJob:                 200_000,
		SequentialNs:                seq.NsPerOp(),
		ParallelNs:                  par.NsPerOp(),
		Speedup:                     float64(seq.NsPerOp()) / float64(par.NsPerOp()),
		GoMaxProcs:                  runtime.GOMAXPROCS(0),
		GoVersion:                   runtime.Version(),
		DeterministicByConstruction: true,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential %v, parallel %v, speedup %.2fx on %d CPUs",
		seq.NsPerOp(), par.NsPerOp(), rec.Speedup, rec.CPUs)
}
