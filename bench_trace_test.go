package eventcap_test

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/sim"
	"eventcap/internal/trace"
)

// traceMode selects what benchTrace attaches to the run.
type traceMode int

const (
	traceOff    traceMode = iota // no tracer
	traceFlight                  // flight recorder only (the leave-on mode)
	traceFull                    // full-trace writer to io.Discard
)

// benchTrace measures one engine's slot loop with the given tracing
// mode, on the same sparse-activation configuration as BENCH_obs (so
// the three benchmark records stay comparable). The flight recorder is
// created outside the timed loop, matching production usage where one
// recorder outlives a whole sweep.
func benchTrace(b *testing.B, engine sim.Engine, mode traceMode) {
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	var flight *trace.FlightRecorder
	switch mode {
	case traceFlight:
		flight = trace.NewFlightRecorder(256)
		cfg.Tracer = trace.New(nil, flight)
	case traceFull:
		cfg.Tracer = trace.New(trace.NewWriter(io.Discard), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
	}
}

// BenchmarkTraceOverhead quantifies the cost of the tracing subsystem
// on both engines (slots/op is 1e6). The flight recorder is the mode
// with a budget — it is designed to be left on — while the full-trace
// writer is informational: it serializes every decided slot and is
// priced per debugging session, not per production run.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("reference/trace=off", func(b *testing.B) { benchTrace(b, sim.EngineReference, traceOff) })
	b.Run("reference/flight", func(b *testing.B) { benchTrace(b, sim.EngineReference, traceFlight) })
	b.Run("reference/full", func(b *testing.B) { benchTrace(b, sim.EngineReference, traceFull) })
	b.Run("kernel/trace=off", func(b *testing.B) { benchTrace(b, sim.EngineKernel, traceOff) })
	b.Run("kernel/flight", func(b *testing.B) { benchTrace(b, sim.EngineKernel, traceFlight) })
	b.Run("kernel/full", func(b *testing.B) { benchTrace(b, sim.EngineKernel, traceFull) })
}

// TestTraceOverheadWithinBudget enforces the ≤2% flight-recorder budget
// (the recorder must be cheap enough to leave on) with the
// median-of-interleaved-rounds methodology of bench_rounds_test.go.
//
// The budget applies to the reference engine's slot loop — the same
// denominator TestObsOverheadWithinBudget gates the metrics against.
// The kernel's armed-recorder number is recorded informationally, like
// the full trace, because the comparison is structurally different:
// the recorder costs a fixed few ns per recorded slot (RecordSlot's
// direct ring fill), and the kernel spends only ~7 ns/slot *in total*
// by fast-forwarding sleep runs, so any nonzero per-record cost is a
// near-double-digit percentage of an engine that is itself ~5× faster
// than the budget's denominator. In absolute terms the armed kernel
// adds under 1 ms per 10^6 slots and stays >4× the untraced reference
// throughput; gating that percentage at 2% would demand a
// sub-nanosecond ring store. Gated like the other benchmark records:
//
//	BENCH_TRACE_JSON=BENCH_trace.json go test -run TestTraceOverheadWithinBudget .
func TestTraceOverheadWithinBudget(t *testing.T) {
	path := os.Getenv("BENCH_TRACE_JSON")
	if path == "" {
		t.Skip("set BENCH_TRACE_JSON=<path> to measure overhead and emit the benchmark record")
	}
	const rounds = 5
	const budgetPct = 2.0
	refFlight := measureOverhead(rounds,
		func(b *testing.B) { benchTrace(b, sim.EngineReference, traceOff) },
		func(b *testing.B) { benchTrace(b, sim.EngineReference, traceFlight) })
	kerFlight := measureOverhead(rounds,
		func(b *testing.B) { benchTrace(b, sim.EngineKernel, traceOff) },
		func(b *testing.B) { benchTrace(b, sim.EngineKernel, traceFlight) })
	refFull := measureOverhead(rounds,
		func(b *testing.B) { benchTrace(b, sim.EngineReference, traceOff) },
		func(b *testing.B) { benchTrace(b, sim.EngineReference, traceFull) })
	if !refFlight.withinBudget(budgetPct) {
		t.Errorf("reference engine flight-recorder overhead %.2f%% exceeds %.0f%% budget + %.2f%% noise floor (%d → %d ns/op)",
			refFlight.MedianOverheadPct, budgetPct, refFlight.NoiseFloorPct,
			refFlight.MedianOffNsPerOp, refFlight.MedianOnNsPerOp)
	}
	// Informational sanity bound, not the budget: the armed kernel must
	// keep a clear majority of its fast-forward advantage over the
	// untraced reference (see the doc comment for why a percentage gate
	// is the wrong shape here).
	if kerFlight.MedianOnNsPerOp*2 >= refFlight.MedianOffNsPerOp {
		t.Errorf("kernel with flight recorder (%d ns/op) lost its fast-forward advantage over the untraced reference (%d ns/op)",
			kerFlight.MedianOnNsPerOp, refFlight.MedianOffNsPerOp)
	}
	rec := struct {
		Benchmark       string              `json:"benchmark"`
		Config          string              `json:"config"`
		SlotsPerOp      int64               `json:"slots_per_op"`
		BudgetPct       float64             `json:"budget_pct"`
		Rounds          int                 `json:"rounds"`
		ReferenceFlight overheadMeasurement `json:"reference_flight"`
		KernelFlight    overheadMeasurement `json:"kernel_flight_informational"`
		ReferenceFull   overheadMeasurement `json:"reference_full_informational"`
		GoMaxProcs      int                 `json:"gomaxprocs"`
		GoVersion       string              `json:"go_version"`
	}{
		Benchmark:       "BenchmarkTraceOverhead",
		Config:          "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp:      1_000_000,
		BudgetPct:       budgetPct,
		Rounds:          rounds,
		ReferenceFlight: refFlight,
		KernelFlight:    kerFlight,
		ReferenceFull:   refFull,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		GoVersion:       runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("flight overhead: reference median %.2f%% (noise %.2f%%), kernel median %.2f%% (noise %.2f%%); full trace %.2f%%",
		refFlight.MedianOverheadPct, refFlight.NoiseFloorPct,
		kerFlight.MedianOverheadPct, kerFlight.NoiseFloorPct, refFull.MedianOverheadPct)
}
