package eventcap_test

import (
	"encoding/json"
	"math"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/renewal"
	"eventcap/internal/sim"
	"eventcap/internal/stats"
)

// TestPipelineComputeShipSimulate is the full deployment story: the base
// station optimizes a policy, serializes it, a "node" deserializes it and
// runs it; measured QoM matches the analytic prediction within a
// batch-means confidence interval.
func TestPipelineComputeShipSimulate(t *testing.T) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	const e = 0.5

	pi, err := core.OptimizeClustering(d, e, p, core.ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(pi.Policy)
	if err != nil {
		t.Fatal(err)
	}
	var node core.ClusteringPolicy
	if err := json.Unmarshal(wire, &node); err != nil {
		t.Fatal(err)
	}

	// Run several independent replications and bracket the analytic U.
	var qoms []float64
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := sim.Run(sim.Config{
			Dist:   d,
			Params: p,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.5, 1)
				return r
			},
			NewPolicy:  func(int) sim.Policy { return &sim.VectorPI{Vector: node.Vector()} },
			BatteryCap: 1000,
			Slots:      400_000,
			Seed:       seed,
			Info:       sim.PartialInfo,
		})
		if err != nil {
			t.Fatal(err)
		}
		qoms = append(qoms, res.QoM)
	}
	iv, err := stats.MeanCI(qoms, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Allow for the small finite-K bias below the analytic bound.
	if iv.Lo > pi.CaptureProb || iv.Hi < pi.CaptureProb-0.03 {
		t.Fatalf("CI [%v, %v] inconsistent with analytic U %v", iv.Lo, iv.Hi, pi.CaptureProb)
	}
}

// TestCrossPackageHazardConsistency ties three independent computations
// of the same quantity together: the distribution's hazard, the renewal
// process's residual hazard after unobserved slots, and the belief
// filter's prediction.
func TestCrossPackageHazardConsistency(t *testing.T) {
	d, err := dist.NewEmpirical([]float64{0.1, 0.4, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := dist.Tabulate(d, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := renewal.New(tab.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	filter := core.NewBeliefFilter(d)
	for step := 0; step < 40; step++ {
		fromRenewal := proc.Mass(step + 1)
		fromFilter := filter.EventProb()
		if math.Abs(fromRenewal-fromFilter) > 1e-9 {
			t.Fatalf("step %d: renewal %v vs filter %v", step, fromRenewal, fromFilter)
		}
		filter.AdvanceNoCapture(0)
	}
}

// TestFullVsPartialInformationOrdering: with everything else equal, more
// information can only help — measured end to end through the simulator.
func TestFullVsPartialInformationOrdering(t *testing.T) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	const e = 0.4

	fi, err := core.GreedyFI(d, e, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := core.OptimizeClustering(d, e, p, core.ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(info sim.Info, vec core.Vector) float64 {
		var mk func(int) sim.Policy
		if info == sim.FullInfo {
			mk = func(int) sim.Policy { return &sim.VectorFI{Vector: vec} }
		} else {
			mk = func(int) sim.Policy { return &sim.VectorPI{Vector: vec} }
		}
		res, err := sim.Run(sim.Config{
			Dist:   d,
			Params: p,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.5, e/0.5)
				return r
			},
			NewPolicy:  mk,
			BatteryCap: 1000,
			Slots:      800_000,
			Seed:       3,
			Info:       info,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoM
	}
	full := run(sim.FullInfo, fi.Policy)
	partial := run(sim.PartialInfo, pi.Vector)
	if partial > full+0.02 {
		t.Fatalf("partial information (%v) beat full information (%v)", partial, full)
	}
}
