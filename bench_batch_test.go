package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/sim"
)

// batchBenchConfig is the batch-engine benchmark workload: the same
// sparse-activation configuration as kernelBenchConfig, run as B
// independent replications of a short horizon. Short per-replication
// horizons are the regime the batch engine targets (replication studies
// and confidence-interval sweeps), and the regime where per-run setup —
// policy compilation, recharge fast-forward tables — dominates a
// sequential loop of sim.Run calls.
func batchBenchConfig(b testing.TB, engine sim.Engine, slots int64, batch int, seed uint64) sim.Config {
	b.Helper()
	cfg := kernelBenchConfig(b, engine, slots, seed)
	cfg.Batch = batch
	return cfg
}

const (
	batchBenchReps  = 10_000 // B: replications per op (the ISSUE floor for the gate)
	batchBenchSlots = 10_000 // T: slots per replication
	batchMinSpeedup = 5.0    // gate: batch engine vs B sequential kernel runs
)

// benchBatch times one aggregate op — B replications of T slots — on
// the given engine. EngineBatch exercises the batch engine proper;
// EngineKernel forces the sequential fallback (B independent kernel
// runs at consecutive seeds), which is exactly the baseline the batch
// engine replaces, producing equal-in-law aggregates on the same seeds.
func benchBatch(b *testing.B, engine sim.Engine) {
	cfg := batchBenchConfig(b, engine, batchBenchSlots, batchBenchReps, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
	}
}

// BenchmarkBatchSlotsPerOp measures the batch engine on B=10^4
// replications of T=10^4 slots (slots/op is B*T = 1e8).
func BenchmarkBatchSlotsPerOp(b *testing.B) { benchBatch(b, sim.EngineBatch) }

// BenchmarkBatchSequentialSlotsPerOp is the sequential baseline: the
// same B replications as B independent kernel runs.
func BenchmarkBatchSequentialSlotsPerOp(b *testing.B) { benchBatch(b, sim.EngineKernel) }

// speedupRound is one interleaved sequential/batch measurement pair.
type speedupRound struct {
	SequentialNsPerOp int64   `json:"sequential_ns_per_op"`
	BatchNsPerOp      int64   `json:"batch_ns_per_op"`
	Speedup           float64 `json:"speedup"`
}

// speedupMeasurement mirrors overheadMeasurement for a speedup claim:
// the per-round pairing cancels machine drift, the median resists a
// single disturbed round, and the noise floor (spread of the baseline
// side as a percentage of its median) bounds how much of the claim
// could be wobble. A gate on "speedup >= S" therefore allows the
// median to undershoot by the noise floor.
type speedupMeasurement struct {
	Rounds                  []speedupRound `json:"rounds"`
	MedianSequentialNsPerOp int64          `json:"median_sequential_ns_per_op"`
	MedianBatchNsPerOp      int64          `json:"median_batch_ns_per_op"`
	MedianSpeedup           float64        `json:"median_speedup"`
	NoiseFloorPct           float64        `json:"noise_floor_pct"`
}

// summarizeSpeedupRounds computes the measurement record from raw
// rounds (split out so the math is unit-testable without benchmarks).
func summarizeSpeedupRounds(rounds []speedupRound) speedupMeasurement {
	m := speedupMeasurement{Rounds: rounds}
	seqs := make([]int64, len(rounds))
	batches := make([]int64, len(rounds))
	sps := make([]float64, len(rounds))
	minSeq, maxSeq := rounds[0].SequentialNsPerOp, rounds[0].SequentialNsPerOp
	for i, r := range rounds {
		seqs[i], batches[i], sps[i] = r.SequentialNsPerOp, r.BatchNsPerOp, r.Speedup
		if r.SequentialNsPerOp < minSeq {
			minSeq = r.SequentialNsPerOp
		}
		if r.SequentialNsPerOp > maxSeq {
			maxSeq = r.SequentialNsPerOp
		}
	}
	m.MedianSequentialNsPerOp = medianInt64(seqs)
	m.MedianBatchNsPerOp = medianInt64(batches)
	m.MedianSpeedup = medianFloat(sps)
	m.NoiseFloorPct = 100 * float64(maxSeq-minSeq) / float64(m.MedianSequentialNsPerOp)
	return m
}

// measureSpeedup runs the sequential/batch pair for the given number of
// interleaved rounds (>=3 enforced) and summarizes them.
func measureSpeedup(rounds int, sequential, batch func(b *testing.B)) speedupMeasurement {
	if rounds < 3 {
		rounds = 3
	}
	rs := make([]speedupRound, rounds)
	for i := range rs {
		seqRes := testing.Benchmark(sequential)
		batchRes := testing.Benchmark(batch)
		rs[i] = speedupRound{
			SequentialNsPerOp: seqRes.NsPerOp(),
			BatchNsPerOp:      batchRes.NsPerOp(),
			Speedup:           float64(seqRes.NsPerOp()) / float64(batchRes.NsPerOp()),
		}
	}
	return summarizeSpeedupRounds(rs)
}

// meetsSpeedup is the gate: the median speedup may undershoot the
// target only by the measured noise floor.
func (m speedupMeasurement) meetsSpeedup(target float64) bool {
	return m.MedianSpeedup >= target*(1-m.NoiseFloorPct/100)
}

func TestSummarizeSpeedupRoundsMath(t *testing.T) {
	rounds := []speedupRound{
		{SequentialNsPerOp: 1000, BatchNsPerOp: 125, Speedup: 8},
		{SequentialNsPerOp: 1100, BatchNsPerOp: 130, Speedup: 8.4615}, // disturbed round
		{SequentialNsPerOp: 1000, BatchNsPerOp: 140, Speedup: 7.1429},
	}
	m := summarizeSpeedupRounds(rounds)
	if m.MedianSequentialNsPerOp != 1000 || m.MedianBatchNsPerOp != 130 {
		t.Errorf("medians seq=%d batch=%d, want 1000/130", m.MedianSequentialNsPerOp, m.MedianBatchNsPerOp)
	}
	if m.MedianSpeedup != 8 {
		t.Errorf("median speedup %.3f, want 8", m.MedianSpeedup)
	}
	if want := 100 * float64(100) / 1000; m.NoiseFloorPct != want {
		t.Errorf("noise floor %.3f, want %.3f", m.NoiseFloorPct, want)
	}
	if !m.meetsSpeedup(5) {
		t.Error("8x median must pass a 5x gate")
	}
	if (speedupMeasurement{MedianSpeedup: 4, NoiseFloorPct: 1}).meetsSpeedup(5) {
		t.Error("4x median with a 1%% noise floor must fail a 5x gate")
	}
}

// TestBatchSteadyStateAllocs checks the batch engine's two loops
// allocate nothing in steady state. Growing the horizon T at fixed B
// must not change the allocation count (the slot loop is clean), and
// growing B at a fixed chunk count must not change it either (all
// per-replication state — RNG streams, battery, recharge — lives in
// the reusable per-chunk worker; the only B-sized cost is the one
// stats slice, a single allocation at any B).
func TestBatchSteadyStateAllocs(t *testing.T) {
	run := func(slots int64, batch, chunk int) float64 {
		return testing.AllocsPerRun(3, func() {
			cfg := batchBenchConfig(t, sim.EngineBatch, slots, batch, 1)
			cfg.BatchChunk = chunk
			if _, err := sim.Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Config construction allocates identically on both sides of each
	// comparison, so differences isolate the engine.
	shortT, longT := run(100, 256, 256), run(50_000, 256, 256)
	if longT > shortT {
		t.Errorf("batch slot loop allocates: %v allocs at T=100, %v at T=50k", shortT, longT)
	}
	smallB, largeB := run(2_000, 128, 2048), run(2_000, 2048, 2048)
	if largeB > smallB {
		t.Errorf("batch replication loop allocates: %v allocs at B=128, %v at B=2048", smallB, largeB)
	}
}

// TestEmitBenchBatchJSON regenerates BENCH_batch.json and enforces the
// batch engine's performance gate: on the sparse-activation workload at
// B=10^4 replications, aggregate throughput must be at least 5x the
// same replications run sequentially through the single-run kernel
// (the forced fallback path), measured with the interleaved-rounds
// median/noise-floor protocol of bench_rounds_test.go. Gated behind an
// env var so normal test runs stay fast:
//
//	BENCH_BATCH_JSON=BENCH_batch.json go test -run TestEmitBenchBatchJSON .
func TestEmitBenchBatchJSON(t *testing.T) {
	path := os.Getenv("BENCH_BATCH_JSON")
	if path == "" {
		t.Skip("set BENCH_BATCH_JSON=<path> to emit the benchmark record")
	}
	m := measureSpeedup(3,
		func(b *testing.B) { benchBatch(b, sim.EngineKernel) },
		func(b *testing.B) { benchBatch(b, sim.EngineBatch) },
	)
	if !m.meetsSpeedup(batchMinSpeedup) {
		t.Errorf("batch speedup gate failed: median %.2fx (noise floor %.1f%%), want >= %.0fx",
			m.MedianSpeedup, m.NoiseFloorPct, batchMinSpeedup)
	}

	loopAllocs := testing.AllocsPerRun(3, func() {
		sim.Run(batchBenchConfig(t, sim.EngineBatch, 50_000, 256, 1))
	}) - testing.AllocsPerRun(3, func() {
		sim.Run(batchBenchConfig(t, sim.EngineBatch, 100, 256, 1))
	})
	if loopAllocs > 0 {
		t.Errorf("batch steady-state loop allocs = %v, want 0", loopAllocs)
	}

	const totalSlots = int64(batchBenchReps) * batchBenchSlots
	rec := struct {
		Benchmark             string             `json:"benchmark"`
		Config                string             `json:"config"`
		Batch                 int                `json:"batch"`
		SlotsPerRep           int64              `json:"slots_per_rep"`
		SlotsPerOp            int64              `json:"slots_per_op"`
		Measurement           speedupMeasurement `json:"measurement"`
		BatchSlotsPerSec      float64            `json:"batch_slots_per_sec"`
		SequentialSlotsPerSec float64            `json:"sequential_slots_per_sec"`
		MinSpeedup            float64            `json:"min_speedup"`
		SteadyStateLoopAllocs float64            `json:"batch_steady_state_loop_allocs"`
		GoMaxProcs            int                `json:"gomaxprocs"`
		GoVersion             string             `json:"go_version"`
	}{
		Benchmark:             "BenchmarkBatchSlotsPerOp",
		Config:                "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000, B=10000 replications x T=10000 slots",
		Batch:                 batchBenchReps,
		SlotsPerRep:           batchBenchSlots,
		SlotsPerOp:            totalSlots,
		Measurement:           m,
		BatchSlotsPerSec:      float64(totalSlots) * 1e9 / float64(m.MedianBatchNsPerOp),
		SequentialSlotsPerSec: float64(totalSlots) * 1e9 / float64(m.MedianSequentialNsPerOp),
		MinSpeedup:            batchMinSpeedup,
		SteadyStateLoopAllocs: loopAllocs,
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		GoVersion:             runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("batch %.2fx vs sequential (noise floor %.1f%%), %.0f steady-state loop allocs",
		m.MedianSpeedup, m.NoiseFloorPct, loopAllocs)
}
