package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readTrajectory(t *testing.T, path string) *Trajectory {
	t.Helper()
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestAppendsNewRecordsKeyedByBenchmark(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	writeJSON(t, filepath.Join(dir, "BENCH_beta.json"), map[string]any{"benchmark": "BenchmarkBeta", "ns_per_op": 7})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if traj.Schema != TrajectorySchema || len(traj.Series) != 2 {
		t.Fatalf("trajectory: schema=%q series=%v", traj.Schema, traj.Series)
	}
	pts := traj.Series["BenchmarkAlpha"]
	if len(pts) != 1 || pts[0].Source != "BENCH_alpha.json" {
		t.Fatalf("BenchmarkAlpha series: %+v", pts)
	}
	var rec map[string]any
	if err := json.Unmarshal(pts[0].Record, &rec); err != nil {
		t.Fatal(err)
	}
	if rec["ns_per_op"] != float64(100) {
		t.Errorf("stored record: %v", rec)
	}
}

func TestUnchangedRecordIsNotReappended(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		if err := run([]string{"-dir", dir}, &sb); err != nil {
			t.Fatal(err)
		}
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if pts := traj.Series["BenchmarkAlpha"]; len(pts) != 1 {
		t.Fatalf("re-running without new measurements grew the series to %d points", len(pts))
	}
	if !strings.Contains(sb.String(), "unchanged") {
		t.Errorf("missing unchanged notice:\n%s", sb.String())
	}
}

func TestChangedRecordAppendsPoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_alpha.json")
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 90})
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	pts := traj.Series["BenchmarkAlpha"]
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2", len(pts))
	}
}

func TestOutputFileIsNotIngested(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha"})
	var sb strings.Builder
	// Run twice: the second run sees BENCH_trajectory.json on disk and
	// must skip it.
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if len(traj.Series) != 1 {
		t.Fatalf("trajectory ingested itself: %v", traj.Series)
	}
}

func TestFallsBackToFileNameKey(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_raw.json"), map[string]any{"ns_per_op": 5})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if _, ok := traj.Series["BENCH_raw.json"]; !ok {
		t.Fatalf("missing file-name-keyed series: %v", traj.Series)
	}
}

func TestRejectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

func TestRepoRecordsIngest(t *testing.T) {
	// The real BENCH_*.json records at the repo root must ingest
	// cleanly (this is what `make check` runs).
	dir := t.TempDir()
	for _, name := range []string{"BENCH_kernel.json", "BENCH_obs.json", "BENCH_parallel.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Skipf("repo record %s not present: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if len(traj.Series) != 3 {
		t.Fatalf("expected 3 series from repo records, got %v", traj.Series)
	}
}
