package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readTrajectory(t *testing.T, path string) *Trajectory {
	t.Helper()
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestAppendsNewRecordsKeyedByBenchmark(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	writeJSON(t, filepath.Join(dir, "BENCH_beta.json"), map[string]any{"benchmark": "BenchmarkBeta", "ns_per_op": 7})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if traj.Schema != TrajectorySchema || len(traj.Series) != 2 {
		t.Fatalf("trajectory: schema=%q series=%v", traj.Schema, traj.Series)
	}
	pts := traj.Series["BenchmarkAlpha"]
	if len(pts) != 1 || pts[0].Source != "BENCH_alpha.json" {
		t.Fatalf("BenchmarkAlpha series: %+v", pts)
	}
	var rec map[string]any
	if err := json.Unmarshal(pts[0].Record, &rec); err != nil {
		t.Fatal(err)
	}
	if rec["ns_per_op"] != float64(100) {
		t.Errorf("stored record: %v", rec)
	}
}

func TestUnchangedRecordIsNotReappended(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		if err := run([]string{"-dir", dir}, &sb); err != nil {
			t.Fatal(err)
		}
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if pts := traj.Series["BenchmarkAlpha"]; len(pts) != 1 {
		t.Fatalf("re-running without new measurements grew the series to %d points", len(pts))
	}
	if !strings.Contains(sb.String(), "unchanged") {
		t.Errorf("missing unchanged notice:\n%s", sb.String())
	}
}

func TestChangedRecordAppendsPoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_alpha.json")
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 100})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkAlpha", "ns_per_op": 90})
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	pts := traj.Series["BenchmarkAlpha"]
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2", len(pts))
	}
}

func TestOutputFileIsNotIngested(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_alpha.json"), map[string]any{"benchmark": "BenchmarkAlpha"})
	var sb strings.Builder
	// Run twice: the second run sees BENCH_trajectory.json on disk and
	// must skip it.
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if len(traj.Series) != 1 {
		t.Fatalf("trajectory ingested itself: %v", traj.Series)
	}
}

func TestFallsBackToFileNameKey(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_raw.json"), map[string]any{"ns_per_op": 5})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if _, ok := traj.Series["BENCH_raw.json"]; !ok {
		t.Fatalf("missing file-name-keyed series: %v", traj.Series)
	}
}

func TestRejectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

// medianRecord builds a median-of-rounds BENCH record like the batch
// and multi-sensor suites emit.
func medianRecord(name string, speedup, floorPct float64) map[string]any {
	return map[string]any{
		"benchmark": name,
		"measurement": map[string]any{
			"median_speedup":  speedup,
			"noise_floor_pct": floorPct,
		},
	}
}

func TestCheckPassesWithinNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_batch.json")
	// History at 5.0x, current run at 4.7x: a 6% dip, inside the 4%
	// floor + 10% default margin.
	writeJSON(t, path, medianRecord("BenchmarkBatch", 5.0, 4))
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	writeJSON(t, path, medianRecord("BenchmarkBatch", 4.7, 4))
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("within-noise dip flagged as regression: %v", err)
	}
	if !strings.Contains(sb.String(), "ok: 4.70x") {
		t.Errorf("missing ok line:\n%s", sb.String())
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_batch.json")
	writeJSON(t, path, medianRecord("BenchmarkBatch", 5.0, 4))
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	// 5.0x → 3.0x is a 40% drop, far past floor 4% + margin 10%.
	writeJSON(t, path, medianRecord("BenchmarkBatch", 3.0, 4))
	err := run([]string{"check", "-dir", dir}, &sb)
	if err == nil {
		t.Fatal("40%% speedup drop passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkBatch") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION line:\n%s", sb.String())
	}
}

func TestCheckMarginFlagTightensGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_batch.json")
	writeJSON(t, path, medianRecord("BenchmarkBatch", 5.0, 0))
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	writeJSON(t, path, medianRecord("BenchmarkBatch", 4.7, 0))
	// A 6% dip with zero floor: passes at the default 10% margin, fails
	// when the margin is tightened to 2 points.
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("default margin: %v", err)
	}
	if err := run([]string{"check", "-dir", dir, "-margin", "2"}, &sb); err == nil {
		t.Fatal("-margin 2 did not tighten the gate")
	}
}

func TestCheckUsesMedianOfPriors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_batch.json")
	var sb strings.Builder
	// Build history 5.0, 5.2, 4.9 (median 5.0), then drop to 4.0: a
	// 20% fall from the median must fail even though a single outlier
	// prior (4.9) sits closer.
	for _, s := range []float64{5.0, 5.2, 4.9} {
		writeJSON(t, path, medianRecord("BenchmarkBatch", s, 4))
		if err := run([]string{"-dir", dir}, &sb); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(t, path, medianRecord("BenchmarkBatch", 4.0, 4))
	if err := run([]string{"check", "-dir", dir}, &sb); err == nil {
		t.Fatal("20%% drop from prior median passed")
	}
}

func TestCheckSkipsRecordsWithoutSpeedup(t *testing.T) {
	dir := t.TempDir()
	// Overhead-style record (BENCH_obs shape): no speedup anywhere.
	writeJSON(t, filepath.Join(dir, "BENCH_obs.json"), map[string]any{
		"benchmark":   "BenchmarkMetricsOverhead",
		"measurement": map[string]any{"overhead_pct": 0.3, "budget_pct": 1.0},
	})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("overhead-only record tripped the gate: %v", err)
	}
	if !strings.Contains(sb.String(), "skipped (no speedup figure of merit)") {
		t.Errorf("missing skip note:\n%s", sb.String())
	}
}

func TestCheckNoHistoryPasses(t *testing.T) {
	dir := t.TempDir()
	// A record that was never folded: no trajectory file at all.
	writeJSON(t, filepath.Join(dir, "BENCH_kernel.json"), map[string]any{
		"benchmark": "BenchmarkKernel", "speedup": 6.4,
	})
	var sb strings.Builder
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("record without history failed the gate: %v", err)
	}
	if !strings.Contains(sb.String(), "no prior points") {
		t.Errorf("missing no-history note:\n%s", sb.String())
	}
	// Fold it, then check again: the only trajectory point is the
	// record itself, which must not vouch for (or against) itself.
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("self-only trajectory failed the gate: %v", err)
	}
}

func TestCheckTopLevelSpeedupRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	// Single-shot records carry a bare top-level speedup and no noise
	// floor; the gate falls back to margin-only slack.
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkKernel", "speedup": 6.0})
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkKernel", "speedup": 5.6})
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("6.7%% dip within 10%% margin failed: %v", err)
	}
	writeJSON(t, path, map[string]any{"benchmark": "BenchmarkKernel", "speedup": 5.0})
	if err := run([]string{"check", "-dir", dir}, &sb); err == nil {
		t.Fatal("16%% drop passed a margin-only gate")
	}
}

func TestCheckRepoRecords(t *testing.T) {
	// The committed records plus the committed trajectory must pass the
	// gate — `make check` runs exactly this.
	entries, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(entries) == 0 {
		t.Skipf("no repo BENCH records: %v", err)
	}
	dir := t.TempDir()
	for _, src := range entries {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-dir", dir}, &sb); err != nil {
		t.Fatalf("repo records fail their own gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "checked ") {
		t.Errorf("missing summary line:\n%s", sb.String())
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Errorf("single median = %v", got)
	}
}

func TestRepoRecordsIngest(t *testing.T) {
	// The real BENCH_*.json records at the repo root must ingest
	// cleanly (this is what `make check` runs).
	dir := t.TempDir()
	for _, name := range []string{"BENCH_kernel.json", "BENCH_obs.json", "BENCH_parallel.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Skipf("repo record %s not present: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	traj := readTrajectory(t, filepath.Join(dir, "BENCH_trajectory.json"))
	if len(traj.Series) != 3 {
		t.Fatalf("expected 3 series from repo records, got %v", traj.Series)
	}
}
