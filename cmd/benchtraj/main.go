// Command benchtraj folds the repo's point-in-time benchmark records
// (BENCH_*.json) into a trajectory file, so performance history
// accumulates in-repo instead of each regeneration overwriting the
// last.
//
// Usage:
//
//	benchtraj [-dir .] [-out BENCH_trajectory.json]
//
// Every BENCH_*.json in -dir (except the output file itself) is read,
// keyed by its "benchmark" field (file name when absent), and appended
// to that benchmark's series — but only when the record differs from
// the series' current tail, so re-running `make check` without
// regenerating benchmarks is a no-op. Records are stored canonicalized
// (compact, sorted keys), making the equality check and the file bytes
// deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// TrajectorySchema identifies the trajectory format.
const TrajectorySchema = "eventcap/bench-trajectory/v1"

// Point is one appended benchmark record and the file it came from.
type Point struct {
	Source string          `json:"source"`
	Record json.RawMessage `json:"record"`
}

// Trajectory is the accumulated history: one append-only series per
// benchmark name.
type Trajectory struct {
	Schema string             `json:"schema"`
	Series map[string][]Point `json:"series"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtraj", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json records")
	outFile := fs.String("out", "BENCH_trajectory.json", "trajectory file to update (relative to -dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	outPath := *outFile
	if !filepath.IsAbs(outPath) {
		outPath = filepath.Join(*dir, outPath)
	}

	traj, err := loadTrajectory(outPath)
	if err != nil {
		return err
	}

	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)

	appended := 0
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(outPath) {
			continue
		}
		key, rec, err := loadRecord(f)
		if err != nil {
			return err
		}
		series := traj.Series[key]
		if n := len(series); n > 0 && bytesEqualCanonical(series[n-1].Record, rec) {
			fmt.Fprintf(out, "%s: unchanged (%d point(s))\n", key, n)
			continue
		}
		traj.Series[key] = append(series, Point{Source: filepath.Base(f), Record: rec})
		appended++
		fmt.Fprintf(out, "%s: appended point %d (from %s)\n", key, len(traj.Series[key]), filepath.Base(f))
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing trajectory: %w", err)
	}
	fmt.Fprintf(out, "wrote %s: %d series, %d new point(s)\n", outPath, len(traj.Series), appended)
	return nil
}

// loadTrajectory reads an existing trajectory file, or returns an empty
// one when the file does not exist yet.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{Schema: TrajectorySchema, Series: map[string][]Point{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading trajectory: %w", err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		return nil, fmt.Errorf("parsing trajectory %s: %w", path, err)
	}
	if traj.Schema != TrajectorySchema {
		return nil, fmt.Errorf("trajectory %s has schema %q, want %q", path, traj.Schema, TrajectorySchema)
	}
	if traj.Series == nil {
		traj.Series = map[string][]Point{}
	}
	return &traj, nil
}

// loadRecord reads one BENCH_*.json record, returning its series key
// (the "benchmark" field, file name as fallback) and the canonicalized
// record bytes.
func loadRecord(path string) (string, json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("reading record: %w", err)
	}
	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		return "", nil, fmt.Errorf("parsing record %s: %w", path, err)
	}
	key := filepath.Base(path)
	if obj, ok := decoded.(map[string]any); ok {
		if name, ok := obj["benchmark"].(string); ok && name != "" {
			key = name
		}
	}
	// encoding/json marshals map keys sorted, so this is canonical.
	canon, err := json.Marshal(decoded)
	if err != nil {
		return "", nil, err
	}
	return key, canon, nil
}

// bytesEqualCanonical compares two records after canonicalization (the
// stored tail is already canonical, but older hand-edited trajectories
// may not be).
func bytesEqualCanonical(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return string(a) == string(b)
	}
	ac, errA := json.Marshal(av)
	bc, errB := json.Marshal(bv)
	if errA != nil || errB != nil {
		return string(a) == string(b)
	}
	return string(ac) == string(bc)
}
