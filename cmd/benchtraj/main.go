// Command benchtraj folds the repo's point-in-time benchmark records
// (BENCH_*.json) into a trajectory file, so performance history
// accumulates in-repo instead of each regeneration overwriting the
// last.
//
// Usage:
//
//	benchtraj [-dir .] [-out BENCH_trajectory.json]
//	benchtraj check [-dir .] [-traj BENCH_trajectory.json] [-margin 10]
//
// Every BENCH_*.json in -dir (except the output file itself) is read,
// keyed by its "benchmark" field (file name when absent), and appended
// to that benchmark's series — but only when the record differs from
// the series' current tail, so re-running `make check` without
// regenerating benchmarks is a no-op. Records are stored canonicalized
// (compact, sorted keys), making the equality check and the file bytes
// deterministic.
//
// The check verb is the bench-regression gate: it compares each
// record's figure of merit (measurement.median_speedup, or the
// top-level speedup for single-shot records) against the median of its
// prior trajectory points and fails — exit nonzero — when the current
// value falls below that median by more than the record's own measured
// noise floor plus -margin percentage points. Records with no speedup
// figure (the overhead records, gated by their in-test budgets) and
// records with no history pass with a note.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TrajectorySchema identifies the trajectory format.
const TrajectorySchema = "eventcap/bench-trajectory/v1"

// Point is one appended benchmark record and the file it came from.
type Point struct {
	Source string          `json:"source"`
	Record json.RawMessage `json:"record"`
}

// Trajectory is the accumulated history: one append-only series per
// benchmark name.
type Trajectory struct {
	Schema string             `json:"schema"`
	Series map[string][]Point `json:"series"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "check" {
		return runCheck(args[1:], out)
	}
	fs := flag.NewFlagSet("benchtraj", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json records")
	outFile := fs.String("out", "BENCH_trajectory.json", "trajectory file to update (relative to -dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	outPath := *outFile
	if !filepath.IsAbs(outPath) {
		outPath = filepath.Join(*dir, outPath)
	}

	traj, err := loadTrajectory(outPath)
	if err != nil {
		return err
	}

	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)

	appended := 0
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(outPath) {
			continue
		}
		key, rec, err := loadRecord(f)
		if err != nil {
			return err
		}
		series := traj.Series[key]
		if n := len(series); n > 0 && bytesEqualCanonical(series[n-1].Record, rec) {
			fmt.Fprintf(out, "%s: unchanged (%d point(s))\n", key, n)
			continue
		}
		traj.Series[key] = append(series, Point{Source: filepath.Base(f), Record: rec})
		appended++
		fmt.Fprintf(out, "%s: appended point %d (from %s)\n", key, len(traj.Series[key]), filepath.Base(f))
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing trajectory: %w", err)
	}
	fmt.Fprintf(out, "wrote %s: %d series, %d new point(s)\n", outPath, len(traj.Series), appended)
	return nil
}

// runCheck is the bench-regression gate (the "check" verb).
func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtraj check", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json records")
	trajFile := fs.String("traj", "BENCH_trajectory.json", "trajectory file with prior points (relative to -dir)")
	margin := fs.Float64("margin", 10, "slack in percentage points added to each record's measured noise floor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trajPath := *trajFile
	if !filepath.IsAbs(trajPath) {
		trajPath = filepath.Join(*dir, trajPath)
	}
	traj, err := loadTrajectory(trajPath)
	if err != nil {
		return err
	}
	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)

	var regressions []string
	checked := 0
	for _, f := range files {
		if filepath.Base(f) == filepath.Base(trajPath) {
			continue
		}
		key, rec, err := loadRecord(f)
		if err != nil {
			return err
		}
		cur, floor, ok := figureOfMerit(rec)
		if !ok {
			// Overhead-only records (BENCH_obs, BENCH_trace, ...) carry no
			// speedup; their ≤budget_pct gates run inside the benchmarks.
			fmt.Fprintf(out, "%-28s skipped (no speedup figure of merit)\n", key+":")
			continue
		}
		checked++
		// Prior points are the trajectory entries that differ from the
		// record on disk — the fold step typically just appended the
		// current record, which must not vouch for itself.
		var priors []float64
		for _, pt := range traj.Series[key] {
			if bytesEqualCanonical(pt.Record, rec) {
				continue
			}
			if v, _, ok := figureOfMerit(pt.Record); ok {
				priors = append(priors, v)
			}
		}
		if len(priors) == 0 {
			fmt.Fprintf(out, "%-28s %.2fx, no prior points — pass\n", key+":", cur)
			continue
		}
		prior := median(priors)
		threshold := prior * (1 - (floor+*margin)/100)
		if cur < threshold {
			msg := fmt.Sprintf("%s: %.2fx < threshold %.2fx (median of %d prior point(s) %.2fx, noise floor %.1f%% + margin %.1f%%)",
				key, cur, threshold, len(priors), prior, floor, *margin)
			regressions = append(regressions, msg)
			fmt.Fprintf(out, "%-28s REGRESSION: %.2fx < %.2fx\n", key+":", cur, threshold)
			continue
		}
		fmt.Fprintf(out, "%-28s ok: %.2fx >= %.2fx (median of %d prior(s) %.2fx, floor %.1f%% + margin %.1f%%)\n",
			key+":", cur, threshold, len(priors), prior, floor, *margin)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "checked %d benchmark(s) against %s\n", checked, trajPath)
	return nil
}

// figureOfMerit extracts a record's comparable speedup and its measured
// noise floor (in percent): measurement.median_speedup with
// measurement.noise_floor_pct for median-of-rounds records, the
// top-level speedup (floor 0) for single-shot records. ok is false for
// records with neither — overhead-only records are not checked here.
func figureOfMerit(rec json.RawMessage) (fom, floor float64, ok bool) {
	var obj map[string]any
	if json.Unmarshal(rec, &obj) != nil {
		return 0, 0, false
	}
	if m, isMap := obj["measurement"].(map[string]any); isMap {
		if v, hasFom := m["median_speedup"].(float64); hasFom {
			floor, _ := m["noise_floor_pct"].(float64)
			return v, floor, true
		}
	}
	if v, hasFom := obj["speedup"].(float64); hasFom {
		return v, 0, true
	}
	return 0, 0, false
}

// median returns the middle value (mean of the middle two for even n).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// loadTrajectory reads an existing trajectory file, or returns an empty
// one when the file does not exist yet.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{Schema: TrajectorySchema, Series: map[string][]Point{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading trajectory: %w", err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		return nil, fmt.Errorf("parsing trajectory %s: %w", path, err)
	}
	if traj.Schema != TrajectorySchema {
		return nil, fmt.Errorf("trajectory %s has schema %q, want %q", path, traj.Schema, TrajectorySchema)
	}
	if traj.Series == nil {
		traj.Series = map[string][]Point{}
	}
	return &traj, nil
}

// loadRecord reads one BENCH_*.json record, returning its series key
// (the "benchmark" field, file name as fallback) and the canonicalized
// record bytes.
func loadRecord(path string) (string, json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("reading record: %w", err)
	}
	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		return "", nil, fmt.Errorf("parsing record %s: %w", path, err)
	}
	key := filepath.Base(path)
	if obj, ok := decoded.(map[string]any); ok {
		if name, ok := obj["benchmark"].(string); ok && name != "" {
			key = name
		}
	}
	// encoding/json marshals map keys sorted, so this is canonical.
	canon, err := json.Marshal(decoded)
	if err != nil {
		return "", nil, err
	}
	return key, canon, nil
}

// bytesEqualCanonical compares two records after canonicalization (the
// stored tail is already canonical, but older hand-edited trajectories
// may not be).
func bytesEqualCanonical(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return string(a) == string(b)
	}
	ac, errA := json.Marshal(av)
	bc, errB := json.Marshal(bv)
	if errA != nil || errB != nil {
		return string(a) == string(b)
	}
	return string(ac) == string(bc)
}
