// Command policycalc computes and prints the paper's activation policies
// for a given workload and recharge rate, without running a simulation:
// the greedy full-information policy π*_FI(e) (Theorem 1), the
// partial-information clustering policy π'_PI(e) with its region
// structure, and, for Markov workloads, the EBCW comparison policy.
//
// Usage:
//
//	policycalc -dist weibull:40,3 -e 0.5
//	policycalc -dist markov:0.3,0.2 -e 1 -delta1 1 -delta2 6
//	policycalc -dist pareto:2,10 -e 0.4 -refine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eventcap/internal/cliutil"
	"eventcap/internal/core"
	"eventcap/internal/dist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "policycalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("policycalc", flag.ContinueOnError)
	var (
		distSpec = fs.String("dist", "weibull:40,3", "inter-arrival distribution (name:params)")
		e        = fs.Float64("e", 0.5, "average recharge rate (energy/slot)")
		delta1   = fs.Float64("delta1", 1, "sensing energy per active slot")
		delta2   = fs.Float64("delta2", 6, "extra energy per capture")
		refine   = fs.Bool("refine", false, "also run the window refinement of pi'_PI")
		theta1   = fs.Int("theta1", 3, "theta1 for the periodic baseline calibration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := cliutil.ParseDist(*distSpec)
	if err != nil {
		return err
	}
	p := core.Params{Delta1: *delta1, Delta2: *delta2}
	if err := p.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(out, "workload        %s (mu = %.4f slots)\n", d.Name(), d.Mean())
	fmt.Fprintf(out, "energy          delta1=%g delta2=%g, e=%g (saturation %0.4f)\n",
		p.Delta1, p.Delta2, *e, p.SaturationRate(d.Mean()))

	fi, err := core.GreedyFI(d, *e, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\npi*_FI (Theorem 1 greedy, full information)\n")
	fmt.Fprintf(out, "  U = %.4f  energy rate = %.4f  budget e*mu = %.4f\n",
		fi.CaptureProb, fi.EnergyRate, fi.Budget)
	fmt.Fprintf(out, "  vector: %s\n", describeVector(fi.Policy))

	pi, err := core.OptimizeClustering(d, *e, p, core.ClusteringOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\npi'_PI (clustering heuristic, partial information)\n")
	fmt.Fprintf(out, "  U = %.4f  energy rate = %.4f\n", pi.CaptureProb, pi.EnergyRate)
	fmt.Fprintf(out, "  regions: cooling [1,%d)  hot [%d,%d]  cooling (%d,%d)  recovery [%d,inf)\n",
		pi.Policy.N1, pi.Policy.N1, pi.Policy.N2, pi.Policy.N2, pi.Policy.N3, pi.Policy.N3)
	fmt.Fprintf(out, "  boundaries: C1=%.4f C2=%.4f C3=%.4f\n", pi.Policy.C1, pi.Policy.C2, pi.Policy.C3)

	if *refine {
		ref, err := core.RefineWindows(d, *e, p, pi, 2)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwindow-refined pi'_PI (extra transition points)\n")
		fmt.Fprintf(out, "  U = %.4f (gain %+.4f)  energy rate = %.4f  windows = %d\n",
			ref.CaptureProb, ref.CaptureProb-ref.BaseCaptureProb, ref.EnergyRate, len(ref.Policy.Windows))
		for _, w := range ref.Policy.Windows {
			fmt.Fprintf(out, "  sleep window: states [%d, %d)\n", w.Start, w.Start+w.Len)
		}
	}

	theta2, err := core.PeriodicTheta2(*theta1, *e, d, p)
	if err == nil {
		fmt.Fprintf(out, "\nbaselines\n")
		fmt.Fprintf(out, "  pi_PE: theta1=%d theta2=%.2f  ->  U ~= %.4f\n", *theta1, theta2, core.PeriodicU(*theta1, theta2))
		fmt.Fprintf(out, "  pi_AG: U ~= %.4f\n", core.AggressiveU(d, *e, p))
	}

	if mr, ok := d.(*dist.MarkovRenewal); ok {
		eb, err := core.OptimizeEBCW(mr.A(), mr.B(), *e, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  pi_EBCW (last-observation class of [6]): PYes=%.3f PNo=%.3f  U = %.4f\n",
			eb.PYes, eb.PNo, eb.CaptureU)
	}
	return nil
}

// describeVector prints a compact run-length form of an activation
// vector.
func describeVector(v core.Vector) string {
	var parts []string
	i := 1
	limit := len(v.Prefix)
	for i <= limit {
		c := v.At(i)
		j := i
		// floateq:ok display run-length grouping: only bit-identical probabilities collapse
		for j+1 <= limit && v.At(j+1) == c {
			j++
		}
		if i == j {
			parts = append(parts, fmt.Sprintf("c%d=%.3f", i, c))
		} else {
			parts = append(parts, fmt.Sprintf("c%d..c%d=%.3f", i, j, c))
		}
		i = j + 1
	}
	parts = append(parts, fmt.Sprintf("tail=%.3f", v.Tail))
	return strings.Join(parts, "  ")
}
