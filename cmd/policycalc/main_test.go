package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestPolicycalcWeibull(t *testing.T) {
	out, err := runToString(t, []string{"-dist", "weibull:40,3", "-e", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Weibull(40,3)",
		"pi*_FI",
		"pi'_PI",
		"regions:",
		"pi_PE:",
		"pi_AG:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPolicycalcMarkovIncludesEBCW(t *testing.T) {
	out, err := runToString(t, []string{"-dist", "markov:0.7,0.6", "-e", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pi_EBCW") {
		t.Errorf("Markov workload should print the EBCW policy:\n%s", out)
	}
}

func TestPolicycalcRefine(t *testing.T) {
	out, err := runToString(t, []string{"-dist", "uniform:4,9", "-e", "0.4", "-refine"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "window-refined") {
		t.Errorf("-refine should print the refined policy:\n%s", out)
	}
}

func TestPolicycalcErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-dist", "bogus:1"},
		{"-dist", "weibull:40,3", "-delta1", "-1"},
		{"-dist", "weibull:40,3", "-e", "-0.5"},
	} {
		if _, err := runToString(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDescribeVectorRunLength(t *testing.T) {
	out, err := runToString(t, []string{"-dist", "deterministic:6", "-e", "0.2"})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic(6) greedy: single active state 6 → run-length form
	// must mention c6.
	if !strings.Contains(out, "c6") {
		t.Errorf("expected run-length description with c6:\n%s", out)
	}
}
