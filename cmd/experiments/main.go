// Command experiments regenerates the paper's evaluation (every figure
// of Section VI) plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3a,fig4b
//	experiments -run all -out results -quick
//	experiments -run all -out results -progress 5s -metrics-addr localhost:6060
//
// Each experiment prints a paper-style ASCII table; with -out set, a CSV
// per experiment is written into the directory together with a JSON run
// manifest (<id>.manifest.json) recording the configuration, code
// version, wall time, and the run-level metrics behind the figure.
// -progress renders a live jobs-done/ETA line to stderr; -metrics-addr
// serves /debug/vars, /metrics (Prometheus text format), and
// /debug/pprof while the sweep runs.
//
// Streaming statistics are on by default (-stats=false disables them):
// every experiment's manifest and journal line record the pooled QoM
// point estimate with its confidence interval, and /debug/runs shows
// the live CI band while the sweep runs. With -batch B and
// -target-rel-hw R, replications stop early once the QoM CI's relative
// half-width reaches R (at least -min-reps replications run first);
// the manifest's early_stop block records the realized counts.
//
// -trace additionally writes a slot-level binary trace (<id>.evtrace,
// hash-recorded in the manifest; verify with `tracetool replay`), and
// -flight-recorder N arms a crash-recorder ring of the last N records
// per sensor, dumped on invariant violations and at /debug/trace.
// Neither changes any output byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eventcap/internal/cliutil"
	"eventcap/internal/experiments"
	"eventcap/internal/obs"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
	"eventcap/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list experiment ids and exit")
		runID       = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		outDir      = fs.String("out", "", "directory to write CSV files and run manifests into (optional)")
		quick       = fs.Bool("quick", false, "reduced sweeps and shorter runs")
		slots       = fs.Int64("slots", 0, "override simulation length T (default 1e6; 1e5 with -quick)")
		seed        = fs.Uint64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "worker pool size for sweep points (0 = one per CPU; results are identical for any value)")
		kernel      = fs.String("kernel", "auto", "simulation engine: auto (compiled kernel when eligible) | on (force kernel) | off (reference engine) | batch (force batch engine)")
		batch       = fs.Int("batch", 0, "run each simulation as B independent replications at seeds seed..seed+B-1 and aggregate (batch engine when eligible)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile to this file (a bare filename lands in -out)")
		memProf     = fs.String("memprofile", "", "write a heap profile to this file (a bare filename lands in -out)")
		progress    = fs.Duration("progress", 0, "print a live progress line to stderr at this interval (0 disables)")
		spansFlag   = fs.String("spans", "", "write the run's phase spans as Chrome trace-event JSON to this file (a bare filename lands in -out; open in chrome://tracing or Perfetto)")
		metricsAddr = fs.String("metrics-addr", "", "serve /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
		traceFlag   = fs.Bool("trace", false, "write a slot-level trace (<id>.evtrace) and record it in the manifest; requires -out")
		flightSize  = fs.Int("flight-recorder", 0, "arm a flight recorder keeping the last N slot records per sensor (0 disables); dumps appear at /debug/trace with -metrics-addr")
		statsFlag   = fs.Bool("stats", true, "collect streaming QoM statistics (point estimate and CI per experiment, recorded in manifests and the journal; never changes results)")
		targetRelHW = fs.Float64("target-rel-hw", 0, "stop batched replications early once the QoM CI's relative half-width reaches this target (requires -batch > 1; changes how many replications run)")
		minReps     = fs.Int("min-reps", 0, "minimum replications before -target-rel-hw may stop a run (default 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := sim.ParseEngine(*kernel)
	if err != nil {
		return err
	}
	if *traceFlag && *outDir == "" {
		return fmt.Errorf("-trace requires -out (traces are written next to the CSVs)")
	}
	if *targetRelHW > 0 && *batch < 2 {
		return fmt.Errorf("-target-rel-hw requires -batch > 1 (the replication budget it stops within)")
	}
	if *minReps > 0 && *targetRelHW <= 0 {
		return fmt.Errorf("-min-reps only applies together with -target-rel-hw")
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *runID == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			exp, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, exp)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments selected")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	// Bare profile filenames land beside the manifests that point at them.
	cpuPath := cliutil.ResolveProfilePath(*cpuProf, *outDir)
	memPath := cliutil.ResolveProfilePath(*memProf, *outDir)
	spansPath := cliutil.ResolveProfilePath(*spansFlag, *outDir)
	stopProfiles, err := cliutil.StartProfiles(cpuPath, memPath)
	if err != nil {
		return err
	}
	profilesStopped := false
	defer func() {
		if !profilesStopped {
			stopProfiles()
		}
	}()

	var flight *trace.FlightRecorder
	if *flightSize > 0 {
		flight = trace.NewFlightRecorder(*flightSize)
		// Register before ServeMetrics builds its mux so /debug/trace is
		// live for the whole run.
		obs.HandleDebug("/debug/trace", flight.Handler())
	}

	if *metricsAddr != "" {
		bound, stopServe, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: serving /debug/vars and /debug/pprof/ on http://%s\n", bound)
		defer stopServe()
	}

	// One Progress across the whole invocation: the pool observer when
	// -progress asks for a live line, and the work-unit/ETA source for
	// the /debug/runs dashboard either way.
	prog := obs.NewProgress()
	if *progress > 0 {
		parallel.SetObserver(prog)
		ticker := time.NewTicker(*progress)
		stopTicker := make(chan struct{})
		go func() {
			for {
				select {
				case <-stopTicker:
					return
				case <-ticker.C:
					fmt.Fprintln(os.Stderr, prog.Line())
				}
			}
		}()
		defer func() {
			ticker.Stop()
			close(stopTicker)
			parallel.SetObserver(nil)
			done, total := prog.Done()
			fmt.Fprintf(os.Stderr, "progress: finished %d/%d jobs\n", done, total)
		}()
	}

	// The run journal appends one wide-event JSON line per experiment
	// beside the CSVs; the run registry feeds /debug/runs.
	var journal *obs.RunLog
	if *outDir != "" {
		journal, err = obs.OpenRunLog(filepath.Join(*outDir, "runs.jsonl"))
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	var spanRoots []*obs.Span

	opts := experiments.Options{
		Slots: *slots, Seed: *seed, Quick: *quick, Workers: *workers,
		Engine: engine, Batch: *batch, Progress: prog,
		TargetRelHW: *targetRelHW, MinReps: *minReps,
	}
	for _, exp := range selected {
		before := obs.Snapshot()
		start := time.Now()
		params := manifestParams{
			slots:   *slots,
			seed:    *seed,
			quick:   *quick,
			workers: *workers,
			batch:   *batch,
			engine:  engine,
			start:   start,
			outDir:  *outDir,
			cpuProf: cpuPath,
			memProf: memPath,
		}
		// Workers are excluded from the digest: results are worker-
		// invariant, so two runs differing only in pool size share a
		// digest (and must share a CSV hash).
		digest := obs.DigestConfig(
			"experiment="+exp.ID,
			fmt.Sprintf("slots=%d", *slots),
			fmt.Sprintf("seed=%d", *seed),
			fmt.Sprintf("quick=%t", *quick),
			"engine="+engine.String(),
		)
		// Phase spans: the experiment's root span with a "run" child
		// around the driver (each simulation forks "sim.run" under it)
		// and a "write" child around the CSV write below. The registry
		// entry makes the run visible at /debug/runs while it executes.
		root := obs.BeginSpan(exp.ID)
		active := obs.DefaultRegistry.Begin(exp.ID, digest, prog, root)
		// One stats collector per experiment (the manifest scope): interim
		// reports stream to the registry's live view (dashboard + stats.*
		// gauges); the pooled estimate lands in the manifest and journal.
		var coll *experiments.StatsCollector
		if *statsFlag || *targetRelHW > 0 {
			coll = &experiments.StatsCollector{Live: active.Stats.Publish}
		}
		opts.Stats = coll
		// Attach the tracer for this experiment: a fresh trace file per
		// experiment (so each manifest hashes exactly its own runs), the
		// shared flight recorder, or both.
		var (
			tw *trace.Writer
			tf *os.File
		)
		if *traceFlag {
			tracePath := filepath.Join(*outDir, exp.ID+".evtrace")
			tf, err = os.Create(tracePath)
			if err != nil {
				return fmt.Errorf("creating trace file: %w", err)
			}
			tw = trace.NewWriter(tf)
		}
		if tw != nil || flight != nil {
			opts.Tracer = trace.New(tw, flight)
		}
		runSpan := root.Child("run")
		opts.Span = runSpan
		table, err := exp.Run(opts)
		runSpan.End()
		if err != nil {
			// The run error is primary; the partial trace is best-effort,
			// but the writer must still be closed ahead of the file or its
			// buffered frames are silently dropped.
			if tw != nil {
				_ = tw.Close()
			}
			if tf != nil {
				_ = tf.Close()
			}
			// Failed runs are journaled and completed too: the dashboard
			// and the journal must account for every run, not just the
			// successful ones.
			root.End()
			params.elapsed = time.Since(start)
			rec := runRecord(exp, digest, params, obs.Diff(before, obs.Snapshot()), root.Breakdown())
			rec.Status = "error"
			rec.Error = err.Error()
			if journal != nil {
				journal.Record(rec)
			}
			active.Complete(rec)
			return fmt.Errorf("running %s: %w", exp.ID, err)
		}
		elapsed := time.Since(start)
		params.elapsed = elapsed
		var traceInfo *obs.TraceInfo
		if tw != nil {
			if err := tw.Close(); err != nil {
				if tf != nil {
					_ = tf.Close()
				}
				return fmt.Errorf("%s trace: %w", exp.ID, err)
			}
		}
		if tf != nil {
			if err := tf.Close(); err != nil {
				return fmt.Errorf("%s trace: %w", exp.ID, err)
			}
		}
		if tw != nil {
			mode := "full"
			if flight != nil {
				mode = "full+flight"
			}
			c := tw.Counts()
			traceInfo = &obs.TraceInfo{
				File:    exp.ID + ".evtrace",
				SHA256:  tw.SHA256(),
				Mode:    mode,
				Runs:    c.Runs,
				Records: c.Records,
				Spans:   c.Spans,
			}
		}
		rounded := elapsed.Round(time.Millisecond)
		// The "timing:" prefix marks the one note allowed to vary between
		// runs; CSV output carries no notes, so it stays byte-identical
		// for a fixed seed at any worker count.
		table.Notes = append(table.Notes, fmt.Sprintf("timing: %v wall-clock with %d workers", rounded, parallel.Workers(*workers)))
		fmt.Fprintln(out, table.ASCII())
		fmt.Fprintf(out, "(%s finished in %v)\n\n", exp.ID, rounded)
		if coll != nil {
			if r, ok := coll.Report(); ok {
				if r.Level != 0 {
					fmt.Fprintf(out, "stats: qom %.6f ± %.6f (%.0f%% CI, rel %.4g, pooled over %d runs)\n",
						r.Mean, r.HalfWidth, 100*r.Level, r.RelHalfWidth, r.Count)
				} else {
					fmt.Fprintf(out, "stats: qom %.6f (pooled over %d runs, no interval)\n", r.Mean, r.Count)
				}
			}
			if d := coll.Decision(); d != nil {
				fmt.Fprintf(out, "stats: early stop settled at %d/%d replications (target rel HW %g, reached %.4g; %d run(s) converged early)\n",
					d.Reps, d.MaxReps, d.TargetRelHW, d.RelHalfWidth, coll.StoppedRuns())
			}
		}
		params.trace = traceInfo
		var rec obs.RunRecord
		if *outDir != "" {
			ws := root.Child("write")
			csv := []byte(table.CSV())
			path := filepath.Join(*outDir, exp.ID+".csv")
			if err := os.WriteFile(path, csv, 0o644); err != nil {
				ws.End()
				return fmt.Errorf("writing %s: %w", path, err)
			}
			ws.End()
			root.End()
			diff := obs.Diff(before, obs.Snapshot())
			man := manifestFor(exp, csv, diff, digest, params)
			man.Phases = root.Breakdown()
			if coll != nil {
				if r, ok := coll.Report(); ok {
					rp := r
					man.Stats = &rp
				}
				man.EarlyStop = earlyStopInfo(coll.Decision())
			}
			if journal != nil {
				man.Journal = filepath.Base(journal.Path())
			}
			manPath := filepath.Join(*outDir, exp.ID+".manifest.json")
			if err := man.Write(manPath); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
			fmt.Fprintf(out, "wrote %s\n\n", manPath)
			rec = runRecord(exp, digest, params, diff, man.Phases)
			rec.CSV = man.CSV
			rec.CSVSHA256 = man.CSVSHA256
		} else {
			root.End()
			rec = runRecord(exp, digest, params, obs.Diff(before, obs.Snapshot()), root.Breakdown())
		}
		if coll != nil {
			if r, ok := coll.Report(); ok {
				rec.QoMMean, rec.QoMHalfWidth = r.Mean, r.HalfWidth
			}
			if d := coll.Decision(); d != nil {
				rec.EarlyStopReps = d.Reps
			}
		}
		if journal != nil {
			if err := journal.Record(rec); err != nil {
				return fmt.Errorf("recording %s in run journal: %w", exp.ID, err)
			}
		}
		active.Complete(rec)
		spanRoots = append(spanRoots, root)
	}
	if spansPath != "" {
		sf, err := os.Create(spansPath)
		if err != nil {
			return fmt.Errorf("creating spans file: %w", err)
		}
		if err := obs.WriteChromeTrace(sf, spanRoots...); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return fmt.Errorf("writing spans file: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", spansPath)
	}
	profilesStopped = true
	return stopProfiles()
}

// runRecord assembles the journal/registry record for one experiment:
// the manifest's identity and configuration facts plus the engine
// attribution and event totals carved from the experiment's metrics
// diff.
func runRecord(exp experiments.Experiment, digest string, p manifestParams, diff map[string]float64, phases *obs.Phase) obs.RunRecord {
	used, fallbacks := obs.EngineCounts(diff)
	return obs.RunRecord{
		Experiment:   exp.ID,
		Title:        exp.Title,
		ConfigDigest: digest,
		Engine:       p.engine.String(),
		Seed:         p.seed,
		Slots:        p.slots,
		Batch:        p.batch,
		Workers:      parallel.Workers(p.workers),
		Quick:        p.quick,
		Status:       "ok",
		WallMillis:   p.elapsed.Milliseconds(),
		EnginesUsed:  used,
		Fallbacks:    fallbacks,
		Events:       int64(diff["sim.events"]),
		Captures:     int64(diff["sim.captures"]),
		Phases:       phases,
	}
}

// earlyStopInfo converts a sim.StopDecision into its manifest mirror
// (obs cannot import sim). Nil-safe.
func earlyStopInfo(d *sim.StopDecision) *obs.EarlyStopInfo {
	if d == nil {
		return nil
	}
	return &obs.EarlyStopInfo{
		TargetRelHW:  d.TargetRelHW,
		MinReps:      d.MinReps,
		MaxReps:      d.MaxReps,
		Reps:         d.Reps,
		RelHalfWidth: d.RelHalfWidth,
		Stopped:      d.Stopped,
	}
}

// manifestParams carries the per-invocation facts manifestFor records.
type manifestParams struct {
	slots   int64
	seed    uint64
	quick   bool
	workers int
	batch   int
	engine  sim.Engine
	start   time.Time
	elapsed time.Duration
	outDir  string
	cpuProf string
	memProf string
	trace   *obs.TraceInfo
}

// manifestFor assembles the JSON sidecar for one experiment's CSV. The
// metrics block is the experiment's own share of the process counters
// (the Snapshot diff around its Run call), carved by prefix into
// run-level ("sim.") and process-level ("cache.", "pool.") blocks.
func manifestFor(exp experiments.Experiment, csv []byte, diff map[string]float64, digest string, p manifestParams) *obs.Manifest {
	man := &obs.Manifest{
		Schema:     obs.ManifestSchema,
		Experiment: exp.ID,
		Title:      exp.Title,
		CSV:        exp.ID + ".csv",
		CSVSHA256:  obs.SHA256Hex(csv),
		Config: obs.ManifestConfig{
			Slots:   p.slots,
			Seed:    p.seed,
			Quick:   p.quick,
			Workers: parallel.Workers(p.workers),
			Engine:  p.engine.String(),
		},
		ConfigDigest:  digest,
		StartedAt:     p.start.UTC().Format(time.RFC3339),
		WallMillis:    p.elapsed.Milliseconds(),
		GoVersion:     obs.GoVersion(),
		BinaryVersion: obs.BinaryVersion(),
		Metrics:       obs.FilterPrefix(diff, "sim."),
		Process:       obs.FilterPrefix(diff, "cache.", "pool."),
		Trace:         p.trace,
	}
	addProfile := func(kind, path string) {
		if path == "" {
			return
		}
		if man.Profiles == nil {
			man.Profiles = make(map[string]string)
		}
		// Point at the sibling file by base name when the profile lives in
		// the output directory, else record the path as given.
		if filepath.Dir(path) == filepath.Clean(p.outDir) {
			path = filepath.Base(path)
		}
		man.Profiles[kind] = path
	}
	addProfile("cpu", p.cpuProf)
	addProfile("mem", p.memProf)
	return man
}
