// Command experiments regenerates the paper's evaluation (every figure
// of Section VI) plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3a,fig4b
//	experiments -run all -out results -quick
//
// Each experiment prints a paper-style ASCII table; with -out set, a CSV
// per experiment is written into the directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eventcap/internal/cliutil"
	"eventcap/internal/experiments"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		runID   = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		outDir  = fs.String("out", "", "directory to write CSV files into (optional)")
		quick   = fs.Bool("quick", false, "reduced sweeps and shorter runs")
		slots   = fs.Int64("slots", 0, "override simulation length T (default 1e6; 1e5 with -quick)")
		seed    = fs.Uint64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker pool size for sweep points (0 = one per CPU; results are identical for any value)")
		kernel  = fs.String("kernel", "auto", "simulation engine: auto (compiled kernel when eligible) | on (force kernel) | off (reference engine)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := sim.ParseEngine(*kernel)
	if err != nil {
		return err
	}
	stopProfiles, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	profilesStopped := false
	defer func() {
		if !profilesStopped {
			stopProfiles()
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *runID == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			exp, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, exp)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments selected")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	opts := experiments.Options{Slots: *slots, Seed: *seed, Quick: *quick, Workers: *workers, Engine: engine}
	for _, exp := range selected {
		start := time.Now()
		table, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("running %s: %w", exp.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		// The "timing:" prefix marks the one note allowed to vary between
		// runs; CSV output carries no notes, so it stays byte-identical
		// for a fixed seed at any worker count.
		table.Notes = append(table.Notes, fmt.Sprintf("timing: %v wall-clock with %d workers", elapsed, parallel.Workers(*workers)))
		fmt.Fprintln(out, table.ASCII())
		fmt.Fprintf(out, "(%s finished in %v)\n\n", exp.ID, elapsed)
		if *outDir != "" {
			path := filepath.Join(*outDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}
	profilesStopped = true
	return stopProfiles()
}
