package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig3a", "fig6b", "ablation-lp", "ablation-multipoi"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "ablation-lp", "-quick", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-lp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "greedy W(40,3)") {
		t.Errorf("CSV missing expected series:\n%s", data)
	}
	if !strings.Contains(sb.String(), "ablation-lp —") {
		t.Errorf("missing ASCII table:\n%s", sb.String())
	}
}

// TestWorkersFlagByteIdenticalCSV: -workers is a wall-clock knob only;
// the CSVs it writes are byte-identical at any pool size.
func TestWorkersFlagByteIdenticalCSV(t *testing.T) {
	csvFor := func(workers string) []byte {
		t.Helper()
		dir := t.TempDir()
		var sb strings.Builder
		args := []string{"-run", "fig3a", "-quick", "-seed", "3", "-out", dir, "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor("1")
	for _, w := range []string{"4", "8"} {
		if got := csvFor(w); !bytes.Equal(got, base) {
			t.Errorf("-workers %s CSV differs from -workers 1:\n%s\nvs\n%s", w, got, base)
		}
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
