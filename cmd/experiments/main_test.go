package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eventcap/internal/obs"
	"eventcap/internal/trace"
)

func TestListPrintsAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig3a", "fig6b", "ablation-lp", "ablation-multipoi"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "ablation-lp", "-quick", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-lp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "greedy W(40,3)") {
		t.Errorf("CSV missing expected series:\n%s", data)
	}
	if !strings.Contains(sb.String(), "ablation-lp —") {
		t.Errorf("missing ASCII table:\n%s", sb.String())
	}
}

// TestWorkersFlagByteIdenticalCSV: -workers is a wall-clock knob only;
// the CSVs it writes are byte-identical at any pool size.
func TestWorkersFlagByteIdenticalCSV(t *testing.T) {
	csvFor := func(workers string) []byte {
		t.Helper()
		dir := t.TempDir()
		var sb strings.Builder
		args := []string{"-run", "fig3a", "-quick", "-seed", "3", "-out", dir, "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor("1")
	for _, w := range []string{"4", "8"} {
		if got := csvFor(w); !bytes.Equal(got, base) {
			t.Errorf("-workers %s CSV differs from -workers 1:\n%s\nvs\n%s", w, got, base)
		}
	}
}

// TestRunWritesManifest: every CSV gets a JSON sidecar whose hash
// matches the CSV bytes and whose metrics block satisfies the event
// classification invariant.
func TestRunWritesManifest(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-seed", "2", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "fig3a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Experiment != "fig3a" || man.CSV != "fig3a.csv" {
		t.Fatalf("manifest identity: %+v", man)
	}
	csv, err := os.ReadFile(filepath.Join(dir, man.CSV))
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SHA256Hex(csv); got != man.CSVSHA256 {
		t.Errorf("csv hash %s != manifest %s", got, man.CSVSHA256)
	}
	if man.Config.Seed != 2 || !man.Config.Quick || man.Config.Engine != "auto" {
		t.Errorf("manifest config: %+v", man.Config)
	}
	if !strings.HasPrefix(man.ConfigDigest, "sha256:") || man.GoVersion == "" || man.BinaryVersion == "" {
		t.Errorf("manifest provenance: digest=%q go=%q bin=%q", man.ConfigDigest, man.GoVersion, man.BinaryVersion)
	}
	m := man.Metrics
	events, captures := m["sim.events"], m["sim.captures"]
	if events == 0 {
		t.Fatal("manifest metrics recorded no events")
	}
	if sum := captures + m["sim.miss.asleep"] + m["sim.miss.noenergy"]; sum != events {
		t.Errorf("captures %v + misses = %v, want events %v", captures, sum, events)
	}
	if man.Process["pool.jobs.done"] == 0 {
		t.Error("manifest process block recorded no pool jobs")
	}
}

// TestMetricsAddrKeepsCSVByteIdentical: observability is output-neutral
// end to end — serving /debug/vars (and collecting everything behind it)
// must not perturb a single CSV byte.
func TestMetricsAddrKeepsCSVByteIdentical(t *testing.T) {
	csvFor := func(extra ...string) []byte {
		t.Helper()
		dir := t.TempDir()
		var sb strings.Builder
		args := append([]string{"-run", "fig3a", "-quick", "-seed", "5", "-out", dir}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor()
	if got := csvFor("-metrics-addr", "127.0.0.1:0"); !bytes.Equal(got, base) {
		t.Errorf("-metrics-addr changed the CSV:\n%s\nvs\n%s", got, base)
	}
	if got := csvFor("-progress", "1h"); !bytes.Equal(got, base) {
		t.Errorf("-progress changed the CSV:\n%s\nvs\n%s", got, base)
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestTraceFlagKeepsCSVByteIdentical: slot-level tracing (full trace
// plus flight recorder) is RNG-neutral end to end — the CSV bytes must
// not change.
func TestTraceFlagKeepsCSVByteIdentical(t *testing.T) {
	csvFor := func(extra ...string) []byte {
		t.Helper()
		dir := t.TempDir()
		var sb strings.Builder
		args := append([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "7", "-out", dir}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor()
	if got := csvFor("-trace", "-flight-recorder", "64"); !bytes.Equal(got, base) {
		t.Errorf("-trace changed the CSV:\n%s\nvs\n%s", got, base)
	}
}

// TestTraceManifestVerifies: the trace block in the manifest must point
// at a trace whose hash matches and whose replay reproduces the
// manifest's metrics exactly (the artifact cmd/tracetool replay gates
// on in CI).
func TestTraceManifestVerifies(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "7", "-out", dir, "-trace"}, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "fig3a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != obs.ManifestSchema {
		t.Fatalf("manifest schema %q", man.Schema)
	}
	if man.Trace == nil || man.Trace.File != "fig3a.evtrace" || man.Trace.Mode != "full" {
		t.Fatalf("manifest trace block: %+v", man.Trace)
	}
	data, err := os.ReadFile(filepath.Join(dir, man.Trace.File))
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SHA256Hex(data); got != man.Trace.SHA256 {
		t.Fatalf("trace hash %s != manifest %s", got, man.Trace.SHA256)
	}
	sum, err := trace.Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	m := man.Metrics
	if float64(sum.Events) != m["sim.events"] || float64(sum.Captures) != m["sim.captures"] ||
		float64(sum.MissAsleep) != m["sim.miss.asleep"] || float64(sum.MissNoEnergy) != m["sim.miss.noenergy"] ||
		float64(sum.Wasted) != m["sim.wasted_activations"] {
		t.Errorf("replay %+v disagrees with manifest metrics %v", sum, m)
	}
	if sum.Runs != man.Trace.Runs || float64(sum.Runs) != m["sim.runs.kernel"]+m["sim.runs.reference"] {
		t.Errorf("replay runs %d, manifest %d (engines %v+%v)",
			sum.Runs, man.Trace.Runs, m["sim.runs.kernel"], m["sim.runs.reference"])
	}
}

func TestTraceRequiresOut(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-trace"}, &sb); err == nil {
		t.Fatal("-trace without -out accepted")
	}
}

// TestSpansFlagKeepsCSVByteIdentical: the phase-span profiler is
// RNG-neutral end to end — writing a Chrome trace must not change a
// single CSV byte — and the spans file must be valid trace-event JSON
// with the run's phases in it.
func TestSpansFlagKeepsCSVByteIdentical(t *testing.T) {
	csvFor := func(dir string, extra ...string) []byte {
		t.Helper()
		var sb strings.Builder
		args := append([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "9", "-out", dir}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor(t.TempDir())
	dir := t.TempDir()
	got := csvFor(dir, "-spans", "spans.json")
	if !bytes.Equal(got, base) {
		t.Errorf("-spans changed the CSV:\n%s\nvs\n%s", got, base)
	}

	data, err := os.ReadFile(filepath.Join(dir, "spans.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("spans file is not trace-event JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: ph = %q", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"fig3a", "run", "solve", "sim.run", "compile", "write"} {
		if !names[want] {
			t.Errorf("spans file missing a %q span (have %v)", want, names)
		}
	}
}

// TestRunWritesJournalAndPhases: every -out run journals one wide-event
// JSON line per experiment and embeds the phase breakdown in a schema-v3
// manifest that names the journal.
func TestRunWritesJournalAndPhases(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "4", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}

	man, err := obs.ReadManifest(filepath.Join(dir, "fig3a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != obs.ManifestSchema {
		t.Fatalf("schema = %q, want v3 (%q)", man.Schema, obs.ManifestSchema)
	}
	if man.Journal != "runs.jsonl" {
		t.Fatalf("manifest journal = %q", man.Journal)
	}
	if man.Phases == nil || man.Phases.Name != "fig3a" || len(man.Phases.Phases) == 0 {
		t.Fatalf("manifest phases = %+v", man.Phases)
	}
	var simRun *obs.Phase
	for _, p := range man.Phases.Phases[0].Phases {
		if p.Name == "sim.run" {
			simRun = p
		}
	}
	if simRun == nil || simRun.Count == 0 {
		t.Fatalf("phase tree missing merged sim.run phases: %+v", man.Phases.Phases[0])
	}

	data, err := os.ReadFile(filepath.Join(dir, "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("journal lines = %d, want 1", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("journal line not JSON: %v", err)
	}
	if rec["experiment"] != "fig3a" || rec["status"] != "ok" {
		t.Fatalf("journal record = %v", rec)
	}
	if rec["csv"] != "fig3a.csv" || rec["config_digest"] != man.ConfigDigest {
		t.Fatalf("journal identity = %v", rec)
	}
	if rec["events"] == float64(0) {
		t.Fatal("journal recorded no events")
	}
	if eng, _ := rec["engines_used"].(map[string]any); len(eng) == 0 {
		t.Fatalf("journal engines_used = %v", rec["engines_used"])
	}
	if ph, _ := rec["phases"].(map[string]any); ph["name"] != "fig3a" {
		t.Fatalf("journal phases = %v", rec["phases"])
	}
}

// TestStatsFlagKeepsCSVByteIdentical: the streaming-statistics probe is
// RNG-neutral end to end — CSVs with and without -stats are equal.
func TestStatsFlagKeepsCSVByteIdentical(t *testing.T) {
	csvFor := func(extra ...string) []byte {
		t.Helper()
		dir := t.TempDir()
		var sb strings.Builder
		args := append([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "11", "-out", dir}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := csvFor("-stats=false")
	if got := csvFor(); !bytes.Equal(got, base) {
		t.Errorf("-stats changed the CSV:\n%s\nvs\n%s", got, base)
	}
}

// TestManifestRecordsStats: every run's manifest (schema v4) carries the
// pooled QoM report, consistent with its own metrics block.
func TestManifestRecordsStats(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "6", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "fig3a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != "eventcap/run-manifest/v4" {
		t.Fatalf("schema = %q, want v4", man.Schema)
	}
	s := man.Stats
	if s == nil {
		t.Fatal("manifest has no stats block")
	}
	if s.Method != "pooled" || s.Count == 0 {
		t.Fatalf("stats block %+v", s)
	}
	// The pooled mean is exactly the metrics block's captures/events.
	if ev := man.Metrics["sim.events"]; ev == 0 || s.Mean != man.Metrics["sim.captures"]/ev {
		t.Errorf("pooled mean %v inconsistent with metrics %v/%v",
			s.Mean, man.Metrics["sim.captures"], man.Metrics["sim.events"])
	}
	if float64(s.Events) != man.Metrics["sim.events"] || float64(s.Captures) != man.Metrics["sim.captures"] {
		t.Errorf("stats totals %d/%d != metrics totals %v/%v",
			s.Captures, s.Events, man.Metrics["sim.captures"], man.Metrics["sim.events"])
	}
	if !strings.Contains(sb.String(), "stats: qom ") {
		t.Errorf("stdout missing the stats line:\n%s", sb.String())
	}
}

// TestEarlyStopRecordedInManifest is the CI-targeted early-stop
// acceptance path: a loose target with a generous budget must stop
// before exhausting it, and the manifest and journal must record the
// replication count the run settled on.
func TestEarlyStopRecordedInManifest(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	args := []string{"-run", "fig3a", "-quick", "-slots", "20000", "-seed", "5",
		"-batch", "16", "-target-rel-hw", "0.5", "-out", dir}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "fig3a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	es := man.EarlyStop
	if es == nil {
		t.Fatal("manifest has no early_stop block")
	}
	if es.TargetRelHW != 0.5 || es.MaxReps != 16 {
		t.Fatalf("early_stop inputs %+v", es)
	}
	if !es.Stopped || es.Reps >= es.MaxReps || es.Reps < es.MinReps {
		t.Fatalf("loose target did not stop inside the budget: %+v", es)
	}
	if es.RelHalfWidth <= 0 || es.RelHalfWidth > es.TargetRelHW {
		t.Fatalf("recorded half-width %v misses the target %v", es.RelHalfWidth, es.TargetRelHW)
	}
	if man.Stats == nil {
		t.Fatal("early-stopped run lost its stats block")
	}

	data, err := os.ReadFile(filepath.Join(dir, "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatal(err)
	}
	if got, _ := rec["early_stop_reps"].(float64); int(got) != es.Reps {
		t.Errorf("journal early_stop_reps = %v, manifest %d", rec["early_stop_reps"], es.Reps)
	}
	if qom, _ := rec["qom_mean"].(float64); qom <= 0 {
		t.Errorf("journal qom_mean = %v", rec["qom_mean"])
	}
	if !strings.Contains(sb.String(), "stats: early stop settled at ") {
		t.Errorf("stdout missing the early-stop line:\n%s", sb.String())
	}
}

func TestEarlyStopFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig3a", "-quick", "-target-rel-hw", "0.1"}, &sb); err == nil {
		t.Fatal("-target-rel-hw without -batch accepted")
	}
	if err := run([]string{"-run", "fig3a", "-quick", "-min-reps", "4"}, &sb); err == nil {
		t.Fatal("-min-reps without -target-rel-hw accepted")
	}
}
