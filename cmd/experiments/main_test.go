package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig3a", "fig6b", "ablation-lp", "ablation-multipoi"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "ablation-lp", "-quick", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-lp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "greedy W(40,3)") {
		t.Errorf("CSV missing expected series:\n%s", data)
	}
	if !strings.Contains(sb.String(), "ablation-lp —") {
		t.Errorf("missing ASCII table:\n%s", sb.String())
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
