package main

// SARIF 2.1.0 output (https://docs.oasis-open.org/sarif/sarif/v2.1.0/):
// one run, the full analyzer suite as the tool's rule set, one result
// per finding in SortDiagnostics order. Findings absorbed by the
// baseline are still emitted — marked with an external suppression
// carrying the baseline's why text — so code-scanning UIs show the
// acknowledged debt without failing the gate on it.

import (
	"encoding/json"
	"os"

	"eventcap/internal/analysis/analyzers"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// buildSARIF assembles the log. suppressed maps finding index (into
// findings) to the baseline why text for findings the baseline absorbs.
func buildSARIF(findings []Finding, suppressed map[int]string) *sarifLog {
	all := analyzers.All()
	rules := make([]sarifRule, len(all))
	ruleIndex := make(map[string]int, len(all))
	for i, a := range all {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		ruleIndex[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for i, f := range findings {
		r := sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if why, ok := suppressed[i]; ok {
			r.Suppressions = []sarifSuppression{{Kind: "external", Justification: why}}
		}
		results = append(results, r)
	}
	return &sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "eventcap-lint", Rules: rules}},
			Results: results,
		}},
	}
}

func writeSARIFFile(path string, findings []Finding, suppressed map[int]string) error {
	data, err := json.MarshalIndent(buildSARIF(findings, suppressed), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
