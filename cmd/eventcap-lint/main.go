// Command eventcap-lint runs the repository's determinism and invariant
// lint suite (DESIGN.md §10): five custom analyzers — nondeterm,
// floateq, probrange, seedflow, expvarname — over the module's
// packages, scoped per analyzers.For. It exits nonzero when any
// unsuppressed finding remains, which is what makes `make lint` and the
// CI lint job hard gates.
//
// Usage:
//
//	eventcap-lint [-list] [-C dir] [packages ...]
//
// With no package arguments it lints ./.... -list prints the registered
// analyzer suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/analyzers"
	"eventcap/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("eventcap-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	dir := fs.String("C", ".", "directory to run in (the module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Lint(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eventcap-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "eventcap-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// Lint loads the packages matched by patterns under dir and runs each
// applicable analyzer, returning formatted findings sorted by position.
func Lint(dir string, patterns []string) ([]string, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		suite := analyzers.For(pkg.ImportPath)
		if len(suite) == 0 {
			continue
		}
		var diags []analysis.Diagnostic
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s",
				pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message))
		}
	}
	return out, nil
}
