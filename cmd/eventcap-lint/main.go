// Command eventcap-lint runs the repository's determinism and invariant
// lint suite (DESIGN.md §10, §15): eight custom analyzers — nondeterm,
// floateq, probrange, seedflow, expvarname, spanend, lockbalance,
// closecheck — over the module's packages, scoped per analyzers.For. It
// exits nonzero when any unsuppressed finding remains, which is what
// makes `make lint` and the CI lint job hard gates.
//
// Usage:
//
//	eventcap-lint [-list] [-C dir] [-sarif file] [-baseline file]
//	              [-write-baseline] [packages ...]
//
// With no package arguments it lints ./.... -list prints the registered
// analyzer suite and exits. -sarif writes the full result set (including
// baselined findings, marked suppressed) as SARIF 2.1.0 for code-scanning
// uploads. -baseline reads a committed debt ledger (see baseline.go) and
// exits clean when every finding is accounted for; -write-baseline
// regenerates that ledger from the current findings.
//
// Exit codes: 0 — no findings beyond the baseline; 1 — new findings;
// 2 — load, type-check or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/analyzers"
	"eventcap/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("eventcap-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	dir := fs.String("C", ".", "directory to run in (the module root)")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "accept findings recorded in this baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from current findings and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "eventcap-lint: -write-baseline requires -baseline <file>")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eventcap-lint:", err)
		return 2
	}

	if *writeBaseline {
		if err := writeBaselineFile(*baselinePath, findings); err != nil {
			fmt.Fprintln(stderr, "eventcap-lint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "eventcap-lint: wrote %d baseline entr(ies) to %s\n", len(findings), *baselinePath)
		return 0
	}

	var bl *baseline
	if *baselinePath != "" {
		bl, err = readBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "eventcap-lint:", err)
			return 2
		}
	}
	fresh, suppressed := bl.partition(findings)

	if *sarifPath != "" {
		if err := writeSARIFFile(*sarifPath, findings, suppressed); err != nil {
			fmt.Fprintln(stderr, "eventcap-lint:", err)
			return 2
		}
	}
	for _, f := range fresh {
		fmt.Fprintln(stdout, f)
	}
	if n := len(findings) - len(fresh); n > 0 {
		fmt.Fprintf(stderr, "eventcap-lint: %d finding(s) suppressed by baseline %s\n", n, *baselinePath)
	}
	if stale := bl.stale(); len(stale) > 0 {
		fmt.Fprintf(stderr, "eventcap-lint: %d stale baseline entr(ies) — the debt was paid, prune them:\n", len(stale))
		for _, e := range stale {
			fmt.Fprintf(stderr, "  %s [%s] %s\n", e.File, e.Analyzer, e.Message)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "eventcap-lint: %d finding(s)\n", len(fresh))
		return 1
	}
	return 0
}

// Finding is one diagnostic located in the source tree. File is
// module-root-relative with forward slashes, so findings are stable
// across checkouts and usable as baseline keys and SARIF URIs.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// key identifies a finding for baseline matching: position-free, so
// unrelated edits shifting line numbers do not invalidate the ledger.
func (f Finding) key() baselineKey {
	return baselineKey{File: f.File, Analyzer: f.Analyzer, Message: f.Message}
}

// Lint loads the packages matched by patterns under dir and runs each
// applicable analyzer, returning findings in SortDiagnostics order
// (per package: by file, line, column).
func Lint(dir string, patterns []string) ([]Finding, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		suite := analyzers.For(pkg.ImportPath)
		if len(suite) == 0 {
			continue
		}
		var diags []analysis.Diagnostic
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, Finding{
				File:     relPath(absDir, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

// relPath rewrites an absolute source path as module-root-relative with
// forward slashes; paths outside root pass through unchanged.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) &&
		rel != ".." && !filepathHasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

func filepathHasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
