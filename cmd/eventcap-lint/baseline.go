package main

// The lint baseline is a committed ledger of accepted findings: debt
// acknowledged, reviewed, and tracked rather than silenced at the source
// with a justification comment. Entries are keyed position-free by
// (file, analyzer, message) with an occurrence count, so edits that only
// shift line numbers do not invalidate the ledger, while fixing one of
// two identical findings in a file does surface the improvement (the
// entry goes stale and the run says so).
//
// Format (eventcap/lint-baseline/v1):
//
//	{
//	  "schema": "eventcap/lint-baseline/v1",
//	  "findings": [
//	    {"file": "cmd/x/main.go", "analyzer": "closecheck",
//	     "message": "...", "count": 1, "why": "reviewed: ..."}
//	  ]
//	}
//
// The why field is for humans and reviewers; the tool preserves but does
// not interpret it. Regenerate with -write-baseline (which leaves why
// empty for the author to fill in) and prune stale entries promptly.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

const baselineSchema = "eventcap/lint-baseline/v1"

type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
	Why      string `json:"why,omitempty"`
}

type baselineFile struct {
	Schema   string          `json:"schema"`
	Findings []baselineEntry `json:"findings"`
}

// baseline is the loaded ledger plus consumption bookkeeping: partition
// decrements remaining counts, and what is left over is stale debt.
type baseline struct {
	entries   []baselineEntry
	remaining map[baselineKey]int
	why       map[baselineKey]string
}

func readBaselineFile(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if bf.Schema != baselineSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", path, bf.Schema, baselineSchema)
	}
	b := &baseline{
		entries:   bf.Findings,
		remaining: make(map[baselineKey]int, len(bf.Findings)),
		why:       make(map[baselineKey]string, len(bf.Findings)),
	}
	for _, e := range bf.Findings {
		k := baselineKey{File: e.File, Analyzer: e.Analyzer, Message: e.Message}
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.remaining[k] += n
		if e.Why != "" {
			b.why[k] = e.Why
		}
	}
	return b, nil
}

// partition splits findings into fresh (not covered by the baseline) and
// suppressed (covered; value is the entry's why text). A nil baseline
// suppresses nothing. Each baseline entry absorbs at most Count
// occurrences of its key; extras are fresh.
func (b *baseline) partition(findings []Finding) (fresh []Finding, suppressed map[int]string) {
	suppressed = make(map[int]string)
	if b == nil {
		return findings, suppressed
	}
	for i, f := range findings {
		k := f.key()
		if b.remaining[k] > 0 {
			b.remaining[k]--
			suppressed[i] = b.why[k]
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// stale returns the baseline entries with unconsumed count after
// partition: debt that has been paid and should be pruned.
func (b *baseline) stale() []baselineEntry {
	if b == nil {
		return nil
	}
	var out []baselineEntry
	for _, e := range b.entries {
		k := baselineKey{File: e.File, Analyzer: e.Analyzer, Message: e.Message}
		if b.remaining[k] > 0 {
			b.remaining[k] = 0 // report duplicate-key entries once
			out = append(out, e)
		}
	}
	return out
}

// writeBaselineFile regenerates the ledger from the current findings,
// aggregating identical keys into counts, sorted for stable diffs. The
// why fields start empty: the author documents each debt before commit.
func writeBaselineFile(path string, findings []Finding) error {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[f.key()]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		if keys[i].Analyzer != keys[j].Analyzer {
			return keys[i].Analyzer < keys[j].Analyzer
		}
		return keys[i].Message < keys[j].Message
	})
	bf := baselineFile{Schema: baselineSchema, Findings: make([]baselineEntry, 0, len(keys))}
	for _, k := range keys {
		bf.Findings = append(bf.Findings, baselineEntry{
			File: k.File, Analyzer: k.Analyzer, Message: k.Message, Count: counts[k],
		})
	}
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
