package main

import (
	"strings"
	"testing"

	"eventcap/internal/analysis/analyzers"
)

// TestLintCleanPackage runs the real driver over a package that must be
// clean: the annotated rng package, which carries a justified floateq
// exception. Zero findings proves both the load path and the
// justification plumbing end to end.
func TestLintCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	diags, err := Lint("../..", []string{"./internal/rng"})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("expected clean lint, got %d finding(s):\n%s", len(diags), strings.Join(diags, "\n"))
	}
}

// TestLintWiresFullSuite asserts the command exposes exactly the
// registered analyzer set (the -list contract scripts depend on).
func TestLintWiresFullSuite(t *testing.T) {
	want := map[string]bool{
		"nondeterm": true, "floateq": true, "probrange": true,
		"seedflow": true, "expvarname": true,
	}
	got := analyzers.All()
	if len(got) != len(want) {
		t.Fatalf("command registers %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
	}
}
