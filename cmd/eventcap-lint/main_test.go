package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"eventcap/internal/analysis/analyzers"
)

// TestLintCleanPackage runs the real driver over a package that must be
// clean: the annotated rng package, which carries a justified floateq
// exception. Zero findings proves both the load path and the
// justification plumbing end to end.
func TestLintCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	findings, err := Lint("../..", []string{"./internal/rng"})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("expected clean lint, got: %s", f)
	}
}

// TestLintSelfClean is the suite's fixed point: all eight analyzers run
// over the whole module, and every finding must be either fixed, carry a
// justification comment, or be acknowledged in the committed baseline.
// A new finding fails this test the same way it fails `make lint`.
func TestLintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list over the whole module")
	}
	findings, err := Lint("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	bl, err := readBaselineFile("../../lint-baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	fresh, _ := bl.partition(findings)
	for _, f := range fresh {
		t.Errorf("unbaselined finding: %s", f)
	}
	for _, e := range bl.stale() {
		t.Errorf("stale baseline entry (debt paid, prune it): %s [%s] %s", e.File, e.Analyzer, e.Message)
	}
}

// TestLintWiresFullSuite asserts the command exposes exactly the
// registered analyzer set (the -list contract scripts depend on).
func TestLintWiresFullSuite(t *testing.T) {
	want := map[string]bool{
		"nondeterm": true, "floateq": true, "probrange": true,
		"seedflow": true, "expvarname": true,
		"spanend": true, "lockbalance": true, "closecheck": true,
	}
	got := analyzers.All()
	if len(got) != len(want) {
		t.Fatalf("command registers %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
	}
}

// TestSARIFOutput checks the emitted log parses as SARIF 2.1.0 with the
// full rule set and findings in input (SortDiagnostics) order, and that
// baselined findings carry an external suppression.
func TestSARIFOutput(t *testing.T) {
	findings := []Finding{
		{File: "internal/a/a.go", Line: 3, Col: 7, Analyzer: "spanend", Message: "span leak"},
		{File: "internal/b/b.go", Line: 10, Col: 2, Analyzer: "closecheck", Message: "file leak"},
	}
	path := filepath.Join(t.TempDir(), "lint.sarif")
	if err := writeSARIFFile(path, findings, map[int]string{1: "reviewed: handoff"}); err != nil {
		t.Fatalf("writeSARIFFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "eventcap-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	all := analyzers.All()
	if len(run.Tool.Driver.Rules) != len(all) {
		t.Fatalf("got %d rules, want %d (the full suite)", len(run.Tool.Driver.Rules), len(all))
	}
	for i, a := range all {
		if run.Tool.Driver.Rules[i].ID != a.Name {
			t.Errorf("rule %d = %q, want %q", i, run.Tool.Driver.Rules[i].ID, a.Name)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(findings))
	}
	for i, f := range findings {
		r := run.Results[i]
		if r.RuleID != f.Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, f.Analyzer)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != f.File || loc.Region.StartLine != f.Line {
			t.Errorf("result %d at %s:%d, want %s:%d", i, loc.ArtifactLocation.URI, loc.Region.StartLine, f.File, f.Line)
		}
	}
	if len(run.Results[0].Suppressions) != 0 {
		t.Error("unbaselined finding must not be suppressed")
	}
	if len(run.Results[1].Suppressions) != 1 || run.Results[1].Suppressions[0].Kind != "external" {
		t.Errorf("baselined finding must carry one external suppression, got %+v", run.Results[1].Suppressions)
	}
}

// TestBaselineRoundTrip checks write → read → partition: recorded
// findings are absorbed (respecting counts), new ones stay fresh, and
// paid-off debt is reported stale.
func TestBaselineRoundTrip(t *testing.T) {
	recorded := []Finding{
		{File: "a.go", Line: 1, Col: 1, Analyzer: "spanend", Message: "leak"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "spanend", Message: "leak"}, // same key, count 2
		{File: "b.go", Line: 2, Col: 2, Analyzer: "floateq", Message: "cmp"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaselineFile(path, recorded); err != nil {
		t.Fatalf("writeBaselineFile: %v", err)
	}

	bl, err := readBaselineFile(path)
	if err != nil {
		t.Fatalf("readBaselineFile: %v", err)
	}
	// Current run: one of the two a.go leaks fixed (line moved, still
	// covered — keys are position-free), b.go debt paid, one new finding.
	current := []Finding{
		{File: "a.go", Line: 5, Col: 1, Analyzer: "spanend", Message: "leak"},
		{File: "c.go", Line: 3, Col: 3, Analyzer: "closecheck", Message: "new leak"},
	}
	fresh, suppressed := bl.partition(current)
	if len(fresh) != 1 || fresh[0].File != "c.go" {
		t.Errorf("fresh = %v, want only the c.go finding", fresh)
	}
	if _, ok := suppressed[0]; !ok {
		t.Error("the surviving a.go finding should be suppressed by the baseline")
	}
	stale := bl.stale()
	if len(stale) != 2 {
		t.Fatalf("got %d stale entries, want 2 (one leftover a.go count, the paid b.go debt)", len(stale))
	}

	var missing *baseline
	fresh, _ = missing.partition(current)
	if len(fresh) != len(current) {
		t.Errorf("nil baseline must suppress nothing, got %d fresh of %d", len(fresh), len(current))
	}
}

// TestBaselineRejectsWrongSchema guards against loading an unrelated
// JSON file as a ledger.
func TestBaselineRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something/else","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaselineFile(path); err == nil {
		t.Error("wrong schema must be rejected")
	}
}
