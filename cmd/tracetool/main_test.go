package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eventcap/internal/obs"
	"eventcap/internal/stats"
	"eventcap/internal/trace"
)

// writeSample writes a small hand-built two-run trace (one reference
// run, one kernel run with a sleep span) plus a matching v2 manifest,
// and returns their paths. The trace's ground truth: 5 events,
// 2 captures, 2 asleep misses, 1 noenergy miss, 1 wasted activation.
func writeSample(t *testing.T, dir string) (tracePath, manifestPath string) {
	t.Helper()
	tracePath = filepath.Join(dir, "sample.evtrace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)

	w.RunStart(trace.RunInfo{Engine: trace.EngineReference, Sensors: 2, Seed: 1, Slots: 40, BatteryCap: 100, Cost: 3, Policy: "greedy", Dist: "uniform", Recharge: "bernoulli"})
	w.Rec(trace.Rec{Slot: 10, Sensor: 0, Engine: trace.EngineReference, Flags: trace.FlagEvent | trace.FlagActive | trace.FlagCaptured, H: 10, F: 10, Prob: 0.8, Battery: 90, Recharge: 1})
	w.Rec(trace.Rec{Slot: 20, Sensor: 1, Engine: trace.EngineReference, Flags: trace.FlagEvent | trace.FlagDenied, H: 10, F: 20, Prob: 1, Battery: 2})
	w.Rec(trace.Rec{Slot: 30, Sensor: -1, Engine: trace.EngineReference, Flags: trace.FlagEvent, H: 10, F: 30})
	w.Rec(trace.Rec{Slot: 35, Sensor: 0, Engine: trace.EngineReference, Flags: trace.FlagActive, H: 15, F: 25, Prob: 0.3, Battery: 80})
	w.RunEnd(trace.RunEnd{Events: 3, Captures: 1})

	w.RunStart(trace.RunInfo{Engine: trace.EngineKernel, Sensors: 1, Seed: 2, Slots: 60, BatteryCap: 200, Cost: 3, Policy: "threshold", Dist: "uniform", Recharge: "bernoulli"})
	w.Span(trace.Span{Start: 1, Len: 50, Events: 1, State: 1, Delivered: 25, Battery: 150})
	w.Rec(trace.Rec{Slot: 51, Sensor: 0, Engine: trace.EngineKernel, Flags: trace.FlagEvent | trace.FlagActive | trace.FlagCaptured, H: 1, F: 51, Prob: 0.9, Battery: 150, Recharge: 1})
	w.RunEnd(trace.RunEnd{Events: 2, Captures: 1})

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	man := &obs.Manifest{
		Experiment: "sample",
		CSV:        "sample.csv",
		Metrics: map[string]float64{
			"sim.events": 5, "sim.captures": 2,
			"sim.miss.asleep": 2, "sim.miss.noenergy": 1,
			"sim.wasted_activations": 1,
			"sim.runs.reference":     1, "sim.runs.kernel": 1,
		},
		Trace: &obs.TraceInfo{
			File:   "sample.evtrace",
			SHA256: w.SHA256(),
			Mode:   "full",
			Runs:   2, Records: 5, Spans: 1,
		},
	}
	manifestPath = filepath.Join(dir, "sample.manifest.json")
	if err := man.Write(manifestPath); err != nil {
		t.Fatal(err)
	}
	return tracePath, manifestPath
}

func TestRunRejectsUnknownSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestDumpCSV(t *testing.T) {
	tracePath, _ := writeSample(t, t.TempDir())
	var sb strings.Builder
	if err := run([]string{"dump", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + 2 run-start + 5 slots + 1 span + 2 run-end
	if len(lines) != 11 {
		t.Fatalf("dump produced %d lines, want 11:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "frame,run,slot,sensor") {
		t.Errorf("missing CSV header: %s", lines[0])
	}
	for _, want := range []string{"run-start,0", "slot,0,10,0,reference", "span,1,1", "run-end,1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("dump output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestDumpJSONL(t *testing.T) {
	tracePath, _ := writeSample(t, t.TempDir())
	var sb strings.Builder
	if err := run([]string{"dump", "-format", "jsonl", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		kinds = append(kinds, row["frame"].(string))
	}
	want := []string{"run-start", "slot", "slot", "slot", "slot", "run-end", "run-start", "span", "slot", "run-end"}
	if len(kinds) != len(want) {
		t.Fatalf("frames %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("frame %d is %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestDumpRejectsBadFormat(t *testing.T) {
	tracePath, _ := writeSample(t, t.TempDir())
	var sb strings.Builder
	if err := run([]string{"dump", "-format", "xml", tracePath}, &sb); err == nil {
		t.Error("bad format accepted")
	}
}

func TestStats(t *testing.T) {
	tracePath, _ := writeSample(t, t.TempDir())
	var sb strings.Builder
	if err := run([]string{"stats", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Trace trace.StatsReport `json:"trace"`
		QoM   struct {
			Runs   []stats.Report `json:"runs"`
			Pooled stats.Report   `json:"pooled"`
		} `json:"qom"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("stats output did not parse: %v\n%s", err, sb.String())
	}
	if rep.Trace.Runs != 2 || len(rep.Trace.Regions) == 0 {
		t.Errorf("trace block: %+v", rep.Trace)
	}
	if len(rep.QoM.Runs) != 2 {
		t.Fatalf("qom runs: %+v", rep.QoM.Runs)
	}
	// Ground truth: run 0 has 3 events / 1 capture, run 1 has 2 / 1
	// (the span's event is a miss).
	if r := rep.QoM.Runs[0]; r.Events != 3 || r.Captures != 1 || r.Method != stats.MethodBatchMeans {
		t.Errorf("run 0 report: %+v", r)
	}
	if r := rep.QoM.Runs[1]; r.Events != 2 || r.Captures != 1 {
		t.Errorf("run 1 report: %+v", r)
	}
	p := rep.QoM.Pooled
	if p.Events != 5 || p.Captures != 2 || p.Mean != 0.4 || p.Method != stats.MethodPooled {
		t.Errorf("pooled report: %+v", p)
	}
}

// TestStatsManifestCheck: -manifest verifies the rebuilt estimate
// against the manifest's stats block, and fails on a doctored mean.
func TestStatsManifestCheck(t *testing.T) {
	tracePath, manifestPath := writeSample(t, t.TempDir())

	// The sample manifest has no stats block yet: that is an error.
	var sb strings.Builder
	if err := run([]string{"stats", "-manifest", manifestPath, tracePath}, &sb); err == nil {
		t.Fatal("manifest without stats block accepted")
	}

	addStats := func(mean float64) {
		t.Helper()
		man, err := obs.ReadManifest(manifestPath)
		if err != nil {
			t.Fatal(err)
		}
		man.Stats = &stats.Report{
			Method: stats.MethodPooled, Of: stats.MethodBatchMeans,
			Events: 5, Captures: 2, Mean: mean, Count: 2,
		}
		if err := man.Write(manifestPath); err != nil {
			t.Fatal(err)
		}
	}
	addStats(0.4)
	sb.Reset()
	if err := run([]string{"stats", "-manifest", manifestPath, tracePath}, &sb); err != nil {
		t.Fatalf("matching manifest rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "trace stats match manifest") {
		t.Errorf("missing match confirmation:\n%s", sb.String())
	}

	addStats(0.5)
	sb.Reset()
	if err := run([]string{"stats", "-manifest", manifestPath, tracePath}, &sb); err == nil {
		t.Fatal("doctored mean accepted")
	}
	if !strings.Contains(sb.String(), "MISMATCH qom mean") {
		t.Errorf("missing mismatch report:\n%s", sb.String())
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "b"), 0o755); err != nil {
		t.Fatal(err)
	}
	a, _ := writeSample(t, dir)
	b, _ := writeSample(t, filepath.Join(dir, "b"))
	var sb strings.Builder
	if err := run([]string{"diff", a, b}, &sb); err != nil {
		t.Fatalf("identical traces reported as diverging: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "traces identical") {
		t.Errorf("diff output: %s", sb.String())
	}

	// A modified battery value must be reported as the first divergence.
	c := filepath.Join(dir, "c.evtrace")
	f, err := os.Create(c)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	w.RunStart(trace.RunInfo{Engine: trace.EngineReference, Sensors: 2, Seed: 1, Slots: 40, BatteryCap: 100, Cost: 3, Policy: "greedy", Dist: "uniform", Recharge: "bernoulli"})
	w.Rec(trace.Rec{Slot: 10, Sensor: 0, Engine: trace.EngineReference, Flags: trace.FlagEvent | trace.FlagActive | trace.FlagCaptured, H: 10, F: 10, Prob: 0.8, Battery: 91, Recharge: 1})
	w.RunEnd(trace.RunEnd{Events: 1, Captures: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sb.Reset()
	if err := run([]string{"diff", a, c}, &sb); err == nil {
		t.Fatalf("diverging traces reported identical:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "first divergence") {
		t.Errorf("diff output: %s", sb.String())
	}
}

func TestReplayMatchesManifest(t *testing.T) {
	_, manifestPath := writeSample(t, t.TempDir())
	var sb strings.Builder
	if err := run([]string{"replay", manifestPath}, &sb); err != nil {
		t.Fatalf("replay: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "replay matches manifest") {
		t.Errorf("replay output: %s", sb.String())
	}
}

// TestReplayAcceptsV2Manifest: manifests written before the v3 phases
// block (PRs 5–7 artifacts) must keep replaying.
func TestReplayAcceptsV2Manifest(t *testing.T) {
	_, manifestPath := writeSample(t, t.TempDir())
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = json.RawMessage(`"` + obs.ManifestSchemaV2 + `"`)
	delete(raw, "phases")
	delete(raw, "journal")
	downgraded, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath, downgraded, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"replay", manifestPath}, &sb); err != nil {
		t.Fatalf("v2 manifest rejected by replay: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "replay matches manifest") {
		t.Errorf("replay output: %s", sb.String())
	}
}

func TestReplayDetectsMetricMismatch(t *testing.T) {
	_, manifestPath := writeSample(t, t.TempDir())
	man, err := obs.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	man.Metrics["sim.captures"] = 7
	if err := man.Write(manifestPath); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"replay", manifestPath}, &sb); err == nil {
		t.Fatalf("doctored manifest passed replay:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "MISMATCH captures") {
		t.Errorf("replay output: %s", sb.String())
	}
}

func TestReplayDetectsHashMismatch(t *testing.T) {
	tracePath, manifestPath := writeSample(t, t.TempDir())
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// Append a byte: the sha check must fail before any decoding.
	if err := os.WriteFile(tracePath, append(data, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"replay", manifestPath}, &sb); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("tampered trace passed replay: %v", err)
	}
}

func TestReplayRequiresTraceBlock(t *testing.T) {
	dir := t.TempDir()
	man := &obs.Manifest{Experiment: "plain", CSV: "plain.csv"}
	path := filepath.Join(dir, "plain.manifest.json")
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"replay", path}, &sb); err == nil || !strings.Contains(err.Error(), "no trace block") {
		t.Fatalf("manifest without trace block accepted: %v", err)
	}
}
