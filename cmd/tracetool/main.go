// Command tracetool inspects and verifies the slot-level traces written
// by the simulators (internal/trace binary format, .evtrace).
//
// Usage:
//
//	tracetool dump [-format csv|jsonl] trace.evtrace
//	tracetool stats [-manifest run.manifest.json] trace.evtrace
//	tracetool diff a.evtrace b.evtrace
//	tracetool replay run.manifest.json
//
// dump renders every frame as CSV (default) or JSON lines. stats
// aggregates the trace into a per-activation-region breakdown plus
// energy-outage episode statistics, and rebuilds every run's QoM
// indicator stream through the same streaming estimators
// (internal/stats) the simulators' probe uses, printing per-run and
// pooled confidence intervals; with -manifest it verifies the rebuilt
// estimate against the manifest's stats block and exits nonzero on
// disagreement. diff reports the first slot where
// two traces diverge (engine tags ignored, so reference and kernel
// traces of the same run compare up to the kernel's sleep spans).
// replay re-derives events, captures, the miss decomposition, and
// wasted activations purely from the trace and verifies them — and the
// trace file's SHA-256 — against the run manifest; it exits nonzero on
// any mismatch, making a manifest+trace pair a self-checking artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"eventcap/internal/obs"
	"eventcap/internal/stats"
	"eventcap/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracetool <dump|stats|diff|replay> [args] (see package doc)")
	}
	switch args[0] {
	case "dump":
		return runDump(args[1:], out)
	case "stats":
		return runStats(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want dump, stats, diff, or replay)", args[0])
}

func openTrace(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening trace: %w", err)
	}
	return f, nil
}

func runDump(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool dump", flag.ContinueOnError)
	format := fs.String("format", "csv", "output format: csv | jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracetool dump [-format csv|jsonl] <trace>")
	}
	if *format != "csv" && *format != "jsonl" {
		return fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}
	f, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	if *format == "csv" {
		fmt.Fprintln(out, "frame,run,slot,sensor,engine,flags,h,f,prob,battery,recharge,len,events,captures,delivered")
	}
	enc := json.NewEncoder(out)
	var run int64 = -1
	for {
		fr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if fr.Kind == trace.FrameRunStart {
			run++
		}
		if *format == "jsonl" {
			if err := enc.Encode(dumpRow(fr, run)); err != nil {
				return err
			}
			continue
		}
		if err := dumpCSV(out, fr, run); err != nil {
			return err
		}
	}
}

// dumpRow shapes one frame for JSONL output, keeping only the fields
// meaningful for its kind.
func dumpRow(f trace.Frame, run int64) map[string]any {
	switch f.Kind {
	case trace.FrameRunStart:
		return map[string]any{
			"frame": "run-start", "run": run,
			"engine": trace.EngineName(f.Run.Engine), "sensors": f.Run.Sensors,
			"seed": f.Run.Seed, "slots": f.Run.Slots,
			"battery_cap": f.Run.BatteryCap, "cost": f.Run.Cost,
			"policy": f.Run.Policy, "dist": f.Run.Dist, "recharge": f.Run.Recharge,
		}
	case trace.FrameSlot:
		r := f.Rec
		return map[string]any{
			"frame": "slot", "run": run, "slot": r.Slot, "sensor": r.Sensor,
			"engine": trace.EngineName(r.Engine), "flags": trace.FlagString(r.Flags),
			"h": r.H, "f": r.F, "prob": r.Prob, "battery": r.Battery, "recharge": r.Recharge,
		}
	case trace.FrameSpan:
		s := f.Span
		return map[string]any{
			"frame": "span", "run": run, "slot": s.Start, "len": s.Len,
			"events": s.Events, "state": s.State, "delivered": s.Delivered, "battery": s.Battery,
		}
	default:
		return map[string]any{
			"frame": "run-end", "run": run,
			"events": f.End.Events, "captures": f.End.Captures,
		}
	}
}

func dumpCSV(out io.Writer, f trace.Frame, run int64) error {
	var err error
	switch f.Kind {
	case trace.FrameRunStart:
		_, err = fmt.Fprintf(out, "run-start,%d,0,,%s,,,,,,,,%d,,\n",
			run, trace.EngineName(f.Run.Engine), f.Run.Slots)
	case trace.FrameSlot:
		r := f.Rec
		_, err = fmt.Fprintf(out, "slot,%d,%d,%d,%s,%s,%d,%d,%g,%g,%g,,,,\n",
			run, r.Slot, r.Sensor, trace.EngineName(r.Engine), trace.FlagString(r.Flags),
			r.H, r.F, r.Prob, r.Battery, r.Recharge)
	case trace.FrameSpan:
		s := f.Span
		_, err = fmt.Fprintf(out, "span,%d,%d,,,,,,,%g,%g,%d,%d,,\n",
			run, s.Start, s.Battery, s.Delivered, s.Len, s.Events)
	default:
		_, err = fmt.Fprintf(out, "run-end,%d,,,,,,,,,,,%d,%d,\n",
			run, f.End.Events, f.End.Captures)
	}
	return err
}

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool stats", flag.ContinueOnError)
	manifest := fs.String("manifest", "", "verify the rebuilt QoM estimate against this run manifest's stats block (exits nonzero on mismatch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracetool stats [-manifest run.manifest.json] <trace>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}
	rep, err := trace.Stats(bytes.NewReader(data))
	if err != nil {
		return err
	}
	// Rebuild the per-run QoM streams through the same streaming
	// estimators the simulation's probe uses, so the reports compare
	// field by field with a manifest's stats block.
	runs, err := trace.QoMReports(bytes.NewReader(data))
	if err != nil {
		return err
	}
	report := struct {
		Trace *trace.StatsReport `json:"trace"`
		QoM   struct {
			Runs   []stats.Report `json:"runs"`
			Pooled stats.Report   `json:"pooled"`
		} `json:"qom"`
	}{Trace: rep}
	report.QoM.Runs = runs
	report.QoM.Pooled = trace.PoolQoM(runs)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *manifest == "" {
		return nil
	}
	return checkStatsAgainstManifest(out, report.QoM.Pooled, *manifest)
}

// checkStatsAgainstManifest asserts the trace-rebuilt pooled QoM
// estimate against the manifest's stats block. The point estimate must
// always agree (both sides compute Σcaptures/Σevents over the same
// integers). The CI half-width is method-dependent: it is asserted
// only when the manifest interval also came from batch means — then
// the rebuilt streams are the probe's streams and the half-widths
// agree to roundoff — and reported informationally otherwise (e.g. a
// replication CI over a batch run spreads differently by design).
func checkStatsAgainstManifest(out io.Writer, pooled stats.Report, path string) error {
	man, err := obs.ReadManifest(path)
	if err != nil {
		return err
	}
	ms := man.Stats
	if ms == nil {
		return fmt.Errorf("manifest %s has no stats block (run with -stats)", path)
	}
	var problems []string
	if pooled.Events != ms.Events || pooled.Captures != ms.Captures {
		problems = append(problems, fmt.Sprintf("totals: trace %d/%d events/captures, manifest %d/%d",
			pooled.Events, pooled.Captures, ms.Events, ms.Captures))
	}
	if math.Abs(pooled.Mean-ms.Mean) > 1e-9 {
		problems = append(problems, fmt.Sprintf("qom mean: trace %.12f, manifest %.12f", pooled.Mean, ms.Mean))
	}
	batchMeansCI := ms.Method == stats.MethodBatchMeans ||
		(ms.Method == stats.MethodPooled && ms.Of == stats.MethodBatchMeans)
	if batchMeansCI && ms.HalfWidth > 0 {
		if rel := math.Abs(pooled.HalfWidth-ms.HalfWidth) / ms.HalfWidth; rel > 1e-6 {
			problems = append(problems, fmt.Sprintf("ci half-width: trace %.9g, manifest %.9g (rel err %.3g)",
				pooled.HalfWidth, ms.HalfWidth, rel))
		}
	}
	fmt.Fprintf(out, "manifest %s: qom %.6f ± %.6g, method %s\n",
		filepath.Base(path), ms.Mean, ms.HalfWidth, ms.Method)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(out, "  MISMATCH %s\n", p)
		}
		return fmt.Errorf("trace stats disagree with manifest on %d quantities", len(problems))
	}
	fmt.Fprintln(out, "  trace stats match manifest")
	return nil
}

func runDiff(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: tracetool diff <trace-a> <trace-b>")
	}
	fa, err := openTrace(args[0])
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := openTrace(args[1])
	if err != nil {
		return err
	}
	defer fb.Close()
	d, err := trace.Diff(fa, fb)
	if err != nil {
		return err
	}
	if d == nil {
		fmt.Fprintln(out, "traces identical")
		return nil
	}
	fmt.Fprintf(out, "first divergence: frame %d, run %d, slot %d\n", d.Frame, d.Run, d.Slot)
	fmt.Fprintf(out, "  a: %s\n", d.A)
	fmt.Fprintf(out, "  b: %s\n", d.B)
	return fmt.Errorf("traces diverge at slot %d", d.Slot)
}

// runReplay verifies a manifest+trace pair: hash, frame counts, and the
// full metrics reconstruction.
func runReplay(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracetool replay <manifest.json>")
	}
	man, err := obs.ReadManifest(args[0])
	if err != nil {
		return err
	}
	if man.Trace == nil {
		return fmt.Errorf("manifest %s has no trace block (run with -trace)", args[0])
	}
	tracePath := man.Trace.File
	if !filepath.IsAbs(tracePath) {
		tracePath = filepath.Join(filepath.Dir(args[0]), tracePath)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}
	if got := obs.SHA256Hex(data); got != man.Trace.SHA256 {
		return fmt.Errorf("trace %s sha256 = %s, manifest records %s", tracePath, got, man.Trace.SHA256)
	}
	sum, err := trace.Replay(bytes.NewReader(data))
	if err != nil {
		return err
	}

	var problems []string
	checkCount := func(name string, got, want int64) {
		if got != want {
			problems = append(problems, fmt.Sprintf("%s: trace %d, manifest %d", name, got, want))
		}
	}
	checkCount("runs", sum.Runs, man.Trace.Runs)
	checkCount("records", sum.Records, man.Trace.Records)
	checkCount("spans", sum.Spans, man.Trace.Spans)

	// The metrics block stores counters as float64; every compared
	// counter is integral and far below 2^53, so exact comparison is
	// sound. Absent keys are zero (Snapshot diffs drop unchanged
	// counters).
	metric := func(key string) int64 { return int64(math.Round(man.Metrics[key])) }
	checkCount("events", sum.Events, metric("sim.events"))
	checkCount("captures", sum.Captures, metric("sim.captures"))
	checkCount("miss.asleep", sum.MissAsleep, metric("sim.miss.asleep"))
	checkCount("miss.noenergy", sum.MissNoEnergy, metric("sim.miss.noenergy"))
	checkCount("wasted_activations", sum.Wasted, metric("sim.wasted_activations"))
	checkCount("engine runs", sum.Runs, metric("sim.runs.kernel")+metric("sim.runs.reference"))

	fmt.Fprintf(out, "replayed %s: %d runs, %d records, %d spans (%d span slots)\n",
		filepath.Base(tracePath), sum.Runs, sum.Records, sum.Spans, sum.SpanSlots)
	fmt.Fprintf(out, "  events=%d captures=%d miss.asleep=%d miss.noenergy=%d wasted=%d qom=%.6f\n",
		sum.Events, sum.Captures, sum.MissAsleep, sum.MissNoEnergy, sum.Wasted, sum.QoM)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(out, "  MISMATCH %s\n", p)
		}
		return fmt.Errorf("replay disagrees with manifest on %d quantities", len(problems))
	}
	fmt.Fprintln(out, "  replay matches manifest")
	return nil
}
