// Command simulate runs one event-capture simulation from flags: choose
// workload, recharge, policy, information model, number of sensors, and
// coordination mode; it prints the measured QoM and per-sensor stats.
//
// Usage:
//
//	simulate -dist weibull:40,3 -recharge bernoulli:0.5,1 -policy greedy -T 1000000
//	simulate -dist pareto:2,10 -recharge bernoulli:0.5,2 -policy clustering -info partial
//	simulate -dist weibull:40,3 -recharge bernoulli:0.1,1 -policy clustering -info partial -n 5 -mode roundrobin
//	simulate -dist markov:0.3,0.2 -recharge constant:1 -policy ebcw -info partial
package main

import (
	"flag"
	"fmt"
	"os"

	"eventcap/internal/cliutil"
	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/obs"
	"eventcap/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		distSpec = fs.String("dist", "weibull:40,3", "inter-arrival distribution (name:params)")
		rechSpec = fs.String("recharge", "bernoulli:0.5,1", "recharge process (name:params)")
		policy   = fs.String("policy", "greedy", "policy: greedy | clustering | refined | aggressive | periodic | ebcw")
		infoStr  = fs.String("info", "full", "information model: full | partial")
		n        = fs.Int("n", 1, "number of sensors")
		mode     = fs.String("mode", "roundrobin", "coordination for n>1: roundrobin | blocks | all")
		capK     = fs.Float64("k", 1000, "battery capacity K")
		slots    = fs.Int64("T", 1_000_000, "simulation length in slots")
		seed     = fs.Uint64("seed", 1, "random seed")
		delta1   = fs.Float64("delta1", 1, "sensing energy per active slot")
		delta2   = fs.Float64("delta2", 6, "extra energy per capture")
		theta1   = fs.Int("theta1", 3, "theta1 for the periodic policy")
		workers  = fs.Int("workers", 0, "worker pool size for the independent-sensor fast path (0 = one per CPU)")
		kernel   = fs.String("kernel", "auto", "simulation engine: auto (compiled kernel when eligible) | on (force kernel) | off (reference engine)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
		metrics  = fs.Bool("metrics", false, "collect and print run metrics (miss decomposition, battery occupancy; never changes results)")
		mAddr    = fs.String("metrics-addr", "", "serve /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := sim.ParseEngine(*kernel)
	if err != nil {
		return err
	}
	stopProfiles, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	profilesStopped := false
	defer func() {
		if !profilesStopped {
			stopProfiles()
		}
	}()
	if *mAddr != "" {
		bound, stopServe, err := obs.ServeMetrics(*mAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulate: serving /debug/vars and /debug/pprof/ on http://%s\n", bound)
		defer stopServe()
	}

	d, err := cliutil.ParseDist(*distSpec)
	if err != nil {
		return err
	}
	newRecharge, err := cliutil.ParseRecharge(*rechSpec)
	if err != nil {
		return err
	}
	p := core.Params{Delta1: *delta1, Delta2: *delta2}
	if err := p.Validate(); err != nil {
		return err
	}

	var info sim.Info
	switch *infoStr {
	case "full":
		info = sim.FullInfo
	case "partial":
		info = sim.PartialInfo
	default:
		return fmt.Errorf("unknown info model %q", *infoStr)
	}

	e := newRecharge().Mean()
	aggregate := float64(*n) * e

	cfg := sim.Config{
		Dist:        d,
		Params:      p,
		NewRecharge: newRecharge,
		N:           *n,
		BatteryCap:  *capK,
		Slots:       *slots,
		Seed:        *seed,
		Info:        info,
		Workers:     *workers,
		Engine:      engine,
		Metrics:     *metrics,
	}
	switch *mode {
	case "roundrobin":
		cfg.Mode = sim.ModeRoundRobin
	case "all":
		cfg.Mode = sim.ModeAll
	case "blocks":
		cfg.Mode = sim.ModeBlocks // BlockLen set below for periodic
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *n == 1 {
		cfg.Mode = sim.ModeAll
	}

	var analytic float64
	switch *policy {
	case "greedy":
		fi, err := core.GreedyFI(d, aggregate, p)
		if err != nil {
			return err
		}
		analytic = fi.CaptureProb
		cfg.NewPolicy = func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy, Label: "greedy"} }
	case "clustering", "refined":
		pi, err := core.OptimizeClustering(d, aggregate, p, core.ClusteringOptions{})
		if err != nil {
			return err
		}
		vec, u := pi.Vector, pi.CaptureProb
		if *policy == "refined" {
			ref, err := core.RefineWindows(d, aggregate, p, pi, 2)
			if err != nil {
				return err
			}
			vec, u = ref.Vector, ref.CaptureProb
		}
		analytic = u
		cfg.NewPolicy = func(int) sim.Policy { return &sim.VectorPI{Vector: vec, Label: *policy} }
	case "aggressive":
		analytic = core.AggressiveU(d, e, p)
		cfg.NewPolicy = func(int) sim.Policy { return sim.Aggressive{} }
	case "periodic":
		theta2, err := core.PeriodicTheta2(*theta1, aggregate, d, p)
		if err != nil {
			return err
		}
		pe, err := sim.NewPeriodic(*theta1, theta2)
		if err != nil {
			return err
		}
		analytic = core.PeriodicU(*theta1, theta2)
		cfg.NewPolicy = func(int) sim.Policy { return pe }
		if cfg.Mode == sim.ModeBlocks {
			cfg.BlockLen = pe.Theta2
		}
	case "ebcw":
		mr, ok := d.(*dist.MarkovRenewal)
		if !ok {
			return fmt.Errorf("policy ebcw requires -dist markov:a,b")
		}
		eb, err := core.OptimizeEBCW(mr.A(), mr.B(), aggregate, p)
		if err != nil {
			return err
		}
		analytic = eb.CaptureU
		cfg.NewPolicy = func(int) sim.Policy { return sim.NewEBCW(eb) }
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if cfg.Mode == sim.ModeBlocks && cfg.BlockLen == 0 {
		return fmt.Errorf("mode blocks is only meaningful with -policy periodic")
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("workload   %s (mu=%.2f), recharge %s (e=%.4f/sensor), policy %s, info %s\n",
		d.Name(), d.Mean(), newRecharge().Name(), e, *policy, *infoStr)
	fmt.Printf("sensors    N=%d, K=%g, T=%d slots\n", *n, *capK, *slots)
	fmt.Printf("events     %d   captured %d\n", res.Events, res.Captures)
	fmt.Printf("QoM        %.4f   (analytic, energy assumption: %.4f)\n", res.QoM, analytic)
	if *n > 1 {
		fmt.Printf("balance    load imbalance (max-min)/mean activations = %.4f\n", res.LoadImbalance())
	}
	if m := res.Metrics; m != nil {
		fmt.Printf("engine     %s\n", res.Engine)
		fmt.Printf("misses     asleep=%d noenergy=%d (captures %d + misses %d = events %d)\n",
			m.MissAsleep, m.MissNoEnergy, res.Captures, m.MissAsleep+m.MissNoEnergy, res.Events)
		fmt.Printf("energy     wasted activations=%d, outage slots=%d/%d observed, mean battery %.1f%% of K\n",
			m.WastedActivations, m.EnergyOutageSlots, m.ObservedSlots, 100*m.MeanBatteryFrac())
		if m.KernelRuns > 0 {
			fmt.Printf("kernel     %d sleep runs fast-forwarded %d slots (%.1f%% of T)\n",
				m.KernelRuns, m.KernelSlotsFastForwarded, 100*float64(m.KernelSlotsFastForwarded)/float64(res.Slots))
		}
	}
	for i, s := range res.Sensors {
		fmt.Printf("sensor %-2d  activations=%d captures=%d denied=%d energyUsed=%.0f battery=%.1f\n",
			i+1, s.Activations, s.Captures, s.Denied, s.EnergyConsumed, s.FinalBattery)
	}
	profilesStopped = true
	return stopProfiles()
}
