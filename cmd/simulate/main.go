// Command simulate runs one event-capture simulation from flags: choose
// workload, recharge, policy, information model, number of sensors, and
// coordination mode; it prints the measured QoM and per-sensor stats.
//
// Usage:
//
//	simulate -dist weibull:40,3 -recharge bernoulli:0.5,1 -policy greedy -T 1000000
//	simulate -dist pareto:2,10 -recharge bernoulli:0.5,2 -policy clustering -info partial
//	simulate -dist weibull:40,3 -recharge bernoulli:0.1,1 -policy clustering -info partial -n 5 -mode roundrobin
//	simulate -dist markov:0.3,0.2 -recharge constant:1 -policy ebcw -info partial
//	simulate -dist weibull:40,3 -policy clustering -trace run.evtrace
//	simulate -dist weibull:40,3 -policy greedy -flight-recorder 256 -flight-dump dumps.json
//
// -trace writes a slot-level trace (internal/trace format) plus a
// <file>.manifest.json sidecar that cmd/tracetool's replay subcommand
// verifies. -flight-recorder keeps the last N slot records per sensor
// in memory and dumps them on invariant violations, sensor faults, and
// the first energy-denied miss; -flight-dump writes the collected dumps
// as JSON, and -metrics-addr serves them live at /debug/trace (plus the
// run dashboard at /debug/runs). -spans exports the run's phase spans
// as Chrome trace-event JSON for chrome://tracing or Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"eventcap/internal/cliutil"
	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/obs"
	"eventcap/internal/sim"
	"eventcap/internal/stats"
	"eventcap/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		distSpec   = fs.String("dist", "weibull:40,3", "inter-arrival distribution (name:params)")
		rechSpec   = fs.String("recharge", "bernoulli:0.5,1", "recharge process (name:params)")
		policy     = fs.String("policy", "greedy", "policy: greedy | clustering | refined | aggressive | periodic | ebcw")
		infoStr    = fs.String("info", "full", "information model: full | partial")
		n          = fs.Int("n", 1, "number of sensors")
		mode       = fs.String("mode", "roundrobin", "coordination for n>1: roundrobin | blocks | all")
		capK       = fs.Float64("k", 1000, "battery capacity K")
		slots      = fs.Int64("T", 1_000_000, "simulation length in slots")
		seed       = fs.Uint64("seed", 1, "random seed")
		delta1     = fs.Float64("delta1", 1, "sensing energy per active slot")
		delta2     = fs.Float64("delta2", 6, "extra energy per capture")
		theta1     = fs.Int("theta1", 3, "theta1 for the periodic policy")
		workers    = fs.Int("workers", 0, "worker pool size for the independent-sensor fast path (0 = one per CPU)")
		kernel     = fs.String("kernel", "auto", "simulation engine: auto (compiled kernel when eligible) | on (force kernel) | off (reference engine) | batch (force batch engine)")
		batch      = fs.Int("batch", 0, "run B independent replications at seeds seed..seed+B-1 and aggregate (batch engine when eligible, sequential runs otherwise)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file")
		metrics    = fs.Bool("metrics", false, "collect and print run metrics (miss decomposition, battery occupancy; never changes results)")
		mAddr      = fs.String("metrics-addr", "", "serve /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
		traceFile  = fs.String("trace", "", "write a slot-level trace to this file plus a .manifest.json sidecar (implies -metrics; never changes results)")
		spansFlag  = fs.String("spans", "", "write the run's phase spans as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto; never changes results)")
		flightSize = fs.Int("flight-recorder", 0, "arm a flight recorder keeping the last N slot records per sensor (0 disables)")
		flightDump = fs.String("flight-dump", "", "write flight-recorder dumps as JSON to this file (requires -flight-recorder)")
		statsFlag  = fs.Bool("stats", true, "collect and print streaming QoM statistics (confidence interval, battery quantiles; never changes results)")
		targetHW   = fs.Float64("target-rel-hw", 0, "stop batched replications early once the QoM CI's relative half-width reaches this target (requires -batch > 1; changes how many replications run)")
		minReps    = fs.Int("min-reps", 0, "minimum replications before -target-rel-hw may stop the run (default 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := sim.ParseEngine(*kernel)
	if err != nil {
		return err
	}
	if *flightDump != "" && *flightSize <= 0 {
		return fmt.Errorf("-flight-dump requires -flight-recorder")
	}
	if *targetHW > 0 && *batch < 2 {
		return fmt.Errorf("-target-rel-hw requires -batch > 1 (the replication budget it stops within)")
	}
	if *minReps > 0 && *targetHW <= 0 {
		return fmt.Errorf("-min-reps only applies together with -target-rel-hw")
	}
	if *traceFile != "" {
		// The manifest sidecar records the run's metrics block; collect it.
		*metrics = true
	}
	stopProfiles, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	profilesStopped := false
	defer func() {
		if !profilesStopped {
			stopProfiles()
		}
	}()

	var flight *trace.FlightRecorder
	if *flightSize > 0 {
		flight = trace.NewFlightRecorder(*flightSize)
		obs.HandleDebug("/debug/trace", flight.Handler())
	}
	if *mAddr != "" {
		bound, stopServe, err := obs.ServeMetrics(*mAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulate: serving /debug/vars and /debug/pprof/ on http://%s\n", bound)
		defer stopServe()
	}

	d, err := cliutil.ParseDist(*distSpec)
	if err != nil {
		return err
	}
	newRecharge, err := cliutil.ParseRecharge(*rechSpec)
	if err != nil {
		return err
	}
	p := core.Params{Delta1: *delta1, Delta2: *delta2}
	if err := p.Validate(); err != nil {
		return err
	}

	var info sim.Info
	switch *infoStr {
	case "full":
		info = sim.FullInfo
	case "partial":
		info = sim.PartialInfo
	default:
		return fmt.Errorf("unknown info model %q", *infoStr)
	}

	e := newRecharge().Mean()
	aggregate := float64(*n) * e

	cfg := sim.Config{
		Dist:        d,
		Params:      p,
		NewRecharge: newRecharge,
		N:           *n,
		BatteryCap:  *capK,
		Slots:       *slots,
		Seed:        *seed,
		Info:        info,
		Workers:     *workers,
		Engine:      engine,
		Metrics:     *metrics,
		Batch:       *batch,
	}
	switch *mode {
	case "roundrobin":
		cfg.Mode = sim.ModeRoundRobin
	case "all":
		cfg.Mode = sim.ModeAll
	case "blocks":
		cfg.Mode = sim.ModeBlocks // BlockLen set below for periodic
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *n == 1 {
		cfg.Mode = sim.ModeAll
	}

	var analytic float64
	switch *policy {
	case "greedy":
		fi, err := core.GreedyFI(d, aggregate, p)
		if err != nil {
			return err
		}
		analytic = fi.CaptureProb
		cfg.NewPolicy = func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy, Label: "greedy"} }
	case "clustering", "refined":
		pi, err := core.OptimizeClustering(d, aggregate, p, core.ClusteringOptions{})
		if err != nil {
			return err
		}
		vec, u := pi.Vector, pi.CaptureProb
		if *policy == "refined" {
			ref, err := core.RefineWindows(d, aggregate, p, pi, 2)
			if err != nil {
				return err
			}
			vec, u = ref.Vector, ref.CaptureProb
		}
		analytic = u
		cfg.NewPolicy = func(int) sim.Policy { return &sim.VectorPI{Vector: vec, Label: *policy} }
	case "aggressive":
		analytic = core.AggressiveU(d, e, p)
		cfg.NewPolicy = func(int) sim.Policy { return sim.Aggressive{} }
	case "periodic":
		theta2, err := core.PeriodicTheta2(*theta1, aggregate, d, p)
		if err != nil {
			return err
		}
		pe, err := sim.NewPeriodic(*theta1, theta2)
		if err != nil {
			return err
		}
		analytic = core.PeriodicU(*theta1, theta2)
		cfg.NewPolicy = func(int) sim.Policy { return pe }
		if cfg.Mode == sim.ModeBlocks {
			cfg.BlockLen = pe.Theta2
		}
	case "ebcw":
		mr, ok := d.(*dist.MarkovRenewal)
		if !ok {
			return fmt.Errorf("policy ebcw requires -dist markov:a,b")
		}
		eb, err := core.OptimizeEBCW(mr.A(), mr.B(), aggregate, p)
		if err != nil {
			return err
		}
		analytic = eb.CaptureU
		cfg.NewPolicy = func(int) sim.Policy { return sim.NewEBCW(eb) }
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if cfg.Mode == sim.ModeBlocks && cfg.BlockLen == 0 {
		return fmt.Errorf("mode blocks is only meaningful with -policy periodic")
	}

	var (
		tw *trace.Writer
		tf *os.File
	)
	if *traceFile != "" {
		tf, err = os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		tw = trace.NewWriter(tf)
	}
	if tw != nil || flight != nil {
		cfg.Tracer = trace.New(tw, flight)
	}

	// The phase span is always attached (spans are RNG-neutral and wrap
	// phases, not slots); the run registers on /debug/runs so a
	// -metrics-addr server shows it live, and -spans exports the tree.
	digest := obs.DigestConfig(
		"experiment=simulate",
		fmt.Sprintf("slots=%d", cfg.Slots),
		fmt.Sprintf("seed=%d", cfg.Seed),
		"engine="+engine.String(),
	)
	root := obs.BeginSpan("simulate")
	active := obs.DefaultRegistry.Begin("simulate", digest, nil, root)
	cfg.Span = root
	if *statsFlag || *targetHW > 0 {
		cfg.Stats = true
		// Interim reports feed the /debug/runs live view and the stats.*
		// gauges while the run executes.
		cfg.StatsSink = active.Stats.Publish
	}

	before := obs.Snapshot()
	start := time.Now()
	var (
		res *sim.Result
		dec *sim.StopDecision
	)
	if *targetHW > 0 {
		res, dec, err = sim.RunWithEarlyStop(cfg, sim.EarlyStopOptions{TargetRelHW: *targetHW, MinReps: *minReps})
	} else {
		res, err = sim.Run(cfg)
	}
	root.End()
	elapsed := time.Since(start)
	diff := obs.Diff(before, obs.Snapshot())
	rec := runRecord(cfg, engine, digest, elapsed, diff, root.Breakdown())
	if err != nil {
		rec.Status, rec.Error = "error", err.Error()
		active.Complete(rec)
		// The run error is primary; the partial trace is best-effort.
		if tw != nil {
			_ = tw.Close()
		}
		if tf != nil {
			_ = tf.Close()
		}
		return err
	}
	if res.Stats != nil {
		rec.QoMMean, rec.QoMHalfWidth = res.Stats.Mean, res.Stats.HalfWidth
	}
	if dec != nil {
		rec.EarlyStopReps = dec.Reps
	}
	active.Complete(rec)

	// Close the trace stream before any other output file is written:
	// Writer errors are sticky and only surface at Close, and an early
	// return from the spans write below must not leak the stream (or
	// silently drop its buffered frames).
	if tw != nil {
		if err := tw.Close(); err != nil {
			if tf != nil {
				_ = tf.Close()
			}
			return fmt.Errorf("trace: %w", err)
		}
	}
	if tf != nil {
		if err := tf.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if tw != nil {
		if err := writeTraceManifest(*traceFile, tw, flight != nil, cfg, engine, digest, start, elapsed, diff, root.Breakdown(), res.Stats, earlyStopInfo(dec)); err != nil {
			return err
		}
	}

	if *spansFlag != "" {
		sf, err := os.Create(*spansFlag)
		if err != nil {
			return fmt.Errorf("creating spans file: %w", err)
		}
		if err := obs.WriteChromeTrace(sf, root); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return fmt.Errorf("closing spans file: %w", err)
		}
	}
	if *flightDump != "" {
		data, err := json.MarshalIndent(flight.Dumps(), "", "  ")
		if err != nil {
			return fmt.Errorf("marshaling flight dumps: %w", err)
		}
		if err := os.WriteFile(*flightDump, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing flight dumps: %w", err)
		}
	}

	fmt.Fprintf(out, "workload   %s (mu=%.2f), recharge %s (e=%.4f/sensor), policy %s, info %s\n",
		d.Name(), d.Mean(), newRecharge().Name(), e, *policy, *infoStr)
	fmt.Fprintf(out, "sensors    N=%d, K=%g, T=%d slots\n", *n, *capK, *slots)
	if *batch > 1 {
		fmt.Fprintf(out, "batch      B=%d replications (seeds %d..%d), engine %s\n",
			*batch, *seed, *seed+uint64(*batch)-1, res.Engine)
	}
	fmt.Fprintf(out, "events     %d   captured %d\n", res.Events, res.Captures)
	fmt.Fprintf(out, "QoM        %.4f   (analytic, energy assumption: %.4f)\n", res.QoM, analytic)
	if s := res.Stats; s != nil {
		if s.Level != 0 {
			fmt.Fprintf(out, "stats      qom %.6f ± %.6f (%.0f%% CI, rel %.4g, %s, n=%d)\n",
				s.Mean, s.HalfWidth, 100*s.Level, s.RelHalfWidth, s.Method, s.Count)
		} else {
			fmt.Fprintf(out, "stats      qom %.6f (%s, no interval)\n", s.Mean, s.Method)
		}
		if b := s.Battery; b != nil {
			fmt.Fprintf(out, "stats      battery mean %.1f%% of K, p10/p50/p90 %.1f%%/%.1f%%/%.1f%% (%d samples)\n",
				100*b.Mean, 100*b.P10, 100*b.P50, 100*b.P90, b.Count)
		}
	}
	if dec != nil {
		fmt.Fprintf(out, "stats      early stop at %d/%d replications (target rel HW %g, reached %.4g, stopped=%t)\n",
			dec.Reps, dec.MaxReps, dec.TargetRelHW, dec.RelHalfWidth, dec.Stopped)
	}
	if *n > 1 {
		fmt.Fprintf(out, "balance    load imbalance (max-min)/mean activations = %.4f\n", res.LoadImbalance())
	}
	if m := res.Metrics; m != nil {
		fmt.Fprintf(out, "engine     %s\n", res.Engine)
		fmt.Fprintf(out, "misses     asleep=%d noenergy=%d (captures %d + misses %d = events %d)\n",
			m.MissAsleep, m.MissNoEnergy, res.Captures, m.MissAsleep+m.MissNoEnergy, res.Events)
		fmt.Fprintf(out, "energy     wasted activations=%d, outage slots=%d/%d observed, mean battery %.1f%% of K\n",
			m.WastedActivations, m.EnergyOutageSlots, m.ObservedSlots, 100*m.MeanBatteryFrac())
		if m.KernelRuns > 0 {
			fmt.Fprintf(out, "kernel     %d sleep runs fast-forwarded %d slots (%.1f%% of T)\n",
				m.KernelRuns, m.KernelSlotsFastForwarded, 100*float64(m.KernelSlotsFastForwarded)/float64(res.Slots))
		}
	}
	if tw != nil {
		c := tw.Counts()
		fmt.Fprintf(out, "trace      %s: %d records, %d spans, %d bytes (manifest %s)\n",
			*traceFile, c.Records, c.Spans, c.Bytes, *traceFile+".manifest.json")
	}
	if flight != nil && *flightDump != "" {
		fmt.Fprintf(out, "flight     %d dump(s) written to %s\n", flight.TotalDumps(), *flightDump)
	}
	// A batch run carries one stats row per replication; listing 10^5 of
	// them would drown the summary, so show only the first few.
	sensors := res.Sensors
	if *batch > 1 && len(sensors) > 4 {
		sensors = sensors[:4]
	}
	for i, s := range sensors {
		fmt.Fprintf(out, "sensor %-2d  activations=%d captures=%d denied=%d energyUsed=%.0f battery=%.1f\n",
			i+1, s.Activations, s.Captures, s.Denied, s.EnergyConsumed, s.FinalBattery)
	}
	if len(sensors) < len(res.Sensors) {
		fmt.Fprintf(out, "           ... %d more replications elided\n", len(res.Sensors)-len(sensors))
	}
	profilesStopped = true
	return stopProfiles()
}

// runRecord assembles the run's registry record: identity, engine
// attribution, event totals, and the phase breakdown. Status starts
// "ok"; the error path overwrites it.
func runRecord(cfg sim.Config, engine sim.Engine, digest string, elapsed time.Duration, diff map[string]float64, phases *obs.Phase) obs.RunRecord {
	used, fallbacks := obs.EngineCounts(diff)
	return obs.RunRecord{
		Experiment:   "simulate",
		ConfigDigest: digest,
		Engine:       engine.String(),
		Seed:         cfg.Seed,
		Slots:        cfg.Slots,
		Batch:        cfg.Batch,
		Workers:      cfg.Workers,
		Status:       "ok",
		WallMillis:   elapsed.Milliseconds(),
		EnginesUsed:  used,
		Fallbacks:    fallbacks,
		Events:       int64(diff["sim.events"]),
		Captures:     int64(diff["sim.captures"]),
		Phases:       phases,
	}
}

// writeTraceManifest writes the <trace>.manifest.json sidecar tying the
// trace bytes to the run's configuration, metrics, and phase breakdown,
// in the same schema cmd/experiments uses, so cmd/tracetool replay
// verifies simulate traces too.
func writeTraceManifest(tracePath string, tw *trace.Writer, withFlight bool, cfg sim.Config, engine sim.Engine, digest string, start time.Time, elapsed time.Duration, diff map[string]float64, phases *obs.Phase, st *stats.Report, early *obs.EarlyStopInfo) error {
	mode := "full"
	if withFlight {
		mode = "full+flight"
	}
	c := tw.Counts()
	man := &obs.Manifest{
		Experiment: "simulate",
		Config: obs.ManifestConfig{
			Slots:   cfg.Slots,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
			Engine:  engine.String(),
		},
		ConfigDigest:  digest,
		StartedAt:     start.UTC().Format(time.RFC3339),
		WallMillis:    elapsed.Milliseconds(),
		GoVersion:     obs.GoVersion(),
		BinaryVersion: obs.BinaryVersion(),
		Metrics:       obs.FilterPrefix(diff, "sim."),
		Process:       obs.FilterPrefix(diff, "cache.", "pool."),
		Trace: &obs.TraceInfo{
			// The sidecar sits next to the trace, so the base name keeps
			// the pair relocatable.
			File:    filepath.Base(tracePath),
			SHA256:  tw.SHA256(),
			Mode:    mode,
			Runs:    c.Runs,
			Records: c.Records,
			Spans:   c.Spans,
		},
		Phases:    phases,
		Stats:     st,
		EarlyStop: early,
	}
	return man.Write(tracePath + ".manifest.json")
}

// earlyStopInfo converts a sim.StopDecision into its manifest mirror
// (obs cannot import sim). Nil-safe.
func earlyStopInfo(d *sim.StopDecision) *obs.EarlyStopInfo {
	if d == nil {
		return nil
	}
	return &obs.EarlyStopInfo{
		TargetRelHW:  d.TargetRelHW,
		MinReps:      d.MinReps,
		MaxReps:      d.MaxReps,
		Reps:         d.Reps,
		RelHalfWidth: d.RelHalfWidth,
		Stopped:      d.Stopped,
	}
}
