package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eventcap/internal/obs"
	"eventcap/internal/trace"
)

// stripTraceLines drops the trace/flight summary lines so traced and
// untraced outputs can be compared for the RNG-neutrality check.
func stripTraceLines(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "trace ") || strings.HasPrefix(line, "flight ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestTraceFlagsAreOutputNeutral: -trace and -flight-recorder must not
// change a single simulation output line, on both engines.
func TestTraceFlagsAreOutputNeutral(t *testing.T) {
	for _, kernel := range []string{"off", "on"} {
		base := []string{"-T", "50000", "-seed", "9", "-metrics", "-kernel", kernel}
		var want strings.Builder
		if err := run(base, &want); err != nil {
			t.Fatal(err)
		}
		tracePath := filepath.Join(t.TempDir(), "run.evtrace")
		var got strings.Builder
		args := append(append([]string{}, base...), "-trace", tracePath, "-flight-recorder", "64")
		if err := run(args, &got); err != nil {
			t.Fatal(err)
		}
		if g := stripTraceLines(got.String()); g != want.String() {
			t.Errorf("kernel=%s: tracing changed the output:\n--- traced ---\n%s--- untraced ---\n%s", kernel, g, want.String())
		}
	}
}

// TestTraceWritesReplayableManifest: the .manifest.json sidecar must
// verify against the trace exactly the way cmd/tracetool replay does.
func TestTraceWritesReplayableManifest(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.evtrace")
	var sb strings.Builder
	if err := run([]string{"-T", "50000", "-seed", "9", "-trace", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != obs.ManifestSchema || man.Experiment != "simulate" {
		t.Fatalf("manifest identity: schema=%q experiment=%q", man.Schema, man.Experiment)
	}
	if man.Trace == nil || man.Trace.File != "run.evtrace" || man.Trace.Mode != "full" {
		t.Fatalf("manifest trace block: %+v", man.Trace)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SHA256Hex(data); got != man.Trace.SHA256 {
		t.Fatalf("trace hash %s != manifest %s", got, man.Trace.SHA256)
	}
	sum, err := trace.Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	m := man.Metrics
	if sum.Runs != 1 || float64(sum.Events) != m["sim.events"] || float64(sum.Captures) != m["sim.captures"] ||
		float64(sum.MissAsleep) != m["sim.miss.asleep"] || float64(sum.MissNoEnergy) != m["sim.miss.noenergy"] {
		t.Errorf("replay %+v disagrees with manifest metrics %v", sum, m)
	}
}

// TestFlightDumpWritesJSON: a starved battery must leave outage dumps
// in the -flight-dump file.
func TestFlightDumpWritesJSON(t *testing.T) {
	dumpPath := filepath.Join(t.TempDir(), "dumps.json")
	var sb strings.Builder
	args := []string{"-T", "200000", "-seed", "3", "-k", "20", "-recharge", "bernoulli:0.3,1",
		"-flight-recorder", "32", "-flight-dump", dumpPath}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dumps []trace.Dump
	if err := json.Unmarshal(data, &dumps); err != nil {
		t.Fatalf("flight dump file is not a []trace.Dump: %v\n%s", err, data)
	}
	var outage bool
	for _, d := range dumps {
		if d.Reason == "outage_miss" {
			outage = true
		}
	}
	if !outage {
		t.Errorf("starved run produced no outage_miss dump; dumps: %+v", dumps)
	}
	if !strings.Contains(sb.String(), "flight ") {
		t.Errorf("missing flight summary line:\n%s", sb.String())
	}
}

func TestFlightDumpRequiresRecorder(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-T", "1000", "-flight-dump", "x.json"}, &sb); err == nil {
		t.Fatal("-flight-dump without -flight-recorder accepted")
	}
}

// TestSpansFlagIsOutputNeutral: the phase tracer must not change a
// single simulation output line, and the spans file must be valid
// trace-event JSON covering the engine's phases.
func TestSpansFlagIsOutputNeutral(t *testing.T) {
	base := []string{"-T", "50000", "-seed", "9", "-metrics", "-kernel", "on"}
	var want strings.Builder
	if err := run(base, &want); err != nil {
		t.Fatal(err)
	}
	spansPath := filepath.Join(t.TempDir(), "spans.json")
	var got strings.Builder
	if err := run(append(append([]string{}, base...), "-spans", spansPath), &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("-spans changed the output:\n--- with ---\n%s--- without ---\n%s", got.String(), want.String())
	}
	data, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("spans file is not trace-event JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, phase := range []string{"simulate", "compile", "exec.kernel"} {
		if !names[phase] {
			t.Errorf("spans file missing a %q span (have %v)", phase, names)
		}
	}
}

// TestTraceManifestCarriesPhases: the sidecar written with -trace now
// embeds the run's phase breakdown (schema v3).
func TestTraceManifestCarriesPhases(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.evtrace")
	var sb strings.Builder
	if err := run([]string{"-T", "50000", "-seed", "9", "-trace", tracePath}, &sb); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if man.Phases == nil || man.Phases.Name != "simulate" || len(man.Phases.Phases) == 0 {
		t.Fatalf("manifest phases = %+v", man.Phases)
	}
}

// stripStatsLines drops the "stats " summary lines so runs with and
// without the streaming probe can be compared for RNG-neutrality.
func stripStatsLines(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "stats ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestStatsFlagIsOutputNeutral: the streaming probe consumes no random
// draws, so every non-stats output line is byte-identical with and
// without it, on both engines and under batching.
func TestStatsFlagIsOutputNeutral(t *testing.T) {
	for _, extra := range [][]string{
		{"-kernel", "off"},
		{"-kernel", "on"},
		{"-kernel", "on", "-batch", "8"},
	} {
		base := append([]string{"-T", "50000", "-seed", "9", "-metrics"}, extra...)
		var off strings.Builder
		if err := run(append(append([]string{}, base...), "-stats=false"), &off); err != nil {
			t.Fatal(err)
		}
		var on strings.Builder
		if err := run(base, &on); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(on.String(), "stats      qom ") {
			t.Errorf("%v: stats run printed no qom summary:\n%s", extra, on.String())
		}
		if g := stripStatsLines(on.String()); g != off.String() {
			t.Errorf("%v: probe changed the output:\n--- with stats ---\n%s--- without ---\n%s",
				extra, g, off.String())
		}
	}
}

// TestEarlyStopOutputAndManifest: a loose CI target stops inside the
// budget and records the decision in both stdout and the manifest.
func TestEarlyStopOutputAndManifest(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.evtrace")
	var sb strings.Builder
	args := []string{"-T", "20000", "-seed", "9", "-batch", "32",
		"-target-rel-hw", "0.5", "-trace", tracePath}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stats      early stop at ") {
		t.Fatalf("stdout missing early-stop line:\n%s", sb.String())
	}
	man, err := obs.ReadManifest(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	es := man.EarlyStop
	if es == nil {
		t.Fatal("manifest has no early_stop block")
	}
	if !es.Stopped || es.Reps >= 32 || es.Reps < 2 {
		t.Fatalf("loose target did not stop inside the budget: %+v", es)
	}
	if es.RelHalfWidth <= 0 || es.RelHalfWidth > es.TargetRelHW {
		t.Fatalf("recorded half-width %v misses target %v", es.RelHalfWidth, es.TargetRelHW)
	}
	if man.Stats == nil || man.Stats.Mean <= 0 {
		t.Fatalf("early-stopped run has no usable stats block: %+v", man.Stats)
	}
}

func TestSimulateEarlyStopFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-T", "1000", "-target-rel-hw", "0.1"}, &sb); err == nil {
		t.Fatal("-target-rel-hw without -batch accepted")
	}
	if err := run([]string{"-T", "1000", "-batch", "4", "-min-reps", "2"}, &sb); err == nil {
		t.Fatal("-min-reps without -target-rel-hw accepted")
	}
}
