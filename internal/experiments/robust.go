package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// robustClustering picks the clustering policy to field at a FINITE
// battery size. The analytic optimizer maximizes U under the energy
// assumption (K → ∞); for some workloads its optimum is a "lottery"
// policy — rare but extremely long cooling blackouts — whose finite-K
// execution degrades badly (the battery overflows during the blackout,
// and a single energy denial in the hot region triggers another one).
// A gap-capped candidate gives up a little analytic U for robustness,
// matching what the paper's bounded "increase n3 gradually" search
// yields. The two candidates are compared by a short pilot simulation at
// the experiment's actual K and recharge process, and the winner is
// returned together with its analytic U.
func robustClustering(
	d dist.Interarrival,
	e float64,
	p core.Params,
	opts Options,
	capK float64,
	newRecharge func() energy.Recharge,
	seed uint64,
) (core.Vector, float64, error) {
	base := core.ClusteringOptions{}
	if opts.Quick {
		base.CoarsePoints = 8
		base.MaxGap = 512
	}
	capped := base
	capped.MaxGap = 16 * int(d.Mean()+1)
	if capped.MaxGap < 8 {
		capped.MaxGap = 8
	}
	if base.MaxGap > 0 && capped.MaxGap > base.MaxGap {
		capped.MaxGap = base.MaxGap
	}

	type candidate struct {
		vec core.Vector
		u   float64
	}
	var cands []candidate
	for _, o := range []core.ClusteringOptions{base, capped} {
		pi, err := core.OptimizeClusteringCached(d, e, p, o)
		if err != nil {
			return core.Vector{}, 0, fmt.Errorf("optimizing clustering (maxGap=%d): %w", o.MaxGap, err)
		}
		cands = append(cands, candidate{vec: pi.Vector, u: pi.CaptureProb})
	}
	// Identical policies: skip the pilot.
	if vectorsEqual(cands[0].vec, cands[1].vec) {
		return cands[0].vec, cands[0].u, nil
	}

	pilotSlots := int64(200_000)
	if opts.Quick {
		pilotSlots = 50_000
	}
	// The two pilot runs are independent; fan them through the pool.
	qoms, err := parallel.Map(opts.Workers, len(cands), func(i int) (float64, error) {
		res, err := runSim(opts, sim.Config{
			Dist:        d,
			Params:      p,
			NewRecharge: newRecharge,
			NewPolicy:   func(int) sim.Policy { return &sim.VectorPI{Vector: cands[i].vec} },
			BatteryCap:  capK,
			Slots:       pilotSlots,
			Seed:        seed ^ 0x9e3779b9, // decorrelate from the main run
			Info:        sim.PartialInfo,
			Engine:      opts.Engine,
		})
		if err != nil {
			return 0, fmt.Errorf("pilot simulation: %w", err)
		}
		return res.QoM, nil
	})
	if err != nil {
		return core.Vector{}, 0, err
	}
	// Strict > with in-order scan: ties resolve to the lower index, the
	// same winner a sequential pilot loop picks.
	bestIdx, bestQoM := -1, -1.0
	for i, q := range qoms {
		if q > bestQoM {
			bestIdx, bestQoM = i, q
		}
	}
	return cands[bestIdx].vec, cands[bestIdx].u, nil
}

func vectorsEqual(a, b core.Vector) bool {
	// floateq:ok identity check: detects whether a perturbation moved the
	// policy at all, so bit-exact comparison is the point.
	if a.Tail != b.Tail || len(a.Prefix) != len(b.Prefix) {
		return false
	}
	for i := range a.Prefix {
		// floateq:ok identity check, same contract as above
		if a.Prefix[i] != b.Prefix[i] {
			return false
		}
	}
	return true
}
