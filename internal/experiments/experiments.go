// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (Section VI), plus the ablations
// listed in DESIGN.md. Each experiment regenerates the corresponding
// series — same workloads, parameters, and sweep axes — and renders them
// as ASCII tables and CSV. The cmd/experiments binary, the root
// benchmarks, and EXPERIMENTS.md are all driven from this registry.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"eventcap/internal/obs"
	"eventcap/internal/sim"
	"eventcap/internal/stats"
	"eventcap/internal/trace"
)

// Options control an experiment run.
type Options struct {
	// Slots is the simulated duration T (default 1,000,000, the paper's
	// setting).
	Slots int64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick shrinks sweeps and horizons for smoke tests and benchmarks.
	Quick bool
	// Workers bounds the worker pool that sweep points and replications
	// fan out on (default: one per CPU). Results are identical for any
	// value; 1 forces fully sequential execution.
	Workers int
	// Engine selects the simulation engine for every run the experiment
	// performs (default sim.EngineAuto: the compiled kernel where
	// eligible, the reference engine otherwise).
	Engine sim.Engine
	// Tracer, when set, attaches a slot-level trace to every simulation
	// the experiment performs. A tracer is a single sink shared by all
	// sweep points, so withDefaults forces Workers to 1: points run
	// sequentially and the trace's run order is deterministic. Results
	// are unchanged (tracing is RNG-neutral and results are
	// worker-invariant).
	Tracer *trace.Tracer
	// Batch, when > 1, runs every simulation as B independent
	// replications at seeds Seed..Seed+B-1 and aggregates (the batch
	// engine when eligible, sequential per-replication runs otherwise).
	// Sweep points then report replication-averaged QoM rather than a
	// single trajectory.
	Batch int
	// Span, when non-nil, is the experiment's phase span: every
	// simulation the experiment performs forks a "sim.run" child under
	// it (concurrent sweep points get their own lanes), and drivers with
	// an explicit policy-solve step mark it with SolvePhase. RNG-neutral
	// like Tracer — CSVs are byte-identical with or without it.
	Span *obs.Span
	// Progress, when non-nil, receives slot-unit work accounting
	// (B×T×N per simulation) so a live progress line reports true
	// throughput and ETA under -batch and multi-sensor sweeps. The same
	// Progress is typically also installed as the pool observer.
	Progress *obs.Progress
	// Stats, when non-nil, turns on streaming statistics for every
	// simulation the experiment performs and pools the per-run QoM
	// reports into one experiment-level estimate. RNG-neutral like
	// Tracer/Span/Progress: results are byte-identical with or without
	// it.
	Stats *StatsCollector
	// TargetRelHW, when > 0 together with Batch > 1, runs every
	// simulation under CI-targeted early stop (sim.RunWithEarlyStop):
	// replications stop as soon as the QoM CI's relative half-width
	// reaches the target. Unlike every other option this one changes
	// results — a converged run executes fewer replications than Batch;
	// the realized counts land in Stats' decision record.
	TargetRelHW float64
	// MinReps is the minimum replications before TargetRelHW may stop a
	// run (0 means the monitor's default of 2).
	MinReps int
}

// StatsCollector pools the streaming QoM reports of every simulation an
// experiment performs into one experiment-level estimate, and remembers
// the early-stop decisions taken along the way. Sweep points run
// concurrently, so all mutation is mutex-guarded; Live, when set,
// additionally receives every interim report the engines publish (the
// CLI points it at the run registry's StatsView) and must itself be
// safe for concurrent calls.
type StatsCollector struct {
	Live func(stats.Report)

	mu      sync.Mutex
	pool    stats.Pool
	dec     *sim.StopDecision
	stopped int
}

// observe folds one finished simulation into the pool. dec is non-nil
// only for early-stopped runs; the last decision wins (an experiment's
// sweep points share one options block, so their monitors agree).
func (c *StatsCollector) observe(res *sim.Result, dec *sim.StopDecision) {
	if c == nil || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if res.Stats != nil {
		c.pool.Add(*res.Stats)
	}
	if dec != nil {
		c.dec = dec
		if dec.Stopped {
			c.stopped++
		}
	}
}

// Report returns the pooled QoM report over every simulation observed
// so far; ok is false before the first one.
func (c *StatsCollector) Report() (stats.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool.Runs() == 0 {
		return stats.Report{}, false
	}
	return c.pool.Report(stats.DefaultCILevel), true
}

// Decision returns the last early-stop decision, or nil when no run
// used one.
func (c *StatsCollector) Decision() *sim.StopDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dec
}

// StoppedRuns counts the simulations that stopped before exhausting
// their replication budget.
func (c *StatsCollector) StoppedRuns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

func (o Options) withDefaults() Options {
	if o.Slots <= 0 {
		o.Slots = 1_000_000
		if o.Quick {
			o.Slots = 100_000
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Tracer != nil {
		o.Workers = 1
	}
	return o
}

// runSim is the one simulation entry point the experiment drivers use:
// sim.Run with metrics collection enabled, so every run of every
// experiment feeds the process-wide obs totals that cmd/experiments
// snapshots into run manifests, plus the options' tracer, span, and
// work accounting when attached. All are RNG-neutral (sim.Config
// .Metrics/.Tracer/.Span/.Progress), so results are identical to a
// bare sim.Run.
func runSim(opts Options, cfg sim.Config) (*sim.Result, error) {
	cfg.Metrics = true
	cfg.Tracer = opts.Tracer
	if opts.Batch > 1 {
		cfg.Batch = opts.Batch
	}
	if opts.Stats != nil {
		cfg.Stats = true
		cfg.StatsSink = opts.Stats.Live
	}
	sp := opts.Span.Fork("sim.run")
	defer sp.End()
	cfg.Span = sp
	if opts.Progress != nil {
		// One work unit per simulated slot: Slots × replications ×
		// sensors. The engines report completions at chunk/sensor/run
		// granularity through cfg.Progress. An early-stopped run
		// completes less than the work added here; the progress line
		// then under-reports done, never over.
		n, b := cfg.N, cfg.Batch
		if n < 1 {
			n = 1
		}
		if b < 1 {
			b = 1
		}
		opts.Progress.AddWork(cfg.Slots * int64(n) * int64(b))
		cfg.Progress = opts.Progress
	}
	if opts.TargetRelHW > 0 && cfg.Batch > 1 {
		res, dec, err := sim.RunWithEarlyStop(cfg, sim.EarlyStopOptions{
			TargetRelHW: opts.TargetRelHW,
			MinReps:     opts.MinReps,
		})
		if err != nil {
			return nil, err
		}
		opts.Stats.observe(res, dec)
		return res, nil
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	opts.Stats.observe(res, nil)
	return res, nil
}

// SolvePhase marks an explicit policy-solve step on the options' span:
// call it before solving, run the solve, then call the returned func.
// A no-op without a span.
func (o Options) SolvePhase() func() {
	sp := o.Span.Child("solve")
	return sp.End
}

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	Y    []float64 // aligned with the parent Table's X
}

// Table is the regenerated data behind one paper figure/table.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Notes document substitutions, parameters, and reading guidance.
	Notes []string
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// All returns every registered experiment, figures first, in a stable
// order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "fig3a", Title: "Fig 3(a): U_K(pi*_FI) vs battery capacity K", Run: runFig3a},
		{ID: "fig3b", Title: "Fig 3(b): U_K(pi'_PI) vs battery capacity K", Run: runFig3b},
		{ID: "fig4a", Title: "Fig 4(a): policy comparison, Weibull(40,3)", Run: runFig4a},
		{ID: "fig4b", Title: "Fig 4(b): policy comparison, Pareto(2,10)", Run: runFig4b},
		{ID: "fig5a", Title: "Fig 5(a): clustering vs EBCW, Markov events, b=0.2", Run: runFig5a},
		{ID: "fig5b", Title: "Fig 5(b): clustering vs EBCW, Markov events, b=0.7", Run: runFig5b},
		{ID: "fig6a", Title: "Fig 6(a): multi-sensor QoM vs N", Run: runFig6a},
		{ID: "fig6b", Title: "Fig 6(b): multi-sensor QoM vs recharge c", Run: runFig6b},
		{ID: "ablation-lp", Title: "Ablation: Theorem 1 greedy vs simplex LP", Run: runAblationLP},
		{ID: "ablation-windows", Title: "Ablation: clustering vs window refinement", Run: runAblationWindows},
		{ID: "ablation-pomdp", Title: "Ablation: POMDP information-state growth and optimality gap", Run: runAblationPOMDP},
		{ID: "ablation-recharge", Title: "Ablation: recharge-process independence", Run: runAblationRecharge},
		{ID: "ablation-loadbalance", Title: "Ablation: M-FI load balancing", Run: runAblationLoadBalance},
		{ID: "ablation-poisson", Title: "Ablation: memoryless events (the Poisson exception)", Run: runAblationPoisson},
		{ID: "ablation-adaptive", Title: "Ablation: online distribution learning", Run: runAblationAdaptive},
		{ID: "ablation-faults", Title: "Ablation: sensor-failure resilience", Run: runAblationFaults},
		{ID: "ablation-multipoi", Title: "Ablation: multi-PoI hazard-index extension", Run: runAblationMultiPoI},
	}
	return exps
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted with figures first.
func IDs() []string {
	exps := All()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// ASCII renders the table for terminal output.
func (t *Table) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	rows := make([][]string, len(t.X))
	for i, x := range t.X {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(x))
		for _, s := range t.Series {
			cell := ""
			if i < len(s.Y) {
				cell = fmt.Sprintf("%.4f", s.Y[i])
			}
			row = append(row, cell)
		}
		rows[i] = row
	}
	for c, h := range header {
		widths[c] = len(h)
		for _, row := range rows {
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
	}
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	cols := []string{csvEscape(t.XLabel)}
	for _, s := range t.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for i, x := range t.X {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.6f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// seriesFromColumns transposes per-sweep-point result rows into
// labelled series: column k of points becomes the series names[k].
// Every row must have len(names) entries.
func seriesFromColumns(points [][]float64, names ...string) []Series {
	out := make([]Series, len(names))
	for k, name := range names {
		y := make([]float64, len(points))
		for i, pt := range points {
			y[i] = pt[k]
		}
		out[k] = Series{Name: name, Y: y}
	}
	return out
}

// seriesByName finds a series in a table (helper for tests).
func (t *Table) seriesByName(name string) (Series, bool) {
	for _, s := range t.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}
