package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// Figure 4 (Section VI-A2): partial information, K = 1000, Bernoulli
// recharge with q = 0.5 and the per-recharge amount c swept; the
// clustering policy π'_PI(e) against the aggressive and periodic (θ1 = 3)
// baselines, on Weibull(40,3) (panel a) and Pareto(2,10) (panel b).

const (
	fig4K      = 1000
	fig4Q      = 0.5
	fig4Theta1 = 3
)

func runFig4(id, title string, opts Options, d dist.Interarrival, cs []float64) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	if opts.Quick && len(cs) > 3 {
		cs = []float64{cs[0], cs[len(cs)/2], cs[len(cs)-1]}
	}

	table := &Table{
		ID:     id,
		Title:  title,
		XLabel: "c",
		YLabel: "capture probability",
		X:      cs,
		Notes: []string{
			fmt.Sprintf("%s, partial information, K=%d, Bernoulli(q=%.2f, c), theta1=%d, T=%d",
				d.Name(), fig4K, fig4Q, fig4Theta1, opts.Slots),
		},
	}
	// Each sweep point (one recharge amount c) is independent: optimize
	// its policies and run its three simulations as one pool job.
	points, err := parallel.Map(opts.Workers, len(cs), func(i int) ([]float64, error) {
		ys := make([]float64, 3)
		c := cs[i]
		e := fig4Q * c
		newRecharge := func() energy.Recharge {
			r, _ := energy.NewBernoulli(fig4Q, c)
			return r
		}
		run := func(newPolicy func(int) sim.Policy, seedOff uint64) (float64, error) {
			res, err := runSim(opts, sim.Config{
				Dist:        d,
				Params:      p,
				NewRecharge: newRecharge,
				NewPolicy:   newPolicy,
				BatteryCap:  fig4K,
				Slots:       opts.Slots,
				Seed:        opts.Seed + uint64(i)*10 + seedOff,
				Info:        sim.PartialInfo,
				Engine:      opts.Engine,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}

		vec, _, err := robustClustering(d, e, p, opts, fig4K, newRecharge, opts.Seed+uint64(i))
		if err != nil {
			return ys, fmt.Errorf("%s: optimizing clustering at c=%g: %w", id, c, err)
		}
		if ys[0], err = run(newVectorPolicy(sim.PartialInfo, vec), 1); err != nil {
			return ys, err
		}

		if ys[1], err = run(func(int) sim.Policy { return sim.Aggressive{} }, 2); err != nil {
			return ys, err
		}

		theta2, err := core.PeriodicTheta2(fig4Theta1, e, d, p)
		if err != nil {
			return ys, err
		}
		pe, err := sim.NewPeriodic(fig4Theta1, theta2)
		if err != nil {
			return ys, err
		}
		if ys[2], err = run(func(int) sim.Policy { return pe }, 3); err != nil {
			return ys, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(points, "pi'_PI", "pi_AG", "pi_PE")
	return table, nil
}

func runFig4a(opts Options) (*Table, error) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	return runFig4("fig4a", "pi'_PI vs aggressive vs periodic, Weibull(40,3)", opts, d,
		[]float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2})
}

func runFig4b(opts Options) (*Table, error) {
	d, err := dist.NewPareto(2, 10)
	if err != nil {
		return nil, err
	}
	return runFig4("fig4b", "pi'_PI vs aggressive vs periodic, Pareto(2,10)", opts, d,
		[]float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5})
}
