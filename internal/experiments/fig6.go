package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// Figure 6 (Section VI-B): N rechargeable sensors monitoring one PoI,
// X ~ W(40,3), per-sensor Bernoulli recharge q = 0.1, K = 1000. M-FI and
// M-PI run the single-sensor policies computed for the aggregate rate N·e
// under round-robin slot assignment; the aggressive baseline uses the
// same slot assignment, the periodic baseline rotates θ2-slot blocks.
// Panel (a) sweeps N at c = 1; panel (b) sweeps c at N = 5.

const (
	fig6K      = 1000
	fig6Q      = 0.1
	fig6Theta1 = 3
)

// fig6Point measures the four policies for one (N, c) setting.
func fig6Point(opts Options, n int, c float64, seedBase uint64) (mfi, mpi, ag, pe float64, err error) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	p := core.DefaultParams()
	e := fig6Q * c
	aggregate := float64(n) * e

	newRecharge := func() energy.Recharge {
		r, _ := energy.NewBernoulli(fig6Q, c)
		return r
	}
	run := func(mode sim.Mode, blockLen int, info sim.Info, newPolicy func(int) sim.Policy, seedOff uint64) (float64, error) {
		res, err := runSim(opts, sim.Config{
			Dist:        d,
			Params:      p,
			NewRecharge: newRecharge,
			NewPolicy:   newPolicy,
			N:           n,
			Mode:        mode,
			BlockLen:    blockLen,
			BatteryCap:  fig6K,
			Slots:       opts.Slots,
			Seed:        seedBase + seedOff,
			Info:        info,
			Engine:      opts.Engine,
		})
		if err != nil {
			return 0, err
		}
		return res.QoM, nil
	}

	// M-FI: greedy policy at the aggregate recharge rate.
	solved := opts.SolvePhase()
	fi, err := core.GreedyFICached(d, aggregate, p)
	solved()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if mfi, err = run(sim.ModeRoundRobin, 0, sim.FullInfo, newVectorPolicy(sim.FullInfo, fi.Policy), 1); err != nil {
		return 0, 0, 0, 0, err
	}

	// M-PI: clustering policy at the aggregate rate.
	vec, _, err := robustClustering(d, aggregate, p, opts, fig6K, newRecharge, seedBase)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if mpi, err = run(sim.ModeRoundRobin, 0, sim.PartialInfo, newVectorPolicy(sim.PartialInfo, vec), 2); err != nil {
		return 0, 0, 0, 0, err
	}

	// Multi-sensor aggressive: round-robin slots, aggressive inside.
	if ag, err = run(sim.ModeRoundRobin, 0, sim.PartialInfo, func(int) sim.Policy { return sim.Aggressive{} }, 3); err != nil {
		return 0, 0, 0, 0, err
	}

	// Multi-sensor periodic: θ2-slot blocks rotate across sensors; each
	// sensor is energy balanced at θ2(θ1, N·e).
	theta2, err := core.PeriodicTheta2(fig6Theta1, aggregate, d, p)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	pol, err := sim.NewPeriodic(fig6Theta1, theta2)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if pe, err = run(sim.ModeBlocks, pol.Theta2, sim.PartialInfo, func(int) sim.Policy { return pol }, 4); err != nil {
		return 0, 0, 0, 0, err
	}
	return mfi, mpi, ag, pe, nil
}

func runFig6(id, title, xlabel string, opts Options, points []float64, setting func(x float64) (n int, c float64), note string) (*Table, error) {
	opts = opts.withDefaults()
	if opts.Quick && len(points) > 3 {
		points = []float64{points[0], points[len(points)/2], points[len(points)-1]}
	}
	table := &Table{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "capture probability",
		X:      points,
		Notes:  []string{note + fmt.Sprintf(", K=%d, T=%d", fig6K, opts.Slots)},
	}
	// Each (N, c) setting is one pool job measuring all four policies.
	rows, err := parallel.Map(opts.Workers, len(points), func(i int) ([]float64, error) {
		n, c := setting(points[i])
		mfi, mpi, ag, pe, err := fig6Point(opts, n, c, opts.Seed+uint64(i)*10)
		if err != nil {
			return nil, fmt.Errorf("%s at %s=%g: %w", id, xlabel, points[i], err)
		}
		return []float64{mfi, mpi, ag, pe}, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "M-FI", "M-PI", "pi_AG", "pi_PE")
	return table, nil
}

func runFig6a(opts Options) (*Table, error) {
	return runFig6("fig6a", "multi-sensor QoM vs N (q=0.1, c=1)", "N", opts,
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		func(x float64) (int, float64) { return int(x), 1 },
		"X~W(40,3), Bernoulli(q=0.1, c=1) per sensor")
}

func runFig6b(opts Options) (*Table, error) {
	return runFig6("fig6b", "multi-sensor QoM vs c (N=5, q=0.1)", "c", opts,
		[]float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0},
		func(x float64) (int, float64) { return 5, x },
		"X~W(40,3), N=5, Bernoulli(q=0.1, c) per sensor")
}
