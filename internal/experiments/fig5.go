package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// Figure 5 (Section VI-A2): events follow a two-state Markov chain
// (a, b); the clustering policy — applied to the chain's renewal
// transformation — against the EBCW reconstruction (the best policy in
// the last-observation class of [6]). Bernoulli recharge q = 0.5, c = 2
// (e = 1), K = 1000. Panel (a): b = 0.2; panel (b): b = 0.7. The paper's
// claim: near parity when a, b > 0.5, clustering ahead elsewhere.

const (
	fig5K = 1000
	fig5E = 1.0
)

func runFig5(id, title string, opts Options, b float64) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	as := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if opts.Quick {
		as = []float64{0.2, 0.5, 0.8}
	}

	table := &Table{
		ID:     id,
		Title:  title,
		XLabel: "a",
		YLabel: "capture probability",
		X:      as,
		Notes: []string{
			fmt.Sprintf("two-state Markov events, b=%.1f, Bernoulli recharge q=0.5 c=2 (e=%.1f), K=%d, T=%d; pi_EBCW is the faithful [6] reconstruction (always active during bursts); pi_EBCW(tuned) is the strongest policy of that class",
				b, fig5E, fig5K, opts.Slots),
		},
	}
	// One pool job per Markov burstiness level a: derive the renewal
	// transformation, tune the three policies, run their simulations.
	points, err := parallel.Map(opts.Workers, len(as), func(i int) ([]float64, error) {
		ys := make([]float64, 3)
		a := as[i]
		mr, err := dist.NewMarkovRenewal(a, b)
		if err != nil {
			return nil, err
		}
		newRecharge := func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.5, 2)
			return r
		}
		run := func(newPolicy func(int) sim.Policy, seedOff uint64) (float64, error) {
			res, err := runSim(opts, sim.Config{
				Dist:        mr,
				Params:      p,
				NewRecharge: newRecharge,
				NewPolicy:   newPolicy,
				BatteryCap:  fig5K,
				Slots:       opts.Slots,
				Seed:        opts.Seed + uint64(i)*10 + seedOff,
				Info:        sim.PartialInfo,
				Engine:      opts.Engine,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}

		vec, _, err := robustClustering(mr, fig5E, p, opts, fig5K, newRecharge, opts.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: clustering at a=%g: %w", id, a, err)
		}
		if ys[0], err = run(newVectorPolicy(sim.PartialInfo, vec), 1); err != nil {
			return nil, err
		}

		eb, err := core.OptimizeEBCWFaithful(a, b, fig5E, p)
		if err != nil {
			return nil, fmt.Errorf("%s: EBCW at a=%g: %w", id, a, err)
		}
		if ys[1], err = run(func(int) sim.Policy { return sim.NewEBCW(eb) }, 2); err != nil {
			return nil, err
		}

		ebT, err := core.OptimizeEBCW(a, b, fig5E, p)
		if err != nil {
			return nil, fmt.Errorf("%s: tuned EBCW at a=%g: %w", id, a, err)
		}
		if ys[2], err = run(func(int) sim.Policy { return sim.NewEBCW(ebT) }, 3); err != nil {
			return nil, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(points, "pi'_PI", "pi_EBCW", "pi_EBCW(tuned)")
	return table, nil
}

func runFig5a(opts Options) (*Table, error) {
	return runFig5("fig5a", "clustering vs EBCW, b=0.2", opts, 0.2)
}

func runFig5b(opts Options) (*Table, error) {
	return runFig5("fig5b", "clustering vs EBCW, b=0.7", opts, 0.7)
}
