package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

// Figure 3 setup (Section VI-A1): X ~ W(40,3), e = 0.5, three recharge
// processes — Bernoulli(q=0.5, c=1) (the paper labels it "Poisson"),
// Periodic (5 units every 10 slots), and Uniform (0.5 units every slot) —
// with the battery capacity K swept. Both information models converge to
// their analytic optimum as K grows, independently of the recharge
// process.

const fig3Rate = 0.5

func fig3Capacities(quick bool) []float64 {
	if quick {
		return []float64{7, 25, 100}
	}
	return []float64{7, 10, 15, 20, 30, 50, 75, 100, 150, 200}
}

type rechargeCase struct {
	name string
	mk   func() energy.Recharge
}

func fig3Recharges() ([]rechargeCase, error) {
	bern, err := energy.NewBernoulli(0.5, 1)
	if err != nil {
		return nil, err
	}
	_ = bern
	return []rechargeCase{
		{name: "Bernoulli", mk: func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.5, 1)
			return r
		}},
		{name: "Periodic", mk: func() energy.Recharge {
			r, _ := energy.NewPeriodic(5, 10)
			return r
		}},
		{name: "Uniform", mk: func() energy.Recharge {
			r, _ := energy.NewConstant(0.5)
			return r
		}},
	}, nil
}

func runFig3(id, title string, opts Options, info sim.Info) (*Table, error) {
	opts = opts.withDefaults()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()

	var vec core.Vector
	var bound float64
	var policyName string
	switch info {
	case sim.FullInfo:
		fi, err := core.GreedyFI(d, fig3Rate, p)
		if err != nil {
			return nil, err
		}
		vec, bound, policyName = fi.Policy, fi.CaptureProb, "pi*_FI"
	case sim.PartialInfo:
		copts := core.ClusteringOptions{}
		if opts.Quick {
			copts.CoarsePoints = 8
			copts.MaxGap = 512
		}
		pi, err := core.OptimizeClustering(d, fig3Rate, p, copts)
		if err != nil {
			return nil, err
		}
		vec, bound, policyName = pi.Vector, pi.CaptureProb, "pi'_PI"
	default:
		return nil, fmt.Errorf("experiments: unsupported info model %d", info)
	}

	recharges, err := fig3Recharges()
	if err != nil {
		return nil, err
	}
	caps := fig3Capacities(opts.Quick)

	table := &Table{
		ID:     id,
		Title:  title,
		XLabel: "K",
		YLabel: "capture probability",
		X:      caps,
		Notes: []string{
			fmt.Sprintf("X~W(40,3), e=%.2f, T=%d, policy %s; Upper Bound is the analytic U under the energy assumption", fig3Rate, opts.Slots, policyName),
		},
	}
	upper := Series{Name: "Upper Bound", Y: make([]float64, len(caps))}
	for i := range caps {
		upper.Y[i] = bound
	}
	table.Series = append(table.Series, upper)

	for _, rc := range recharges {
		s := Series{Name: rc.name, Y: make([]float64, len(caps))}
		for i, k := range caps {
			cfg := sim.Config{
				Dist:        d,
				Params:      p,
				NewRecharge: rc.mk,
				NewPolicy:   newVectorPolicy(info, vec),
				BatteryCap:  k,
				Slots:       opts.Slots,
				Seed:        opts.Seed + uint64(i),
				Info:        info,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s with %s at K=%g: %w", id, rc.name, k, err)
			}
			s.Y[i] = res.QoM
		}
		table.Series = append(table.Series, s)
	}
	return table, nil
}

// newVectorPolicy returns a policy factory executing vec under the given
// information model.
func newVectorPolicy(info sim.Info, vec core.Vector) func(int) sim.Policy {
	return func(int) sim.Policy {
		if info == sim.FullInfo {
			return &sim.VectorFI{Vector: vec}
		}
		return &sim.VectorPI{Vector: vec}
	}
}

func runFig3a(opts Options) (*Table, error) {
	return runFig3("fig3a", "U_K(pi*_FI) vs K under three recharge processes", opts, sim.FullInfo)
}

func runFig3b(opts Options) (*Table, error) {
	return runFig3("fig3b", "U_K(pi'_PI) vs K under three recharge processes", opts, sim.PartialInfo)
}
