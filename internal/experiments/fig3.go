package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// Figure 3 setup (Section VI-A1): X ~ W(40,3), e = 0.5, three recharge
// processes — Bernoulli(q=0.5, c=1) (the paper labels it "Poisson"),
// Periodic (5 units every 10 slots), and Uniform (0.5 units every slot) —
// with the battery capacity K swept. Both information models converge to
// their analytic optimum as K grows, independently of the recharge
// process.

const fig3Rate = 0.5

func fig3Capacities(quick bool) []float64 {
	if quick {
		return []float64{7, 25, 100}
	}
	return []float64{7, 10, 15, 20, 30, 50, 75, 100, 150, 200}
}

type rechargeCase struct {
	name string
	mk   func() energy.Recharge
}

func fig3Recharges() ([]rechargeCase, error) {
	protos := []struct {
		name string
		mk   func() (energy.Recharge, error)
	}{
		{"Bernoulli", func() (energy.Recharge, error) { return energy.NewBernoulli(0.5, 1) }},
		{"Periodic", func() (energy.Recharge, error) { return energy.NewPeriodic(5, 10) }},
		{"Uniform", func() (energy.Recharge, error) { return energy.NewConstant(0.5) }},
	}
	cases := make([]rechargeCase, len(protos))
	for i, pr := range protos {
		// Construct each process once up front so parameter errors
		// surface here, not inside a factory that swallows them.
		if _, err := pr.mk(); err != nil {
			return nil, fmt.Errorf("building %s recharge: %w", pr.name, err)
		}
		mk := pr.mk
		cases[i] = rechargeCase{name: pr.name, mk: func() energy.Recharge {
			r, _ := mk()
			return r
		}}
	}
	return cases, nil
}

func runFig3(id, title string, opts Options, info sim.Info) (*Table, error) {
	opts = opts.withDefaults()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()

	solved := opts.SolvePhase()
	var vec core.Vector
	var bound float64
	var policyName string
	switch info {
	case sim.FullInfo:
		fi, err := core.GreedyFICached(d, fig3Rate, p)
		if err != nil {
			return nil, err
		}
		vec, bound, policyName = fi.Policy, fi.CaptureProb, "pi*_FI"
	case sim.PartialInfo:
		copts := core.ClusteringOptions{}
		if opts.Quick {
			copts.CoarsePoints = 8
			copts.MaxGap = 512
		}
		pi, err := core.OptimizeClusteringCached(d, fig3Rate, p, copts)
		if err != nil {
			return nil, err
		}
		vec, bound, policyName = pi.Vector, pi.CaptureProb, "pi'_PI"
	default:
		return nil, fmt.Errorf("experiments: unsupported info model %d", info)
	}
	solved()

	recharges, err := fig3Recharges()
	if err != nil {
		return nil, err
	}
	caps := fig3Capacities(opts.Quick)

	table := &Table{
		ID:     id,
		Title:  title,
		XLabel: "K",
		YLabel: "capture probability",
		X:      caps,
		Notes: []string{
			fmt.Sprintf("X~W(40,3), e=%.2f, T=%d, policy %s; Upper Bound is the analytic U under the energy assumption", fig3Rate, opts.Slots, policyName),
		},
	}
	upper := Series{Name: "Upper Bound", Y: make([]float64, len(caps))}
	for i := range caps {
		upper.Y[i] = bound
	}
	table.Series = append(table.Series, upper)

	// Fan the (recharge process × capacity) grid across the pool: every
	// cell is an independent simulation whose seed depends only on its
	// capacity index, exactly as in the sequential layout.
	qoms, err := parallel.Map(opts.Workers, len(recharges)*len(caps), func(j int) (float64, error) {
		rc := recharges[j/len(caps)]
		i := j % len(caps)
		cfg := sim.Config{
			Dist:        d,
			Params:      p,
			NewRecharge: rc.mk,
			NewPolicy:   newVectorPolicy(info, vec),
			BatteryCap:  caps[i],
			Slots:       opts.Slots,
			Seed:        opts.Seed + uint64(i),
			Info:        info,
			Engine:      opts.Engine,
		}
		res, err := runSim(opts, cfg)
		if err != nil {
			return 0, fmt.Errorf("%s with %s at K=%g: %w", id, rc.name, caps[i], err)
		}
		return res.QoM, nil
	})
	if err != nil {
		return nil, err
	}
	for r, rc := range recharges {
		table.Series = append(table.Series, Series{Name: rc.name, Y: qoms[r*len(caps) : (r+1)*len(caps)]})
	}
	return table, nil
}

// newVectorPolicy returns a policy factory executing vec under the given
// information model.
func newVectorPolicy(info sim.Info, vec core.Vector) func(int) sim.Policy {
	return func(int) sim.Policy {
		if info == sim.FullInfo {
			return &sim.VectorFI{Vector: vec}
		}
		return &sim.VectorPI{Vector: vec}
	}
}

func runFig3a(opts Options) (*Table, error) {
	return runFig3("fig3a", "U_K(pi*_FI) vs K under three recharge processes", opts, sim.FullInfo)
}

func runFig3b(opts Options) (*Table, error) {
	return runFig3("fig3b", "U_K(pi'_PI) vs K under three recharge processes", opts, sim.PartialInfo)
}
