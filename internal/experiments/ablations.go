package experiments

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/mdp"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// runAblationLP verifies Theorem 1 numerically: the greedy water-filling
// policy attains exactly the optimum of the linear program (7)-(8) across
// the energy range, for both an increasing-hazard and a Markov-renewal
// workload.
func runAblationLP(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	w, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	mr, err := dist.NewMarkovRenewal(0.3, 0.6)
	if err != nil {
		return nil, err
	}
	es := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.1}
	if opts.Quick {
		es = []float64{0.1, 0.5, 0.9}
	}
	table := &Table{
		ID:     "ablation-lp",
		Title:  "Theorem 1 greedy equals the simplex LP optimum",
		XLabel: "e",
		YLabel: "capture probability",
		X:      es,
		Notes:  []string{"max |greedy − LP| over both workloads is reported in the last column; Theorem 1 predicts 0"},
	}
	// Grid: (energy rate × workload); each cell solves greedy and the
	// simplex LP independently.
	workloads := []dist.Interarrival{w, mr}
	type pair struct{ greedy, lp float64 }
	cells, err := parallel.Map(opts.Workers, len(es)*len(workloads), func(j int) (pair, error) {
		e := es[j/len(workloads)]
		d := workloads[j%len(workloads)]
		greedy, err := core.GreedyFICached(d, e, p)
		if err != nil {
			return pair{}, err
		}
		lp, err := core.LPFICached(d, e, p, 300)
		if err != nil {
			return pair{}, err
		}
		return pair{greedy: greedy.CaptureProb, lp: lp.CaptureProb}, nil
	})
	if err != nil {
		return nil, err
	}
	gW := Series{Name: "greedy W(40,3)", Y: make([]float64, len(es))}
	lW := Series{Name: "LP W(40,3)", Y: make([]float64, len(es))}
	gM := Series{Name: "greedy Markov(.3,.6)", Y: make([]float64, len(es))}
	lM := Series{Name: "LP Markov(.3,.6)", Y: make([]float64, len(es))}
	diff := Series{Name: "max |diff|", Y: make([]float64, len(es))}
	for i := range es {
		cw, cm := cells[i*len(workloads)], cells[i*len(workloads)+1]
		gW.Y[i], lW.Y[i] = cw.greedy, cw.lp
		gM.Y[i], lM.Y[i] = cm.greedy, cm.lp
		diff.Y[i] = math.Max(math.Abs(cw.greedy-cw.lp), math.Abs(cm.greedy-cm.lp))
	}
	table.Series = []Series{gW, lW, gM, lM, diff}
	return table, nil
}

// runAblationWindows measures the gain of the paper's refinement path
// (extra transition points after c_n3) over the base 3-region clustering
// policy.
func runAblationWindows(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	es := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
	if opts.Quick {
		es = []float64{0.3, 0.7}
	}
	table := &Table{
		ID:     "ablation-windows",
		Title:  "clustering vs window-refined clustering (analytic U)",
		XLabel: "e",
		YLabel: "capture probability",
		X:      es,
		Notes:  []string{"refinement inserts up to 2 extra sleep windows into the recovery tail (Section IV-B2's c_n4, c_n5 remark)"},
	}
	rows, err := parallel.Map(opts.Workers, len(es), func(i int) ([]float64, error) {
		copts := core.ClusteringOptions{}
		if opts.Quick {
			copts.CoarsePoints = 8
			copts.MaxGap = 512
		}
		b, err := core.OptimizeClusteringCached(d, es[i], p, copts)
		if err != nil {
			return nil, err
		}
		r, err := core.RefineWindows(d, es[i], p, b, 2)
		if err != nil {
			return nil, err
		}
		return []float64{b.CaptureProb, r.CaptureProb, r.CaptureProb - b.CaptureProb}, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "pi'_PI (3 regions)", "refined (extra windows)", "gain")
	return table, nil
}

// runAblationPOMDP quantifies Section IV-B1's intractability claim (the
// reachable information-state count grows exponentially with the
// horizon) and, on the same small instance, the clustering-style vector's
// optimality gap against the exact finite-horizon POMDP solution.
func runAblationPOMDP(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	alpha := []float64{0.1, 0.2, 0.3, 0.25, 0.15}
	horizons := []float64{2, 4, 6, 8, 10, 12}
	if opts.Quick {
		horizons = []float64{2, 4, 6}
	}
	table := &Table{
		ID:     "ablation-pomdp",
		Title:  "POMDP information-state growth and exact-vs-vector gap",
		XLabel: "horizon",
		YLabel: "count / captures",
		X:      horizons,
		Notes: []string{
			"events: 5-slot empirical PMF; battery K=8, recharge 1/slot, delta1=1 delta2=2",
			"'beliefs' is the number of distinct reachable information states (exponential in the horizon)",
			"'exact' and 'vector' are expected captures of the optimal policy and of the best static hot-window vector",
		},
	}
	rows, err := parallel.Map(opts.Workers, len(horizons), func(i int) ([]float64, error) {
		h := int(horizons[i])
		pomdp, err := mdp.NewPOMDP(alpha, 1, 2, 8, 1, h)
		if err != nil {
			return nil, err
		}
		res := pomdp.SolveExact()
		// Best static window over the 5-state support (brute force).
		bestVec := 0.0
		for lo := 1; lo <= 5; lo++ {
			for hi := lo; hi <= 5; hi++ {
				vec := make([]bool, 5)
				for s := lo; s <= hi; s++ {
					vec[s-1] = true
				}
				v := pomdp.EvaluateVector(vec, true)
				if v.Value > bestVec {
					bestVec = v.Value
				}
			}
		}
		return []float64{float64(res.DistinctBeliefs), res.Value, bestVec}, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "beliefs", "exact", "vector")
	return table, nil
}

// runAblationRecharge extends Fig. 3's recharge-independence claim to
// bursty and noisy harvesting models beyond the paper's three: all
// processes share mean rate 0.5, and the greedy policy's QoM is the same
// across them once K absorbs the bursts.
func runAblationRecharge(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFICached(d, 0.5, p)
	if err != nil {
		return nil, err
	}
	caps := []float64{25, 100, 400, 1600}
	if opts.Quick {
		caps = []float64{25, 400}
	}
	cases := []rechargeCase{
		{name: "Bernoulli(.5,1)", mk: func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }},
		{name: "Periodic(5/10)", mk: func() energy.Recharge { r, _ := energy.NewPeriodic(5, 10); return r }},
		{name: "Constant(.5)", mk: func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }},
		{name: "ClippedGauss", mk: func() energy.Recharge {
			// mu chosen so the clipped mean is 0.5.
			r, _ := energy.NewClippedGaussian(0.43236, 0.5)
			return r
		}},
		{name: "OnOff bursty", mk: func() energy.Recharge { r, _ := energy.NewOnOff(1.5, 0.02, 0.01); return r }},
	}
	table := &Table{
		ID:     "ablation-recharge",
		Title:  "recharge-process independence of U_K(pi*_FI)",
		XLabel: "K",
		YLabel: "capture probability",
		X:      caps,
		Notes: []string{
			fmt.Sprintf("X~W(40,3), e=0.5 for every process, T=%d; analytic bound %.4f", opts.Slots, fi.CaptureProb),
			"the bursty OnOff process needs the largest K to converge — battery as burst absorber (Remark 2)",
		},
	}
	// Fan the (recharge process × capacity) grid across the pool.
	qoms, err := parallel.Map(opts.Workers, len(cases)*len(caps), func(j int) (float64, error) {
		rc := cases[j/len(caps)]
		i := j % len(caps)
		res, err := runSim(opts, sim.Config{
			Dist:        d,
			Params:      p,
			NewRecharge: rc.mk,
			NewPolicy:   newVectorPolicy(sim.FullInfo, fi.Policy),
			BatteryCap:  caps[i],
			Slots:       opts.Slots,
			Seed:        opts.Seed + uint64(i),
			Info:        sim.FullInfo,
			Engine:      opts.Engine,
		})
		if err != nil {
			return 0, err
		}
		return res.QoM, nil
	})
	if err != nil {
		return nil, err
	}
	for r, rc := range cases {
		table.Series = append(table.Series, Series{Name: rc.name, Y: qoms[r*len(caps) : (r+1)*len(caps)]})
	}
	return table, nil
}

// runAblationLoadBalance measures Section V-A's load-balancing concern:
// round-robin M-FI balances "natural" workloads but degenerates on the
// paper's adversarial β1=0, β2=1 example (deterministic 2-slot events
// with two sensors).
func runAblationLoadBalance(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	ns := []float64{2, 3, 4, 5}
	if opts.Quick {
		ns = []float64{2, 4}
	}
	w, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	pa, err := dist.NewPareto(2, 10)
	if err != nil {
		return nil, err
	}
	det, err := dist.NewDeterministic(2)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "ablation-loadbalance",
		Title:  "M-FI load imbalance (max-min)/mean activations per sensor",
		XLabel: "N",
		YLabel: "imbalance",
		X:      ns,
		Notes: []string{
			"Deterministic(2) is the paper's adversarial example: with N=2 one sensor owns every event slot",
		},
	}
	tcs := []struct {
		name string
		d    dist.Interarrival
		e    float64
	}{
		{"Weibull(40,3)", w, 0.3},
		{"Pareto(2,10)", pa, 0.3},
		{"Deterministic(2)", det, 1.0},
	}
	// Fan the (workload × N) grid across the pool; each cell solves its
	// own aggregate-rate policy (cached across repeated N·e values).
	imbs, err := parallel.Map(opts.Workers, len(tcs)*len(ns), func(j int) (float64, error) {
		tc := tcs[j/len(ns)]
		i := j % len(ns)
		n := int(ns[i])
		fi, err := core.GreedyFICached(tc.d, float64(n)*tc.e, p)
		if err != nil {
			return 0, err
		}
		res, err := runSim(opts, sim.Config{
			Dist:        tc.d,
			Params:      p,
			NewRecharge: func() energy.Recharge { r, _ := energy.NewConstant(tc.e); return r },
			NewPolicy:   newVectorPolicy(sim.FullInfo, fi.Policy),
			N:           n,
			Mode:        sim.ModeRoundRobin,
			BatteryCap:  1000,
			Slots:       opts.Slots,
			Seed:        opts.Seed + uint64(i),
			Info:        sim.FullInfo,
			Engine:      opts.Engine,
		})
		if err != nil {
			return 0, err
		}
		return res.LoadImbalance(), nil
	})
	if err != nil {
		return nil, err
	}
	for t, tc := range tcs {
		table.Series = append(table.Series, Series{Name: tc.name, Y: imbs[t*len(ns) : (t+1)*len(ns)]})
	}
	return table, nil
}

// runAblationPoisson demonstrates the paper's "important exception": for
// memoryless (geometric) inter-arrivals the hazard is flat, there is no
// hot region to exploit, and the clustering policy collapses to the same
// performance as the aggressive and periodic baselines.
func runAblationPoisson(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	g, err := dist.NewGeometric(1.0 / 36)
	if err != nil {
		return nil, err
	}
	cs := []float64{0.6, 1.0, 1.4, 1.8, 2.2}
	if opts.Quick {
		cs = []float64{0.6, 1.8}
	}
	table := &Table{
		ID:     "ablation-poisson",
		Title:  "memoryless events: no policy can exploit renewal memory",
		XLabel: "c",
		YLabel: "capture probability",
		X:      cs,
		Notes: []string{
			fmt.Sprintf("Geometric(1/36) events (discrete Poisson), Bernoulli(q=0.5, c) recharge, K=1000, T=%d", opts.Slots),
		},
	}
	points, err := parallel.Map(opts.Workers, len(cs), func(i int) ([]float64, error) {
		ys := make([]float64, 3)
		c := cs[i]
		e := 0.5 * c
		newRecharge := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, c); return r }
		run := func(newPolicy func(int) sim.Policy, seedOff uint64) (float64, error) {
			res, err := runSim(opts, sim.Config{
				Dist:        g,
				Params:      p,
				NewRecharge: newRecharge,
				NewPolicy:   newPolicy,
				BatteryCap:  1000,
				Slots:       opts.Slots,
				Seed:        opts.Seed + uint64(i)*10 + seedOff,
				Info:        sim.PartialInfo,
				Engine:      opts.Engine,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}
		vec, _, err := robustClustering(g, e, p, opts, 1000, newRecharge, opts.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		if ys[0], err = run(newVectorPolicy(sim.PartialInfo, vec), 1); err != nil {
			return nil, err
		}
		if ys[1], err = run(func(int) sim.Policy { return sim.Aggressive{} }, 2); err != nil {
			return nil, err
		}
		theta2, err := core.PeriodicTheta2(3, e, g, p)
		if err != nil {
			return nil, err
		}
		pe, err := sim.NewPeriodic(3, theta2)
		if err != nil {
			return nil, err
		}
		if ys[2], err = run(func(int) sim.Policy { return pe }, 3); err != nil {
			return nil, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(points, "pi'_PI", "pi_AG", "pi_PE")
	return table, nil
}
