package experiments

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/parallel"
	"eventcap/internal/sim"
)

// runAblationAdaptive measures the unknown-distribution extension: a
// sensor that learns the inter-arrival law online (sim.AdaptiveGreedyFI)
// against the oracle that knows it (the paper's assumption) and the blind
// aggressive baseline, as the observation horizon grows.
func runAblationAdaptive(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()
	const e = 0.5
	fi, err := core.GreedyFICached(d, e, p)
	if err != nil {
		return nil, err
	}

	horizons := []float64{50_000, 200_000, 500_000, 2_000_000}
	if opts.Quick {
		horizons = []float64{50_000, 200_000}
	}
	table := &Table{
		ID:     "ablation-adaptive",
		Title:  "online distribution learning vs the known-distribution oracle",
		XLabel: "T",
		YLabel: "capture probability",
		X:      horizons,
		Notes: []string{
			fmt.Sprintf("X~W(40,3) unknown to the learner, e=%.1f, K=1000; oracle analytic U = %.4f", e, fi.CaptureProb),
			"the learner estimates the gap PMF from observed events and recomputes Theorem 1's policy every 50 events",
		},
	}
	rows, err := parallel.Map(opts.Workers, len(horizons), func(i int) ([]float64, error) {
		ys := make([]float64, 3)
		slots := int64(horizons[i])
		run := func(newPolicy func(int) sim.Policy, seedOff uint64) (float64, error) {
			res, err := runSim(opts, sim.Config{
				Dist:   d,
				Params: p,
				NewRecharge: func() energy.Recharge {
					r, _ := energy.NewBernoulli(0.5, 1)
					return r
				},
				NewPolicy:  newPolicy,
				BatteryCap: 1000,
				Slots:      slots,
				Seed:       opts.Seed + uint64(i)*10 + seedOff,
				Info:       sim.FullInfo,
				Engine:     opts.Engine,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}
		var err error
		if ys[0], err = run(func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy} }, 1); err != nil {
			return nil, err
		}
		if ys[1], err = run(func(int) sim.Policy { return &sim.AdaptiveGreedyFI{E: e, Params: p} }, 2); err != nil {
			return nil, err
		}
		if ys[2], err = run(func(int) sim.Policy { return sim.Aggressive{} }, 3); err != nil {
			return nil, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "oracle (known dist)", "adaptive (learned)", "aggressive (blind)")
	return table, nil
}

// runAblationFaults measures the resilience of the coordination schemes
// when sensors die mid-deployment (fault injection): round-robin M-FI
// keeps assigning slots to dead sensors and loses exactly their share of
// coverage, while the uncoordinated mode degrades more gracefully at the
// price of redundancy while healthy.
func runAblationFaults(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams()
	const (
		n = 4
		e = 0.15
	)
	deadCounts := []float64{0, 1, 2, 3}
	if opts.Quick {
		deadCounts = []float64{0, 2}
	}
	table := &Table{
		ID:     "ablation-faults",
		Title:  "sensor failures: round-robin coordination vs uncoordinated",
		XLabel: "failed sensors",
		YLabel: "capture probability",
		X:      deadCounts,
		Notes: []string{
			fmt.Sprintf("N=%d sensors, X~W(40,3), e=%.2f per sensor, K=1000, T=%d; failures at T/4", n, e, opts.Slots),
			"round robin keeps dead sensors' slot assignments; uncoordinated sensors overlap but tolerate losses",
		},
	}
	team, err := core.GreedyFICached(d, n*e, p)
	if err != nil {
		return nil, err
	}
	solo, err := core.GreedyFICached(d, e, p)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.Map(opts.Workers, len(deadCounts), func(i int) ([]float64, error) {
		ys := make([]float64, 2)
		dead := int(deadCounts[i])
		failAt := make(map[int]int64, dead)
		for s := 0; s < dead; s++ {
			failAt[s] = opts.Slots / 4
		}
		run := func(mode sim.Mode, vec core.Vector, seedOff uint64) (float64, error) {
			res, err := runSim(opts, sim.Config{
				Dist:   d,
				Params: p,
				NewRecharge: func() energy.Recharge {
					r, _ := energy.NewBernoulli(0.1, e/0.1)
					return r
				},
				NewPolicy:  newVectorPolicy(sim.FullInfo, vec),
				N:          n,
				Mode:       mode,
				BatteryCap: 1000,
				Slots:      opts.Slots,
				Seed:       opts.Seed + uint64(i)*10 + seedOff,
				Info:       sim.FullInfo,
				FailAt:     failAt,
				Engine:     opts.Engine,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}
		var err error
		if ys[0], err = run(sim.ModeRoundRobin, team.Policy, 1); err != nil {
			return nil, err
		}
		if ys[1], err = run(sim.ModeAll, solo.Policy, 2); err != nil {
			return nil, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "M-FI round robin", "uncoordinated")
	return table, nil
}

// runAblationMultiPoI measures the multi-PoI extension: one sensor, three
// heterogeneous event streams, the calibrated max-hazard index policy vs
// blind round-robin cycling, as the harvest rate grows.
func runAblationMultiPoI(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	p := core.DefaultParams()
	w1, err := dist.NewWeibull(40, 3)
	if err != nil {
		return nil, err
	}
	w2, err := dist.NewWeibull(25, 2)
	if err != nil {
		return nil, err
	}
	u, err := dist.NewUniformInt(10, 30)
	if err != nil {
		return nil, err
	}
	dists := []dist.Interarrival{w1, w2, u}

	es := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if opts.Quick {
		es = []float64{0.3, 0.8}
	}
	table := &Table{
		ID:     "ablation-multipoi",
		Title:  "multi-PoI extension: hazard-index policy vs blind cycling",
		XLabel: "e",
		YLabel: "capture probability (all PoIs)",
		X:      es,
		Notes: []string{
			fmt.Sprintf("one FI sensor, three streams (W(40,3), W(25,2), U(10,30)), K=1000, T=%d", opts.Slots),
			"'analytic' is the equilibrium-age calibration of core.OptimizeMultiPoI",
		},
	}
	rows, err := parallel.Map(opts.Workers, len(es), func(i int) ([]float64, error) {
		ys := make([]float64, 3)
		e := es[i]
		cal, err := core.OptimizeMultiPoI(dists, e, p)
		if err != nil {
			return nil, err
		}
		ys[0] = cal.CaptureProb
		run := func(pol sim.PoIPolicy, seedOff uint64) (float64, error) {
			res, err := sim.RunMultiPoI(sim.MultiPoIConfig{
				Dists:  dists,
				Params: p,
				NewRecharge: func() energy.Recharge {
					r, _ := energy.NewBernoulli(0.5, e/0.5)
					return r
				},
				Policy:     pol,
				BatteryCap: 1000,
				Slots:      opts.Slots,
				Seed:       opts.Seed + uint64(i)*10 + seedOff,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}
		if ys[1], err = run(&sim.MaxHazardThreshold{Dists: dists, Threshold: cal.Threshold}, 1); err != nil {
			return nil, err
		}
		duty := e / p.ActivationCost()
		if ys[2], err = run(&sim.RoundRobinPoI{M: len(dists), Duty: duty}, 2); err != nil {
			return nil, err
		}
		return ys, nil
	})
	if err != nil {
		return nil, err
	}
	table.Series = seriesFromColumns(rows, "analytic", "max-hazard index", "round robin")
	return table, nil
}
