package experiments

import (
	"strings"
	"testing"

	"eventcap/internal/core"
)

// filterTimingNotes drops wall-clock annotations, the only table content
// allowed to differ between runs.
func filterTimingNotes(notes []string) []string {
	out := make([]string, 0, len(notes))
	for _, n := range notes {
		if strings.HasPrefix(n, "timing:") {
			continue
		}
		out = append(out, n)
	}
	return out
}

// assertTablesEqual requires bit-identical X and Series and identical
// Notes modulo timing annotations.
func assertTablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if len(got.X) != len(want.X) {
		t.Fatalf("X length %d != %d", len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d]: %v != %v", i, got.X[i], want.X[i])
		}
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series count %d != %d", len(got.Series), len(want.Series))
	}
	for k := range want.Series {
		if got.Series[k].Name != want.Series[k].Name {
			t.Fatalf("series %d name %q != %q", k, got.Series[k].Name, want.Series[k].Name)
		}
		if len(got.Series[k].Y) != len(want.Series[k].Y) {
			t.Fatalf("series %q length %d != %d", want.Series[k].Name, len(got.Series[k].Y), len(want.Series[k].Y))
		}
		for i := range want.Series[k].Y {
			if got.Series[k].Y[i] != want.Series[k].Y[i] {
				t.Fatalf("series %q[%d]: %v != %v (not bit-identical)",
					want.Series[k].Name, i, got.Series[k].Y[i], want.Series[k].Y[i])
			}
		}
	}
	wn, gn := filterTimingNotes(want.Notes), filterTimingNotes(got.Notes)
	if len(wn) != len(gn) {
		t.Fatalf("notes count %d != %d", len(gn), len(wn))
	}
	for i := range wn {
		if gn[i] != wn[i] {
			t.Fatalf("note %d: %q != %q", i, gn[i], wn[i])
		}
	}
}

// testWorkerInvariance runs one experiment at workers=1 and workers=8
// with the same seed and requires identical tables: the parallel engine
// must not change any number, only the wall clock. The policy cache is
// reset between runs so the second run recomputes rather than trivially
// replaying cached results.
func testWorkerInvariance(t *testing.T, id string) {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	opts := Options{Quick: true, Seed: 7}

	core.ResetPolicyCache()
	opts.Workers = 1
	seq, err := exp.Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	core.ResetPolicyCache()
	opts.Workers = 8
	par, err := exp.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, seq, par)
	if seq.CSV() != par.CSV() {
		t.Fatal("CSV output differs between workers=1 and workers=8")
	}
}

func TestFig3aWorkerInvariance(t *testing.T) {
	testWorkerInvariance(t, "fig3a")
}

func TestAblationLPWorkerInvariance(t *testing.T) {
	testWorkerInvariance(t, "ablation-lp")
}
