package experiments

import (
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 42} }

func TestRegistryUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) < 14 {
		t.Fatalf("expected >= 14 experiments, got %d", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3a"); !ok {
		t.Fatal("fig3a not found")
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Fatal("bogus id found")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatal("IDs length mismatch")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "test",
		Title:  "render check",
		XLabel: "x",
		X:      []float64{1, 2.5},
		Series: []Series{{Name: "a,b", Y: []float64{0.1, 0.2}}},
		Notes:  []string{"hello"},
	}
	ascii := tab.ASCII()
	for _, want := range []string{"render check", "a,b", "0.1000", "note: hello"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, ascii)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("CSV must quote comma-containing names:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "x,") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV should have header + 2 rows, got %d lines", len(lines))
	}
}

func TestFig3aShape(t *testing.T) {
	tab, err := runFig3a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	upper, ok := tab.seriesByName("Upper Bound")
	if !ok {
		t.Fatal("missing upper bound series")
	}
	bound := upper.Y[0]
	last := len(tab.X) - 1
	for _, name := range []string{"Bernoulli", "Periodic", "Uniform"} {
		s, ok := tab.seriesByName(name)
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		// At the largest K the practical QoM must be near the analytic
		// optimum (the Fig. 3 convergence claim)...
		if math.Abs(s.Y[last]-bound) > 0.05 {
			t.Errorf("%s at K=%g: QoM %v far from bound %v", name, tab.X[last], s.Y[last], bound)
		}
		// ...and the tiny-K point clearly below it.
		if s.Y[0] > bound-0.02 {
			t.Errorf("%s at K=%g: QoM %v suspiciously close to bound %v", name, tab.X[0], s.Y[0], bound)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	tab, err := runFig3b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	upper, _ := tab.seriesByName("Upper Bound")
	last := len(tab.X) - 1
	for _, name := range []string{"Bernoulli", "Periodic", "Uniform"} {
		s, ok := tab.seriesByName(name)
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if math.Abs(s.Y[last]-upper.Y[last]) > 0.06 {
			t.Errorf("%s: final QoM %v far from bound %v", name, s.Y[last], upper.Y[last])
		}
	}
}

func TestFig4aShape(t *testing.T) {
	tab, err := runFig4a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := tab.seriesByName("pi'_PI")
	ag, _ := tab.seriesByName("pi_AG")
	pe, _ := tab.seriesByName("pi_PE")
	for i := range tab.X {
		if cl.Y[i] < ag.Y[i]-0.03 || cl.Y[i] < pe.Y[i]-0.03 {
			t.Errorf("c=%g: clustering %v below a baseline (AG %v, PE %v)",
				tab.X[i], cl.Y[i], ag.Y[i], pe.Y[i])
		}
	}
	// Rising in c.
	if cl.Y[len(cl.Y)-1] < cl.Y[0] {
		t.Error("clustering QoM should rise with recharge")
	}
}

func TestFig5bParityInRegime(t *testing.T) {
	tab, err := runFig5b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := tab.seriesByName("pi'_PI")
	eb, _ := tab.seriesByName("pi_EBCW")
	// Largest a (0.8 in quick mode) with b=0.7 is inside the a,b>0.5
	// regime of [6]: near parity.
	last := len(tab.X) - 1
	if math.Abs(cl.Y[last]-eb.Y[last]) > 0.1 {
		t.Errorf("a=%g b=0.7: clustering %v vs EBCW %v should be close",
			tab.X[last], cl.Y[last], eb.Y[last])
	}
}

func TestFig6aShape(t *testing.T) {
	tab, err := runFig6a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	mfi, _ := tab.seriesByName("M-FI")
	mpi, _ := tab.seriesByName("M-PI")
	ag, _ := tab.seriesByName("pi_AG")
	pe, _ := tab.seriesByName("pi_PE")
	last := len(tab.X) - 1
	if mfi.Y[last] < mpi.Y[last]-0.03 {
		t.Errorf("M-FI %v should be at least M-PI %v", mfi.Y[last], mpi.Y[last])
	}
	for i := range tab.X {
		if mpi.Y[i] < ag.Y[i]-0.05 || mpi.Y[i] < pe.Y[i]-0.05 {
			t.Errorf("N=%g: M-PI %v below baseline (AG %v, PE %v)", tab.X[i], mpi.Y[i], ag.Y[i], pe.Y[i])
		}
	}
	// All policies improve with more sensors.
	if mfi.Y[last] <= mfi.Y[0] {
		t.Error("M-FI should improve with N")
	}
}

func TestAblationLPZeroGap(t *testing.T) {
	tab, err := runAblationLP(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	diff, ok := tab.seriesByName("max |diff|")
	if !ok {
		t.Fatal("missing diff series")
	}
	for i, d := range diff.Y {
		if d > 1e-6 {
			t.Errorf("e=%g: greedy-LP gap %v", tab.X[i], d)
		}
	}
}

func TestAblationWindowsNonNegativeGain(t *testing.T) {
	tab, err := runAblationWindows(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	gain, _ := tab.seriesByName("gain")
	for i, g := range gain.Y {
		if g < -1e-9 {
			t.Errorf("e=%g: negative refinement gain %v", tab.X[i], g)
		}
	}
}

func TestAblationPOMDPShape(t *testing.T) {
	tab, err := runAblationPOMDP(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	beliefs, _ := tab.seriesByName("beliefs")
	exact, _ := tab.seriesByName("exact")
	vector, _ := tab.seriesByName("vector")
	prev := 0.0
	for i := range tab.X {
		if beliefs.Y[i] < prev {
			t.Error("information-state count must not shrink with horizon")
		}
		prev = beliefs.Y[i]
		if vector.Y[i] > exact.Y[i]+1e-9 {
			t.Errorf("horizon %g: static vector %v beats exact optimum %v",
				tab.X[i], vector.Y[i], exact.Y[i])
		}
	}
}

func TestAblationPoissonParity(t *testing.T) {
	tab, err := runAblationPoisson(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := tab.seriesByName("pi'_PI")
	ag, _ := tab.seriesByName("pi_AG")
	for i := range tab.X {
		if math.Abs(cl.Y[i]-ag.Y[i]) > 0.1 {
			t.Errorf("c=%g: memoryless events but clustering %v and aggressive %v diverge",
				tab.X[i], cl.Y[i], ag.Y[i])
		}
	}
}

func TestAblationRechargeConvergence(t *testing.T) {
	tab, err := runAblationRecharge(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.X) - 1
	// The paper's three processes agree tightly at the largest K; the
	// bursty extensions (clipped Gaussian, on/off) converge too but need
	// K and T beyond quick-mode settings, so get a loose bound here.
	var vals []float64
	for _, s := range tab.Series {
		vals = append(vals, s.Y[last])
	}
	for i, v := range vals[:3] {
		if math.Abs(v-vals[0]) > 0.06 {
			t.Errorf("paper recharge process %d disagrees at large K: %v", i, vals)
		}
	}
	for i, v := range vals[3:] {
		if math.Abs(v-vals[0]) > 0.15 {
			t.Errorf("extension recharge process %d too far at large K: %v", i, vals)
		}
	}
}

func TestAblationLoadBalance(t *testing.T) {
	tab, err := runAblationLoadBalance(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := tab.seriesByName("Weibull(40,3)")
	det, _ := tab.seriesByName("Deterministic(2)")
	// N=2 (first point): adversarial case wildly imbalanced, Weibull not.
	if det.Y[0] < 1 {
		t.Errorf("deterministic-2 with N=2 should be fully imbalanced, got %v", det.Y[0])
	}
	if wb.Y[0] > 0.5 {
		t.Errorf("Weibull round robin should be fairly balanced, got %v", wb.Y[0])
	}
}

func TestAblationAdaptiveLearningCurve(t *testing.T) {
	tab, err := runAblationAdaptive(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := tab.seriesByName("oracle (known dist)")
	adaptive, _ := tab.seriesByName("adaptive (learned)")
	blind, _ := tab.seriesByName("aggressive (blind)")
	last := len(tab.X) - 1
	// At the longest horizon the learner closes most of the gap.
	if adaptive.Y[last] < blind.Y[last] {
		t.Errorf("adaptive %v below blind %v at T=%g", adaptive.Y[last], blind.Y[last], tab.X[last])
	}
	if adaptive.Y[last] > oracle.Y[last]+0.05 {
		t.Errorf("adaptive %v above oracle %v — impossible", adaptive.Y[last], oracle.Y[last])
	}
}

func TestAblationFaultsShape(t *testing.T) {
	tab, err := runAblationFaults(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := tab.seriesByName("M-FI round robin")
	un, _ := tab.seriesByName("uncoordinated")
	// No failures: coordination wins (or ties).
	if rr.Y[0] < un.Y[0]-0.05 {
		t.Errorf("healthy round robin %v should not lose to uncoordinated %v", rr.Y[0], un.Y[0])
	}
	// Failures hurt round robin monotonically.
	last := len(tab.X) - 1
	if rr.Y[last] >= rr.Y[0] {
		t.Errorf("failures did not hurt round robin: %v", rr.Y)
	}
}

func TestAblationMultiPoIShape(t *testing.T) {
	tab, err := runAblationMultiPoI(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	analytic, _ := tab.seriesByName("analytic")
	index, _ := tab.seriesByName("max-hazard index")
	blind, _ := tab.seriesByName("round robin")
	for i := range tab.X {
		if math.Abs(index.Y[i]-analytic.Y[i]) > 0.07 {
			t.Errorf("e=%g: simulated index %v far from analytic %v", tab.X[i], index.Y[i], analytic.Y[i])
		}
		if index.Y[i] < blind.Y[i] {
			t.Errorf("e=%g: index policy %v below blind cycling %v", tab.X[i], index.Y[i], blind.Y[i])
		}
	}
}
