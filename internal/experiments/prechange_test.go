package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"eventcap/internal/sim"
)

// TestReferenceEngineMatchesPrechangeFixtures pins the reference
// engine's numbers for the multi-sensor experiments against CSV
// fixtures captured before the fleet kernel landed (cmd/experiments
// -run fig4a,fig4b,fig6a,fig6b -quick -slots 20000 -kernel off, seed
// 1). The fleet fast path changes which engine EngineAuto picks for
// fig6's round-robin policies, but must leave the reference engine —
// the semantic ground truth every kernel is byte-checked against —
// untouched: a regeneration today has to reproduce the pre-change
// fixtures bit for bit.
func TestReferenceEngineMatchesPrechangeFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 20k-slot experiment regeneration in -short mode")
	}
	for _, id := range []string{"fig4a", "fig4b", "fig6a", "fig6b"} {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "prechange", id+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			table, err := exp.Run(Options{
				Quick:  true,
				Slots:  20_000,
				Seed:   1,
				Engine: sim.EngineReference,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := table.CSV(); got != string(want) {
				t.Errorf("reference-engine %s regeneration diverged from the pre-change fixture:\ngot:\n%s\nwant:\n%s",
					id, got, want)
			}
		})
	}
}
