// Package cfg builds per-function control-flow graphs from the AST and
// solves forward dataflow problems over them (DESIGN.md §15). It is the
// layer that lets the lint suite (internal/analysis/analyzers) check
// "on every path" contracts — span Begin/End pairing, lock balance,
// writer Close reachability — at compile time instead of relying on the
// runtime leak counters.
//
// The builder mirrors the shape of golang.org/x/tools/go/cfg but, like
// the rest of the analysis framework, is built on the standard library
// alone. Graphs are purely syntactic: no type information is consumed,
// so a Graph can be built for any parsed function body, fixtures
// included.
//
// # Structure
//
// Blocks[0] is the entry block and Blocks[1] the exit block; every
// return statement, explicit panic call and fall-off-the-end path has
// an edge to the exit, so "holds at function exit" is exactly "holds at
// In(exit)". Block.Nodes contain only simple statements and expressions
// (assignments, calls, conditions, case expressions, defer and go
// statements) — never composite statements — so a transfer function can
// inspect each node without double-visiting nested bodies. Function
// literals appearing inside a node are part of that node; analyzers
// decide whether to descend (see analyzers' inspectNoFunc).
//
// Defer statements are recorded as ordinary nodes at their registration
// point. That is the right abstraction for exit-path analyses: a
// deferred release runs at every function exit reachable after the
// defer executes, so treating the registration point as the release
// point computes exactly the right fact at the exit block.
//
// Blocks that terminate in an explicit panic(...) call carry Panic=true
// on their edge to exit, letting analyzers decide whether resources
// abandoned on a dying path are worth reporting.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every basic block; Blocks[0] is the entry block and
	// Blocks[1] the exit block. Order is deterministic (construction
	// order), so dumps and solver iterations are stable.
	Blocks []*Block
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Exit returns the exit block: the single successor of every return,
// explicit panic, and fall-off-the-end path.
func (g *Graph) Exit() *Block { return g.Blocks[1] }

// Block is one basic block.
type Block struct {
	Index int
	// Kind names the block's structural role ("entry", "if.then",
	// "for.head", "select.case", "label.retry", "unreachable", ...);
	// it exists for tests and debugging, not for analyzer logic.
	Kind string
	// Nodes are the simple statements and expressions executed in this
	// block, in order. Composite statements never appear; their pieces
	// are distributed over the blocks they induce.
	Nodes []ast.Node
	// Cond is the branch condition when the block ends in a two-way
	// conditional branch (if statements and for-loop conditions). When
	// set, Succs[0] is the true edge and Succs[1] the false edge.
	Cond ast.Expr
	// Panic marks a block whose edge to exit is an explicit panic(...)
	// call rather than a return or normal fall-through.
	Panic bool
	// Succs are the possible successors, in deterministic order.
	Succs []*Block
}

func (b *Block) String() string {
	return fmt.Sprintf("block %d (%s)", b.Index, b.Kind)
}

// New builds the control-flow graph of body. The graph is purely
// syntactic; body is typically a *ast.FuncDecl.Body or *ast.FuncLit.Body
// but any block statement works.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*Block{}}
	entry := b.newBlock("entry")
	b.exit = b.newBlock("exit")
	b.cur = entry
	b.stmt(body)
	b.jump(b.exit) // fall off the end
	b.g.compact()
	return b.g
}

// compact removes empty unreachable blocks (no predecessors, no nodes)
// that the builder leaves behind after terminating statements, then
// renumbers. Unreachable blocks that contain code are kept: dead code
// is a fact about the function worth surfacing, and the solver simply
// never visits it.
func (g *Graph) compact() {
	for {
		preds := make(map[*Block]int)
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				preds[s]++
			}
		}
		kept := g.Blocks[:0]
		removed := false
		for i, b := range g.Blocks {
			if i >= 2 && preds[b] == 0 && len(b.Nodes) == 0 {
				removed = true
				continue
			}
			kept = append(kept, b)
		}
		g.Blocks = kept
		if !removed {
			break
		}
	}
	for i, b := range g.Blocks {
		b.Index = i
	}
}

// String renders the graph one block per line as
// "index:kind[nodes] -> succ succ", with "!" marking panic blocks.
// Tests pin exact block/edge structure against this format.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s[%d]", b.Index, b.Kind, len(b.Nodes))
		if b.Panic {
			sb.WriteByte('!')
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// targets is the stack of enclosing break/continue destinations.
type targets struct {
	tail  *targets
	label string
	brk   *Block
	cont  *Block // nil inside switch/select
}

type builder struct {
	g    *Graph
	cur  *Block
	exit *Block
	// targets tracks enclosing loops/switches for break and continue.
	targets *targets
	// labels maps label names to their blocks; goto may create a
	// placeholder before the labeled statement is reached.
	labels map[string]*Block
	// pendingLabel carries a label down to the loop/switch/select it
	// labels, so labeled break/continue resolve.
	pendingLabel string
	// fall is the next case-clause block, the target of fallthrough.
	fall *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// findBreak resolves a break destination: the innermost enclosing
// loop/switch/select for an unlabeled break, the matching labeled one
// otherwise. Nil only on invalid input (which type-checked code is not).
func (b *builder) findBreak(label string) *Block {
	for t := b.targets; t != nil; t = t.tail {
		if label == "" || t.label == label {
			return t.brk
		}
	}
	return nil
}

// findContinue resolves a continue destination: the innermost enclosing
// loop (switch/select entries have no continue target and are skipped).
func (b *builder) findContinue(label string) *Block {
	for t := b.targets; t != nil; t = t.tail {
		if t.cont != nil && (label == "" || t.label == label) {
			return t.cont
		}
	}
	return nil
}

// isPanicCall reports whether e is a call of the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Panic = true
			b.jump(b.exit)
			b.cur = b.newBlock("unreachable")
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.exit)
		b.cur = b.newBlock("unreachable")
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(labelOf(s)); t != nil {
				b.jump(t)
			}
			b.cur = b.newBlock("unreachable")
		case token.CONTINUE:
			if t := b.findContinue(labelOf(s)); t != nil {
				b.jump(t)
			}
			b.cur = b.newBlock("unreachable")
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
			b.cur = b.newBlock("unreachable")
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.jump(b.fall)
			}
			b.cur = b.newBlock("unreachable")
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		head.Cond = s.Cond
		then := b.newBlock("if.then")
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var els, elsEnd *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			b.cur = els
			b.stmt(s.Else)
			elsEnd = b.cur
		}
		done := b.newBlock("if.done")
		if els != nil {
			head.Succs = append(head.Succs, then, els)
			elsEnd.Succs = append(elsEnd.Succs, done)
		} else {
			head.Succs = append(head.Succs, then, done)
		}
		thenEnd.Succs = append(thenEnd.Succs, done)
		b.cur = done
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.jump(head)
		body := b.newBlock("for.body")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		done := b.newBlock("for.done")
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			head.Succs = append(head.Succs, body, done)
		} else {
			head.Succs = append(head.Succs, body)
		}
		cont := head
		if post != nil {
			cont = post
		}
		b.targets = &targets{tail: b.targets, label: label, brk: done, cont: cont}
		b.cur = body
		b.stmt(s.Body)
		b.jump(cont)
		b.targets = b.targets.tail
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = done
	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.jump(head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		head.Succs = append(head.Succs, body, done)
		b.targets = &targets{tail: b.targets, label: label, brk: done, cont: head}
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.targets = b.targets.tail
		b.cur = done
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, "switch")
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, "typeswitch")
	case *ast.SelectStmt:
		head := b.cur
		var clauses []*ast.CommClause
		for _, c := range s.Body.List {
			clauses = append(clauses, c.(*ast.CommClause))
		}
		blocks := make([]*Block, len(clauses))
		for i, c := range clauses {
			kind := "select.case"
			if c.Comm == nil {
				kind = "select.default"
			}
			blocks[i] = b.newBlock(kind)
		}
		done := b.newBlock("select.done")
		// Every clause is a successor of the head. With no default the
		// select blocks until a communication is ready, so there is no
		// head->done skip edge; `select {}` has no successors at all.
		head.Succs = append(head.Succs, blocks...)
		b.targets = &targets{tail: b.targets, label: label, brk: done}
		for i, c := range clauses {
			b.cur = blocks[i]
			b.stmt(c.Comm)
			for _, st := range c.Body {
				b.stmt(st)
			}
			b.jump(done)
		}
		b.targets = b.targets.tail
		b.cur = done
	default:
		// Simple statements: declarations, assignments, inc/dec, send,
		// defer, go. Recorded in order for the transfer function.
		b.add(s)
	}
}

// switchBody wires the clause blocks of a switch or type switch: the
// head branches to every clause (plus done when there is no default),
// fallthrough jumps to the next clause block, break targets done.
func (b *builder) switchBody(label string, body *ast.BlockStmt, kind string) {
	head := b.cur
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		k := kind + ".case"
		if c.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(k)
	}
	done := b.newBlock(kind + ".done")
	head.Succs = append(head.Succs, blocks...)
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.targets = &targets{tail: b.targets, label: label, brk: done}
	savedFall := b.fall
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.jump(done)
	}
	b.fall = savedFall
	b.targets = b.targets.tail
	b.cur = done
}

func labelOf(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}
