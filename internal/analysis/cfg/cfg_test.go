package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a single function declared in a
// throwaway package and returns its CFG. Graphs are purely syntactic,
// so no type checking is involved.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return New(fn.Body)
		}
	}
	t.Fatal("no function in fixture")
	return nil
}

// check pins the exact block/edge structure of the graph built from src
// against want (the Graph.String dump format: "index:kind[nodes] ->
// succs", "!" marking panic blocks).
func check(t *testing.T, src, want string) {
	t.Helper()
	g := build(t, src)
	got := strings.TrimSpace(g.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestIfElse pins the baseline two-way branch: Succs[0] is the true
// edge, Succs[1] the false edge, both meeting at if.done.
func TestIfElse(t *testing.T) {
	check(t, `
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, `
0:entry[2] -> 2 3
1:exit[0]
2:if.then[1] -> 4
3:if.else[1] -> 4
4:if.done[1] -> 1
`)
}

// TestLabeledBreakContinueNestedLoops is the labeled-branch edge case:
// continue outer from the inner loop must target the outer loop's post
// block, break outer its done block — not the inner loop's.
func TestLabeledBreakContinueNestedLoops(t *testing.T) {
	check(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 5 {
				continue outer
			}
			if j == 7 {
				break outer
			}
			use(i, j)
		}
	}
	done()
}`, `
0:entry[0] -> 2
1:exit[0]
2:label.outer[1] -> 3
3:for.head[1] -> 4 6
4:for.body[1] -> 7
5:for.post[1] -> 3
6:for.done[1] -> 1
7:for.head[1] -> 8 10
8:for.body[1] -> 11 12
9:for.post[1] -> 7
10:for.done[0] -> 5
11:if.then[0] -> 5
12:if.done[1] -> 13 14
13:if.then[0] -> 6
14:if.done[1] -> 9
`)
}

// TestGotoAcrossBlocks exercises goto both backward (into an already
// built labeled block) and forward (into a placeholder created before
// the labeled statement is reached).
func TestGotoAcrossBlocks(t *testing.T) {
	check(t, `
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	if n < 0 {
		goto out
	}
	i *= 2
out:
	return i
}`, `
0:entry[1] -> 2
1:exit[0]
2:label.loop[1] -> 3 4
3:if.then[1] -> 2
4:if.done[1] -> 5 7
5:if.then[0] -> 6
6:label.out[1] -> 1
7:if.done[1] -> 6
`)
}

// TestSelectNoDefault pins the blocking-select semantics: every comm
// clause is a successor of the head, and without a default there is no
// skip edge to select.done.
func TestSelectNoDefault(t *testing.T) {
	check(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`, `
0:entry[0] -> 2 3
1:exit[0]
2:select.case[2] -> 1
3:select.case[1] -> 4
4:select.done[1] -> 1
`)
}

// TestSelectEmpty: select {} blocks forever, so the head has no
// successors at all and the code after it is unreachable.
func TestSelectEmpty(t *testing.T) {
	check(t, `
func f() {
	select {}
	use()
}`, `
0:entry[0]
1:exit[0]
2:select.done[1] -> 1
`)
}

// TestDeferredClosure asserts a deferred closure stays one opaque node
// in its registration block — the closure body is never expanded into
// the enclosing function's graph.
func TestDeferredClosure(t *testing.T) {
	g := build(t, `
func f(mu locker) {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	work()
}`)
	want := `
0:entry[3] -> 1
1:exit[0]
`
	if got := strings.TrimSpace(g.String()); got != strings.TrimSpace(want) {
		t.Fatalf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if _, ok := g.Entry().Nodes[1].(*ast.DeferStmt); !ok {
		t.Errorf("entry node 1 is %T, want *ast.DeferStmt recorded at its registration point", g.Entry().Nodes[1])
	}
}

// TestUnreachableAfterPanic: an explicit panic terminates its block
// with a Panic-marked edge to exit; the dead statements after it live
// in an unreachable block that is kept (dead code is a fact worth
// surfacing) but never visited by the solver.
func TestUnreachableAfterPanic(t *testing.T) {
	check(t, `
func f(x int) {
	if x < 0 {
		panic("neg")
		x = 1
	}
	use(x)
}`, `
0:entry[1] -> 2 4
1:exit[0]
2:if.then[1]! -> 1
3:unreachable[1] -> 4
4:if.done[1] -> 1
`)
}

// TestSwitchFallthroughNoDefault: fallthrough jumps to the next clause
// block, and without a default the head keeps a direct edge to done.
func TestSwitchFallthroughNoDefault(t *testing.T) {
	check(t, `
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	}
	return r
}`, `
0:entry[2] -> 2 3 4
1:exit[0]
2:switch.case[2] -> 3
3:switch.case[2] -> 4
4:switch.done[1] -> 1
`)
}

// TestBreakInSwitchInLoop: an unlabeled break inside a switch inside a
// loop targets the switch's done block, not the loop's.
func TestBreakInSwitchInLoop(t *testing.T) {
	check(t, `
func f(xs []int) {
	for _, x := range xs {
		switch x {
		case 0:
			break
		default:
			use(x)
		}
		use(x)
	}
}`, `
0:entry[0] -> 2
1:exit[0]
2:range.head[1] -> 3 4
3:range.body[1] -> 5 6
4:range.done[0] -> 1
5:switch.case[1] -> 7
6:switch.default[1] -> 7
7:switch.done[1] -> 2
`)
}

// TestCondlessFor: for {} loops back to its own head; the done block
// exists only if something breaks to it.
func TestCondlessFor(t *testing.T) {
	check(t, `
func f() {
	for {
		if stop() {
			break
		}
		work()
	}
}`, `
0:entry[0] -> 2
1:exit[0]
2:for.head[0] -> 3
3:for.body[1] -> 5 6
4:for.done[0] -> 1
5:if.then[0] -> 4
6:if.done[1] -> 2
`)
}

// TestSolverLockPairing runs the worklist solver end to end on a
// balanced and an unbalanced lock pattern, using a boolean "may be
// locked" fact — the miniature of what the lockbalance analyzer does.
func TestSolverLockPairing(t *testing.T) {
	mayLockedAtExit := func(src string) bool {
		g := build(t, src)
		sol := Solve(g, Analysis[bool]{
			Entry: false,
			Transfer: func(b *Block, in bool) bool {
				out := in
				for _, n := range b.Nodes {
					es, ok := n.(*ast.ExprStmt)
					if !ok {
						continue
					}
					call, ok := es.X.(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "lock":
							out = true
						case "unlock":
							out = false
						}
					}
				}
				return out
			},
			Join:  func(a, b bool) bool { return a || b },
			Equal: func(a, b bool) bool { return a == b },
		})
		return sol.In[g.Exit().Index]
	}

	balanced := `
func f(c bool) {
	lock()
	if c {
		unlock()
		return
	}
	unlock()
}`
	if mayLockedAtExit(balanced) {
		t.Error("balanced lock/unlock reported as may-locked at exit")
	}

	leaky := `
func f(c bool) {
	lock()
	if c {
		return
	}
	unlock()
}`
	if !mayLockedAtExit(leaky) {
		t.Error("leaky early return not reported as may-locked at exit")
	}
}

// TestSolverSkipsDeadCode: blocks unreachable from the entry keep the
// zero fact and Reached=false.
func TestSolverSkipsDeadCode(t *testing.T) {
	g := build(t, `
func f() {
	panic("always")
	use()
}`)
	sol := Solve(g, Analysis[int]{
		Entry:    1,
		Transfer: func(b *Block, in int) int { return in },
		Join:     func(a, b int) int { return a + b },
		Equal:    func(a, b int) bool { return a == b },
	})
	var dead *Block
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			dead = b
		}
	}
	if dead == nil {
		t.Fatal("no unreachable block for dead code")
	}
	if sol.Reached[dead.Index] {
		t.Error("solver visited a block with no path from entry")
	}
	if !sol.Reached[g.Exit().Index] {
		t.Error("exit not reached through the panic edge")
	}
}
