package cfg

// Analysis configures one forward dataflow problem over a Graph. The
// fact type F is anything the client likes (typically a small map from
// tracked resources to states); the solver treats facts as opaque
// immutable values, so Transfer, FlowEdge and Join must return fresh
// values rather than mutating their arguments in place.
//
// The solver is a classic forward worklist iteration: facts propagate
// from the entry block along edges until a fixed point. Termination is
// the client's contract — Join must be monotone over a finite-height
// lattice (bitmask or small-enum states satisfy this trivially).
type Analysis[F any] struct {
	// Entry is the fact entering the entry block.
	Entry F

	// Transfer applies one block's nodes to the incoming fact and
	// returns the fact at the block's end.
	Transfer func(b *Block, in F) F

	// FlowEdge, if non-nil, refines the outgoing fact along the edge to
	// b.Succs[succ] — the hook for condition-based refinement (nil
	// checks, err checks) and for discarding facts that flow out of
	// panic blocks. When nil, the block's out-fact flows unchanged.
	FlowEdge func(b *Block, succ int, out F) F

	// Join merges two incoming facts at a control-flow merge point.
	Join func(a, b F) F

	// Equal reports whether two facts are equal; the solver uses it to
	// detect convergence.
	Equal func(a, b F) bool
}

// Solution holds the per-block fixed-point facts, indexed by
// Block.Index. Blocks never reached from the entry (dead code) keep the
// zero fact and Reached[i] == false.
type Solution[F any] struct {
	In, Out []F
	Reached []bool
}

// Solve runs the forward worklist analysis to a fixed point and returns
// the per-block facts. The exit block's In fact is the merge over every
// terminating path — returns, explicit panics, and falling off the end.
func Solve[F any](g *Graph, a Analysis[F]) *Solution[F] {
	n := len(g.Blocks)
	sol := &Solution[F]{In: make([]F, n), Out: make([]F, n), Reached: make([]bool, n)}
	sol.In[0] = a.Entry
	sol.Reached[0] = true
	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		b := g.Blocks[i]
		out := a.Transfer(b, sol.In[i])
		sol.Out[i] = out
		for k, s := range b.Succs {
			edge := out
			if a.FlowEdge != nil {
				edge = a.FlowEdge(b, k, out)
			}
			j := s.Index
			merged := edge
			if sol.Reached[j] {
				merged = a.Join(sol.In[j], edge)
				if a.Equal(merged, sol.In[j]) {
					continue
				}
			}
			sol.In[j] = merged
			sol.Reached[j] = true
			if !queued[j] {
				work = append(work, j)
				queued[j] = true
			}
		}
	}
	return sol
}
