package analyzers

import (
	"go/ast"
	"go/types"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/cfg"
)

// ClosecheckMarker suppresses a closecheck finding when it appears,
// with a reason, on the flagged line or the line above. The generic
// lint:justified marker is accepted too.
const ClosecheckMarker = "closecheck:ok"

// Closecheck enforces the trace-output lifecycle (DESIGN.md §11) in the
// packages that create trace streams and files: cmd/* and
// internal/trace (see the scope policy in For). Two rules:
//
//  1. Every os.File (Create/Open/OpenFile/CreateTemp) and trace.Writer
//     (NewWriter) bound to a local variable must reach Close on every
//     path out of the creating function — explicit, deferred, or inside
//     a deferred closure. The analysis is path-sensitive over the
//     function's CFG and understands the idioms around acquisition:
//     on edges where the creation's companion error is known non-nil,
//     or the resource itself is known nil, there is nothing to close.
//     Passing the resource as a call argument does NOT transfer Close
//     responsibility (writers are threaded through configs while the
//     creator still closes them); returning or storing it does.
//
//  2. trace.Writer.Close results must be consumed. Writer write errors
//     are sticky and only surface at Close, so a bare `w.Close()`
//     statement (or a bare `defer w.Close()`) silently discards the
//     one signal that the trace on disk is incomplete. Assign it,
//     check it, return it — or make the discard explicit and reviewed
//     with `_ = w.Close()`. os.File is exempt from this second rule:
//     bare closes of read-only or already-failed files are idiomatic.
//
// Paths that die in an explicit panic(...) are not reported. Suppress
// with // closecheck:ok <reason> (or // lint:justified <reason>) on the
// flagged line or the line above — the canonical exception is a true
// ownership handoff to a registry or background goroutine.
var Closecheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "os.File/trace.Writer created in cmd and trace paths must reach Close on " +
		"every path, and trace.Writer.Close's sticky error must be consumed; " +
		"// closecheck:ok <reason> suppresses",
	Run: runClosecheck,
}

func runClosecheck(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, body := range funcBodies(file) {
			closecheckBody(pass, body)
		}
		closecheckStickyErrors(pass, file)
	}
	return nil
}

// isCloseableCreation reports whether call creates a resource this
// analyzer tracks.
func isCloseableCreation(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, name := range [...]string{"Create", "Open", "OpenFile", "CreateTemp"} {
		if pass.CalleeIn(call, "os", name) {
			return true
		}
	}
	return pass.CalleeIn(call, "internal/trace", "NewWriter")
}

// closeCallOn returns the tracked object a Close call releases, if any.
func closeCallOn(pass *analysis.Pass, call *ast.CallExpr, tracked map[types.Object]bool) types.Object {
	recv, name, ok := receiverOfCall(call)
	if !ok || name != "Close" {
		return nil
	}
	obj := identObjOf(pass, recv)
	if obj == nil || !tracked[obj] {
		return nil
	}
	return obj
}

// closeableTargets returns (resource, companion error) objects for an
// assignment that binds a creation call: `f, err := os.Create(p)` or
// `w := trace.NewWriter(dst)`.
func closeableTargets(pass *analysis.Pass, n *ast.AssignStmt) (res, errObj types.Object) {
	if len(n.Rhs) != 1 {
		return nil, nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok || !isCloseableCreation(pass, call) {
		return nil, nil
	}
	if len(n.Lhs) == 0 {
		return nil, nil
	}
	res = identObjOf(pass, n.Lhs[0])
	if len(n.Lhs) == 2 {
		errObj = identObjOf(pass, n.Lhs[1])
	}
	return res, errObj
}

func closecheckBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: candidates.
	candidates := make(map[types.Object]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			if res, _ := closeableTargets(pass, a); res != nil {
				candidates[res] = true
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}

	// Pass 2: escapes. Unlike spanend, a plain call argument keeps the
	// creator responsible for Close; only returning or storing the
	// resource moves ownership out of reach.
	escaped := make(map[types.Object]bool)
	classifyUses(pass, body, func(o types.Object) bool { return candidates[o] },
		func(obj types.Object, _ *ast.Ident, class useClass) {
			if class == useEscape {
				escaped[obj] = true
			}
		})
	tracked := make(map[types.Object]bool)
	for obj := range candidates {
		if !escaped[obj] {
			tracked[obj] = true
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 3: the dataflow solve.
	g := pass.CFGOf(body)
	sol := cfg.Solve(g, cfg.Analysis[resFacts[types.Object]]{
		Transfer: func(b *cfg.Block, in resFacts[types.Object]) resFacts[types.Object] {
			out := cloneFacts(in)
			for _, node := range b.Nodes {
				closecheckTransfer(pass, node, tracked, out)
			}
			return out
		},
		FlowEdge: func(b *cfg.Block, succ int, out resFacts[types.Object]) resFacts[types.Object] {
			if b.Panic {
				return nil
			}
			out = refineNilEdges(pass, b, succ, out)
			return refineErrEdges(pass, b, succ, out)
		},
		Join:  joinFacts[types.Object],
		Equal: equalFacts[types.Object],
	})
	for obj, st := range sol.In[g.Exit().Index] {
		if st.open && !justifiedFlow(pass, st.pos, ClosecheckMarker) {
			pass.Reportf(st.pos, "%q created here may not be Closed on every path out of the function (close it before each return, or defer; // %s <reason> to suppress)", obj.Name(), ClosecheckMarker)
		}
	}
}

func closecheckTransfer(pass *analysis.Pass, node ast.Node, tracked map[types.Object]bool, out resFacts[types.Object]) {
	switch n := node.(type) {
	case *ast.DeferStmt:
		for _, call := range deferredCalls(n) {
			if obj := closeCallOn(pass, call, tracked); obj != nil {
				st := out[obj]
				st.open = false
				out[obj] = st
			}
		}
	case *ast.AssignStmt:
		// Reassigning a companion error variable to anything else severs
		// its link to the resource: a later `if err != nil` no longer
		// says anything about whether the creation succeeded.
		res, errObj := closeableTargets(pass, n)
		for _, l := range n.Lhs {
			assigned := identObjOf(pass, l)
			if assigned == nil || assigned == errObj {
				continue
			}
			for k, st := range out {
				if st.errObj == assigned {
					st.errObj = nil
					out[k] = st
				}
			}
		}
		if res != nil && tracked[res] {
			out[res] = resState{open: true, pos: n.Pos(), errObj: errObj}
		}
		closecheckScanCloses(pass, n, tracked, out)
	default:
		closecheckScanCloses(pass, node, tracked, out)
	}
}

func closecheckScanCloses(pass *analysis.Pass, node ast.Node, tracked map[types.Object]bool, out resFacts[types.Object]) {
	inspectNoFuncLit(node, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if obj := closeCallOn(pass, call, tracked); obj != nil {
				st := out[obj]
				st.open = false
				out[obj] = st
			}
		}
		return true
	})
}

// refineErrEdges drops the open state of resources whose companion
// error is certainly non-nil along the edge: the creation failed, so
// there is nothing to close on this path.
func refineErrEdges(pass *analysis.Pass, b *cfg.Block, succ int, out resFacts[types.Object]) resFacts[types.Object] {
	if b.Cond == nil || len(b.Succs) != 2 {
		return out
	}
	ids := mustNonNilIdents(b.Cond, succ == 0)
	if len(ids) == 0 {
		return out
	}
	refined := out
	copied := false
	for _, id := range ids {
		errObj := pass.TypesInfo.Uses[id]
		if errObj == nil {
			continue
		}
		for k, st := range refined {
			if st.errObj == errObj && st.open {
				if !copied {
					refined = cloneFacts(refined)
					copied = true
				}
				st.open = false
				refined[k] = st
			}
		}
	}
	return refined
}

// closecheckStickyErrors is the flow-insensitive half: every
// trace.Writer.Close whose result is dropped by a bare statement or a
// bare defer, anywhere in the file, tracked variable or not.
func closecheckStickyErrors(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			c, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			call = c
		case *ast.DeferStmt:
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				return true // deferred closures are walked as statements
			}
			call = n.Call
		default:
			return true
		}
		if !isWriterClose(pass, call) {
			return true
		}
		if !justifiedFlow(pass, call.Pos(), ClosecheckMarker) {
			pass.Reportf(call.Pos(), "trace.Writer.Close error discarded: write errors are sticky and only surface at Close (check it, or make the discard explicit with _ =; // %s <reason> to suppress)", ClosecheckMarker)
		}
		return true
	})
}

// isWriterClose reports whether call is Close on a *trace.Writer.
func isWriterClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	recv, name, ok := receiverOfCall(call)
	if !ok || name != "Close" {
		return false
	}
	t := pass.TypeOf(recv)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Writer" &&
		analysis.PathHasSuffix(named.Obj().Pkg().Path(), "internal/trace")
}
