package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"eventcap/internal/analysis"
)

// NondetermMarker suppresses a nondeterm finding when it appears, with a
// reason, on the flagged line or the line above.
const NondetermMarker = "nondeterm:ok"

// Nondeterm enforces the determinism contract of the simulation stack
// (DESIGN.md §7/§10): results must be byte-identical for any -workers
// value and any goroutine interleaving. Inside the simulation-path
// packages it forbids the four classic ways a Go program smuggles in
// nondeterminism:
//
//   - importing math/rand or math/rand/v2 (globally seeded, not
//     splittable, shared across goroutines);
//   - calling time.Now / time.Since (wall-clock dependence in a result
//     path — timing belongs to the parallel/obs layers);
//   - ranging over a map (iteration order is deliberately randomized
//     by the runtime);
//   - writing to captured variables from inside a `go` statement
//     (goroutine-unordered writes race with the spawning code);
//   - referencing an enclosing loop's iteration variable from inside a
//     `go` statement (chunk fan-out goroutines must receive their work
//     item as a parameter, the way parallel.Map passes the index — a
//     captured iteration variable couples the goroutine to the loop's
//     progress and reads differently under pre-1.22 semantics).
//
// A finding is suppressed by "// nondeterm:ok <reason>" when the site
// is provably order-independent (for example a map range whose body
// writes disjoint slots of a slice).
var Nondeterm = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbid math/rand, time.Now, map iteration and goroutine-unordered writes " +
		"in simulation-path packages; suppress with // nondeterm:ok <reason>",
	Run: runNondeterm,
}

func runNondeterm(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		loops := loopVarExtents(pass, file)
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				if !pass.Justified(imp.Pos(), NondetermMarker) {
					pass.Reportf(imp.Pos(), "import of %s: globally seeded randomness breaks run reproducibility; draw from a seeded internal/rng stream (// %s <reason> to suppress)", path, NondetermMarker)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, fn := range [...]string{"Now", "Since", "Until"} {
					if pass.CalleeIn(n, "time", fn) && !pass.Justified(n.Pos(), NondetermMarker) {
						pass.Reportf(n.Pos(), "call of time.%s: wall-clock values in a simulation path make results timing-dependent (// %s <reason> to suppress)", fn, NondetermMarker)
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !pass.Justified(n.Pos(), NondetermMarker) {
						pass.Reportf(n.Pos(), "range over map: iteration order is randomized by the runtime; iterate sorted keys or a slice (// %s <reason> if the body is order-independent)", NondetermMarker)
					}
				}
			case *ast.GoStmt:
				checkGoStmt(pass, n, loops)
			}
			return true
		})
	}
	return nil
}

// loopVarExtents maps every for/range iteration variable declared in
// file to the extent of its loop statement, so checkGoStmt can tell a
// captured iteration variable from any other capture.
func loopVarExtents(pass *analysis.Pass, file *ast.File) map[*types.Var]ast.Node {
	loops := make(map[*types.Var]ast.Node)
	record := func(loop ast.Node, id *ast.Ident) {
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok && v != nil {
			loops[v] = loop
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						record(n, id)
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						record(n, id)
					}
				}
			}
		}
		return true
	})
	return loops
}

// checkGoStmt flags two capture shapes inside a go'd function literal:
// assignments whose target is declared outside the literal (unordered
// with the spawning goroutine, so any simulation result derived from
// them depends on the schedule), and any reference to an enclosing
// loop's iteration variable (the work item must arrive as a parameter).
func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt, loops map[*types.Var]ast.Node) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	flagged := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals inherit the same capture analysis; keep
			// walking — their captured writes are just as unordered.
			return true
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok || flagged[v] {
				return true
			}
			loop, isLoopVar := loops[v]
			// Only captures count: the go statement must sit inside the
			// loop whose variable it references, and the variable must
			// be declared outside the literal (a loop the goroutine
			// runs itself is its own business).
			if !isLoopVar || g.Pos() < loop.Pos() || g.Pos() >= loop.End() {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true
			}
			if !pass.Justified(n.Pos(), NondetermMarker) {
				flagged[v] = true
				pass.Reportf(n.Pos(), "go statement captures loop variable %q: pass the work item as a parameter (as parallel.Map passes the chunk index) so the goroutine is decoupled from the loop's progress (// %s <reason> to suppress)", v.Name(), NondetermMarker)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id := rootIdent(lhs); id != nil && capturedFromOutside(pass, id, lit) &&
					!pass.Justified(n.Pos(), NondetermMarker) {
					pass.Reportf(n.Pos(), "write to captured variable %q inside go statement: unordered with the spawning goroutine; send the value over a channel or use the parallel worker pool (// %s <reason> to suppress)", id.Name, NondetermMarker)
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(n.X); id != nil && capturedFromOutside(pass, id, lit) &&
				!pass.Justified(n.Pos(), NondetermMarker) {
				pass.Reportf(n.Pos(), "write to captured variable %q inside go statement: unordered with the spawning goroutine; send the value over a channel or use the parallel worker pool (// %s <reason> to suppress)", id.Name, NondetermMarker)
			}
		}
		return true
	})
}

// rootIdent returns the base identifier of an assignable expression:
// x, x.f, x[i] all root at x. Dereferences and parens are unwrapped.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// capturedFromOutside reports whether id resolves to a variable declared
// outside the function literal (a closure capture rather than a local).
func capturedFromOutside(pass *analysis.Pass, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == types.Universe {
		return false
	}
	// Package-level variables are always "outside"; locals are captures
	// when their declaration does not sit inside the literal's extent.
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}
