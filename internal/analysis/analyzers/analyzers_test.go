package analyzers

import (
	"testing"

	"eventcap/internal/analysis/analysistest"
)

// Each analyzer's fixture demonstrates at least one caught violation
// and at least one accepted justified exception; the fixture's want
// comments are the assertions (see analysistest).

func TestNondeterm(t *testing.T)   { analysistest.Run(t, "testdata/nondeterm", Nondeterm) }
func TestFloateq(t *testing.T)     { analysistest.Run(t, "testdata/floateq", Floateq) }
func TestProbrange(t *testing.T)   { analysistest.Run(t, "testdata/probrange", Probrange) }
func TestSeedflow(t *testing.T)    { analysistest.Run(t, "testdata/seedflow", Seedflow) }
func TestExpvarname(t *testing.T)  { analysistest.Run(t, "testdata/expvarname", Expvarname) }
func TestSpanend(t *testing.T)     { analysistest.Run(t, "testdata/spanend", Spanend) }
func TestLockbalance(t *testing.T) { analysistest.Run(t, "testdata/lockbalance", Lockbalance) }
func TestClosecheck(t *testing.T)  { analysistest.Run(t, "testdata/closecheck", Closecheck) }
