package analyzers

import (
	"go/ast"
	"go/types"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/cfg"
)

// SpanendMarker suppresses a spanend finding when it appears, with a
// reason, on the flagged line or the line above. The generic
// lint:justified marker is accepted too.
const SpanendMarker = "spanend:ok"

// Spanend is the static twin of the span.begun/span.ended runtime leak
// metrics (DESIGN.md §14): every phase span created with obs.BeginSpan,
// Span.Child or Span.Fork and kept in a local variable must reach End
// on every path out of the function — via an explicit call, a defer, or
// a deferred closure. A span that escapes the function (returned,
// stored, or passed to another call, as when a root span is handed to
// the run registry or a Config) transfers End responsibility with it
// and is not checked here.
//
// The analysis is path-sensitive: it solves a forward dataflow problem
// over the function's CFG (internal/analysis/cfg), so an End that only
// happens on the happy path is flagged at the Begin site while
// branch-balanced code is accepted. Paths that die in an explicit
// panic(...) are not reported — the process is tearing down and the
// runtime leak counter is moot — and a creation whose result is
// discarded outright is flagged unconditionally.
//
// Suppress with // spanend:ok <reason> (or // lint:justified <reason>)
// on the creation line or the line above.
var Spanend = &analysis.Analyzer{
	Name: "spanend",
	Doc: "obs spans (BeginSpan/Child/Fork) must be Ended on every path out of " +
		"the creating function; // spanend:ok <reason> suppresses",
	Run: runSpanend,
}

func runSpanend(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, body := range funcBodies(file) {
			spanendBody(pass, body)
		}
	}
	return nil
}

// isSpanCreation reports whether call creates an obs span.
func isSpanCreation(pass *analysis.Pass, call *ast.CallExpr) bool {
	return pass.CalleeIn(call, "internal/obs", "BeginSpan") ||
		pass.CalleeIn(call, "internal/obs", "Child") ||
		pass.CalleeIn(call, "internal/obs", "Fork")
}

// isSpanEnd returns the tracked object whose span call ends, if any.
func isSpanEnd(pass *analysis.Pass, call *ast.CallExpr, tracked map[types.Object]bool) types.Object {
	if !pass.CalleeIn(call, "internal/obs", "End") {
		return nil
	}
	recv, _, ok := receiverOfCall(call)
	if !ok {
		return nil
	}
	obj := identObjOf(pass, recv)
	if obj == nil || !tracked[obj] {
		return nil
	}
	return obj
}

func spanendBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: candidate spans — local variables bound directly from a
	// creation call — plus creations whose result is dropped on the
	// floor, which can never be Ended and are reported immediately.
	candidates := make(map[types.Object]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isSpanCreation(pass, call) {
				if !justifiedFlow(pass, n.Pos(), SpanendMarker) {
					pass.Reportf(n.Pos(), "span created and discarded: nothing can End it (assign it and End on every path, or // %s <reason>)", SpanendMarker)
				}
			}
		case *ast.AssignStmt:
			for _, obj := range spanCreationTargets(pass, n) {
				candidates[obj] = true
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) == 1 {
				if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok && isSpanCreation(pass, call) {
					if obj := pass.TypesInfo.Defs[n.Names[0]]; obj != nil {
						candidates[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}

	// Pass 2: escapes. A span passed onward (call argument, return,
	// store, alias) hands End responsibility to the receiver; only
	// spans that stay method-call-local are checked.
	escaped := make(map[types.Object]bool)
	classifyUses(pass, body, func(o types.Object) bool { return candidates[o] },
		func(obj types.Object, _ *ast.Ident, class useClass) {
			if class != useSanctioned {
				escaped[obj] = true
			}
		})
	tracked := make(map[types.Object]bool)
	for obj := range candidates {
		if !escaped[obj] {
			tracked[obj] = true
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 3: the dataflow solve.
	g := pass.CFGOf(body)
	sol := cfg.Solve(g, cfg.Analysis[resFacts[types.Object]]{
		Transfer: func(b *cfg.Block, in resFacts[types.Object]) resFacts[types.Object] {
			out := cloneFacts(in)
			for _, node := range b.Nodes {
				spanendTransfer(pass, node, tracked, out)
			}
			return out
		},
		FlowEdge: func(b *cfg.Block, succ int, out resFacts[types.Object]) resFacts[types.Object] {
			if b.Panic {
				return nil
			}
			return refineNilEdges(pass, b, succ, out)
		},
		Join:  joinFacts[types.Object],
		Equal: equalFacts[types.Object],
	})
	for obj, st := range sol.In[g.Exit().Index] {
		if st.open && !justifiedFlow(pass, st.pos, SpanendMarker) {
			pass.Reportf(st.pos, "span %q begun here may not be Ended on every path out of the function (End it before each return, or defer; // %s <reason> to suppress)", obj.Name(), SpanendMarker)
		}
	}
}

// spanCreationTargets returns the objects an assignment binds directly
// to a span-creation call.
func spanCreationTargets(pass *analysis.Pass, n *ast.AssignStmt) []types.Object {
	if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok || !isSpanCreation(pass, call) {
		return nil
	}
	obj := identObjOf(pass, n.Lhs[0])
	if obj == nil {
		return nil
	}
	return []types.Object{obj}
}

// spanendTransfer applies one CFG node to the fact map.
func spanendTransfer(pass *analysis.Pass, node ast.Node, tracked map[types.Object]bool, out resFacts[types.Object]) {
	switch n := node.(type) {
	case *ast.DeferStmt:
		for _, call := range deferredCalls(n) {
			if obj := isSpanEnd(pass, call, tracked); obj != nil {
				st := out[obj]
				st.open = false
				out[obj] = st
			}
		}
	case *ast.AssignStmt:
		for _, obj := range spanCreationTargets(pass, n) {
			if tracked[obj] {
				out[obj] = resState{open: true, pos: n.Pos()}
			}
		}
		// An End call can also hide in the RHS; fall through to the scan.
		spanendScanEnds(pass, n, tracked, out)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 || len(vs.Names) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok || !isSpanCreation(pass, call) {
					continue
				}
				if obj := pass.TypesInfo.Defs[vs.Names[0]]; obj != nil && tracked[obj] {
					out[obj] = resState{open: true, pos: vs.Pos()}
				}
			}
		}
		spanendScanEnds(pass, n, tracked, out)
	default:
		spanendScanEnds(pass, node, tracked, out)
	}
}

func spanendScanEnds(pass *analysis.Pass, node ast.Node, tracked map[types.Object]bool, out resFacts[types.Object]) {
	inspectNoFuncLit(node, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if obj := isSpanEnd(pass, call, tracked); obj != nil {
				st := out[obj]
				st.open = false
				out[obj] = st
			}
		}
		return true
	})
}

// refineNilEdges drops the open state of tracked objects that are
// certainly nil along the chosen branch edge (`if sp == nil` true edge,
// `if sp != nil` false edge): a nil span/file was never acquired on
// this path, so requiring a release would be a false positive.
func refineNilEdges(pass *analysis.Pass, b *cfg.Block, succ int, out resFacts[types.Object]) resFacts[types.Object] {
	if b.Cond == nil || len(b.Succs) != 2 {
		return out
	}
	ids := mustNilIdents(b.Cond, succ == 0)
	if len(ids) == 0 {
		return out
	}
	refined := out
	copied := false
	for _, id := range ids {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		if st, ok := refined[obj]; ok && st.open {
			if !copied {
				refined = cloneFacts(refined)
				copied = true
			}
			st.open = false
			refined[obj] = st
		}
	}
	return refined
}
