package analyzers

import (
	"go/ast"
	"go/types"

	"eventcap/internal/analysis"
)

// SeedflowMarker suppresses a seedflow finding when it appears, with a
// reason, on the flagged line or the line above. The canonical
// justified exception is a run-root construction: the one place per
// engine where the root stream is derived from Config.Seed.
const SeedflowMarker = "seedflow:ok"

// Seedflow enforces the RNG provenance contract (DESIGN.md §7): inside
// simulation paths, every random stream must descend from the run's
// seeded root via rng.Source.Split or parallel.MapSeeded, so that
// results are a pure function of Config.Seed and the split topology.
// Fresh sources minted mid-path — rng.New with an ad-hoc seed, or a
// hand-rolled rng.Source composite literal — silently fork the stream
// graph and break worker-count invariance.
//
// The analyzer flags, in simulation-path packages:
//
//   - calls of rng.New (only the documented run-root constructions may
//     do this, annotated "// seedflow:ok run-root: ...");
//   - calls of rng.Source.Reseed, which re-root an existing source in
//     place — the batch engine's per-replication re-rooting is the one
//     documented exception ("// seedflow:ok replication-root: ...");
//   - composite literals of type rng.Source (the zero value is not a
//     valid generator and any literal bypasses seeding entirely).
//
// Deriving streams with Split or SplitInto is the sanctioned flow and
// is never flagged; SplitInto exists precisely so batch workers can
// refill per-chunk stream state without minting new sources.
var Seedflow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "RNG streams in simulation paths must descend from the seeded root via " +
		"rng.Split/parallel.MapSeeded; fresh rng.New sources need // seedflow:ok <reason>",
	Run: runSeedflow,
}

func runSeedflow(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pass.CalleeIn(n, "internal/rng", "New") && !pass.Justified(n.Pos(), SeedflowMarker) {
					pass.Reportf(n.Pos(), "fresh rng.New source in a simulation path: derive the stream from the run root via Split or parallel.MapSeeded (// %s <reason> for the documented run-root constructions)", SeedflowMarker)
				}
				if pass.CalleeIn(n, "internal/rng", "Reseed") && !pass.Justified(n.Pos(), SeedflowMarker) {
					pass.Reportf(n.Pos(), "rng.Source.Reseed re-roots a stream mid-path, as seed-forking as a fresh rng.New: derive streams with Split/SplitInto instead (// %s <reason> for the documented replication-root constructions)", SeedflowMarker)
				}
			case *ast.CompositeLit:
				if isRNGSourceType(pass.TypeOf(n)) && !pass.Justified(n.Pos(), SeedflowMarker) {
					pass.Reportf(n.Pos(), "rng.Source composite literal bypasses seeding: construct sources with New at the run root or Split from a parent (// %s <reason> to suppress)", SeedflowMarker)
				}
			}
			return true
		})
	}
	return nil
}

// isRNGSourceType reports whether t is (a pointer to) the named type
// Source from the internal/rng package.
func isRNGSourceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Source" &&
		analysis.PathHasSuffix(named.Obj().Pkg().Path(), "internal/rng")
}
