package analyzers

// Shared plumbing for the path-sensitive resource analyzers (spanend,
// lockbalance, closecheck): the dataflow fact shape they solve over the
// internal/analysis/cfg layer, condition-edge refinement, and the
// helpers for walking statements without leaking into nested function
// literals (which get their own independent analysis).

import (
	"go/ast"
	"go/token"
	"go/types"

	"eventcap/internal/analysis"
)

// GenericMarker is the suite-wide justification marker accepted by the
// path-sensitive analyzers alongside their per-analyzer markers, so a
// reviewed exception reads uniformly: //lint:justified <reason>.
const GenericMarker = "lint:justified"

// justifiedFlow reports whether the finding at pos carries either the
// analyzer's own marker or the generic lint:justified marker.
func justifiedFlow(pass *analysis.Pass, pos token.Pos, marker string) bool {
	return pass.Justified(pos, marker) || pass.Justified(pos, GenericMarker)
}

// resState is the per-resource dataflow fact: whether the resource may
// still be open (span un-ended, lock held, file unclosed) on some path
// reaching this point, and the acquisition site for reporting. errObj,
// used by closecheck, is the companion error variable assigned at the
// acquisition (`f, err := os.Create(...)`): along edges where that
// error is known non-nil the resource was never acquired.
type resState struct {
	open   bool
	pos    token.Pos
	errObj types.Object
}

// resFacts is the dataflow fact map: tracked resource key -> state.
// Facts are treated as immutable by the solver contract; use clone
// before mutating.
type resFacts[K comparable] map[K]resState

func cloneFacts[K comparable](f resFacts[K]) resFacts[K] {
	out := make(resFacts[K], len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// joinFacts unions two fact maps: a resource may be open after the
// merge if it may be open on either incoming path. The earliest
// acquisition position wins, for stable reporting.
func joinFacts[K comparable](a, b resFacts[K]) resFacts[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := cloneFacts(a)
	for k, vb := range b {
		va, ok := out[k]
		if !ok {
			out[k] = vb
			continue
		}
		merged := va
		merged.open = va.open || vb.open
		if vb.pos.IsValid() && (!va.pos.IsValid() || vb.pos < va.pos) {
			merged.pos = vb.pos
			merged.errObj = vb.errObj
		}
		out[k] = merged
	}
	return out
}

func equalFacts[K comparable](a, b resFacts[K]) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// funcBodies returns every function body in the file — declarations and
// function literals — each analyzed as its own flow graph.
func funcBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// nested function literals: their statements execute on their own
// schedule, not at the node's program point, and they are analyzed as
// independent bodies.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// nilCompare matches `x == nil` / `x != nil` (either operand order) and
// returns the non-nil-literal ident.
func nilCompare(e ast.Expr) (*ast.Ident, token.Token) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if id, ok := x.(*ast.Ident); ok && isNilIdent(y) {
		return id, be.Op
	}
	if id, ok := y.(*ast.Ident); ok && isNilIdent(x) {
		return id, be.Op
	}
	return nil, token.ILLEGAL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// mustNilIdents collects the idents that are certainly nil along the
// given edge of cond (trueEdge selects the branch taken when cond holds):
// `x == nil` on its true edge, `x != nil` on its false edge, recursing
// through !, && (true edge) and || (false edge).
func mustNilIdents(cond ast.Expr, trueEdge bool) []*ast.Ident {
	return nilFacts(cond, trueEdge, token.EQL)
}

// mustNonNilIdents is the dual: idents certainly non-nil along the edge.
func mustNonNilIdents(cond ast.Expr, trueEdge bool) []*ast.Ident {
	return nilFacts(cond, trueEdge, token.NEQ)
}

// nilFacts returns idents for which `ident op nil` certainly holds on
// the chosen edge of cond, for op EQL (nil) or NEQ (non-nil).
func nilFacts(cond ast.Expr, trueEdge bool, op token.Token) []*ast.Ident {
	cond = ast.Unparen(cond)
	if ue, ok := cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		return nilFacts(ue.X, !trueEdge, op)
	}
	if be, ok := cond.(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.LAND:
			// a && b: on the true edge both conjuncts hold.
			if trueEdge {
				return append(nilFacts(be.X, true, op), nilFacts(be.Y, true, op)...)
			}
			return nil
		case token.LOR:
			// a || b: on the false edge both disjuncts fail.
			if !trueEdge {
				return append(nilFacts(be.X, false, op), nilFacts(be.Y, false, op)...)
			}
			return nil
		}
	}
	id, cmpOp := nilCompare(cond)
	if id == nil {
		return nil
	}
	// `x == nil` asserts nil on its true edge; `x != nil` on its false
	// edge. Flip for the non-nil dual.
	assertsOnTrue := cmpOp == token.EQL
	if op == token.NEQ {
		assertsOnTrue = !assertsOnTrue
	}
	if trueEdge == assertsOnTrue {
		return []*ast.Ident{id}
	}
	return nil
}

// useClass classifies one identifier use for the escape pre-scan.
type useClass int

const (
	useSanctioned useClass = iota // receiver calls, nil compares, LHS writes
	useCallArg                    // passed as a plain call argument
	useEscape                     // returned, aliased, stored, captured otherwise
)

// classifyUses walks root (nested function literals included — captured
// uses count) and calls report for every use of an object selected by
// want, classified by syntactic context. Analyzers decide which classes
// forfeit tracking: spanend treats useCallArg as escape (span ownership
// moves into configs and registries), closecheck does not (Close stays
// with the creator).
func classifyUses(pass *analysis.Pass, root ast.Node, want func(types.Object) bool, report func(obj types.Object, id *ast.Ident, class useClass)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !want(obj) {
			return true
		}
		report(obj, id, classifyUse(id, stack))
		return true
	})
}

// classifyUse inspects the parent chain of one ident use.
func classifyUse(id *ast.Ident, stack []ast.Node) useClass {
	if len(stack) < 2 {
		return useEscape
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.M(...) — a method call on the resource is sanctioned; a
		// method value or field read that is not immediately called
		// aliases the resource.
		if p.X == id && len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == p {
				return useSanctioned
			}
		}
		return useEscape
	case *ast.BinaryExpr:
		if (p.Op == token.EQL || p.Op == token.NEQ) && (isNilIdent(ast.Unparen(p.X)) || isNilIdent(ast.Unparen(p.Y))) {
			return useSanctioned
		}
		return useEscape
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return useSanctioned
			}
		}
		return useEscape
	case *ast.ValueSpec:
		for _, nm := range p.Names {
			if nm == id {
				return useSanctioned
			}
		}
		return useEscape
	case *ast.CallExpr:
		for _, a := range p.Args {
			if a == id {
				return useCallArg
			}
		}
		// p.Fun == id: calling the resource itself — alias-like.
		return useEscape
	case *ast.ParenExpr:
		// Re-classify one level up.
		return classifyUse(id, stack[:len(stack)-1])
	default:
		return useEscape
	}
}

// receiverOfCall returns the receiver expression and method name when
// call is a method call expressed as a selector (x.M(...)).
func receiverOfCall(call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// deferredCalls returns the calls a defer statement guarantees at every
// subsequent function exit: the directly deferred call, or — for a
// deferred closure — every call statement inside the closure body
// (nested function literals excluded).
func deferredCalls(d *ast.DeferStmt) []*ast.CallExpr {
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		var out []*ast.CallExpr
		inspectNoFuncLit(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				out = append(out, call)
			}
			return true
		})
		return out
	}
	return []*ast.CallExpr{d.Call}
}

// identObjOf resolves e (through parens) to the object of a plain
// identifier, or nil.
func identObjOf(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
