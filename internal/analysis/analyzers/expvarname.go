package analyzers

import (
	"go/ast"
	"regexp"
	"strconv"

	"eventcap/internal/analysis"
)

// ExpvarnameMarker suppresses an expvarname finding when it appears,
// with a reason, on the flagged line or the line above.
const ExpvarnameMarker = "expvarname:ok"

// metricNameRE is the eventcap metric naming schema: lowercase
// dot-separated segments, each starting with a letter, using only
// [a-z0-9_]. Examples: sim.miss.asleep, pool.jobs.enqueued,
// sim.battery.frac_sum.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricConstructors are the entry points that register a metric (or a
// metric-backed object, like a flight-recorder dump reason) under the
// given name, per package.
var metricConstructors = []struct {
	pkg  string
	name string
}{
	{"internal/obs", "NewCounter"},
	{"internal/obs", "NewGauge"},
	{"internal/obs", "NewFloatCounter"},
	{"internal/obs", "NewCounterVec"},
	{"internal/obs", "NewDurationHist"},
	{"internal/trace", "NewDumpReason"},
}

// Expvarname checks every metric registration against the eventcap
// naming schema. All metrics surface in one expvar map under
// /debug/vars; dashboards and the run-manifest Diff keys are built from
// these strings, so a stray uppercase letter or hyphen becomes a
// permanent dashboard migration. Names must be string literals — a
// computed name cannot be schema-checked statically and defeats
// grep-ability — and match ^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$.
var Expvarname = &analysis.Analyzer{
	Name: "expvarname",
	Doc: "obs metric names must be string literals matching the eventcap schema " +
		"(lowercase dot-separated [a-z0-9_] segments); suppress with // expvarname:ok <reason>",
	Run: runExpvarname,
}

func runExpvarname(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			matched := false
			for _, ctor := range metricConstructors {
				if pass.CalleeIn(call, ctor.pkg, ctor.name) {
					matched = true
					break
				}
			}
			if !matched {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			lit, ok := arg.(*ast.BasicLit)
			if !ok {
				if !pass.Justified(call.Pos(), ExpvarnameMarker) {
					pass.Reportf(arg.Pos(), "metric name is not a string literal: computed names cannot be schema-checked or grepped (// %s <reason> to suppress)", ExpvarnameMarker)
				}
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) && !pass.Justified(call.Pos(), ExpvarnameMarker) {
				pass.Reportf(lit.Pos(), "metric name %q violates the eventcap schema %s (// %s <reason> to suppress)", name, metricNameRE.String(), ExpvarnameMarker)
			}
			return true
		})
	}
	return nil
}
