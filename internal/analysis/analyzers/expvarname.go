package analyzers

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"

	"eventcap/internal/analysis"
)

// ExpvarnameMarker suppresses an expvarname finding when it appears,
// with a reason, on the flagged line or the line above.
const ExpvarnameMarker = "expvarname:ok"

// metricNameRE is the eventcap metric naming schema: lowercase
// dot-separated segments, each starting with a letter, using only
// [a-z0-9_]. Examples: sim.miss.asleep, pool.jobs.enqueued,
// sim.battery.frac_sum.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricSubsystems is the closed set of first segments a metric name
// may use. Dashboards group by this prefix, so a typo'd or ad-hoc
// subsystem silently forks the dashboard tree. Adding a real subsystem
// means adding it here (one line) in the same PR that introduces it.
var metricSubsystems = map[string]bool{
	"sim":   true, // engine counters: events, captures, fallbacks, batteries
	"pool":  true, // worker-pool gauges and latency histograms
	"trace": true, // flight-recorder dump reasons and ring stats
	"cache": true, // policy/plan cache hit rates
	"span":  true, // phase-span tracer lifecycle (span.begun, span.ended)
	"runs":  true, // run registry for the /debug/runs dashboard
	"stats": true, // streaming-estimator surface (stats.qom.mean, …)
}

// metricConstructors are the entry points that register a metric (or a
// metric-backed object, like a flight-recorder dump reason) under the
// given name, per package.
var metricConstructors = []struct {
	pkg  string
	name string
}{
	{"internal/obs", "NewCounter"},
	{"internal/obs", "NewGauge"},
	{"internal/obs", "NewFloatCounter"},
	{"internal/obs", "NewCounterVec"},
	{"internal/obs", "NewDurationHist"},
	{"internal/obs", "NewFloatGauge"},
	{"internal/trace", "NewDumpReason"},
}

// Expvarname checks every metric registration against the eventcap
// naming schema. All metrics surface in one expvar map under
// /debug/vars; dashboards and the run-manifest Diff keys are built from
// these strings, so a stray uppercase letter or hyphen becomes a
// permanent dashboard migration. Names must be string literals — a
// computed name cannot be schema-checked statically and defeats
// grep-ability — must match ^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$, and
// must open with a known subsystem segment (metricSubsystems).
var Expvarname = &analysis.Analyzer{
	Name: "expvarname",
	Doc: "obs metric names must be string literals matching the eventcap schema " +
		"(lowercase dot-separated [a-z0-9_] segments, known subsystem prefix); " +
		"suppress with // expvarname:ok <reason>",
	Run: runExpvarname,
}

func runExpvarname(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			matched := false
			for _, ctor := range metricConstructors {
				if pass.CalleeIn(call, ctor.pkg, ctor.name) {
					matched = true
					break
				}
			}
			if !matched {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			lit, ok := arg.(*ast.BasicLit)
			if !ok {
				if !pass.Justified(call.Pos(), ExpvarnameMarker) {
					pass.Reportf(arg.Pos(), "metric name is not a string literal: computed names cannot be schema-checked or grepped (// %s <reason> to suppress)", ExpvarnameMarker)
				}
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				if !pass.Justified(call.Pos(), ExpvarnameMarker) {
					pass.Reportf(lit.Pos(), "metric name %q violates the eventcap schema %s (// %s <reason> to suppress)", name, metricNameRE.String(), ExpvarnameMarker)
				}
				return true
			}
			if sub, _, _ := strings.Cut(name, "."); !metricSubsystems[sub] && !pass.Justified(call.Pos(), ExpvarnameMarker) {
				pass.Reportf(lit.Pos(), "metric name %q uses unknown subsystem %q: add it to metricSubsystems in expvarname.go or pick an existing prefix (// %s <reason> to suppress)", name, sub, ExpvarnameMarker)
			}
			return true
		})
	}
	return nil
}
