// Package fixture exercises the floateq analyzer: raw float equality
// is flagged, exact-zero sentinels and justified bit-exact comparisons
// are not.
package fixture

type reading struct{ level float64 }

type celsius float64

const saturated = 1.0

func compare(a, b float64, r reading, c celsius) int {
	hits := 0
	if a == b { // want `== on floating-point`
		hits++
	}
	if a != b { // want `!= on floating-point`
		hits++
	}
	if a == 0 { // exact-zero sentinel: quiet
		hits++
	}
	if 0.0 != b { // exact-zero on either side: quiet
		hits++
	}
	if a == saturated { // want `== on floating-point`
		hits++
	}
	// floateq:ok fixture demonstrates a justified bit-exact comparison
	if r.level == b {
		hits++
	}
	if c == 3.5 { // want `== on floating-point`
		hits++
	}
	if hits == 3 { // integer comparison: quiet
		return 0
	}
	var f32 float32
	if f32 == 1.5 { // want `== on floating-point`
		hits++
	}
	return hits
}
