// Package fixture exercises the probrange analyzer: bare arithmetic
// flowing into probability-named variables and results is flagged;
// clamped, justified, copied and non-probability values are not.
package fixture

import "eventcap/internal/numeric"

type policy struct {
	captureProb float64
	weight      float64
}

func assignments(e, cost, hazard float64, p *policy) {
	prob := e / cost // want `unclamped arithmetic assigned to probability "prob"`
	_ = prob
	p.captureProb = prob * hazard // want `unclamped arithmetic assigned to probability "captureProb"`
	p.captureProb = numeric.Clamp01(prob * hazard) // clamped: quiet
	p.captureProb = min(1, prob*hazard)            // clamped via built-in: quiet
	// prob-invariant product of values already in [0,1]
	p.captureProb = prob * hazard
	p.weight = e / cost // not probability-named: quiet
	p.captureProb = prob // plain copy: quiet
}

func captureProb(alpha, c float64) float64 {
	return alpha * c // want `unclamped arithmetic returned as a probability`
}

// missProb's named result marks it as a probability even though the
// function name alone would too; both paths must agree.
func missProb(captured, events float64) (prob float64) {
	if events == 0 { // guard, not a probability comparison
		return 0 // literal: quiet
	}
	return 1 - captured/events // want `unclamped arithmetic returned as a probability`
}

func blendProb(a, b, w float64) float64 {
	// prob-invariant convex combination of probabilities stays in range
	return w*a + (1-w)*b
}

func meanGap(total, count float64) float64 {
	return total / count // not probability-named: quiet
}
