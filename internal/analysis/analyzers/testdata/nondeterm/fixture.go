// Package fixture exercises the nondeterm analyzer: every construct
// that smuggles schedule- or clock-dependence into a simulation path,
// plus the justified forms that must stay quiet.
package fixture

import (
	"math/rand" // want `import of math/rand`
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now() // want `time.Now`
	_ = time.Now        // a reference, not a call: quiet
	return time.Since(start) // want `time.Since`
}

func justifiedClock() time.Time {
	// nondeterm:ok fixture demonstrates a justified wall-clock read
	return time.Now()
}

func mapOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map`
		sum += v
	}
	keys := make([]string, 0, len(m))
	// nondeterm:ok collect-then-sort: keys are sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: quiet
		sum += m[k]
	}
	return sum
}

func goroutines() int {
	total := 0
	done := make(chan int)
	go func() {
		total = rand.Int() // want `captured variable "total"`
		done <- 1
	}()
	go func() {
		local := 7 // a goroutine-local write: quiet
		local++
		done <- local
	}()
	go func() {
		// nondeterm:ok joined before read: the channel receive below orders this write
		total = 2
		done <- 1
	}()
	<-done
	<-done
	<-done
	return total
}

func capturedIncrement() {
	n := 0
	go func() {
		n++ // want `captured variable "n"`
	}()
	_ = n
}

func chunkFanOut(chunks []int) {
	done := make(chan int, len(chunks)*4)
	for i := range chunks {
		go func() {
			done <- chunks[i] // want `loop variable "i"`
		}()
		go func(i int) { // parameter shadows the loop variable: quiet
			done <- chunks[i]
		}(i)
	}
	for _, c := range chunks {
		go func() {
			done <- c // want `loop variable "c"`
		}()
		c := c // rebound local, not the iteration variable: quiet
		go func() {
			done <- c
		}()
	}
	for j := 0; j < len(chunks); j++ {
		go func() {
			// nondeterm:ok fixture demonstrates a justified loop-variable capture
			done <- chunks[j]
		}()
	}
	go func() {
		for k := range chunks { // the goroutine's own loop: quiet
			done <- chunks[k]
		}
	}()
}
