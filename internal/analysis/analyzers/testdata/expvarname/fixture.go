// Package fixture exercises the expvarname analyzer: metric names must
// be literals matching the eventcap schema.
package fixture

import (
	"eventcap/internal/obs"
	"eventcap/internal/trace"
)

func metrics(suffix string) {
	_ = obs.NewCounter("sim.fixture.events")        // schema-conformant: quiet
	_ = obs.NewGauge("pool.fixture_pending")        // underscores allowed: quiet
	_ = obs.NewCounter("Sim.Events")                // want `violates the eventcap schema`
	_ = obs.NewCounter("sim-events")                // want `violates the eventcap schema`
	_ = obs.NewCounter("sim..double")               // want `violates the eventcap schema`
	_ = obs.NewCounter("sim.9starts_with_digit")    // want `violates the eventcap schema`
	_ = obs.NewFloatCounter("sim.fixture.frac_sum") // quiet
	_ = obs.NewCounterVec("sim.fixture.bin", 3)     // quiet
	_ = obs.NewDurationHist("pool.fixture.latency") // quiet
	_ = obs.NewCounter("sim." + suffix)             // want `not a string literal`
	// expvarname:ok fixture demonstrates a justified computed name
	_ = obs.NewCounter("sim." + suffix)

	// Engine-fallback reason counters follow the same dotted schema; the
	// reason slug is the last segment.
	_ = obs.NewCounter("sim.engine.fallback.mode") // quiet
	_ = obs.NewCounter("sim.engine.fallback.Mode") // want `violates the eventcap schema`

	// The observability subsystems added with the phase-span profiler
	// and the run registry are part of the subsystem allowlist.
	_ = obs.NewCounter("span.fixture_begun")  // quiet
	_ = obs.NewGauge("runs.fixture.active")   // quiet
	_ = obs.NewCounter("spans.fixture_begun") // want `unknown subsystem "spans"`
	_ = obs.NewGauge("run.fixture.active")    // want `unknown subsystem "run"`
	_ = obs.NewCounter("dash.fixture.hits")   // want `unknown subsystem "dash"`
	// expvarname:ok fixture demonstrates a justified one-off subsystem
	_ = obs.NewCounter("scratch.fixture.hits")

	// The streaming-statistics surface registers float gauges under the
	// stats subsystem; NewFloatGauge is schema-checked like the rest.
	_ = obs.NewFloatGauge("stats.fixture.qom_mean") // quiet
	_ = obs.NewFloatGauge("stats.Fixture.Mean")     // want `violates the eventcap schema`
	_ = obs.NewFloatGauge("statz.fixture.mean")     // want `unknown subsystem "statz"`
	_ = obs.NewFloatGauge("stats." + suffix)        // want `not a string literal`

	// Flight-recorder dump reasons register a backing counter, so their
	// names obey the same schema.
	_ = trace.NewDumpReason("trace.dump.fixture")  // quiet
	_ = trace.NewDumpReason("trace.Dump.Fixture")  // want `violates the eventcap schema`
	_ = trace.NewDumpReason("trace.dump-fixture")  // want `violates the eventcap schema`
	_ = trace.NewDumpReason("trace." + suffix)     // want `not a string literal`
	// expvarname:ok fixture demonstrates a justified computed reason
	_ = trace.NewDumpReason("trace.d." + suffix)
}
