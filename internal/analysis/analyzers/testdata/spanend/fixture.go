// Package fixture exercises the spanend analyzer: spans kept in a local
// must be Ended on every path; escaping spans hand the duty onward.
package fixture

import "eventcap/internal/obs"

func work() {}

func deferred() {
	sp := obs.BeginSpan("run")
	defer sp.End()
	work()
}

func leaky(n int) {
	sp := obs.BeginSpan("run") // want `may not be Ended on every path`
	if n > 0 {
		sp.End()
		return
	}
	work() // falls out without End
}

func balanced(n int) {
	sp := obs.BeginSpan("run")
	if n > 0 {
		sp.End()
		return
	}
	sp.End()
}

func discarded() {
	obs.BeginSpan("oops") // want `span created and discarded`
}

func childLeak(parent *obs.Span, xs []int) {
	sp := parent.Child("phase") // want `may not be Ended on every path`
	for _, x := range xs {
		if x < 0 {
			return // skips End
		}
	}
	sp.End()
}

func deferredClosure() {
	sp := obs.BeginSpan("run")
	defer func() { sp.End() }()
	work()
}

func panicPath(n int) {
	sp := obs.BeginSpan("run")
	if n < 0 {
		panic("bad n") // dying process: leak not reported
	}
	sp.End()
}

func adopt(sp *obs.Span) {}

func handoff() {
	sp := obs.BeginSpan("root")
	adopt(sp) // escapes: End responsibility moves with it
}

func returned() *obs.Span {
	sp := obs.BeginSpan("root")
	return sp // escapes
}

func justified(n int) {
	sp := obs.BeginSpan("bg") // spanend:ok fixture: ended by the shutdown hook in the real caller
	if n > 0 {
		sp.End()
	}
}

func forked(parent *obs.Span) {
	var sp = parent.Fork("lane") // want `may not be Ended on every path`
	work()
	_ = sp.Name()
}
