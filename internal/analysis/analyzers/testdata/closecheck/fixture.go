// Package fixture exercises the closecheck analyzer: files and trace
// writers must reach Close on every path, and trace.Writer.Close's
// sticky error must be consumed.
package fixture

import (
	"fmt"
	"os"

	"eventcap/internal/trace"
)

func happy(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err // creation failed: nothing to close
	}
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}

func leaky(p string) error {
	f, err := os.Create(p) // want `may not be Closed on every path`
	if err != nil {
		return err
	}
	if _, werr := f.WriteString("x"); werr != nil {
		return werr // leaks f
	}
	return f.Close()
}

func argKeepsOwnership(p string) {
	f, err := os.Create(p) // want `may not be Closed on every path`
	if err != nil {
		return
	}
	fmt.Fprintln(f, "hello") // passing f does not pass the Close duty
}

func deliberate(p string) error {
	f, err := os.Create(p) // closecheck:ok fixture: process-lifetime file, released by the OS at exit
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "pid")
	return nil
}

func genericJustified(p string) {
	f, err := os.Create(p) // lint:justified fixture: the suite-wide marker works for any analyzer
	if err != nil {
		return
	}
	fmt.Fprintln(f, "x")
}

func handoff(p string) (*os.File, error) {
	f, err := os.Create(p)
	if err != nil {
		return nil, err
	}
	return f, nil // escapes: the caller closes
}

func writeTrace(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	w := trace.NewWriter(f)
	werr := w.Close()
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func conditional(p string, enabled bool) error {
	var w *trace.Writer
	if enabled {
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		defer f.Close()
		w = trace.NewWriter(f)
	}
	if w != nil {
		return w.Close() // consumed: returned to the caller
	}
	return nil
}

func deferChecked(p string) (err error) {
	f, cerr := os.Create(p)
	if cerr != nil {
		return cerr
	}
	w := trace.NewWriter(f)
	defer func() {
		if e := w.Close(); e != nil && err == nil {
			err = e
		}
		f.Close() // os.File: bare close is idiomatic
	}()
	w.RunStart(trace.RunInfo{})
	return nil
}

func sloppy(f *os.File) {
	w := trace.NewWriter(f)
	w.Close() // want `Close error discarded`
}

func deferSloppy(f *os.File) {
	w := trace.NewWriter(f)
	defer w.Close() // want `Close error discarded`
}

func explicitDiscard(f *os.File) {
	w := trace.NewWriter(f)
	_ = w.Close() // reviewed, visible discard: quiet
}
