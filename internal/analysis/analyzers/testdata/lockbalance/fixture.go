// Package fixture exercises the lockbalance analyzer: every Lock/RLock
// must be released on every path out of the acquiring function.
package fixture

import "sync"

var mu sync.Mutex
var rw sync.RWMutex

func deferred() {
	mu.Lock()
	defer mu.Unlock()
}

func leaky(n int) {
	mu.Lock() // want `may still be held`
	if n > 0 {
		return // skips the Unlock
	}
	mu.Unlock()
}

func balanced(n int) int {
	mu.Lock()
	if n > 0 {
		mu.Unlock()
		return 1
	}
	mu.Unlock()
	return 0
}

func midLoop(xs []int) int {
	mu.Lock()
	for _, x := range xs {
		if x < 0 {
			mu.Unlock()
			return x
		}
	}
	mu.Unlock()
	return 0
}

func readers() {
	rw.RLock()
	defer rw.RUnlock()
}

func mismatched() {
	rw.RLock()  // want `may still be held`
	rw.Unlock() // releases the write side, not the read side
}

func closureUnlock() {
	mu.Lock()
	defer func() { mu.Unlock() }()
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) lockedView() *box {
	b.mu.Lock() // lockbalance:ok fixture: caller receives the critical section and must Unlock
	return b
}

func panicPath(n int) {
	mu.Lock()
	if n < 0 {
		panic("bad n") // dying process: held lock not reported
	}
	mu.Unlock()
}
