// Package fixture exercises the seedflow analyzer: fresh RNG sources in
// a simulation path are flagged unless annotated as the run root;
// streams derived by Split are the sanctioned flow.
package fixture

import "eventcap/internal/rng"

type config struct{ Seed uint64 }

func run(cfg config) float64 {
	root := rng.New(cfg.Seed, 0x5eed) // want `fresh rng.New source`
	return root.Float64()
}

func runRoot(cfg config) float64 {
	root := rng.New(cfg.Seed, 0x5eed) // seedflow:ok run-root: fixture's documented root construction
	eventSrc := root.Split(1)         // derived stream: quiet
	decisionSrc := root.Split(2)
	return eventSrc.Float64() + decisionSrc.Float64()
}

func handRolled() *rng.Source {
	return &rng.Source{} // want `composite literal`
}

func zeroValue() rng.Source {
	var s rng.Source // var decl, not a literal: quiet (and invalid to use — New's contract)
	return s
}

func reseedMidPath(src *rng.Source, cfg config) float64 {
	src.Reseed(cfg.Seed, 0x5eed) // want `Reseed re-roots a stream`
	return src.Float64()
}

func replicationRoot(root *rng.Source, cfg config, rep uint64) float64 {
	// seedflow:ok replication-root: fixture's documented per-replication re-rooting
	root.Reseed(cfg.Seed+rep, 0x5eed)
	var eventSrc, decisionSrc rng.Source
	root.SplitInto(&eventSrc, 1) // SplitInto refills stream state in place: quiet
	root.SplitInto(&decisionSrc, 2)
	return eventSrc.Float64() + decisionSrc.Float64()
}
