package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"

	"eventcap/internal/analysis"
)

// ProbrangeMarker suppresses a probrange finding when it appears, with a
// reason, on the flagged line or the line above. The reason should name
// the invariant that keeps the value in [0, 1] (for example
// "product of probabilities" or "convex combination").
const ProbrangeMarker = "prob-invariant"

// probName matches identifiers that carry probabilities by this
// codebase's naming convention: any name containing "prob" or
// "probability" in any casing (prob, warmupProb, CaptureProb, Probs).
var probName = regexp.MustCompile(`(?i)prob`)

// Probrange flags raw arithmetic flowing into probability-named
// variables, fields and results without either a clamp or a stated
// range invariant. Probabilities out of [0, 1] don't crash — they
// silently skew capture rates and invalidate every downstream figure —
// so the rule is: an assignment to (or return of) a probability whose
// right-hand side is a bare arithmetic expression must be wrapped in a
// recognized clamp (numeric.Clamp01, math.Min/math.Max, the min/max
// built-ins) or carry "// prob-invariant <why it stays in range>".
//
// Plain copies, function calls and literals are not flagged: the value
// was either already a probability or is some constructor's job to
// validate.
var Probrange = &analysis.Analyzer{
	Name: "probrange",
	Doc: "flag unclamped arithmetic assigned or returned as a probability; " +
		"clamp with numeric.Clamp01 or justify with // prob-invariant <reason>",
	Run: runProbrange,
}

func runProbrange(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y = f() — a call result, never bare arithmetic
					}
					name := assignedName(lhs)
					if name == "" || !probName.MatchString(name) {
						continue
					}
					rhs := n.Rhs[i]
					if !isUnclampedArithmetic(pass, rhs) {
						continue
					}
					if pass.Justified(n.Pos(), ProbrangeMarker) {
						continue
					}
					pass.Reportf(rhs.Pos(), "unclamped arithmetic assigned to probability %q: wrap in numeric.Clamp01 or state the range invariant with // %s <reason>", name, ProbrangeMarker)
				}
			case *ast.FuncDecl:
				checkProbReturns(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkProbReturns flags bare-arithmetic returns from functions whose
// name or named float results advertise a probability.
func checkProbReturns(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Results == nil {
		return
	}
	fnIsProb := probName.MatchString(fn.Name.Name)
	// Positions of results that are probability-named floats.
	probResult := make([]bool, 0, fn.Type.Results.NumFields())
	for _, field := range fn.Type.Results.List {
		isProb := false
		for _, id := range field.Names {
			if probName.MatchString(id.Name) {
				isProb = true
			}
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			probResult = append(probResult, isProb)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are its own contract
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			probHere := fnIsProb && len(ret.Results) == 1
			if i < len(probResult) && probResult[i] {
				probHere = true
			}
			if !probHere || !analysis.IsFloat(pass.TypeOf(res)) {
				continue
			}
			if !isUnclampedArithmetic(pass, res) {
				continue
			}
			if pass.Justified(ret.Pos(), ProbrangeMarker) {
				continue
			}
			pass.Reportf(res.Pos(), "unclamped arithmetic returned as a probability from %s: wrap in numeric.Clamp01 or state the range invariant with // %s <reason>", fn.Name.Name, ProbrangeMarker)
		}
		return true
	})
}

// assignedName extracts the terminal name of an assignment target:
// prob, s.captureProb, probs[i] all yield their probability-bearing
// component.
func assignedName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return assignedName(v.X)
	}
	return ""
}

// isUnclampedArithmetic reports whether e is a bare float arithmetic
// expression (+ - * /). Calls are exempt wholesale — a call's range is
// the callee's contract, which is how numeric.Clamp01, math.Min/Max and
// the min/max built-ins act as recognized clamps.
func isUnclampedArithmetic(pass *analysis.Pass, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return analysis.IsFloat(pass.TypeOf(e))
	}
	return false
}
