// Package analyzers holds the repository's determinism and invariant
// checks (DESIGN.md §10) plus the scoping policy that maps each check
// onto the packages whose contract it enforces. cmd/eventcap-lint runs
// the suite; `make lint` and the CI lint job gate on it.
package analyzers

import (
	"eventcap/internal/analysis"
)

// All returns the complete analyzer suite in stable order. The set is
// part of the lint gate's contract — a meta-test asserts it matches the
// documented eight — so additions belong here, in DESIGN.md §10/§15,
// and in the scope table below, together.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Nondeterm,
		Floateq,
		Probrange,
		Seedflow,
		Expvarname,
		Spanend,
		Lockbalance,
		Closecheck,
	}
}

// simulationPathPackages are the packages bound by the determinism
// contract: everything whose output feeds a simulation result. The
// orchestration layers (parallel, obs, cliutil, cmd) legitimately read
// wall clocks and spawn goroutines; they are excluded from nondeterm
// and seedflow but still covered by the value-hygiene analyzers.
var simulationPathPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/dist",
	"internal/energy",
	"internal/renewal",
	"internal/experiments",
	"internal/trace",
}

// For returns the analyzers that apply to importPath under the driver's
// scoping policy:
//
//   - nondeterm, seedflow: simulation-path packages only;
//   - floateq: everywhere except internal/numeric (the blessed home of
//     tolerance helpers, whose job is precisely careful raw comparison)
//     and the analysis packages themselves;
//   - probrange, expvarname, spanend: everywhere except the analysis
//     packages (any package may open a phase span);
//   - lockbalance: the concurrency hubs — internal/obs, internal/trace,
//     internal/parallel — where lock-guarded registries and pools live;
//   - closecheck: the packages that create trace streams and files —
//     cmd/* and internal/trace.
//
// The analysis packages are self-excluded not as a privilege but to
// keep the lint gate's fixed point trivial: they manipulate other
// packages' floats and names as data, not as quantities.
func For(importPath string) []*analysis.Analyzer {
	if contains(importPath, "internal/analysis") {
		return nil
	}
	var out []*analysis.Analyzer
	if onSimulationPath(importPath) {
		out = append(out, Nondeterm)
	}
	if !contains(importPath, "internal/numeric") {
		out = append(out, Floateq)
	}
	out = append(out, Probrange)
	if onSimulationPath(importPath) {
		out = append(out, Seedflow)
	}
	out = append(out, Expvarname)
	out = append(out, Spanend)
	if contains(importPath, "internal/obs") || contains(importPath, "internal/trace") ||
		contains(importPath, "internal/parallel") {
		out = append(out, Lockbalance)
	}
	if contains(importPath, "cmd") || contains(importPath, "internal/trace") {
		out = append(out, Closecheck)
	}
	return out
}

func onSimulationPath(importPath string) bool {
	for _, p := range simulationPathPackages {
		if contains(importPath, p) {
			return true
		}
	}
	return false
}

// contains reports whether importPath contains sub on path-segment
// boundaries (suffix or interior segment).
func contains(importPath, sub string) bool {
	if analysis.PathHasSuffix(importPath, sub) {
		return true
	}
	// Interior: ".../sub/..." — check every suffix boundary.
	for i := 0; i+len(sub) <= len(importPath); i++ {
		if (i == 0 || importPath[i-1] == '/') &&
			importPath[i:i+len(sub)] == sub &&
			(i+len(sub) == len(importPath) || importPath[i+len(sub)] == '/') {
			return true
		}
	}
	return false
}
