package analyzers

import (
	"fmt"
	"go/ast"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/cfg"
)

// LockbalanceMarker suppresses a lockbalance finding when it appears,
// with a reason, on the flagged line or the line above. The generic
// lint:justified marker is accepted too.
const LockbalanceMarker = "lockbalance:ok"

// Lockbalance checks that every sync.Mutex/RWMutex acquisition is
// released on every path out of the acquiring function — the contract
// behind the lock-guarded registries, the span tree, the flight
// recorder, and the pool bookkeeping. It applies to the concurrency
// hubs (internal/obs, internal/trace, internal/parallel; see the scope
// policy in For).
//
// The analysis is path-sensitive over the function's CFG: a mid-loop
// Unlock+return paired with a post-loop Unlock is accepted, while an
// early return that skips the Unlock is flagged at the Lock site.
// Deferred releases — `defer mu.Unlock()` or a deferred closure that
// unlocks — count on every subsequent exit. Lock and RLock are tracked
// as separate acquisitions per lock expression (spelled as a chain of
// identifiers and field selections; locks reached through indexing or
// function results are outside the analysis). Paths that die in an
// explicit panic(...) are not reported.
//
// A function that intentionally returns holding a lock (a locked
// accessor handing the critical section to its caller) documents it
// with // lockbalance:ok <reason> (or // lint:justified <reason>) on
// the Lock line or the line above.
var Lockbalance = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "sync.Mutex/RWMutex Lock/RLock must be Unlocked on every path out of " +
		"the acquiring function; // lockbalance:ok <reason> suppresses",
	Run: runLockbalance,
}

func runLockbalance(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, body := range funcBodies(file) {
			lockbalanceBody(pass, body)
		}
	}
	return nil
}

// lockOp classifies a call as a sync lock operation on a keyable lock
// expression. acquire is true for Lock/RLock; key identifies the lock
// (with a "#r" suffix separating the read side of an RWMutex).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	recv, name, isMethod := receiverOfCall(call)
	if !isMethod {
		return "", false, false
	}
	var read bool
	switch name {
	case "Lock", "Unlock":
	case "RLock", "RUnlock":
		read = true
	default:
		return "", false, false
	}
	if !pass.CalleeIn(call, "sync", name) {
		return "", false, false
	}
	key, keyable := lockKey(pass, recv)
	if !keyable {
		return "", false, false
	}
	if read {
		key += "#r"
	}
	return key, name == "Lock" || name == "RLock", true
}

// lockKey canonicalizes a lock expression: a chain of identifiers and
// field selections rooted at a resolvable object ("s.mu", "regMu",
// "obs.DefaultRegistry.mu"). Anything else (index expressions, call
// results) is not keyable.
func lockKey(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%p", obj), true
	case *ast.SelectorExpr:
		base, ok := lockKey(pass, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	default:
		return "", false
	}
}

func lockbalanceBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: skip the solve for lock-free functions.
	found := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, acquire, ok := lockOp(pass, call); ok && acquire {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	g := pass.CFGOf(body)
	sol := cfg.Solve(g, cfg.Analysis[resFacts[string]]{
		Transfer: func(b *cfg.Block, in resFacts[string]) resFacts[string] {
			out := cloneFacts(in)
			for _, node := range b.Nodes {
				if d, ok := node.(*ast.DeferStmt); ok {
					for _, call := range deferredCalls(d) {
						applyLockOp(pass, call, out, true)
					}
					continue
				}
				inspectNoFuncLit(node, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						applyLockOp(pass, call, out, false)
					}
					return true
				})
			}
			return out
		},
		FlowEdge: func(b *cfg.Block, succ int, out resFacts[string]) resFacts[string] {
			if b.Panic {
				return nil
			}
			return out
		},
		Join:  joinFacts[string],
		Equal: equalFacts[string],
	})
	for _, st := range sol.In[g.Exit().Index] {
		if st.open && !justifiedFlow(pass, st.pos, LockbalanceMarker) {
			pass.Reportf(st.pos, "lock acquired here may still be held on some path out of the function (defer the Unlock or release before each return; // %s <reason> to suppress)", LockbalanceMarker)
		}
	}
}

// applyLockOp folds one call into the fact map. deferred releases count
// as releases at the registration point (they run at every subsequent
// exit); a deferred acquire would be bizarre and is ignored.
func applyLockOp(pass *analysis.Pass, call *ast.CallExpr, out resFacts[string], deferred bool) {
	key, acquire, ok := lockOp(pass, call)
	if !ok {
		return
	}
	if acquire {
		if deferred {
			return
		}
		out[key] = resState{open: true, pos: call.Pos()}
		return
	}
	st := out[key]
	st.open = false
	out[key] = st
}
