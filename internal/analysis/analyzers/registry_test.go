package analyzers

import (
	"testing"
)

// TestRegisteredSuite pins the analyzer set: the eight documented in
// DESIGN.md §10 and §15, in stable order, each named, documented, and
// runnable. Growing the suite means updating this list, the DESIGN
// sections and the scope table together — that is the point of the test.
func TestRegisteredSuite(t *testing.T) {
	want := []string{"nondeterm", "floateq", "probrange", "seedflow", "expvarname",
		"spanend", "lockbalance", "closecheck"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestScopePolicy checks the driver's package scoping: determinism
// analyzers bind only simulation-path packages, floateq skips the
// blessed numeric helpers, and the analysis packages are self-excluded.
func TestScopePolicy(t *testing.T) {
	names := func(path string) map[string]bool {
		out := map[string]bool{}
		for _, a := range For(path) {
			out[a.Name] = true
		}
		return out
	}

	sim := names("eventcap/internal/sim")
	for _, want := range []string{"nondeterm", "floateq", "probrange", "seedflow", "expvarname"} {
		if !sim[want] {
			t.Errorf("internal/sim: missing %s", want)
		}
	}

	tr := names("eventcap/internal/trace")
	if !tr["nondeterm"] || !tr["seedflow"] {
		t.Errorf("internal/trace: determinism analyzers must apply to the trace subsystem, got %v", tr)
	}

	par := names("eventcap/internal/parallel")
	if par["nondeterm"] || par["seedflow"] {
		t.Errorf("internal/parallel: determinism analyzers must not apply to the orchestration layer, got %v", par)
	}
	if !par["floateq"] || !par["probrange"] || !par["expvarname"] {
		t.Errorf("internal/parallel: value-hygiene analyzers missing, got %v", par)
	}

	num := names("eventcap/internal/numeric")
	if num["floateq"] {
		t.Error("internal/numeric: floateq must not apply to the blessed tolerance helpers")
	}
	if !num["probrange"] {
		t.Error("internal/numeric: probrange should still apply")
	}

	// Path-sensitive analyzers: spanend everywhere, lockbalance on the
	// concurrency hubs, closecheck where trace streams are created.
	if !sim["spanend"] || !par["spanend"] || !num["spanend"] {
		t.Error("spanend must apply to every non-analysis package")
	}
	obs := names("eventcap/internal/obs")
	if !obs["lockbalance"] || !tr["lockbalance"] || !par["lockbalance"] {
		t.Errorf("lockbalance must cover obs/trace/parallel, got obs=%v trace=%v parallel=%v", obs, tr, par)
	}
	if sim["lockbalance"] {
		t.Errorf("internal/sim: lockbalance out of scope, got %v", sim)
	}
	cmdSim := names("eventcap/cmd/simulate")
	if !cmdSim["closecheck"] || !tr["closecheck"] {
		t.Errorf("closecheck must cover cmd and internal/trace, got cmd/simulate=%v trace=%v", cmdSim, tr)
	}
	if obs["closecheck"] || sim["closecheck"] {
		t.Errorf("closecheck out of scope for obs/sim, got obs=%v sim=%v", obs, sim)
	}

	if got := For("eventcap/internal/analysis/analyzers"); len(got) != 0 {
		t.Errorf("analysis packages must be self-excluded, got %d analyzers", len(got))
	}

	// Suffix matching must respect path-segment boundaries.
	if cheat := names("evil/notinternal/sim"); cheat["nondeterm"] {
		t.Error("scope matched a non-boundary path segment")
	}
	if cheat := names("eventcap/internal/simulator"); cheat["nondeterm"] {
		t.Error("scope matched internal/simulator as internal/sim")
	}
	for _, sub := range []string{"eventcap/internal/sim/subpkg"} {
		if !names(sub)["nondeterm"] {
			t.Errorf("%s: subpackages of a simulation path must inherit nondeterm", sub)
		}
	}
}
