package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"

	"eventcap/internal/analysis"
)

// FloateqMarker suppresses a floateq finding when it appears, with a
// reason, on the flagged line or the line above.
const FloateqMarker = "floateq:ok"

// Floateq flags == and != between floating-point operands. Exact float
// equality is almost always a latent bug — two mathematically equal
// expressions round differently — and the few legitimate uses in this
// codebase are deliberate, documented exactness checks (dyadic-grid
// proofs in energy, prefix compression in core). Those must either:
//
//   - compare against the exact constant zero, the one sentinel IEEE-754
//     makes reliable (allowed without annotation: `x == 0` tests "no
//     mass here", and a sum that should be zero either is or isn't), or
//   - carry a "// floateq:ok <reason>" justification, or
//   - live in internal/numeric, the blessed home of tolerance helpers
//     (the driver scopes the analyzer away from it).
//
// Everything else should go through the numeric helpers or compare
// exact bit patterns (math.Float64bits) as the policy caches do.
var Floateq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on floating-point values outside exact-zero sentinels and " +
		"the numeric tolerance helpers; suppress with // floateq:ok <reason>",
	Run: runFloateq,
}

func runFloateq(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !analysis.IsFloat(pass.TypeOf(be.X)) && !analysis.IsFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			if pass.Justified(be.Pos(), FloateqMarker) {
				return true
			}
			pass.Reportf(be.OpPos, "%s on floating-point values: use an exact-zero sentinel, a numeric tolerance helper, or math.Float64bits; // %s <reason> if bit-exact comparison is intended", be.Op, FloateqMarker)
			return true
		})
	}
	return nil
}

// isExactZero reports whether e is a compile-time constant equal to
// exactly zero (literal 0, 0.0, or a named constant folding to zero).
func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(tv.Value)
	return f == 0
}
