// Package analysistest runs one analyzer over a fixture package and
// compares its findings against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := a.p == b.p // want `floating-point`
//
// A `// want` comment expects, on its own line, one diagnostic per
// backquoted or double-quoted regexp, in order. Lines without a want
// comment must produce no diagnostics. Fixtures may import standard
// library packages and this module's packages (internal/rng,
// internal/obs, ...): imports resolve through the same `go list
// -export` data the lint driver uses, with a handful of std packages
// force-listed so fixtures can exercise rules (math/rand, time) the
// module itself never imports.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"eventcap/internal/analysis"
	"eventcap/internal/analysis/load"
)

// extraStd are standard-library packages fixtures may import even
// though the module's own dependency closure does not contain them.
var extraStd = []string{"math/rand", "time", "math", "sort"}

var (
	exportsOnce sync.Once
	exports     load.Exports
	exportsErr  error
)

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

func moduleExports() (load.Exports, error) {
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		patterns := append([]string{"./..."}, extraStd...)
		_, exports, exportsErr = load.List(root, patterns...)
	})
	return exports, exportsErr
}

// Run type-checks the fixture package in dir (relative to the test's
// working directory) and executes a over it, comparing diagnostics to
// the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	exp, err := moduleExports()
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(fset, exp.Importer(fset), "fixture/"+filepath.Base(dir), dir, goFiles)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	analysis.SortDiagnostics(fset, diags)

	// Group findings by file:line.
	got := make(map[string][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		got[key] = append(got[key], d.Message)
	}
	want := wantComments(t, pkg)

	for key, patterns := range want {
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %q", key, len(patterns), len(msgs), msgs)
			continue
		}
		for i, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, p, err)
			}
			if !re.MatchString(msgs[i]) {
				t.Errorf("%s: diagnostic %q does not match want %q", key, msgs[i], p)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %q", key, msgs)
		}
	}
}

// wantRE extracts backquoted or double-quoted patterns after "want".
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// wantComments collects `// want ...` expectations keyed by file:line.
func wantComments(t *testing.T, pkg *load.Package) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					out[key] = append(out[key], pat)
				}
				if len(out[key]) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", key, text)
				}
			}
		}
	}
	return out
}
