// Package analysis is a self-contained static-analysis framework for the
// repository's determinism and invariant lint suite (DESIGN.md §10).
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// holds a name, documentation and a Run function over a type-checked
// Pass — but is built entirely on the standard library (go/ast, go/types
// and export data produced by `go list -export`), because this module is
// deliberately dependency-free. Should the repo ever vendor x/tools, the
// analyzers port mechanically: only the Pass plumbing differs.
//
// Analyzers enforce conventions no compiler checks: byte-identical
// results for any -workers value, RNG streams drawn only from seeded
// rng.Split/parallel.MapSeeded derivations, probabilities kept in [0,1],
// and float comparisons routed through exact sentinels or the numeric
// tolerance helpers. Each analyzer documents a justification-comment
// escape hatch; see the analyzers subpackage.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"eventcap/internal/analysis/cfg"
)

// Analyzer describes one static check. Scoping — which packages the
// check applies to — is driver policy (see analyzers.For), not a
// property of the analyzer itself, so tests can run any analyzer over
// any fixture.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by -list: the rule,
	// why it exists, and the justification comment that suppresses it.
	Doc string

	// Run executes the check over one type-checked package, reporting
	// findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass holds one type-checked package and the reporting sink for a
// single analyzer execution.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding. The driver fills it in; analyzers
	// should call Reportf instead for formatting convenience.
	Report func(Diagnostic)

	// lineComments caches, per file, the text of every comment keyed by
	// the line it starts on. Built lazily by Justified.
	lineComments map[*token.File]map[int]string

	// cfgs caches control-flow graphs per function body (CFGOf).
	cfgs map[*ast.BlockStmt]*cfg.Graph
}

// CFGOf returns the control-flow graph of body (a FuncDecl or FuncLit
// body), built lazily and cached for the lifetime of the Pass. This is
// the hook through which path-sensitive analyzers reach the dataflow
// layer (DESIGN.md §15).
func (p *Pass) CFGOf(body *ast.BlockStmt) *cfg.Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*cfg.Graph)
	}
	g := cfg.New(body)
	p.cfgs[body] = g
	return g
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a finding at pos with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Justified reports whether the finding at pos is suppressed by a
// justification comment containing marker (for example "floateq:ok") on
// the same line or on the line immediately above. The comment must
// carry text beyond the marker itself — a bare marker is not a
// justification, it is an evasion — except when the marker already
// embeds its reason ("prob-invariant" style markers pass a one-word
// rationale in surrounding prose, so any non-empty trailing text
// qualifies there too; we simply require at least one further word).
func (p *Pass) Justified(pos token.Pos, marker string) bool {
	if !pos.IsValid() {
		return false
	}
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.lineComments == nil {
		p.lineComments = make(map[*token.File]map[int]string)
	}
	lines, ok := p.lineComments[tf]
	if !ok {
		lines = make(map[int]string)
		for _, f := range p.Files {
			if p.Fset.File(f.Pos()) != tf {
				continue
			}
			// A comment group justifies the line it ends on (trailing
			// comment) and the line immediately after (attached comment,
			// possibly spanning several lines).
			for _, cg := range f.Comments {
				var text string
				for _, c := range cg.List {
					text += " " + c.Text
				}
				end := p.Fset.Position(cg.End()).Line
				lines[end] += text
				lines[end+1] += text
			}
		}
		p.lineComments[tf] = lines
	}
	line := p.Fset.Position(pos).Line
	text, ok := lines[line]
	if !ok {
		return false
	}
	idx := strings.Index(text, marker)
	if idx < 0 {
		return false
	}
	rest := strings.TrimSpace(text[idx+len(marker):])
	// Marker plus at least one word of reason; a bare marker is an
	// evasion, not a justification.
	return rest != ""
}

// TypeOf returns the type of e, or nil when untyped (for robustness on
// partially checked fixtures).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// CalleeIn resolves a call expression to a package-level function (or
// method value) object and reports whether it is the named function of
// a package whose import path has the given suffix. pathSuffix is
// matched against the full import path with a path-boundary check, so
// "math/rand" does not match "foo/math/rand2".
func (p *Pass) CalleeIn(call *ast.CallExpr, pathSuffix, name string) bool {
	obj := p.callee(call)
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pathSuffix)
}

// callee returns the types.Object for the function being called, or nil
// for dynamic calls and built-ins.
func (p *Pass) callee(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// PathHasSuffix reports whether import path has the given suffix on a
// path-segment boundary ("eventcap/internal/rng" ends with
// "internal/rng" but not with "ternal/rng").
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// SortDiagnostics orders findings by file, line and column for stable
// output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
