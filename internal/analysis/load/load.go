// Package load type-checks packages of this module for the lint suite
// without golang.org/x/tools: it shells out to `go list -deps -export`
// for package metadata and compiler export data, parses the listed
// sources with go/parser, and type-checks each target against its
// dependencies' export data via the standard gc importer. Everything it
// needs ships with the toolchain, so the lint suite works in the same
// zero-dependency envelope as the rest of the module.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// ListedPackage is the subset of `go list -json` output we consume.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
}

// Exports maps import paths to compiler export-data files, as reported
// by `go list -export`.
type Exports map[string]string

// List runs `go list -deps -export -json` in dir over the given
// patterns and returns the non-standard (in-module) packages plus the
// export map covering the full dependency closure, standard library
// included.
func List(dir string, patterns ...string) ([]ListedPackage, Exports, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := make(Exports)
	var targets []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// Importer returns a types.Importer that resolves import paths through
// the export map. The fileset is shared with the parsed sources so
// positions inside imported packages stay coherent.
func (e Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Packages loads, parses and type-checks every in-module package matched
// by patterns, rooted at dir (typically the module root). Comments are
// retained for the justification-comment escape hatches.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exports.Importer(fset)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := Check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses the named files in dir and type-checks them as the
// package at importPath, resolving imports through imp.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
