package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// Geometric is the memoryless slotted distribution: α_i = p(1−p)^(i−1).
// It is the discrete analog of the Poisson arrival process the paper
// singles out as the case with constant hazard, where no activation
// policy can beat a fixed-rate one ("an important exception is the
// Poisson process, whose β_i's are constant", Section IV-B2).
type Geometric struct {
	p    float64
	name string
}

var _ Interarrival = (*Geometric)(nil)

// NewGeometric constructs a geometric distribution with per-slot success
// probability p in (0, 1].
func NewGeometric(p float64) (*Geometric, error) {
	if !(p > 0) || p > 1 {
		return nil, fmt.Errorf("dist: geometric probability must be in (0,1], got %g", p)
	}
	return &Geometric{p: p, name: fmt.Sprintf("Geometric(%g)", p)}, nil
}

// P returns the per-slot event probability.
func (g *Geometric) P() float64 { return g.p }

// PMF returns α_i.
func (g *Geometric) PMF(i int) float64 {
	if i < 1 {
		return 0
	}
	return g.p * math.Pow(1-g.p, float64(i-1))
}

// CDF returns F(i) = 1 − (1−p)^i.
func (g *Geometric) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	return 1 - math.Pow(1-g.p, float64(i))
}

// Hazard returns the constant hazard p.
func (g *Geometric) Hazard(i int) float64 {
	if i < 1 {
		return 0
	}
	return g.p
}

// Mean returns 1/p.
func (g *Geometric) Mean() float64 { return 1 / g.p }

// Sample draws by inversion.
func (g *Geometric) Sample(src *rng.Source) int {
	if g.p == 1 { // floateq:ok exact boundary constant: a sure success needs no draw
		return 1
	}
	u := src.Float64()
	x := math.Log1p(-u) / math.Log(1-g.p)
	i := int(math.Ceil(x))
	if i < 1 {
		i = 1
	}
	return i
}

// Name implements Interarrival.
func (g *Geometric) Name() string { return g.name }

// CacheKey implements Keyed; the name embeds the parameter at
// round-trip precision.
func (g *Geometric) CacheKey() string { return g.name }

// Deterministic is the distribution with all mass at a single slot count —
// a strictly periodic event process, the extreme of renewal memory.
type Deterministic struct {
	d    int
	name string
}

var _ Interarrival = (*Deterministic)(nil)

// NewDeterministic constructs the point distribution at d >= 1 slots.
func NewDeterministic(d int) (*Deterministic, error) {
	if d < 1 {
		return nil, fmt.Errorf("dist: deterministic interval must be >= 1, got %d", d)
	}
	return &Deterministic{d: d, name: fmt.Sprintf("Deterministic(%d)", d)}, nil
}

// PMF implements Interarrival.
func (d *Deterministic) PMF(i int) float64 {
	if i == d.d {
		return 1
	}
	return 0
}

// CDF implements Interarrival.
func (d *Deterministic) CDF(i int) float64 {
	if i >= d.d {
		return 1
	}
	return 0
}

// Hazard implements Interarrival.
func (d *Deterministic) Hazard(i int) float64 {
	if i == d.d {
		return 1
	}
	return 0
}

// Mean implements Interarrival.
func (d *Deterministic) Mean() float64 { return float64(d.d) }

// Sample implements Interarrival.
func (d *Deterministic) Sample(*rng.Source) int { return d.d }

// Name implements Interarrival.
func (d *Deterministic) Name() string { return d.name }

// CacheKey implements Keyed; the name embeds the slot count.
func (d *Deterministic) CacheKey() string { return d.name }

// UniformInt is uniform on the integer slots {lo, ..., hi}.
type UniformInt struct {
	lo, hi int
	name   string
}

var _ Interarrival = (*UniformInt)(nil)

// NewUniformInt constructs the uniform distribution on [lo, hi] slots,
// requiring 1 <= lo <= hi.
func NewUniformInt(lo, hi int) (*UniformInt, error) {
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("dist: invalid uniform range [%d, %d]", lo, hi)
	}
	return &UniformInt{lo: lo, hi: hi, name: fmt.Sprintf("UniformInt(%d,%d)", lo, hi)}, nil
}

func (u *UniformInt) span() float64 { return float64(u.hi - u.lo + 1) }

// PMF implements Interarrival.
func (u *UniformInt) PMF(i int) float64 {
	if i < u.lo || i > u.hi {
		return 0
	}
	return 1 / u.span()
}

// CDF implements Interarrival.
func (u *UniformInt) CDF(i int) float64 {
	switch {
	case i < u.lo:
		return 0
	case i >= u.hi:
		return 1
	default:
		return float64(i-u.lo+1) / u.span()
	}
}

// Hazard implements Interarrival.
func (u *UniformInt) Hazard(i int) float64 { return hazardFromCDF(u, i) }

// Mean implements Interarrival.
func (u *UniformInt) Mean() float64 { return float64(u.lo+u.hi) / 2 }

// Sample implements Interarrival.
func (u *UniformInt) Sample(src *rng.Source) int {
	return u.lo + src.Intn(u.hi-u.lo+1)
}

// Name implements Interarrival.
func (u *UniformInt) Name() string { return u.name }

// CacheKey implements Keyed; the name embeds both bounds.
func (u *UniformInt) CacheKey() string { return u.name }
