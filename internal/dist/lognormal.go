package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// LogNormal is the slotted discretization of the log-normal distribution
// (ln X ~ N(mu, sigma²)). Its hazard rises to a peak and then decays — a
// shape between the paper's Weibull (monotone rising) and Pareto
// (monotone falling) workloads, so it exercises clustering policies whose
// hot region sits strictly inside the support.
type LogNormal struct {
	mu, sigma float64
	mean      float64
	name      string
}

var _ Interarrival = (*LogNormal)(nil)

// NewLogNormal constructs the distribution with log-mean mu and log-std
// sigma > 0.
func NewLogNormal(mu, sigma float64) (*LogNormal, error) {
	if !(sigma > 0) || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return nil, fmt.Errorf("dist: invalid LogNormal(mu=%g, sigma=%g)", mu, sigma)
	}
	l := &LogNormal{
		mu:    mu,
		sigma: sigma,
		name:  fmt.Sprintf("LogNormal(%g,%g)", mu, sigma),
	}
	l.mean = meanFromSurvival(l.CDF, 1<<22)
	return l, nil
}

func (l *LogNormal) continuousCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.mu) / (l.sigma * math.Sqrt2)
	return 0.5 * (1 + math.Erf(z))
}

// CDF implements Interarrival.
func (l *LogNormal) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	return l.continuousCDF(float64(i))
}

// PMF implements Interarrival.
func (l *LogNormal) PMF(i int) float64 {
	if i < 1 {
		return 0
	}
	v := l.CDF(i) - l.CDF(i-1)
	if v < 0 {
		return 0
	}
	return v
}

// Hazard implements Interarrival.
func (l *LogNormal) Hazard(i int) float64 { return hazardFromCDF(l, i) }

// Mean implements Interarrival.
func (l *LogNormal) Mean() float64 { return l.mean }

// Sample draws by exponentiating a normal variate and rounding up.
func (l *LogNormal) Sample(src *rng.Source) int {
	x := math.Exp(l.mu + l.sigma*src.NormFloat64())
	i := int(math.Ceil(x))
	if i < 1 {
		i = 1
	}
	return i
}

// Name implements Interarrival.
func (l *LogNormal) Name() string { return l.name }

// CacheKey implements Keyed; the name embeds both parameters at
// round-trip precision.
func (l *LogNormal) CacheKey() string { return l.name }
