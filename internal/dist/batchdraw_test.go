package dist

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// TestSampleBernoulliBatchBasics pins the deterministic invariants on a
// few fixed inputs (the fuzz target below explores the space).
func TestSampleBernoulliBatchBasics(t *testing.T) {
	out := make([]bool, 64)
	if k := SampleBernoulliBatch(rng.New(1, 1), 0, out); k != 0 {
		t.Errorf("p=0 produced %d successes", k)
	}
	for i, v := range out {
		if v {
			t.Fatalf("p=0 left position %d set", i)
		}
	}
	if k := SampleBernoulliBatch(rng.New(1, 1), 1, out); k != 64 {
		t.Errorf("p=1 produced %d successes, want 64", k)
	}
	for i, v := range out {
		if !v {
			t.Fatalf("p=1 left position %d clear", i)
		}
	}
	if k := SampleBernoulliBatch(rng.New(1, 1), 0.5, nil); k != 0 {
		t.Errorf("empty batch produced %d successes", k)
	}
}

// FuzzSampleBernoulliBatch is the batch-vs-sequential equivalence
// harness: a batched draw must be a pure function of the source state,
// internally consistent (returned count == set positions), and
// distributed like len(out) independent per-slot Bernoulli draws — the
// count mean must track n·p as tightly as a sequential per-slot sampler's
// does, and each position must be hit with frequency p (exchangeability:
// Floyd's assignment cannot favor any slot). Every input is
// deterministic, so a bound violation is a sampler bug, not flake.
func FuzzSampleBernoulliBatch(f *testing.F) {
	f.Add(uint64(1), 16, 0.3)
	f.Add(uint64(2), 1, 0.5)
	f.Add(uint64(3), 64, 0.001) // near-empty subsets
	f.Add(uint64(4), 64, 0.999) // near-full subsets
	f.Add(uint64(5), 48, 0.0)   // degenerate p = 0
	f.Add(uint64(6), 48, 1.0)   // degenerate p = 1
	f.Add(uint64(7), 0, 0.5)    // empty batch
	f.Add(uint64(8), 32, math.NaN())
	f.Add(uint64(9), 2048, 0.25) // count via mode inversion
	f.Fuzz(func(t *testing.T, seed uint64, n int, p float64) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 12

		out := make([]bool, n)
		k := SampleBernoulliBatch(rng.New(seed, 0xba7c), p, out)
		redo := make([]bool, n)
		k2 := SampleBernoulliBatch(rng.New(seed, 0xba7c), p, redo)
		if k != k2 {
			t.Fatalf("count not deterministic: %d vs %d", k, k2)
		}
		var pop int64
		for i := range out {
			if out[i] != redo[i] {
				t.Fatalf("assignment not deterministic at position %d", i)
			}
			if out[i] {
				pop++
			}
		}
		if pop != k {
			t.Fatalf("returned count %d but %d positions set", k, pop)
		}
		if k < 0 || k > int64(n) {
			t.Fatalf("count %d outside [0, %d]", k, n)
		}
		switch {
		case n == 0 || p <= 0 || math.IsNaN(p):
			if k != 0 {
				t.Fatalf("degenerate (n=%d, p=%g) must yield 0, got %d", n, p, k)
			}
		case p >= 1:
			if k != int64(n) {
				t.Fatalf("sure success (n=%d, p=%g) must yield n, got %d", n, p, k)
			}
		}

		if !(p > 0) || p >= 1 || n < 1 || n > 256 {
			return
		}

		// Table-backed variant: same invariants through BinomialTable.
		tbl := NewBinomialTable(p, n)
		tblOut := make([]bool, n)
		tk := tbl.SampleBatch(rng.New(seed, 0x7ab1e), tblOut)
		var tpop int64
		for _, v := range tblOut {
			if v {
				tpop++
			}
		}
		if tpop != tk || tk < 0 || tk > int64(n) {
			t.Fatalf("table batch inconsistent: count %d, %d set", tk, tpop)
		}

		if n > 64 {
			return
		}

		// Moment equivalence, batch vs sequential: across m rounds the
		// batch count mean and the per-slot sequential sum mean must both
		// sit within a 12-sigma CLT band of n·p, and every position's hit
		// frequency within the same band of p.
		const m = 512
		var sumBatch, sumSeq float64
		hits := make([]float64, n)
		bSrc := rng.New(seed, 0x5a)
		sSrc := rng.New(seed, 0x7b)
		for i := 0; i < m; i++ {
			c := SampleBernoulliBatch(bSrc, p, out)
			sumBatch += float64(c)
			for j := range out {
				if out[j] {
					hits[j]++
				}
			}
			var seq int64
			for j := 0; j < n; j++ {
				if sSrc.Bernoulli(p) {
					seq++
				}
			}
			sumSeq += float64(seq)
		}
		mean := float64(n) * p
		sigma := math.Sqrt(float64(n) * p * (1 - p))
		tol := 12*sigma/math.Sqrt(m) + 1e-9
		if d := math.Abs(sumBatch/m - mean); d > tol {
			t.Fatalf("batch count mean drifted: |%g - %g| = %g > %g (n=%d, p=%g)", sumBatch/m, mean, d, tol, n, p)
		}
		if d := math.Abs(sumSeq/m - mean); d > tol {
			t.Fatalf("sequential mean drifted: |%g - %g| = %g > %g (n=%d, p=%g)", sumSeq/m, mean, d, tol, n, p)
		}
		posTol := 12*math.Sqrt(p*(1-p))/math.Sqrt(m) + 1e-9
		for j, h := range hits {
			if d := math.Abs(h/m - p); d > posTol {
				t.Fatalf("position %d hit frequency drifted: |%g - %g| = %g > %g (n=%d)", j, h/m, p, d, posTol, n)
			}
		}
	})
}
