package dist

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// FuzzSampleBinomial cross-checks the exact binomial sampler against
// the table-based CDF inversion and the distribution's moments:
//
//   - support and edge behavior are exact invariants;
//   - the sampler is a pure function of the source state (determinism);
//   - the table's binary-search inversion must agree bit-for-bit with a
//     linear scan of the same CDF row (same single uniform);
//   - empirical means of both samplers stay within a wide concentration
//     bound of the exact mean n·p — every input is deterministic, so a
//     bound violation is a real sampler bug, not flake.
func FuzzSampleBinomial(f *testing.F) {
	f.Add(uint64(1), int64(10), 0.3)
	f.Add(uint64(2), int64(1000), 0.001)   // geometric-gaps path
	f.Add(uint64(3), int64(5000), 0.4)     // mode-inversion path
	f.Add(uint64(4), int64(7), 0.999)      // symmetry path (p > 0.5)
	f.Add(uint64(5), int64(64), 0.0)       // degenerate p = 0
	f.Add(uint64(6), int64(64), 1.0)       // degenerate p = 1
	f.Add(uint64(7), int64(0), 0.5)        // empty support
	f.Add(uint64(8), int64(32), math.NaN())
	f.Fuzz(func(t *testing.T, seed uint64, n int64, p float64) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 16

		r1 := SampleBinomial(rng.New(seed, 0xb1), n, p)
		r2 := SampleBinomial(rng.New(seed, 0xb1), n, p)
		if r1 != r2 {
			t.Fatalf("SampleBinomial(seed=%d, n=%d, p=%g) not deterministic: %d vs %d", seed, n, p, r1, r2)
		}
		if r1 < 0 || r1 > n {
			t.Fatalf("SampleBinomial(n=%d, p=%g) = %d outside [0, n]", n, p, r1)
		}
		switch {
		case n == 0 || p <= 0 || math.IsNaN(p):
			if r1 != 0 {
				t.Fatalf("degenerate case (n=%d, p=%g) must yield 0, got %d", n, p, r1)
			}
		case p >= 1:
			if r1 != n {
				t.Fatalf("sure success (n=%d, p=%g) must yield n, got %d", n, p, r1)
			}
		}

		if !(p > 0) || p >= 1 || n < 1 || n > 512 {
			return
		}

		// Table inversion vs. linear scan of the identical CDF row, fed
		// the identical uniform: the binary search is just an index
		// lookup, so any disagreement is a real inversion bug.
		tbl := NewBinomialTable(p, int(n))
		uSrc := rng.New(seed, 0xcdf)
		u := uSrc.Float64()
		got := tbl.Sample(rng.New(seed, 0xcdf), n)
		row := tbl.cum[n-1]
		want := int64(len(row) - 1)
		for k, c := range row {
			if c >= u {
				want = int64(k)
				break
			}
		}
		if got != want {
			t.Fatalf("BinomialTable.Sample(n=%d, p=%g, u=%g) = %d, linear CDF inversion gives %d", n, p, u, got, want)
		}

		// Moment check: empirical means of both samplers against the
		// exact mean, Hoeffding-style bound scaled to the support.
		const m = 256
		var sumS, sumT float64
		sSrc := rng.New(seed, 0x5a)
		tSrc := rng.New(seed, 0x7b)
		for i := 0; i < m; i++ {
			sumS += float64(SampleBinomial(sSrc, n, p))
			sumT += float64(tbl.Sample(tSrc, n))
		}
		mean := float64(n) * p
		sigma := math.Sqrt(float64(n) * p * (1 - p))
		tol := 12*sigma/math.Sqrt(m) + 1e-9
		if d := math.Abs(sumS/m - mean); d > tol {
			t.Fatalf("SampleBinomial mean drifted: |%g - %g| = %g > %g (n=%d, p=%g)", sumS/m, mean, d, tol, n, p)
		}
		if d := math.Abs(sumT/m - mean); d > tol {
			t.Fatalf("BinomialTable mean drifted: |%g - %g| = %g > %g (n=%d, p=%g)", sumT/m, mean, d, tol, n, p)
		}
	})
}
