package dist

import (
	"fmt"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

// AliasSampler draws from an arbitrary finite PMF in O(1) time per draw
// using Vose's alias method. Construction is O(n).
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler builds a sampler over outcomes 0..len(weights)-1 with
// probability proportional to weights. Weights must be nonnegative with a
// positive sum.
func NewAliasSampler(weights []float64) (*AliasSampler, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: alias sampler needs at least one weight")
	}
	total := numeric.Sum(weights)
	if !(total > 0) {
		return nil, fmt.Errorf("dist: alias sampler weights sum to %g", total)
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative weight %g at index %d", w, i)
		}
		scaled[i] = w * float64(n) / total
	}

	s := &AliasSampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through roundoff; treat as certain.
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s, nil
}

// Sample draws an outcome index.
func (s *AliasSampler) Sample(src *rng.Source) int {
	i := src.Intn(len(s.prob))
	if src.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// Len returns the number of outcomes.
func (s *AliasSampler) Len() int { return len(s.prob) }
