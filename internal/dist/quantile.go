package dist

import (
	"eventcap/internal/rng"
)

// InverseSampler is implemented by distributions whose Sample consumes
// exactly one uniform and maps it to a gap through a deterministic,
// nondecreasing function of u — the single-draw inversion samplers
// (Weibull, Pareto). Exposing that map lets batch engines precompute an
// exact threshold table (QuantileTable) that reproduces Sample draw for
// draw without the per-draw transcendentals.
//
// The contract, relied on for byte-identical replay:
//
//	Sample(src) == SampleU(src.Float64())   (consuming one uniform)
//	u <= v  =>  SampleU(u) <= SampleU(v)    (nondecreasing on the u grid)
type InverseSampler interface {
	Interarrival
	// SampleU returns the gap Sample would produce had its single uniform
	// draw returned u in [0, 1).
	SampleU(u float64) int
}

// quantileGridBits is the precision of rng.Source.Float64: every uniform
// is k/2^53 for integer k, so threshold bisection over that grid locates
// the exact float64 boundary between adjacent gaps.
const quantileGridBits = 53

// quantileMaxGaps caps the number of tabulated gap values. Beyond the
// table the (vanishing) tail mass falls back to direct SampleU
// evaluation, keeping the build cost bounded for heavy-tailed
// distributions whose largest representable gap is enormous.
const quantileMaxGaps = 1024

// quantileGuideSize is the number of buckets in the O(1) lookup guide.
const quantileGuideSize = 1024

// QuantileTable precomputes the exact u-thresholds of an InverseSampler
// so each draw costs one uniform and a short table scan instead of the
// sampler's logarithms and powers. Sample is byte-identical to the
// underlying sampler's Sample by construction: cut[j] is the smallest
// value on the 2^53 uniform grid whose gap exceeds minGap+j, found by
// bisecting SampleU itself.
//
// The table is immutable after construction and safe for concurrent
// readers — one table serves every replication of a batch.
type QuantileTable struct {
	src InverseSampler
	// minGap is SampleU(0), the smallest producible gap.
	minGap int
	// cut[j] is the smallest grid uniform u with SampleU(u) > minGap+j;
	// entries are nondecreasing. A draw's gap is minGap plus the number
	// of cuts at or below u; draws beyond the last cut fall back to
	// SampleU.
	cut []float64
	// guide[b] is a starting index into cut for uniforms near b/guideSize;
	// the scan corrects in both directions, so the guide only affects
	// speed, never the result.
	guide []int32
}

// NewQuantileTable builds the threshold table for s. The build bisects
// SampleU once per tabulated gap (~53 evaluations each); for the paper's
// workloads that is well under a millisecond, amortized across a whole
// batch.
func NewQuantileTable(s InverseSampler) *QuantileTable {
	const grid = uint64(1) << quantileGridBits
	t := &QuantileTable{src: s, minGap: s.SampleU(0)}
	maxU := float64(grid-1) / float64(grid)
	top := s.SampleU(maxU)
	if top-t.minGap > quantileMaxGaps {
		top = t.minGap + quantileMaxGaps
	}
	if top <= t.minGap {
		// Degenerate support: every uniform maps to minGap (or the far
		// tail handled by the fallback); nothing to tabulate.
		top = t.minGap
	}
	t.cut = make([]float64, 0, top-t.minGap)
	lo := uint64(0) // invariant: SampleU(lo/grid) <= g for the current g
	for g := t.minGap; g < top; g++ {
		// Find the smallest k in (lo, grid) with SampleU(k/grid) > g.
		hi := grid - 1
		if s.SampleU(float64(hi)/float64(grid)) <= g {
			// The whole grid stays at or below g (cap rounding); every
			// remaining cut would sit past the grid, so stop here.
			break
		}
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if s.SampleU(float64(mid)/float64(grid)) > g {
				hi = mid
			} else {
				lo = mid
			}
		}
		t.cut = append(t.cut, float64(hi)/float64(grid))
		lo = hi - 1
	}
	t.guide = make([]int32, quantileGuideSize+1)
	j := 0
	for b := 0; b <= quantileGuideSize; b++ {
		low := float64(b) / quantileGuideSize
		for j < len(t.cut) && t.cut[j] <= low {
			j++
		}
		t.guide[b] = int32(j)
	}
	return t
}

// Sample draws a gap, consuming exactly one uniform from src and
// returning exactly what t's underlying sampler would have returned for
// that uniform.
func (t *QuantileTable) Sample(src *rng.Source) int {
	return t.Gap(src.Float64())
}

// Gap maps one uniform to its gap (the tabulated form of SampleU).
func (t *QuantileTable) Gap(u float64) int {
	j := int(t.guide[int(u*quantileGuideSize)])
	for j < len(t.cut) && u >= t.cut[j] {
		j++
	}
	for j > 0 && u < t.cut[j-1] {
		j--
	}
	if j == len(t.cut) && len(t.cut) > 0 && u >= t.cut[j-1] {
		// Beyond the tabulated range: the far tail (or a capped build)
		// falls back to direct evaluation.
		return t.src.SampleU(u)
	}
	return t.minGap + j
}

// AsInverseSampler returns d as an InverseSampler when its Sample is a
// single-uniform inversion, nil otherwise — the eligibility probe batch
// engines use before building a QuantileTable.
func AsInverseSampler(d Interarrival) InverseSampler {
	if s, ok := d.(InverseSampler); ok {
		return s
	}
	return nil
}
