package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// NegBinomial is the discrete Erlang: the sum of k independent
// Geometric(p) stages, supported on slots k, k+1, ... Its hazard rises
// from 0 toward p, giving an IFR family that is exactly computable in
// closed form — a useful test bed between the deterministic and
// geometric extremes (k = 1 recovers Geometric(p); k → ∞ with k/p fixed
// approaches Deterministic).
type NegBinomial struct {
	k    int
	p    float64
	mean float64
	name string

	pmf []float64 // pmf[n] = P(X = k+n), precomputed to negligible tail
	cdf []float64
}

var _ Interarrival = (*NegBinomial)(nil)

// NewNegBinomial constructs the distribution with k >= 1 stages of
// success probability p in (0, 1]. The PMF table is precomputed at
// construction so the value methods are read-only (and concurrency-safe).
func NewNegBinomial(k int, p float64) (*NegBinomial, error) {
	if k < 1 {
		return nil, fmt.Errorf("dist: NegBinomial needs k >= 1 stages, got %d", k)
	}
	if !(p > 0) || p > 1 {
		return nil, fmt.Errorf("dist: NegBinomial stage probability must be in (0,1], got %g", p)
	}
	nb := &NegBinomial{
		k:    k,
		p:    p,
		mean: float64(k) / p,
		name: fmt.Sprintf("NegBinomial(k=%d,p=%g)", k, p),
	}
	// Stable recurrence from P(X = k) = p^k:
	// pmf(slot+1)/pmf(slot) = (slot/(slot+1−k))·(1−p).
	cur := math.Pow(p, float64(k))
	cum := cur
	nb.pmf = append(nb.pmf, cur)
	nb.cdf = append(nb.cdf, cum)
	for slot := k; 1-cum > 1e-15 && len(nb.pmf) < 1<<22; slot++ {
		cur *= float64(slot) / float64(slot+1-k) * (1 - p)
		cum += cur
		nb.pmf = append(nb.pmf, cur)
		nb.cdf = append(nb.cdf, cum)
	}
	return nb, nil
}

// PMF implements Interarrival.
func (nb *NegBinomial) PMF(i int) float64 {
	n := i - nb.k
	if n < 0 || n >= len(nb.pmf) {
		return 0
	}
	return nb.pmf[n]
}

// CDF implements Interarrival.
func (nb *NegBinomial) CDF(i int) float64 {
	n := i - nb.k
	switch {
	case n < 0:
		return 0
	case n >= len(nb.cdf):
		return 1
	default:
		v := nb.cdf[n]
		if v > 1 {
			return 1
		}
		return v
	}
}

// Hazard implements Interarrival.
func (nb *NegBinomial) Hazard(i int) float64 { return hazardFromCDF(nb, i) }

// Mean implements Interarrival: k/p exactly.
func (nb *NegBinomial) Mean() float64 { return nb.mean }

// Sample implements Interarrival: sum of k geometric stage draws.
func (nb *NegBinomial) Sample(src *rng.Source) int {
	total := 0
	for s := 0; s < nb.k; s++ {
		if nb.p == 1 { // floateq:ok exact boundary constant: a sure success needs no draw
			total++
			continue
		}
		u := src.Float64()
		g := int(math.Ceil(math.Log1p(-u) / math.Log(1-nb.p)))
		if g < 1 {
			g = 1
		}
		total += g
	}
	return total
}

// Name implements Interarrival.
func (nb *NegBinomial) Name() string { return nb.name }

// CacheKey implements Keyed; the name embeds both parameters at
// round-trip precision.
func (nb *NegBinomial) CacheKey() string { return nb.name }

// StageCount returns k.
func (nb *NegBinomial) StageCount() int { return nb.k }
