package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// Weibull is the slotted discretization of the Weibull distribution
// W(η1, η2) with scale η1 and shape η2, the paper's primary workload
// (Fig. 3, 4(a), 6 use W(40, 3)). Shape > 1 gives an increasing hazard —
// the "hot region" structure the clustering policy exploits.
type Weibull struct {
	scale, shape float64
	mean         float64
	name         string
}

var _ Interarrival = (*Weibull)(nil)

// NewWeibull constructs W(scale, shape). Both parameters must be positive.
func NewWeibull(scale, shape float64) (*Weibull, error) {
	if !(scale > 0) || !(shape > 0) {
		return nil, fmt.Errorf("dist: Weibull parameters must be positive, got (%g, %g)", scale, shape)
	}
	w := &Weibull{
		scale: scale,
		shape: shape,
		name:  fmt.Sprintf("Weibull(%g,%g)", scale, shape),
	}
	w.mean = meanFromSurvival(w.CDF, 1<<22)
	return w, nil
}

// Scale returns η1.
func (w *Weibull) Scale() float64 { return w.scale }

// Shape returns η2.
func (w *Weibull) Shape() float64 { return w.shape }

func (w *Weibull) continuousCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.scale, w.shape))
}

// CDF returns F(i) of the discretized distribution.
func (w *Weibull) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	return w.continuousCDF(float64(i))
}

// PMF returns α_i = F(i) − F(i−1).
func (w *Weibull) PMF(i int) float64 {
	if i < 1 {
		return 0
	}
	// Difference of survivals is better conditioned in the far tail than
	// difference of CDFs.
	si := math.Exp(-math.Pow(float64(i)/w.scale, w.shape))
	sim1 := 1.0
	if i > 1 {
		sim1 = math.Exp(-math.Pow(float64(i-1)/w.scale, w.shape))
	}
	return sim1 - si
}

// Hazard returns β_i.
func (w *Weibull) Hazard(i int) float64 {
	if i < 1 {
		return 0
	}
	// β_i = 1 − S(i)/S(i−1) computed in log space for stability.
	expI := math.Pow(float64(i)/w.scale, w.shape)
	expIm1 := 0.0
	if i > 1 {
		expIm1 = math.Pow(float64(i-1)/w.scale, w.shape)
	}
	return 1 - math.Exp(expIm1-expI)
}

// Mean returns μ of the discretized distribution.
func (w *Weibull) Mean() float64 { return w.mean }

// Sample draws an inter-arrival time via inversion: ceil(η1·(−ln u)^(1/η2)).
func (w *Weibull) Sample(src *rng.Source) int {
	return w.SampleU(src.Float64())
}

// SampleU implements InverseSampler: the deterministic u → gap map behind
// Sample. −log1p(−u) and the power are both nondecreasing in u, so the
// map satisfies the InverseSampler monotonicity contract.
func (w *Weibull) SampleU(u float64) int {
	return ceilGap(w.scale * math.Pow(-math.Log1p(-u), 1/w.shape))
}

var _ InverseSampler = (*Weibull)(nil)

// Name implements Interarrival.
func (w *Weibull) Name() string { return w.name }

// CacheKey implements Keyed; the name embeds both parameters at
// round-trip precision.
func (w *Weibull) CacheKey() string { return w.name }
