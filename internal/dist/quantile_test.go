package dist

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

func quantileSamplers(t *testing.T) []InverseSampler {
	t.Helper()
	w1, err := NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWeibull(0.9, 0.7) // minGap 1, short table
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPareto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPareto(1.5, 1) // heavy tail: table capped, fallback live
	if err != nil {
		t.Fatal(err)
	}
	return []InverseSampler{w1, w2, p1, p2}
}

// TestQuantileTableMatchesSampleUAtThresholds is the byte-identity proof
// the batch engine leans on: at every tabulated cut — the exact grid
// uniform where the gap increments — and for several grid neighbors on
// each side, Gap must agree with a direct SampleU evaluation. The cuts
// are where rounding in the transcendental quantile could plausibly
// disagree with the bisection, so sweeping their neighborhoods covers the
// only risky inputs; a mismatch anywhere else would imply SampleU is not
// nondecreasing on the grid.
func TestQuantileTableMatchesSampleUAtThresholds(t *testing.T) {
	const grid = uint64(1) << quantileGridBits
	for _, s := range quantileSamplers(t) {
		qt := NewQuantileTable(s)
		check := func(k uint64) {
			u := float64(k) / float64(grid)
			if got, want := qt.Gap(u), s.SampleU(u); got != want {
				t.Fatalf("%s: Gap(%v) = %d, SampleU gives %d", s.Name(), u, got, want)
			}
		}
		check(0)
		check(grid - 1)
		for _, cut := range qt.cut {
			k := uint64(math.Round(cut * float64(grid)))
			for d := -2; d <= 2; d++ {
				n := int64(k) + int64(d)
				if n < 0 || n >= int64(grid) {
					continue
				}
				check(uint64(n))
			}
		}
		if len(qt.cut) == 0 {
			t.Fatalf("%s: table tabulated no cuts", s.Name())
		}
	}
}

// TestQuantileTableStreamEquivalence drives the table and the sampler
// from identical source states: every draw must match bit for bit, which
// is the form of the contract the batch engine actually uses.
func TestQuantileTableStreamEquivalence(t *testing.T) {
	for _, s := range quantileSamplers(t) {
		qt := NewQuantileTable(s)
		a := rng.New(99, 0x0a)
		b := rng.New(99, 0x0a)
		for i := 0; i < 200_000; i++ {
			got, want := qt.Sample(a), s.Sample(b)
			if got != want {
				t.Fatalf("%s draw %d: table %d, sampler %d", s.Name(), i, got, want)
			}
		}
	}
}

// TestQuantileTableTailFallback forces uniforms beyond the last cut —
// including the largest grid value — where the table must delegate to
// SampleU rather than clamp to the tabulated range.
func TestQuantileTableTailFallback(t *testing.T) {
	const grid = uint64(1) << quantileGridBits
	p, err := NewPareto(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	qt := NewQuantileTable(p)
	if len(qt.cut) != quantileMaxGaps {
		t.Fatalf("heavy tail should cap the table at %d cuts, got %d", quantileMaxGaps, len(qt.cut))
	}
	last := qt.cut[len(qt.cut)-1]
	for _, u := range []float64{last, (last + 1) / 2, float64(grid-1) / float64(grid)} {
		got, want := qt.Gap(u), p.SampleU(u)
		if got != want {
			t.Fatalf("tail u=%v: Gap %d, SampleU %d", u, got, want)
		}
		if want <= qt.minGap+len(qt.cut)-1 {
			t.Fatalf("tail u=%v unexpectedly inside the tabulated range (gap %d)", u, want)
		}
	}
}

// TestAsInverseSampler checks the eligibility probe: the inversion
// samplers expose their map, table-backed distributions do not.
func TestAsInverseSampler(t *testing.T) {
	w, err := NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if AsInverseSampler(w) == nil {
		t.Error("Weibull should be an InverseSampler")
	}
	e, err := NewEmpirical([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if AsInverseSampler(e) != nil {
		t.Error("Empirical must not probe as an InverseSampler")
	}
}

// FuzzQuantileTableGap hammers arbitrary grid uniforms against direct
// SampleU evaluation across the inversion samplers; any disagreement is a
// real table bug because both sides are deterministic.
func FuzzQuantileTableGap(f *testing.F) {
	f.Add(uint64(0), 40.0, 3.0, true)
	f.Add(uint64(1<<53-1), 40.0, 3.0, true)
	f.Add(uint64(1<<52), 2.0, 10.0, false)
	f.Add(uint64(12345678901), 1.5, 1.0, false)
	f.Fuzz(func(t *testing.T, k uint64, a, b float64, weibull bool) {
		const grid = uint64(1) << quantileGridBits
		k %= grid
		var s InverseSampler
		if weibull {
			w, err := NewWeibull(clampParam(a, 0.1, 500), clampParam(b, 0.2, 8))
			if err != nil {
				t.Skip()
			}
			s = w
		} else {
			p, err := NewPareto(clampParam(a, 1.05, 16), clampParam(b, 0.1, 500))
			if err != nil {
				t.Skip()
			}
			s = p
		}
		qt := NewQuantileTable(s)
		u := float64(k) / float64(grid)
		if got, want := qt.Gap(u), s.SampleU(u); got != want {
			t.Fatalf("%s: Gap(%v) = %d, SampleU gives %d", s.Name(), u, got, want)
		}
	})
}

// clampParam maps an arbitrary fuzzed float into [lo, hi], folding
// non-finite values to lo.
func clampParam(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	v = math.Abs(v)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
