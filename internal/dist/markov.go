package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// MarkovRenewal is the renewal process induced by a two-state Markov
// event chain with a = P(event in t | event in t−1) and
// b = P(no event in t | no event in t−1) — the model of Jaggi, Kar and
// Krishnamurthy [6] that the paper compares against in Fig. 5. Measuring
// X as the gap between consecutive events:
//
//	P(X = 1) = a
//	P(X = k) = (1−a)·b^(k−2)·(1−b),  k >= 2
//
// so the hazard is β_1 = a and β_k = 1−b for k >= 2. The paper's
// transformation (Section VI-A2) is exactly this construction.
type MarkovRenewal struct {
	a, b float64
	name string
}

var _ Interarrival = (*MarkovRenewal)(nil)

// NewMarkovRenewal constructs the renewal view of the chain (a, b).
// Requires a in (0, 1] and b in [0, 1).
func NewMarkovRenewal(a, b float64) (*MarkovRenewal, error) {
	if !(a > 0) || a > 1 {
		return nil, fmt.Errorf("dist: Markov a must be in (0,1], got %g", a)
	}
	if b < 0 || b >= 1 {
		return nil, fmt.Errorf("dist: Markov b must be in [0,1), got %g", b)
	}
	return &MarkovRenewal{a: a, b: b, name: fmt.Sprintf("MarkovRenewal(a=%g,b=%g)", a, b)}, nil
}

// A returns P(event | event last slot).
func (m *MarkovRenewal) A() float64 { return m.a }

// B returns P(no event | no event last slot).
func (m *MarkovRenewal) B() float64 { return m.b }

// PMF implements Interarrival.
func (m *MarkovRenewal) PMF(i int) float64 {
	switch {
	case i < 1:
		return 0
	case i == 1:
		return m.a
	default:
		return (1 - m.a) * math.Pow(m.b, float64(i-2)) * (1 - m.b)
	}
}

// CDF implements Interarrival. 1 − F(i) = (1−a)·b^(i−1) for i >= 1.
func (m *MarkovRenewal) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	return 1 - (1-m.a)*math.Pow(m.b, float64(i-1))
}

// Hazard implements Interarrival: a for slot 1, 1−b afterwards.
func (m *MarkovRenewal) Hazard(i int) float64 {
	switch {
	case i < 1:
		return 0
	case i == 1:
		return m.a
	default:
		return 1 - m.b
	}
}

// Mean returns a + (1−a)(2−b)/(1−b).
func (m *MarkovRenewal) Mean() float64 {
	return m.a + (1-m.a)*(2-m.b)/(1-m.b)
}

// Sample implements Interarrival: Bernoulli(a) for a gap of one slot,
// otherwise 1 + a geometric(1−b) run of event-free slots.
func (m *MarkovRenewal) Sample(src *rng.Source) int {
	if src.Bernoulli(m.a) {
		return 1
	}
	if m.b == 0 {
		return 2
	}
	u := src.Float64()
	run := int(math.Ceil(math.Log1p(-u) / math.Log(m.b)))
	if run < 1 {
		run = 1
	}
	return 1 + run
}

// Name implements Interarrival.
func (m *MarkovRenewal) Name() string { return m.name }

// CacheKey implements Keyed; the name embeds both chain parameters at
// round-trip precision.
func (m *MarkovRenewal) CacheKey() string { return m.name }

// EventRate returns the stationary fraction of slots containing an event,
// (1−b)/(2−a−b), useful for calibrating energy-balanced baselines.
func (m *MarkovRenewal) EventRate() float64 {
	return (1 - m.b) / (2 - m.a - m.b)
}
