package dist

import (
	"testing"

	"eventcap/internal/rng"
	"eventcap/internal/stats"
)

// TestSamplersPassChiSquare runs a goodness-of-fit test of every
// implementation's Sample against its own PMF: the strongest sampler
// validation in the suite (frequency tests only check cells one at a
// time; chi-square checks the joint shape).
func TestSamplersPassChiSquare(t *testing.T) {
	src := rng.New(4242, 0)
	for _, d := range allDistributions(t) {
		// Build cells covering ~99.9% of the mass, tail pooled.
		var support int
		for support = 1; support < 100000 && 1-d.CDF(support) > 1e-3; support++ {
		}
		probs := make([]float64, support+1)
		for i := 1; i <= support; i++ {
			probs[i-1] = d.PMF(i)
		}
		probs[support] = 1 - d.CDF(support) // tail cell
		// A point mass (Deterministic) has a single cell: chi-square is
		// vacuous there, and the sampler is already exactness-tested.
		atoms := 0
		for _, p := range probs {
			if p > 1e-9 {
				atoms++
			}
		}
		if atoms < 2 {
			continue
		}
		counts := make([]int64, support+1)
		const n = 200000
		for k := 0; k < n; k++ {
			x := d.Sample(src)
			if x <= support {
				counts[x-1]++
			} else {
				counts[support]++
			}
		}
		stat, dof, ok, err := stats.ChiSquare(counts, probs)
		if err != nil {
			t.Errorf("%s: %v", d.Name(), err)
			continue
		}
		if !ok {
			t.Errorf("%s: chi-square rejects the sampler (stat %.2f, dof %d)", d.Name(), stat, dof)
		}
	}
}

// TestAliasSamplerPassesChiSquare applies the same test to the alias
// method over an irregular weight vector.
func TestAliasSamplerPassesChiSquare(t *testing.T) {
	weights := []float64{5, 0.5, 12, 3, 0.1, 7, 1, 1, 9, 0.4}
	s, err := NewAliasSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / total
	}
	counts := make([]int64, len(weights))
	src := rng.New(777, 1)
	const n = 300000
	for k := 0; k < n; k++ {
		counts[s.Sample(src)]++
	}
	stat, dof, ok, err := stats.ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("alias sampler rejected (stat %.2f, dof %d)", stat, dof)
	}
}
