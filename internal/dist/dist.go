// Package dist models the slotted inter-arrival distributions that drive
// the paper's renewal event processes.
//
// Time is slotted; an inter-arrival time X is a positive integer number of
// slots. Following the paper's Section III notation:
//
//	α_i = P(X = i)               (PMF)
//	F(i) = P(X <= i)             (CDF)
//	β_i = P(X = i | X > i-1)     (discrete hazard; the paper's Eq. (3))
//	μ   = E[X]                   (mean inter-arrival time)
//
// Continuous distributions from the paper (Weibull W(η1,η2), Pareto
// P(γ1,γ2)) are discretized by α_i = F(i) − F(i−1), exactly the slotting
// the paper's simulations use; sampling draws the continuous variate and
// takes the ceiling, which realizes the same discrete law without
// truncating heavy tails.
package dist

import (
	"fmt"
	"math"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

// Interarrival is a distribution of event inter-arrival times in slots.
// Implementations must be immutable after construction and safe for
// concurrent readers.
type Interarrival interface {
	// PMF returns α_i = P(X = i). It is 0 for i < 1.
	PMF(i int) float64
	// CDF returns F(i) = P(X <= i). It is 0 for i < 1 and approaches 1
	// as i grows.
	CDF(i int) float64
	// Hazard returns β_i = P(X = i | X > i−1), taken as 0 once the
	// distribution has no remaining mass.
	Hazard(i int) float64
	// Mean returns μ = E[X] of the discretized distribution.
	Mean() float64
	// Sample draws an inter-arrival time (>= 1 slot).
	Sample(src *rng.Source) int
	// Name identifies the distribution, e.g. "Weibull(40,3)".
	Name() string
}

// Keyed is implemented by distributions whose full identity can be
// captured in a stable string, enabling memoization of policy
// computations keyed on the distribution (see the policy cache in
// internal/core). Two instances with equal, non-empty keys must be
// interchangeable: identical PMF, CDF, Hazard, and Mean. CacheKey
// returns "" when the identity cannot be captured, which disables
// caching for that instance.
type Keyed interface {
	CacheKey() string
}

// hashFloats is a 64-bit FNV-1a hash over the exact bit patterns of a
// float slice, used by table-backed distributions (Empirical) whose
// display name does not identify their contents.
func hashFloats(vals []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vals {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// hazardFromCDF computes β_i from PMF/CDF, shared by implementations.
func hazardFromCDF(d Interarrival, i int) float64 {
	if i < 1 {
		return 0
	}
	surv := 1 - d.CDF(i-1)
	if surv <= 0 {
		return 0
	}
	h := d.PMF(i) / surv
	if h > 1 {
		return 1
	}
	if h < 0 {
		return 0
	}
	return h
}

// meanFromSurvival computes Σ_{j>=0} (1−F(j)) with adaptive truncation.
// It works for any distribution whose survival decays to zero; heavy-tail
// implementations override Mean with analytic tail corrections instead.
func meanFromSurvival(cdf func(int) float64, cap int) float64 {
	var sum numeric.KahanSum
	for j := 0; j < cap; j++ {
		s := 1 - cdf(j)
		if s <= 0 {
			break
		}
		sum.Add(s)
		if s < 1e-15 && j > 8 {
			break
		}
	}
	return sum.Value()
}

// SurvivalSum returns Σ_{j=from}^{to} (1 − F(j)), used for tail-energy
// computations such as the cost of an always-on activation tail.
func SurvivalSum(d Interarrival, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	var sum numeric.KahanSum
	for j := from; j <= to; j++ {
		s := 1 - d.CDF(j)
		if s <= 0 {
			break
		}
		sum.Add(s)
	}
	return sum.Value()
}

// sampleByInversion draws X by inverting the continuous CDF and rounding
// up, realizing the discretized law α_i = F(i) − F(i−1).
func sampleByInversion(quantile func(float64) float64, src *rng.Source) int {
	return ceilGap(quantile(src.Float64()))
}

// ceilGap is the slotting step shared by every inversion sampler: round
// the continuous variate up to a whole slot, clamped to >= 1. SampleU
// implementations must apply exactly this rounding so QuantileTable's
// bisection reproduces Sample bit for bit.
func ceilGap(x float64) int {
	i := int(math.Ceil(x))
	if i < 1 {
		i = 1
	}
	return i
}

// Tabulation is a finite table of α_i built from a distribution, used by
// algorithms that need explicit vectors (the LP formulation, the
// clustering-policy optimizer, renewal-function recursions).
type Tabulation struct {
	// Alpha[k] is α_{k+1}: PMF of inter-arrival time k+1 slots.
	Alpha []float64
	// TailMass is the probability mass beyond the table before
	// renormalization.
	TailMass float64
	// Truncated reports whether the table hit the hard cap rather than
	// the tail-mass target.
	Truncated bool
}

// Tabulate builds a PMF table covering all but at most epsTail of the
// mass, never exceeding maxLen entries, and renormalizes it to sum to 1.
// It returns an error if the distribution yields no mass within maxLen.
func Tabulate(d Interarrival, epsTail float64, maxLen int) (*Tabulation, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("dist: Tabulate maxLen %d < 1", maxLen)
	}
	if epsTail < 0 {
		epsTail = 0
	}
	n := maxLen
	truncated := true
	for i := 1; i <= maxLen; i++ {
		if 1-d.CDF(i) <= epsTail {
			n = i
			truncated = false
			break
		}
	}
	alpha := make([]float64, n)
	var sum numeric.KahanSum
	for i := 1; i <= n; i++ {
		a := d.PMF(i)
		if a < 0 {
			return nil, fmt.Errorf("dist: %s has negative PMF %g at slot %d", d.Name(), a, i)
		}
		alpha[i-1] = a
		sum.Add(a)
	}
	total := sum.Value()
	if total <= 0 {
		return nil, fmt.Errorf("dist: %s has no mass within %d slots", d.Name(), maxLen)
	}
	tail := 1 - total
	if tail < 0 {
		tail = 0
	}
	for i := range alpha {
		alpha[i] /= total
	}
	return &Tabulation{Alpha: alpha, TailMass: tail, Truncated: truncated}, nil
}

// Mean returns the mean of the tabulated (renormalized) distribution.
func (t *Tabulation) Mean() float64 {
	var sum numeric.KahanSum
	for k, a := range t.Alpha {
		sum.Add(float64(k+1) * a)
	}
	return sum.Value()
}
