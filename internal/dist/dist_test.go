package dist

import (
	"math"
	"testing"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

// allDistributions returns a representative instance of every
// implementation for the generic conformance suite.
func allDistributions(t *testing.T) []Interarrival {
	t.Helper()
	w, err := NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWeibull(10, 0.7) // decreasing hazard
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPareto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGeometric(0.2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeterministic(7)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniformInt(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEmpirical([]float64{0, 1, 2, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarkovRenewal(0.7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMarkovRenewal(0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewMixture([]Interarrival{d, u}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := NewLogNormal(3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNegBinomial(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return []Interarrival{w, w2, p, g, d, u, e, m, m2, mix, ln, nb}
}

func TestConformancePMFMatchesCDF(t *testing.T) {
	for _, d := range allDistributions(t) {
		for i := 0; i <= 300; i++ {
			want := d.CDF(i) - d.CDF(i-1)
			if got := d.PMF(i); math.Abs(got-want) > 1e-10 {
				t.Errorf("%s: PMF(%d)=%v but CDF diff=%v", d.Name(), i, got, want)
				break
			}
		}
	}
}

func TestConformancePMFNonnegativeSumsToOne(t *testing.T) {
	for _, d := range allDistributions(t) {
		var sum numeric.KahanSum
		for i := 1; i <= 2000000; i++ {
			a := d.PMF(i)
			if a < 0 {
				t.Fatalf("%s: PMF(%d)=%v negative", d.Name(), i, a)
			}
			sum.Add(a)
			if 1-d.CDF(i) < 1e-13 {
				break
			}
		}
		// Heavy tails (Pareto) cannot be summed to 1e-13 in bounded time;
		// accept the residual tail as reported by the CDF.
		if got := sum.Value(); got > 1+1e-9 {
			t.Errorf("%s: PMF sums to %v > 1", d.Name(), got)
		}
	}
}

func TestConformanceCDFMonotone(t *testing.T) {
	for _, d := range allDistributions(t) {
		prev := 0.0
		for i := 0; i <= 500; i++ {
			f := d.CDF(i)
			if f < prev-1e-12 {
				t.Errorf("%s: CDF decreases at %d (%v -> %v)", d.Name(), i, prev, f)
				break
			}
			if f < 0 || f > 1+1e-12 {
				t.Errorf("%s: CDF(%d)=%v out of range", d.Name(), i, f)
				break
			}
			prev = f
		}
		if d.CDF(0) != 0 {
			t.Errorf("%s: CDF(0)=%v, want 0", d.Name(), d.CDF(0))
		}
		if d.CDF(-5) != 0 {
			t.Errorf("%s: CDF(-5)=%v, want 0", d.Name(), d.CDF(-5))
		}
	}
}

func TestConformanceHazardIdentity(t *testing.T) {
	for _, d := range allDistributions(t) {
		for i := 1; i <= 300; i++ {
			surv := 1 - d.CDF(i-1)
			// Below ~1e-7 survival the reference 1−CDF(i−1) is itself
			// dominated by cancellation error; the analytic hazards are
			// the trustworthy side there.
			if surv < 1e-7 {
				break
			}
			want := d.PMF(i) / surv
			if got := d.Hazard(i); math.Abs(got-want) > 1e-8 {
				t.Errorf("%s: Hazard(%d)=%v, want %v", d.Name(), i, got, want)
				break
			}
			if got := d.Hazard(i); got < 0 || got > 1 {
				t.Errorf("%s: Hazard(%d)=%v out of [0,1]", d.Name(), i, got)
				break
			}
		}
		if d.Hazard(0) != 0 {
			t.Errorf("%s: Hazard(0) != 0", d.Name())
		}
	}
}

func TestConformanceMeanMatchesSurvivalSum(t *testing.T) {
	for _, d := range allDistributions(t) {
		// μ = Σ_{j>=0} (1 − F(j)). Pareto needs its analytic tail, so
		// allow a relative tolerance driven by the truncated tail mass.
		var sum numeric.KahanSum
		horizon := 2000000
		for j := 0; j < horizon; j++ {
			s := 1 - d.CDF(j)
			if s <= 0 {
				break
			}
			sum.Add(s)
			if s < 1e-12 && j > 10 {
				break
			}
		}
		got := d.Mean()
		want := sum.Value()
		if math.Abs(got-want) > 1e-3*(1+want) {
			t.Errorf("%s: Mean()=%v, survival sum=%v", d.Name(), got, want)
		}
	}
}

func TestConformanceSampleDistribution(t *testing.T) {
	src := rng.New(2026, 7)
	for _, d := range allDistributions(t) {
		const n = 200000
		var sum float64
		counts := make(map[int]int)
		for k := 0; k < n; k++ {
			x := d.Sample(src)
			if x < 1 {
				t.Fatalf("%s: sample %d < 1", d.Name(), x)
			}
			sum += float64(x)
			if x <= 50 {
				counts[x]++
			}
		}
		mean := sum / n
		mu := d.Mean()
		// Standard error of the mean: be generous (heavy tails).
		if math.Abs(mean-mu) > 0.05*mu+0.1 {
			t.Errorf("%s: sample mean %v, want %v", d.Name(), mean, mu)
		}
		// Per-slot frequencies should match the PMF within binomial noise.
		for i := 1; i <= 50; i++ {
			p := d.PMF(i)
			if p < 1e-4 {
				continue
			}
			gotP := float64(counts[i]) / n
			sigma := math.Sqrt(p*(1-p)/n) + 1e-9
			if math.Abs(gotP-p) > 6*sigma {
				t.Errorf("%s: slot %d frequency %v, want %v (±%v)", d.Name(), i, gotP, p, 6*sigma)
			}
		}
	}
}

func TestWeibullAgainstContinuousMean(t *testing.T) {
	w, err := NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	cont := 40 * math.Gamma(1+1.0/3)
	// Discretizing by ceiling shifts the mean up by at most 1 slot.
	if w.Mean() < cont || w.Mean() > cont+1 {
		t.Fatalf("discrete mean %v, continuous %v", w.Mean(), cont)
	}
	if w.Scale() != 40 || w.Shape() != 3 {
		t.Fatal("accessors mismatch")
	}
}

func TestWeibullIncreasingHazardForShapeAbove1(t *testing.T) {
	w, err := NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 1; i <= 100; i++ {
		h := w.Hazard(i)
		if h < prev-1e-12 {
			t.Fatalf("hazard not increasing at slot %d: %v -> %v", i, prev, h)
		}
		prev = h
	}
}

func TestWeibullRejectsBadParams(t *testing.T) {
	for _, tc := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}, {2, -1}, {math.NaN(), 1}} {
		if _, err := NewWeibull(tc[0], tc[1]); err == nil {
			t.Errorf("NewWeibull(%v, %v) succeeded", tc[0], tc[1])
		}
	}
}

func TestParetoAgainstContinuousMean(t *testing.T) {
	p, err := NewPareto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cont := 2.0 * 10 / (2 - 1) // γ1·γ2/(γ1−1) = 20
	if p.Mean() < cont || p.Mean() > cont+1 {
		t.Fatalf("discrete mean %v, continuous %v", p.Mean(), cont)
	}
	if p.TailIndex() != 2 || p.Minimum() != 10 {
		t.Fatal("accessors mismatch")
	}
}

func TestParetoNoMassBelowMinimum(t *testing.T) {
	p, err := NewPareto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if p.PMF(i) != 0 {
			t.Fatalf("PMF(%d)=%v below minimum", i, p.PMF(i))
		}
	}
	if p.PMF(11) <= 0 {
		t.Fatal("no mass at first slot past minimum")
	}
}

func TestParetoDecreasingHazardPastMinimum(t *testing.T) {
	p, err := NewPareto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for i := 11; i <= 200; i++ {
		h := p.Hazard(i)
		if h > prev+1e-12 {
			t.Fatalf("hazard increased at slot %d: %v -> %v", i, prev, h)
		}
		prev = h
	}
}

func TestParetoSurvivalSumFrom(t *testing.T) {
	p, err := NewPareto(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the Euler–Maclaurin tail against direct summation at a
	// point where direct summation still converges quickly.
	direct := 0.0
	for j := 50; j < 5000000; j++ {
		direct += 1 - p.CDF(j)
	}
	got := p.SurvivalSumFrom(50)
	if math.Abs(got-direct) > 1e-4*(1+direct) {
		t.Fatalf("SurvivalSumFrom(50)=%v, direct=%v", got, direct)
	}
}

func TestParetoRejectsBadParams(t *testing.T) {
	for _, tc := range [][2]float64{{1, 10}, {0.5, 10}, {2, 0}, {2, -3}} {
		if _, err := NewPareto(tc[0], tc[1]); err == nil {
			t.Errorf("NewPareto(%v, %v) succeeded", tc[0], tc[1])
		}
	}
}

func TestGeometricConstantHazard(t *testing.T) {
	g, err := NewGeometric(0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if math.Abs(g.Hazard(i)-0.3) > 1e-12 {
			t.Fatalf("hazard at slot %d is %v, want 0.3", i, g.Hazard(i))
		}
	}
	if math.Abs(g.Mean()-1/0.3) > 1e-12 {
		t.Fatalf("mean %v, want %v", g.Mean(), 1/0.3)
	}
	if g.P() != 0.3 {
		t.Fatal("accessor mismatch")
	}
}

func TestGeometricEdgeP1(t *testing.T) {
	g, err := NewGeometric(1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1, 1)
	for i := 0; i < 10; i++ {
		if g.Sample(src) != 1 {
			t.Fatal("Geometric(1) must always sample 1")
		}
	}
}

func TestGeometricRejectsBadParams(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1} {
		if _, err := NewGeometric(p); err == nil {
			t.Errorf("NewGeometric(%v) succeeded", p)
		}
	}
}

func TestDeterministicPointMass(t *testing.T) {
	d, err := NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.PMF(5) != 1 || d.PMF(4) != 0 || d.Hazard(5) != 1 || d.Mean() != 5 {
		t.Fatal("point mass properties violated")
	}
	if _, err := NewDeterministic(0); err == nil {
		t.Fatal("NewDeterministic(0) succeeded")
	}
}

func TestUniformIntRange(t *testing.T) {
	u, err := NewUniformInt(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Mean()-4.5) > 1e-12 {
		t.Fatalf("mean %v, want 4.5", u.Mean())
	}
	if u.Hazard(6) != 1 {
		t.Fatalf("last-slot hazard %v, want 1", u.Hazard(6))
	}
	for _, bad := range [][2]int{{0, 5}, {5, 4}, {-1, -1}} {
		if _, err := NewUniformInt(bad[0], bad[1]); err == nil {
			t.Errorf("NewUniformInt(%d, %d) succeeded", bad[0], bad[1])
		}
	}
}

func TestEmpiricalNormalization(t *testing.T) {
	e, err := NewEmpirical([]float64{2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.PMF(1)-0.5) > 1e-12 || e.PMF(2) != 0 || math.Abs(e.PMF(3)-0.5) > 1e-12 {
		t.Fatal("normalization wrong")
	}
	if e.CDF(3) != 1 {
		t.Fatalf("CDF at support end %v, want exactly 1", e.CDF(3))
	}
	if math.Abs(e.Mean()-2) > 1e-12 {
		t.Fatalf("mean %v, want 2", e.Mean())
	}
	if e.MaxSupport() != 3 {
		t.Fatal("MaxSupport mismatch")
	}
}

func TestEmpiricalRejectsBadInput(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewEmpirical([]float64{0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := NewEmpirical([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestMarkovRenewalIdentities(t *testing.T) {
	m, err := NewMarkovRenewal(0.7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Hazard(1)-0.7) > 1e-12 {
		t.Fatalf("β1=%v, want a=0.7", m.Hazard(1))
	}
	for i := 2; i <= 50; i++ {
		if math.Abs(m.Hazard(i)-0.4) > 1e-12 {
			t.Fatalf("β%d=%v, want 1−b=0.4", i, m.Hazard(i))
		}
	}
	// Mean formula vs direct summation.
	var direct float64
	for i := 1; i <= 10000; i++ {
		direct += float64(i) * m.PMF(i)
	}
	if math.Abs(m.Mean()-direct) > 1e-9 {
		t.Fatalf("mean %v, direct %v", m.Mean(), direct)
	}
	if m.A() != 0.7 || m.B() != 0.6 {
		t.Fatal("accessor mismatch")
	}
}

func TestMarkovRenewalEventRate(t *testing.T) {
	// Event rate must equal 1/μ for a renewal process.
	for _, ab := range [][2]float64{{0.7, 0.6}, {0.3, 0.2}, {0.9, 0.9}, {0.5, 0.5}} {
		m, err := NewMarkovRenewal(ab[0], ab[1])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.EventRate(), 1/m.Mean(); math.Abs(got-want) > 1e-12 {
			t.Errorf("a=%v b=%v: EventRate %v != 1/Mean %v", ab[0], ab[1], got, want)
		}
	}
}

func TestMarkovRenewalRejectsBadParams(t *testing.T) {
	for _, ab := range [][2]float64{{0, 0.5}, {1.1, 0.5}, {0.5, 1}, {0.5, -0.1}} {
		if _, err := NewMarkovRenewal(ab[0], ab[1]); err == nil {
			t.Errorf("NewMarkovRenewal(%v, %v) succeeded", ab[0], ab[1])
		}
	}
}

func TestMixtureMatchesComponents(t *testing.T) {
	d1, _ := NewDeterministic(2)
	d2, _ := NewDeterministic(6)
	mix, err := NewMixture([]Interarrival{d1, d2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.PMF(2)-0.25) > 1e-12 || math.Abs(mix.PMF(6)-0.75) > 1e-12 {
		t.Fatal("mixture PMF wrong")
	}
	if math.Abs(mix.Mean()-(0.25*2+0.75*6)) > 1e-12 {
		t.Fatalf("mixture mean %v", mix.Mean())
	}
}

func TestMixtureRejectsBadInput(t *testing.T) {
	d1, _ := NewDeterministic(2)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture([]Interarrival{d1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewMixture([]Interarrival{d1}, []float64{0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := NewMixture([]Interarrival{d1, d1}, []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestSurvivalSumEqualsPartialMean(t *testing.T) {
	u, _ := NewUniformInt(1, 10)
	// Σ_{j=0}^{∞}(1−F(j)) = μ for full range.
	if got := SurvivalSum(u, 0, 100); math.Abs(got-u.Mean()) > 1e-12 {
		t.Fatalf("full survival sum %v != mean %v", got, u.Mean())
	}
	if got := SurvivalSum(u, -3, 100); math.Abs(got-u.Mean()) > 1e-12 {
		t.Fatalf("negative from should clamp, got %v", got)
	}
}

func TestTabulateWeibull(t *testing.T) {
	w, _ := NewWeibull(40, 3)
	tab, err := Tabulate(w, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Truncated {
		t.Fatal("Weibull(40,3) should not hit the cap")
	}
	if math.Abs(numeric.Sum(tab.Alpha)-1) > 1e-12 {
		t.Fatalf("tabulation sums to %v", numeric.Sum(tab.Alpha))
	}
	if math.Abs(tab.Mean()-w.Mean()) > 1e-6 {
		t.Fatalf("tabulated mean %v, distribution mean %v", tab.Mean(), w.Mean())
	}
	if len(tab.Alpha) < 100 || len(tab.Alpha) > 300 {
		t.Fatalf("unexpected table length %d", len(tab.Alpha))
	}
}

func TestTabulateParetoHitsCap(t *testing.T) {
	p, _ := NewPareto(2, 10)
	tab, err := Tabulate(p, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Truncated {
		t.Fatal("Pareto(2,10) must hit the cap at 5000 slots for eps 1e-12")
	}
	if tab.TailMass <= 0 {
		t.Fatal("truncated tabulation should report tail mass")
	}
	if math.Abs(numeric.Sum(tab.Alpha)-1) > 1e-12 {
		t.Fatal("truncated table must be renormalized")
	}
}

func TestTabulateErrors(t *testing.T) {
	w, _ := NewWeibull(40, 3)
	if _, err := Tabulate(w, 1e-12, 0); err == nil {
		t.Fatal("maxLen 0 accepted")
	}
	p, _ := NewPareto(2, 1000)
	if _, err := Tabulate(p, 1e-12, 10); err == nil {
		t.Fatal("no-mass table accepted")
	}
}

func TestLogNormalBasics(t *testing.T) {
	l, err := NewLogNormal(3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous mean is exp(mu + sigma^2/2); ceiling discretization
	// shifts it up by at most 1.
	cont := math.Exp(3 + 0.4*0.4/2)
	if l.Mean() < cont || l.Mean() > cont+1 {
		t.Fatalf("discrete mean %v, continuous %v", l.Mean(), cont)
	}
	// Hazard rises then falls (unimodal up to discretization noise):
	// find the peak and check rough monotonicity on both sides.
	peak, peakVal := 0, -1.0
	for i := 1; i <= 200; i++ {
		if h := l.Hazard(i); h > peakVal {
			peak, peakVal = i, h
		}
	}
	if peak <= 2 || peak >= 150 {
		t.Fatalf("hazard peak at %d looks wrong", peak)
	}
	if l.Hazard(peak/3) > peakVal || l.Hazard(peak*3) > peakVal {
		t.Fatalf("hazard not unimodal around peak %d", peak)
	}
}

func TestLogNormalRejectsBadParams(t *testing.T) {
	for _, tc := range [][2]float64{{3, 0}, {3, -1}, {math.NaN(), 1}, {math.Inf(1), 1}} {
		if _, err := NewLogNormal(tc[0], tc[1]); err == nil {
			t.Errorf("NewLogNormal(%v, %v) succeeded", tc[0], tc[1])
		}
	}
}

func TestNegBinomialBasics(t *testing.T) {
	nb, err := NewNegBinomial(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nb.Mean()-4/0.3) > 1e-9 {
		t.Fatalf("mean %v, want %v", nb.Mean(), 4/0.3)
	}
	if nb.StageCount() != 4 {
		t.Fatal("stage count mismatch")
	}
	// No mass below k; first atom is p^k.
	for i := 0; i < 4; i++ {
		if nb.PMF(i) != 0 {
			t.Fatalf("mass %v below support at %d", nb.PMF(i), i)
		}
	}
	if math.Abs(nb.PMF(4)-math.Pow(0.3, 4)) > 1e-15 {
		t.Fatalf("P(X=4) = %v, want p^4", nb.PMF(4))
	}
	// k=1 reduces to Geometric(p).
	nb1, err := NewNegBinomial(1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGeometric(0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if math.Abs(nb1.PMF(i)-g.PMF(i)) > 1e-12 {
			t.Fatalf("k=1 PMF(%d)=%v, geometric %v", i, nb1.PMF(i), g.PMF(i))
		}
	}
	// Increasing hazard toward p (checked while the survival is large
	// enough that 1−CDF is numerically trustworthy).
	prev := -1.0
	for i := 4; i <= 200 && 1-nb.CDF(i-1) > 1e-9; i++ {
		h := nb.Hazard(i)
		if h < prev-1e-9 {
			t.Fatalf("hazard decreased at %d: %v -> %v", i, prev, h)
		}
		prev = h
	}
	if prev > 0.3+1e-9 {
		t.Fatalf("hazard limit %v exceeds stage probability", prev)
	}
}

func TestNegBinomialRejectsBadParams(t *testing.T) {
	if _, err := NewNegBinomial(0, 0.5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewNegBinomial(2, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewNegBinomial(2, 1.5); err == nil {
		t.Fatal("p>1 accepted")
	}
}
