package dist

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// Pareto is the slotted discretization of the Pareto distribution
// P(γ1, γ2) with tail index γ1 and minimum γ2 (the paper's Fig. 4(b) uses
// P(2, 10)). Its hazard decreases with slot number, the mirror image of
// the Weibull case: the hot region sits immediately after the minimum.
type Pareto struct {
	alpha, xm float64
	mean      float64
	name      string
}

var _ Interarrival = (*Pareto)(nil)

// NewPareto constructs P(alpha, xm). alpha must exceed 1 for the mean to
// exist; xm must be positive.
func NewPareto(alpha, xm float64) (*Pareto, error) {
	if !(alpha > 1) {
		return nil, fmt.Errorf("dist: Pareto tail index must exceed 1 for a finite mean, got %g", alpha)
	}
	if !(xm > 0) {
		return nil, fmt.Errorf("dist: Pareto minimum must be positive, got %g", xm)
	}
	p := &Pareto{
		alpha: alpha,
		xm:    xm,
		name:  fmt.Sprintf("Pareto(%g,%g)", alpha, xm),
	}
	p.mean = p.discreteMean()
	return p, nil
}

// TailIndex returns γ1.
func (p *Pareto) TailIndex() float64 { return p.alpha }

// Minimum returns γ2.
func (p *Pareto) Minimum() float64 { return p.xm }

func (p *Pareto) survivalCont(x float64) float64 {
	if x <= p.xm {
		return 1
	}
	return math.Pow(p.xm/x, p.alpha)
}

// CDF returns F(i) of the discretized distribution.
func (p *Pareto) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	return 1 - p.survivalCont(float64(i))
}

// PMF returns α_i = S(i−1) − S(i).
func (p *Pareto) PMF(i int) float64 {
	if i < 1 {
		return 0
	}
	v := p.survivalCont(float64(i-1)) - p.survivalCont(float64(i))
	if v < 0 {
		return 0
	}
	return v
}

// Hazard returns β_i = 1 − S(i)/S(i−1).
func (p *Pareto) Hazard(i int) float64 {
	if i < 1 {
		return 0
	}
	sPrev := p.survivalCont(float64(i - 1))
	if sPrev <= 0 {
		return 0
	}
	return 1 - p.survivalCont(float64(i))/sPrev
}

// Mean returns μ of the discretized distribution.
func (p *Pareto) Mean() float64 { return p.mean }

// discreteMean computes Σ_{j>=0}(1−F(j)) with an Euler–Maclaurin tail
// correction, since the raw series converges only polynomially.
func (p *Pareto) discreteMean() float64 {
	// Sum explicitly to J, then add the analytic tail Σ_{j>=J}(xm/j)^α.
	const J = 100000
	sum := 0.0
	j := 0
	for ; j < J; j++ {
		s := p.survivalCont(float64(j))
		sum += s
	}
	return sum + p.tailSurvivalSum(float64(J))
}

// tailSurvivalSum approximates Σ_{j>=J} (xm/j)^α via Euler–Maclaurin:
// ∫_J^∞ f + f(J)/2 − f'(J)/12, with f(x) = (xm/x)^α.
func (p *Pareto) tailSurvivalSum(from float64) float64 {
	a, xm := p.alpha, p.xm
	f := math.Pow(xm/from, a)
	integral := f * from / (a - 1)
	deriv := -a * f / from
	return integral + f/2 - deriv/12
}

// SurvivalSumFrom returns Σ_{j>=from} (1 − F(j)) — the expected residual
// activation cost of an always-on tail starting at slot from+1. It is
// exact for from below the minimum and uses the Euler–Maclaurin tail
// beyond a fixed horizon.
func (p *Pareto) SurvivalSumFrom(from int) float64 {
	if from < 0 {
		from = 0
	}
	const horizon = 100000
	sum := 0.0
	j := from
	for ; j < horizon; j++ {
		sum += p.survivalCont(float64(j))
	}
	return sum + p.tailSurvivalSum(float64(j))
}

// Sample draws by inversion: ceil(xm / (1−u)^{1/α}).
func (p *Pareto) Sample(src *rng.Source) int {
	return p.SampleU(src.Float64())
}

// SampleU implements InverseSampler: the deterministic u → gap map behind
// Sample. (1−u)^{1/α} is decreasing in u, so the quotient — and the map —
// is nondecreasing, as the InverseSampler contract requires.
func (p *Pareto) SampleU(u float64) int {
	return ceilGap(p.xm / math.Pow(1-u, 1/p.alpha))
}

var _ InverseSampler = (*Pareto)(nil)

// Name implements Interarrival.
func (p *Pareto) Name() string { return p.name }

// CacheKey implements Keyed; the name embeds both parameters at
// round-trip precision.
func (p *Pareto) CacheKey() string { return p.name }
