package dist

import (
	"math"
	"sort"

	"eventcap/internal/rng"
)

// BinomialTable samples Binomial(n, p) for a fixed p and any n up to a
// precomputed bound with a single uniform draw and a binary search — no
// logarithms in the hot path. The simulation kernel prepares one per run:
// sleep-run lengths repeat heavily and stay small, so the O(maxN²) table
// build (a few microseconds) amortizes across tens of thousands of draws
// that would otherwise each pay SampleBinomial's geometric-gap or
// mode-inversion transcendentals. Values of n beyond the bound fall back
// to SampleBinomial.
type BinomialTable struct {
	p float64
	// cum[n-1][k] = P(X <= k) for X ~ Binomial(n, p); the last entry is
	// pinned to 1 so a uniform in [0,1) can never search past the support.
	cum [][]float64
}

// NewBinomialTable builds the table for success probability p (clamped to
// [0, 1]) covering 1 <= n <= maxN. Degenerate p needs no randomness, so
// the table stays empty and Sample short-circuits.
func NewBinomialTable(p float64, maxN int) *BinomialTable {
	t := &BinomialTable{p: p}
	if maxN < 1 || !(p > 0) || p >= 1 || math.IsNaN(p) {
		return t
	}
	q := 1 - p
	ratio := p / q
	logP, logQ := math.Log(p), math.Log(q)
	t.cum = make([][]float64, maxN)
	for n := 1; n <= maxN; n++ {
		// PMF seeded at the mode via log-gamma, extended outward by the
		// exact ratio recurrences f(k+1) = f(k)·(n-k)/(k+1)·p/q. Seeding
		// at k = 0 with q^n looks simpler but underflows to an all-zero
		// row once n·log(q) < -745 (for p = 0.857 that is n > 383),
		// which silently turns every draw into n successes; the modal
		// mass is at least 1/(n+1) and can never underflow.
		pmf := make([]float64, n+1)
		mode := int(math.Floor(float64(n+1) * p))
		if mode > n {
			mode = n
		}
		lgN, _ := math.Lgamma(float64(n + 1))
		lgM, _ := math.Lgamma(float64(mode + 1))
		lgNM, _ := math.Lgamma(float64(n - mode + 1))
		pmf[mode] = math.Exp(lgN - lgM - lgNM + float64(mode)*logP + float64(n-mode)*logQ)
		for k := mode; k < n; k++ {
			pmf[k+1] = pmf[k] * float64(n-k) / float64(k+1) * ratio
		}
		for k := mode; k > 0; k-- {
			pmf[k-1] = pmf[k] * float64(k) / (float64(n-k+1) * ratio)
		}
		row := make([]float64, n+1)
		var acc float64
		for k := 0; k <= n; k++ {
			acc += pmf[k]
			row[k] = acc
		}
		row[n] = 1
		t.cum[n-1] = row
	}
	return t
}

// P returns the success probability the table was built for.
func (t *BinomialTable) P() float64 { return t.p }

// MaxN returns the largest n the table covers directly.
func (t *BinomialTable) MaxN() int { return len(t.cum) }

// Sample draws Binomial(n, p). Within the precomputed range it consumes
// exactly one uniform; beyond it, it delegates to SampleBinomial.
func (t *BinomialTable) Sample(src *rng.Source, n int64) int64 {
	if n <= 0 {
		return 0
	}
	if !(t.p > 0) {
		return 0
	}
	if t.p >= 1 {
		return n
	}
	if n <= int64(len(t.cum)) {
		row := t.cum[n-1]
		u := src.Float64()
		return int64(sort.SearchFloat64s(row, u))
	}
	return SampleBinomial(src, n, t.p)
}
