package dist

import (
	"math"

	"eventcap/internal/rng"
)

// SampleBernoulliBatch fills out with len(out) exchangeable Bernoulli(p)
// indicators and returns how many are set. Instead of len(out) uniform
// draws it makes one Binomial(len(out), p) count draw (SampleBinomial)
// and then places the successes with Floyd's k-subset algorithm — k
// further draws — so the RNG cost is O(count), not O(len(out)).
//
// The joint law matches independent per-position draws exactly: the count
// is Binomial(n, p) and, conditioned on the count, every k-subset of
// positions is equally likely, which is the defining exchangeability of
// iid indicators. The per-position sequences differ from sequential
// draws, so callers that promise byte-identical replay against a
// per-slot engine must not mix the two on one stream; batch engines use
// this only where the count alone feeds downstream state.
//
// The output is deterministic for a fixed src state and allocates
// nothing. Values of p outside [0, 1] are clamped.
func SampleBernoulliBatch(src *rng.Source, p float64, out []bool) int64 {
	n := int64(len(out))
	if n == 0 {
		return 0
	}
	if p <= 0 || math.IsNaN(p) {
		for i := range out {
			out[i] = false
		}
		return 0
	}
	if p >= 1 {
		for i := range out {
			out[i] = true
		}
		return n
	}
	k := SampleBinomial(src, n, p)
	assignSubset(src, k, out)
	return k
}

// SampleBatch is SampleBernoulliBatch drawing its count through the
// table: within the precomputed range the count costs one uniform and a
// binary search, beyond it SampleBinomial takes over. The joint law and
// determinism contract are identical to SampleBernoulliBatch.
func (t *BinomialTable) SampleBatch(src *rng.Source, out []bool) int64 {
	n := int64(len(out))
	if n == 0 {
		return 0
	}
	if !(t.p > 0) {
		for i := range out {
			out[i] = false
		}
		return 0
	}
	if t.p >= 1 {
		for i := range out {
			out[i] = true
		}
		return n
	}
	k := t.Sample(src, n)
	assignSubset(src, k, out)
	return k
}

// assignSubset zeroes out and marks a uniformly random k-subset of its
// positions via Floyd's algorithm: the j-th step picks a slot in [0, j]
// and, on collision with an already-chosen slot, takes j itself — each
// k-subset ends up with probability 1/C(n, k) using exactly k draws.
func assignSubset(src *rng.Source, k int64, out []bool) {
	for i := range out {
		out[i] = false
	}
	n := int64(len(out))
	if k <= 0 {
		return
	}
	if k >= n {
		for i := range out {
			out[i] = true
		}
		return
	}
	for j := n - k; j < n; j++ {
		t := src.Uint64n(uint64(j + 1))
		if out[t] {
			out[j] = true
		} else {
			out[t] = true
		}
	}
}
