package dist

import (
	"math"

	"eventcap/internal/rng"
)

// SampleBinomial draws the number of successes in n Bernoulli(p) trials
// with O(min(np, sqrt(n p (1-p)))) expected work instead of n individual
// draws. The simulation kernel uses it to fast-forward Bernoulli recharge
// across a sleep run: the battery only needs the run's success count, not
// the per-slot sequence, and the count's law is exactly Binomial(n, p).
//
// The sampler is exact (no normal approximation): small expected counts
// jump between successes with geometric gaps; larger ones invert the CDF
// walking outward from the mode with incremental PMF ratios. Values of p
// outside [0, 1] are clamped. It allocates nothing.
func SampleBinomial(src *rng.Source, n int64, p float64) int64 {
	if n <= 0 || p <= 0 || math.IsNaN(p) {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the walk always works on the smaller tail.
	if p > 0.5 {
		return n - SampleBinomial(src, n, 1-p)
	}
	if float64(n)*p < 24 {
		return binomialByGeometricGaps(src, n, p)
	}
	return binomialByModeInversion(src, n, p)
}

// binomialByGeometricGaps counts successes by jumping over the failures
// between them: each gap is Geometric(p), so the expected number of draws
// is np + 1.
func binomialByGeometricGaps(src *rng.Source, n int64, p float64) int64 {
	var count, pos int64
	for {
		pos += src.Geometric(p) + 1
		if pos > n {
			return count
		}
		count++
	}
}

// binomialByModeInversion inverts the Binomial CDF with a single uniform,
// accumulating PMF mass outward from the mode. The PMF is seeded once via
// log-gamma and extended by the exact ratio recurrences
// f(k+1)/f(k) = (n-k)/(k+1) * p/q, so each step costs a few flops; the
// walk terminates after O(sqrt(npq)) steps with overwhelming probability.
func binomialByModeInversion(src *rng.Source, n int64, p float64) int64 {
	q := 1 - p
	mode := int64(math.Floor(float64(n+1) * p))
	if mode > n {
		mode = n
	}
	lg := func(x int64) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	fm := math.Exp(lg(n) - lg(mode) - lg(n-mode) +
		float64(mode)*math.Log(p) + float64(n-mode)*math.Log(q))

	u := src.Float64()
	u -= fm
	if u < 0 {
		return mode
	}
	lo, hi := mode, mode
	flo, fhi := fm, fm
	for lo > 0 || hi < n {
		if hi < n {
			fhi *= float64(n-hi) / float64(hi+1) * p / q
			hi++
			u -= fhi
			if u < 0 {
				return hi
			}
		}
		if lo > 0 {
			flo *= float64(lo) / float64(n-lo+1) * q / p
			lo--
			u -= flo
			if u < 0 {
				return lo
			}
		}
	}
	// Numerically exhausted the support (u was within rounding of 1);
	// the mode is the least-surprising answer.
	return mode
}
