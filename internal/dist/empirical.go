package dist

import (
	"fmt"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

// Empirical is an arbitrary finite inter-arrival PMF given explicitly:
// pmf[k] is (proportional to) P(X = k+1). It is the escape hatch for
// measured workloads and the workhorse of the property-based tests, which
// exercise every policy against randomized renewal processes.
type Empirical struct {
	alpha   []float64 // normalized; alpha[k] = P(X = k+1)
	cdf     []float64 // cdf[k] = F(k+1)
	mean    float64
	sampler *AliasSampler
	name    string
}

var _ Interarrival = (*Empirical)(nil)

// NewEmpirical builds the distribution from nonnegative weights over
// slots 1..len(weights). Weights are normalized; the sum must be positive.
func NewEmpirical(weights []float64) (*Empirical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one slot")
	}
	total := numeric.Sum(weights)
	if !(total > 0) {
		return nil, fmt.Errorf("dist: empirical weights sum to %g", total)
	}
	e := &Empirical{
		alpha: make([]float64, len(weights)),
		cdf:   make([]float64, len(weights)),
	}
	var running numeric.KahanSum
	var meanSum numeric.KahanSum
	for k, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative weight %g at slot %d", w, k+1)
		}
		a := w / total
		e.alpha[k] = a
		running.Add(a)
		e.cdf[k] = running.Value()
		meanSum.Add(float64(k+1) * a)
	}
	e.cdf[len(e.cdf)-1] = 1 // exact by construction
	e.mean = meanSum.Value()
	sampler, err := NewAliasSampler(e.alpha)
	if err != nil {
		return nil, fmt.Errorf("building alias table: %w", err)
	}
	e.sampler = sampler
	e.name = fmt.Sprintf("Empirical(n=%d)", len(weights))
	return e, nil
}

// MaxSupport returns the largest slot with positive probability bound
// (the table length).
func (e *Empirical) MaxSupport() int { return len(e.alpha) }

// PMF implements Interarrival.
func (e *Empirical) PMF(i int) float64 {
	if i < 1 || i > len(e.alpha) {
		return 0
	}
	return e.alpha[i-1]
}

// CDF implements Interarrival.
func (e *Empirical) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	if i > len(e.cdf) {
		return 1
	}
	return e.cdf[i-1]
}

// Hazard implements Interarrival.
func (e *Empirical) Hazard(i int) float64 { return hazardFromCDF(e, i) }

// Mean implements Interarrival.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample implements Interarrival.
func (e *Empirical) Sample(src *rng.Source) int {
	return e.sampler.Sample(src) + 1
}

// Name implements Interarrival.
func (e *Empirical) Name() string { return e.name }

// CacheKey implements Keyed. The display name only reports the support
// size, so the key additionally hashes the exact normalized PMF.
func (e *Empirical) CacheKey() string {
	return fmt.Sprintf("%s#%016x", e.name, hashFloats(e.alpha))
}
