package dist

import (
	"math"
	"testing"
	"testing/quick"

	"eventcap/internal/rng"
)

func TestAliasSamplerFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	s, err := NewAliasSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len=%d, want 4", s.Len())
	}
	src := rng.New(11, 0)
	const n = 400000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[s.Sample(src)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 6*sigma {
			t.Errorf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasSamplerSingleOutcome(t *testing.T) {
	s, err := NewAliasSampler([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1, 1)
	for i := 0; i < 100; i++ {
		if s.Sample(src) != 0 {
			t.Fatal("single-outcome sampler returned nonzero")
		}
	}
}

func TestAliasSamplerZeroWeightNeverDrawn(t *testing.T) {
	s, err := NewAliasSampler([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3, 0)
	for i := 0; i < 100000; i++ {
		if s.Sample(src) == 1 {
			t.Fatal("zero-weight outcome drawn")
		}
	}
}

func TestAliasSamplerErrors(t *testing.T) {
	if _, err := NewAliasSampler(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAliasSampler([]float64{0, 0}); err == nil {
		t.Fatal("zero-sum weights accepted")
	}
	if _, err := NewAliasSampler([]float64{1, -2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestAliasSamplerPropertyInRange(t *testing.T) {
	src := rng.New(8, 0)
	if err := quick.Check(func(seed uint64) bool {
		ws := rng.New(seed, 2)
		n := 1 + ws.Intn(30)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = ws.Float64()
		}
		weights[ws.Intn(n)] += 0.5 // guarantee positive sum
		s, err := NewAliasSampler(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			if v := s.Sample(src); v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 200)
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	s, err := NewAliasSampler(weights)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1, 0)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Sample(src)
	}
	_ = sink
}

func BenchmarkWeibullSample(b *testing.B) {
	w, err := NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1, 0)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += w.Sample(src)
	}
	_ = sink
}
