package dist

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// binomialPMF computes the exact Binomial(n, p) PMF via log-gamma, as an
// independent check on the table's ratio-recurrence construction.
func binomialPMF(n, k int, p float64) float64 {
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	logC := lg(float64(n+1)) - lg(float64(k+1)) - lg(float64(n-k+1))
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func TestBinomialTableCDFMatchesExactPMF(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5, 0.75, 0.95} {
		tab := NewBinomialTable(p, 64)
		if tab.MaxN() != 64 {
			t.Fatalf("p=%g: MaxN = %d, want 64", p, tab.MaxN())
		}
		for _, n := range []int{1, 2, 7, 33, 64} {
			acc := 0.0
			for k := 0; k <= n; k++ {
				acc += binomialPMF(n, k, p)
				got := tab.cum[n-1][k]
				want := acc
				if k == n {
					want = 1 // pinned so a uniform can never run off the end
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("p=%g n=%d: cum[%d] = %.12f, want %.12f", p, n, k, got, want)
				}
			}
		}
	}
}

func TestBinomialTableSampleLaw(t *testing.T) {
	const (
		p     = 0.3
		n     = 50
		draws = 200_000
	)
	tab := NewBinomialTable(p, n)
	src := rng.New(99, 7)
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		k := tab.Sample(src, n)
		if k < 0 || k > n {
			t.Fatalf("draw %d outside support [0, %d]", k, n)
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	// 6-sigma band on the sample mean.
	if tol := 6 * math.Sqrt(wantVar/draws); math.Abs(mean-wantMean) > tol {
		t.Errorf("sample mean %.4f, want %.4f +/- %.4f", mean, wantMean, tol)
	}
	if math.Abs(variance-wantVar) > 0.05*wantVar {
		t.Errorf("sample variance %.4f, want %.4f within 5%%", variance, wantVar)
	}
}

func TestBinomialTableSampleConsumesOneUniform(t *testing.T) {
	tab := NewBinomialTable(0.4, 16)
	probe := rng.New(5, 11)
	witness := rng.New(5, 11)
	for n := int64(1); n <= 16; n++ {
		tab.Sample(probe, n)
		witness.Float64()
		// The check draw advances both streams equally, so they stay in
		// lockstep across iterations.
		if probe.Uint64() != witness.Uint64() {
			t.Fatalf("n=%d: in-range Sample consumed more than one uniform", n)
		}
	}
}

func TestBinomialTableFallbackBeyondMaxN(t *testing.T) {
	const p = 0.3
	tab := NewBinomialTable(p, 8)
	probe := rng.New(21, 3)
	witness := rng.New(21, 3)
	for i := 0; i < 50; i++ {
		got := tab.Sample(probe, 100)
		want := SampleBinomial(witness, 100, p)
		if got != want {
			t.Fatalf("draw %d: fallback Sample = %d, SampleBinomial = %d", i, got, want)
		}
	}
}

func TestBinomialTableDegenerate(t *testing.T) {
	src := rng.New(1, 2)
	witness := rng.New(1, 2)
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		tab := NewBinomialTable(p, 32)
		if tab.MaxN() != 0 {
			t.Errorf("p=%g: degenerate table has MaxN %d, want 0", p, tab.MaxN())
		}
		got := tab.Sample(src, 10)
		var want int64
		if p >= 1 {
			want = 10
		}
		if got != want {
			t.Errorf("p=%g: Sample = %d, want %d", p, got, want)
		}
		// Degenerate sampling must consume no randomness; the check draw
		// advances both streams equally.
		if src.Uint64() != witness.Uint64() {
			t.Fatalf("p=%g: degenerate Sample consumed randomness", p)
		}
	}
	tab := NewBinomialTable(0.5, 32)
	if got := tab.Sample(src, 0); got != 0 {
		t.Errorf("Sample(n=0) = %d, want 0", got)
	}
	if got := tab.Sample(src, -3); got != 0 {
		t.Errorf("Sample(n=-3) = %d, want 0", got)
	}
}
