package dist

import (
	"fmt"
	"strings"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

// Mixture is a convex combination of inter-arrival distributions. It
// models multi-modal event processes (e.g. a PoI with both a fast and a
// slow recurrence mode), which produce multiple "hot regions" and stress
// the single-window clustering policy.
type Mixture struct {
	components []Interarrival
	weights    []float64
	sampler    *AliasSampler
	mean       float64
	name       string
}

var _ Interarrival = (*Mixture)(nil)

// NewMixture builds a mixture of components with the given nonnegative
// weights (normalized internally). Lengths must match and be nonzero.
func NewMixture(components []Interarrival, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d components but %d weights", len(components), len(weights))
	}
	total := numeric.Sum(weights)
	if !(total > 0) {
		return nil, fmt.Errorf("dist: mixture weights sum to %g", total)
	}
	m := &Mixture{
		components: make([]Interarrival, len(components)),
		weights:    make([]float64, len(weights)),
	}
	copy(m.components, components)
	names := make([]string, 0, len(components))
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative mixture weight %g at index %d", w, i)
		}
		m.weights[i] = w / total
		names = append(names, fmt.Sprintf("%.3g*%s", m.weights[i], components[i].Name()))
	}
	sampler, err := NewAliasSampler(m.weights)
	if err != nil {
		return nil, fmt.Errorf("building mixture alias table: %w", err)
	}
	m.sampler = sampler
	var mean numeric.KahanSum
	for i, c := range m.components {
		mean.Add(m.weights[i] * c.Mean())
	}
	m.mean = mean.Value()
	m.name = "Mixture(" + strings.Join(names, " + ") + ")"
	return m, nil
}

// PMF implements Interarrival.
func (m *Mixture) PMF(i int) float64 {
	var sum float64
	for k, c := range m.components {
		sum += m.weights[k] * c.PMF(i)
	}
	return sum
}

// CDF implements Interarrival.
func (m *Mixture) CDF(i int) float64 {
	var sum float64
	for k, c := range m.components {
		sum += m.weights[k] * c.CDF(i)
	}
	return sum
}

// Hazard implements Interarrival.
func (m *Mixture) Hazard(i int) float64 { return hazardFromCDF(m, i) }

// Mean implements Interarrival.
func (m *Mixture) Mean() float64 { return m.mean }

// Sample implements Interarrival.
func (m *Mixture) Sample(src *rng.Source) int {
	return m.components[m.sampler.Sample(src)].Sample(src)
}

// Name implements Interarrival.
func (m *Mixture) Name() string { return m.name }

// CacheKey implements Keyed. The display name rounds weights to three
// significant digits, so the key is rebuilt from the exact normalized
// weights and the components' own cache keys. It returns "" (caching
// disabled) if any component is itself unkeyed.
func (m *Mixture) CacheKey() string {
	parts := make([]string, 0, len(m.components))
	for i, c := range m.components {
		k, ok := c.(Keyed)
		if !ok {
			return ""
		}
		ck := k.CacheKey()
		if ck == "" {
			return ""
		}
		parts = append(parts, fmt.Sprintf("%b*%s", m.weights[i], ck))
	}
	return "Mixture(" + strings.Join(parts, " + ") + ")"
}
