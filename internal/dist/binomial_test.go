package dist

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

func TestSampleBinomialEdgeCases(t *testing.T) {
	src := rng.New(1, 1)
	if got := SampleBinomial(src, 0, 0.5); got != 0 {
		t.Fatalf("n=0: got %d", got)
	}
	if got := SampleBinomial(src, 10, 0); got != 0 {
		t.Fatalf("p=0: got %d", got)
	}
	if got := SampleBinomial(src, 10, 1); got != 10 {
		t.Fatalf("p=1: got %d", got)
	}
	if got := SampleBinomial(src, -3, 0.5); got != 0 {
		t.Fatalf("n<0: got %d", got)
	}
}

func TestSampleBinomialDeterministic(t *testing.T) {
	a, b := rng.New(42, 7), rng.New(42, 7)
	for i := 0; i < 200; i++ {
		x, y := SampleBinomial(a, 50, 0.3), SampleBinomial(b, 50, 0.3)
		if x != y {
			t.Fatalf("draw %d: %d != %d for identical sources", i, x, y)
		}
	}
}

// TestSampleBinomialMoments checks mean and variance for both sampler
// paths (geometric gaps for small np, mode inversion for large) and for
// the p > 0.5 symmetry reduction.
func TestSampleBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{30, 0.5},   // kernel's typical sleep run: geometric path
		{12, 0.1},   // tiny np
		{500, 0.4},  // mode-inversion path
		{2000, 0.5}, // large symmetric
		{100, 0.85}, // symmetry reduction
	}
	src := rng.New(2024, 11)
	const draws = 40000
	for _, tc := range cases {
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			x := SampleBinomial(src, tc.n, tc.p)
			if x < 0 || x > tc.n {
				t.Fatalf("n=%d p=%g: draw %d out of range", tc.n, tc.p, x)
			}
			f := float64(x)
			sum += f
			sumSq += f * f
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		// 5-sigma band on the sample mean; generous band on variance.
		meanTol := 5 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > meanTol {
			t.Errorf("n=%d p=%g: mean %v, want %v +- %v", tc.n, tc.p, mean, wantMean, meanTol)
		}
		if variance < 0.9*wantVar || variance > 1.1*wantVar {
			t.Errorf("n=%d p=%g: variance %v, want ~%v", tc.n, tc.p, variance, wantVar)
		}
	}
}

// TestSampleBinomialMatchesExactCDF compares the sampled law against the
// exact Binomial PMF with a chi-square-style max-cell-error check, for
// one configuration per internal path.
func TestSampleBinomialMatchesExactCDF(t *testing.T) {
	for _, tc := range []struct {
		n int64
		p float64
	}{{20, 0.3}, {200, 0.5}} {
		src := rng.New(99, uint64(tc.n))
		const draws = 60000
		counts := make(map[int64]int)
		for i := 0; i < draws; i++ {
			counts[SampleBinomial(src, tc.n, tc.p)]++
		}
		q := 1 - tc.p
		lg := func(x int64) float64 { v, _ := math.Lgamma(float64(x + 1)); return v }
		for k := int64(0); k <= tc.n; k++ {
			pmf := math.Exp(lg(tc.n) - lg(k) - lg(tc.n-k) +
				float64(k)*math.Log(tc.p) + float64(tc.n-k)*math.Log(q))
			if pmf < 1e-4 {
				continue // too little mass for a stable frequency estimate
			}
			got := float64(counts[k]) / draws
			sigma := math.Sqrt(pmf * (1 - pmf) / draws)
			if math.Abs(got-pmf) > 6*sigma+1e-4 {
				t.Errorf("n=%d p=%g k=%d: freq %v, pmf %v", tc.n, tc.p, k, got, pmf)
			}
		}
	}
}
