package core

import (
	"testing"
)

func TestWindowPolicyAt(t *testing.T) {
	w := WindowPolicy{
		Base:    ClusteringPolicy{N1: 2, N2: 3, N3: 5, C1: 1, C2: 1, C3: 1},
		Windows: []SleepWindow{{Start: 7, Len: 2}},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{
		1: 0, 2: 1, 3: 1, 4: 0, 5: 1, 6: 1, // base clustering
		7: 0, 8: 0, // extra sleep window
		9: 1, 20: 1, // tail resumes
	}
	for i, c := range want {
		if got := w.At(i); got != c {
			t.Errorf("At(%d) = %v, want %v", i, got, c)
		}
	}
	v := w.Vector()
	for i := 0; i <= 25; i++ {
		if v.At(i) != w.At(i) {
			t.Fatalf("Vector.At(%d) mismatch", i)
		}
	}
}

func TestWindowPolicyValidate(t *testing.T) {
	base := ClusteringPolicy{N1: 2, N2: 3, N3: 5, C1: 1, C2: 1, C3: 1}
	bad := []WindowPolicy{
		{Base: base, Windows: []SleepWindow{{Start: 5, Len: 1}}},                     // window at N3 (no active recovery slot)
		{Base: base, Windows: []SleepWindow{{Start: 7, Len: 0}}},                     // empty window
		{Base: base, Windows: []SleepWindow{{Start: 7, Len: 2}, {Start: 9, Len: 1}}}, // touching windows
		{Base: ClusteringPolicy{}, Windows: nil},                                     // invalid base
	}
	for k, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid window policy accepted: %+v", k, w)
		}
	}
	ok := WindowPolicy{Base: base, Windows: []SleepWindow{{Start: 6, Len: 2}, {Start: 10, Len: 3}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid window policy rejected: %v", err)
	}
}

// TestRefineWindowsNeverWorse: the refinement must keep energy
// feasibility and never lose capture probability relative to the base
// clustering policy; the FI optimum still bounds it from above.
func TestRefineWindowsNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	for _, e := range []float64{0.3, 0.6} {
		base, err := OptimizeClustering(d, e, p, ClusteringOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RefineWindows(d, e, p, base, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ref.CaptureProb < base.CaptureProb-1e-9 {
			t.Errorf("e=%v: refinement lost capture probability: %v < %v",
				e, ref.CaptureProb, base.CaptureProb)
		}
		if ref.EnergyRate > e*(1+1e-6)+1e-9 {
			t.Errorf("e=%v: refined policy exceeds energy budget: %v", e, ref.EnergyRate)
		}
		fi, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		if ref.CaptureProb > fi.CaptureProb+1e-6 {
			t.Errorf("e=%v: refined PI policy %v beats the FI bound %v",
				e, ref.CaptureProb, fi.CaptureProb)
		}
		if err := ref.Policy.Validate(); err != nil {
			t.Errorf("e=%v: refined policy invalid: %v", e, err)
		}
	}
}

func TestRefineWindowsZeroBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	base, err := OptimizeClustering(d, 0.4, p, ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RefineWindows(d, 0.4, p, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Policy.Windows) != 0 {
		t.Fatal("maxWindows=0 must add no windows")
	}
}

func TestRefineWindowsErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	if _, err := RefineWindows(d, 0.4, DefaultParams(), nil, 1); err == nil {
		t.Fatal("nil base accepted")
	}
	base, err := OptimizeClustering(d, 0.4, DefaultParams(), ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RefineWindows(d, 0.4, Params{}, base, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}
