package core

import (
	"fmt"
	"math"

	"eventcap/internal/dist"
	"eventcap/internal/numeric"
)

// LPFI computes the optimal full-information policy by solving the
// paper's linear program (7)–(8) directly with a simplex solver:
//
//	maximize   Σ α_i c_i
//	subject to Σ ξ_i c_i <= eμ,  0 <= c_i <= 1,
//
// truncated to maxStates event states. The balance (8) is stated as an
// equality in the paper; with surplus energy the capture probability
// cannot improve, so the inequality form has the same optimum and is
// always feasible.
//
// It exists as an independent check of GreedyFI (Theorem 1 asserts the
// greedy solution solves this LP); tests assert agreement to 1e-9. For
// production use prefer GreedyFI, which is O(n log n) instead of simplex.
func LPFI(d dist.Interarrival, e float64, p Params, maxStates int) (*FIResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	if maxStates < 1 {
		return nil, fmt.Errorf("core: LPFI needs at least one state, got %d", maxStates)
	}
	mu := d.Mean()
	budget := e * mu

	horizon := effectiveHorizon(d)
	if horizon > maxStates {
		horizon = maxStates
	}
	alpha := make([]float64, horizon)
	xi := make([]float64, horizon)
	for i := 1; i <= horizon; i++ {
		surv := 1 - d.CDF(i-1)
		alpha[i-1] = d.PMF(i)
		xi[i-1] = p.Delta1*surv + p.Delta2*alpha[i-1]
	}

	lp := numeric.NewLP(horizon)
	lp.SetObjective(alpha, true)
	lp.AddConstraint(xi, numeric.LessEq, budget)
	unit := make([]float64, horizon)
	for i := 0; i < horizon; i++ {
		for j := range unit {
			unit[j] = 0
		}
		unit[i] = 1
		lp.AddConstraint(unit, numeric.LessEq, 1)
	}
	sol, err := lp.Solve()
	if err != nil {
		return nil, fmt.Errorf("solving FI linear program: %w", err)
	}

	v := Vector{Prefix: sol.X}.trimmed()
	if err := v.Validate(); err != nil {
		// Clip simplex roundoff rather than fail.
		for i, c := range v.Prefix {
			if c < 0 {
				v.Prefix[i] = 0
			}
			if c > 1 {
				v.Prefix[i] = 1
			}
		}
	}
	return &FIResult{
		Policy:      v,
		CaptureProb: sol.Objective,
		EnergyRate:  v.EnergyRateFI(d, p),
		Budget:      budget,
		Horizon:     horizon,
		Saturated:   e >= p.SaturationRate(mu),
	}, nil
}
