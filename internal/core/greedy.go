package core

import (
	"fmt"
	"math"
	"sort"

	"eventcap/internal/dist"
)

// Truncation parameters for policy computations. Sums over event states
// stop once the survival 1−F(i) falls below DefaultEpsTail or the state
// index reaches DefaultMaxHorizon; for all distributions in the paper the
// residual mass is below 1e-9 either way.
const (
	DefaultEpsTail    = 1e-12
	DefaultMaxHorizon = 1 << 18
)

// FIResult is a computed full-information policy with its analytic
// performance under the energy assumption.
type FIResult struct {
	// Policy is the activation vector π*_FI(e) = (c_1, c_2, ...).
	Policy Vector
	// CaptureProb is U(π*_FI(e)) = Σ α_i c_i — the asymptotic (K → ∞)
	// event capture probability (Theorem 1).
	CaptureProb float64
	// EnergyRate is the policy's average energy use per slot; equal to e
	// unless the policy saturated (every c_i = 1).
	EnergyRate float64
	// Budget is e·μ, the per-cycle energy allowance of constraint (8).
	Budget float64
	// Horizon is the truncation length used.
	Horizon int
	// Saturated reports e >= δ1 + δ2/μ, where the sensor can afford to
	// always activate and capture probability 1.
	Saturated bool
}

// effectiveHorizon returns the truncation length for d.
func effectiveHorizon(d dist.Interarrival) int {
	lo, hi := 1, DefaultMaxHorizon
	if 1-d.CDF(hi) >= DefaultEpsTail {
		return hi
	}
	// Binary search the smallest i with survival below the target.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if 1-d.CDF(mid) < DefaultEpsTail {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// GreedyFI computes the optimal full-information activation policy of
// Theorem 1 for recharge rate e: allocate the per-cycle energy budget eμ
// to event states in decreasing order of conditional hazard β_i (Remark 1
// covers non-monotone hazards by sorting), filling each chosen state's
// c_i to 1 and splitting the boundary state fractionally.
func GreedyFI(d dist.Interarrival, e float64, p Params) (*FIResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	mu := d.Mean()
	if !(mu > 0) {
		return nil, fmt.Errorf("core: distribution %s has nonpositive mean %g", d.Name(), mu)
	}
	budget := e * mu

	if e >= p.SaturationRate(mu) {
		return &FIResult{
			Policy:      Vector{Tail: 1},
			CaptureProb: 1,
			EnergyRate:  p.SaturationRate(mu),
			Budget:      budget,
			Saturated:   true,
		}, nil
	}

	horizon := effectiveHorizon(d)
	type slot struct {
		idx    int
		hazard float64
		alpha  float64
		xi     float64
	}
	slots := make([]slot, 0, horizon)
	for i := 1; i <= horizon; i++ {
		surv := 1 - d.CDF(i-1)
		if surv <= 0 {
			break
		}
		alpha := d.PMF(i)
		xi := p.Delta1*surv + p.Delta2*alpha
		if xi <= 0 {
			continue
		}
		slots = append(slots, slot{idx: i, hazard: d.Hazard(i), alpha: alpha, xi: xi})
	}
	// Remark 1: order states by decreasing hazard. β_i ordering equals
	// the knapsack density ordering α_i/ξ_i = β_i/(δ1 + δ2 β_i).
	sort.SliceStable(slots, func(a, b int) bool {
		// floateq:ok comparator tie-break: exact inequality routes equal
		// hazards to the deterministic index order below.
		if slots[a].hazard != slots[b].hazard {
			return slots[a].hazard > slots[b].hazard
		}
		return slots[a].idx < slots[b].idx
	})

	prefix := make([]float64, horizon)
	remaining := budget
	for _, s := range slots {
		if remaining <= 0 {
			break
		}
		if remaining >= s.xi {
			prefix[s.idx-1] = 1
			remaining -= s.xi
		} else {
			prefix[s.idx-1] = remaining / s.xi
			remaining = 0
		}
	}

	v := Vector{Prefix: prefix}
	// If the whole tabulated support filled (possible when e is barely
	// below saturation and truncation shaved the far tail), extend the
	// always-on suffix to the untabulated tail.
	full := true
	for _, c := range prefix {
		if c != 1 { // floateq:ok water-filling writes the exact constant 1 when a slot saturates
			full = false
			break
		}
	}
	if full {
		v.Tail = 1
	}
	v = v.trimmed()

	return &FIResult{
		Policy:      v,
		CaptureProb: v.CaptureProbFI(d),
		EnergyRate:  v.EnergyRateFI(d, p),
		Budget:      budget,
		Horizon:     horizon,
	}, nil
}
