package core

import (
	"encoding/json"
	"testing"
)

func TestVectorJSONRoundTrip(t *testing.T) {
	in := Vector{Prefix: []float64{0, 0.25, 1}, Tail: 0.5}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Vector
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 6; i++ {
		if in.At(i) != out.At(i) {
			t.Fatalf("At(%d) changed across round trip", i)
		}
	}
}

func TestVectorJSONRejectsInvalid(t *testing.T) {
	if _, err := json.Marshal(Vector{Prefix: []float64{2}}); err == nil {
		t.Fatal("invalid vector marshaled")
	}
	var v Vector
	if err := json.Unmarshal([]byte(`{"prefix":[0.5,1.5],"tail":0}`), &v); err == nil {
		t.Fatal("invalid vector unmarshaled")
	}
	if err := json.Unmarshal([]byte(`{"prefix":}`), &v); err == nil {
		t.Fatal("syntax error accepted")
	}
	// A failed unmarshal must not clobber the destination.
	v = Vector{Tail: 0.7}
	_ = json.Unmarshal([]byte(`{"prefix":[9],"tail":0}`), &v)
	if v.Tail != 0.7 {
		t.Fatal("failed unmarshal mutated destination")
	}
}

func TestClusteringJSONRoundTrip(t *testing.T) {
	in := ClusteringPolicy{N1: 3, N2: 7, N3: 20, C1: 0.5, C2: 1, C3: 0.25}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ClusteringPolicy
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("round trip changed policy: %+v -> %+v", in, out)
	}
}

func TestClusteringJSONRejectsInvalid(t *testing.T) {
	if _, err := json.Marshal(ClusteringPolicy{N1: 5, N2: 2, N3: 9}); err == nil {
		t.Fatal("invalid policy marshaled")
	}
	var cp ClusteringPolicy
	if err := json.Unmarshal([]byte(`{"n1":1,"n2":2,"n3":2,"c1":1,"c2":1,"c3":1}`), &cp); err == nil {
		t.Fatal("invalid regions unmarshaled")
	}
}

// TestOptimizedPolicySurvivesWire: the policy a base station computes can
// be shipped to a node and reproduce identical behaviour.
func TestOptimizedPolicySurvivesWire(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	pi, err := OptimizeClustering(d, 0.5, p, ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pi.Policy)
	if err != nil {
		t.Fatal(err)
	}
	var wire ClusteringPolicy
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= pi.Policy.N3+10; i++ {
		if wire.At(i) != pi.Policy.At(i) {
			t.Fatalf("wire policy differs at state %d", i)
		}
	}
}
