// Package core implements the paper's contribution: optimal and heuristic
// activation policies for event capture by rechargeable sensors.
//
//   - GreedyFI: the full-information optimal policy of Theorem 1 (greedy
//     water-filling over conditional hazards), generalized to arbitrary
//     hazard orderings per Remark 1.
//   - LPFI: the same optimum obtained by solving the linear program
//     (7)–(8) directly with a simplex solver — an independent check.
//   - Clustering: the partial-information heuristic π'_PI of Section
//     IV-B2 (cooling / hot / recovery regions) with the truncated-DP
//     region optimizer and exact analytic evaluation on the f-chain.
//   - BeliefFilter: the exact Bayes filter over the hidden renewal age
//     that realizes Appendix B's hazards in slotted time.
//   - EBCW: a faithful reconstruction of the last-observation policy
//     class of Jaggi et al. [6], optimally tuned within its class, for the
//     Fig. 5 comparison.
//   - BeliefThreshold: the paper's proposed refinement path toward the
//     exact POMDP optimum (closing remark of Section IV-B2).
//
// All analytic quantities are computed under the paper's "energy
// assumption" (battery never empty); the sim package quantifies the gap
// for finite battery capacity K, which vanishes as K grows (Remark 2).
package core

import (
	"fmt"
	"math"
)

// Params holds the sensor's energy parameters: δ1 is the per-slot sensing
// cost when active, δ2 the additional cost of capturing an event
// (δ2 >= δ1 in the paper; we only require both nonnegative and not both
// zero).
type Params struct {
	Delta1 float64
	Delta2 float64
}

// DefaultParams returns the paper's simulation setting δ1 = 1, δ2 = 6.
func DefaultParams() Params { return Params{Delta1: 1, Delta2: 6} }

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Delta1 < 0 || p.Delta2 < 0 || math.IsNaN(p.Delta1) || math.IsNaN(p.Delta2) {
		return fmt.Errorf("core: energy costs must be nonnegative, got δ1=%g δ2=%g", p.Delta1, p.Delta2)
	}
	if p.Delta1 == 0 && p.Delta2 == 0 {
		return fmt.Errorf("core: at least one of δ1, δ2 must be positive")
	}
	return nil
}

// ActivationCost returns δ1 + δ2, the energy a sensor must hold before it
// takes an activation decision (Section III-A).
func (p Params) ActivationCost() float64 { return p.Delta1 + p.Delta2 }

// SaturationRate returns δ1 + δ2/μ: the recharge rate above which the
// sensor can afford to be active in every slot (the point where all
// activation vectors saturate at 1, Section IV-A2).
func (p Params) SaturationRate(mu float64) float64 {
	return p.Delta1 + p.Delta2/mu
}
