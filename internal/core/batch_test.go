package core

import (
	"testing"
)

// oneRunBrute recomputes OneRunFrom by scanning forward through At.
func oneRunBrute(t *ActivationTable, i int) int64 {
	if i < 1 {
		i = 1
	}
	var run int64
	for {
		if i <= len(t.Prob) {
			if t.Prob[i-1] < 1 {
				return run
			}
			run++
			i++
			continue
		}
		if t.Tail >= 1 {
			return UnboundedRun
		}
		return run
	}
}

// TestCompileBatchOneRuns cross-checks the backwards-walk one runs
// against a forward scan for every state, across the prefix/tail shapes
// the policies produce.
func TestCompileBatchOneRuns(t *testing.T) {
	cases := []Vector{
		{Prefix: []float64{0, 0, 1, 1, 0.5, 1}, Tail: 1},
		{Prefix: []float64{1, 1, 1}, Tail: 0},
		{Prefix: []float64{0, 0.25, 0}, Tail: 1},
		{Prefix: []float64{1, 0, 1, 1}, Tail: 0.5},
		{Prefix: nil, Tail: 1},
		{Prefix: nil, Tail: 0},
		{Prefix: []float64{1}, Tail: 1},
	}
	for _, v := range cases {
		at, err := CompileVector(v)
		if err != nil {
			t.Fatalf("%+v: %v", v, err)
		}
		b := CompileBatch(at)
		for i := 0; i <= len(v.Prefix)+3; i++ {
			got := b.OneRunFrom(i)
			want := oneRunBrute(at, i)
			// A finite run that reaches an always-on tail saturates.
			if want > UnboundedRun {
				want = UnboundedRun
			}
			if got != want {
				t.Errorf("%+v state %d: OneRunFrom %d, brute force %d", v, i, got, want)
			}
		}
	}
}

// TestCompileBatchKeepsZeroRuns checks the embedding: the batch table
// must answer the kernel's zero-run queries unchanged.
func TestCompileBatchKeepsZeroRuns(t *testing.T) {
	at, err := CompileVector(Vector{Prefix: []float64{0, 0, 1, 0}, Tail: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := CompileBatch(at)
	for i := 0; i <= 8; i++ {
		if b.ZeroRunFrom(i) != at.ZeroRunFrom(i) {
			t.Errorf("state %d: batch ZeroRunFrom %d != table %d", i, b.ZeroRunFrom(i), at.ZeroRunFrom(i))
		}
	}
}
