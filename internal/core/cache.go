package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eventcap/internal/dist"
	"eventcap/internal/obs"
)

// Policy computations are pure functions of (distribution, recharge
// rate, energy params, solver options), yet the experiment sweeps
// recompute them at every sweep point — a K-sweep evaluates ten battery
// capacities against one GreedyFI policy, and `experiments -run all`
// asks for the same Weibull(40,3) policies from half a dozen drivers.
// The process-wide cache below computes each distinct input once and
// shares the result.
//
// Cached results are shared pointers: callers must treat a returned
// *FIResult / *PIResult (including its Policy vector's Prefix slice) as
// immutable. Every consumer in this repository only reads them.
//
// Concurrency: the cache is safe for concurrent use, and concurrent
// requests for the same key share a single computation (the first
// caller computes under a per-entry sync.Once, the rest block on it) —
// important now that sweeps fan out across a worker pool, where all
// points of a sweep may ask for the same policy simultaneously.

// cacheEntry is one memoized computation; once guards the single fill.
type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// policyCache is a keyed, concurrency-safe memo table.
type policyCache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	hits    atomic.Int64
	misses  atomic.Int64
}

func (c *policyCache[V]) get(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry[V])
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	// Per-cache counters back CacheStats; the obs counters are the
	// process-wide totals snapshotted into run manifests (never reset).
	if ok {
		c.hits.Add(1)
		obs.CachePolicyHits.Inc()
	} else {
		c.misses.Add(1)
		obs.CachePolicyMisses.Inc()
	}
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

func (c *policyCache[V]) reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

var (
	greedyCache     policyCache[*FIResult]
	lpCache         policyCache[*FIResult]
	lagrangianCache policyCache[*FIResult]
	clusterCache    policyCache[*PIResult]
)

// CacheStats reports the policy cache's cumulative hits and misses
// across all cached solvers (for tests and perf reporting).
func CacheStats() (hits, misses int64) {
	for _, c := range []*policyCache[*FIResult]{&greedyCache, &lpCache, &lagrangianCache} {
		hits += c.hits.Load()
		misses += c.misses.Load()
	}
	hits += clusterCache.hits.Load()
	misses += clusterCache.misses.Load()
	return hits, misses
}

// ResetPolicyCache drops all memoized policies and zeroes the counters
// (for tests and long-lived processes that change workloads wholesale).
func ResetPolicyCache() {
	greedyCache.reset()
	lpCache.reset()
	lagrangianCache.reset()
	clusterCache.reset()
}

// distCacheKey returns the distribution's stable identity, or ok=false
// when the instance cannot be keyed (then callers compute uncached).
func distCacheKey(d dist.Interarrival) (string, bool) {
	if k, ok := d.(dist.Keyed); ok {
		if s := k.CacheKey(); s != "" {
			return s, true
		}
	}
	return "", false
}

// %b formats floats by their exact bit pattern, so keys distinguish
// every distinct float64 input.
func fiKey(solver, dk string, e float64, p Params, extra int) string {
	return fmt.Sprintf("%s|%s|e=%b|d1=%b|d2=%b|x=%d", solver, dk, e, p.Delta1, p.Delta2, extra)
}

// GreedyFICached is GreedyFI behind the policy cache. The returned
// result is shared; treat it as immutable.
func GreedyFICached(d dist.Interarrival, e float64, p Params) (*FIResult, error) {
	dk, ok := distCacheKey(d)
	if !ok {
		return GreedyFI(d, e, p)
	}
	return greedyCache.get(fiKey("greedy", dk, e, p, 0), func() (*FIResult, error) {
		return GreedyFI(d, e, p)
	})
}

// LPFICached is LPFI behind the policy cache. The returned result is
// shared; treat it as immutable.
func LPFICached(d dist.Interarrival, e float64, p Params, maxStates int) (*FIResult, error) {
	dk, ok := distCacheKey(d)
	if !ok {
		return LPFI(d, e, p, maxStates)
	}
	return lpCache.get(fiKey("lp", dk, e, p, maxStates), func() (*FIResult, error) {
		return LPFI(d, e, p, maxStates)
	})
}

// LagrangianFICached is LagrangianFI behind the policy cache. The
// returned result is shared; treat it as immutable.
func LagrangianFICached(d dist.Interarrival, e float64, p Params, maxStates int) (*FIResult, error) {
	dk, ok := distCacheKey(d)
	if !ok {
		return LagrangianFI(d, e, p, maxStates)
	}
	return lagrangianCache.get(fiKey("lagrangian", dk, e, p, maxStates), func() (*FIResult, error) {
		return LagrangianFI(d, e, p, maxStates)
	})
}

// OptimizeClusteringCached is OptimizeClustering behind the policy
// cache. The returned result is shared; treat it as immutable.
func OptimizeClusteringCached(d dist.Interarrival, e float64, p Params, opts ClusteringOptions) (*PIResult, error) {
	dk, ok := distCacheKey(d)
	if !ok {
		return OptimizeClustering(d, e, p, opts)
	}
	key := fmt.Sprintf("cluster|%s|e=%b|d1=%b|d2=%b|sl=%d|mg=%d|cp=%d",
		dk, e, p.Delta1, p.Delta2, opts.SearchLimit, opts.MaxGap, opts.CoarsePoints)
	return clusterCache.get(key, func() (*PIResult, error) {
		return OptimizeClustering(d, e, p, opts)
	})
}
