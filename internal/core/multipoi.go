package core

import (
	"fmt"
	"math"
	"sort"

	"eventcap/internal/dist"
	"eventcap/internal/renewal"
)

// Multi-PoI extension (beyond the paper's single point of interest; its
// related work credits Li et al. with two sensors and two event streams).
// One full-information sensor watches M independent renewal processes but
// can monitor at most one per slot. The Lagrangian decomposition of
// Theorem 1 extends directly: with multiplier λ on energy, the per-slot
// optimal action is to monitor the PoI with the highest current hazard
// β* and activate iff β* − λ(δ1 + δ2 β*) > 0 — a hazard-threshold index
// policy. Under full information the M age processes evolve
// independently of the sensor's actions, so the stationary joint law is
// the product of the equilibrium age distributions, and the threshold can
// be calibrated analytically.

// MultiPoIResult is a calibrated multi-PoI threshold policy.
type MultiPoIResult struct {
	// Threshold is the activation threshold on the maximum hazard.
	Threshold float64
	// CaptureProb is the analytic fraction of all events (across PoIs)
	// captured, under the energy assumption and stationary ages.
	CaptureProb float64
	// EnergyRate is the analytic average energy use per slot.
	EnergyRate float64
	// EventRate is the total events per slot across PoIs.
	EventRate float64
}

// maxHazardCell is one atom of the distribution of the per-slot maximum
// hazard across PoIs.
type maxHazardCell struct {
	hazard float64
	prob   float64
}

// maxHazardDistribution computes the stationary distribution of
// B = max_m β_m(age_m) with independent equilibrium ages.
func maxHazardDistribution(dists []dist.Interarrival) ([]maxHazardCell, error) {
	// Collect each PoI's distribution over hazard values. The per-PoI
	// histogram is accumulated in a map but immediately lowered to a
	// slice sorted by hazard: cdfAt below sums float masses, and summing
	// in map order would make the low-order bits of the CDF — and thus
	// the emitted atoms — vary run to run.
	perPoI := make([][]maxHazardCell, len(dists))
	valueSet := make(map[float64]struct{})
	for m, d := range dists {
		tab, err := dist.Tabulate(d, 1e-9, 1<<16)
		if err != nil {
			return nil, fmt.Errorf("PoI %d: %w", m, err)
		}
		proc, err := renewal.New(tab.Alpha)
		if err != nil {
			return nil, fmt.Errorf("PoI %d: %w", m, err)
		}
		eq := proc.EquilibriumAge()
		hist := make(map[float64]float64)
		for j, w := range eq {
			if w <= 0 {
				continue
			}
			h := d.Hazard(j + 1)
			hist[h] += w
			valueSet[h] = struct{}{}
		}
		pairs := make([]maxHazardCell, 0, len(hist))
		// nondeterm:ok collect-then-sort: keys are sorted before any use
		for h, w := range hist {
			pairs = append(pairs, maxHazardCell{hazard: h, prob: w})
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].hazard < pairs[b].hazard })
		perPoI[m] = pairs
	}
	values := make([]float64, 0, len(valueSet))
	// nondeterm:ok collect-then-sort: keys are sorted before any use
	for v := range valueSet {
		values = append(values, v)
	}
	sort.Float64s(values)

	// P(B <= v) = Π_m P(β_m <= v); atoms by differencing. Each PoI's
	// mass accumulates in ascending-hazard order so the sum rounds
	// identically on every run.
	cdfAt := func(v float64) float64 {
		prod := 1.0
		for _, pairs := range perPoI {
			var mass float64
			for _, cell := range pairs {
				if cell.hazard > v {
					break
				}
				mass += cell.prob
			}
			prod *= mass
		}
		return prod
	}
	cells := make([]maxHazardCell, 0, len(values))
	prev := 0.0
	for _, v := range values {
		c := cdfAt(v)
		if p := c - prev; p > 1e-15 {
			cells = append(cells, maxHazardCell{hazard: v, prob: p})
		}
		prev = c
	}
	return cells, nil
}

// OptimizeMultiPoI calibrates the hazard-threshold index policy for the
// given PoIs at recharge rate e: the largest threshold whose analytic
// energy rate fits within e (energy is nonincreasing in the threshold),
// refined so the balance is met in expectation.
func OptimizeMultiPoI(dists []dist.Interarrival, e float64, p Params) (*MultiPoIResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("core: OptimizeMultiPoI needs at least one PoI")
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	cells, err := maxHazardDistribution(dists)
	if err != nil {
		return nil, err
	}
	eventRate := 0.0
	for _, d := range dists {
		eventRate += 1 / d.Mean()
	}

	// Analytic energy and capture rates of threshold tau.
	rates := func(tau float64) (energy, capture float64) {
		for _, c := range cells {
			if c.hazard >= tau && c.hazard > 0 {
				energy += c.prob * (p.Delta1 + p.Delta2*c.hazard)
				capture += c.prob * c.hazard
			}
		}
		return energy, capture
	}

	// Thresholds of interest are the distinct hazard atoms (plus +inf).
	taus := make([]float64, 0, len(cells)+1)
	for _, c := range cells {
		taus = append(taus, c.hazard)
	}
	sort.Float64s(taus)

	// Find the smallest feasible threshold (most activation within e).
	best := &MultiPoIResult{Threshold: math.Inf(1), EventRate: eventRate}
	for i := len(taus) - 1; i >= 0; i-- {
		energy, capture := rates(taus[i])
		if energy <= e*(1+1e-9)+1e-12 {
			best = &MultiPoIResult{
				Threshold:   taus[i],
				CaptureProb: capture / eventRate,
				EnergyRate:  energy,
				EventRate:   eventRate,
			}
			continue
		}
		break
	}
	if math.IsInf(best.Threshold, 1) {
		// Even the highest atom exceeds the budget: the policy can only
		// activate on a fraction of those slots. Report the top atom with
		// the (unmodelled) denial fraction folded into CaptureProb.
		top := taus[len(taus)-1]
		energy, capture := rates(top)
		frac := 1.0
		if energy > 0 {
			frac = e / energy
			if frac > 1 {
				frac = 1
			}
		}
		best = &MultiPoIResult{
			Threshold:   top,
			CaptureProb: frac * capture / eventRate,
			EnergyRate:  frac * energy,
			EventRate:   eventRate,
		}
	}
	return best, nil
}
