package core

import (
	"eventcap/internal/dist"
	"eventcap/internal/numeric"
)

// BeliefFilter is the exact Bayes filter over the hidden renewal age used
// by the partial-information analysis. The age is the number of slots
// since the last true event (age 1 means the last event happened in the
// previous slot). It realizes Appendix B's hazards in slotted time:
// instead of evaluating the renewal integrals G_t(x) directly, the filter
// propagates the posterior over ages through the policy's action sequence
// and reads P(event this slot) off the hazards β_j.
//
// Update equations, writing b for the current posterior, β̂ = Σ b(j)β_j,
// and c for the activation probability used this slot:
//
//	capture               → reset to the point mass at age 1
//	no capture (prob 1−cβ̂) → b'(1)  = β̂(1−c) / (1−cβ̂)      (missed event)
//	                         b'(j+1) = b(j)(1−β_j) / (1−cβ̂)  (no event)
//
// For deterministic c ∈ {0, 1} this is exactly the paper's construction;
// for fractional c it marginalizes the policy's randomization.
//
// Hazards β_j are cached on first use: the filter is re-run thousands of
// times by the clustering-region optimizer and distribution hazards
// (Weibull, Pareto) cost several transcendental calls each.
type BeliefFilter struct {
	hc *hazardCache
	b  []float64 // b[j-1] = P(age == j)

	scratch []float64 // reused buffer for updates

	prob      float64 // memoized EventProb for the current belief
	probValid bool
}

// maxBeliefAges caps the posterior's age support. Mass that would age
// past the cap is folded into an absorbing elder bucket (see
// AdvanceNoCapture); for every distribution in the paper the induced
// hazard error is below 1e-5.
const maxBeliefAges = 512

// hazardCache memoizes a distribution's hazards; clones of a filter share
// one cache (single-threaded use, like the filter itself).
type hazardCache struct {
	d  dist.Interarrival
	hz []float64
}

func (h *hazardCache) at(j int) float64 {
	for len(h.hz) < j {
		h.hz = append(h.hz, h.d.Hazard(len(h.hz)+1))
	}
	return h.hz[j-1]
}

// NewBeliefFilter returns a filter initialized to a fresh capture
// (age 1 with certainty).
func NewBeliefFilter(d dist.Interarrival) *BeliefFilter {
	f := &BeliefFilter{
		hc: &hazardCache{d: d, hz: make([]float64, 0, 256)},
		b:  make([]float64, 1, 64),
	}
	f.b[0] = 1
	return f
}

// Clone returns an independent copy of the filter sharing the hazard
// cache with the original.
func (f *BeliefFilter) Clone() *BeliefFilter {
	out := &BeliefFilter{
		hc:        f.hc,
		b:         make([]float64, len(f.b), cap(f.b)),
		prob:      f.prob,
		probValid: f.probValid,
	}
	copy(out.b, f.b)
	return out
}

// Reset returns the filter to the fresh-capture state.
func (f *BeliefFilter) Reset() {
	f.b = f.b[:1]
	f.b[0] = 1
	f.probValid = false
}

// hazardAt returns β_j from the shared cache.
func (f *BeliefFilter) hazardAt(j int) float64 { return f.hc.at(j) }

// EventProb returns β̂ = P(an event occurs in the current slot), the
// partial-information hazard of the paper's f-chain. The value is
// memoized until the belief changes. Plain summation suffices here: the
// belief has at most a few hundred entries in [0, 1].
func (f *BeliefFilter) EventProb() float64 {
	if f.probValid {
		return f.prob
	}
	var sum float64
	for j, w := range f.b {
		if w != 0 {
			sum += w * f.hazardAt(j+1)
		}
	}
	if sum > 1 {
		sum = 1
	}
	if sum < 0 {
		sum = 0
	}
	f.prob = sum
	f.probValid = true
	return sum
}

// AdvanceNoCapture applies one slot of dynamics conditioned on "no
// capture" when the sensor activated with probability c. For c == 0 this
// is the unobserved prediction step; for c == 1 it conditions on the
// sensor having seen no event.
func (f *BeliefFilter) AdvanceNoCapture(c float64) {
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	hazard := f.EventProb()
	denom := 1 - c*hazard
	n := len(f.b)
	if cap(f.scratch) < n+1 {
		f.scratch = make([]float64, n+1, 2*(n+1))
	}
	next := f.scratch[:n+1]
	for i := range next {
		next[i] = 0
	}
	f.probValid = false
	if denom <= 1e-300 {
		// No-capture is (numerically) impossible: the event was certain
		// and the sensor active. Keep a defensive reset; callers treat
		// this path as probability ~0 anyway.
		f.scratch = f.b
		f.b = next[:1]
		f.b[0] = 1
		return
	}
	inv := 1 / denom
	next[0] = hazard * (1 - c) * inv
	for j := 0; j < n; j++ {
		w := f.b[j]
		if w == 0 {
			continue
		}
		to := j + 1
		if to >= maxBeliefAges {
			// Absorbing elder bucket: heavy-tailed (DFR) distributions
			// keep non-negligible mass at arbitrarily old ages; folding
			// it at maxBeliefAges with that age's hazard biases β̂ by
			// O(mass(age>cap)·hazard(cap)) ≈ 1e-5 for Pareto(2,10),
			// while keeping updates O(cap).
			to = maxBeliefAges - 1
		}
		next[to] += w * (1 - f.hazardAt(j+1)) * inv
	}
	if len(next) > maxBeliefAges {
		next = next[:maxBeliefAges]
	}
	// Trim the negligible old-age tail so long unobserved stretches stay
	// O(support) instead of O(elapsed slots). The dropped mass is below
	// 1e-14 per step, far under the 1e-13 survival tolerance of the
	// f-chain sums.
	var tail float64
	end := len(next)
	for end > 1 {
		tail += next[end-1]
		if tail >= 1e-14 {
			break
		}
		end--
	}
	f.scratch = f.b
	f.b = next[:end]
}

// Belief returns a copy of the posterior over ages (index j-1 holds
// P(age == j)).
func (f *BeliefFilter) Belief() []float64 {
	out := make([]float64, len(f.b))
	copy(out, f.b)
	return out
}

// TotalMass returns the posterior's total probability mass (1 up to
// roundoff); exported for invariant tests.
func (f *BeliefFilter) TotalMass() float64 {
	return numeric.Sum(f.b)
}
