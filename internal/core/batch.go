package core

// BatchTable augments an ActivationTable with the run lengths the batch
// engine needs on top of the kernel's zero runs: for every state, how many
// consecutive states starting there activate with certainty. During such a
// run the policy consumes no decision randomness (Bernoulli(1) draws
// nothing) and the sensor is awake every slot, so the whole stretch can be
// applied to the battery in one closed-form step — the awake-side mirror
// of the kernel's sleep fast-forward.
type BatchTable struct {
	*ActivationTable
	// OneRun[i-1] is the number of consecutive states starting at i whose
	// probability is >= 1 (0 when state i is not certain). A run extending
	// into a Tail >= 1 saturates at UnboundedRun.
	OneRun []int64
}

// CompileBatch derives the batch runs from an already-compiled table. The
// walk mirrors CompileVector's backwards zero-run pass.
func CompileBatch(t *ActivationTable) *BatchTable {
	b := &BatchTable{
		ActivationTable: t,
		OneRun:          make([]int64, len(t.Prob)),
	}
	var run int64
	if t.Tail >= 1 {
		run = UnboundedRun
	}
	for i := len(t.Prob) - 1; i >= 0; i-- {
		if t.Prob[i] < 1 {
			run = 0
		} else if run < UnboundedRun {
			run++
		}
		b.OneRun[i] = run
	}
	return b
}

// OneRunFrom returns how many consecutive states starting at i activate
// with certainty: 0 when state i can stay asleep, UnboundedRun when the
// policy is always-on from i forward. States below 1 are treated as state
// 1, matching ZeroRunFrom.
func (b *BatchTable) OneRunFrom(i int) int64 {
	if i < 1 {
		i = 1
	}
	if i <= len(b.OneRun) {
		return b.OneRun[i-1]
	}
	if b.Tail >= 1 {
		return UnboundedRun
	}
	return 0
}
