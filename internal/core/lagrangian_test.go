package core

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// TestLagrangianMatchesGreedy: the third derivation of the FI optimum
// (Lagrangian decomposition of the constrained MDP) agrees with Theorem
// 1's greedy construction on the paper's workloads and on randomized
// empirical ones.
func TestLagrangianMatchesGreedy(t *testing.T) {
	p := DefaultParams()
	w := mustWeibull(t, 40, 3)
	for _, e := range []float64{0.1, 0.3, 0.5, 0.8} {
		g, err := GreedyFI(w, e, p)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LagrangianFI(w, e, p, 500)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.CaptureProb-l.CaptureProb) > 1e-6 {
			t.Errorf("e=%v: greedy U=%v, Lagrangian U=%v", e, g.CaptureProb, l.CaptureProb)
		}
		if math.Abs(l.EnergyRate-e) > 1e-6 {
			t.Errorf("e=%v: Lagrangian energy %v not balanced", e, l.EnergyRate)
		}
	}

	src := rng.New(81, 0)
	for trial := 0; trial < 15; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 20))
		e := 0.85 * src.Float64() * p.SaturationRate(d.Mean())
		g, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LagrangianFI(d, e, p, 200)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.CaptureProb-l.CaptureProb) > 1e-6 {
			t.Errorf("trial %d (%s, e=%v): greedy U=%v, Lagrangian U=%v",
				trial, d.Name(), e, g.CaptureProb, l.CaptureProb)
		}
	}
}

func TestLagrangianSaturated(t *testing.T) {
	w := mustWeibull(t, 40, 3)
	p := DefaultParams()
	l, err := LagrangianFI(w, p.SaturationRate(w.Mean())+1, p, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Saturated || l.CaptureProb != 1 {
		t.Fatalf("saturated result wrong: %+v", l)
	}
}

func TestLagrangianErrors(t *testing.T) {
	w := mustWeibull(t, 40, 3)
	if _, err := LagrangianFI(w, -1, DefaultParams(), 100); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := LagrangianFI(w, 0.5, Params{}, 100); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := LagrangianFI(w, 0.5, DefaultParams(), 1); err == nil {
		t.Fatal("degenerate truncation accepted")
	}
	if _, err := BuildFIMDP(w, DefaultParams(), 0.1, 1); err == nil {
		t.Fatal("degenerate MDP accepted")
	}
}

// TestFIMDPSolversFindThreshold: solving the explicit Figure-2 MDP with
// the generic machinery (relative value iteration AND policy iteration)
// yields a hazard-threshold policy — the structure Theorem 1 proves.
func TestFIMDPSolversFindThreshold(t *testing.T) {
	d := mustEmpirical(t, []float64{0.05, 0.15, 0.2, 0.25, 0.2, 0.15})
	p := DefaultParams()
	const lambda = 0.06
	m, err := BuildFIMDP(d, p, lambda, 6)
	if err != nil {
		t.Fatal(err)
	}
	rvi, err := m.RelativeValueIteration(1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	pit, err := m.PolicyIteration(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rvi.Gain-pit.Gain) > 1e-7 {
		t.Fatalf("RVI gain %v != policy-iteration gain %v", rvi.Gain, pit.Gain)
	}
	// Threshold structure in the hazard.
	hz := make([]float64, 6)
	for i := 1; i <= 6; i++ {
		hz[i-1] = d.Hazard(i)
	}
	hz[5] = 1
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if rvi.Policy[i] == 1 && hz[j] > hz[i]+1e-12 && rvi.Policy[j] == 0 {
				t.Fatalf("non-threshold optimal policy: active at β=%v, idle at β=%v", hz[i], hz[j])
			}
		}
	}
	// The per-state activation rule must match the Lagrangian
	// decomposition: activate iff β − λ(δ1 + δ2β) > 0.
	for i := 0; i < 6; i++ {
		want := 0
		if hz[i]-lambda*(p.Delta1+p.Delta2*hz[i]) > 1e-12 {
			want = 1
		}
		if rvi.Policy[i] != want {
			t.Fatalf("state %d: MDP action %d, decomposition predicts %d", i+1, rvi.Policy[i], want)
		}
	}
}
