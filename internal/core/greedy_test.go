package core

import (
	"math"
	"testing"

	"eventcap/internal/dist"
	"eventcap/internal/rng"
)

func mustWeibull(t testing.TB, scale, shape float64) *dist.Weibull {
	t.Helper()
	w, err := dist.NewWeibull(scale, shape)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustPareto(t testing.TB, alpha, xm float64) *dist.Pareto {
	t.Helper()
	p, err := dist.NewPareto(alpha, xm)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustEmpirical(t testing.TB, w []float64) *dist.Empirical {
	t.Helper()
	e, err := dist.NewEmpirical(w)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomEmpirical(src *rng.Source, maxLen int) []float64 {
	n := 2 + src.Intn(maxLen-1)
	w := make([]float64, n)
	for i := range w {
		if src.Bernoulli(0.3) {
			continue // sprinkle zero-mass slots
		}
		w[i] = src.Float64() + 0.01
	}
	w[src.Intn(n)] += 0.5
	return w
}

// TestTheorem1TwoSlotExample reproduces the paper's Section IV-A2
// illustration: β1 = 0.6, β2 = 1 (α = (0.6, 0.4)). With energy for the
// cheaper slot only, all of it goes to slot 2 (100% efficiency); surplus
// then flows to slot 1 (60% efficiency).
func TestTheorem1TwoSlotExample(t *testing.T) {
	d := mustEmpirical(t, []float64{0.6, 0.4})
	p := Params{Delta1: 1, Delta2: 0} // the example counts activations only
	mu := d.Mean()                    // 1.4

	// ξ1 = 1, ξ2 = 1−F(1) = 0.4. Budget exactly ξ2: all to slot 2.
	e := 0.4 / mu
	res, err := GreedyFI(d, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policy.Prefix) < 2 {
		t.Fatalf("policy too short: %+v", res.Policy)
	}
	if math.Abs(res.Policy.At(2)-1) > 1e-9 || math.Abs(res.Policy.At(1)) > 1e-9 {
		t.Fatalf("want (0, 1), got (%v, %v)", res.Policy.At(1), res.Policy.At(2))
	}
	if math.Abs(res.CaptureProb-0.4) > 1e-12 {
		t.Fatalf("U = %v, want 0.4", res.CaptureProb)
	}

	// Budget ξ2 + ξ1/2: slot 2 full, slot 1 at one half.
	e = (0.4 + 0.5) / mu
	res, err = GreedyFI(d, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Policy.At(2)-1) > 1e-9 || math.Abs(res.Policy.At(1)-0.5) > 1e-9 {
		t.Fatalf("want (0.5, 1), got (%v, %v)", res.Policy.At(1), res.Policy.At(2))
	}
	if want := 0.4 + 0.5*0.6; math.Abs(res.CaptureProb-want) > 1e-12 {
		t.Fatalf("U = %v, want %v", res.CaptureProb, want)
	}
}

// TestGreedyMatchesTheorem1Formula checks the closed form of Theorem 1 on
// a distribution with increasing hazards: π* = (0,...,0, c_{k+1}, 1, ...)
// and U = 1 − F(k+1) + c_{k+1}·α_{k+1}.
func TestGreedyMatchesTheorem1Formula(t *testing.T) {
	d := mustWeibull(t, 40, 3) // increasing hazard
	p := DefaultParams()
	mu := d.Mean()
	for _, e := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
		res, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		// Find k: the last state with c = 0 before the active suffix.
		k := 0
		for i := 1; i <= len(res.Policy.Prefix); i++ {
			if res.Policy.At(i) == 0 {
				k = i
			} else {
				break
			}
		}
		// Structure: zeros through k, fractional at k+1, ones after.
		ck1 := res.Policy.At(k + 1)
		for i := k + 2; i <= len(res.Policy.Prefix); i++ {
			if res.Policy.At(i) != 1 {
				t.Fatalf("e=%v: non-one entry %v at state %d after boundary %d", e, res.Policy.At(i), i, k+1)
			}
		}
		// Budget identity: Σ ξ_i c_i = eμ.
		if got := res.Policy.EnergyPerCycleFI(d, p); math.Abs(got-e*mu) > 1e-6 {
			t.Fatalf("e=%v: energy per cycle %v, want %v", e, got, e*mu)
		}
		// Theorem's capture probability.
		want := 1 - d.CDF(k+1) + ck1*d.PMF(k+1)
		if math.Abs(res.CaptureProb-want) > 1e-9 {
			t.Fatalf("e=%v: U=%v, formula %v", e, res.CaptureProb, want)
		}
	}
}

// TestGreedyMatchesLP is the headline consistency check: Theorem 1's
// greedy construction equals the simplex optimum of program (7)-(8) on
// randomized renewal processes.
func TestGreedyMatchesLP(t *testing.T) {
	src := rng.New(2012, 0)
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 25))
		e := src.Float64() * p.SaturationRate(d.Mean()) * 1.1
		greedy, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lp, err := LPFI(d, e, p, 200)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(greedy.CaptureProb-lp.CaptureProb) > 1e-7 {
			t.Fatalf("trial %d (%s, e=%v): greedy U=%v, LP U=%v",
				trial, d.Name(), e, greedy.CaptureProb, lp.CaptureProb)
		}
	}
}

func TestGreedyEnergyBalanced(t *testing.T) {
	p := DefaultParams()
	for _, d := range []dist.Interarrival{
		mustWeibull(t, 40, 3),
		mustPareto(t, 2, 10),
		mustEmpirical(t, []float64{1, 2, 3, 4, 3, 2, 1}),
	} {
		sat := p.SaturationRate(d.Mean())
		for _, frac := range []float64{0.1, 0.4, 0.7, 0.95} {
			e := frac * sat
			res, err := GreedyFI(d, e, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.EnergyRate-e) > 1e-6*(1+e) {
				t.Errorf("%s e=%v: policy energy rate %v != e", d.Name(), e, res.EnergyRate)
			}
			if res.CaptureProb < 0 || res.CaptureProb > 1 {
				t.Errorf("%s e=%v: U=%v out of range", d.Name(), e, res.CaptureProb)
			}
		}
	}
}

func TestGreedySaturation(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	res, err := GreedyFI(d, p.SaturationRate(d.Mean())+0.1, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.CaptureProb != 1 || res.Policy.Tail != 1 {
		t.Fatalf("saturated result wrong: %+v", res)
	}
}

func TestGreedyZeroRate(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	res, err := GreedyFI(d, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CaptureProb != 0 {
		t.Fatalf("U=%v at e=0, want 0", res.CaptureProb)
	}
}

func TestGreedyMonotoneInRate(t *testing.T) {
	d := mustPareto(t, 2, 10)
	p := DefaultParams()
	prev := -1.0
	for e := 0.05; e < 1.5; e += 0.05 {
		res, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.CaptureProb < prev-1e-9 {
			t.Fatalf("U decreased at e=%v: %v -> %v", e, prev, res.CaptureProb)
		}
		prev = res.CaptureProb
	}
}

// TestGreedyParetoHotRegion: with decreasing hazards past the minimum,
// the greedy policy activates a contiguous block starting right after the
// Pareto minimum (slot 11 for P(2,10)).
func TestGreedyParetoHotRegion(t *testing.T) {
	d := mustPareto(t, 2, 10)
	res, err := GreedyFI(d, 0.3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if res.Policy.At(i) != 0 {
			t.Fatalf("activation %v below the Pareto minimum at state %d", res.Policy.At(i), i)
		}
	}
	if res.Policy.At(11) != 1 {
		t.Fatalf("state 11 (highest hazard) not fully active: %v", res.Policy.At(11))
	}
	// Contiguous: after the first non-one entry past 11, all zeros.
	seenPartial := false
	for i := 11; i <= len(res.Policy.Prefix); i++ {
		c := res.Policy.At(i)
		switch {
		case seenPartial && c != 0:
			t.Fatalf("non-contiguous allocation: c=%v at state %d after boundary", c, i)
		case c != 1 && c != 0:
			seenPartial = true
		case c == 0:
			seenPartial = true
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	if _, err := GreedyFI(d, -1, DefaultParams()); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := GreedyFI(d, 0.5, Params{Delta1: -1, Delta2: 1}); err == nil {
		t.Fatal("negative δ1 accepted")
	}
	if _, err := GreedyFI(d, 0.5, Params{}); err == nil {
		t.Fatal("all-zero costs accepted")
	}
}

func TestLPFIErrors(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	if _, err := LPFI(d, -1, DefaultParams(), 100); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := LPFI(d, 0.5, DefaultParams(), 0); err == nil {
		t.Fatal("zero states accepted")
	}
}

func BenchmarkGreedyFIWeibull(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyFI(d, 0.5, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPFIWeibull(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LPFI(d, 0.5, p, 200); err != nil {
			b.Fatal(err)
		}
	}
}
