package core

import (
	"fmt"
	"math"
)

// UnboundedRun is the saturating run length an ActivationTable reports for
// states inside an infinite zero tail: the policy never activates again no
// matter how far the state advances. It is far below math.MaxInt64 so
// callers may add slot offsets to it without overflow.
const UnboundedRun = math.MaxInt64 / 4

// ActivationTable is a Vector compiled for the simulation kernel: a dense
// probability array plus, for every state, the length of the run of
// consecutive zero-probability states starting there. The kernel uses the
// run lengths to fast-forward sleep intervals — a run of z zero states
// means z slots with no activation draw and no battery consumption, so the
// whole stretch can be applied to the battery in one step.
type ActivationTable struct {
	// Prob[i-1] is the activation probability in state i, for states
	// 1..len(Prob); Tail applies to every later state.
	Prob []float64
	Tail float64
	// ZeroRun[i-1] is the number of consecutive states starting at i whose
	// probability is zero (0 when Prob[i-1] > 0). A run that extends into a
	// zero Tail saturates at UnboundedRun.
	ZeroRun []int64
}

// CompileVector compiles v into an ActivationTable. It fails when v has an
// out-of-range probability, so callers can fall back to an uncompiled path
// instead of simulating a malformed policy.
func CompileVector(v Vector) (*ActivationTable, error) {
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("core: cannot compile activation vector: %w", err)
	}
	t := &ActivationTable{
		Prob:    make([]float64, len(v.Prefix)),
		Tail:    v.Tail,
		ZeroRun: make([]int64, len(v.Prefix)),
	}
	copy(t.Prob, v.Prefix)
	// Walk backwards so each state's run extends the next state's run.
	var run int64
	if t.Tail == 0 {
		run = UnboundedRun
	}
	for i := len(t.Prob) - 1; i >= 0; i-- {
		if t.Prob[i] > 0 {
			run = 0
		} else if run < UnboundedRun {
			run++
		}
		t.ZeroRun[i] = run
	}
	return t, nil
}

// At returns the activation probability for state i (0 for i < 1,
// mirroring Vector.At).
func (t *ActivationTable) At(i int) float64 {
	if i < 1 {
		return 0
	}
	if i <= len(t.Prob) {
		return t.Prob[i-1]
	}
	return t.Tail
}

// ZeroRunFrom returns how many consecutive states starting at i have zero
// activation probability: 0 when state i itself can activate, UnboundedRun
// when the policy stays silent forever from i on. States below 1 are
// treated as state 1 (Vector.At is zero there only for i < 1, which no
// simulated state reaches).
func (t *ActivationTable) ZeroRunFrom(i int) int64 {
	if i < 1 {
		i = 1
	}
	if i <= len(t.ZeroRun) {
		return t.ZeroRun[i-1]
	}
	if t.Tail == 0 {
		return UnboundedRun
	}
	return 0
}
