package core

import (
	"math"
	"testing"

	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

func TestVectorAt(t *testing.T) {
	v := Vector{Prefix: []float64{0.1, 0.2, 0.3}, Tail: 0.9}
	cases := map[int]float64{-1: 0, 0: 0, 1: 0.1, 2: 0.2, 3: 0.3, 4: 0.9, 100: 0.9}
	for i, want := range cases {
		if got := v.At(i); got != want {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (Vector{Prefix: []float64{0, 1}, Tail: 0.5}).Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := (Vector{Prefix: []float64{1.5}}).Validate(); err == nil {
		t.Fatal("prefix > 1 accepted")
	}
	if err := (Vector{Prefix: []float64{-0.1}}).Validate(); err == nil {
		t.Fatal("negative prefix accepted")
	}
	if err := (Vector{Tail: 2}).Validate(); err == nil {
		t.Fatal("tail > 1 accepted")
	}
}

func TestVectorTrimmed(t *testing.T) {
	v := Vector{Prefix: []float64{0.5, 1, 1, 1}, Tail: 1}
	got := v.trimmed()
	if len(got.Prefix) != 1 || got.Prefix[0] != 0.5 || got.Tail != 1 {
		t.Fatalf("trimmed = %+v", got)
	}
	// Values must match everywhere after trimming.
	for i := 0; i <= 10; i++ {
		if v.At(i) != got.At(i) {
			t.Fatalf("At(%d) changed by trimming", i)
		}
	}
}

func TestCaptureProbKnown(t *testing.T) {
	d := mustEmpirical(t, []float64{0.2, 0.3, 0.5})
	v := Vector{Prefix: []float64{1, 0, 0.5}}
	want := 0.2*1 + 0.5*0.5
	if got := v.CaptureProbFI(d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("U = %v, want %v", got, want)
	}
}

func TestCaptureProbTailEqualsLongPrefix(t *testing.T) {
	d := mustWeibull(t, 10, 2)
	tailVec := Vector{Prefix: []float64{0, 0, 0.5}, Tail: 0.8}
	longPrefix := make([]float64, 500)
	for i := range longPrefix {
		longPrefix[i] = tailVec.At(i + 1)
	}
	longVec := Vector{Prefix: longPrefix}
	if a, b := tailVec.CaptureProbFI(d), longVec.CaptureProbFI(d); math.Abs(a-b) > 1e-9 {
		t.Fatalf("tail form %v != explicit form %v", a, b)
	}
	p := DefaultParams()
	if a, b := tailVec.EnergyRateFI(d, p), longVec.EnergyRateFI(d, p); math.Abs(a-b) > 1e-9 {
		t.Fatalf("tail energy %v != explicit energy %v", a, b)
	}
}

// TestActivationsPerCycleIdentity verifies Eq. (4):
// Σ_i α_i (Σ_{j<=i} c_j) == Σ_i c_i (1 − F(i−1)).
func TestActivationsPerCycleIdentity(t *testing.T) {
	src := rng.New(4, 4)
	for trial := 0; trial < 25; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 20))
		n := d.MaxSupport()
		prefix := make([]float64, n)
		for i := range prefix {
			prefix[i] = src.Float64()
		}
		v := Vector{Prefix: prefix}

		var double numeric.KahanSum
		for i := 1; i <= n; i++ {
			var inner float64
			for j := 1; j <= i; j++ {
				inner += v.At(j)
			}
			double.Add(d.PMF(i) * inner)
		}
		if got, want := v.ActivationsPerCycle(d), double.Value(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ActivationsPerCycle %v != double sum %v", trial, got, want)
		}
	}
}

func TestAlwaysOnEnergyRateIsSaturation(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	v := Vector{Tail: 1}
	// Always-on: n(π) = μ activations per cycle, one capture per cycle.
	if got, want := v.EnergyRateFI(d, p), p.SaturationRate(d.Mean()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("always-on energy rate %v, want saturation %v", got, want)
	}
	if got := v.CaptureProbFI(d); math.Abs(got-1) > 1e-9 {
		t.Fatalf("always-on U = %v, want 1", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Delta1: 1}).Validate(); err != nil {
		t.Fatalf("δ2=0 should be legal: %v", err)
	}
	if err := (Params{}).Validate(); err == nil {
		t.Fatal("zero params accepted")
	}
	if err := (Params{Delta1: math.NaN(), Delta2: 1}).Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
	p := DefaultParams()
	if p.ActivationCost() != 7 {
		t.Fatalf("activation cost %v, want 7", p.ActivationCost())
	}
	if got := p.SaturationRate(35); math.Abs(got-(1+6.0/35)) > 1e-12 {
		t.Fatalf("saturation rate %v", got)
	}
}
