package core

import (
	"fmt"
	"sort"

	"eventcap/internal/dist"
	"eventcap/internal/numeric"
)

// WindowPolicy generalizes the clustering policy with additional
// transition points — the refinement the paper sketches at the end of
// Section IV-B2 ("introduce transition points c_n4, c_n5, ..., after
// c_n3"), which converges toward the exact POMDP optimum π*_PI as more
// points are added. The policy is a base clustering policy plus extra
// sleep windows carved out of the aggressive recovery tail:
//
//	c_i = 0            if i falls inside any extra window
//	c_i = Base.At(i)   otherwise.
//
// Each window [Start, Start+Len) must lie at or after Base.N3.
type WindowPolicy struct {
	Base    ClusteringPolicy
	Windows []SleepWindow
}

// SleepWindow is a half-open sleep interval [Start, Start+Len) of
// f-states.
type SleepWindow struct {
	Start, Len int
}

// Validate checks the base policy and window placement (ordered,
// disjoint, within the recovery tail).
func (w WindowPolicy) Validate() error {
	if err := w.Base.Validate(); err != nil {
		return err
	}
	prevEnd := w.Base.N3 + 1 // the recovery tail must start with >=1 active slot
	for k, win := range w.Windows {
		if win.Len < 1 {
			return fmt.Errorf("core: sleep window %d has length %d", k, win.Len)
		}
		if win.Start < prevEnd {
			return fmt.Errorf("core: sleep window %d starts at %d, before %d", k, win.Start, prevEnd)
		}
		prevEnd = win.Start + win.Len + 1 // at least one active slot between windows
	}
	return nil
}

// At returns the activation probability in f-state i.
func (w WindowPolicy) At(i int) float64 {
	for _, win := range w.Windows {
		if i >= win.Start && i < win.Start+win.Len {
			return 0
		}
	}
	return w.Base.At(i)
}

// Vector materializes the policy with an always-on tail.
func (w WindowPolicy) Vector() Vector {
	end := w.Base.N3
	if n := len(w.Windows); n > 0 {
		end = w.Windows[n-1].Start + w.Windows[n-1].Len
	}
	prefix := make([]float64, end)
	for i := 1; i <= end; i++ {
		prefix[i-1] = w.At(i)
	}
	return Vector{Prefix: prefix, Tail: 1}
}

// WindowResult is an optimized window-refined policy.
type WindowResult struct {
	Policy      WindowPolicy
	Vector      Vector
	CaptureProb float64
	EnergyRate  float64
	// BaseCaptureProb is the unrefined clustering policy's U, for
	// measuring the refinement gain.
	BaseCaptureProb float64
}

// RefineWindows improves an optimized clustering policy by inserting up
// to maxWindows extra sleep windows into its recovery tail, re-balancing
// energy after each insertion (the freed energy raises U by shortening
// cycles elsewhere through the fractional boundaries). The search is
// greedy: each round scans candidate (start, length) pairs on a coarse
// grid and keeps the best strict improvement.
func RefineWindows(d dist.Interarrival, e float64, p Params, base *PIResult, maxWindows int) (*WindowResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("core: RefineWindows needs a base clustering result")
	}
	if maxWindows < 0 {
		maxWindows = 0
	}
	cur := WindowPolicy{Base: base.Policy}
	curEval, err := EvaluatePI(d, p, func(i int, _ float64) float64 { return cur.At(i) })
	if err != nil {
		return nil, fmt.Errorf("evaluating base policy: %w", err)
	}
	curU := curEval.CaptureProb

	budget := e*(1+1e-9) + 1e-12
	for round := 0; round < maxWindows; round++ {
		// Candidate windows live after the last existing window (keeping
		// the list sorted and disjoint by construction).
		lo := cur.Base.N3 + 1
		if n := len(cur.Windows); n > 0 {
			lo = cur.Windows[n-1].Start + cur.Windows[n-1].Len + 1
		}
		horizon := curEval.Horizon
		if lo >= horizon {
			break
		}
		// Phase 1: scan candidates with the plain evaluation only; the
		// energy respend (a bisection, ~20 evaluations) runs once on the
		// round's winner rather than on every candidate.
		type scored struct {
			pol  WindowPolicy
			ev   *PIEval
			gain float64 // freed energy — a window helps only through it
		}
		var bestCand *scored
		for start := lo; start < horizon; start += maxInt(1, (horizon-lo)/24) {
			for length := 1; length <= horizon-start; length *= 2 {
				cand := WindowPolicy{
					Base:    cur.Base,
					Windows: append(append([]SleepWindow(nil), cur.Windows...), SleepWindow{Start: start, Len: length}),
				}
				if cand.Validate() != nil {
					continue
				}
				ev, err := EvaluatePI(d, p, func(i int, _ float64) float64 { return cand.At(i) })
				if err != nil || ev.EnergyRate > budget {
					continue
				}
				gain := curEval.EnergyRate - ev.EnergyRate
				score := ev.CaptureProb + gain // optimistic: freed energy ≈ U headroom
				if bestCand == nil || score > bestCand.ev.CaptureProb+bestCand.gain {
					bestCand = &scored{pol: cand, ev: ev, gain: gain}
				}
			}
		}
		if bestCand == nil {
			break
		}
		// Phase 2: respend the winner's freed energy on the hot boundary.
		pol2, ev2 := respendOnBoundary(d, e, p, bestCand.pol)
		improved := false
		if ev2 != nil && ev2.CaptureProb > curU+1e-12 {
			cur, curU, curEval = pol2, ev2.CaptureProb, ev2
			improved = true
		} else if bestCand.ev.CaptureProb > curU+1e-12 {
			cur, curU, curEval = bestCand.pol, bestCand.ev.CaptureProb, bestCand.ev
			improved = true
		}
		if !improved {
			break
		}
		sort.Slice(cur.Windows, func(a, b int) bool { return cur.Windows[a].Start < cur.Windows[b].Start })
	}

	return &WindowResult{
		Policy:          cur,
		Vector:          cur.Vector(),
		CaptureProb:     curU,
		EnergyRate:      curEval.EnergyRate,
		BaseCaptureProb: base.CaptureProb,
	}, nil
}

// respendOnBoundary re-balances energy freed by a sleep window through
// the policy's fractional knobs: widening the hot region's entry
// boundary, or raising the recovery entry probability C3. The best
// feasible adjustment wins; the unadjusted policy is the fallback. It
// returns the adjusted policy and its evaluation (nil if nothing
// evaluates).
func respendOnBoundary(d dist.Interarrival, e float64, p Params, w WindowPolicy) (WindowPolicy, *PIEval) {
	budget := e*(1+1e-9) + 1e-12
	evalOf := func(pol WindowPolicy) *PIEval {
		ev, err := EvaluatePI(d, p, func(i int, _ float64) float64 { return pol.At(i) })
		if err != nil || ev.EnergyRate > budget {
			return nil
		}
		return ev
	}

	bestPol := w
	bestEval := evalOf(w)

	type knob struct {
		ok   bool
		make func(c float64) WindowPolicy
	}
	knobs := []knob{
		{ // widen the hot region one slot earlier
			// floateq:ok region-boundary saturation: C1 is set to the exact constant 1
			ok: w.Base.N1 > 1 && w.Base.C1 == 1,
			make: func(c float64) WindowPolicy {
				v := w
				v.Base.N1--
				v.Base.C1 = c
				return v
			},
		},
		{ // raise the fractional recovery entry
			ok: w.Base.C3 < 1,
			make: func(c float64) WindowPolicy {
				v := w
				v.Base.C3 = c
				return v
			},
		},
	}
	for _, k := range knobs {
		if !k.ok {
			continue
		}
		cost := func(c float64) float64 {
			ev, err := EvaluatePI(d, p, func(i int, _ float64) float64 { return k.make(c).At(i) })
			if err != nil {
				return 1e18
			}
			return ev.EnergyRate
		}
		c, feasible := numeric.MaximizeMonotoneBudget(cost, budget, 1e-6)
		if !feasible || c <= 1e-9 {
			continue
		}
		pol := k.make(c)
		if ev := evalOf(pol); ev != nil && (bestEval == nil || ev.CaptureProb > bestEval.CaptureProb) {
			bestPol, bestEval = pol, ev
		}
	}
	if bestEval == nil {
		return w, nil
	}
	return bestPol, bestEval
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
