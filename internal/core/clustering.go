package core

import (
	"fmt"
	"math"
	"sort"

	"eventcap/internal/dist"
	"eventcap/internal/numeric"
)

// ClusteringPolicy is the paper's heuristic partial-information policy
// π'_PI (Eq. (11)):
//
//	(0, …, 0, C1, 1, …, 1, C2, 0, …, 0, C3, 1, 1, …)
//	 cooling   └── hot ──┘   cooling     └ recovery ┘
//
// States are "slots since the last captured event". N1..N2 is the hot
// region (activate where the hazard concentrates), N2+1..N3−1 the second
// cooling region, and from N3 on the sensor activates aggressively until
// a capture renews the schedule. C1, C2, C3 are the fractional boundary
// probabilities the paper introduces to meet the energy balance exactly.
type ClusteringPolicy struct {
	N1, N2, N3 int
	C1, C2, C3 float64
}

// Validate checks region ordering and probability ranges.
func (cp ClusteringPolicy) Validate() error {
	if cp.N1 < 1 || cp.N2 < cp.N1 || cp.N3 <= cp.N2 {
		return fmt.Errorf("core: clustering regions must satisfy 1 <= N1 <= N2 < N3, got (%d, %d, %d)", cp.N1, cp.N2, cp.N3)
	}
	for _, c := range []float64{cp.C1, cp.C2, cp.C3} {
		if c < 0 || c > 1 || math.IsNaN(c) {
			return fmt.Errorf("core: clustering boundary probability %g out of [0,1]", c)
		}
	}
	return nil
}

// At returns the activation probability in state i. Boundary precedence:
// the hot-entry probability C1 wins when N1 == N2.
func (cp ClusteringPolicy) At(i int) float64 {
	switch {
	case i < cp.N1:
		return 0
	case i == cp.N1:
		return cp.C1
	case i < cp.N2:
		return 1
	case i == cp.N2:
		return cp.C2
	case i < cp.N3:
		return 0
	case i == cp.N3:
		return cp.C3
	default:
		return 1
	}
}

// policyFn adapts the policy to the EvaluatePI callback shape.
func (cp ClusteringPolicy) policyFn() func(i int, hazard float64) float64 {
	return func(i int, _ float64) float64 { return cp.At(i) }
}

// Vector materializes the policy as an activation Vector with an
// always-on tail.
func (cp ClusteringPolicy) Vector() Vector {
	prefix := make([]float64, cp.N3)
	for i := 1; i <= cp.N3; i++ {
		prefix[i-1] = cp.At(i)
	}
	return Vector{Prefix: prefix, Tail: 1}
}

// PIEval is the analytic performance of a partial-information policy on
// the f-chain (states = slots since last capture), under the energy
// assumption.
type PIEval struct {
	// CaptureProb is U(π) = y_1·μ (Section IV-B2).
	CaptureProb float64
	// EnergyRate is E_out(π) = Σ y_i c_i (δ1 + β̂_i δ2) per slot.
	EnergyRate float64
	// ExpectedCycle is 1/y_1, the mean number of slots between captures.
	ExpectedCycle float64
	// Horizon is the number of f-states evaluated before the no-capture
	// probability became negligible.
	Horizon int
}

// evaluation knobs for the f-chain sum.
const (
	piSurvivalTol = 1e-13
	piMaxHorizon  = 300000
)

// ErrNoRenewal is returned when a partial-information policy never
// captures (e.g. it never activates), so its f-chain has no stationary
// distribution.
var ErrNoRenewal = fmt.Errorf("core: policy never renews (no captures within horizon)")

// EvaluatePI computes the exact f-chain performance of an arbitrary
// partial-information activation rule pol: called once per f-state i in
// increasing order with the state's hazard β̂_i, it returns the activation
// probability c_i (stateless policies ignore the hazard; the belief-
// threshold policy is defined by it). The evaluation propagates the
// no-capture survival S_i = Π(1 − c_j β̂_j) together with the age belief,
// using the product-form stationary distribution y_i = y_1·S_{i−1}:
//
//	U = μ / Σ_i S_{i−1},   E_out = Σ_i S_{i−1}·c_i(δ1 + β̂_i δ2) / Σ_i S_{i−1}.
func EvaluatePI(d dist.Interarrival, p Params, pol func(i int, hazard float64) float64) (*PIEval, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	filter := NewBeliefFilter(d)
	survival := 1.0
	var cycle, energy numeric.KahanSum
	horizon := 0
	for i := 1; i <= piMaxHorizon; i++ {
		hazard := filter.EventProb()
		c := pol(i, hazard)
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		cycle.Add(survival)
		if c > 0 {
			energy.Add(survival * c * (p.Delta1 + p.Delta2*hazard))
		}
		survival *= 1 - c*hazard
		horizon = i
		if survival < piSurvivalTol {
			break
		}
		filter.AdvanceNoCapture(c)
	}
	if survival >= 1e-6 {
		return nil, ErrNoRenewal
	}
	total := cycle.Value()
	if !(total > 0) {
		return nil, ErrNoRenewal
	}
	return &PIEval{
		CaptureProb:   d.Mean() / total,
		EnergyRate:    energy.Value() / total,
		ExpectedCycle: total,
		Horizon:       horizon,
	}, nil
}

// piCursor is an incremental form of EvaluatePI used by the coarse region
// search: it walks f-states one at a time and can be cloned mid-chain, so
// one shared cooling prefix serves every recovery-start candidate. Plain
// float64 sums are sufficient at these horizons (≤ ~10^4 terms in [0, 40]).
type piCursor struct {
	filter        *BeliefFilter
	p             Params
	survival      float64
	cycle, energy float64
}

func newPICursor(d dist.Interarrival, p Params) *piCursor {
	return &piCursor{filter: NewBeliefFilter(d), p: p, survival: 1}
}

func (c *piCursor) clone() *piCursor {
	out := *c
	out.filter = c.filter.Clone()
	return &out
}

// done reports that the no-capture probability is negligible: further
// states contribute nothing.
func (c *piCursor) done() bool { return c.survival < piSurvivalTol }

// step advances one f-state with activation probability prob.
func (c *piCursor) step(prob float64) {
	if c.done() {
		return
	}
	hazard := c.filter.EventProb()
	c.cycle += c.survival
	if prob > 0 {
		c.energy += c.survival * prob * (c.p.Delta1 + c.p.Delta2*hazard)
	}
	c.survival *= 1 - prob*hazard
	if !c.done() {
		c.filter.AdvanceNoCapture(prob)
	}
}

// finishRecovery runs the always-on tail to exhaustion. The conditioned
// belief converges to a quasi-stationary distribution whose hazard β* is
// constant, so once β̂ stabilizes the remaining geometric tail is closed
// in closed form (Σ_k S(1−β*)^k = S/β*). It reports whether the chain
// renewed (false for defective tails, e.g. truncation artifacts).
func (c *piCursor) finishRecovery() bool {
	prev := -1.0
	stable := 0
	for i := 0; i < piMaxHorizon && !c.done(); i++ {
		h := c.filter.EventProb()
		if prev >= 0 && math.Abs(h-prev) < 1e-4*(h+1e-12) {
			stable++
			if stable >= 2 && h > 1e-9 {
				c.cycle += c.survival / h
				c.energy += c.survival * (c.p.Delta1 + c.p.Delta2*h) / h
				c.survival = 0
				return true
			}
		} else {
			stable = 0
		}
		prev = h
		c.step(1)
	}
	return c.survival < 1e-6
}

// result returns (U, E_out) for the completed chain.
func (c *piCursor) result(mu float64) (u, eout float64) {
	if c.cycle <= 0 {
		return 0, 0
	}
	return mu / c.cycle, c.energy / c.cycle
}

// PIResult is an optimized clustering policy with its analytic
// performance.
type PIResult struct {
	Policy      ClusteringPolicy
	Vector      Vector
	CaptureProb float64
	EnergyRate  float64
	Saturated   bool
}

// ClusteringOptions tunes the region search. The zero value selects
// sensible defaults.
type ClusteringOptions struct {
	// SearchLimit bounds N2 (default: the 0.999 quantile of the
	// inter-arrival distribution, capped at 400).
	SearchLimit int
	// MaxGap bounds N3 − N2 (default 4096).
	MaxGap int
	// CoarsePoints is the number of grid points per region coordinate in
	// the first pass (default 16).
	CoarsePoints int
}

func (o *ClusteringOptions) fill(d dist.Interarrival) {
	if o.SearchLimit <= 0 {
		limit := 1
		for limit < 400 && d.CDF(limit) < 0.999 {
			limit++
		}
		o.SearchLimit = limit
	}
	if o.MaxGap <= 0 {
		o.MaxGap = 4096
	}
	if o.CoarsePoints <= 0 {
		o.CoarsePoints = 16
	}
}

// coarseGrid builds the n1/n2 grid for the coarse pass: an even grid of
// the configured resolution plus hazard landmarks (the first state with
// positive hazard and the hazard peak) that structured distributions such
// as Pareto need to be hit exactly.
func coarseGrid(d dist.Interarrival, limit, step int) []int {
	seen := make(map[int]bool, limit/step+8)
	var points []int
	add := func(i int) {
		if i >= 1 && i <= limit && !seen[i] {
			seen[i] = true
			points = append(points, i)
		}
	}
	for i := 1; i <= limit; i += step {
		add(i)
	}
	firstPositive, peakIdx := 0, 1
	peakVal := -1.0
	for i := 1; i <= limit; i++ {
		h := d.Hazard(i)
		if firstPositive == 0 && h > 1e-12 {
			firstPositive = i
		}
		if h > peakVal {
			peakIdx, peakVal = i, h
		}
	}
	if firstPositive > 0 {
		add(firstPositive)
		add(firstPositive + 1)
	}
	add(peakIdx)
	sort.Ints(points)
	return points
}

// OptimizeClustering computes π'_PI(e): it searches the (N1, N2, N3)
// region structure by coarse enumeration ("increase n3 gradually and
// enumerate n1 and n2", Section IV-B2) followed by hill-climbing
// refinement, then spends any residual energy budget on the fractional
// boundary probabilities C1/C2/C3 by bisection.
func OptimizeClustering(d dist.Interarrival, e float64, p Params, opts ClusteringOptions) (*PIResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	mu := d.Mean()
	if e >= p.SaturationRate(mu) {
		// The sensor can afford to be always on: every event is captured.
		cp := ClusteringPolicy{N1: 1, N2: 1, N3: 2, C1: 1, C2: 1, C3: 1}
		return &PIResult{
			Policy:      cp,
			Vector:      Vector{Tail: 1},
			CaptureProb: 1,
			EnergyRate:  p.SaturationRate(mu),
			Saturated:   true,
		}, nil
	}
	opts.fill(d)

	eval := func(cp ClusteringPolicy) (*PIEval, bool) {
		ev, err := EvaluatePI(d, p, cp.policyFn())
		if err != nil {
			return nil, false
		}
		return ev, ev.EnergyRate <= e*(1+1e-9)+1e-12
	}

	type candidate struct {
		cp ClusteringPolicy
		u  float64
	}
	best := candidate{u: -1}
	consider := func(cp ClusteringPolicy) {
		if cp.Validate() != nil {
			return
		}
		if cp.N3-cp.N2 > opts.MaxGap {
			return
		}
		if ev, ok := eval(cp); ok && ev.CaptureProb > best.u {
			best = candidate{cp: cp, u: ev.CaptureProb}
		}
	}

	// Coarse pass over deterministic regions (C1 = C2 = C3 = 1). For each
	// hot region the cooling prefix is shared across all gap candidates
	// via an incremental cursor, so the pass costs O(hot + MaxGap +
	// gaps·recovery) per (n1, n2) rather than re-walking the chain.
	// Several diverse leaders are kept and hill-climbed separately: the
	// grid can put structurally different shapes (recovery-only vs
	// hot-window) within a step of each other.
	limit := opts.SearchLimit
	step := limit / opts.CoarsePoints
	if step < 1 {
		step = 1
	}
	gridPoints := coarseGrid(d, limit, step)
	var gaps []int
	for g := 1; g <= opts.MaxGap; g *= 2 {
		gaps = append(gaps, g)
	}
	mu = d.Mean()
	const maxLeaders = 4
	var leaders []candidate
	offer := func(c candidate) {
		// Replace the worst leader from the same n1 neighborhood, or
		// append/displace the weakest when diverse.
		for i := range leaders {
			near := c.cp.N1-leaders[i].cp.N1 <= step && leaders[i].cp.N1-c.cp.N1 <= step
			if near {
				if c.u > leaders[i].u {
					leaders[i] = c
				}
				return
			}
		}
		if len(leaders) < maxLeaders {
			leaders = append(leaders, c)
			return
		}
		worst := 0
		for i := range leaders {
			if leaders[i].u < leaders[worst].u {
				worst = i
			}
		}
		if c.u > leaders[worst].u {
			leaders[worst] = c
		}
	}
	for _, n1 := range gridPoints {
		for _, n2 := range gridPoints {
			if n2 < n1 {
				continue
			}
			cur := newPICursor(d, p)
			for i := 1; i <= n2; i++ {
				c := 0.0
				if i >= n1 {
					c = 1
				}
				cur.step(c)
			}
			walked := 0
			for _, g := range gaps {
				for ; walked < g-1; walked++ {
					cur.step(0)
				}
				branch := cur.clone()
				if !branch.finishRecovery() {
					continue
				}
				u, eout := branch.result(mu)
				if eout <= e*(1+1e-9)+1e-12 {
					// Widening the gap only lengthens the cycle, lowering
					// both U and E_out, so the first feasible gap is the
					// best one for this hot region.
					offer(candidate{
						cp: ClusteringPolicy{N1: n1, N2: n2, N3: n2 + g, C1: 1, C2: 1, C3: 1},
						u:  u,
					})
					break
				}
			}
		}
	}
	for _, l := range leaders {
		if l.u > best.u {
			best = l
		}
	}
	if best.u < 0 {
		// Nothing feasible even with maximal cooling: fall back to a
		// pure recovery policy starting as late as the search allows.
		consider(ClusteringPolicy{N1: 1, N2: 1, N3: 1 + opts.MaxGap, C1: 0, C2: 0, C3: 1})
		if best.u < 0 {
			return nil, fmt.Errorf("core: no feasible clustering policy at e=%g for %s (try a larger MaxGap)", e, d.Name())
		}
	}

	// Hill-climbing refinement with shrinking steps, starting from every
	// coarse leader; `consider` keeps the global best across all climbs.
	for _, start := range leaders {
		local := start
		for s := step; s >= 1; s /= 2 {
			improved := true
			for improved {
				improved = false
				cur := local.cp
				gap := cur.N3 - cur.N2
				neighbors := []ClusteringPolicy{
					{N1: cur.N1 - s, N2: cur.N2, N3: cur.N2 + gap, C1: 1, C2: 1, C3: 1},
					{N1: cur.N1 + s, N2: cur.N2, N3: cur.N2 + gap, C1: 1, C2: 1, C3: 1},
					{N1: cur.N1, N2: cur.N2 - s, N3: cur.N2 - s + gap, C1: 1, C2: 1, C3: 1},
					{N1: cur.N1, N2: cur.N2 + s, N3: cur.N2 + s + gap, C1: 1, C2: 1, C3: 1},
					{N1: cur.N1, N2: cur.N2, N3: cur.N3 - s, C1: 1, C2: 1, C3: 1},
					{N1: cur.N1, N2: cur.N2, N3: cur.N3 + s, C1: 1, C2: 1, C3: 1},
				}
				for _, nb := range neighbors {
					if nb.Validate() != nil || nb.N3-nb.N2 > opts.MaxGap {
						continue // honor the configured cooling-gap bound
					}
					if ev, ok := eval(nb); ok && ev.CaptureProb > local.u+1e-12 {
						local = candidate{cp: nb, u: ev.CaptureProb}
						improved = true
					}
				}
			}
		}
		if local.u > best.u {
			best = local
		}
	}

	// Fractional boundary refinement: spend residual budget via C1/C2/C3.
	best.cp = refineFractional(d, e, p, best.cp)
	ev, err := EvaluatePI(d, p, best.cp.policyFn())
	if err != nil {
		return nil, fmt.Errorf("evaluating refined clustering policy: %w", err)
	}
	return &PIResult{
		Policy:      best.cp,
		Vector:      best.cp.Vector(),
		CaptureProb: ev.CaptureProb,
		EnergyRate:  ev.EnergyRate,
	}, nil
}

// refineFractional greedily extends the best deterministic region policy
// with fractional boundary probabilities: widening the hot region at
// either edge or starting recovery one slot earlier, each scaled by
// bisection so E_out stays within e. Capture probability is nondecreasing
// in every activation probability (more activation shortens renewal
// cycles), so the largest feasible boundary value is the best one.
func refineFractional(d dist.Interarrival, e float64, p Params, cp ClusteringPolicy) ClusteringPolicy {
	baseU := func(c ClusteringPolicy) float64 {
		ev, err := EvaluatePI(d, p, c.policyFn())
		if err != nil || ev.EnergyRate > e*(1+1e-9)+1e-12 {
			return -1
		}
		return ev.CaptureProb
	}
	cur := cp
	curU := baseU(cur)
	for round := 0; round < 3; round++ {
		type variant struct {
			make func(c float64) ClusteringPolicy
			ok   bool
		}
		variants := []variant{
			{ // extend hot region one slot earlier with probability c
				make: func(c float64) ClusteringPolicy {
					v := cur
					v.N1--
					v.C1 = c
					return v
				},
				// floateq:ok region-boundary saturation: C1 is set to the exact constant 1
				ok: cur.N1 > 1 && cur.C1 == 1,
			},
			{ // extend hot region one slot later with probability c
				make: func(c float64) ClusteringPolicy {
					v := cur
					v.N2++
					v.C2 = c
					return v
				},
				// floateq:ok region-boundary saturation: C2 is set to the exact constant 1
				ok: cur.N2+1 < cur.N3 && cur.C2 == 1,
			},
			{ // start recovery one slot earlier with probability c
				make: func(c float64) ClusteringPolicy {
					v := cur
					v.N3--
					v.C3 = c
					return v
				},
				// floateq:ok region-boundary saturation: C3 is set to the exact constant 1
				ok: cur.N3-1 > cur.N2 && cur.C3 == 1,
			},
		}
		type result struct {
			cp ClusteringPolicy
			u  float64
		}
		bestVar := result{u: curU}
		for _, v := range variants {
			if !v.ok {
				continue
			}
			cost := func(c float64) float64 {
				ev, err := EvaluatePI(d, p, v.make(c).policyFn())
				if err != nil {
					return math.Inf(1)
				}
				return ev.EnergyRate
			}
			c, feasible := numeric.MaximizeMonotoneBudget(cost, e*(1+1e-9)+1e-12, 1e-6)
			if !feasible || c <= 1e-9 {
				continue
			}
			vp := v.make(c)
			if vp.Validate() != nil {
				continue
			}
			if u := baseU(vp); u > bestVar.u+1e-12 {
				bestVar = result{cp: vp, u: u}
			}
		}
		if bestVar.u <= curU+1e-12 {
			break
		}
		cur, curU = bestVar.cp, bestVar.u
	}
	return cur
}
