package core

import (
	"fmt"
	"math"

	"eventcap/internal/numeric"
)

// EBCWPolicy is the reconstruction of the activation policy class of
// Jaggi, Kar and Krishnamurthy [6] that the paper compares against in
// Fig. 5 (π_EBCW). Their model assumes the events follow a two-state
// Markov chain (a = P(event | event last slot), b = P(idle | idle last
// slot)) and the sensor decides "based on whether an event occurred in
// the last time slot or not": the activation probability depends only on
// the sensor's LAST OBSERVATION, not on how long ago it was made.
//
//	PYes — activation probability while the last observation was an event
//	PNo  — activation probability while it was a no-event
//
// The class cannot express "sleep exactly k slots, then wake", which is
// what the renewal-aware clustering policy exploits; for a, b > 0.5 (the
// regime [6] assumes) the optimum within this class matches the
// clustering policy, and outside it the gap of Fig. 5 opens.
type EBCWPolicy struct {
	A, B       float64 // event-chain parameters
	PYes, PNo  float64 // activation probabilities by last observation
	CaptureU   float64 // analytic capture probability at optimum
	EnergyRate float64 // analytic energy use per slot
}

// ebcwEval is the exact renewal-reward evaluation of a (pYes, pNo) pair.
//
// Observation epochs form an embedded two-state chain. After an
// observation with outcome v0 ∈ {0, 1}, the sensor activates each slot
// with constant probability c = c(v0), so the gap G to the next
// observation is Geometric(c) and the k-step Markov transition gives
//
//	P(next observation = 1 | v0) = π + (v0 − π)·cλ/(1 − (1−c)λ)
//
// with λ = a + b − 1 and π = (1−b)/(2−a−b). Captures per cycle equal the
// probability the observation is an event; the cycle length is 1/c.
func ebcwEval(a, b, pYes, pNo float64, p Params) (captureRate, energyRate float64) {
	lambda := a + b - 1
	pi := (1 - b) / (2 - a - b)
	const floor = 1e-12
	cOf := [2]float64{math.Max(pNo, floor), math.Max(pYes, floor)}

	// q[v0] = P(next observation is an event | last observation v0).
	var q [2]float64
	for v0 := 0; v0 <= 1; v0++ {
		c := cOf[v0]
		q[v0] = pi + (float64(v0)-pi)*c*lambda/(1-(1-c)*lambda)
	}
	// Stationary distribution of the embedded observation chain.
	// sigma1 = q0 / (1 − q1 + q0).
	denom := 1 - q[1] + q[0]
	var sigma1 float64
	if denom <= floor {
		sigma1 = 1 // q1 ≈ 1 and q0 ≈ 0: observations stay events
	} else {
		sigma1 = q[0] / denom
	}
	sigma0 := 1 - sigma1

	expCycle := sigma0/cOf[0] + sigma1/cOf[1]
	capturesPerCycle := sigma1 // by stationarity Σ σ(v0) q(v0) = σ1
	energyPerCycle := p.Delta1 + p.Delta2*sigma1

	return capturesPerCycle / expCycle, energyPerCycle / expCycle
}

// OptimizeEBCW finds the best (PYes, PNo) within the last-observation
// class for Markov events (a, b) at recharge rate e: it scans PYes on a
// fine grid and, for each, picks the largest PNo that keeps the energy
// rate within e (the energy rate is nondecreasing in both probabilities).
// CaptureU is normalized by the event rate (1−b)/(2−a−b) so it is a
// capture probability comparable to the clustering policy's U.
//
// This is the strongest member of the class — stronger than the policy
// of [6] itself, which assumes a, b > 0.5 and therefore always activates
// while the last observation was an event. Use OptimizeEBCWFaithful for
// that original form (the comparison the paper's Fig. 5 makes).
func OptimizeEBCW(a, b, e float64, p Params) (*EBCWPolicy, error) {
	return optimizeEBCW(a, b, e, p, false)
}

// OptimizeEBCWFaithful reconstructs [6]'s policy as designed: activation
// is certain while the last observation was an event (their bursty
// a, b > 0.5 regime makes that optimal), and only the idle-side
// probability PNo is calibrated for energy balance. Off that regime the
// fixed PYes = 1 wastes energy on unlikely repeats — the gap Fig. 5
// shows.
func OptimizeEBCWFaithful(a, b, e float64, p Params) (*EBCWPolicy, error) {
	return optimizeEBCW(a, b, e, p, true)
}

func optimizeEBCW(a, b, e float64, p Params, fixYes bool) (*EBCWPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !(a > 0) || a > 1 || b < 0 || b >= 1 {
		return nil, fmt.Errorf("core: EBCW needs a in (0,1] and b in [0,1), got (%g, %g)", a, b)
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	eventRate := (1 - b) / (2 - a - b)

	best := &EBCWPolicy{A: a, B: b, CaptureU: -1}
	const grid = 200
	for i := 0; i <= grid; i++ {
		pYes := float64(i) / grid
		if fixYes {
			if i < grid {
				continue
			}
			pYes = 1
		}
		// Largest feasible pNo by bisection (energy is monotone in pNo).
		cost := func(pNo float64) float64 {
			_, eRate := ebcwEval(a, b, pYes, pNo, p)
			return eRate
		}
		pNo, feasible := numeric.MaximizeMonotoneBudget(cost, e*(1+1e-9)+1e-12, 1e-9)
		if !feasible {
			continue
		}
		capRate, eRate := ebcwEval(a, b, pYes, pNo, p)
		u := capRate / eventRate
		if u > best.CaptureU {
			best.PYes, best.PNo = pYes, pNo
			best.CaptureU = u
			best.EnergyRate = eRate
		}
	}
	if best.CaptureU < 0 {
		if fixYes {
			// PYes = 1 alone can exceed a tiny budget; [6] would then
			// shed load on the event side too. Fall back to the free
			// optimum, which subsumes that behaviour.
			return optimizeEBCW(a, b, e, p, false)
		}
		// Even (0, 0) infeasible cannot happen (zero cost), so this is
		// unreachable; keep a defensive error.
		return nil, fmt.Errorf("core: no feasible EBCW policy at e=%g", e)
	}
	if best.CaptureU > 1 {
		best.CaptureU = 1
	}
	return best, nil
}
