package core

import (
	"math"
	"testing"

	"eventcap/internal/dist"
	"eventcap/internal/renewal"
	"eventcap/internal/rng"
)

// TestBeliefMatchesRenewalMass cross-validates the filter against the
// independent renewal-theory implementation (the DESIGN.md substitution
// argument): after k fully unobserved slots since a capture, the event
// probability must equal the renewal mass function m(k+1)... shifted by
// one because the capture itself was the renewal at relative slot 0.
func TestBeliefMatchesRenewalMass(t *testing.T) {
	for _, weights := range [][]float64{
		{0.2, 0.5, 0.3},
		{0, 0, 1},
		{0.6, 0.4},
		{0.1, 0.1, 0.1, 0.3, 0.4},
	} {
		d := mustEmpirical(t, weights)
		tab, err := dist.Tabulate(d, 1e-12, 1000)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := renewal.New(tab.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		f := NewBeliefFilter(d)
		for step := 0; step < 60; step++ {
			// At the beginning of slot step+1 (0 unobserved slots means
			// the capture was last slot): P(event) = m(step+1).
			got := f.EventProb()
			want := proc.Mass(step + 1)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("weights %v, step %d: filter %v vs renewal mass %v",
					weights, step, got, want)
			}
			f.AdvanceNoCapture(0)
		}
	}
}

// TestBeliefActiveEqualsHazard: when the sensor is active every slot and
// captures nothing, the age is known exactly, so the filtered event
// probability must equal the distribution's hazard β_i.
func TestBeliefActiveEqualsHazard(t *testing.T) {
	d := mustWeibull(t, 12, 2.5)
	f := NewBeliefFilter(d)
	for i := 1; i <= 30; i++ {
		if got, want := f.EventProb(), d.Hazard(i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("state %d: filter %v vs hazard %v", i, got, want)
		}
		f.AdvanceNoCapture(1)
	}
}

func TestBeliefMassConserved(t *testing.T) {
	d := mustPareto(t, 2, 10)
	f := NewBeliefFilter(d)
	src := rng.New(7, 7)
	for i := 0; i < 500; i++ {
		c := src.Float64()
		f.AdvanceNoCapture(c)
		if m := f.TotalMass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("step %d: belief mass %v", i, m)
		}
		if p := f.EventProb(); p < 0 || p > 1 {
			t.Fatalf("step %d: event probability %v", i, p)
		}
	}
}

func TestBeliefReset(t *testing.T) {
	d := mustWeibull(t, 8, 2)
	f := NewBeliefFilter(d)
	for i := 0; i < 10; i++ {
		f.AdvanceNoCapture(0.5)
	}
	f.Reset()
	if got, want := f.EventProb(), d.Hazard(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("after reset EventProb %v, want β1 %v", got, want)
	}
	b := f.Belief()
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("after reset belief %v, want [1]", b)
	}
}

func TestBeliefClampsActivation(t *testing.T) {
	d := mustWeibull(t, 8, 2)
	f := NewBeliefFilter(d)
	f.AdvanceNoCapture(-3) // treated as 0
	f.AdvanceNoCapture(7)  // treated as 1
	if m := f.TotalMass(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mass %v after clamped updates", m)
	}
}

// TestBeliefMatchesMonteCarlo simulates the true hidden process under a
// mixed activation pattern and compares empirical conditional event
// frequencies with the filter's β̂_i sequence.
func TestBeliefMatchesMonteCarlo(t *testing.T) {
	d := mustEmpirical(t, []float64{0.15, 0.35, 0.3, 0.2})
	pattern := []float64{0, 1, 0.5, 1, 0, 0, 1, 1} // c_i for f-states 1..8

	// Analytic hazards along the no-capture path.
	f := NewBeliefFilter(d)
	want := make([]float64, len(pattern))
	for i, c := range pattern {
		want[i] = f.EventProb()
		f.AdvanceNoCapture(c)
	}

	// Monte Carlo: run the hidden renewal chain; at each f-state apply
	// the pattern; record event occurrence frequencies conditioned on
	// reaching the state without a capture.
	src := rng.New(99, 3)
	occur := make([]int, len(pattern))
	visits := make([]int, len(pattern))
	const episodes = 400000
	for ep := 0; ep < episodes; ep++ {
		age := 1
		for i := 0; i < len(pattern); i++ {
			visits[i]++
			event := src.Bernoulli(d.Hazard(age))
			active := src.Bernoulli(pattern[i])
			if event {
				occur[i]++
				age = 1
				if active {
					break // captured: episode renews
				}
			} else {
				age++
			}
		}
	}
	for i := range pattern {
		if visits[i] < 1000 {
			continue
		}
		got := float64(occur[i]) / float64(visits[i])
		sigma := math.Sqrt(want[i]*(1-want[i])/float64(visits[i])) + 1e-9
		if math.Abs(got-want[i]) > 6*sigma {
			t.Errorf("f-state %d: MC hazard %v vs filter %v (±%v)", i+1, got, want[i], 6*sigma)
		}
	}
}

func BenchmarkBeliefAdvance(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	f := NewBeliefFilter(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AdvanceNoCapture(0.3)
		if i%1000 == 999 {
			f.Reset()
		}
	}
}
