package core

import (
	"errors"
	"math"
	"testing"

	"eventcap/internal/dist"
)

func TestClusteringPolicyShape(t *testing.T) {
	cp := ClusteringPolicy{N1: 3, N2: 5, N3: 9, C1: 0.4, C2: 0.7, C3: 0.2}
	want := map[int]float64{
		1: 0, 2: 0, // cooling
		3: 0.4,           // hot entry
		4: 1,             // hot interior
		5: 0.7,           // hot exit
		6: 0, 7: 0, 8: 0, // second cooling
		9:  0.2,      // recovery entry
		10: 1, 50: 1, // aggressive tail
	}
	for i, w := range want {
		if got := cp.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vector materialization agrees with At everywhere.
	v := cp.Vector()
	for i := 0; i <= 60; i++ {
		if v.At(i) != cp.At(i) {
			t.Fatalf("Vector.At(%d) = %v, policy At = %v", i, v.At(i), cp.At(i))
		}
	}
}

func TestClusteringPolicySingleSlotHot(t *testing.T) {
	cp := ClusteringPolicy{N1: 4, N2: 4, N3: 6, C1: 0.5, C2: 0.9, C3: 1}
	if got := cp.At(4); got != 0.5 {
		t.Fatalf("single-slot hot region must use C1, got %v", got)
	}
	if got := cp.At(5); got != 0 {
		t.Fatalf("cooling after single-slot hot, got %v", got)
	}
}

func TestClusteringValidate(t *testing.T) {
	bad := []ClusteringPolicy{
		{N1: 0, N2: 1, N3: 2},
		{N1: 3, N2: 2, N3: 5},
		{N1: 1, N2: 4, N3: 4},
		{N1: 1, N2: 2, N3: 3, C1: -0.1},
		{N1: 1, N2: 2, N3: 3, C2: 1.4},
	}
	for _, cp := range bad {
		if err := cp.Validate(); err == nil {
			t.Errorf("invalid policy accepted: %+v", cp)
		}
	}
}

func TestEvaluatePIAlwaysOn(t *testing.T) {
	d := mustWeibull(t, 20, 3)
	p := DefaultParams()
	ev, err := EvaluatePI(d, p, func(int, float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.CaptureProb-1) > 1e-9 {
		t.Fatalf("always-on U = %v, want 1", ev.CaptureProb)
	}
	if math.Abs(ev.ExpectedCycle-d.Mean()) > 1e-6 {
		t.Fatalf("cycle %v, want μ=%v", ev.ExpectedCycle, d.Mean())
	}
	if want := p.SaturationRate(d.Mean()); math.Abs(ev.EnergyRate-want) > 1e-6 {
		t.Fatalf("energy rate %v, want %v", ev.EnergyRate, want)
	}
}

func TestEvaluatePINeverActivates(t *testing.T) {
	d := mustWeibull(t, 20, 3)
	_, err := EvaluatePI(d, DefaultParams(), func(int, float64) float64 { return 0 })
	if !errors.Is(err, ErrNoRenewal) {
		t.Fatalf("got %v, want ErrNoRenewal", err)
	}
}

// TestEvaluatePIDeterministicEvents: with X = d fixed and activation only
// in state d, every event is captured and the energy rate is exactly
// (δ1+δ2)/d.
func TestEvaluatePIDeterministicEvents(t *testing.T) {
	det, err := dist.NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	ev, err := EvaluatePI(det, p, func(i int, _ float64) float64 {
		if i == 5 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.CaptureProb-1) > 1e-9 {
		t.Fatalf("U = %v, want 1", ev.CaptureProb)
	}
	if want := (p.Delta1 + p.Delta2) / 5; math.Abs(ev.EnergyRate-want) > 1e-9 {
		t.Fatalf("energy rate %v, want %v", ev.EnergyRate, want)
	}
}

// TestEvaluatePIGeometric: for memoryless events the hazard is constant,
// so activating with any fixed probability c captures a c-fraction of
// events... no: it captures each event iff active in that slot, i.e. with
// probability c, so U = c exactly.
func TestEvaluatePIGeometric(t *testing.T) {
	g, err := dist.NewGeometric(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.25, 0.5, 1} {
		c := c
		ev, err := EvaluatePI(g, DefaultParams(), func(int, float64) float64 { return c })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.CaptureProb-c) > 1e-6 {
			t.Fatalf("c=%v: U = %v, want %v", c, ev.CaptureProb, c)
		}
	}
}

func TestOptimizeClusteringFeasibleAndStrong(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	for _, e := range []float64{0.2, 0.5, 0.8} {
		res, err := OptimizeClustering(d, e, p, ClusteringOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.EnergyRate > e*(1+1e-6)+1e-9 {
			t.Fatalf("e=%v: energy rate %v exceeds budget", e, res.EnergyRate)
		}
		if err := res.Policy.Validate(); err != nil {
			t.Fatalf("e=%v: invalid policy: %v", e, err)
		}
		// Must beat the periodic and aggressive baselines (the paper's
		// Fig. 4 claim), with margin at moderate e.
		theta2, err := PeriodicTheta2(3, e, d, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.CaptureProb < PeriodicU(3, theta2) {
			t.Errorf("e=%v: clustering U=%v below periodic %v", e, res.CaptureProb, PeriodicU(3, theta2))
		}
		if res.CaptureProb < AggressiveU(d, e, p) {
			t.Errorf("e=%v: clustering U=%v below aggressive %v", e, res.CaptureProb, AggressiveU(d, e, p))
		}
		// FI optimum is an upper bound for any PI policy.
		fi, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.CaptureProb > fi.CaptureProb+1e-6 {
			t.Errorf("e=%v: PI policy U=%v beats the FI optimum %v", e, res.CaptureProb, fi.CaptureProb)
		}
	}
}

func TestOptimizeClusteringMonotoneInRate(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	prev := -1.0
	for _, e := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1} {
		res, err := OptimizeClustering(d, e, p, ClusteringOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Allow a hair of search noise, but no real regressions.
		if res.CaptureProb < prev-1e-3 {
			t.Fatalf("U decreased at e=%v: %v -> %v", e, prev, res.CaptureProb)
		}
		prev = res.CaptureProb
	}
}

func TestOptimizeClusteringSaturated(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	res, err := OptimizeClustering(d, p.SaturationRate(d.Mean())*1.01, p, ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.CaptureProb != 1 {
		t.Fatalf("saturated result wrong: %+v", res)
	}
}

func TestOptimizeClusteringDeterministicEvents(t *testing.T) {
	det, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	// Energy for exactly one activation per cycle plus 20% headroom.
	e := 1.2 * (p.Delta1 + p.Delta2) / 10
	res, err := OptimizeClustering(det, e, p, ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CaptureProb < 1-1e-6 {
		t.Fatalf("U = %v, want 1 (deterministic events are fully capturable)", res.CaptureProb)
	}
}

func TestOptimizeClusteringLowEnergyUsesCooling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow solver sweep")
	}
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	res, err := OptimizeClustering(d, 0.05, p, ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyRate > 0.05*(1+1e-6)+1e-9 {
		t.Fatalf("energy rate %v exceeds tiny budget", res.EnergyRate)
	}
	if res.Policy.N3 <= res.Policy.N2+1 {
		t.Fatalf("low-energy policy should open a cooling gap, got %+v", res.Policy)
	}
}

func TestOptimizeClusteringErrors(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	if _, err := OptimizeClustering(d, -0.1, DefaultParams(), ClusteringOptions{}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := OptimizeClustering(d, 0.5, Params{}, ClusteringOptions{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func BenchmarkOptimizeClusteringWeibull(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeClustering(d, 0.5, p, ClusteringOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatePIWeibull(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	p := DefaultParams()
	cp := ClusteringPolicy{N1: 30, N2: 50, N3: 60, C1: 1, C2: 1, C3: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluatePI(d, p, cp.policyFn()); err != nil {
			b.Fatal(err)
		}
	}
}
