package core

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// TestGreedyDominatesRandomFeasibleVectors: no feasible activation vector
// (random, scaled onto the energy budget) may beat Theorem 1's policy.
func TestGreedyDominatesRandomFeasibleVectors(t *testing.T) {
	src := rng.New(71, 0)
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 18))
		sat := p.SaturationRate(d.Mean())
		e := (0.1 + 0.8*src.Float64()) * sat
		budget := e * d.Mean()

		greedy, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 20; v++ {
			// Random vector, scaled down until it fits the budget.
			n := d.MaxSupport()
			prefix := make([]float64, n)
			for i := range prefix {
				prefix[i] = src.Float64()
			}
			vec := Vector{Prefix: prefix}
			cost := vec.EnergyPerCycleFI(d, p)
			if cost > budget {
				scale := budget / cost
				for i := range prefix {
					prefix[i] *= scale
				}
				// Scaling c is conservative (cost is linear in c), so
				// the result is feasible.
			}
			if u := vec.CaptureProbFI(d); u > greedy.CaptureProb+1e-9 {
				t.Fatalf("trial %d: random feasible vector U=%v beats greedy %v", trial, u, greedy.CaptureProb)
			}
		}
	}
}

// TestEvaluatePIMatchesMonteCarloChain cross-validates the analytic
// f-chain evaluation against a direct Monte Carlo simulation of the
// hidden renewal process under the same policy (no battery, the energy
// assumption).
func TestEvaluatePIMatchesMonteCarloChain(t *testing.T) {
	src := rng.New(72, 0)
	p := DefaultParams()
	for trial := 0; trial < 6; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 12))
		// Random clustering-shaped policy over the support.
		n := d.MaxSupport()
		n1 := 1 + src.Intn(n)
		n2 := n1 + src.Intn(n-n1+1)
		n3 := n2 + 1 + src.Intn(8)
		cp := ClusteringPolicy{N1: n1, N2: n2, N3: n3, C1: src.Float64(), C2: 1, C3: src.Float64()}
		if cp.Validate() != nil {
			continue
		}
		want, err := EvaluatePI(d, p, cp.policyFn())
		if err != nil {
			continue // e.g. never renews; MC would not terminate either
		}

		// Monte Carlo over capture cycles.
		const slots = 400000
		age := 1
		f := 1
		var captures, events int64
		var energy float64
		for s := 0; s < slots; s++ {
			c := cp.At(f)
			active := src.Bernoulli(c)
			event := src.Bernoulli(d.Hazard(age))
			if active {
				energy += p.Delta1
			}
			if event {
				events++
				age = 1
				if active {
					captures++
					energy += p.Delta2
					f = 1
					continue
				}
			} else {
				age++
			}
			f++
		}
		gotU := float64(captures) / float64(events)
		gotE := energy / slots
		if math.Abs(gotU-want.CaptureProb) > 0.03 {
			t.Fatalf("trial %d (%s, %+v): MC U=%v vs analytic %v",
				trial, d.Name(), cp, gotU, want.CaptureProb)
		}
		if math.Abs(gotE-want.EnergyRate) > 0.05*(1+want.EnergyRate) {
			t.Fatalf("trial %d: MC energy %v vs analytic %v", trial, gotE, want.EnergyRate)
		}
	}
}

// TestClusteringNeverBeatsGreedyFI: partial information cannot beat full
// information at the same energy (randomized workloads).
func TestClusteringNeverBeatsGreedyFI(t *testing.T) {
	src := rng.New(73, 0)
	p := DefaultParams()
	for trial := 0; trial < 8; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 15))
		e := (0.2 + 0.6*src.Float64()) * p.SaturationRate(d.Mean())
		fi, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := OptimizeClustering(d, e, p, ClusteringOptions{MaxGap: 512})
		if err != nil {
			t.Fatal(err)
		}
		if pi.CaptureProb > fi.CaptureProb+1e-6 {
			t.Fatalf("trial %d (%s, e=%v): PI %v beats FI %v",
				trial, d.Name(), e, pi.CaptureProb, fi.CaptureProb)
		}
		if pi.EnergyRate > e*(1+1e-6)+1e-9 {
			t.Fatalf("trial %d: clustering exceeds budget", trial)
		}
	}
}

// TestGreedyBudgetIdentityProperty: the greedy policy satisfies the
// balance constraint (8) exactly (below saturation) on random workloads.
func TestGreedyBudgetIdentityProperty(t *testing.T) {
	src := rng.New(74, 0)
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		d := mustEmpirical(t, randomEmpirical(src, 25))
		e := 0.9 * src.Float64() * p.SaturationRate(d.Mean())
		res, err := GreedyFI(d, e, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Policy.EnergyPerCycleFI(d, p); math.Abs(got-e*d.Mean()) > 1e-6*(1+e*d.Mean()) {
			t.Fatalf("trial %d: Σξc = %v, want eμ = %v", trial, got, e*d.Mean())
		}
	}
}
