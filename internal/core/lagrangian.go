package core

import (
	"fmt"
	"math"

	"eventcap/internal/dist"
	"eventcap/internal/mdp"
)

// LagrangianFI solves the full-information problem through the paper's
// original lens — the constrained average-reward MDP over the h-states of
// Figure 2 — rather than the reduced linear program. The constraint
// (energy rate = e) is absorbed with a Lagrange multiplier λ on energy:
//
//	r_λ(h_i, a1) = β_i − λ·(δ1 + δ2·β_i),   r_λ(h_i, a2) = 0
//
// and λ is found by bisection so that the optimal policy's energy rate
// meets e. At the boundary multiplier the optimal policy is a β-threshold
// rule (every state strictly above the marginal hazard activates), which
// is exactly Theorem 1's structure; the marginal state gets the
// fractional probability that closes the balance. The result therefore
// coincides with GreedyFI and serves as a third independent derivation
// (greedy construction, simplex LP, and Lagrangian MDP).
//
// maxStates truncates the h-chain (states beyond it carry < DefaultEpsTail
// probability for the distributions in the paper at the default horizon).
func LagrangianFI(d dist.Interarrival, e float64, p Params, maxStates int) (*FIResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("core: recharge rate must be >= 0, got %g", e)
	}
	if maxStates < 2 {
		return nil, fmt.Errorf("core: LagrangianFI needs at least 2 states, got %d", maxStates)
	}
	mu := d.Mean()
	if e >= p.SaturationRate(mu) {
		return &FIResult{
			Policy:      Vector{Tail: 1},
			CaptureProb: 1,
			EnergyRate:  p.SaturationRate(mu),
			Budget:      e * mu,
			Saturated:   true,
		}, nil
	}

	horizon := effectiveHorizon(d)
	if horizon > maxStates {
		horizon = maxStates
	}
	hazards := make([]float64, horizon)
	for i := 1; i <= horizon; i++ {
		hazards[i-1] = d.Hazard(i)
	}
	// Make the truncated chain proper: the last state renews certainly.
	hazards[horizon-1] = 1

	// buildPolicy returns the λ-optimal activation vector. For the
	// Lagrangian reward, state i activates iff its marginal value
	// β_i − λ(δ1 + δ2 β_i) > 0, i.e. β_i > λδ1/(1 − λδ2): activation
	// decisions decouple across states because both reward and cost
	// accrue per visit regardless of the transition taken (full
	// information makes the dynamics action-independent).
	buildPolicy := func(lambda float64) Vector {
		prefix := make([]float64, horizon)
		for i := range hazards {
			if hazards[i]-lambda*(p.Delta1+p.Delta2*hazards[i]) > 0 {
				prefix[i] = 1
			}
		}
		return Vector{Prefix: prefix}
	}
	energyOf := func(v Vector) float64 { return v.EnergyRateFI(d, p) }

	// Bisection on λ: energy is nonincreasing in λ.
	lo, hi := 0.0, 1/p.Delta1
	if energyOf(buildPolicy(lo)) <= e {
		// Even λ=0 (activate everywhere useful) fits the budget.
		v := buildPolicy(lo)
		return &FIResult{
			Policy:      v.trimmed(),
			CaptureProb: v.CaptureProbFI(d),
			EnergyRate:  energyOf(v),
			Budget:      e * mu,
			Horizon:     horizon,
		}, nil
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14; iter++ {
		mid := (lo + hi) / 2
		if energyOf(buildPolicy(mid)) > e {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Above-threshold states (λ = hi) are in; the marginal states at the
	// boundary get a fractional probability to exhaust the budget, as in
	// Theorem 1.
	v := buildPolicy(hi)
	budget := e * mu
	spent := v.EnergyPerCycleFI(d, p)
	remaining := budget - spent
	if remaining > 0 {
		// Marginal states: active under λ=lo but not under λ=hi. Fill
		// them in decreasing-hazard order with the leftover budget.
		vLo := buildPolicy(lo)
		type marginal struct {
			idx    int
			hazard float64
			xi     float64
		}
		var ms []marginal
		for i := 1; i <= horizon; i++ {
			// floateq:ok saturation test: greedy writes the exact constants 0 and 1
			if vLo.At(i) == 1 && v.At(i) == 0 {
				surv := 1 - d.CDF(i-1)
				ms = append(ms, marginal{idx: i, hazard: hazards[i-1], xi: p.Delta1*surv + p.Delta2*d.PMF(i)})
			}
		}
		// All marginal states share (numerically) the same hazard, but
		// sort defensively.
		for a := range ms {
			for b := a + 1; b < len(ms); b++ {
				if ms[b].hazard > ms[a].hazard {
					ms[a], ms[b] = ms[b], ms[a]
				}
			}
		}
		for _, m := range ms {
			if remaining <= 0 {
				break
			}
			c := 1.0
			if m.xi > remaining {
				c = remaining / m.xi
			}
			v.Prefix[m.idx-1] = c
			remaining -= c * m.xi
		}
	}
	return &FIResult{
		Policy:      v.trimmed(),
		CaptureProb: v.CaptureProbFI(d),
		EnergyRate:  energyOf(v),
		Budget:      budget,
		Horizon:     horizon,
	}, nil
}

// BuildFIMDP constructs the explicit finite MDP of the paper's Figure 2
// (h-states, actions {active, inactive}) with the Lagrangian reward for
// multiplier lambda, for use with the generic solvers in internal/mdp.
// The truncated chain's final state renews with certainty. It exists so
// tests can verify that relative value iteration / policy iteration on
// the actual MDP reproduce the threshold structure Theorem 1 proves.
func BuildFIMDP(d dist.Interarrival, p Params, lambda float64, states int) (*mdp.MDP, error) {
	if states < 2 {
		return nil, fmt.Errorf("core: BuildFIMDP needs at least 2 states, got %d", states)
	}
	m, err := mdp.New(states, 2)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= states; i++ {
		h := d.Hazard(i)
		if i == states {
			h = 1 // renew certainly at the truncation boundary
		}
		next := i // 0-based index of h_{i+1}
		if next >= states {
			next = states - 1
		}
		outs := []mdp.Transition{{Next: 0, Prob: h}}
		if h < 1 {
			outs = append(outs, mdp.Transition{Next: next, Prob: 1 - h})
		}
		// Action 0: inactive, no reward. Action 1: active.
		if err := m.SetTransition(i-1, 0, outs, 0); err != nil {
			return nil, err
		}
		reward := h - lambda*(p.Delta1+p.Delta2*h)
		if err := m.SetTransition(i-1, 1, outs, reward); err != nil {
			return nil, err
		}
	}
	return m, nil
}
