package core

import (
	"fmt"

	"eventcap/internal/dist"
)

// GapEstimator learns an inter-arrival distribution from observed event
// gaps. Under full information every gap is observed, so the empirical
// histogram is a consistent estimator of the true PMF; the paper assumes
// the distribution is known a priori, and this estimator (together with
// sim.AdaptiveGreedyFI) extends the system to the unknown-distribution
// case by plugging the estimate into Theorem 1.
//
// Laplace smoothing (+ε per cell up to the largest observed gap) keeps
// the hazards strictly positive so early policies cannot freeze on an
// impossible state.
type GapEstimator struct {
	counts  []float64
	seen    int
	maxGap  int
	largest int
	epsilon float64
}

// NewGapEstimator creates an estimator for gaps up to maxGap slots
// (longer observations are clamped, which only fattens the last cell).
func NewGapEstimator(maxGap int) (*GapEstimator, error) {
	if maxGap < 1 {
		return nil, fmt.Errorf("core: gap estimator needs maxGap >= 1, got %d", maxGap)
	}
	return &GapEstimator{
		counts:  make([]float64, maxGap),
		maxGap:  maxGap,
		epsilon: 0.5,
	}, nil
}

// Observe records one inter-event gap in slots (>= 1; smaller values are
// ignored).
func (g *GapEstimator) Observe(gap int) {
	if gap < 1 {
		return
	}
	if gap > g.maxGap {
		gap = g.maxGap
	}
	g.counts[gap-1]++
	g.seen++
	if gap > g.largest {
		g.largest = gap
	}
}

// Count returns the number of observed gaps.
func (g *GapEstimator) Count() int { return g.seen }

// Distribution returns the smoothed empirical distribution of the
// observations so far. It fails until at least one gap was observed.
func (g *GapEstimator) Distribution() (*dist.Empirical, error) {
	if g.seen == 0 {
		return nil, fmt.Errorf("core: no gaps observed yet")
	}
	// Support: slightly beyond the largest observation, so the policy
	// keeps a little probability on "longer than anything seen".
	support := g.largest + 1 + g.largest/8
	if support > g.maxGap {
		support = g.maxGap
	}
	weights := make([]float64, support)
	for k := 0; k < support; k++ {
		weights[k] = g.counts[k] + g.epsilon
	}
	return dist.NewEmpirical(weights)
}
