package core

import (
	"encoding/json"
	"fmt"
)

// Serialization of computed policies, so a base station can ship them to
// resource-constrained sensor nodes (the paper's implementation argument:
// the clustering policy "can be implemented by a resource-constrained
// sensor using local state only" — what actually travels to the node is
// this compact form).

// vectorJSON is the wire form of a Vector.
type vectorJSON struct {
	Prefix []float64 `json:"prefix,omitempty"`
	Tail   float64   `json:"tail"`
}

// MarshalJSON implements json.Marshaler.
func (v Vector) MarshalJSON() ([]byte, error) {
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("marshaling activation vector: %w", err)
	}
	return json.Marshal(vectorJSON{Prefix: v.Prefix, Tail: v.Tail})
}

// UnmarshalJSON implements json.Unmarshaler, validating probabilities.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var w vectorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("unmarshaling activation vector: %w", err)
	}
	out := Vector{Prefix: w.Prefix, Tail: w.Tail}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("unmarshaling activation vector: %w", err)
	}
	*v = out
	return nil
}

// clusteringJSON is the wire form of a ClusteringPolicy.
type clusteringJSON struct {
	N1 int     `json:"n1"`
	N2 int     `json:"n2"`
	N3 int     `json:"n3"`
	C1 float64 `json:"c1"`
	C2 float64 `json:"c2"`
	C3 float64 `json:"c3"`
}

// MarshalJSON implements json.Marshaler.
func (cp ClusteringPolicy) MarshalJSON() ([]byte, error) {
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("marshaling clustering policy: %w", err)
	}
	return json.Marshal(clusteringJSON{
		N1: cp.N1, N2: cp.N2, N3: cp.N3,
		C1: cp.C1, C2: cp.C2, C3: cp.C3,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating the regions.
func (cp *ClusteringPolicy) UnmarshalJSON(data []byte) error {
	var w clusteringJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("unmarshaling clustering policy: %w", err)
	}
	out := ClusteringPolicy{
		N1: w.N1, N2: w.N2, N3: w.N3,
		C1: w.C1, C2: w.C2, C3: w.C3,
	}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("unmarshaling clustering policy: %w", err)
	}
	*cp = out
	return nil
}
