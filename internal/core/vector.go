package core

import (
	"fmt"

	"eventcap/internal/dist"
	"eventcap/internal/numeric"
)

// Vector is a stationary activation policy: At(i) is the probability c_i
// of taking the active action in event state i (slots since the last
// event under full information, slots since the last capture under
// partial information). The explicit prefix covers states 1..len(Prefix);
// Tail applies to every later state, so policies with an infinite
// always-on region (the clustering policy's recovery tail, Theorem 1's
// "1, 1, ..." suffix) are represented exactly.
type Vector struct {
	Prefix []float64
	Tail   float64
}

// At returns c_i for state i >= 1 (0 for smaller i).
func (v Vector) At(i int) float64 {
	if i < 1 {
		return 0
	}
	if i <= len(v.Prefix) {
		return v.Prefix[i-1]
	}
	return v.Tail
}

// Validate checks that every probability lies in [0, 1].
func (v Vector) Validate() error {
	for i, c := range v.Prefix {
		if c < 0 || c > 1 {
			return fmt.Errorf("core: activation probability %g at state %d out of [0,1]", c, i+1)
		}
	}
	if v.Tail < 0 || v.Tail > 1 {
		return fmt.Errorf("core: tail activation probability %g out of [0,1]", v.Tail)
	}
	return nil
}

// trimmed returns v with trailing prefix entries equal to the tail
// removed.
func (v Vector) trimmed() Vector {
	n := len(v.Prefix)
	// floateq:ok lossless compression: only bit-identical entries may fold into the tail
	for n > 0 && v.Prefix[n-1] == v.Tail {
		n--
	}
	out := Vector{Prefix: make([]float64, n), Tail: v.Tail}
	copy(out.Prefix, v.Prefix[:n])
	return out
}

// CaptureProbFI returns U(π) = Σ α_i c_i, the full-information capture
// probability under the energy assumption (objective (7)).
func (v Vector) CaptureProbFI(d dist.Interarrival) float64 {
	var sum numeric.KahanSum
	i := 1
	for ; i <= len(v.Prefix); i++ {
		c := v.Prefix[i-1]
		if c != 0 {
			sum.Add(c * d.PMF(i))
		}
	}
	if v.Tail > 0 {
		// Σ_{i>L} α_i = 1 − F(L).
		sum.Add(v.Tail * (1 - d.CDF(len(v.Prefix))))
	}
	return sum.Value()
}

// ActivationsPerCycle returns n(π) = Σ c_i·(1−F(i−1)): the expected
// number of active slots per inter-arrival interval (Eq. (4)).
func (v Vector) ActivationsPerCycle(d dist.Interarrival) float64 {
	var sum numeric.KahanSum
	for i := 1; i <= len(v.Prefix); i++ {
		c := v.Prefix[i-1]
		if c != 0 {
			sum.Add(c * (1 - d.CDF(i-1)))
		}
	}
	if v.Tail > 0 {
		sum.Add(v.Tail * survivalSumFrom(d, len(v.Prefix)))
	}
	return sum.Value()
}

// EnergyPerCycleFI returns Σ ξ_i c_i with ξ_i = δ1(1−F(i−1)) + δ2 α_i:
// the expected energy consumed per inter-arrival interval under full
// information (left side of the balance constraint (8)).
func (v Vector) EnergyPerCycleFI(d dist.Interarrival, p Params) float64 {
	return p.Delta1*v.ActivationsPerCycle(d) + p.Delta2*v.CaptureProbFI(d)
}

// EnergyRateFI returns the per-slot average energy use u = Σ ξ_i c_i / μ.
// The policy is energy balanced at recharge rate e when EnergyRateFI == e.
func (v Vector) EnergyRateFI(d dist.Interarrival, p Params) float64 {
	return v.EnergyPerCycleFI(d, p) / d.Mean()
}

// survivalSumFrom returns Σ_{j>=from}(1−F(j)). Distributions with heavy
// tails provide an analytic implementation via the tailSummer interface;
// otherwise the series is summed until it is numerically exhausted.
func survivalSumFrom(d dist.Interarrival, from int) float64 {
	type tailSummer interface{ SurvivalSumFrom(from int) float64 }
	if ts, ok := d.(tailSummer); ok {
		return ts.SurvivalSumFrom(from)
	}
	if from < 0 {
		from = 0
	}
	var sum numeric.KahanSum
	for j := from; j < from+(1<<22); j++ {
		s := 1 - d.CDF(j)
		if s <= 0 {
			break
		}
		sum.Add(s)
		if s < 1e-14 && j > from+8 {
			break
		}
	}
	return sum.Value()
}
