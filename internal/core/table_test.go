package core

import "testing"

func TestCompileVectorProbsMatch(t *testing.T) {
	v := Vector{Prefix: []float64{0, 0, 0.5, 0, 1}, Tail: 0.25}
	tab, err := CompileVector(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := -1; i <= 10; i++ {
		if got, want := tab.At(i), v.At(i); got != want {
			t.Errorf("At(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestCompileVectorZeroRuns(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		want map[int]int64 // state -> expected run
	}{
		{
			name: "greedy-style gap then tail",
			v:    Vector{Prefix: []float64{0, 0, 0, 1}, Tail: 1},
			want: map[int]int64{1: 3, 2: 2, 3: 1, 4: 0, 5: 0, 100: 0},
		},
		{
			name: "zero tail saturates",
			v:    Vector{Prefix: []float64{1, 0, 0}, Tail: 0},
			want: map[int]int64{1: 0, 2: UnboundedRun, 3: UnboundedRun, 4: UnboundedRun, 1000: UnboundedRun},
		},
		{
			name: "interior gap before zero tail",
			v:    Vector{Prefix: []float64{0, 1, 0, 0.5}, Tail: 0},
			want: map[int]int64{1: 1, 2: 0, 3: 1, 4: 0, 5: UnboundedRun},
		},
		{
			name: "always on",
			v:    Vector{Prefix: nil, Tail: 1},
			want: map[int]int64{1: 0, 50: 0},
		},
		{
			name: "never on",
			v:    Vector{Prefix: nil, Tail: 0},
			want: map[int]int64{1: UnboundedRun, 7: UnboundedRun},
		},
	}
	for _, tc := range cases {
		tab, err := CompileVector(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for state, want := range tc.want {
			if got := tab.ZeroRunFrom(state); got != want {
				t.Errorf("%s: ZeroRunFrom(%d) = %d, want %d", tc.name, state, got, want)
			}
		}
	}
}

func TestCompileVectorClampsLowStates(t *testing.T) {
	tab, err := CompileVector(Vector{Prefix: []float64{0, 1}, Tail: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.ZeroRunFrom(0); got != tab.ZeroRunFrom(1) {
		t.Errorf("ZeroRunFrom(0) = %d, want state-1 value %d", got, tab.ZeroRunFrom(1))
	}
}

func TestCompileVectorRejectsInvalid(t *testing.T) {
	if _, err := CompileVector(Vector{Prefix: []float64{1.5}, Tail: 0}); err == nil {
		t.Fatal("out-of-range prefix compiled")
	}
	if _, err := CompileVector(Vector{Tail: -0.1}); err == nil {
		t.Fatal("negative tail compiled")
	}
}
