package core

import (
	"math"
	"testing"

	"eventcap/internal/dist"
	"eventcap/internal/rng"
)

// TestEBCWEvalMatchesMonteCarlo validates the renewal-reward evaluation
// of a (pYes, pNo) policy against a direct simulation of the two-state
// Markov event chain.
func TestEBCWEvalMatchesMonteCarlo(t *testing.T) {
	p := DefaultParams()
	src := rng.New(55, 0)
	cases := []struct{ a, b, pYes, pNo float64 }{
		{0.7, 0.6, 1, 0.2},
		{0.3, 0.2, 0.5, 0.5},
		{0.9, 0.7, 1, 0.05},
		{0.2, 0.7, 0.3, 0.8},
	}
	for _, tc := range cases {
		wantCap, wantEnergy := ebcwEval(tc.a, tc.b, tc.pYes, tc.pNo, p)

		const T = 2000000
		event := true // start right after an event (observation = event)
		lastObs := true
		var captures, activations, events int64
		var energy float64
		for slot := 0; slot < T; slot++ {
			// Event process evolves first (Markov on the previous slot).
			if event {
				event = src.Bernoulli(tc.a)
			} else {
				event = src.Bernoulli(1 - tc.b)
			}
			if event {
				events++
			}
			c := tc.pNo
			if lastObs {
				c = tc.pYes
			}
			if src.Bernoulli(c) {
				activations++
				energy += p.Delta1
				lastObs = event
				if event {
					captures++
					energy += p.Delta2
				}
			}
		}
		gotCap := float64(captures) / T
		gotEnergy := energy / T
		if math.Abs(gotCap-wantCap) > 3e-3 {
			t.Errorf("a=%v b=%v pY=%v pN=%v: capture rate MC %v vs analytic %v",
				tc.a, tc.b, tc.pYes, tc.pNo, gotCap, wantCap)
		}
		if math.Abs(gotEnergy-wantEnergy) > 2e-2 {
			t.Errorf("a=%v b=%v pY=%v pN=%v: energy rate MC %v vs analytic %v",
				tc.a, tc.b, tc.pYes, tc.pNo, gotEnergy, wantEnergy)
		}
		_ = events
	}
}

func TestOptimizeEBCWFeasible(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct{ a, b, e float64 }{
		{0.7, 0.6, 1.0}, {0.3, 0.2, 0.5}, {0.9, 0.2, 0.8}, {0.2, 0.7, 0.3},
	} {
		pol, err := OptimizeEBCW(tc.a, tc.b, tc.e, p)
		if err != nil {
			t.Fatal(err)
		}
		if pol.EnergyRate > tc.e*(1+1e-6)+1e-9 {
			t.Errorf("a=%v b=%v: energy %v exceeds e=%v", tc.a, tc.b, pol.EnergyRate, tc.e)
		}
		if pol.CaptureU < 0 || pol.CaptureU > 1 {
			t.Errorf("a=%v b=%v: U=%v out of range", tc.a, tc.b, pol.CaptureU)
		}
		if pol.PYes < 0 || pol.PYes > 1 || pol.PNo < 0 || pol.PNo > 1 {
			t.Errorf("a=%v b=%v: probabilities out of range: %+v", tc.a, tc.b, pol)
		}
	}
}

// TestEBCWPositiveCorrelationPrefersYes: with a, b > 0.5 events cluster,
// so the optimal last-observation policy activates after seeing an event
// at least as eagerly as after seeing none.
func TestEBCWPositiveCorrelationPrefersYes(t *testing.T) {
	pol, err := OptimizeEBCW(0.8, 0.7, 0.6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if pol.PYes < pol.PNo-1e-6 {
		t.Fatalf("positively correlated events but PYes=%v < PNo=%v", pol.PYes, pol.PNo)
	}
}

// TestClusteringBeatsEBCWOffRegime is the Fig. 5 shape: for Markov chains
// outside the a, b > 0.5 regime of [6], the renewal-aware clustering
// policy strictly outperforms the best last-observation policy, while for
// a, b > 0.5 the two agree closely.
func TestClusteringBeatsEBCWOffRegime(t *testing.T) {
	p := DefaultParams()
	e := 1.0 // Bernoulli q=0.5, c=2 in the paper's Fig. 5

	check := func(a, b float64) (clusterU, ebcwU float64) {
		t.Helper()
		mr, err := dist.NewMarkovRenewal(a, b)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := OptimizeClustering(mr, e, p, ClusteringOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eb, err := OptimizeEBCW(a, b, e, p)
		if err != nil {
			t.Fatal(err)
		}
		return cl.CaptureProb, eb.CaptureU
	}

	// Off-regime (paper Fig. 5a): b = 0.2, small a. Our EBCW is tuned
	// optimally within its class, so the gap is smaller than the paper's
	// but must still be strictly positive.
	clU, ebU := check(0.2, 0.2)
	if clU < ebU+0.005 {
		t.Errorf("a=b=0.2: clustering %v should beat EBCW %v", clU, ebU)
	}
	// In-regime (paper Fig. 5b): a, b > 0.5 — near parity.
	clU, ebU = check(0.8, 0.7)
	if math.Abs(clU-ebU) > 0.08 {
		t.Errorf("a=0.8 b=0.7: clustering %v and EBCW %v should agree closely", clU, ebU)
	}
	if ebU > clU+0.02 {
		t.Errorf("a=0.8 b=0.7: EBCW %v should not clearly beat clustering %v", ebU, clU)
	}
}

func TestOptimizeEBCWErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := OptimizeEBCW(0, 0.5, 1, p); err == nil {
		t.Fatal("a=0 accepted")
	}
	if _, err := OptimizeEBCW(0.5, 1, 1, p); err == nil {
		t.Fatal("b=1 accepted")
	}
	if _, err := OptimizeEBCW(0.5, 0.5, -1, p); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := OptimizeEBCW(0.5, 0.5, 1, Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestPeriodicCalibration(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	theta2, err := PeriodicTheta2(3, 0.5, d, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*1/0.5 + 3*6/(0.5*d.Mean())
	if math.Abs(theta2-want) > 1e-9 {
		t.Fatalf("θ2 = %v, want %v", theta2, want)
	}
	// Sanity of the energy argument: per-period energy argument holds at the calibrated rate.
	if u := PeriodicU(3, theta2); u <= 0 || u >= 1 {
		t.Fatalf("periodic U = %v out of (0,1)", u)
	}
	// Above saturation θ2 clamps to θ1 (always on).
	theta2, err = PeriodicTheta2(3, 100, d, p)
	if err != nil {
		t.Fatal(err)
	}
	if theta2 != 3 || PeriodicU(3, theta2) != 1 {
		t.Fatalf("above saturation: θ2=%v U=%v", theta2, PeriodicU(3, theta2))
	}
}

func TestPeriodicCalibrationErrors(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	if _, err := PeriodicTheta2(0, 0.5, d, p); err == nil {
		t.Fatal("θ1=0 accepted")
	}
	if _, err := PeriodicTheta2(3, 0, d, p); err == nil {
		t.Fatal("e=0 accepted")
	}
	if _, err := PeriodicTheta2(3, 0.5, d, Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestAggressiveU(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := DefaultParams()
	sat := p.SaturationRate(d.Mean())
	if got := AggressiveU(d, sat/2, p); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half saturation should give U=0.5, got %v", got)
	}
	if got := AggressiveU(d, 2*sat, p); got != 1 {
		t.Fatalf("above saturation U=%v, want 1", got)
	}
	if got := AggressiveU(d, 0, p); got != 0 {
		t.Fatalf("zero rate U=%v, want 0", got)
	}
}

func TestOptimizeEBCWFaithful(t *testing.T) {
	p := DefaultParams()
	// In-regime: the faithful policy (PYes = 1) is also the free optimum.
	free, err := OptimizeEBCW(0.8, 0.7, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	faithful, err := OptimizeEBCWFaithful(0.8, 0.7, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if faithful.PYes != 1 {
		t.Fatalf("faithful PYes = %v, want 1", faithful.PYes)
	}
	if faithful.CaptureU > free.CaptureU+1e-9 {
		t.Fatalf("constrained policy %v beats free optimum %v", faithful.CaptureU, free.CaptureU)
	}
	if math.Abs(faithful.CaptureU-free.CaptureU) > 0.05 {
		t.Fatalf("in-regime faithful %v should be near free %v", faithful.CaptureU, free.CaptureU)
	}
	// Off-regime: fixing PYes = 1 hurts.
	freeOff, err := OptimizeEBCW(0.1, 0.2, 0.6, p)
	if err != nil {
		t.Fatal(err)
	}
	faithfulOff, err := OptimizeEBCWFaithful(0.1, 0.2, 0.6, p)
	if err != nil {
		t.Fatal(err)
	}
	if faithfulOff.CaptureU > freeOff.CaptureU+1e-9 {
		t.Fatalf("constrained off-regime %v beats free %v", faithfulOff.CaptureU, freeOff.CaptureU)
	}
}
