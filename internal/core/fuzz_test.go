package core

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzVectorJSONRoundTrip drives the policy wire format (serialize.go):
// any vector that marshals must unmarshal back bit-identically — the
// base station and the sensor node must agree on the policy exactly,
// not to within rounding — and invalid probabilities must be rejected
// on both paths.
func FuzzVectorJSONRoundTrip(f *testing.F) {
	f.Add([]byte{}, 1.0)
	f.Add([]byte{0, 128, 255}, 0.5)
	f.Add([]byte{7}, 0.0)
	f.Add([]byte{255, 255, 255, 255}, 1.0)
	f.Fuzz(func(t *testing.T, prefixBytes []byte, tail float64) {
		if len(prefixBytes) > 1024 {
			prefixBytes = prefixBytes[:1024]
		}
		prefix := make([]float64, len(prefixBytes))
		for i, b := range prefixBytes {
			prefix[i] = float64(b) / 255
		}
		v := Vector{Prefix: prefix, Tail: tail}

		data, err := json.Marshal(v)
		if v.Validate() != nil {
			if err == nil {
				t.Fatalf("marshal accepted invalid vector (tail=%g)", tail)
			}
			return
		}
		if err != nil {
			t.Fatalf("marshal rejected valid vector: %v", err)
		}
		var back Vector
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal of own output failed: %v\n%s", err, data)
		}
		if len(back.Prefix) != len(v.Prefix) {
			t.Fatalf("prefix length changed: %d -> %d", len(v.Prefix), len(back.Prefix))
		}
		for i := range v.Prefix {
			if math.Float64bits(back.Prefix[i]) != math.Float64bits(v.Prefix[i]) {
				t.Fatalf("prefix[%d] changed bits: %g -> %g", i, v.Prefix[i], back.Prefix[i])
			}
		}
		if math.Float64bits(back.Tail) != math.Float64bits(v.Tail) {
			t.Fatalf("tail changed bits: %g -> %g", v.Tail, back.Tail)
		}
	})
}

// FuzzClusteringPolicyRoundTrip does the same for the clustering
// policy's compact wire form: valid policies survive bit-identically,
// invalid region orderings and probabilities are rejected symmetrically
// by both directions.
func FuzzClusteringPolicyRoundTrip(f *testing.F) {
	f.Add(1, 3, 7, 0.5, 1.0, 0.25)
	f.Add(1, 1, 2, 0.0, 0.0, 0.0)
	f.Add(0, 0, 0, 2.0, -1.0, math.NaN())
	f.Fuzz(func(t *testing.T, n1, n2, n3 int, c1, c2, c3 float64) {
		cp := ClusteringPolicy{N1: n1, N2: n2, N3: n3, C1: c1, C2: c2, C3: c3}
		data, err := json.Marshal(cp)
		if cp.Validate() != nil {
			if err == nil {
				t.Fatalf("marshal accepted invalid policy %+v", cp)
			}
			return
		}
		if err != nil {
			t.Fatalf("marshal rejected valid policy %+v: %v", cp, err)
		}
		var back ClusteringPolicy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal of own output failed: %v\n%s", err, data)
		}
		if back.N1 != cp.N1 || back.N2 != cp.N2 || back.N3 != cp.N3 {
			t.Fatalf("regions changed: %+v -> %+v", cp, back)
		}
		for _, pair := range [][2]float64{{cp.C1, back.C1}, {cp.C2, back.C2}, {cp.C3, back.C3}} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("boundary probability changed bits: %g -> %g", pair[0], pair[1])
			}
		}
	})
}
