package core

import (
	"math"
	"sync"
	"testing"

	"eventcap/internal/dist"
)

func resetCache(t *testing.T) {
	t.Helper()
	ResetPolicyCache()
	t.Cleanup(ResetPolicyCache)
}

func TestGreedyFICachedMatchesUncached(t *testing.T) {
	resetCache(t)
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want, err := GreedyFI(d, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyFICached(d, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.CaptureProb != want.CaptureProb || got.EnergyRate != want.EnergyRate {
		t.Fatalf("cached result differs: %+v vs %+v", got, want)
	}
	again, err := GreedyFICached(d, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("second call did not return the memoized pointer")
	}
	hits, misses := CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheKeyDistinguishesInputs(t *testing.T) {
	resetCache(t)
	w1, _ := dist.NewWeibull(40, 3)
	w2, _ := dist.NewWeibull(40, 3.0000001)
	p := DefaultParams()
	r1, err := GreedyFICached(w1, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GreedyFICached(w2, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("distinct distributions shared a cache entry")
	}
	r3, err := GreedyFICached(w1, 0.5000001, p)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("distinct rates shared a cache entry")
	}
	r4, err := GreedyFICached(w1, 0.5, Params{Delta1: 1, Delta2: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatal("distinct params shared a cache entry")
	}
}

func TestClusteringCachedKeyIncludesOptions(t *testing.T) {
	resetCache(t)
	d, _ := dist.NewWeibull(40, 3)
	p := DefaultParams()
	a, err := OptimizeClusteringCached(d, 0.5, p, ClusteringOptions{CoarsePoints: 8, MaxGap: 512})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeClusteringCached(d, 0.5, p, ClusteringOptions{CoarsePoints: 8, MaxGap: 256})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct clustering options shared a cache entry")
	}
	c, err := OptimizeClusteringCached(d, 0.5, p, ClusteringOptions{CoarsePoints: 8, MaxGap: 512})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("equal options did not hit the cache")
	}
}

// TestEmpiricalCacheKeyedByContents: two Empirical distributions share a
// display name but must not share cache entries unless their PMFs match.
func TestEmpiricalCacheKeyedByContents(t *testing.T) {
	resetCache(t)
	p := DefaultParams()
	e1, err := dist.NewEmpirical([]float64{0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dist.NewEmpirical([]float64{0.6, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Name() != e2.Name() {
		t.Fatalf("test premise broken: names differ (%s, %s)", e1.Name(), e2.Name())
	}
	r1, err := GreedyFICached(e1, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GreedyFICached(e2, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("different empirical PMFs shared a cache entry")
	}
	e3, err := dist.NewEmpirical([]float64{0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := GreedyFICached(e3, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("identical empirical PMFs did not share a cache entry")
	}
}

// TestCacheConcurrentSingleflight: many goroutines asking for the same
// key must produce one computation and identical pointers (run under
// -race in tier-1).
func TestCacheConcurrentSingleflight(t *testing.T) {
	resetCache(t)
	d, _ := dist.NewWeibull(40, 3)
	p := DefaultParams()
	const goroutines = 16
	results := make([]*FIResult, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := GreedyFICached(d, 0.7, p)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = r
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different pointer", g)
		}
	}
	_, misses := CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 computation", misses)
	}
}

// TestCachedSolversAgree: LP and Lagrangian cached wrappers agree with
// greedy on the optimum (Theorem 1), via the cache path.
func TestCachedSolversAgree(t *testing.T) {
	resetCache(t)
	d, _ := dist.NewWeibull(40, 3)
	p := DefaultParams()
	g, err := GreedyFICached(d, 0.4, p)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LPFICached(d, 0.4, p, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.CaptureProb-lp.CaptureProb) > 1e-6 {
		t.Fatalf("greedy %v vs LP %v", g.CaptureProb, lp.CaptureProb)
	}
	lg, err := LagrangianFICached(d, 0.4, p, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.CaptureProb-lg.CaptureProb) > 5e-3 {
		t.Fatalf("greedy %v vs Lagrangian %v", g.CaptureProb, lg.CaptureProb)
	}
}

func TestMixtureCacheKey(t *testing.T) {
	w, _ := dist.NewWeibull(40, 3)
	pa, _ := dist.NewPareto(2, 10)
	m, err := dist.NewMixture([]dist.Interarrival{w, pa}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	k1 := m.CacheKey()
	if k1 == "" {
		t.Fatal("keyed components should produce a non-empty mixture key")
	}
	m2, err := dist.NewMixture([]dist.Interarrival{w, pa}, []float64{0.3000001, 0.6999999})
	if err != nil {
		t.Fatal(err)
	}
	if m2.CacheKey() == k1 {
		t.Fatal("different weights produced the same mixture key")
	}
}
