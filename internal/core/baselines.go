package core

import (
	"fmt"
	"math"

	"eventcap/internal/dist"
)

// PeriodicTheta2 returns the energy-balanced period θ2 for the paper's
// periodic baseline π_PE, which activates the sensor for θ1 slots out of
// every θ2 (Section VI-A2):
//
//	θ2(e) = θ1·δ1/e + θ1·δ2/(e·μ)
//
// Per θ2-period the sensor spends θ1·δ1 sensing and captures a θ1/θ2
// fraction of the θ2/μ expected events, costing δ2·θ1/μ; equating the
// total with e·θ2 yields the formula. The returned value is the exact
// real-valued period; runtime implementations round up so the policy
// never overdraws.
func PeriodicTheta2(theta1 int, e float64, d dist.Interarrival, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if theta1 < 1 {
		return 0, fmt.Errorf("core: θ1 must be >= 1, got %d", theta1)
	}
	if !(e > 0) || math.IsNaN(e) {
		return 0, fmt.Errorf("core: periodic calibration needs e > 0, got %g", e)
	}
	t1 := float64(theta1)
	theta2 := t1*p.Delta1/e + t1*p.Delta2/(e*d.Mean())
	if theta2 < t1 {
		theta2 = t1 // e above saturation: stay always-on
	}
	return theta2, nil
}

// PeriodicU is the asymptotic capture probability of the energy-balanced
// periodic policy: θ1/θ2, the fraction of slots covered. (Events of an
// aperiodic renewal process land uniformly over the period phase in the
// long run.)
func PeriodicU(theta1 int, theta2 float64) float64 {
	if theta2 <= 0 {
		return 0
	}
	u := float64(theta1) / theta2
	if u > 1 {
		return 1
	}
	return u
}

// AggressiveU is the asymptotic capture probability of the aggressive
// baseline π_AG (activate whenever B_t >= δ1 + δ2): the active fraction f
// solves f·δ1 + (f/μ)·δ2 = e, i.e. f = e / (δ1 + δ2/μ), capped at 1.
// Treating the battery's charge cycle as uncorrelated with the renewal
// phase, events are captured with probability ≈ f — the "almost linear"
// growth the paper observes in Figs. 4 and 6. The estimate is slightly
// pessimistic for increasing-hazard workloads: the δ2 drain after a
// capture pushes the recovery sleep into the low-hazard slots right
// after the renewal.
func AggressiveU(d dist.Interarrival, e float64, p Params) float64 {
	sat := p.SaturationRate(d.Mean())
	if e >= sat {
		return 1
	}
	if e <= 0 {
		return 0
	}
	return e / sat
}
