package mdp

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// twoStateCycle builds an MDP where the optimal behaviour is to cycle
// s0 -> s1 -> s0 earning 5 per cycle (gain 2.5) instead of parking at s0
// for 1 per step.
func twoStateCycle(t *testing.T) *MDP {
	t.Helper()
	m, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.SetTransition(0, 0, []Transition{{Next: 0, Prob: 1}}, 1))
	must(m.SetTransition(0, 1, []Transition{{Next: 1, Prob: 1}}, 5))
	must(m.SetTransition(1, 0, []Transition{{Next: 0, Prob: 1}}, 0))
	must(m.SetTransition(1, 1, []Transition{{Next: 0, Prob: 1}}, 0))
	return m
}

func TestRVIKnownGain(t *testing.T) {
	m := twoStateCycle(t)
	sol, err := m.RelativeValueIteration(1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Gain-2.5) > 1e-8 {
		t.Fatalf("gain %v, want 2.5", sol.Gain)
	}
	if sol.Policy[0] != 1 {
		t.Fatalf("policy at s0 = %d, want 1 (cycle)", sol.Policy[0])
	}
}

func TestEvaluatePolicyKnown(t *testing.T) {
	m := twoStateCycle(t)
	gain, err := m.EvaluatePolicy([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain-1) > 1e-10 {
		t.Fatalf("parking gain %v, want 1", gain)
	}
	gain, err = m.EvaluatePolicy([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain-2.5) > 1e-10 {
		t.Fatalf("cycle gain %v, want 2.5", gain)
	}
}

func TestLPMatchesRVI(t *testing.T) {
	m := twoStateCycle(t)
	lpGain, err := m.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpGain-2.5) > 1e-7 {
		t.Fatalf("LP gain %v, want 2.5", lpGain)
	}
}

// TestSolversAgreeOnRandomMDPs is the three-way consistency property: RVI
// gain == LP gain == evaluation of the RVI policy.
func TestSolversAgreeOnRandomMDPs(t *testing.T) {
	src := rng.New(41, 0)
	for trial := 0; trial < 25; trial++ {
		nS := 2 + src.Intn(6)
		nA := 1 + src.Intn(3)
		m, err := New(nS, nA)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nS; s++ {
			for a := 0; a < nA; a++ {
				// Dense positive transitions keep the chain unichain.
				probs := make([]float64, nS)
				var total float64
				for j := range probs {
					probs[j] = src.Float64() + 0.05
					total += probs[j]
				}
				outs := make([]Transition, nS)
				for j := range probs {
					outs[j] = Transition{Next: j, Prob: probs[j] / total}
				}
				if err := m.SetTransition(s, a, outs, src.Float64()*10); err != nil {
					t.Fatal(err)
				}
			}
		}
		sol, err := m.RelativeValueIteration(1e-11, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		evalGain, err := m.EvaluatePolicy(sol.Policy)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Gain-evalGain) > 1e-6 {
			t.Fatalf("trial %d: RVI gain %v != policy evaluation %v", trial, sol.Gain, evalGain)
		}
		lpGain, err := m.SolveLP()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Gain-lpGain) > 1e-5 {
			t.Fatalf("trial %d: RVI gain %v != LP gain %v", trial, sol.Gain, lpGain)
		}
	}
}

func TestMDPValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("zero states accepted")
	}
	m, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetTransition(5, 0, nil, 0); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if err := m.SetTransition(0, 5, nil, 0); err == nil {
		t.Fatal("out-of-range action accepted")
	}
	if err := m.SetTransition(0, 0, []Transition{{Next: 0, Prob: 0.5}}, 0); err == nil {
		t.Fatal("sub-stochastic outcomes accepted")
	}
	if err := m.SetTransition(0, 0, []Transition{{Next: 9, Prob: 1}}, 0); err == nil {
		t.Fatal("bad target accepted")
	}
	if err := m.SetTransition(0, 0, []Transition{{Next: 0, Prob: -1}, {Next: 1, Prob: 2}}, 0); err == nil {
		t.Fatal("negative probability accepted")
	}
	// Incomplete MDP must be rejected by solvers.
	if _, err := m.RelativeValueIteration(1e-9, 10); err == nil {
		t.Fatal("incomplete MDP solved")
	}
	if _, err := m.EvaluatePolicy([]int{0, 0}); err == nil {
		t.Fatal("incomplete MDP evaluated")
	}
	if _, err := m.SolveLP(); err == nil {
		t.Fatal("incomplete MDP LP-solved")
	}
}

func TestEvaluatePolicyValidation(t *testing.T) {
	m := twoStateCycle(t)
	if _, err := m.EvaluatePolicy([]int{0}); err == nil {
		t.Fatal("short policy accepted")
	}
	if _, err := m.EvaluatePolicy([]int{0, 9}); err == nil {
		t.Fatal("bad action accepted")
	}
}

// TestLagrangianFIThreshold reproduces the structural content of Theorem 1
// through the generic machinery: for the full-information h-state MDP with
// Lagrangian reward β_i − λ·ξ-cost for activation, the optimal policy is a
// threshold in β_i.
func TestLagrangianFIThreshold(t *testing.T) {
	// Small renewal process with increasing hazards.
	alpha := []float64{0.1, 0.2, 0.3, 0.4}
	hazard := make([]float64, len(alpha))
	surv := 1.0
	for i, a := range alpha {
		hazard[i] = a / surv
		surv -= a
	}
	const delta1, delta2, lambda = 1.0, 6.0, 0.05

	n := len(alpha)
	m, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h := hazard[i]
		nextUp := i + 1
		if nextUp >= n {
			nextUp = n - 1 // β there is 1, so never actually reached with mass
		}
		outs := []Transition{{Next: 0, Prob: h}}
		if h < 1 {
			outs = append(outs, Transition{Next: nextUp, Prob: 1 - h})
		}
		// Active: reward = capture prob − λ·expected energy.
		activeReward := h - lambda*(delta1+delta2*h)
		if err := m.SetTransition(i, 1, outs, activeReward); err != nil {
			t.Fatal(err)
		}
		// Inactive: same event dynamics (full information), zero reward.
		if err := m.SetTransition(i, 0, outs, 0); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := m.RelativeValueIteration(1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold structure: if the policy activates in a state, it must
	// activate in every state with strictly larger hazard.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sol.Policy[i] == 1 && hazard[j] > hazard[i]+1e-12 && sol.Policy[j] == 0 {
				t.Fatalf("non-threshold policy: active at β=%v but idle at β=%v", hazard[i], hazard[j])
			}
		}
	}
	// With λ=0.05 and these hazards, activating at the top hazard must pay.
	if sol.Policy[n-1] != 1 {
		t.Fatal("optimal policy idles in the certain-event state")
	}
}

func TestPolicyIterationKnownGain(t *testing.T) {
	m := twoStateCycle(t)
	sol, err := m.PolicyIteration(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Gain-2.5) > 1e-9 {
		t.Fatalf("gain %v, want 2.5", sol.Gain)
	}
	if sol.Policy[0] != 1 {
		t.Fatalf("policy at s0 = %d, want 1", sol.Policy[0])
	}
}

// TestPolicyIterationAgreesWithRVI extends the three-way consistency to a
// fourth solver on random unichain MDPs.
func TestPolicyIterationAgreesWithRVI(t *testing.T) {
	src := rng.New(47, 0)
	for trial := 0; trial < 15; trial++ {
		nS := 2 + src.Intn(6)
		nA := 1 + src.Intn(3)
		m, err := New(nS, nA)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nS; s++ {
			for a := 0; a < nA; a++ {
				probs := make([]float64, nS)
				var total float64
				for j := range probs {
					probs[j] = src.Float64() + 0.05
					total += probs[j]
				}
				outs := make([]Transition, nS)
				for j := range probs {
					outs[j] = Transition{Next: j, Prob: probs[j] / total}
				}
				if err := m.SetTransition(s, a, outs, src.Float64()*10); err != nil {
					t.Fatal(err)
				}
			}
		}
		rvi, err := m.RelativeValueIteration(1e-11, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pi, err := m.PolicyIteration(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(rvi.Gain-pi.Gain) > 1e-7 {
			t.Fatalf("trial %d: RVI gain %v != PI gain %v", trial, rvi.Gain, pi.Gain)
		}
	}
}

func TestPolicyIterationIncomplete(t *testing.T) {
	m, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PolicyIteration(0); err == nil {
		t.Fatal("incomplete MDP solved")
	}
}
