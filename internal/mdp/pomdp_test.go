package mdp

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

func TestPOMDPValidation(t *testing.T) {
	if _, err := NewPOMDP(nil, 1, 6, 10, 1, 5); err == nil {
		t.Fatal("empty PMF accepted")
	}
	if _, err := NewPOMDP([]float64{0.5}, 1, 6, 10, 1, 5); err == nil {
		t.Fatal("sub-stochastic PMF accepted")
	}
	if _, err := NewPOMDP([]float64{-0.5, 1.5}, 1, 6, 10, 1, 5); err == nil {
		t.Fatal("negative PMF accepted")
	}
	if _, err := NewPOMDP([]float64{1}, 1, 6, 0, 1, 5); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewPOMDP([]float64{1}, 1, 6, 10, 1, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestPOMDPDeterministicFullCapture(t *testing.T) {
	// X = 3 always, ample energy: the optimal policy captures every event
	// (they occur at slots 3, 6, 9 after the initial capture at slot 0).
	p, err := NewPOMDP([]float64{0, 0, 1}, 1, 1, 100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := p.SolveExact()
	if math.Abs(res.Value-3) > 1e-9 {
		t.Fatalf("value %v, want 3 (every event captured)", res.Value)
	}
}

func TestPOMDPEnergyStarved(t *testing.T) {
	// X = 1 always (event every slot) but recharging 1 unit per slot with
	// δ1 = 1, δ2 = 1: each capture costs 2, so at most every other slot.
	p, err := NewPOMDP([]float64{1}, 1, 1, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := p.SolveExact()
	if res.Value > 6+1e-9 {
		t.Fatalf("value %v exceeds the energy bound", res.Value)
	}
	if res.Value < 5-1e-9 {
		t.Fatalf("value %v below the achievable ~half duty cycle", res.Value)
	}
}

func TestPOMDPVectorNeverBeatsExact(t *testing.T) {
	src := rng.New(90, 0)
	for trial := 0; trial < 10; trial++ {
		n := 2 + src.Intn(3)
		alpha := make([]float64, n)
		var total float64
		for i := range alpha {
			alpha[i] = src.Float64() + 0.05
			total += alpha[i]
		}
		for i := range alpha {
			alpha[i] /= total
		}
		p, err := NewPOMDP(alpha, 1, 2, 6, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		exact := p.SolveExact()
		// Random vector policies.
		for v := 0; v < 5; v++ {
			vec := make([]bool, 4)
			for i := range vec {
				vec[i] = src.Bernoulli(0.5)
			}
			got := p.EvaluateVector(vec, src.Bernoulli(0.5))
			if got.Value > exact.Value+1e-9 {
				t.Fatalf("trial %d: vector policy %v beats exact (%v > %v)",
					trial, vec, got.Value, exact.Value)
			}
		}
	}
}

func TestPOMDPAlwaysOnMatchesExactForMemoryless(t *testing.T) {
	// Geometric hazards are constant, so with ample energy no policy can
	// beat always-on; the vector evaluation must equal the exact optimum.
	g := 0.3
	n := 40 // long enough that truncation mass is negligible
	alpha := make([]float64, n)
	surv := 1.0
	for i := 0; i < n-1; i++ {
		alpha[i] = surv * g
		surv *= 1 - g
	}
	alpha[n-1] = surv
	p, err := NewPOMDP(alpha, 1, 1, 1000, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	exact := p.SolveExact()
	always := p.EvaluateVector(nil, true)
	if math.Abs(exact.Value-always.Value) > 1e-6 {
		t.Fatalf("exact %v != always-on %v for memoryless events", exact.Value, always.Value)
	}
}

func TestInformationStateGrowth(t *testing.T) {
	// A 6-slot uniform inter-arrival process: distinct observation
	// histories map to distinct beliefs, so the reachable set grows
	// rapidly with the horizon (the paper's exponential-complexity claim).
	alpha := []float64{1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6}
	p, err := NewPOMDP(alpha, 1, 6, 10, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := p.InformationStateGrowth(8)
	if len(counts) != 8 {
		t.Fatalf("got %d counts, want 8", len(counts))
	}
	prev := 0
	for i, c := range counts {
		if c < prev {
			t.Fatalf("information-state count decreased at horizon %d", i+1)
		}
		prev = c
	}
	if counts[7] < 4*counts[1] {
		t.Fatalf("expected strong growth, got %v", counts)
	}
}

func TestPOMDPBeliefsCountReported(t *testing.T) {
	p, err := NewPOMDP([]float64{0.3, 0.3, 0.4}, 1, 1, 5, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := p.SolveExact()
	if res.DistinctBeliefs < 2 {
		t.Fatalf("suspiciously few beliefs: %d", res.DistinctBeliefs)
	}
	if res.MemoEntries < res.DistinctBeliefs {
		t.Fatalf("memo entries %d < beliefs %d", res.MemoEntries, res.DistinctBeliefs)
	}
}

func BenchmarkPOMDPExactHorizon12(b *testing.B) {
	alpha := []float64{0.2, 0.3, 0.3, 0.2}
	for i := 0; i < b.N; i++ {
		p, err := NewPOMDP(alpha, 1, 2, 8, 1, 12)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.SolveExact()
	}
}
