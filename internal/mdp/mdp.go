// Package mdp provides finite Markov-decision-process machinery with the
// average-reward criterion used throughout the paper's analysis (Section
// IV frames both information models as average-reward Markov control
// problems), plus an exact finite-horizon POMDP solver that demonstrates
// the exponential information-state growth of Section IV-B.
//
// The solvers are deliberately simple and exact-ish (relative value
// iteration, policy evaluation via linear solves, an LP cross-check):
// they serve as independent verification of the paper's structural
// results (e.g. the greedy Theorem-1 policy emerging as the optimum of a
// Lagrangian MDP), not as a production RL toolkit.
package mdp

import (
	"errors"
	"fmt"
	"math"

	"eventcap/internal/numeric"
)

// Transition is one outcome of a state-action pair.
type Transition struct {
	Next int
	Prob float64
}

// MDP is a finite MDP with explicit transition tables.
type MDP struct {
	numStates, numActions int
	trans                 [][][]Transition // [state][action] -> outcomes
	reward                [][]float64      // [state][action] -> expected reward
	defined               [][]bool
}

// New creates an MDP with the given numbers of states and actions. All
// state-action pairs must be defined via SetTransition before solving.
func New(numStates, numActions int) (*MDP, error) {
	if numStates < 1 || numActions < 1 {
		return nil, fmt.Errorf("mdp: need at least one state and action, got (%d, %d)", numStates, numActions)
	}
	m := &MDP{
		numStates:  numStates,
		numActions: numActions,
		trans:      make([][][]Transition, numStates),
		reward:     make([][]float64, numStates),
		defined:    make([][]bool, numStates),
	}
	for s := 0; s < numStates; s++ {
		m.trans[s] = make([][]Transition, numActions)
		m.reward[s] = make([]float64, numActions)
		m.defined[s] = make([]bool, numActions)
	}
	return m, nil
}

// NumStates returns the number of states.
func (m *MDP) NumStates() int { return m.numStates }

// NumActions returns the number of actions.
func (m *MDP) NumActions() int { return m.numActions }

// SetTransition defines the dynamics of (state, action): the outcome
// distribution (probabilities must sum to 1 within 1e-9) and the expected
// one-step reward.
func (m *MDP) SetTransition(state, action int, outcomes []Transition, reward float64) error {
	if state < 0 || state >= m.numStates {
		return fmt.Errorf("mdp: state %d out of range [0, %d)", state, m.numStates)
	}
	if action < 0 || action >= m.numActions {
		return fmt.Errorf("mdp: action %d out of range [0, %d)", action, m.numActions)
	}
	var sum numeric.KahanSum
	cp := make([]Transition, len(outcomes))
	for i, o := range outcomes {
		if o.Next < 0 || o.Next >= m.numStates {
			return fmt.Errorf("mdp: transition target %d out of range", o.Next)
		}
		if o.Prob < 0 {
			return fmt.Errorf("mdp: negative transition probability %g", o.Prob)
		}
		sum.Add(o.Prob)
		cp[i] = o
	}
	if s := sum.Value(); math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("mdp: outcome probabilities for (%d, %d) sum to %g", state, action, s)
	}
	m.trans[state][action] = cp
	m.reward[state][action] = reward
	m.defined[state][action] = true
	return nil
}

func (m *MDP) checkComplete() error {
	for s := 0; s < m.numStates; s++ {
		for a := 0; a < m.numActions; a++ {
			if !m.defined[s][a] {
				return fmt.Errorf("mdp: state %d action %d has no transition defined", s, a)
			}
		}
	}
	return nil
}

// Solution is the result of an average-reward solve.
type Solution struct {
	// Gain is the optimal long-run average reward per step (unichain
	// assumption: identical from every state).
	Gain float64
	// Bias is the relative value (differential reward) of each state,
	// normalized so Bias[0] == 0.
	Bias []float64
	// Policy maps each state to an optimal action.
	Policy []int
}

// ErrNoConverge is returned when value iteration fails to reach the
// requested span tolerance.
var ErrNoConverge = errors.New("mdp: relative value iteration did not converge")

// RelativeValueIteration solves the average-reward problem for a unichain
// MDP: it iterates h ← T(h) − T(h)(s₀) until the span of T(h) − h falls
// below tol.
func (m *MDP) RelativeValueIteration(tol float64, maxIter int) (*Solution, error) {
	if err := m.checkComplete(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	// Damping (aperiodicity transform): h ← h + τ(T(h) − h) with τ < 1
	// guarantees span convergence even for periodic chains such as
	// deterministic cycles.
	const tau = 0.5
	h := make([]float64, m.numStates)
	th := make([]float64, m.numStates)
	policy := make([]int, m.numStates)
	for iter := 0; iter < maxIter; iter++ {
		for s := 0; s < m.numStates; s++ {
			best := math.Inf(-1)
			bestA := 0
			for a := 0; a < m.numActions; a++ {
				v := m.reward[s][a]
				for _, o := range m.trans[s][a] {
					v += o.Prob * h[o.Next]
				}
				if v > best+1e-15 {
					best = v
					bestA = a
				}
			}
			th[s] = best
			policy[s] = bestA
		}
		// Span of the Bellman increment T(h) − h brackets the gain.
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := 0; s < m.numStates; s++ {
			d := th[s] - h[s]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if hi-lo < tol {
			gain := (hi + lo) / 2
			bias := make([]float64, m.numStates)
			ref := h[0]
			for s := 0; s < m.numStates; s++ {
				bias[s] = h[s] - ref
			}
			return &Solution{Gain: gain, Bias: bias, Policy: policy}, nil
		}
		// Damped update, renormalized against state 0 to keep h bounded.
		ref := (1-tau)*h[0] + tau*th[0]
		for s := 0; s < m.numStates; s++ {
			h[s] = (1-tau)*h[s] + tau*th[s] - ref
		}
	}
	return nil, ErrNoConverge
}

// EvaluatePolicy returns the long-run average reward of a stationary
// deterministic policy by computing the stationary distribution of the
// induced chain (unichain assumption).
func (m *MDP) EvaluatePolicy(policy []int) (float64, error) {
	if err := m.checkComplete(); err != nil {
		return 0, err
	}
	if len(policy) != m.numStates {
		return 0, fmt.Errorf("mdp: policy length %d != %d states", len(policy), m.numStates)
	}
	p := numeric.NewMatrix(m.numStates, m.numStates)
	for s, a := range policy {
		if a < 0 || a >= m.numActions {
			return 0, fmt.Errorf("mdp: policy action %d out of range at state %d", a, s)
		}
		for _, o := range m.trans[s][a] {
			p.Set(s, o.Next, p.At(s, o.Next)+o.Prob)
		}
	}
	y, err := numeric.StationaryDistribution(p)
	if err != nil {
		return 0, fmt.Errorf("evaluating policy: %w", err)
	}
	var gain numeric.KahanSum
	for s, a := range policy {
		gain.Add(y[s] * m.reward[s][a])
	}
	return gain.Value(), nil
}

// SolveLP solves the average-reward problem as the classic occupancy-
// measure linear program:
//
//	maximize   Σ_{s,a} r(s,a)·x(s,a)
//	subject to Σ_a x(j,a) = Σ_{s,a} p(j|s,a)·x(s,a)  for all j
//	           Σ_{s,a} x(s,a) = 1,  x >= 0.
//
// It provides an independent check of RelativeValueIteration.
func (m *MDP) SolveLP() (float64, error) {
	if err := m.checkComplete(); err != nil {
		return 0, err
	}
	n := m.numStates * m.numActions
	idx := func(s, a int) int { return s*m.numActions + a }

	lp := numeric.NewLP(n)
	obj := make([]float64, n)
	for s := 0; s < m.numStates; s++ {
		for a := 0; a < m.numActions; a++ {
			obj[idx(s, a)] = m.reward[s][a]
		}
	}
	lp.SetObjective(obj, true)

	// Balance constraints. One is redundant with normalization; keeping
	// all of them is harmless for the simplex.
	for j := 0; j < m.numStates; j++ {
		coef := make([]float64, n)
		for a := 0; a < m.numActions; a++ {
			coef[idx(j, a)] += 1
		}
		for s := 0; s < m.numStates; s++ {
			for a := 0; a < m.numActions; a++ {
				for _, o := range m.trans[s][a] {
					if o.Next == j {
						coef[idx(s, a)] -= o.Prob
					}
				}
			}
		}
		lp.AddConstraint(coef, numeric.Equal, 0)
	}
	norm := make([]float64, n)
	for i := range norm {
		norm[i] = 1
	}
	lp.AddConstraint(norm, numeric.Equal, 1)

	sol, err := lp.Solve()
	if err != nil {
		return 0, fmt.Errorf("average-reward LP: %w", err)
	}
	return sol.Objective, nil
}
