package mdp

import (
	"fmt"
	"strconv"
	"strings"

	"eventcap/internal/numeric"
)

// POMDP is the exact finite-horizon version of the paper's partial-
// information problem (Section IV-B1), small enough to solve by
// enumerating reachable beliefs. The event process is a renewal process
// with a finite inter-arrival PMF whose support the belief state spans;
// the battery is integer-valued with a deterministic per-slot recharge so
// the model stays exactly solvable.
//
// Its purpose is twofold: to certify the clustering heuristic's
// near-optimality on small instances, and to measure the information-state
// growth that makes the exact approach intractable (the paper's
// "curse of dimensionality" claim).
type POMDP struct {
	alpha  []float64 // alpha[j-1] = P(X = j); must sum to 1
	hazard []float64 // hazard[j-1] = β_j, with β_L = 1 by construction

	delta1, delta2 int // activation / capture energy
	capacity       int // battery size K
	recharge       int // deterministic energy per slot

	horizon int
}

// NewPOMDP validates and builds the model. The PMF must sum to 1 within
// 1e-9 (full support — use dist.Tabulate with a tiny tail). delta1,
// delta2, capacity, recharge are in integer energy units; horizon is the
// number of slots to plan over.
func NewPOMDP(alpha []float64, delta1, delta2, capacity, recharge, horizon int) (*POMDP, error) {
	if len(alpha) == 0 {
		return nil, fmt.Errorf("mdp: POMDP needs a nonempty PMF")
	}
	var sum numeric.KahanSum
	for j, a := range alpha {
		if a < 0 {
			return nil, fmt.Errorf("mdp: negative PMF %g at slot %d", a, j+1)
		}
		sum.Add(a)
	}
	if s := sum.Value(); s < 1-1e-9 || s > 1+1e-9 {
		return nil, fmt.Errorf("mdp: POMDP PMF sums to %g, want 1", s)
	}
	if delta1 < 0 || delta2 < 0 || capacity < 1 || recharge < 0 || horizon < 1 {
		return nil, fmt.Errorf("mdp: invalid POMDP parameters (δ1=%d δ2=%d K=%d g=%d H=%d)",
			delta1, delta2, capacity, recharge, horizon)
	}
	p := &POMDP{
		alpha:    append([]float64(nil), alpha...),
		hazard:   make([]float64, len(alpha)),
		delta1:   delta1,
		delta2:   delta2,
		capacity: capacity,
		recharge: recharge,
		horizon:  horizon,
	}
	surv := 1.0
	for j := range alpha {
		if surv <= 1e-15 {
			p.hazard[j] = 1
			continue
		}
		h := alpha[j] / surv
		if h > 1 {
			h = 1
		}
		p.hazard[j] = h
		surv -= alpha[j]
	}
	p.hazard[len(alpha)-1] = 1 // the final support slot is certain
	return p, nil
}

// belief is a distribution over the hidden age (1..L): belief[j-1] is the
// probability the last true event was j slots ago.
type belief []float64

func (p *POMDP) initialBelief() belief {
	b := make(belief, len(p.alpha))
	b[0] = 1
	return b
}

// eventProb returns P(event occurs this slot | belief).
func (p *POMDP) eventProb(b belief) float64 {
	var sum numeric.KahanSum
	for j, w := range b {
		if w != 0 {
			sum.Add(w * p.hazard[j])
		}
	}
	v := sum.Value()
	if v > 1 {
		v = 1
	}
	return v
}

// predictMissed advances the belief one slot assuming no observation
// (inactive sensor): an unseen event resets the age to 1.
func (p *POMDP) predictMissed(b belief) belief {
	n := len(b)
	out := make(belief, n)
	var missed numeric.KahanSum
	for j := 0; j < n; j++ {
		w := b[j]
		if w == 0 {
			continue
		}
		h := p.hazard[j]
		missed.Add(w * h)
		stay := w * (1 - h)
		if stay > 0 {
			nj := j + 1
			if nj >= n {
				nj = n - 1 // absorbing; β there is 1 so mass can't sit
			}
			out[nj] += stay
		}
	}
	out[0] += missed.Value()
	return out
}

// conditionNoEvent advances the belief one slot given the sensor was
// active and saw nothing (so no event occurred).
func (p *POMDP) conditionNoEvent(b belief) belief {
	n := len(b)
	out := make(belief, n)
	var norm numeric.KahanSum
	for j := 0; j < n; j++ {
		w := b[j]
		if w == 0 {
			continue
		}
		stay := w * (1 - p.hazard[j])
		if stay > 0 {
			nj := j + 1
			if nj >= n {
				nj = n - 1
			}
			out[nj] += stay
			norm.Add(stay)
		}
	}
	t := norm.Value()
	if t <= 0 {
		// Impossible observation; keep a defensive uniform-at-max belief.
		out[n-1] = 1
		return out
	}
	for j := range out {
		out[j] /= t
	}
	return out
}

func beliefKey(b belief) string {
	var sb strings.Builder
	sb.Grow(len(b) * 10)
	for _, v := range b {
		// 9 significant digits: collapses float noise, keeps distinct
		// information states distinct.
		sb.WriteString(strconv.FormatFloat(v, 'e', 8, 64))
		sb.WriteByte(',')
	}
	return sb.String()
}

// Result reports an exact finite-horizon solve.
type Result struct {
	// Value is the expected number of captures over the horizon starting
	// from a fresh capture (belief = age 1) and a full battery.
	Value float64
	// DistinctBeliefs is the number of distinct belief states memoized
	// across the solve — the size of the information-state space actually
	// reached.
	DistinctBeliefs int
	// MemoEntries is the total number of (slot, belief, battery) DP
	// nodes, the true computational cost.
	MemoEntries int
}

type memoKey struct {
	t, battery int
	belief     string
}

// SolveExact computes the optimal expected captures over the horizon by
// belief-state dynamic programming with memoization. Complexity grows with
// the number of reachable beliefs, which is exponential in the horizon in
// general — Result reports the counts.
func (p *POMDP) SolveExact() *Result {
	memo := make(map[memoKey]float64)
	beliefs := make(map[string]struct{})

	var solve func(t, battery int, b belief) float64
	solve = func(t, battery int, b belief) float64 {
		if t >= p.horizon {
			return 0
		}
		// Recharge completes at the beginning of the slot (paper Fig. 1).
		battery += p.recharge
		if battery > p.capacity {
			battery = p.capacity
		}
		key := memoKey{t: t, battery: battery, belief: beliefKey(b)}
		if v, ok := memo[key]; ok {
			return v
		}
		beliefs[key.belief] = struct{}{}

		// Inactive.
		best := solve(t+1, battery, p.predictMissed(b))
		// Active requires δ1+δ2 on hand (paper Section III-A).
		if battery >= p.delta1+p.delta2 {
			h := p.eventProb(b)
			v := h * (1 + solve(t+1, battery-p.delta1-p.delta2, p.initialBelief()))
			if h < 1 {
				v += (1 - h) * solve(t+1, battery-p.delta1, p.conditionNoEvent(b))
			}
			if v > best {
				best = v
			}
		}
		memo[key] = best
		return best
	}

	value := solve(0, p.capacity-p.recharge, p.initialBelief())
	return &Result{Value: value, DistinctBeliefs: len(beliefs), MemoEntries: len(memo)}
}

// EvaluateVector computes the expected captures of a fixed activation
// vector under the same finite-horizon dynamics: the sensor intends to
// activate in state f (slots since last capture, 1-based) iff vec says so
// and the battery allows. vec[f-1] is consulted; beyond the vector's
// length, tail applies (the clustering policy's aggressive region).
func (p *POMDP) EvaluateVector(vec []bool, tail bool) *Result {
	memo := make(map[string]float64)
	beliefs := make(map[string]struct{})

	want := func(f int) bool {
		if f-1 < len(vec) {
			return vec[f-1]
		}
		return tail
	}

	var eval func(t, battery, f int, b belief) float64
	eval = func(t, battery, f int, b belief) float64 {
		if t >= p.horizon {
			return 0
		}
		battery += p.recharge
		if battery > p.capacity {
			battery = p.capacity
		}
		key := beliefKey(b) + "|" + strconv.Itoa(t) + "," + strconv.Itoa(battery) + "," + strconv.Itoa(f)
		if v, ok := memo[key]; ok {
			return v
		}
		beliefs[beliefKey(b)] = struct{}{}

		var v float64
		if want(f) && battery >= p.delta1+p.delta2 {
			h := p.eventProb(b)
			v = h * (1 + eval(t+1, battery-p.delta1-p.delta2, 1, p.initialBelief()))
			if h < 1 {
				v += (1 - h) * eval(t+1, battery-p.delta1, f+1, p.conditionNoEvent(b))
			}
		} else {
			v = eval(t+1, battery, f+1, p.predictMissed(b))
		}
		memo[key] = v
		return v
	}

	value := eval(0, p.capacity-p.recharge, 1, p.initialBelief())
	return &Result{Value: value, DistinctBeliefs: len(beliefs), MemoEntries: len(memo)}
}

// InformationStateGrowth returns, for each horizon 1..maxHorizon, the
// number of distinct reachable beliefs. It quantifies the paper's claim
// that the information-state dimension grows exponentially with time
// (Section IV-B1: 2^k sequences for k unobserved slots).
func (p *POMDP) InformationStateGrowth(maxHorizon int) []int {
	counts := make([]int, 0, maxHorizon)
	frontier := map[string]belief{beliefKey(p.initialBelief()): p.initialBelief()}
	seen := make(map[string]struct{}, 64)
	for k := range frontier {
		seen[k] = struct{}{}
	}
	total := len(seen)
	for h := 1; h <= maxHorizon; h++ {
		next := make(map[string]belief, 2*len(frontier))
		for _, b := range frontier {
			// All possible successors under any action/observation.
			for _, nb := range []belief{
				p.predictMissed(b),
				p.conditionNoEvent(b),
				p.initialBelief(),
			} {
				k := beliefKey(nb)
				if _, ok := seen[k]; !ok {
					seen[k] = struct{}{}
					next[k] = nb
					total++
				}
			}
		}
		counts = append(counts, total)
		frontier = next
		if len(frontier) == 0 {
			// Belief space exhausted; remaining horizons keep the total.
			for len(counts) < maxHorizon {
				counts = append(counts, total)
			}
			break
		}
	}
	return counts
}
