package mdp

import (
	"fmt"

	"eventcap/internal/numeric"
)

// PolicyIteration solves the average-reward problem by Howard's policy
// iteration: evaluate the current policy's gain and bias exactly (linear
// solve), then improve greedily; repeat until stable. For unichain MDPs
// it terminates in finitely many steps and provides a third independent
// solver alongside RelativeValueIteration and SolveLP.
func (m *MDP) PolicyIteration(maxIter int) (*Solution, error) {
	if err := m.checkComplete(); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	n := m.numStates
	policy := make([]int, n)

	for iter := 0; iter < maxIter; iter++ {
		gain, bias, err := m.evaluateGainBias(policy)
		if err != nil {
			return nil, fmt.Errorf("policy evaluation at iteration %d: %w", iter, err)
		}
		// Improvement step.
		changed := false
		for s := 0; s < n; s++ {
			bestA := policy[s]
			bestV := m.actionValue(s, policy[s], bias)
			for a := 0; a < m.numActions; a++ {
				if a == policy[s] {
					continue
				}
				if v := m.actionValue(s, a, bias); v > bestV+1e-10 {
					bestV, bestA = v, a
					changed = true
				}
			}
			policy[s] = bestA
		}
		if !changed {
			return &Solution{Gain: gain, Bias: bias, Policy: policy}, nil
		}
	}
	return nil, fmt.Errorf("mdp: policy iteration did not converge in %d iterations", maxIter)
}

// actionValue returns r(s,a) + Σ p(s'|s,a)·bias(s').
func (m *MDP) actionValue(s, a int, bias []float64) float64 {
	v := m.reward[s][a]
	for _, o := range m.trans[s][a] {
		v += o.Prob * bias[o.Next]
	}
	return v
}

// evaluateGainBias solves the policy-evaluation equations
// g + h(s) = r(s, π(s)) + Σ p(s'|s, π(s))·h(s'), with h(0) = 0, for the
// unichain case: n+1 unknowns (g and h), n equations plus the
// normalization.
func (m *MDP) evaluateGainBias(policy []int) (float64, []float64, error) {
	n := m.numStates
	// Unknown vector x = (g, h_0, ..., h_{n-1}); equation for each state:
	// g + h(s) − Σ p h(s') = r(s). Plus h_0 = 0.
	a := numeric.NewMatrix(n+1, n+1)
	b := make([]float64, n+1)
	for s := 0; s < n; s++ {
		a.Set(s, 0, 1)
		a.Set(s, 1+s, a.At(s, 1+s)+1)
		for _, o := range m.trans[s][policy[s]] {
			a.Set(s, 1+o.Next, a.At(s, 1+o.Next)-o.Prob)
		}
		b[s] = m.reward[s][policy[s]]
	}
	a.Set(n, 1, 1) // h_0 = 0
	x, err := numeric.SolveLinear(a, b)
	if err != nil {
		return 0, nil, err
	}
	return x[0], x[1:], nil
}
