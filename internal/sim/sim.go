// Package sim is the slotted discrete-event simulator that measures the
// practical QoM U_K(π) of activation policies: real batteries of capacity
// K, stochastic recharge, and full- or partial-information observation —
// exactly the setting of the paper's Section VI, including the
// multi-sensor coordination schemes of Section V.
//
// The per-slot sequence follows the paper's Figure 1: recharge completes,
// the sensor(s) decide, then the event (if any) occurs.
package sim

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/obs"
	"eventcap/internal/parallel"
	"eventcap/internal/rng"
	"eventcap/internal/stats"
	"eventcap/internal/trace"
)

// Info selects the observation model.
type Info int

// Observation models (Section III-B).
const (
	// FullInfo: every sensor learns after the fact whether an event
	// occurred in each slot, active or not.
	FullInfo Info = iota + 1
	// PartialInfo: a sensor learns about an event only by being active
	// in its slot (coordinated modes broadcast captures).
	PartialInfo
)

// Mode selects how multiple sensors share the work.
type Mode int

// Coordination modes (Section V and VI-B).
const (
	// ModeAll runs every sensor in every slot, independently (the
	// uncoordinated baseline of Section V's opening).
	ModeAll Mode = iota + 1
	// ModeRoundRobin puts sensor s in charge of slots t = kN + s; all
	// others stay inactive (M-FI / M-PI and the multi-sensor aggressive
	// baseline).
	ModeRoundRobin
	// ModeBlocks rotates charge in blocks of BlockLen consecutive slots
	// (the multi-sensor periodic baseline: each sensor runs θ1-of-θ2
	// within its own block).
	ModeBlocks
)

// SlotState is what a policy may observe when deciding.
type SlotState struct {
	// Slot is the 1-based absolute slot number.
	Slot int64
	// SinceEvent is the full-information state h_i: slots since the last
	// event occurrence. It is -1 under PartialInfo.
	SinceEvent int
	// SinceCapture is the partial-information state f_i: slots since the
	// last captured event (shared via broadcast in coordinated modes,
	// per-sensor otherwise).
	SinceCapture int
	// Battery is the deciding sensor's energy level after recharge.
	Battery float64
}

// Outcome reports a slot's result back to the policy that decided it.
type Outcome struct {
	// Active reports whether the sensor actually activated.
	Active bool
	// EventKnown reports whether the event indicator below is
	// trustworthy (always under FullInfo, only when active otherwise).
	EventKnown bool
	// Event reports the event occurrence (meaningful iff EventKnown).
	Event bool
	// Captured reports Active && Event.
	Captured bool
}

// Policy is a runtime activation policy. Implementations may be stateful
// (EBCW's last-observation memory); each sensor gets its own instance.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// ActivationProb returns the probability of choosing the active
	// action given the observable state. The engine enforces the energy
	// gate (B >= δ1+δ2) on top of it.
	ActivationProb(s SlotState) float64
	// Observe reports the slot's outcome (only for slots this sensor was
	// in charge of).
	Observe(o Outcome)
	// Reset restores initial state for a fresh run.
	Reset()
}

// TraceRecord is one slot of an optional execution trace.
type TraceRecord struct {
	Slot         int64
	InCharge     int // 0-based sensor index; -1 when all sensors decide
	Event        bool
	SinceEvent   int
	SinceCapture int
	Actions      []bool // per-sensor activation this slot
	Captured     bool
}

// SensorStats accumulates per-sensor accounting.
type SensorStats struct {
	Activations    int64
	Captures       int64
	Denied         int64 // activation decisions blocked by the energy gate
	EnergyConsumed float64
	OverflowLost   float64
	FinalBattery   float64
}

// TimelinePoint is a periodic snapshot of the run's progress.
type TimelinePoint struct {
	Slot int64
	// QoM is the running capture probability through this slot.
	QoM float64
	// WindowQoM is the capture probability within the last sampling
	// window only (for stationarity checks and batch-means CIs).
	WindowQoM float64
	// Battery is sensor 0's level at the snapshot.
	Battery float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Slots    int64
	Events   int64
	Captures int64 // slots where at least one sensor captured
	// QoM is the capture probability U_K(π) of Eq. (1).
	QoM     float64
	Sensors []SensorStats
	// Timeline holds periodic snapshots when Config.SampleEvery > 0.
	Timeline []TimelinePoint
	// Engine records the engine that actually executed the run (the
	// reference engine or the compiled kernel) — under EngineAuto the
	// caller cannot know otherwise.
	Engine Engine
	// Metrics holds the run's observability counters when
	// Config.Metrics is set, nil otherwise.
	Metrics *Metrics
	// Stats holds the streaming-statistics report (QoM point estimate,
	// CI, battery summary — DESIGN.md §16) when Config.Stats or
	// Config.StatsSink is set, nil otherwise.
	Stats *stats.Report
}

// LoadImbalance returns (max - min)/mean of per-sensor activation counts:
// 0 is perfect balance (Section V-A's load-balancing concern). It returns
// 0 when no sensor activated.
func (r *Result) LoadImbalance() float64 {
	if len(r.Sensors) == 0 {
		return 0
	}
	minA, maxA, total := int64(math.MaxInt64), int64(0), int64(0)
	for _, s := range r.Sensors {
		if s.Activations < minA {
			minA = s.Activations
		}
		if s.Activations > maxA {
			maxA = s.Activations
		}
		total += s.Activations
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.Sensors))
	return float64(maxA-minA) / mean
}

// Config describes a simulation run. NewRecharge and NewPolicy are
// factories so each sensor owns independent (possibly stateful)
// instances.
type Config struct {
	Dist   dist.Interarrival
	Params core.Params

	// NewRecharge builds the recharge process for one sensor.
	NewRecharge func() energy.Recharge
	// NewPolicy builds the policy for sensor index s (0-based).
	NewPolicy func(s int) Policy

	// N is the number of sensors (default 1).
	N int
	// Mode is the coordination mode (default ModeAll).
	Mode Mode
	// BlockLen is the block size for ModeBlocks.
	BlockLen int

	// BatteryCap is K. InitialBattery defaults to K/2 when zero (the
	// paper's setting).
	BatteryCap     float64
	InitialBattery float64

	// Slots is the duration T.
	Slots int64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// Info is the observation model (default FullInfo).
	Info Info

	// Workers bounds the worker pool of the independent-sensor fast path
	// (ModeAll + PartialInfo + N > 1, no Trace, no SampleEvery), where
	// each sensor owns its own decision stream and evolves in isolation.
	// 0 means one worker per CPU; 1 forces sequential execution. Results
	// are identical for every value — the per-sensor decomposition, not
	// the worker count, fixes the random streams.
	Workers int

	// Trace, if set, receives every slot's record. Use only with small
	// Slots.
	Trace func(TraceRecord)

	// FailAt, if non-nil, maps a 0-based sensor index to the slot at
	// which that sensor dies permanently (stops deciding, recharging and
	// observing) — fault injection for resilience experiments. Failed
	// sensors keep their slot assignments in coordinated modes, which is
	// exactly the fragility being measured.
	FailAt map[int]int64

	// SampleEvery, when positive, records a TimelinePoint every that
	// many slots (running QoM, per-window QoM, battery level).
	SampleEvery int64

	// Metrics, when true, collects the per-run observability counters of
	// the Metrics struct into Result.Metrics and folds them into the
	// process-wide obs totals. Collection is RNG-neutral: it never
	// consumes a random draw, so outputs are byte-identical with it on
	// or off (asserted by TestMetricsDoNotChangeResults).
	Metrics bool

	// Tracer, when non-nil, receives a slot-level execution trace on
	// every engine: per-slot decision records, and on the compiled
	// kernel one compressed span per fast-forwarded sleep run. Tracing
	// is RNG-neutral like Metrics — it never consumes a random draw, so
	// results are byte-identical with it attached or not (asserted by
	// TestTracingDoesNotChangeResults). A full-trace writer serializes
	// the independent-sensor path onto one worker (results are
	// worker-invariant, so outputs do not change); a flight recorder
	// alone leaves the worker pool untouched. Unlike the legacy Trace
	// callback, a Tracer keeps kernel-eligible configurations on the
	// kernel.
	Tracer *trace.Tracer

	// Engine selects the simulation engine. The default, EngineAuto, runs
	// the compiled slot-skipping kernel whenever the configuration is
	// eligible (single sensor, compilable stateless policy,
	// fast-forwardable recharge, no trace/timeline/fault injection) and
	// the reference engine otherwise. See kernel.go for the equivalence
	// contract.
	Engine Engine

	// Batch, when > 1, simulates that many statistically independent
	// replications of this (single-sensor) configuration in one call:
	// replication r reproduces the run this Config would produce at
	// Seed + r, and the Result aggregates all replications (summed
	// Events/Captures, pooled QoM, one SensorStats entry per
	// replication). Under EngineAuto an eligible configuration runs on
	// the mega-batch engine (see batch.go); otherwise — or under a forced
	// per-run engine — the replications run individually and are
	// aggregated. Batch <= 1 leaves the single-run semantics untouched.
	Batch int

	// BatchChunk overrides the batch engine's replications-per-chunk
	// sharding (0 = default). Chunks are the unit of worker parallelism
	// and of state reuse; results are byte-identical for every value —
	// replication streams derive from Seed + r alone, never from the
	// sharding.
	BatchChunk int

	// Span, when non-nil, is the parent span this run records its phase
	// timings under: a "compile" child around the engine probe, then one
	// "exec.<engine>" child around execution (with per-chunk forks and
	// an aggregation child on the batch engine). Spans wrap phases,
	// never the slot loop, and are RNG-neutral like Metrics and Tracer —
	// results are byte-identical with or without one attached (asserted
	// by TestSpansDoNotChangeResults).
	Span *obs.Span

	// Progress, when non-nil, receives slot-unit work completions
	// (obs.Progress.FinishWork) at engine phase boundaries — per batch
	// chunk, per fleet sensor, per run — so a live progress line moves
	// inside long runs. RNG-neutral; reporting granularity never touches
	// a random stream.
	Progress *obs.Progress

	// Stats, when true, attaches the streaming statistics probe
	// (DESIGN.md §16): online QoM batch means with a confidence
	// interval, per-replication samples on the batch engines, and a
	// battery-occupancy summary, into Result.Stats. RNG-neutral under
	// the same contract as Metrics — results are byte-identical with
	// the probe on or off (asserted by TestStatsDoNotChangeResults).
	Stats bool

	// StatsSink, when non-nil, receives interim streaming reports
	// during the run (every statsPublishStride QoM observations) and
	// the final one; it implies the probe even when Stats is false.
	// Called synchronously from the engine's coordinating goroutine.
	StatsSink func(stats.Report)
}

func (c *Config) validate() error {
	if c.Dist == nil {
		return fmt.Errorf("sim: Config.Dist is required")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.NewRecharge == nil {
		return fmt.Errorf("sim: Config.NewRecharge is required")
	}
	if c.NewPolicy == nil {
		return fmt.Errorf("sim: Config.NewPolicy is required")
	}
	if c.N == 0 {
		c.N = 1
	}
	if c.N < 1 {
		return fmt.Errorf("sim: N must be >= 1, got %d", c.N)
	}
	if c.Mode == 0 {
		c.Mode = ModeAll
	}
	if c.Mode == ModeBlocks && c.BlockLen < 1 {
		return fmt.Errorf("sim: ModeBlocks requires BlockLen >= 1")
	}
	if !(c.BatteryCap > 0) {
		return fmt.Errorf("sim: BatteryCap must be positive, got %g", c.BatteryCap)
	}
	if c.InitialBattery == 0 {
		c.InitialBattery = c.BatteryCap / 2
	}
	if c.Slots < 1 {
		return fmt.Errorf("sim: Slots must be >= 1, got %d", c.Slots)
	}
	if c.Info == 0 {
		c.Info = FullInfo
	}
	if c.Batch < 0 {
		return fmt.Errorf("sim: Batch must be >= 0, got %d", c.Batch)
	}
	if c.BatchChunk < 0 {
		return fmt.Errorf("sim: BatchChunk must be >= 0, got %d", c.BatchChunk)
	}
	return nil
}

// inCharge returns the 0-based sensor responsible for slot t, or -1 when
// all sensors decide (ModeAll).
func (c *Config) inCharge(t int64) int {
	switch c.Mode {
	case ModeRoundRobin:
		return int((t - 1) % int64(c.N))
	case ModeBlocks:
		block := (t - 1) / int64(c.BlockLen)
		return int(block % int64(c.N))
	default:
		return -1
	}
}

// independentSensors reports whether every sensor's trajectory is fully
// decoupled from the others': under ModeAll + PartialInfo each sensor
// sees only its own capture history, so once decision randomness is
// per-sensor the simulations can run in any order (or concurrently).
// Trace and SampleEvery need the interleaved per-slot view, so they stay
// on the sequential engine.
func (c *Config) independentSensors() bool {
	return c.Mode == ModeAll && c.Info == PartialInfo && c.N > 1 &&
		c.Trace == nil && c.SampleEvery == 0
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Each engine probe below runs under a "compile" child span; a probe
	// that declines counts the structural reason on the span, mirroring
	// the sim.engine.fallback.* counters.
	if cfg.Engine == EngineBatch {
		csp := cfg.Span.Child("compile")
		plan, fb := compileBatch(&cfg, csp)
		csp.End()
		if plan == nil {
			return nil, fmt.Errorf("sim: batch engine unavailable: %s", fb.reason)
		}
		return runBatch(cfg, plan)
	}
	if cfg.Batch > 1 {
		if cfg.Engine == EngineAuto {
			csp := cfg.Span.Child("compile")
			plan, fb := compileBatch(&cfg, csp)
			if plan != nil {
				csp.End()
				return runBatch(cfg, plan)
			}
			// The per-replication fallback runs may record further kernel
			// declines below; this one attributes the batch decline itself.
			csp.Count("fallback."+fb.slug, 1)
			csp.End()
			fb.record()
		}
		return runBatchFallback(cfg)
	}
	switch cfg.Engine {
	case EngineKernel:
		csp := cfg.Span.Child("compile")
		plan, fb := compileKernel(&cfg)
		if plan != nil {
			csp.End()
			return runKernel(cfg, plan)
		}
		if cfg.independentSensors() {
			ip, ifb := compileIndependent(&cfg)
			csp.End()
			if ip != nil {
				return runIndependent(cfg, ip)
			}
			return nil, fmt.Errorf("sim: kernel engine unavailable: %s", ifb.reason)
		}
		csp.End()
		return nil, fmt.Errorf("sim: kernel engine unavailable: %s", fb.reason)
	case EngineReference:
		// fall through to the interpreted paths below
	default: // EngineAuto
		csp := cfg.Span.Child("compile")
		plan, fb := compileKernel(&cfg)
		if plan != nil {
			csp.End()
			return runKernel(cfg, plan)
		}
		if cfg.independentSensors() {
			// Decoupled sensors get a second chance on the per-sensor
			// compiled loop before the interpreted one; record the more
			// specific of the two decline reasons.
			ip, ifb := compileIndependent(&cfg)
			if ip != nil {
				csp.End()
				return runIndependent(cfg, ip)
			}
			csp.Count("fallback."+ifb.slug, 1)
			csp.End()
			ifb.record()
		} else {
			csp.Count("fallback."+fb.slug, 1)
			csp.End()
			fb.record()
		}
	}
	if cfg.independentSensors() {
		return runIndependent(cfg, nil)
	}
	ex := cfg.Span.Child("exec.reference")
	defer ex.End()
	ex.Count("slots", cfg.Slots)
	ex.Count("sensors", int64(cfg.N))
	defer cfg.Progress.FinishWork(cfg.Slots * int64(cfg.N))
	root := rng.New(cfg.Seed, 0x5eed) // seedflow:ok run-root: the reference engine's root stream, derived from Config.Seed
	eventSrc := root.Split(1)
	decisionSrc := root.Split(2)

	batteries := make([]*energy.Battery, cfg.N)
	recharges := make([]energy.Recharge, cfg.N)
	rechargeSrcs := make([]*rng.Source, cfg.N)
	policies := make([]Policy, cfg.N)
	for s := 0; s < cfg.N; s++ {
		b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
		if err != nil {
			return nil, err
		}
		batteries[s] = b
		recharges[s] = cfg.NewRecharge()
		rechargeSrcs[s] = root.Split(uint64(100 + s))
		policies[s] = cfg.NewPolicy(s)
		policies[s].Reset()
	}

	cost := cfg.Params.ActivationCost()
	res := &Result{Slots: cfg.Slots, Sensors: make([]SensorStats, cfg.N), Engine: EngineReference}
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	sp := newStatsProbe(&cfg)
	// Tracing state: trFull demands a record for every decided slot;
	// otherwise only decision-relevant slots (nonzero activation
	// probability or an event) reach the flight recorder, which keeps
	// the per-slot cost of an armed recorder near zero on sparse
	// policies. rechargeDraw keeps each sensor's last delivered energy
	// for the records.
	tr := cfg.Tracer
	trFull := tr.Full()
	// The hot loop records through the cached sinks rather than
	// tr.Slot's fan-out: one Rec copy instead of two per recorded slot
	// (the flight recorder's ≤2% budget is priced per record).
	var trWriter *trace.Writer
	var trFlight *trace.FlightRecorder
	var rechargeDraw []float64
	var slotRecs int
	if tr != nil {
		trWriter, trFlight = tr.Writer(), tr.Recorder()
		rechargeDraw = make([]float64, cfg.N)
		tr.RunStart(trace.RunInfo{
			Engine:     trace.EngineReference,
			Sensors:    cfg.N,
			Seed:       cfg.Seed,
			Slots:      cfg.Slots,
			BatteryCap: cfg.BatteryCap,
			Cost:       cost,
			Policy:     policies[0].Name(),
			Dist:       cfg.Dist.Name(),
			Recharge:   recharges[0].Name(),
		})
	}
	// Per-slot metric accumulators stay in locals (registers) inside the
	// loop and flush into m once at the end, keeping the instrumented
	// loop within the overhead budget of DESIGN.md §9. costGate mirrors
	// energy.Battery.CanConsume.
	invCap := 1 / cfg.BatteryCap
	binScale := batteryBins * invCap
	costGate := cost - 1e-12
	var obsSlots, outage int64
	var fracSum float64

	// The paper assumes an event (and, for PI, a capture) at slot 0.
	lastEvent := int64(0)
	sharedLastCapture := int64(0)
	ownLastCapture := make([]int64, cfg.N)
	nextEvent := int64(cfg.Dist.Sample(eventSrc))

	// Lower the fault-injection map to a per-sensor slot array so the hot
	// loop never ranges over a map; hasFail skips even the array scan for
	// the common fault-free run.
	failed := make([]bool, cfg.N)
	failSlot := make([]int64, cfg.N)
	hasFail := false
	for s := range failSlot {
		failSlot[s] = math.MaxInt64
	}
	// nondeterm:ok order-independent lowering: each key writes its own slot
	for s, slot := range cfg.FailAt {
		if s >= 0 && s < cfg.N {
			failSlot[s] = slot
			hasFail = true
		}
	}

	actions := make([]bool, cfg.N)
	var windowEvents, windowCaptures int64

	// decide is hoisted out of the slot loop (a closure literal inside it
	// would allocate every iteration); the per-slot variables it reads are
	// declared alongside it and mutated by the loop.
	var (
		t           int64
		event       bool
		captured    bool
		eventDenied bool // an activation attempt hit the energy gate in an event slot
	)
	decide := func(s int) {
		if failed[s] {
			return
		}
		st := SlotState{
			Slot:         t,
			SinceEvent:   int(t - lastEvent),
			SinceCapture: int(t - sharedLastCapture),
			Battery:      batteries[s].Level(),
		}
		if cfg.Info == PartialInfo {
			st.SinceEvent = -1
		}
		if cfg.Mode == ModeAll && cfg.Info == PartialInfo {
			st.SinceCapture = int(t - ownLastCapture[s])
		}
		p := policies[s].ActivationProb(st)
		active := false
		// Trace flags are set inside the branches the decision already
		// takes — no separate per-record flag branching on the hot path.
		var flags uint8
		if event {
			flags = trace.FlagEvent
		}
		switch {
		case p <= 0 || !decisionSrc.Bernoulli(p):
			// Asleep: no draw consumed when p <= 0, one otherwise.
		case !batteries[s].CanConsume(cost):
			res.Sensors[s].Denied++
			flags |= trace.FlagDenied
			if event {
				eventDenied = true
			}
		default:
			stats := &res.Sensors[s]
			active = true
			actions[s] = true
			flags |= trace.FlagActive
			batteries[s].Consume(cfg.Params.Delta1)
			stats.Activations++
			if event {
				batteries[s].Consume(cfg.Params.Delta2)
				stats.Captures++
				captured = true
				flags |= trace.FlagCaptured
			}
		}
		policies[s].Observe(outcomeFor(cfg.Info, active, event, active && event))
		if tr != nil && (trFull || p > 0 || event) {
			if trWriter != nil {
				rec := trace.Rec{
					Slot:     t,
					Sensor:   int32(s),
					Engine:   trace.EngineReference,
					Flags:    flags,
					H:        int32(st.SinceEvent),
					F:        int32(st.SinceCapture),
					Prob:     p,
					Battery:  st.Battery,
					Recharge: rechargeDraw[s],
				}
				trWriter.Rec(rec)
				slotRecs++
				if trFlight != nil {
					trFlight.Record(&rec)
				}
			} else if trFlight != nil {
				// Flight-only (the leave-on mode): fields go straight
				// into the ring slot, no intermediate Rec.
				trFlight.RecordSlot(t, int32(s), trace.EngineReference, flags,
					int32(st.SinceEvent), int32(st.SinceCapture),
					p, st.Battery, rechargeDraw[s])
			}
		}
	}

	// The slot loop is blocked into batterySampleStride-long chunks so
	// the battery observation runs between chunks rather than on a
	// data-dependent branch inside the loop: a period-stride pattern
	// inside a body with dozens of branches is beyond any predictor's
	// history, and the resulting mispredictions cost far more than the
	// observation itself. With metrics and stats off there is a single
	// chunk and the loop is exactly the uninstrumented loop.
	chunkLen := cfg.Slots
	if m != nil || sp != nil {
		chunkLen = batterySampleStride
	}
	for t = 1; t <= cfg.Slots; {
		chunkEnd := t + chunkLen - 1
		if chunkEnd > cfg.Slots {
			chunkEnd = cfg.Slots
		}
		for ; t <= chunkEnd; t++ {
			if hasFail {
				for s := 0; s < cfg.N; s++ {
					if !failed[s] && t >= failSlot[s] {
						failed[s] = true
						if tr != nil {
							tr.Fault(s, t)
						}
					}
				}
			}
			// 1. Recharge completes at the beginning of the slot.
			for s := 0; s < cfg.N; s++ {
				if failed[s] {
					continue
				}
				amt := recharges[s].Next(rechargeSrcs[s])
				batteries[s].Recharge(amt)
				if tr != nil {
					rechargeDraw[s] = amt
				}
			}

			event = t == nextEvent
			charge := cfg.inCharge(t)
			captured = false
			eventDenied = false
			for s := 0; s < cfg.N; s++ {
				actions[s] = false
			}

			if charge >= 0 {
				decide(charge)
			} else {
				for s := 0; s < cfg.N; s++ {
					decide(s)
				}
			}

			if trFull {
				// An event slot in which no sensor decided (all failed,
				// or the in-charge sensor failed) still needs a record —
				// replay reconstructs the event count from the trace. The
				// marker only matters to the full trace (the flight
				// recorder drops Sensor = -1 records), so a flight-only
				// run pays none of this bookkeeping.
				if event && slotRecs == 0 {
					tr.Slot(trace.Rec{
						Slot:   t,
						Sensor: -1,
						Engine: trace.EngineReference,
						Flags:  trace.FlagEvent,
						H:      int32(t - lastEvent),
						F:      int32(t - sharedLastCapture),
					})
				}
				slotRecs = 0
			}
			if cfg.Trace != nil {
				// Record decision-time states (the paper's H_t / F_t).
				rec := TraceRecord{
					Slot:         t,
					InCharge:     charge,
					Event:        event,
					SinceEvent:   int(t - lastEvent),
					SinceCapture: int(t - sharedLastCapture),
					Actions:      append([]bool(nil), actions...),
					Captured:     captured,
				}
				cfg.Trace(rec)
			}
			if event {
				res.Events++
				lastEvent = t
				nextEvent = t + int64(cfg.Dist.Sample(eventSrc))
				if m != nil && !captured {
					if eventDenied {
						m.MissNoEnergy++
					} else {
						m.MissAsleep++
					}
				}
				if sp != nil {
					sp.ObserveEvent(captured)
				}
				if tr != nil && !captured && eventDenied {
					tr.OutageMiss(t)
				}
			}
			if captured {
				res.Captures++
				sharedLastCapture = t
				for s := 0; s < cfg.N; s++ {
					if actions[s] {
						ownLastCapture[s] = t
					}
				}
			}
			if cfg.SampleEvery > 0 && t%cfg.SampleEvery == 0 {
				point := TimelinePoint{Slot: t, Battery: batteries[0].Level()}
				if res.Events > 0 {
					point.QoM = float64(res.Captures) / float64(res.Events)
				}
				wEvents := res.Events - windowEvents
				wCaptures := res.Captures - windowCaptures
				if wEvents > 0 {
					point.WindowQoM = float64(wCaptures) / float64(wEvents)
				}
				windowEvents, windowCaptures = res.Events, res.Captures
				res.Timeline = append(res.Timeline, point)
			}
		}
		// Sample sensor 0's end-of-slot battery level once per full
		// chunk (chunkEnd is stride-aligned except possibly the last,
		// so ObservedSlots == Slots/batterySampleStride exactly).
		if (m != nil || sp != nil) && chunkEnd&(batterySampleStride-1) == 0 {
			lvl := batteries[0].Level()
			if m != nil {
				obsSlots++
				fracSum += lvl * invCap
				bin := int(lvl * binScale)
				if bin >= batteryBins {
					bin = batteryBins - 1
				}
				m.BatteryHist[bin]++
				if lvl < costGate {
					outage++
				}
			}
			if sp != nil {
				sp.ObserveBattery(lvl * invCap)
			}
		}
	}

	for s := 0; s < cfg.N; s++ {
		st := &res.Sensors[s]
		st.EnergyConsumed = batteries[s].Consumed()
		st.OverflowLost = batteries[s].OverflowLost()
		st.FinalBattery = batteries[s].Level()
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	if tr != nil {
		tr.RunEnd(trace.RunEnd{Events: res.Events, Captures: res.Captures})
	}
	recordEngine(res.Engine)
	if m != nil {
		m.ObservedSlots = obsSlots
		m.BatteryFracSum = fracSum
		m.EnergyOutageSlots = outage
		// An activation on an event slot always captures, so the wasted
		// (no-event) activations are exactly activations − captures per
		// sensor; deriving the count here keeps the branch out of the
		// hot activation path.
		for i := range res.Sensors {
			m.WastedActivations += res.Sensors[i].Activations - res.Sensors[i].Captures
		}
		m.publish(res)
	}
	sp.finish(res)
	return res, nil
}

// runIndependent simulates uncoordinated PartialInfo sensors with one
// pool job per sensor. The event trajectory is drawn once up front (all
// sensors watch the same PoI) and each sensor gets its own decision
// stream root.Split(200+s), so the run is deterministic for any worker
// count. Note the seed layout differs from the sequential engine's
// shared decision stream: this configuration's outputs are reproducible
// against themselves, not against a hypothetical shared-stream run.
//
// When plans is non-nil (compileIndependent succeeded) each sensor job
// runs the compiled per-sensor loop — table lookups plus O(1) sleep-run
// fast-forwards over its private capture clock — instead of interpreting
// the policy slot by slot. The two loops consume each sensor's streams
// identically (one recharge draw per live slot, one decision draw per
// positive-probability slot), so for deterministic recharge the compiled
// path is byte-identical to the interpreted one; under Bernoulli it is
// equal in law, the standard FastForwarder clause.
func runIndependent(cfg Config, plans []indepSensorPlan) (*Result, error) {
	ex := cfg.Span.Child("exec.independent")
	defer ex.End()
	ex.Count("slots", cfg.Slots)
	ex.Count("sensors", int64(cfg.N))
	if plans != nil {
		ex.Count("compiled", 1)
	}
	root := rng.New(cfg.Seed, 0x5eed) // seedflow:ok run-root: mirrors Run's stream layout exactly
	eventSrc := root.Split(1)
	_ = root.Split(2) // keep recharge streams aligned with the sequential layout
	rechargeSrcs := make([]*rng.Source, cfg.N)
	for s := 0; s < cfg.N; s++ {
		rechargeSrcs[s] = root.Split(uint64(100 + s))
	}
	decisionSrcs := make([]*rng.Source, cfg.N)
	for s := 0; s < cfg.N; s++ {
		decisionSrcs[s] = root.Split(uint64(200 + s))
	}

	// One shared event trajectory, drawn exactly as the sequential engine
	// draws it (an assumed event at slot 0 seeds the first gap).
	var eventSlots []int64
	for t := int64(cfg.Dist.Sample(eventSrc)); t <= cfg.Slots; t += int64(cfg.Dist.Sample(eventSrc)) {
		eventSlots = append(eventSlots, t)
	}

	cost := cfg.Params.ActivationCost()
	invCap := 1 / cfg.BatteryCap
	// The stats probe is shared with the sensor jobs, but only sensor
	// 0's job touches it (battery samples) and the event feed below
	// runs after the jobs join — single-threaded access throughout.
	probe := newStatsProbe(&cfg)

	// A full-trace writer is a single stream, so the sensor jobs run on
	// one worker, in index order — the per-sensor decomposition already
	// makes results identical for every worker count, so forcing
	// sequential execution changes only the trace file's record order.
	// A flight recorder alone is safe concurrently: each job writes
	// only its own sensor's ring.
	tr := cfg.Tracer
	trFull := tr.Full()
	var trWriter *trace.Writer
	var trFlight *trace.FlightRecorder
	workers := cfg.Workers
	if trFull {
		workers = 1
	}
	if tr != nil {
		trWriter, trFlight = tr.Writer(), tr.Recorder()
		tr.RunStart(trace.RunInfo{
			Engine:     trace.EngineIndependent,
			Sensors:    cfg.N,
			Seed:       cfg.Seed,
			Slots:      cfg.Slots,
			BatteryCap: cfg.BatteryCap,
			Cost:       cost,
			Policy:     cfg.NewPolicy(0).Name(),
			Dist:       cfg.Dist.Name(),
			Recharge:   cfg.NewRecharge().Name(),
		})
	}

	type sensorOut struct {
		stats    SensorStats
		captured []bool // indexed like eventSlots
		denied   []bool // energy-denied attempts per event (metrics/trace only)
		m        *Metrics
	}
	outs, err := parallel.MapInner(workers, cfg.N, func(s int) (sensorOut, error) {
		defer cfg.Progress.FinishWork(cfg.Slots)
		b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
		if err != nil {
			return sensorOut{}, err
		}
		rSrc, dSrc := rechargeSrcs[s], decisionSrcs[s]
		failSlot := int64(math.MaxInt64)
		if fs, ok := cfg.FailAt[s]; ok {
			failSlot = fs
		}
		out := sensorOut{captured: make([]bool, len(eventSlots))}
		if cfg.Metrics {
			out.m = &Metrics{}
		}
		if cfg.Metrics || tr != nil {
			out.denied = make([]bool, len(eventSlots))
		}
		m := out.m
		if plans != nil {
			// Compiled per-sensor fast path: the decision state is this
			// sensor's own capture clock (or slot phase), so the
			// single-sensor kernel's zero-run fast-forward applies
			// verbatim. A failed sensor truncates its own loop at
			// failSlot-1 — independent sensors share nothing, so the
			// truncation is exact, and fault injection stays eligible.
			sp := &plans[s]
			sp.policy.Reset()
			limit := cfg.Slots
			if failSlot-1 < limit {
				limit = failSlot - 1
			}
			bern, isBern := sp.recharge.(*energy.Bernoulli)
			var bq, bc float64
			if isBern {
				bq, bc = bern.Q(), bern.C()
			}
			// Battery occupancy on the compiled path follows the kernel
			// convention: sensor 0, every stride-th awake (non-skipped)
			// slot.
			sampleCountdown := int64(math.MaxInt64)
			if (m != nil || probe != nil) && s == 0 {
				sampleCountdown = batterySampleStride
			}
			lastCapture := int64(0)
			ei := 0
			t := int64(1)
			for t <= limit {
				var st int64
				if sp.state == StateSinceCapture {
					st = t - lastCapture
				} else {
					st = (t-1)%sp.modulus + 1
				}
				if z := sp.table.ZeroRunFrom(int(st)); z > 0 {
					run := z
					if sp.state == StateSlotPhase {
						if wrap := sp.modulus - st + 1; run > wrap {
							run = wrap
						}
					}
					if left := limit - t + 1; run > left {
						run = left
					}
					sp.recharge.FastForward(b, run, rSrc)
					// Events slept through are misses for this sensor
					// unless a peer catches them — the aggregation below
					// decides from capturedAny, so just advance past.
					end := t + run - 1
					for ei < len(eventSlots) && eventSlots[ei] <= end {
						ei++
					}
					if m != nil {
						m.KernelRuns++
						m.KernelSlotsFastForwarded += run
					}
					t += run
					continue
				}
				if isBern {
					if rSrc.Bernoulli(bq) {
						b.Recharge(bc)
					}
				} else {
					b.Recharge(sp.recharge.Next(rSrc))
				}
				event := ei < len(eventSlots) && eventSlots[ei] == t
				p := sp.table.At(int(st))
				// Awake slots have p > 0, so the decision draw below is
				// always consumed — matching the interpreted loop's
				// draw-per-positive-probability discipline.
				if dSrc.Bernoulli(p) {
					if !b.CanConsume(cost) {
						out.stats.Denied++
						if out.denied != nil && event {
							out.denied[ei] = true
						}
					} else {
						b.Consume(cfg.Params.Delta1)
						out.stats.Activations++
						if event {
							b.Consume(cfg.Params.Delta2)
							out.stats.Captures++
							out.captured[ei] = true
							lastCapture = t
						}
					}
				}
				if event {
					ei++
				}
				sampleCountdown--
				if sampleCountdown == 0 {
					sampleCountdown = batterySampleStride
					lvl := b.Level() * invCap
					if m != nil {
						m.observeBattery(lvl)
						if !b.CanConsume(cost) {
							m.EnergyOutageSlots++
						}
					}
					if probe != nil {
						probe.ObserveBattery(lvl)
					}
				}
				t++
			}
			out.stats.EnergyConsumed = b.Consumed()
			out.stats.OverflowLost = b.OverflowLost()
			out.stats.FinalBattery = b.Level()
			if m != nil {
				m.WastedActivations = out.stats.Activations - out.stats.Captures
			}
			return out, nil
		}
		recharge := cfg.NewRecharge()
		pol := cfg.NewPolicy(s)
		pol.Reset()
		lastCapture := int64(0)
		ei := 0
		for t := int64(1); t <= cfg.Slots && t < failSlot; t++ {
			amt := recharge.Next(rSrc)
			b.Recharge(amt)
			event := ei < len(eventSlots) && eventSlots[ei] == t
			st := SlotState{
				Slot:         t,
				SinceEvent:   -1,
				SinceCapture: int(t - lastCapture),
				Battery:      b.Level(),
			}
			p := pol.ActivationProb(st)
			active, denied := false, false
			switch {
			case p <= 0 || !dSrc.Bernoulli(p):
				// Asleep: no draw consumed when p <= 0, one otherwise.
			case !b.CanConsume(cost):
				out.stats.Denied++
				denied = true
				if out.denied != nil && event {
					out.denied[ei] = true
				}
			default:
				active = true
				b.Consume(cfg.Params.Delta1)
				out.stats.Activations++
				if event {
					b.Consume(cfg.Params.Delta2)
					out.stats.Captures++
					out.captured[ei] = true
					lastCapture = t
				}
			}
			pol.Observe(outcomeFor(cfg.Info, active, event, active && event))
			if tr != nil && (trFull || p > 0 || event) {
				var flags uint8
				if event {
					flags |= trace.FlagEvent
				}
				if active {
					flags |= trace.FlagActive
					if event {
						flags |= trace.FlagCaptured
					}
				}
				if denied {
					flags |= trace.FlagDenied
				}
				if trWriter != nil {
					rec := trace.Rec{
						Slot:     t,
						Sensor:   int32(s),
						Engine:   trace.EngineIndependent,
						Flags:    flags,
						H:        -1,
						F:        int32(st.SinceCapture),
						Prob:     p,
						Battery:  st.Battery,
						Recharge: amt,
					}
					trWriter.Rec(rec)
					if trFlight != nil {
						trFlight.Record(&rec)
					}
				} else if trFlight != nil {
					// Flight-only: fields go straight into the ring slot.
					trFlight.RecordSlot(t, int32(s), trace.EngineIndependent, flags,
						-1, int32(st.SinceCapture), p, st.Battery, amt)
				}
			}
			if event {
				ei++
			}
			// Battery occupancy is defined on sensor 0's end-of-slot
			// level, matching the sequential engine and
			// TimelinePoint.Battery.
			if (m != nil || probe != nil) && s == 0 && t&(batterySampleStride-1) == 0 {
				lvl := b.Level() * invCap
				if m != nil {
					m.observeBattery(lvl)
					if !b.CanConsume(cost) {
						m.EnergyOutageSlots++
					}
				}
				if probe != nil {
					probe.ObserveBattery(lvl)
				}
			}
		}
		out.stats.EnergyConsumed = b.Consumed()
		out.stats.OverflowLost = b.OverflowLost()
		out.stats.FinalBattery = b.Level()
		if m != nil {
			// Same identity as the sequential engine: an activation on
			// an event slot always captures.
			m.WastedActivations = out.stats.Activations - out.stats.Captures
		}
		if tr != nil && failSlot <= cfg.Slots {
			tr.Fault(s, failSlot)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	engine := EngineReference
	if plans != nil {
		engine = EngineKernel
	}
	res := &Result{
		Slots:   cfg.Slots,
		Events:  int64(len(eventSlots)),
		Sensors: make([]SensorStats, cfg.N),
		Engine:  engine,
	}
	var m *Metrics
	var deniedAny []bool
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	if cfg.Metrics || tr != nil {
		deniedAny = make([]bool, len(eventSlots))
	}
	capturedAny := make([]bool, len(eventSlots))
	for s, o := range outs {
		res.Sensors[s] = o.stats
		for i, c := range o.captured {
			if c {
				capturedAny[i] = true
			}
		}
		if m != nil {
			m.Merge(o.m)
		}
		if deniedAny != nil {
			for i, d := range o.denied {
				if d {
					deniedAny[i] = true
				}
			}
		}
	}
	for i, c := range capturedAny {
		if c {
			res.Captures++
		} else if m != nil {
			if deniedAny[i] {
				m.MissNoEnergy++
			} else {
				m.MissAsleep++
			}
		}
		if probe != nil {
			probe.ObserveEvent(c)
		}
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	if tr != nil {
		// Aggregate event-outcome markers: per-sensor records only say
		// what each sensor did; the markers pin down each event slot's
		// run-level outcome (captured by anyone / denied by someone)
		// even when every sensor slept or had already failed.
		outageSeen := false
		for i, slot := range eventSlots {
			flags := trace.FlagEvent
			if capturedAny[i] {
				flags |= trace.FlagCaptured
			} else if deniedAny[i] {
				flags |= trace.FlagDenied
				if !outageSeen {
					outageSeen = true
					tr.OutageMiss(slot)
				}
			}
			tr.Slot(trace.Rec{
				Slot:   slot,
				Sensor: -1,
				Engine: trace.EngineIndependent,
				Flags:  flags,
				H:      -1,
				F:      -1,
			})
		}
		tr.RunEnd(trace.RunEnd{Events: res.Events, Captures: res.Captures})
	}
	recordEngine(res.Engine)
	if m != nil {
		m.publish(res)
	}
	probe.finish(res)
	return res, nil
}

func outcomeFor(info Info, active, event, captured bool) Outcome {
	known := active || info == FullInfo
	o := Outcome{Active: active, EventKnown: known, Captured: captured}
	if known {
		o.Event = event
	}
	return o
}
