package sim

import (
	"bytes"
	"reflect"
	"testing"

	"eventcap/internal/trace"
)

// TestTracingDoesNotChangeResults is the RNG-neutrality contract of
// Config.Tracer: attaching a full-trace writer, a flight recorder, or
// both must leave the Result byte-identical, on every execution path.
func TestTracingDoesNotChangeResults(t *testing.T) {
	for name, cfg := range metricsCases(t) {
		cfg.Tracer = nil
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, mode := range []string{"full", "flight", "full+flight"} {
			var buf bytes.Buffer
			var w *trace.Writer
			var fr *trace.FlightRecorder
			if mode == "full" || mode == "full+flight" {
				w = trace.NewWriter(&buf)
			}
			if mode == "flight" || mode == "full+flight" {
				fr = trace.NewFlightRecorder(64)
			}
			cfg.Tracer = trace.New(w, fr)
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			if w != nil {
				if err := w.Close(); err != nil {
					t.Fatalf("%s/%s: %v", name, mode, err)
				}
				if w.Counts().Records == 0 {
					t.Fatalf("%s/%s: trace captured no records", name, mode)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: tracing changed the run:\nwith    %+v\nwithout %+v", name, mode, got, want)
			}
		}
	}
}

// TestTraceReplayMatchesResults re-derives each configuration's results
// purely from its trace (trace.Replay) and checks them against the
// engine's own Result and Metrics — the acceptance contract behind
// cmd/tracetool's replay subcommand, here asserted for every execution
// path including a kernel run with compressed sleep spans.
func TestTraceReplayMatchesResults(t *testing.T) {
	sawSpans := false
	for name, cfg := range metricsCases(t) {
		cfg.Metrics = true
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		cfg.Tracer = trace.New(w, nil)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum, err := trace.Replay(&buf)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		m := res.Metrics
		if sum.Runs != 1 || sum.Events != res.Events || sum.Captures != res.Captures {
			t.Errorf("%s: replay events/captures %d/%d, result %d/%d (runs %d)",
				name, sum.Events, sum.Captures, res.Events, res.Captures, sum.Runs)
		}
		if sum.MissAsleep != m.MissAsleep || sum.MissNoEnergy != m.MissNoEnergy {
			t.Errorf("%s: replay miss decomposition asleep=%d noenergy=%d, metrics asleep=%d noenergy=%d",
				name, sum.MissAsleep, sum.MissNoEnergy, m.MissAsleep, m.MissNoEnergy)
		}
		if sum.Wasted != m.WastedActivations {
			t.Errorf("%s: replay wasted %d, metrics %d", name, sum.Wasted, m.WastedActivations)
		}
		var activations, denied int64
		for _, s := range res.Sensors {
			activations += s.Activations
			denied += s.Denied
		}
		if sum.Activations != activations || sum.Denied != denied {
			t.Errorf("%s: replay activations/denied %d/%d, sensors %d/%d",
				name, sum.Activations, sum.Denied, activations, denied)
		}
		if res.Engine == EngineKernel {
			if sum.Spans == 0 || sum.Spans != m.KernelRuns || sum.SpanSlots != m.KernelSlotsFastForwarded {
				t.Errorf("%s: replay spans %d (%d slots), kernel metrics %d runs (%d slots)",
					name, sum.Spans, sum.SpanSlots, m.KernelRuns, m.KernelSlotsFastForwarded)
			}
			sawSpans = true
		}
	}
	if !sawSpans {
		t.Fatal("no kernel configuration exercised span replay")
	}
}

// TestTraceWorkerInvariance: a full-trace writer forces the
// independent-sensor path onto one worker; the results must equal a
// multi-worker untraced run, and consecutive traced runs must produce
// byte-identical trace files.
func TestTraceWorkerInvariance(t *testing.T) {
	cfg := metricsCases(t)["independent"]
	cfg.Workers = 4
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	traceBytes := func() []byte {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		traced := cfg
		traced.Tracer = trace.New(w, nil)
		got, err := Run(traced)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("traced single-worker run diverged:\nwith    %+v\nwithout %+v", got, want)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(traceBytes(), traceBytes()) {
		t.Fatal("consecutive traced runs produced different trace bytes")
	}
}

// TestTraceFaultDump: fault injection must trigger a flight-recorder
// fault dump for the failed sensor.
func TestTraceFaultDump(t *testing.T) {
	cfg := metricsCases(t)["reference-faults"]
	fr := trace.NewFlightRecorder(32)
	cfg.Tracer = trace.New(nil, fr)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var fault bool
	for _, d := range fr.Dumps() {
		if d.Reason == "fault" && d.Slot == 5000 && len(d.Sensors) == 1 && d.Sensors[0].Sensor == 1 {
			fault = true
		}
	}
	if !fault {
		t.Fatalf("no fault dump for sensor 1 at slot 5000; dumps: %+v", fr.Dumps())
	}
}

// TestTraceOutageDump: a starved battery must trigger the
// miss-after-outage dump.
func TestTraceOutageDump(t *testing.T) {
	cfg := metricsCases(t)["reference-starved"]
	fr := trace.NewFlightRecorder(32)
	cfg.Tracer = trace.New(nil, fr)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = true
	cfg.Tracer = nil
	check, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if check.Metrics.MissNoEnergy == 0 {
		t.Skip("starved config saw no energy-gated miss")
	}
	var outage bool
	for _, d := range fr.Dumps() {
		if d.Reason == "outage_miss" {
			outage = true
		}
	}
	if !outage {
		t.Fatalf("energy-gated misses occurred (%d) but no outage dump fired (result %+v)",
			check.Metrics.MissNoEnergy, res)
	}
}
