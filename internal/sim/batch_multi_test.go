package sim

import (
	"reflect"
	"testing"

	"eventcap/internal/energy"
	"eventcap/internal/trace"
)

// TestBatchMultiPerRepMatchesKernel pins the fleet batch contract:
// replication r of a round-robin batch must reproduce the multi-kernel
// run at Seed + r bit for bit. Unlike the single-sensor worker the fleet
// worker has no awake-run batching, so this holds for Bernoulli recharge
// too, with metrics on or off.
func TestBatchMultiPerRepMatchesKernel(t *testing.T) {
	const reps = 48
	recharges := []struct {
		name string
		make func() energy.Recharge
	}{
		{"uniform-0.5", func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }},
		{"periodic-5-per-10", func() energy.Recharge { r, _ := energy.NewPeriodic(5, 10); return r }},
		{"bernoulli-0.5-1", func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }},
	}
	kc := kernelCases(t)[0]
	for _, rc := range recharges {
		for _, metrics := range []bool{false, true} {
			const n = 3
			cfg := multiKernelConfig(t, kc, rc.make, n, 100, 42)
			cfg.Slots = 10_000
			cfg.Metrics = metrics
			cfg.Engine = EngineBatch
			cfg.Batch = reps
			batch, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s metrics=%v: batch: %v", rc.name, metrics, err)
			}
			if len(batch.Sensors) != reps*n {
				t.Fatalf("%s: batch returned %d sensor blocks, want %d", rc.name, len(batch.Sensors), reps*n)
			}
			var events, captures int64
			for r := 0; r < reps; r++ {
				sub := multiKernelConfig(t, kc, rc.make, n, 100, 42+uint64(r))
				sub.Slots = 10_000
				sub.Metrics = metrics
				sub.Engine = EngineKernel
				one, err := Run(sub)
				if err != nil {
					t.Fatalf("%s replication %d: %v", rc.name, r, err)
				}
				if !reflect.DeepEqual(batch.Sensors[r*n:(r+1)*n], one.Sensors) {
					t.Fatalf("%s metrics=%v replication %d diverged:\nbatch  %+v\nkernel %+v",
						rc.name, metrics, r, batch.Sensors[r*n:(r+1)*n], one.Sensors)
				}
				events += one.Events
				captures += one.Captures
			}
			if batch.Events != events || batch.Captures != captures {
				t.Errorf("%s: batch totals %d/%d, paired kernel sum %d/%d",
					rc.name, batch.Events, batch.Captures, events, captures)
			}
		}
	}
}

// TestBatchIndepPerRepMatchesIndependent is the decoupled-fleet pairing:
// replication r of an independent batch must reproduce the compiled
// independent engine at Seed + r bit for bit (both paths fast-forward
// through the same per-sensor streams).
func TestBatchIndepPerRepMatchesIndependent(t *testing.T) {
	const reps = 24
	recharges := []struct {
		name string
		make func() energy.Recharge
	}{
		{"uniform-0.4", func() energy.Recharge { r, _ := energy.NewConstant(0.4); return r }},
		{"bernoulli-0.4-1", func() energy.Recharge { r, _ := energy.NewBernoulli(0.4, 1); return r }},
	}
	for _, rc := range recharges {
		const n = 3
		cfg := independentKernelConfig(t, rc.make, n, 7)
		cfg.Slots = 10_000
		cfg.Engine = EngineBatch
		cfg.Batch = reps
		batch, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: batch: %v", rc.name, err)
		}
		if len(batch.Sensors) != reps*n {
			t.Fatalf("%s: batch returned %d sensor blocks, want %d", rc.name, len(batch.Sensors), reps*n)
		}
		var events, captures int64
		for r := 0; r < reps; r++ {
			sub := independentKernelConfig(t, rc.make, n, 7+uint64(r))
			sub.Slots = 10_000
			sub.Engine = EngineKernel
			one, err := Run(sub)
			if err != nil {
				t.Fatalf("%s replication %d: %v", rc.name, r, err)
			}
			if !reflect.DeepEqual(batch.Sensors[r*n:(r+1)*n], one.Sensors) {
				t.Fatalf("%s replication %d diverged:\nbatch       %+v\nindependent %+v",
					rc.name, r, batch.Sensors[r*n:(r+1)*n], one.Sensors)
			}
			events += one.Events
			captures += one.Captures
		}
		if batch.Events != events || batch.Captures != captures {
			t.Errorf("%s: batch totals %d/%d, paired independent sum %d/%d",
				rc.name, batch.Events, batch.Captures, events, captures)
		}
	}
}

// TestBatchMultiShardingInvariance checks that worker count and chunk
// size never touch the random streams of a fleet batch: every sharding
// must produce byte-identical results.
func TestBatchMultiShardingInvariance(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	shard := func(workers, chunk int, mutate func(*Config)) *Result {
		t.Helper()
		cfg := multiKernelConfig(t, kernelCases(t)[0], newRech, 4, 100, 13)
		cfg.Slots = 5_000
		cfg.Metrics = true
		cfg.Engine = EngineBatch
		cfg.Batch = 40
		cfg.Workers = workers
		cfg.BatchChunk = chunk
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := shard(1, 0, nil)
	for _, tc := range []struct{ workers, chunk int }{{1, 7}, {4, 1}, {4, 13}, {8, 40}} {
		got := shard(tc.workers, tc.chunk, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d chunk=%d diverged from sequential run", tc.workers, tc.chunk)
		}
	}
	// Same invariance for a decoupled fleet.
	ishard := func(workers, chunk int) *Result {
		t.Helper()
		cfg := independentKernelConfig(t, newRech, 3, 13)
		cfg.Slots = 5_000
		cfg.Metrics = true
		cfg.Engine = EngineBatch
		cfg.Batch = 40
		cfg.Workers = workers
		cfg.BatchChunk = chunk
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	iwant := ishard(1, 0)
	for _, tc := range []struct{ workers, chunk int }{{4, 1}, {8, 13}} {
		if got := ishard(tc.workers, tc.chunk); !reflect.DeepEqual(got, iwant) {
			t.Errorf("independent workers=%d chunk=%d diverged from sequential run", tc.workers, tc.chunk)
		}
	}
}

// TestBatchMultiForcedRejectsIneligible enumerates the fleet-specific
// batch rejections; EngineAuto with Batch set must still run the
// configuration through the per-replication fallback.
func TestBatchMultiForcedRejectsIneligible(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"mode-blocks", func(c *Config) { c.Mode = ModeBlocks; c.BlockLen = 5 }},
		{"tracer", func(c *Config) { c.Tracer = trace.New(nil, trace.NewFlightRecorder(32)) }},
		{"independent fault", func(c *Config) {
			c.Mode = ModeAll
			c.Info = PartialInfo
			c.FailAt = map[int]int64{0: 10}
		}},
		{"non-fast-forward recharge", func(c *Config) {
			c.NewRecharge = func() energy.Recharge { r, _ := energy.NewClippedGaussian(0.5, 0.1); return r }
		}},
	}
	for _, tc := range cases {
		cfg := multiKernelConfig(t, kernelCases(t)[0], newRech, 3, 100, 1)
		cfg.Slots = 2_000
		cfg.Batch = 4
		tc.mutate(&cfg)
		cfg.Engine = EngineBatch
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: forced batch did not reject", tc.name)
		}
		cfg.Engine = EngineAuto
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: auto fallback failed: %v", tc.name, err)
		}
	}
}
