package sim

import (
	"math"

	"eventcap/internal/energy"
	"eventcap/internal/rng"
)

// Fleet-shaped batch workers. Two shapes exist beyond the single-sensor
// batchWorker:
//
//   - batchMultiWorker: coordinated round-robin fleets (plan.kernel.n >
//     1). One shared decision state, N batteries, N recharge streams —
//     the runKernelMulti loop with the batch accelerations (quantile
//     event sampling). There is no awake-run batching here: decision
//     ownership rotates per slot, so a certain-activation run spans
//     several batteries and the closed-form guard no longer applies.
//     Replication r is therefore byte-identical to runKernelMulti at
//     Seed + r whenever that kernel is byte-deterministic, and equal in
//     law under Bernoulli recharge (the FastForwarder clause).
//
//   - batchIndepWorker: decoupled ModeAll+PartialInfo fleets
//     (plan.indep != nil). Replication r reproduces runIndependent at
//     Seed + r: same stream layout (event Split(1), a discarded
//     Split(2), recharge Split(100+s), decision Split(200+s)), same
//     shared event trajectory, one compiled per-sensor loop each. The
//     battery is a single instance reset per sensor — sensors never
//     interact, so sequential reuse is exact.

// batchMultiWorker is one chunk's replication state for a round-robin
// fleet: per-sensor batteries, recharge processes and streams, reset or
// reseeded in place per replication.
type batchMultiWorker struct {
	root, eventSrc, decisionSrc rng.Source

	rechargeSrcs []rng.Source
	batteries    []energy.Battery
	rechs        []energy.FastForwarder
	rechRsts     []resettable

	allBern      bool
	bernQ, bernC []float64
}

func newBatchMultiWorker(cfg *Config, plan *batchPlan) (*batchMultiWorker, error) {
	n := plan.kernel.n
	w := &batchMultiWorker{
		rechargeSrcs: make([]rng.Source, n),
		batteries:    make([]energy.Battery, n),
		rechs:        make([]energy.FastForwarder, n),
		rechRsts:     make([]resettable, n),
		allBern:      true,
		bernQ:        make([]float64, n),
		bernC:        make([]float64, n),
	}
	for s := 0; s < n; s++ {
		b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
		if err != nil {
			return nil, err
		}
		w.batteries[s] = *b
		rech, rst, err := chunkRecharge(cfg, plan.kernel.recharges[s])
		if err != nil {
			return nil, err
		}
		w.rechs[s], w.rechRsts[s] = rech, rst
		if bern, ok := rech.(*energy.Bernoulli); ok {
			w.bernQ[s], w.bernC[s] = bern.Q(), bern.C()
		} else {
			w.allBern = false
		}
	}
	return w, nil
}

func (w *batchMultiWorker) simulate(cfg *Config, plan *batchPlan, rep uint64, sensors []SensorStats, m *Metrics, observe bool) (events, captures int64) {
	n := len(sensors)
	w.root.Reseed(cfg.Seed+rep, 0x5eed) // seedflow:ok replication-root: rep r must equal the multi kernel's root at Seed+r
	w.root.SplitInto(&w.eventSrc, 1)
	w.root.SplitInto(&w.decisionSrc, 2)
	for s := 0; s < n; s++ {
		w.root.SplitInto(&w.rechargeSrcs[s], uint64(100+s))
		w.batteries[s].Reset(cfg.InitialBattery)
		if w.rechRsts[s] != nil {
			w.rechRsts[s].Reset()
		}
	}

	table := plan.table
	quant := plan.quant
	d := cfg.Dist
	state := plan.kernel.state
	modulus := plan.kernel.modulus
	cost := cfg.Params.ActivationCost()
	delta1, delta2 := cfg.Params.Delta1, cfg.Params.Delta2
	isBern := w.allBern

	invCap := 1 / cfg.BatteryCap
	binScale := batteryBins * invCap
	costGate := cost - 1e-12
	var obsSlots, outage int64
	var fracSum float64
	var activations, denied, sensorCaptures []int64
	perSensor := make([]int64, 3*n)
	activations, denied, sensorCaptures = perSensor[:n], perSensor[n:2*n], perSensor[2*n:]
	sampleCountdown := int64(math.MaxInt64)
	if m != nil && observe {
		sampleCountdown = batterySampleStride
	}

	// The paper assumes an event (and capture) at slot 0.
	lastEvent, lastCapture := int64(0), int64(0)
	var nextEvent int64
	if quant != nil {
		nextEvent = int64(quant.Sample(&w.eventSrc))
	} else {
		nextEvent = int64(d.Sample(&w.eventSrc))
	}
	nn := int64(n)

	t := int64(1)
	for t <= cfg.Slots {
		var st int64
		switch state {
		case StateSinceEvent:
			st = t - lastEvent
		case StateSinceCapture:
			st = t - lastCapture
		default:
			st = (t-1)%modulus + 1
		}

		if z := table.ZeroRunFrom(int(st)); z > 0 {
			// Shared sleep run, exactly as runKernelMulti executes it: the
			// whole fleet stays silent and every battery fast-forwards
			// through its own stream.
			run := z
			if state == StateSlotPhase {
				if wrap := modulus - st + 1; run > wrap {
					run = wrap
				}
			}
			if left := cfg.Slots - t + 1; run > left {
				run = left
			}
			eventsBefore := events
			if state == StateSinceEvent && nextEvent-t+1 <= run {
				run = nextEvent - t + 1
				for s := 0; s < n; s++ {
					w.rechs[s].FastForward(&w.batteries[s], run, &w.rechargeSrcs[s])
				}
				events++
				lastEvent = nextEvent
				if quant != nil {
					nextEvent += int64(quant.Sample(&w.eventSrc))
				} else {
					nextEvent += int64(d.Sample(&w.eventSrc))
				}
			} else {
				for s := 0; s < n; s++ {
					w.rechs[s].FastForward(&w.batteries[s], run, &w.rechargeSrcs[s])
				}
				end := t + run - 1
				for nextEvent <= end {
					events++
					lastEvent = nextEvent
					if quant != nil {
						nextEvent += int64(quant.Sample(&w.eventSrc))
					} else {
						nextEvent += int64(d.Sample(&w.eventSrc))
					}
				}
			}
			if m != nil {
				m.KernelRuns++
				m.KernelSlotsFastForwarded += run
				m.MissAsleep += events - eventsBefore
			}
			t += run
			continue
		}

		// Awake slot: every sensor recharges, the in-charge one decides.
		if isBern {
			for s := 0; s < n; s++ {
				if w.rechargeSrcs[s].Bernoulli(w.bernQ[s]) {
					w.batteries[s].Recharge(w.bernC[s])
				}
			}
		} else {
			for s := 0; s < n; s++ {
				w.batteries[s].Recharge(w.rechs[s].Next(&w.rechargeSrcs[s]))
			}
		}
		event := t == nextEvent
		charge := int((t - 1) % nn)
		battery := &w.batteries[charge]
		p := table.At(int(st))
		capturedHere, deniedHere := false, false
		if w.decisionSrc.Bernoulli(p) {
			if !battery.CanConsume(cost) {
				denied[charge]++
				deniedHere = true
			} else {
				battery.Consume(delta1)
				activations[charge]++
				if event {
					battery.Consume(delta2)
					sensorCaptures[charge]++
					captures++
					lastCapture = t
					capturedHere = true
				}
			}
		}
		if event {
			events++
			lastEvent = t
			if quant != nil {
				nextEvent = t + int64(quant.Sample(&w.eventSrc))
			} else {
				nextEvent = t + int64(d.Sample(&w.eventSrc))
			}
			if m != nil && !capturedHere {
				if deniedHere {
					m.MissNoEnergy++
				} else {
					m.MissAsleep++
				}
			}
		}
		sampleCountdown--
		if sampleCountdown == 0 {
			sampleCountdown = batterySampleStride
			lvl := w.batteries[0].Level()
			obsSlots++
			fracSum += lvl * invCap
			bin := int(lvl * binScale)
			if bin >= batteryBins {
				bin = batteryBins - 1
			}
			m.BatteryHist[bin]++
			if lvl < costGate {
				outage++
			}
		}
		t++
	}

	for s := 0; s < n; s++ {
		sensors[s] = SensorStats{
			Activations:    activations[s],
			Captures:       sensorCaptures[s],
			Denied:         denied[s],
			EnergyConsumed: w.batteries[s].Consumed(),
			OverflowLost:   w.batteries[s].OverflowLost(),
			FinalBattery:   w.batteries[s].Level(),
		}
	}
	if m != nil {
		m.ObservedSlots += obsSlots
		m.BatteryFracSum += fracSum
		m.EnergyOutageSlots += outage
		var act, cap64 int64
		for s := 0; s < n; s++ {
			act += activations[s]
			cap64 += sensorCaptures[s]
		}
		// An activation on an event slot always captures, so wasted
		// (no-event) activations are exactly activations − captures.
		m.WastedActivations += act - cap64
	}
	return events, captures
}

// batchIndepWorker is one chunk's replication state for a decoupled
// fleet: per-sensor streams and recharge processes, one battery reset
// per sensor per replication, and reusable event/outcome buffers.
type batchIndepWorker struct {
	root, eventSrc, scratch rng.Source

	rechargeSrcs []rng.Source
	decisionSrcs []rng.Source
	battery      *energy.Battery
	rechs        []energy.FastForwarder
	rechRsts     []resettable

	isBern       []bool
	bernQ, bernC []float64

	eventBuf    []int64
	capturedBuf []bool
	deniedBuf   []bool
}

func newBatchIndepWorker(cfg *Config, plan *batchPlan) (*batchIndepWorker, error) {
	n := len(plan.indep)
	b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
	if err != nil {
		return nil, err
	}
	w := &batchIndepWorker{
		rechargeSrcs: make([]rng.Source, n),
		decisionSrcs: make([]rng.Source, n),
		battery:      b,
		rechs:        make([]energy.FastForwarder, n),
		rechRsts:     make([]resettable, n),
		isBern:       make([]bool, n),
		bernQ:        make([]float64, n),
		bernC:        make([]float64, n),
	}
	for s := 0; s < n; s++ {
		rech, rst, err := chunkRecharge(cfg, plan.indep[s].recharge)
		if err != nil {
			return nil, err
		}
		w.rechs[s], w.rechRsts[s] = rech, rst
		if bern, ok := rech.(*energy.Bernoulli); ok {
			w.isBern[s] = true
			w.bernQ[s], w.bernC[s] = bern.Q(), bern.C()
		}
	}
	return w, nil
}

func (w *batchIndepWorker) simulate(cfg *Config, plan *batchPlan, rep uint64, sensors []SensorStats, m *Metrics, observe bool) (events, captures int64) {
	n := len(sensors)
	w.root.Reseed(cfg.Seed+rep, 0x5eed) // seedflow:ok replication-root: rep r must equal runIndependent's root at Seed+r
	w.root.SplitInto(&w.eventSrc, 1)
	// runIndependent discards Split(2); the discard still consumes one
	// root draw, keeping the remaining streams aligned.
	w.root.SplitInto(&w.scratch, 2)
	for s := 0; s < n; s++ {
		w.root.SplitInto(&w.rechargeSrcs[s], uint64(100+s))
	}
	for s := 0; s < n; s++ {
		w.root.SplitInto(&w.decisionSrcs[s], uint64(200+s))
	}

	// One shared event trajectory, drawn exactly as runIndependent draws
	// it (an assumed event at slot 0 seeds the first gap).
	quant := plan.quant
	d := cfg.Dist
	w.eventBuf = w.eventBuf[:0]
	if quant != nil {
		for t := int64(quant.Sample(&w.eventSrc)); t <= cfg.Slots; t += int64(quant.Sample(&w.eventSrc)) {
			w.eventBuf = append(w.eventBuf, t)
		}
	} else {
		for t := int64(d.Sample(&w.eventSrc)); t <= cfg.Slots; t += int64(d.Sample(&w.eventSrc)) {
			w.eventBuf = append(w.eventBuf, t)
		}
	}
	eventSlots := w.eventBuf
	if cap(w.capturedBuf) < len(eventSlots) {
		w.capturedBuf = make([]bool, len(eventSlots))
		w.deniedBuf = make([]bool, len(eventSlots))
	}
	capturedAny := w.capturedBuf[:len(eventSlots)]
	deniedAny := w.deniedBuf[:len(eventSlots)]
	for i := range capturedAny {
		capturedAny[i] = false
		deniedAny[i] = false
	}

	cost := cfg.Params.ActivationCost()
	delta1, delta2 := cfg.Params.Delta1, cfg.Params.Delta2
	invCap := 1 / cfg.BatteryCap

	b := w.battery
	for s := 0; s < n; s++ {
		sp := &plan.indep[s]
		b.Reset(cfg.InitialBattery)
		if w.rechRsts[s] != nil {
			w.rechRsts[s].Reset()
		}
		rSrc, dSrc := &w.rechargeSrcs[s], &w.decisionSrcs[s]
		rech := w.rechs[s]
		isBern, bq, bc := w.isBern[s], w.bernQ[s], w.bernC[s]
		var activations, sensorCaptures, denied int64
		// Battery occupancy keeps the batch convention (replication 0
		// only) and the independent-kernel one (sensor 0, awake stride).
		sampleCountdown := int64(math.MaxInt64)
		if m != nil && observe && s == 0 {
			sampleCountdown = batterySampleStride
		}
		lastCapture := int64(0)
		ei := 0
		t := int64(1)
		for t <= cfg.Slots {
			var st int64
			if sp.state == StateSinceCapture {
				st = t - lastCapture
			} else {
				st = (t-1)%sp.modulus + 1
			}
			if z := sp.table.ZeroRunFrom(int(st)); z > 0 {
				run := z
				if sp.state == StateSlotPhase {
					if wrap := sp.modulus - st + 1; run > wrap {
						run = wrap
					}
				}
				if left := cfg.Slots - t + 1; run > left {
					run = left
				}
				rech.FastForward(b, run, rSrc)
				end := t + run - 1
				for ei < len(eventSlots) && eventSlots[ei] <= end {
					ei++
				}
				if m != nil {
					m.KernelRuns++
					m.KernelSlotsFastForwarded += run
				}
				t += run
				continue
			}
			if isBern {
				if rSrc.Bernoulli(bq) {
					b.Recharge(bc)
				}
			} else {
				b.Recharge(rech.Next(rSrc))
			}
			event := ei < len(eventSlots) && eventSlots[ei] == t
			p := sp.table.At(int(st))
			if dSrc.Bernoulli(p) {
				if !b.CanConsume(cost) {
					denied++
					if event {
						deniedAny[ei] = true
					}
				} else {
					b.Consume(delta1)
					activations++
					if event {
						b.Consume(delta2)
						sensorCaptures++
						capturedAny[ei] = true
						lastCapture = t
					}
				}
			}
			if event {
				ei++
			}
			sampleCountdown--
			if sampleCountdown == 0 {
				sampleCountdown = batterySampleStride
				m.observeBattery(b.Level() * invCap)
				if !b.CanConsume(cost) {
					m.EnergyOutageSlots++
				}
			}
			t++
		}
		sensors[s] = SensorStats{
			Activations:    activations,
			Captures:       sensorCaptures,
			Denied:         denied,
			EnergyConsumed: b.Consumed(),
			OverflowLost:   b.OverflowLost(),
			FinalBattery:   b.Level(),
		}
		if m != nil {
			m.WastedActivations += activations - sensorCaptures
		}
	}

	events = int64(len(eventSlots))
	for i := range capturedAny {
		if capturedAny[i] {
			captures++
		} else if m != nil {
			if deniedAny[i] {
				m.MissNoEnergy++
			} else {
				m.MissAsleep++
			}
		}
	}
	return events, captures
}
