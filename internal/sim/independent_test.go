package sim

import (
	"testing"

	"eventcap/internal/core"
)

// independentConfig is a ModeAll + PartialInfo multi-sensor setup that
// qualifies for the independent-sensor fast path.
func independentConfig(t *testing.T, n, workers int) Config {
	t.Helper()
	d := mustWeibull(t, 30, 2)
	p := core.DefaultParams()
	pi, err := core.OptimizeClustering(d, 0.4, p, core.ClusteringOptions{CoarsePoints: 8, MaxGap: 256})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.4, 1),
		NewPolicy:   func(int) Policy { return &VectorPI{Vector: pi.Vector} },
		N:           n,
		Mode:        ModeAll,
		BatteryCap:  400,
		Slots:       120_000,
		Seed:        17,
		Info:        PartialInfo,
		Workers:     workers,
	}
}

// TestIndependentDeterministicAcrossWorkers: the fast path's random
// streams are fixed by the per-sensor decomposition, so every worker
// count reproduces the same result to the last bit.
func TestIndependentDeterministicAcrossWorkers(t *testing.T) {
	base, err := Run(independentConfig(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Events == 0 || base.Captures == 0 {
		t.Fatalf("vacuous run: %+v", base)
	}
	for _, w := range []int{0, 2, 8} {
		got, err := Run(independentConfig(t, 4, w))
		if err != nil {
			t.Fatal(err)
		}
		if got.Events != base.Events || got.Captures != base.Captures || got.QoM != base.QoM {
			t.Fatalf("workers=%d: got events=%d captures=%d qom=%v, want %d %d %v",
				w, got.Events, got.Captures, got.QoM, base.Events, base.Captures, base.QoM)
		}
		for s := range got.Sensors {
			if got.Sensors[s] != base.Sensors[s] {
				t.Fatalf("workers=%d sensor %d: got %+v, want %+v", w, s, got.Sensors[s], base.Sensors[s])
			}
		}
	}
}

// TestIndependentUnionCaptures: the run-level capture count is the union
// over sensors (a slot captured by two sensors counts once), so it is
// bounded by the per-sensor sum and at least the best single sensor.
func TestIndependentUnionCaptures(t *testing.T) {
	res, err := Run(independentConfig(t, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	var sum, best int64
	for _, s := range res.Sensors {
		sum += s.Captures
		if s.Captures > best {
			best = s.Captures
		}
	}
	if res.Captures < best || res.Captures > sum {
		t.Fatalf("union captures %d outside [%d, %d]", res.Captures, best, sum)
	}
	if res.Captures > res.Events {
		t.Fatalf("captures %d exceed events %d", res.Captures, res.Events)
	}
	// Redundant uncoordinated sensors must beat one sensor's QoM. (N=1
	// runs the sequential engine; the comparison is directional, not
	// stream-exact.)
	solo, err := Run(independentConfig(t, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.QoM <= solo.QoM {
		t.Fatalf("3 redundant sensors (%v) not better than 1 (%v)", res.QoM, solo.QoM)
	}
}

// TestIndependentFailAt: a sensor that dies mid-run stops activating;
// the fast path must honor fault injection like the sequential engine.
func TestIndependentFailAt(t *testing.T) {
	cfg := independentConfig(t, 2, 0)
	cfg.FailAt = map[int]int64{0: cfg.Slots / 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sensors[0].Activations >= res.Sensors[1].Activations {
		t.Fatalf("failed sensor activated %d times, healthy one %d",
			res.Sensors[0].Activations, res.Sensors[1].Activations)
	}
}

// TestIndependentGatingSampleEvery: SampleEvery needs the interleaved
// per-slot view, so it must route to the sequential engine and still
// produce a timeline.
func TestIndependentGatingSampleEvery(t *testing.T) {
	cfg := independentConfig(t, 2, 0)
	cfg.SampleEvery = 10_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("SampleEvery produced no timeline points")
	}
}
