package sim

import (
	"math"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
)

// TestAdaptiveApproachesKnownDistribution: the learning policy must close
// most of the gap to the policy computed from the true distribution.
func TestAdaptiveApproachesKnownDistribution(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	const e = 0.5

	known, err := core.GreedyFI(d, e, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(newPolicy func(int) Policy, seed uint64) float64 {
		res, err := Run(Config{
			Dist:        d,
			Params:      p,
			NewRecharge: bernoulliFactory(t, 0.5, 1),
			NewPolicy:   newPolicy,
			BatteryCap:  1000,
			Slots:       2_000_000,
			Seed:        seed,
			Info:        FullInfo,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoM
	}
	knownQ := run(func(int) Policy { return &VectorFI{Vector: known.Policy} }, 5)
	adaptQ := run(func(int) Policy { return &AdaptiveGreedyFI{E: e, Params: p} }, 5)

	if adaptQ < knownQ-0.06 {
		t.Fatalf("adaptive QoM %v too far below known-distribution %v", adaptQ, knownQ)
	}
	if adaptQ > knownQ+0.02 {
		t.Fatalf("adaptive QoM %v suspiciously above known-distribution %v", adaptQ, knownQ)
	}
}

// TestAdaptiveBeatsBlindBaseline: learning must clearly outperform the
// warmup coin flip it starts from.
func TestAdaptiveBeatsBlindBaseline(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	const e = 0.5
	adaptive := &AdaptiveGreedyFI{E: e, Params: p}
	res, err := Run(Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.5, 1),
		NewPolicy:   func(int) Policy { return adaptive },
		BatteryCap:  1000,
		Slots:       1_000_000,
		Seed:        6,
		Info:        FullInfo,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := adaptive.Err(); err != nil {
		t.Fatal(err)
	}
	// The blind policy captures ≈ e/(δ1+δ2/μ) ≈ 0.43 at best; the greedy
	// optimum is ≈ 0.80. Learning should land clearly above the blind
	// level.
	if res.QoM < 0.6 {
		t.Fatalf("adaptive QoM %v did not rise above blind levels", res.QoM)
	}
}

func TestAdaptiveFailsSafeUnderPartialInfo(t *testing.T) {
	a := &AdaptiveGreedyFI{E: 0.5, Params: core.DefaultParams()}
	a.Reset()
	if got := a.ActivationProb(SlotState{SinceEvent: -1}); got != 0 {
		t.Fatalf("without full information the policy should sleep, got %v", got)
	}
}

func TestAdaptiveWarmupProbability(t *testing.T) {
	a := &AdaptiveGreedyFI{E: 0.5, Params: core.DefaultParams()}
	a.Reset()
	want := 0.5 / 7
	if got := a.ActivationProb(SlotState{SinceEvent: 3}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("warmup probability %v, want %v", got, want)
	}
	if a.Name() != "adaptive-greedy-fi" {
		t.Fatal("name mismatch")
	}
}

func TestGapEstimator(t *testing.T) {
	est, err := core.NewGapEstimator(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Distribution(); err == nil {
		t.Fatal("empty estimator produced a distribution")
	}
	for i := 0; i < 500; i++ {
		est.Observe(5)
	}
	for i := 0; i < 500; i++ {
		est.Observe(10)
	}
	est.Observe(0)    // ignored
	est.Observe(-3)   // ignored
	est.Observe(1000) // clamped to maxGap
	if est.Count() != 1001 {
		t.Fatalf("count %d, want 1001", est.Count())
	}
	d, err := est.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PMF(5)-0.5) > 0.05 || math.Abs(d.PMF(10)-0.5) > 0.05 {
		t.Fatalf("estimated PMF off: P(5)=%v P(10)=%v", d.PMF(5), d.PMF(10))
	}
	// Smoothing keeps unobserved cells positive.
	if d.PMF(7) <= 0 {
		t.Fatal("smoothing failed: zero probability on unseen gap")
	}
	if _, err := core.NewGapEstimator(0); err == nil {
		t.Fatal("maxGap 0 accepted")
	}
}

// TestGapEstimatorRecoversTrueDistribution feeds samples from a known
// law and checks the plug-in greedy policy approaches the true optimum.
func TestGapEstimatorRecoversTrueDistribution(t *testing.T) {
	truth, err := dist.NewUniformInt(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewGapEstimator(1000)
	if err != nil {
		t.Fatal(err)
	}
	src := newTestSource(t)
	for i := 0; i < 20000; i++ {
		est.Observe(truth.Sample(src))
	}
	d, err := est.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	trueFI, err := core.GreedyFI(truth, 0.3, p)
	if err != nil {
		t.Fatal(err)
	}
	estFI, err := core.GreedyFI(d, 0.3, p)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the plug-in policy against the TRUE distribution.
	gotU := estFI.Policy.CaptureProbFI(truth)
	if gotU < trueFI.CaptureProb-0.02 {
		t.Fatalf("plug-in policy U %v, true optimum %v", gotU, trueFI.CaptureProb)
	}
}
