package sim

import (
	"math"
	"reflect"
	"testing"

	"eventcap/internal/energy"
	"eventcap/internal/trace"
)

// TestBatchSingleReplicationByteIdenticalToKernel is the batch engine's
// anchor contract: with one replication the batch engine must reproduce
// the kernel run at the same seed bit for bit — every count and every
// floating-point battery total — whenever the kernel itself is
// byte-deterministic on the configuration. That covers deterministic
// recharges with metrics on or off, and Bernoulli recharge with metrics
// on (which disables the batched awake runs, so the streams are consumed
// identically).
func TestBatchSingleReplicationByteIdenticalToKernel(t *testing.T) {
	recharges := []struct {
		name    string
		make    func() energy.Recharge
		metrics []bool
	}{
		{"uniform-0.5", func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }, []bool{false, true}},
		{"periodic-5-per-10", func() energy.Recharge { r, _ := energy.NewPeriodic(5, 10); return r }, []bool{false, true}},
		{"bernoulli-0.5-1", func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }, []bool{true}},
	}
	for _, kc := range kernelCases(t) {
		for _, rc := range recharges {
			for _, metrics := range rc.metrics {
				for _, batteryCap := range []float64{7, 100} {
					for seed := uint64(1); seed <= 3; seed++ {
						cfg := kernelBaseConfig(t, kc, rc.make, batteryCap, seed)
						cfg.Metrics = metrics

						cfg.Engine = EngineKernel
						want, err := Run(cfg)
						if err != nil {
							t.Fatalf("%s/%s K=%g: kernel: %v", kc.name, rc.name, batteryCap, err)
						}
						cfg.Engine = EngineBatch
						got, err := Run(cfg)
						if err != nil {
							t.Fatalf("%s/%s K=%g: batch: %v", kc.name, rc.name, batteryCap, err)
						}
						if got.Engine != EngineBatch {
							t.Fatalf("%s/%s: batch result reports engine %v", kc.name, rc.name, got.Engine)
						}
						got.Engine = want.Engine
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s/%s K=%g seed=%d metrics=%v:\nbatch  %+v\nkernel %+v",
								kc.name, rc.name, batteryCap, seed, metrics, got, want)
						}
					}
				}
			}
		}
	}
}

// TestBatchMatchesIndependentRunsPairedSeeds checks the seed-pairing
// contract at B=256: replication r of a batch must reproduce the
// single-run result at Seed + r, so the batch's per-sensor stats, event
// and capture totals, pooled QoM, and summed miss decomposition must all
// match 256 independent sim.Run calls exactly (metrics stay on, so the
// instrumented replications consume their streams exactly as the kernel
// would).
func TestBatchMatchesIndependentRunsPairedSeeds(t *testing.T) {
	const reps = 256
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	kc := kernelCases(t)[0]
	cfg := kernelBaseConfig(t, kc, newRech, 100, 42)
	cfg.Slots = 20_000
	cfg.Metrics = true

	cfg.Engine = EngineBatch
	cfg.Batch = reps
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Sensors) != reps {
		t.Fatalf("batch returned %d sensor blocks, want %d", len(batch.Sensors), reps)
	}

	var events, captures int64
	agg := &Metrics{}
	for r := 0; r < reps; r++ {
		sub := kernelBaseConfig(t, kc, newRech, 100, 42+uint64(r))
		sub.Slots = 20_000
		sub.Metrics = true
		sub.Engine = EngineKernel
		one, err := Run(sub)
		if err != nil {
			t.Fatalf("replication %d: %v", r, err)
		}
		if batch.Sensors[r] != one.Sensors[0] {
			t.Fatalf("replication %d stats diverged:\nbatch  %+v\nsingle %+v", r, batch.Sensors[r], one.Sensors[0])
		}
		events += one.Events
		captures += one.Captures
		if r == 0 {
			*agg = *one.Metrics
		} else {
			agg.mergeReplica(one.Metrics)
		}
	}
	if batch.Events != events || batch.Captures != captures {
		t.Errorf("batch totals %d/%d, independent sum %d/%d", batch.Events, batch.Captures, events, captures)
	}
	if want := float64(captures) / float64(events); batch.QoM != want {
		t.Errorf("batch QoM %v, pooled independent %v", batch.QoM, want)
	}
	m := batch.Metrics
	if m == nil {
		t.Fatal("batch dropped Metrics")
	}
	if m.MissAsleep != agg.MissAsleep || m.MissNoEnergy != agg.MissNoEnergy ||
		m.WastedActivations != agg.WastedActivations ||
		m.KernelRuns != agg.KernelRuns || m.KernelSlotsFastForwarded != agg.KernelSlotsFastForwarded {
		t.Errorf("batch metrics diverged:\nbatch %+v\nsum   %+v", m, agg)
	}
	// Occupancy comes from replication 0 only.
	if m.ObservedSlots != agg.ObservedSlots || m.BatteryFracSum != agg.BatteryFracSum ||
		m.EnergyOutageSlots != agg.EnergyOutageSlots || m.BatteryHist != agg.BatteryHist {
		t.Errorf("batch occupancy diverged from replication 0:\nbatch %+v\nrep0  %+v", m, agg)
	}
	if m.MissAsleep+m.MissNoEnergy+batch.Captures != batch.Events {
		t.Errorf("miss decomposition broken: %d asleep + %d no-energy + %d captures != %d events",
			m.MissAsleep, m.MissNoEnergy, batch.Captures, batch.Events)
	}
}

// TestBatchShardingInvariance checks that the Result is byte-identical
// for every Workers and BatchChunk setting — the acceptance criterion
// that forces per-replication streams. Metrics stay off so the batched
// awake runs (the least stream-like code path) are exercised too.
func TestBatchShardingInvariance(t *testing.T) {
	const reps = 500
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	kc := kernelCases(t)[0]
	base := kernelBaseConfig(t, kc, newRech, 100, 7)
	base.Slots = 10_000
	base.Engine = EngineBatch
	base.Batch = reps

	var want *Result
	for _, chunk := range []int{0, 1, 3, 64, reps, 2 * reps} {
		for _, workers := range []int{1, 3, 0} {
			cfg := base
			cfg.BatchChunk = chunk
			cfg.Workers = workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("chunk=%d workers=%d diverged from first run", chunk, workers)
			}
		}
	}
}

// TestBatchAwakeRunsEqualInLaw pins the only intentionally non-identical
// path: with metrics off and Bernoulli recharge the batch engine draws
// one recharge count per certain-activation run instead of one Bernoulli
// per slot. The event and decision streams are untouched, so the event
// trajectory must still match the kernel exactly, and across paired
// seeds the mean QoM difference must be statistically zero (the kernel
// sleep fast-forward's own equivalence protocol).
func TestBatchAwakeRunsEqualInLaw(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	for _, kc := range kernelCases(t) {
		const seeds = 16
		var diffs []float64
		for seed := uint64(1); seed <= seeds; seed++ {
			cfg := kernelBaseConfig(t, kc, newRech, 100, seed)

			cfg.Engine = EngineKernel
			ker, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = EngineBatch
			bat, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if bat.Events != ker.Events {
				t.Fatalf("%s seed=%d: event streams diverged (%d vs %d)", kc.name, seed, bat.Events, ker.Events)
			}
			diffs = append(diffs, bat.QoM-ker.QoM)
		}
		var mean, sd float64
		for _, d := range diffs {
			mean += d
		}
		mean /= float64(len(diffs))
		for _, d := range diffs {
			sd += (d - mean) * (d - mean)
		}
		sd = math.Sqrt(sd / float64(len(diffs)-1))
		tol := 4*sd/math.Sqrt(float64(len(diffs))) + 5e-3
		if math.Abs(mean) > tol {
			t.Errorf("%s: mean QoM difference %v exceeds %v (sd %v)", kc.name, mean, tol, sd)
		}
	}
}

// TestBatchAutoAndFallback checks engine selection around Batch: auto
// with an eligible config picks the batch engine; auto with an ineligible
// config and forced per-run engines aggregate the replications through
// individual runs at the paired seeds.
func TestBatchAutoAndFallback(t *testing.T) {
	const reps = 4
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	kc := kernelCases(t)[0]
	base := kernelBaseConfig(t, kc, newRech, 100, 9)
	base.Slots = 5_000
	base.Batch = reps

	forced := base
	forced.Engine = EngineBatch
	want, err := Run(forced)
	if err != nil {
		t.Fatal(err)
	}
	auto := base
	auto.Engine = EngineAuto
	got, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("auto with Batch=%d did not match forced batch engine", reps)
	}

	// Forced reference engine: the replications run individually.
	ref := base
	ref.Engine = EngineReference
	agg, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Sensors) != reps {
		t.Fatalf("fallback returned %d sensor blocks, want %d", len(agg.Sensors), reps)
	}
	var events, captures int64
	for r := 0; r < reps; r++ {
		sub := base
		sub.Batch = 0
		sub.Seed = base.Seed + uint64(r)
		sub.Engine = EngineReference
		one, err := Run(sub)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Sensors[r] != one.Sensors[0] {
			t.Errorf("fallback replication %d diverged", r)
		}
		events += one.Events
		captures += one.Captures
	}
	if agg.Events != events || agg.Captures != captures {
		t.Errorf("fallback totals %d/%d, want %d/%d", agg.Events, agg.Captures, events, captures)
	}

	// Auto with an ineligible (stateful) policy still honors Batch via
	// the fallback.
	stateful := base
	stateful.Engine = EngineAuto
	stateful.NewPolicy = func(int) Policy { return &EBCW{PYes: 0.9, PNo: 0.1} }
	res, err := Run(stateful)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sensors) != reps {
		t.Errorf("ineligible auto batch returned %d sensor blocks, want %d", len(res.Sensors), reps)
	}
}

// TestBatchForcedRejectsIneligible mirrors the kernel's enumeration: a
// forced EngineBatch must refuse every ineligible configuration —
// everything the kernel refuses, plus a slot tracer — rather than
// silently degrading.
func TestBatchForcedRejectsIneligible(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	base := func() Config {
		cfg := kernelBaseConfig(t, kernelCases(t)[0], newRech, 100, 1)
		cfg.Batch = 4
		return cfg
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"multiple sensors", func(c *Config) { c.N = 2 }},
		{"trace", func(c *Config) { c.Trace = func(TraceRecord) {} }},
		{"tracer", func(c *Config) { c.Tracer = trace.New(nil, trace.NewFlightRecorder(32)) }},
		{"timeline", func(c *Config) { c.SampleEvery = 100 }},
		{"fault injection", func(c *Config) { c.FailAt = map[int]int64{0: 10} }},
		{"stateful policy", func(c *Config) {
			c.NewPolicy = func(int) Policy { return &EBCW{PYes: 0.9, PNo: 0.1} }
		}},
		{"vector-fi without full info", func(c *Config) { c.Info = PartialInfo }},
		{"non-fast-forward recharge", func(c *Config) {
			c.NewRecharge = func() energy.Recharge { r, _ := energy.NewClippedGaussian(0.5, 0.1); return r }
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		cfg.Engine = EngineBatch
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: forced batch engine did not reject", tc.name)
		}
		// EngineAuto must still honor Batch for the same config via the
		// fallback paths.
		cfg.Engine = EngineAuto
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: auto fallback failed: %v", tc.name, err)
		}
	}
}

// TestBatchValidation covers the new Config fields' validation.
func TestBatchValidation(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	cfg := kernelBaseConfig(t, kernelCases(t)[0], newRech, 100, 1)
	cfg.Batch = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative Batch accepted")
	}
	cfg.Batch = 0
	cfg.BatchChunk = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative BatchChunk accepted")
	}
}
