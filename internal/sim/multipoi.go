package sim

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/rng"
)

// Multi-PoI simulation (extension; see core.OptimizeMultiPoI): one
// full-information sensor watches several independent renewal event
// streams but can monitor at most one per slot.

// PoIPolicy decides which PoI to monitor each slot.
type PoIPolicy interface {
	// Name identifies the policy.
	Name() string
	// Choose returns the PoI to monitor (0-based) and whether to
	// activate, given the full-information ages (slots since each PoI's
	// last event).
	Choose(slot int64, ages []int, battery float64) (int, bool)
	// Reset restores initial state.
	Reset()
}

// MaxHazardThreshold is the calibrated index policy: monitor the PoI with
// the highest current hazard; activate iff that hazard reaches Threshold.
type MaxHazardThreshold struct {
	Dists     []dist.Interarrival
	Threshold float64
}

var _ PoIPolicy = (*MaxHazardThreshold)(nil)

// Name implements PoIPolicy.
func (m *MaxHazardThreshold) Name() string { return "max-hazard-threshold" }

// Choose implements PoIPolicy.
func (m *MaxHazardThreshold) Choose(_ int64, ages []int, _ float64) (int, bool) {
	bestPoI, bestHazard := 0, -1.0
	for i, d := range m.Dists {
		if h := d.Hazard(ages[i]); h > bestHazard {
			bestPoI, bestHazard = i, h
		}
	}
	return bestPoI, bestHazard >= m.Threshold
}

// Reset implements PoIPolicy.
func (m *MaxHazardThreshold) Reset() {}

// RoundRobinPoI cycles through the PoIs with a fixed per-PoI duty: it
// monitors PoI (t mod M) and activates every 1/duty slots on average —
// the blind baseline that ignores hazards entirely.
type RoundRobinPoI struct {
	M    int
	Duty float64
}

var _ PoIPolicy = (*RoundRobinPoI)(nil)

// Name implements PoIPolicy.
func (r *RoundRobinPoI) Name() string { return "round-robin-poi" }

// Choose implements PoIPolicy. Duty <= 0 never activates, Duty >= 1
// activates every slot, and in between the period is the rounded (not
// floored) reciprocal: flooring would bias the effective duty upward
// (Duty = 0.3 → period 3 ≈ duty 0.33 instead of period 3.33).
func (r *RoundRobinPoI) Choose(slot int64, _ []int, _ float64) (int, bool) {
	poi := int(slot % int64(r.M))
	if r.Duty <= 0 {
		return poi, false
	}
	period := int64(1)
	if r.Duty < 1 {
		period = int64(math.Round(1 / r.Duty))
		if period < 1 {
			period = 1
		}
	}
	return poi, slot%period == 0
}

// Reset implements PoIPolicy.
func (r *RoundRobinPoI) Reset() {}

// MultiPoIConfig configures a multi-PoI run.
type MultiPoIConfig struct {
	Dists       []dist.Interarrival
	Params      core.Params
	NewRecharge func() energy.Recharge
	Policy      PoIPolicy
	BatteryCap  float64
	Slots       int64
	Seed        uint64
}

// MultiPoIResult is the outcome of a multi-PoI run.
type MultiPoIResult struct {
	Slots    int64
	Events   int64 // across all PoIs
	Captures int64
	QoM      float64
	PerPoI   []struct{ Events, Captures int64 }
}

// RunMultiPoI simulates a single full-information sensor over several
// independent event streams.
func RunMultiPoI(cfg MultiPoIConfig) (*MultiPoIResult, error) {
	if len(cfg.Dists) == 0 {
		return nil, fmt.Errorf("sim: RunMultiPoI needs at least one PoI")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewRecharge == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("sim: RunMultiPoI needs a recharge factory and a policy")
	}
	if !(cfg.BatteryCap > 0) || cfg.Slots < 1 {
		return nil, fmt.Errorf("sim: invalid battery capacity %g or duration %d", cfg.BatteryCap, cfg.Slots)
	}

	root := rng.New(cfg.Seed, 0x90110) // seedflow:ok run-root: the multi-PoI engine's root stream, derived from Config.Seed
	decisionSrc := root.Split(1)
	rechargeSrc := root.Split(2)
	battery, err := energy.NewBattery(cfg.BatteryCap, cfg.BatteryCap/2)
	if err != nil {
		return nil, err
	}
	recharge := cfg.NewRecharge()
	cfg.Policy.Reset()

	m := len(cfg.Dists)
	next := make([]int64, m)
	last := make([]int64, m)
	eventSrcs := make([]*rng.Source, m)
	for i, d := range cfg.Dists {
		eventSrcs[i] = root.Split(uint64(100 + i))
		next[i] = int64(d.Sample(eventSrcs[i]))
	}

	res := &MultiPoIResult{Slots: cfg.Slots}
	res.PerPoI = make([]struct{ Events, Captures int64 }, m)
	cost := cfg.Params.ActivationCost()
	ages := make([]int, m)

	for t := int64(1); t <= cfg.Slots; t++ {
		battery.Recharge(recharge.Next(rechargeSrc))
		for i := range ages {
			ages[i] = int(t - last[i])
		}
		poi, wantActive := cfg.Policy.Choose(t, ages, battery.Level())
		if poi < 0 || poi >= m {
			return nil, fmt.Errorf("sim: policy chose PoI %d of %d", poi, m)
		}
		active := wantActive && battery.CanConsume(cost)
		_ = decisionSrc // reserved for randomized PoI policies
		if active {
			battery.Consume(cfg.Params.Delta1)
		}
		for i, d := range cfg.Dists {
			if t != next[i] {
				continue
			}
			res.Events++
			res.PerPoI[i].Events++
			if active && i == poi {
				battery.Consume(cfg.Params.Delta2)
				res.Captures++
				res.PerPoI[i].Captures++
			}
			last[i] = t
			next[i] = t + int64(d.Sample(eventSrcs[i]))
		}
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	return res, nil
}
