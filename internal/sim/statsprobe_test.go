package sim

import (
	"reflect"
	"testing"

	"eventcap/internal/stats"
)

// statsCases extends metricsCases with the engines the metrics suite
// reaches through other tests: the round-robin fleet kernel, the batch
// engine, and the batch fallback.
func statsCases(t *testing.T) map[string]Config {
	cases := metricsCases(t)

	fleet := kernelBaseConfig(t, kernelCases(t)[0], constantFactory(t, 0.5), 100, 1)
	fleet.N = 3
	fleet.Mode = ModeRoundRobin
	fleet.Engine = EngineKernel
	cases["fleet-kernel"] = fleet

	batch := kernelBaseConfig(t, kernelCases(t)[0], constantFactory(t, 0.5), 100, 1)
	batch.Slots = 20000
	batch.Batch = 30
	cases["batch"] = batch

	fallback := batch
	fallback.Engine = EngineReference
	cases["batch-fallback"] = fallback

	return cases
}

// TestStatsDoNotChangeResults is the RNG-neutrality contract of
// Config.Stats: the probe must leave every other Result field
// byte-identical, on every execution path.
func TestStatsDoNotChangeResults(t *testing.T) {
	for name, cfg := range statsCases(t) {
		cfg.Stats = false
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg.Stats = true
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Stats == nil {
			t.Fatalf("%s: Stats requested but nil", name)
		}
		got.Stats = nil // the only field allowed to differ
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: stats probe changed the run:\nwith    %+v\nwithout %+v", name, got, want)
		}
	}
}

// TestStatsWithMetricsDoNotChangeResults: the probe composes with
// Metrics (they share the battery sampling stride) without disturbing
// either's output.
func TestStatsWithMetricsDoNotChangeResults(t *testing.T) {
	for name, cfg := range statsCases(t) {
		cfg.Metrics = true
		cfg.Stats = false
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg.Stats = true
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Errorf("%s: probe changed the metrics:\nwith    %+v\nwithout %+v", name, got.Metrics, want.Metrics)
		}
		got.Stats, want.Stats = nil, nil
		got.Metrics, want.Metrics = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: probe changed the run under metrics", name)
		}
	}
}

// TestStatsReportConsistency pins the report's totals to the Result
// and its shape to the engine: batch paths report per-replication CIs,
// per-run paths batch means with a battery summary.
func TestStatsReportConsistency(t *testing.T) {
	for name, cfg := range statsCases(t) {
		cfg.Stats = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := res.Stats
		if r.Events != res.Events || r.Captures != res.Captures {
			t.Errorf("%s: report totals %d/%d, result %d/%d", name, r.Events, r.Captures, res.Events, res.Captures)
		}
		if r.Mean != res.QoM {
			t.Errorf("%s: report mean %v != QoM %v", name, r.Mean, res.QoM)
		}
		batch := cfg.Batch > 1
		if batch {
			if r.Method != stats.MethodReplication {
				t.Errorf("%s: method %q, want replication", name, r.Method)
			}
			if r.Count != int64(cfg.Batch) {
				t.Errorf("%s: %d replication samples, want %d", name, r.Count, cfg.Batch)
			}
			if r.Battery != nil {
				t.Errorf("%s: batch path reported a battery summary", name)
			}
		} else {
			if r.Method != stats.MethodBatchMeans {
				t.Errorf("%s: method %q, want batch-means", name, r.Method)
			}
			if r.Battery == nil {
				t.Errorf("%s: no battery summary", name)
			} else {
				b := r.Battery
				if b.Count == 0 || b.Mean < 0 || b.Mean > 1 || b.P10 > b.P50 || b.P50 > b.P90 {
					t.Errorf("%s: battery summary %+v", name, b)
				}
			}
		}
		if r.Level != stats.DefaultCILevel {
			t.Errorf("%s: no CI in %+v", name, r)
		}
		// A run that captures every event has a legitimately degenerate
		// (zero-width) interval; otherwise the CI must be usable.
		if r.Variance > 0 && (r.HalfWidth <= 0 || r.RelHalfWidth <= 0) {
			t.Errorf("%s: unusable CI in %+v", name, r)
		}
	}
}

// TestKernelStatsMatchReference: under deterministic recharge the
// kernel sees the same event sequence in the same order as the
// reference engine, so the QoM side of the report must match bit for
// bit — sleep-run bulk misses and per-slot misses are the same stream.
// (The battery streams legitimately differ: the kernel samples awake
// slots only.)
func TestKernelStatsMatchReference(t *testing.T) {
	for _, kc := range kernelCases(t) {
		for _, batteryCap := range []float64{7, 100} {
			cfg := kernelBaseConfig(t, kc, constantFactory(t, 0.5), batteryCap, 2)
			cfg.Stats = true

			cfg.Engine = EngineReference
			ref, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s K=%g: reference: %v", kc.name, batteryCap, err)
			}
			cfg.Engine = EngineKernel
			ker, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s K=%g: kernel: %v", kc.name, batteryCap, err)
			}
			r, k := *ref.Stats, *ker.Stats
			r.Battery, k.Battery = nil, nil
			if !reflect.DeepEqual(r, k) {
				t.Errorf("%s K=%g: kernel stats diverge:\nkernel    %+v\nreference %+v", kc.name, batteryCap, k, r)
			}
		}
	}
}

// TestStatsSink: interim reports stream during the run and the final
// sink report equals Result.Stats.
func TestStatsSink(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Engine = EngineReference
	var got []stats.Report
	cfg.StatsSink = func(r stats.Report) { got = append(got, r) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("StatsSink alone must imply the probe")
	}
	if len(got) == 0 {
		t.Fatal("sink saw no reports")
	}
	last := got[len(got)-1]
	if !reflect.DeepEqual(last, *res.Stats) {
		t.Fatalf("final sink report %+v != Result.Stats %+v", last, *res.Stats)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Events < got[i-1].Events {
			t.Fatalf("report %d went backwards: %d < %d events", i, got[i].Events, got[i-1].Events)
		}
	}
}
