package sim

import (
	"math"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
)

func multiPoIDists(t testing.TB) []dist.Interarrival {
	t.Helper()
	w1 := mustWeibull(t, 40, 3)
	w2 := mustWeibull(t, 25, 2)
	u, err := dist.NewUniformInt(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Interarrival{w1, w2, u}
}

// TestMultiPoIAnalyticMatchesSim: the equilibrium-age calibration of the
// threshold index policy predicts the simulated QoM and energy use.
func TestMultiPoIAnalyticMatchesSim(t *testing.T) {
	dists := multiPoIDists(t)
	p := core.DefaultParams()
	const e = 0.4
	cal, err := core.OptimizeMultiPoI(dists, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if cal.EnergyRate > e*(1+1e-6)+1e-9 {
		t.Fatalf("calibrated energy %v exceeds budget", cal.EnergyRate)
	}
	res, err := RunMultiPoI(MultiPoIConfig{
		Dists:       dists,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.5, e/0.5),
		Policy:      &MaxHazardThreshold{Dists: dists, Threshold: cal.Threshold},
		BatteryCap:  1000,
		Slots:       1_000_000,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.QoM-cal.CaptureProb) > 0.04 {
		t.Fatalf("simulated QoM %v vs analytic %v", res.QoM, cal.CaptureProb)
	}
	// Total event rate must match the analytic one.
	gotRate := float64(res.Events) / float64(res.Slots)
	if math.Abs(gotRate-cal.EventRate) > 0.05*cal.EventRate {
		t.Fatalf("event rate %v vs analytic %v", gotRate, cal.EventRate)
	}
}

// TestMultiPoIThresholdBeatsRoundRobin: exploiting hazards across streams
// must beat blind cycling at equal energy.
func TestMultiPoIThresholdBeatsRoundRobin(t *testing.T) {
	dists := multiPoIDists(t)
	p := core.DefaultParams()
	const e = 0.4
	cal, err := core.OptimizeMultiPoI(dists, e, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol PoIPolicy, seed uint64) float64 {
		res, err := RunMultiPoI(MultiPoIConfig{
			Dists:       dists,
			Params:      p,
			NewRecharge: bernoulliFactory(t, 0.5, e/0.5),
			Policy:      pol,
			BatteryCap:  1000,
			Slots:       800_000,
			Seed:        seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoM
	}
	idx := run(&MaxHazardThreshold{Dists: dists, Threshold: cal.Threshold}, 1)
	// Round robin with the duty the same energy could sustain blindly.
	duty := e / p.SaturationRate(20) // rough per-slot affordability
	rr := run(&RoundRobinPoI{M: len(dists), Duty: duty}, 2)
	if idx < rr+0.05 {
		t.Fatalf("index policy %v not clearly above round robin %v", idx, rr)
	}
}

// TestRoundRobinPoIChoose pins the duty semantics: Duty <= 0 never
// activates (it used to mean "every slot"), Duty >= 1 activates every
// slot, and fractional duties use the rounded reciprocal period — the
// floored period overshot the requested duty (0.3 → period 3 ≈ 0.33).
func TestRoundRobinPoIChoose(t *testing.T) {
	activeRate := func(duty float64) float64 {
		pol := &RoundRobinPoI{M: 3, Duty: duty}
		const slots = 10_000
		var active int
		for slot := int64(1); slot <= slots; slot++ {
			poi, on := pol.Choose(slot, nil, 100)
			if want := int(slot % 3); poi != want {
				t.Fatalf("duty=%g slot %d: chose PoI %d, want %d", duty, slot, poi, want)
			}
			if on {
				active++
			}
		}
		return float64(active) / slots
	}
	if got := activeRate(0); got != 0 {
		t.Errorf("Duty=0 activated at rate %v, want never", got)
	}
	if got := activeRate(-0.5); got != 0 {
		t.Errorf("Duty=-0.5 activated at rate %v, want never", got)
	}
	if got := activeRate(1); got != 1 {
		t.Errorf("Duty=1 activated at rate %v, want every slot", got)
	}
	if got := activeRate(1.5); got != 1 {
		t.Errorf("Duty=1.5 activated at rate %v, want every slot", got)
	}
	// Duty=0.3: rounded period is 3 (best integer approximation); the old
	// floor also gave 3 here, so probe a duty where rounding matters.
	// Duty=0.28 → 1/duty ≈ 3.57 → rounded period 4 (rate 0.25), floored
	// period 3 (rate 0.33) overshoots the duty by 19%.
	if got := activeRate(0.28); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Duty=0.28 activated at rate %v, want 0.25 (period 4)", got)
	}
	if got := activeRate(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Duty=0.5 activated at rate %v, want 0.5", got)
	}
}

func TestMultiPoIValidation(t *testing.T) {
	p := core.DefaultParams()
	if _, err := RunMultiPoI(MultiPoIConfig{Params: p}); err == nil {
		t.Fatal("empty PoI list accepted")
	}
	dists := multiPoIDists(t)
	if _, err := RunMultiPoI(MultiPoIConfig{Dists: dists, Params: core.Params{}}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := RunMultiPoI(MultiPoIConfig{Dists: dists, Params: p}); err == nil {
		t.Fatal("missing recharge/policy accepted")
	}
	cfg := MultiPoIConfig{
		Dists:       dists,
		Params:      p,
		NewRecharge: constantFactory(t, 0.5),
		Policy:      &RoundRobinPoI{M: 3, Duty: 0.5},
		BatteryCap:  0,
		Slots:       100,
	}
	if _, err := RunMultiPoI(cfg); err == nil {
		t.Fatal("zero battery accepted")
	}
}

func TestOptimizeMultiPoIValidation(t *testing.T) {
	p := core.DefaultParams()
	if _, err := core.OptimizeMultiPoI(nil, 0.5, p); err == nil {
		t.Fatal("no PoIs accepted")
	}
	dists := multiPoIDists(t)
	if _, err := core.OptimizeMultiPoI(dists, -1, p); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := core.OptimizeMultiPoI(dists, 0.5, core.Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestMultiPoISinglePoIConsistency: with one PoI the index policy reduces
// to a threshold on the equilibrium hazard; its analytic QoM must lie
// within [0, FI optimum].
func TestMultiPoISinglePoIConsistency(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	const e = 0.5
	cal, err := core.OptimizeMultiPoI([]dist.Interarrival{d}, e, p)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := core.GreedyFI(d, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if cal.CaptureProb > fi.CaptureProb+1e-6 {
		t.Fatalf("threshold policy %v beats the FI optimum %v", cal.CaptureProb, fi.CaptureProb)
	}
	if cal.CaptureProb <= 0 {
		t.Fatalf("degenerate capture probability %v", cal.CaptureProb)
	}
}
