package sim

import (
	"fmt"

	"eventcap/internal/core"
)

// VectorFI executes an activation Vector against the full-information
// state h_i (slots since the last event) — the runtime form of the greedy
// policy π*_FI of Theorem 1.
type VectorFI struct {
	Vector core.Vector
	Label  string
}

var _ Policy = (*VectorFI)(nil)

// Name implements Policy.
func (v *VectorFI) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-fi"
}

// ActivationProb implements Policy.
func (v *VectorFI) ActivationProb(s SlotState) float64 {
	if s.SinceEvent < 0 {
		// Full information unavailable: fail safe by sleeping.
		return 0
	}
	return v.Vector.At(s.SinceEvent)
}

// Observe implements Policy (stateless).
func (v *VectorFI) Observe(Outcome) {}

// Reset implements Policy (stateless).
func (v *VectorFI) Reset() {}

// Compile implements Compilable: the vector indexed by slots since the
// last event. The kernel only accepts this kind under FullInfo, matching
// ActivationProb's fail-safe sleep when h_i is unavailable.
func (v *VectorFI) Compile() (CompiledPolicy, error) {
	t, err := core.CompileVector(v.Vector)
	if err != nil {
		return CompiledPolicy{}, err
	}
	return CompiledPolicy{Table: t, State: StateSinceEvent}, nil
}

// VectorPI executes an activation Vector against the partial-information
// state f_i (slots since the last captured event) — the runtime form of
// the clustering policy π'_PI and of the belief-threshold policy's
// induced vector.
type VectorPI struct {
	Vector core.Vector
	Label  string
}

var _ Policy = (*VectorPI)(nil)

// Name implements Policy.
func (v *VectorPI) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-pi"
}

// ActivationProb implements Policy.
func (v *VectorPI) ActivationProb(s SlotState) float64 {
	return v.Vector.At(s.SinceCapture)
}

// Observe implements Policy (stateless).
func (v *VectorPI) Observe(Outcome) {}

// Reset implements Policy (stateless).
func (v *VectorPI) Reset() {}

// Compile implements Compilable: the vector indexed by slots since the
// last capture.
func (v *VectorPI) Compile() (CompiledPolicy, error) {
	t, err := core.CompileVector(v.Vector)
	if err != nil {
		return CompiledPolicy{}, err
	}
	return CompiledPolicy{Table: t, State: StateSinceCapture}, nil
}

// Aggressive is the paper's π_AG baseline: activate whenever the energy
// gate B_t >= δ1 + δ2 allows (the gate itself is enforced by the engine).
type Aggressive struct{}

var _ Policy = (*Aggressive)(nil)

// Name implements Policy.
func (Aggressive) Name() string { return "aggressive" }

// ActivationProb implements Policy.
func (Aggressive) ActivationProb(SlotState) float64 { return 1 }

// Observe implements Policy.
func (Aggressive) Observe(Outcome) {}

// Reset implements Policy.
func (Aggressive) Reset() {}

// Compile implements Compilable: a constant always-on table. There are no
// zero states to skip, but the kernel's monomorphic loop still runs it.
func (Aggressive) Compile() (CompiledPolicy, error) {
	t, err := core.CompileVector(core.Vector{Tail: 1})
	if err != nil {
		return CompiledPolicy{}, err
	}
	return CompiledPolicy{Table: t, State: StateSinceCapture}, nil
}

// Periodic is the paper's π_PE baseline: θ1 active slots in every window
// of θ2 slots, positionally on the absolute slot number. Combined with
// ModeBlocks and BlockLen = θ2 this realizes the multi-sensor periodic
// scheme of Section VI-B.
type Periodic struct {
	Theta1, Theta2 int
}

var _ Policy = (*Periodic)(nil)

// NewPeriodic builds the baseline, rounding the real-valued θ2 up so the
// policy never overdraws its energy budget.
func NewPeriodic(theta1 int, theta2 float64) (*Periodic, error) {
	if theta1 < 1 {
		return nil, fmt.Errorf("sim: θ1 must be >= 1, got %d", theta1)
	}
	t2 := int(theta2)
	if float64(t2) < theta2 {
		t2++
	}
	if t2 < theta1 {
		t2 = theta1
	}
	return &Periodic{Theta1: theta1, Theta2: t2}, nil
}

// Name implements Policy.
func (p *Periodic) Name() string { return fmt.Sprintf("periodic(%d/%d)", p.Theta1, p.Theta2) }

// ActivationProb implements Policy.
func (p *Periodic) ActivationProb(s SlotState) float64 {
	if int((s.Slot-1)%int64(p.Theta2)) < p.Theta1 {
		return 1
	}
	return 0
}

// Observe implements Policy.
func (p *Periodic) Observe(Outcome) {}

// Reset implements Policy.
func (p *Periodic) Reset() {}

// Compile implements Compilable: θ1 ones then θ2−θ1 zeros over the slot
// phase. The zero tail never applies (states stay within the modulus; the
// kernel caps sleep runs at the phase wrap).
func (p *Periodic) Compile() (CompiledPolicy, error) {
	if p.Theta1 < 1 || p.Theta2 < p.Theta1 {
		return CompiledPolicy{}, fmt.Errorf("sim: cannot compile periodic(%d/%d)", p.Theta1, p.Theta2)
	}
	prefix := make([]float64, p.Theta2)
	for i := 0; i < p.Theta1; i++ {
		prefix[i] = 1
	}
	t, err := core.CompileVector(core.Vector{Prefix: prefix})
	if err != nil {
		return CompiledPolicy{}, err
	}
	return CompiledPolicy{Table: t, State: StateSlotPhase, Modulus: p.Theta2}, nil
}

// EBCW is the runtime form of the last-observation policy class of Jaggi
// et al. [6] (see core.OptimizeEBCW): activate with probability PYes
// while the most recent observation was an event, PNo otherwise.
type EBCW struct {
	PYes, PNo float64

	lastObsEvent bool
}

var _ Policy = (*EBCW)(nil)

// NewEBCW wraps an optimized core.EBCWPolicy for execution.
func NewEBCW(pol *core.EBCWPolicy) *EBCW {
	return &EBCW{PYes: pol.PYes, PNo: pol.PNo, lastObsEvent: true}
}

// Name implements Policy.
func (e *EBCW) Name() string { return fmt.Sprintf("ebcw(y=%.3f,n=%.3f)", e.PYes, e.PNo) }

// ActivationProb implements Policy.
func (e *EBCW) ActivationProb(SlotState) float64 {
	if e.lastObsEvent {
		return e.PYes
	}
	return e.PNo
}

// Observe implements Policy: only active slots yield observations.
func (e *EBCW) Observe(o Outcome) {
	if o.Active && o.EventKnown {
		e.lastObsEvent = o.Event
	}
}

// Reset implements Policy: the paper assumes a captured event at slot 0.
func (e *EBCW) Reset() { e.lastObsEvent = true }
