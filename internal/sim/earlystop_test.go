package sim

import (
	"reflect"
	"testing"
)

func earlyStopConfig(t *testing.T, batch int) Config {
	cfg := kernelBaseConfig(t, kernelCases(t)[0], constantFactory(t, 0.5), 100, 1)
	cfg.Slots = 20000
	cfg.Batch = batch
	return cfg
}

// TestEarlyStopExhaustedEqualsPlainBatch: with an unreachable target
// the monitor never fires, every replication runs, and the Result must
// be byte-identical to the plain Batch=B run of the same Config.
func TestEarlyStopExhaustedEqualsPlainBatch(t *testing.T) {
	cfg := earlyStopConfig(t, 17) // odd budget: exercises the leftover size-1 round
	cfg.Metrics = true
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, dec, err := RunWithEarlyStop(cfg, EarlyStopOptions{TargetRelHW: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stopped || dec.Reps != 17 || dec.MaxReps != 17 {
		t.Fatalf("decision %+v, want exhausted at 17", dec)
	}
	got.Stats, plain.Stats = nil, nil // CI assembly differs (merged vs streamed Welford)
	if !reflect.DeepEqual(got, plain) {
		t.Errorf("exhausted early-stop run diverged from plain batch:\ngot   %+v\nplain %+v", got, plain)
	}
}

// TestEarlyStopStopsAndIsReproducible is the manifest contract: a run
// that stops at R replications records R, and re-running the same
// Config with Batch=R (no monitor) reproduces it byte-identically.
func TestEarlyStopStopsAndIsReproducible(t *testing.T) {
	cfg := earlyStopConfig(t, 64)
	got, dec, err := RunWithEarlyStop(cfg, EarlyStopOptions{TargetRelHW: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Stopped {
		t.Fatalf("loose target did not stop: %+v", dec)
	}
	if dec.Reps >= dec.MaxReps || dec.Reps < dec.MinReps {
		t.Fatalf("stopping point %+v out of range", dec)
	}
	if dec.RelHalfWidth <= 0 || dec.RelHalfWidth > dec.TargetRelHW {
		t.Fatalf("recorded half-width %v does not satisfy the target %v", dec.RelHalfWidth, dec.TargetRelHW)
	}
	replay := cfg
	replay.Batch = dec.Reps
	want, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	got.Stats, want.Stats = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stopped run is not reproducible from its decision:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestEarlyStopMinReps(t *testing.T) {
	cfg := earlyStopConfig(t, 64)
	_, dec, err := RunWithEarlyStop(cfg, EarlyStopOptions{TargetRelHW: 0.5, MinReps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reps < 8 {
		t.Fatalf("stopped at %d replications, MinReps 8", dec.Reps)
	}

	// Stats flow to the caller when requested.
	cfg.Stats = true
	res, _, err := RunWithEarlyStop(cfg, EarlyStopOptions{TargetRelHW: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Events != res.Events || res.Stats.Mean != res.QoM {
		t.Fatalf("early-stop stats %+v inconsistent with result", res.Stats)
	}
}

func TestEarlyStopValidation(t *testing.T) {
	cfg := earlyStopConfig(t, 8)
	if _, _, err := RunWithEarlyStop(cfg, EarlyStopOptions{}); err == nil {
		t.Fatal("zero target accepted")
	}
	cfg.Batch = 1
	if _, _, err := RunWithEarlyStop(cfg, EarlyStopOptions{TargetRelHW: 0.1}); err == nil {
		t.Fatal("Batch <= 1 accepted")
	}
}
