package sim

import "eventcap/internal/stats"

// statsPublishStride is how many QoM observations (events, or events
// inside merged replications) accumulate between interim StatsSink
// reports. A power of two, purely a publishing cadence: the probe's
// accumulators see every observation regardless.
const statsPublishStride = 1 << 14

// statsBatteryDecimate thins the battery-occupancy stream inside the
// probe: engines hand over every batterySampleStride-th slot (the
// stream Metrics histograms), and the probe keeps every
// statsBatteryDecimate-th of those. The three P² marker updates per
// kept sample are the probe's only per-sample cost that is not O(1)
// cheap, and quantiles of a quasi-stationary occupancy stream are
// insensitive to an 8× thinning — this is what keeps the whole probe
// inside the ≤2% slot-loop budget (TestStatsOverheadWithinBudget).
const statsBatteryDecimate = 8

// StatsProbe accumulates the streaming statistics of DESIGN.md §16
// alongside a run: the per-event QoM indicator stream (batch means →
// CI), per-replication QoM samples on the batch engines, and the
// sampled battery-occupancy stream. It is RNG-neutral under the same
// contract as Metrics and Span — it never consumes a random draw and
// never changes an engine's control flow, so results are
// byte-identical with the probe attached or not (asserted by
// TestStatsDoNotChangeResults).
//
// Engines feed it single-threaded: per-event and per-replication
// observations happen on the coordinating goroutine, and battery
// samples come only from sensor 0's loop, which never overlaps the
// event feed. The probe therefore carries no locks.
type StatsProbe struct {
	qom  stats.BatchMeans
	reps stats.Welford

	repEvents   int64
	repCaptures int64

	bat           stats.Welford
	batSkip       int
	p10, p50, p90 *stats.P2Quantile

	sink      func(stats.Report)
	sinceSink int64
}

// newStatsProbe returns the run's probe, or nil when neither
// Config.Stats nor Config.StatsSink asks for one.
func newStatsProbe(cfg *Config) *StatsProbe {
	if !cfg.Stats && cfg.StatsSink == nil {
		return nil
	}
	return &StatsProbe{
		p10:  stats.NewP2Quantile(0.10),
		p50:  stats.NewP2Quantile(0.50),
		p90:  stats.NewP2Quantile(0.90),
		sink: cfg.StatsSink,
	}
}

// ObserveEvent folds one event's capture indicator into the QoM
// stream, in slot order.
func (sp *StatsProbe) ObserveEvent(captured bool) {
	if captured {
		sp.qom.Add(1)
	} else {
		sp.qom.Add(0)
	}
	sp.maybePublish(1)
}

// ObserveMisses folds n missed events in at once — the kernel's
// fast-forwarded sleep runs resolve their events in bulk. Exactly
// equivalent to n ObserveEvent(false) calls.
func (sp *StatsProbe) ObserveMisses(n int64) {
	if n <= 0 {
		return
	}
	sp.qom.AddN(0, n)
	sp.maybePublish(n)
}

// ObserveBattery folds one battery-occupancy sample (fraction of
// capacity) in. Engines sample sensor 0 every batterySampleStride
// slots, the same stream Metrics histograms; the probe keeps every
// statsBatteryDecimate-th sample (deterministic in the call sequence,
// so reports stay bit-reproducible).
func (sp *StatsProbe) ObserveBattery(frac float64) {
	sp.batSkip++
	if sp.batSkip < statsBatteryDecimate {
		return
	}
	sp.batSkip = 0
	sp.bat.Add(frac)
	sp.p10.Add(frac)
	sp.p50.Add(frac)
	sp.p90.Add(frac)
}

// ObserveReplica folds one replication's event totals in (the batch
// engines observe at replication granularity, mirroring
// Metrics.mergeReplica). Replications are fed in replication order; a
// replication without events contributes to the totals but not to the
// per-replication QoM sample.
func (sp *StatsProbe) ObserveReplica(events, captures int64) {
	sp.repEvents += events
	sp.repCaptures += captures
	if events > 0 {
		sp.reps.Add(float64(captures) / float64(events))
	}
	sp.maybePublish(events)
}

// maybePublish sends an interim report to the sink every
// statsPublishStride QoM observations.
func (sp *StatsProbe) maybePublish(n int64) {
	if sp.sink == nil {
		return
	}
	sp.sinceSink += n
	if sp.sinceSink >= statsPublishStride {
		sp.sinceSink = 0
		sp.sink(sp.Report())
	}
}

// Report builds the probe's current report: the replication method
// when replications were observed, batch means otherwise, plus the
// battery summary when the occupancy stream was sampled.
func (sp *StatsProbe) Report() stats.Report {
	var r stats.Report
	if sp.reps.N > 0 || sp.repEvents > 0 {
		r = stats.ReplicationReport(sp.reps, sp.repEvents, sp.repCaptures, stats.DefaultCILevel)
	} else {
		r = stats.QoMReport(&sp.qom, stats.DefaultCILevel)
	}
	if sp.bat.N > 0 {
		r.Battery = &stats.BatteryReport{
			Count:  sp.bat.N,
			Mean:   sp.bat.Mean,
			StdDev: sp.bat.StdDev(),
			P10:    sp.p10.Value(),
			P50:    sp.p50.Value(),
			P90:    sp.p90.Value(),
		}
	}
	return r
}

// finish attaches the final report to res and sends it to the sink.
// Nil-safe so engine epilogues can call it unconditionally.
func (sp *StatsProbe) finish(res *Result) {
	if sp == nil {
		return
	}
	r := sp.Report()
	res.Stats = &r
	if sp.sink != nil {
		sp.sink(r)
	}
}
