package sim

import "testing"

func TestLoadImbalanceCases(t *testing.T) {
	mk := func(activations ...int64) *Result {
		r := &Result{Sensors: make([]SensorStats, len(activations))}
		for i, a := range activations {
			r.Sensors[i].Activations = a
		}
		return r
	}
	cases := []struct {
		name string
		res  *Result
		want float64
	}{
		{"no sensors", &Result{}, 0},
		{"single sensor", mk(42), 0},
		{"balanced", mk(10, 10, 10), 0},
		{"all zero activations", mk(0, 0, 0), 0},
		{"unbalanced", mk(10, 30), 1}, // (30-10)/mean 20
		{"one idle sensor", mk(0, 30), 2},
	}
	for _, tc := range cases {
		if got := tc.res.LoadImbalance(); got != tc.want {
			t.Errorf("%s: LoadImbalance = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTimelineSamplingBoundaries pins the sampling contract at the
// edges: a window equal to the horizon yields exactly one point (at the
// final slot), and a horizon not divisible by the window yields only the
// complete windows — the trailing partial window is never sampled.
func TestTimelineSamplingBoundaries(t *testing.T) {
	run := func(slots, every int64) *Result {
		cfg := baseConfig(t)
		cfg.Slots = slots
		cfg.SampleEvery = every
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run(5000, 5000)
	if len(res.Timeline) != 1 {
		t.Fatalf("SampleEvery == horizon: %d points, want 1", len(res.Timeline))
	}
	if p := res.Timeline[0]; p.Slot != 5000 || p.QoM != res.QoM {
		t.Errorf("final point %+v, want slot 5000 with running QoM %v", p, res.QoM)
	}

	res = run(5000, 1500) // 3 complete windows; the last 500 slots unsampled
	if len(res.Timeline) != 3 {
		t.Fatalf("indivisible horizon: %d points, want 3", len(res.Timeline))
	}
	for i, p := range res.Timeline {
		if want := int64(1500 * (i + 1)); p.Slot != want {
			t.Errorf("point %d at slot %d, want %d", i, p.Slot, want)
		}
	}

	if res := run(5000, 0); res.Timeline != nil {
		t.Errorf("SampleEvery 0 produced %d points", len(res.Timeline))
	}
}
