package sim

import (
	"math"
	"reflect"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
)

// kernelCase is one policy/info combination used by the equivalence tests.
type kernelCase struct {
	name      string
	info      Info
	newPolicy func() Policy
}

func kernelCases(t *testing.T) []kernelCase {
	t.Helper()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := core.GreedyFI(d, 0.5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := NewPeriodic(3, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	return []kernelCase{
		{"greedy-fi", FullInfo, func() Policy { return &VectorFI{Vector: fi.Policy} }},
		{"vector-pi-tail", PartialInfo, func() Policy {
			return &VectorPI{Vector: core.Vector{Prefix: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0.5}, Tail: 1}}
		}},
		{"vector-pi-zero-tail", PartialInfo, func() Policy {
			return &VectorPI{Vector: core.Vector{Prefix: []float64{0, 1, 0.25}, Tail: 0}}
		}},
		{"aggressive", FullInfo, func() Policy { return Aggressive{} }},
		{"periodic", FullInfo, func() Policy { return periodic }},
	}
}

func kernelBaseConfig(t *testing.T, kc kernelCase, newRecharge func() energy.Recharge, batteryCap float64, seed uint64) Config {
	t.Helper()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dist:        d,
		Params:      core.DefaultParams(),
		NewRecharge: newRecharge,
		NewPolicy:   func(int) Policy { return kc.newPolicy() },
		BatteryCap:  batteryCap,
		Slots:       50_000,
		Seed:        seed,
		Info:        kc.info,
	}
}

// TestKernelByteIdenticalDeterministicRecharge is the kernel's core
// contract: under deterministic recharge every field of Result — counts,
// QoM, and the floating-point battery totals — must match the reference
// engine bit for bit, for every compilable policy shape and for batteries
// both comfortable (K=100) and starved (K=7, exercising the Denied path).
func TestKernelByteIdenticalDeterministicRecharge(t *testing.T) {
	recharges := []struct {
		name string
		make func() energy.Recharge
	}{
		{"uniform-0.5", func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }},
		{"periodic-5-per-10", func() energy.Recharge { r, _ := energy.NewPeriodic(5, 10); return r }},
	}
	for _, kc := range kernelCases(t) {
		for _, rc := range recharges {
			for _, batteryCap := range []float64{7, 100} {
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := kernelBaseConfig(t, kc, rc.make, batteryCap, seed)

					cfg.Engine = EngineReference
					want, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s/%s K=%g: reference: %v", kc.name, rc.name, batteryCap, err)
					}
					cfg.Engine = EngineKernel
					got, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s/%s K=%g: kernel: %v", kc.name, rc.name, batteryCap, err)
					}
					// The Engine field is bookkeeping and differs by
					// construction; every physical field must still match.
					if got.Engine != EngineKernel || want.Engine != EngineReference {
						t.Fatalf("%s/%s K=%g seed=%d: engines %v/%v, want kernel/reference",
							kc.name, rc.name, batteryCap, seed, got.Engine, want.Engine)
					}
					got.Engine = want.Engine
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s K=%g seed=%d:\nkernel    %+v\nreference %+v",
							kc.name, rc.name, batteryCap, seed, got, want)
					}
				}
			}
		}
	}
}

// TestKernelAutoSelectsKernel checks that EngineAuto picks the kernel for
// an eligible config: its result must be byte-identical to the forced
// kernel (which in turn matches the reference by the test above).
func TestKernelAutoSelectsKernel(t *testing.T) {
	kc := kernelCases(t)[0]
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	cfg := kernelBaseConfig(t, kc, newRech, 100, 11)

	cfg.Engine = EngineKernel
	forced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineAuto
	auto, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, forced) {
		t.Errorf("auto %+v != forced kernel %+v", auto, forced)
	}
}

// TestKernelStatisticalEquivalenceBernoulli checks the stochastic-recharge
// contract: kernel and reference simulate the same process law, so across
// seeds the paired QoM differences must be centered on zero. The pairing
// (shared event and decision streams per seed) keeps the differences small
// and the test sharp.
func TestKernelStatisticalEquivalenceBernoulli(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	for _, kc := range kernelCases(t) {
		const seeds = 16
		var diffs []float64
		for seed := uint64(1); seed <= seeds; seed++ {
			cfg := kernelBaseConfig(t, kc, newRech, 100, seed)
			cfg.Slots = 100_000

			cfg.Engine = EngineReference
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = EngineKernel
			ker, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ker.Events != ref.Events {
				t.Fatalf("%s seed=%d: event streams diverged (%d vs %d)", kc.name, seed, ker.Events, ref.Events)
			}
			diffs = append(diffs, ker.QoM-ref.QoM)
		}
		var mean, sd float64
		for _, d := range diffs {
			mean += d
		}
		mean /= float64(len(diffs))
		for _, d := range diffs {
			sd += (d - mean) * (d - mean)
		}
		sd = math.Sqrt(sd / float64(len(diffs)-1))
		// 4-sigma band on the mean paired difference, with a floor for the
		// (common) case where the engines agree exactly on most seeds.
		tol := 4*sd/math.Sqrt(float64(len(diffs))) + 5e-3
		if math.Abs(mean) > tol {
			t.Errorf("%s: mean QoM difference %v exceeds %v (sd %v)", kc.name, mean, tol, sd)
		}
	}
}

// TestKernelForcedRejectsIneligible enumerates every fallback reason and
// checks EngineKernel refuses rather than silently degrading.
func TestKernelForcedRejectsIneligible(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	base := func() Config {
		return kernelBaseConfig(t, kernelCases(t)[0], newRech, 100, 1)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"multiple sensors", func(c *Config) { c.N = 2 }},
		{"trace", func(c *Config) { c.Trace = func(TraceRecord) {} }},
		{"timeline", func(c *Config) { c.SampleEvery = 100 }},
		{"fault injection", func(c *Config) { c.FailAt = map[int]int64{0: 10} }},
		{"stateful policy", func(c *Config) {
			c.NewPolicy = func(int) Policy { return &EBCW{PYes: 0.9, PNo: 0.1} }
		}},
		{"vector-fi without full info", func(c *Config) { c.Info = PartialInfo }},
		{"non-fast-forward recharge", func(c *Config) {
			c.NewRecharge = func() energy.Recharge { r, _ := energy.NewClippedGaussian(0.5, 0.1); return r }
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		cfg.Engine = EngineKernel
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: forced kernel did not reject", tc.name)
		}
		// EngineAuto must still run the same config via a fallback path.
		cfg.Engine = EngineAuto
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: auto fallback failed: %v", tc.name, err)
		}
	}
}

// TestParseEngine covers the flag mapping.
func TestParseEngine(t *testing.T) {
	for in, want := range map[string]Engine{"auto": EngineAuto, "on": EngineKernel, "off": EngineReference, "batch": EngineBatch} {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseEngine("fast"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}
