package sim

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/energy"
	"eventcap/internal/rng"
)

// The multi-sensor kernel: ModeRoundRobin fleets (M-FI / M-PI and the
// multi-sensor aggressive baseline) share one compiled activation table —
// the in-charge sensor's decision state is global (h resets on every
// event, the broadcast f on every capture, the slot phase is absolute) —
// so the single-sensor kernel's sleep fast-forward generalizes over the
// sensor dimension: a run of z zero-probability states silences whichever
// sensors own those slots, and the only per-sensor work is advancing N
// batteries through their own recharge streams.
//
// RNG stream layout (must equal the reference engine's for byte-identity
// under deterministic recharge): root rng.New(Seed, 0x5eed), event
// Split(1), shared decision Split(2), then recharge Split(100+s) for
// s = 0..N-1 in sensor order. Per slot the reference consumes one
// recharge draw per sensor — each from its own stream, so batching a
// sleep run's n draws per sensor is exactly n sequential draws — and one
// decision draw iff the in-charge sensor's probability is positive, which
// is precisely the awake-slot condition here. Under Bernoulli recharge
// each sensor's sleep run collapses to one exact Binomial(n, q) draw and
// results agree in law (the energy.FastForwarder contract).

// runKernelMulti executes the compiled fast path for a round-robin fleet
// (plan.n > 1). Sensor ownership of awake slot t is (t-1) mod N — the
// same modulus mechanics as StateSlotPhase, but folded into per-slot
// attribution only: sleep runs are ownership-agnostic (nobody decides),
// so they never split on sensor boundaries.
func runKernelMulti(cfg Config, plan *kernelPlan) (*Result, error) {
	n := plan.n
	root := rng.New(cfg.Seed, 0x5eed) // seedflow:ok run-root: must equal the reference engine's root for byte-identity
	eventSrc := root.Split(1)
	decisionSrc := root.Split(2)
	// Dense battery block: one cache-friendly value slice instead of N
	// heap pointers; FastForward and the awake slot take &batteries[s].
	batteries := make([]energy.Battery, n)
	for s := 0; s < n; s++ {
		b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
		if err != nil {
			return nil, err
		}
		batteries[s] = *b
	}
	rechargeSrcs := make([]*rng.Source, n)
	for s := 0; s < n; s++ {
		rechargeSrcs[s] = root.Split(uint64(100 + s))
	}
	for _, p := range plan.policies {
		p.Reset()
	}

	table := plan.table
	recharges := plan.recharges
	cost := cfg.Params.ActivationCost()
	delta1, delta2 := cfg.Params.Delta1, cfg.Params.Delta2

	// Devirtualize the per-awake-slot recharge draws when the whole fleet
	// runs the paper's Bernoulli process (one factory, so in practice all
	// or none); the draws consume the streams exactly as Bernoulli.Next.
	bernQ := make([]float64, n)
	bernC := make([]float64, n)
	isBern := true
	for s, r := range recharges {
		b, ok := r.(*energy.Bernoulli)
		if !ok {
			isBern = false
			break
		}
		bernQ[s], bernC[s] = b.Q(), b.C()
	}

	res := &Result{Slots: cfg.Slots, Sensors: make([]SensorStats, n), Engine: EngineKernel}
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	sprobe := newStatsProbe(&cfg)
	// Same accumulator discipline as runKernel: per-awake-slot metric
	// state stays in locals and flushes once at the end. Occupancy tracks
	// sensor 0 every stride-th awake slot (the kernel convention).
	invCap := 1 / cfg.BatteryCap
	binScale := batteryBins * invCap
	costGate := cost - 1e-12
	var obsSlots, outage int64
	var fracSum float64
	sampleCountdown := int64(math.MaxInt64)
	if m != nil || sprobe != nil {
		sampleCountdown = batterySampleStride
	}

	// The paper assumes an event (and capture) at slot 0.
	lastEvent, lastCapture := int64(0), int64(0)
	nextEvent := int64(cfg.Dist.Sample(eventSrc))
	nn := int64(n)

	t := int64(1)
	for t <= cfg.Slots {
		var st int64
		switch plan.state {
		case StateSinceEvent:
			st = t - lastEvent
		case StateSinceCapture:
			st = t - lastCapture
		default:
			st = (t-1)%plan.modulus + 1
		}

		if z := table.ZeroRunFrom(int(st)); z > 0 {
			// Sleep run: every sensor owning a slot in the run would read
			// the same zero-probability state, so the whole fleet stays
			// silent for the next run slots (no decision draws, no
			// consumption) and all N batteries fast-forward together.
			run := z
			if plan.state == StateSlotPhase {
				if wrap := plan.modulus - st + 1; run > wrap {
					run = wrap
				}
			}
			if left := cfg.Slots - t + 1; run > left {
				run = left
			}
			eventsBefore := res.Events
			if plan.state == StateSinceEvent && nextEvent-t+1 <= run {
				// The event resets h to 1 for the following slot, ending
				// the run at the (slept-through) event slot itself.
				run = nextEvent - t + 1
				for s := 0; s < n; s++ {
					recharges[s].FastForward(&batteries[s], run, rechargeSrcs[s])
				}
				res.Events++
				lastEvent = nextEvent
				nextEvent += int64(cfg.Dist.Sample(eventSrc))
			} else {
				for s := 0; s < n; s++ {
					recharges[s].FastForward(&batteries[s], run, rechargeSrcs[s])
				}
				// SinceCapture and SlotPhase states ignore events; drain
				// any that fall inside the run in arrival order.
				end := t + run - 1
				for nextEvent <= end {
					res.Events++
					lastEvent = nextEvent
					nextEvent += int64(cfg.Dist.Sample(eventSrc))
				}
			}
			if m != nil {
				// KernelSlotsFastForwarded counts slots, not sensor-slots:
				// one run of length run skips run slots for the whole
				// fleet, preserving awake = Slots − FastForwarded.
				m.KernelRuns++
				m.KernelSlotsFastForwarded += run
				m.MissAsleep += res.Events - eventsBefore
			}
			if sprobe != nil {
				sprobe.ObserveMisses(res.Events - eventsBefore)
			}
			t += run
			continue
		}

		// Awake slot: replicate the reference engine's slot exactly —
		// every sensor recharges, only the in-charge sensor decides.
		if isBern {
			for s := 0; s < n; s++ {
				if rechargeSrcs[s].Bernoulli(bernQ[s]) {
					batteries[s].Recharge(bernC[s])
				}
			}
		} else {
			for s := 0; s < n; s++ {
				batteries[s].Recharge(recharges[s].Next(rechargeSrcs[s]))
			}
		}
		event := t == nextEvent
		charge := int((t - 1) % nn)
		battery := &batteries[charge]
		p := table.At(int(st))
		captured, denied := false, false
		if decisionSrc.Bernoulli(p) {
			if !battery.CanConsume(cost) {
				res.Sensors[charge].Denied++
				denied = true
			} else {
				battery.Consume(delta1)
				res.Sensors[charge].Activations++
				if event {
					battery.Consume(delta2)
					res.Sensors[charge].Captures++
					res.Captures++
					lastCapture = t
					captured = true
				}
			}
		}
		if event {
			res.Events++
			lastEvent = t
			nextEvent = t + int64(cfg.Dist.Sample(eventSrc))
			if m != nil && !captured {
				if denied {
					m.MissNoEnergy++
				} else {
					m.MissAsleep++
				}
			}
			if sprobe != nil {
				sprobe.ObserveEvent(captured)
			}
		}
		// End-of-slot battery sample on every stride-th awake slot,
		// matching the single-sensor kernel's convention.
		sampleCountdown--
		if sampleCountdown == 0 {
			sampleCountdown = batterySampleStride
			lvl := batteries[0].Level()
			if m != nil {
				obsSlots++
				fracSum += lvl * invCap
				bin := int(lvl * binScale)
				if bin >= batteryBins {
					bin = batteryBins - 1
				}
				m.BatteryHist[bin]++
				if lvl < costGate {
					outage++
				}
			}
			if sprobe != nil {
				sprobe.ObserveBattery(lvl * invCap)
			}
		}
		t++
	}

	for s := 0; s < n; s++ {
		st := &res.Sensors[s]
		st.EnergyConsumed = batteries[s].Consumed()
		st.OverflowLost = batteries[s].OverflowLost()
		st.FinalBattery = batteries[s].Level()
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	recordEngine(res.Engine)
	if m != nil {
		m.ObservedSlots = obsSlots
		m.BatteryFracSum = fracSum
		m.EnergyOutageSlots = outage
		// An activation on an event slot always captures, so wasted
		// (no-event) activations are exactly activations − captures.
		for i := range res.Sensors {
			m.WastedActivations += res.Sensors[i].Activations - res.Sensors[i].Captures
		}
		m.publish(res)
	}
	sprobe.finish(res)
	return res, nil
}

// indepSensorPlan is one decoupled sensor's compiled fast path in the
// independent-sensor engine (ModeAll + PartialInfo): its own activation
// table over its own capture clock, plus its own prepared recharge.
// Unlike the round-robin plan the tables need not match across sensors —
// each sensor's trajectory is fully private.
type indepSensorPlan struct {
	table    *core.ActivationTable
	state    StateKind
	modulus  int64
	policy   Policy
	recharge energy.FastForwarder
}

// compileIndependent probes whether every sensor of an independent
// configuration (cfg.independentSensors() == true) can run the compiled
// per-sensor loop inside runIndependent. Fault injection stays eligible —
// a dead independent sensor is a clean truncation of its own loop, not an
// interleaving change. Slot tracing needs the interpreted per-slot view.
func compileIndependent(cfg *Config) ([]indepSensorPlan, fallback) {
	if cfg.Tracer != nil {
		return nil, fallback{"tracer", "slot tracing of independent sensors"}
	}
	plans := make([]indepSensorPlan, cfg.N)
	for s := 0; s < cfg.N; s++ {
		pol := cfg.NewPolicy(s)
		comp, ok := pol.(Compilable)
		if !ok {
			return nil, fallback{"policy", fmt.Sprintf("policy %s is not compilable", pol.Name())}
		}
		cp, err := comp.Compile()
		if err != nil {
			return nil, fallback{"policy", err.Error()}
		}
		if cp.Table == nil || cp.State == 0 {
			return nil, fallback{"policy", fmt.Sprintf("policy %s compiled to an incomplete plan", pol.Name())}
		}
		if cp.State == StateSinceEvent {
			// Independent sensors are partial-information by definition.
			return nil, fallback{"info", fmt.Sprintf("policy %s needs full information", pol.Name())}
		}
		if cp.State == StateSlotPhase && cp.Modulus < 1 {
			return nil, fallback{"policy", fmt.Sprintf("policy %s compiled with modulus %d", pol.Name(), cp.Modulus)}
		}
		rech := cfg.NewRecharge()
		ff, ok := rech.(energy.FastForwarder)
		if !ok {
			return nil, fallback{"recharge", fmt.Sprintf("recharge %s cannot fast-forward", rech.Name())}
		}
		if prep, ok := rech.(energy.FastForwardPreparer); ok {
			prep.PrepareFastForward(prepareRunLength)
		}
		plans[s] = indepSensorPlan{
			table:    cp.Table,
			state:    cp.State,
			modulus:  int64(cp.Modulus),
			policy:   pol,
			recharge: ff,
		}
	}
	return plans, fallback{}
}
