package sim

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/energy"
	"eventcap/internal/obs"
	"eventcap/internal/rng"
	"eventcap/internal/trace"
)

// Engine selects the simulation engine.
type Engine int

const (
	// EngineAuto (the default) uses the compiled kernel whenever the
	// configuration is eligible and the reference engine otherwise.
	EngineAuto Engine = iota
	// EngineReference forces the interpreted per-slot engine.
	EngineReference
	// EngineKernel forces the compiled kernel; Run fails when the
	// configuration is ineligible.
	EngineKernel
	// EngineBatch forces the mega-batch engine (Config.Batch replications
	// of a compiled single-sensor configuration in one call); Run fails
	// when the configuration is ineligible. EngineAuto picks it on its own
	// whenever Batch > 1 and the configuration compiles.
	EngineBatch
)

// ParseEngine maps the -kernel flag values onto engines.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto":
		return EngineAuto, nil
	case "on":
		return EngineKernel, nil
	case "off":
		return EngineReference, nil
	case "batch":
		return EngineBatch, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want auto, on, off, or batch)", s)
}

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineReference:
		return "reference"
	case EngineKernel:
		return "kernel"
	case EngineBatch:
		return "batch"
	default:
		return "auto"
	}
}

// StateKind identifies which scalar drives a compiled policy's activation
// probability. The kernel fast-forwards differently per kind because each
// state evolves differently across a sleep run.
type StateKind int

const (
	// StateSinceEvent is the full-information state h_i = slots since the
	// last event. It resets when an event occurs — even one the sensor
	// sleeps through — so a sleep run ends at the next event slot.
	StateSinceEvent StateKind = iota + 1
	// StateSinceCapture is the partial-information state f_i = slots since
	// the last capture. A sleeping sensor cannot capture, so the state
	// ticks up deterministically across any sleep run; events occurring
	// inside the run are drained in one batch.
	StateSinceCapture
	// StateSlotPhase is the absolute slot phase (t-1) mod Modulus + 1 used
	// by the periodic baseline; it too is untouched by sleeping.
	StateSlotPhase
)

// CompiledPolicy is a stationary policy lowered to a dense activation
// table over one of the supported state kinds.
type CompiledPolicy struct {
	Table *core.ActivationTable
	State StateKind
	// Modulus is the phase period for StateSlotPhase (ignored otherwise).
	Modulus int
}

// Compilable is implemented by policies the kernel can execute. A
// compilable policy must be stateless at runtime: ActivationProb may
// depend only on the declared state kind, and Observe/Reset must be
// no-ops, because the kernel never delivers outcomes for skipped slots.
type Compilable interface {
	Policy
	Compile() (CompiledPolicy, error)
}

// prepareRunLength is the sleep-run length hint handed to
// FastForwardPreparer recharges at compile time: long enough to cover the
// inter-arrival gaps of every paper workload, small enough that the
// precomputed tables stay in cache.
const prepareRunLength = 128

// fallback is a declined fast-engine dispatch: a fixed machine slug
// keying one of the sim.engine.fallback.* counters, plus the
// human-readable reason used in forced-engine errors. The slug set is
// closed — every compile reject below maps onto exactly one counter, so
// production runs that land on an interpreted path are diagnosable from
// the metrics alone.
type fallback struct {
	slug   string
	reason string
}

// record counts the decline. Run calls it only on EngineAuto dispatch
// decisions — a forced engine either runs or errors, and neither is a
// fallback.
func (f fallback) record() {
	switch f.slug {
	case "mode":
		obs.SimFallbackMode.Inc()
	case "trace":
		obs.SimFallbackTrace.Inc()
	case "timeline":
		obs.SimFallbackTimeline.Inc()
	case "fault":
		obs.SimFallbackFault.Inc()
	case "policy":
		obs.SimFallbackPolicy.Inc()
	case "info":
		obs.SimFallbackInfo.Inc()
	case "recharge":
		obs.SimFallbackRecharge.Inc()
	case "tracer":
		obs.SimFallbackTracer.Inc()
	case "mismatch":
		obs.SimFallbackMismatch.Inc()
	}
}

// kernelPlan is a validated, instantiated kernel configuration. For
// n == 1 the scalar policy/recharge fields drive runKernel and the batch
// worker; for n > 1 (ModeRoundRobin) the per-sensor slices drive
// runKernelMulti, with the scalars aliasing index 0.
type kernelPlan struct {
	table    *core.ActivationTable
	state    StateKind
	modulus  int64
	policy   Policy
	recharge energy.FastForwarder

	n         int
	policies  []Policy
	recharges []energy.FastForwarder
}

// samePlan reports whether two compiled policies lowered to the same
// table, bit for bit. Round-robin sensors share one activation table, so
// every sensor must compile identically — equal-in-law is not enough for
// the kernel's byte-identity contract.
func samePlan(a, b CompiledPolicy) bool {
	if a.State != b.State || a.Modulus != b.Modulus ||
		len(a.Table.Prob) != len(b.Table.Prob) {
		return false
	}
	if math.Float64bits(a.Table.Tail) != math.Float64bits(b.Table.Tail) {
		return false
	}
	for i := range a.Table.Prob {
		if math.Float64bits(a.Table.Prob[i]) != math.Float64bits(b.Table.Prob[i]) {
			return false
		}
	}
	return true
}

// compileKernel probes whether cfg (already validated) can run on the
// kernel. It returns the plan, or nil and the fallback (counter slug +
// human-readable reason). Checks are ordered cheapest first; factories
// only run when the structural checks pass.
//
// Multi-sensor configurations compile when the mode is ModeRoundRobin:
// the in-charge sensor's decision state (h, f, or slot phase) is shared
// across the fleet — h and the broadcast f reset on global occurrences,
// the phase is absolute — so one activation table covers every sensor,
// provided all N policies compile to identical tables.
func compileKernel(cfg *Config) (*kernelPlan, fallback) {
	if cfg.N != 1 && cfg.Mode != ModeRoundRobin {
		return nil, fallback{"mode", fmt.Sprintf("%d sensors without round-robin coordination", cfg.N)}
	}
	if cfg.Trace != nil {
		return nil, fallback{"trace", "per-slot trace requested"}
	}
	if cfg.SampleEvery > 0 {
		return nil, fallback{"timeline", "timeline sampling requested"}
	}
	if len(cfg.FailAt) > 0 {
		return nil, fallback{"fault", "fault injection requested"}
	}
	if cfg.N != 1 && cfg.Tracer != nil {
		// The multi-sensor kernel carries no span/record instrumentation;
		// traced fleet runs stay on the reference engine.
		return nil, fallback{"tracer", "slot tracing of a multi-sensor run"}
	}
	pol := cfg.NewPolicy(0)
	comp, ok := pol.(Compilable)
	if !ok {
		return nil, fallback{"policy", fmt.Sprintf("policy %s is not compilable", pol.Name())}
	}
	cp, err := comp.Compile()
	if err != nil {
		return nil, fallback{"policy", err.Error()}
	}
	if cp.Table == nil || cp.State == 0 {
		return nil, fallback{"policy", fmt.Sprintf("policy %s compiled to an incomplete plan", pol.Name())}
	}
	if cp.State == StateSinceEvent && cfg.Info != FullInfo {
		return nil, fallback{"info", fmt.Sprintf("policy %s needs full information", pol.Name())}
	}
	if cp.State == StateSlotPhase && cp.Modulus < 1 {
		return nil, fallback{"policy", fmt.Sprintf("policy %s compiled with modulus %d", pol.Name(), cp.Modulus)}
	}
	plan := &kernelPlan{
		table:     cp.Table,
		state:     cp.State,
		modulus:   int64(cp.Modulus),
		n:         cfg.N,
		policies:  make([]Policy, cfg.N),
		recharges: make([]energy.FastForwarder, cfg.N),
	}
	plan.policies[0] = pol
	for s := 1; s < cfg.N; s++ {
		ps := cfg.NewPolicy(s)
		cs, ok := ps.(Compilable)
		if !ok {
			return nil, fallback{"mismatch", fmt.Sprintf("sensor %d policy %s is not compilable", s, ps.Name())}
		}
		cps, err := cs.Compile()
		if err != nil {
			return nil, fallback{"mismatch", fmt.Sprintf("sensor %d: %v", s, err)}
		}
		if !samePlan(cp, cps) {
			return nil, fallback{"mismatch", fmt.Sprintf("sensor %d compiles to a different table than sensor 0", s)}
		}
		plan.policies[s] = ps
	}
	for s := 0; s < cfg.N; s++ {
		rech := cfg.NewRecharge()
		ff, ok := rech.(energy.FastForwarder)
		if !ok {
			return nil, fallback{"recharge", fmt.Sprintf("recharge %s cannot fast-forward", rech.Name())}
		}
		if prep, ok := rech.(energy.FastForwardPreparer); ok {
			prep.PrepareFastForward(prepareRunLength)
		}
		plan.recharges[s] = ff
	}
	plan.policy = plan.policies[0]
	plan.recharge = plan.recharges[0]
	return plan, fallback{}
}

// runKernel executes the compiled fast path. It reproduces the reference
// engine's RNG stream layout (event Split(1), decision Split(2), recharge
// Split(100)) and its draw-consumption pattern — zero-probability slots
// consume no decision draws in either engine — so under deterministic
// recharge the Result is byte-identical to the reference; under stochastic
// recharge the recharge stream is consumed in batches and results agree in
// law (see energy.FastForwarder).
func runKernel(cfg Config, plan *kernelPlan) (*Result, error) {
	ex := cfg.Span.Child("exec.kernel")
	defer ex.End()
	ex.Count("slots", cfg.Slots)
	ex.Count("sensors", int64(plan.n))
	defer cfg.Progress.FinishWork(cfg.Slots * int64(plan.n))
	if plan.n > 1 {
		return runKernelMulti(cfg, plan)
	}
	root := rng.New(cfg.Seed, 0x5eed) // seedflow:ok run-root: must equal the reference engine's root for byte-identity
	eventSrc := root.Split(1)
	decisionSrc := root.Split(2)
	battery, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
	if err != nil {
		return nil, err
	}
	rechargeSrc := root.Split(100)
	plan.policy.Reset()

	table := plan.table
	rech := plan.recharge
	cost := cfg.Params.ActivationCost()
	delta1, delta2 := cfg.Params.Delta1, cfg.Params.Delta2

	// Devirtualize the per-awake-slot recharge draw for the paper's
	// default Bernoulli process; the draw below consumes the recharge
	// stream exactly as Bernoulli.Next would.
	var bernQ, bernC float64
	bern, isBern := rech.(*energy.Bernoulli)
	if isBern {
		bernQ, bernC = bern.Q(), bern.C()
	}

	res := &Result{Slots: cfg.Slots, Sensors: make([]SensorStats, 1), Engine: EngineKernel}
	stats := &res.Sensors[0]
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	sprobe := newStatsProbe(&cfg)
	// Per-awake-slot metric accumulators stay in locals (registers)
	// inside the loop and flush into m once at the end, keeping the
	// instrumented kernel within the slot-loop overhead budget of
	// DESIGN.md §9. costGate mirrors energy.Battery.CanConsume.
	invCap := 1 / cfg.BatteryCap
	binScale := batteryBins * invCap
	costGate := cost - 1e-12
	var obsSlots, outage int64
	var fracSum float64
	// sampleCountdown strides the battery observation over awake slots:
	// it costs one decrement-and-test per awake slot whether metrics are
	// on or off (off starts from MaxInt64 and never fires), so enabling
	// collection only pays for every batterySampleStride-th observation.
	sampleCountdown := int64(math.MaxInt64)
	if m != nil || sprobe != nil {
		sampleCountdown = batterySampleStride
	}

	// Tracing: awake slots always decide with nonzero probability (a
	// zero-probability state would have been a sleep run), so every
	// awake slot is decision-relevant and gets a record; each sleep run
	// becomes one compressed span. partialH mirrors the reference
	// engine's h = -1 under partial information, keeping the two
	// engines' records comparable for tracetool diff.
	tr := cfg.Tracer
	partialH := cfg.Info == PartialInfo
	// Cached sinks: the awake-slot loop records directly (one Rec copy
	// per slot) instead of through tr.Slot's fan-out.
	var trWriter *trace.Writer
	var trFlight *trace.FlightRecorder
	if tr != nil {
		trWriter, trFlight = tr.Writer(), tr.Recorder()
		tr.RunStart(trace.RunInfo{
			Engine:     trace.EngineKernel,
			Sensors:    1,
			Seed:       cfg.Seed,
			Slots:      cfg.Slots,
			BatteryCap: cfg.BatteryCap,
			Cost:       cost,
			Policy:     plan.policy.Name(),
			Dist:       cfg.Dist.Name(),
			Recharge:   rech.Name(),
		})
	}

	// The paper assumes an event (and capture) at slot 0.
	lastEvent, lastCapture := int64(0), int64(0)
	nextEvent := int64(cfg.Dist.Sample(eventSrc))

	t := int64(1)
	for t <= cfg.Slots {
		var st int64
		switch plan.state {
		case StateSinceEvent:
			st = t - lastEvent
		case StateSinceCapture:
			st = t - lastCapture
		default:
			st = (t-1)%plan.modulus + 1
		}

		if z := table.ZeroRunFrom(int(st)); z > 0 {
			// Sleep run: the policy stays silent for the next z slots (no
			// decision draws, no consumption), unless the state machine
			// intervenes first.
			n := z
			if plan.state == StateSlotPhase {
				if wrap := plan.modulus - st + 1; n > wrap {
					n = wrap
				}
			}
			if left := cfg.Slots - t + 1; n > left {
				n = left
			}
			eventsBefore := res.Events
			var probe energy.SpanProbe
			if tr != nil {
				probe = battery.BeginSpan()
			}
			if plan.state == StateSinceEvent && nextEvent-t+1 <= n {
				// The event resets h to 1 for the following slot, ending
				// the run at the (slept-through) event slot itself.
				n = nextEvent - t + 1
				rech.FastForward(battery, n, rechargeSrc)
				res.Events++
				lastEvent = nextEvent
				nextEvent += int64(cfg.Dist.Sample(eventSrc))
			} else {
				rech.FastForward(battery, n, rechargeSrc)
				// SinceCapture and SlotPhase states ignore events, so any
				// number of events may fall inside the run; drain them in
				// arrival order to keep the event stream aligned.
				end := t + n - 1
				for nextEvent <= end {
					res.Events++
					lastEvent = nextEvent
					nextEvent += int64(cfg.Dist.Sample(eventSrc))
				}
			}
			if tr != nil {
				sp := trace.Span{
					Start:     t,
					Len:       n,
					Events:    res.Events - eventsBefore,
					State:     uint8(plan.state),
					Delivered: battery.EndSpan(probe),
					Battery:   battery.Level(),
				}
				if trWriter != nil {
					trWriter.Span(sp)
				}
				if trFlight != nil {
					trFlight.Span(sp)
				}
			}
			if m != nil {
				// Every event inside a sleep run is a policy-scheduled
				// miss: the sensor slept through it by construction.
				m.KernelRuns++
				m.KernelSlotsFastForwarded += n
				m.MissAsleep += res.Events - eventsBefore
			}
			if sprobe != nil {
				sprobe.ObserveMisses(res.Events - eventsBefore)
			}
			t += n
			continue
		}

		// Awake slot: replicate the reference engine's slot exactly.
		var amt float64
		if isBern {
			if rechargeSrc.Bernoulli(bernQ) {
				amt = bernC
				battery.Recharge(bernC)
			}
		} else {
			amt = rech.Next(rechargeSrc)
			battery.Recharge(amt)
		}
		event := t == nextEvent
		p := table.At(int(st))
		// Decision-time states and battery, captured before the slot
		// mutates them, mirroring the reference engine's records.
		var h, f int64
		var preLvl float64
		if tr != nil {
			h = t - lastEvent
			if partialH {
				h = -1
			}
			f = t - lastCapture
			preLvl = battery.Level()
		}
		captured, denied, active := false, false, false
		if decisionSrc.Bernoulli(p) {
			if !battery.CanConsume(cost) {
				stats.Denied++
				denied = true
			} else {
				active = true
				battery.Consume(delta1)
				stats.Activations++
				if event {
					battery.Consume(delta2)
					stats.Captures++
					res.Captures++
					lastCapture = t
					captured = true
				}
			}
		}
		if event {
			res.Events++
			lastEvent = t
			nextEvent = t + int64(cfg.Dist.Sample(eventSrc))
			if m != nil && !captured {
				if denied {
					m.MissNoEnergy++
				} else {
					m.MissAsleep++
				}
			}
			if sprobe != nil {
				sprobe.ObserveEvent(captured)
			}
			if tr != nil && !captured && denied {
				tr.OutageMiss(t)
			}
		}
		if tr != nil {
			// Awake slots always decide with p > 0, so every one is
			// decision-relevant regardless of Full().
			var flags uint8
			if event {
				flags |= trace.FlagEvent
			}
			if active {
				flags |= trace.FlagActive
				if event {
					flags |= trace.FlagCaptured
				}
			}
			if denied {
				flags |= trace.FlagDenied
			}
			if trWriter != nil {
				rec := trace.Rec{
					Slot:     t,
					Sensor:   0,
					Engine:   trace.EngineKernel,
					Flags:    flags,
					H:        int32(h),
					F:        int32(f),
					Prob:     p,
					Battery:  preLvl,
					Recharge: amt,
				}
				trWriter.Rec(rec)
				if trFlight != nil {
					trFlight.Record(&rec)
				}
			} else if trFlight != nil {
				// Flight-only: fields go straight into the ring slot.
				trFlight.RecordSlot(t, 0, trace.EngineKernel, flags,
					int32(h), int32(f), p, preLvl, amt)
			}
		}
		// End-of-slot battery sample on every stride-th awake slot,
		// matching the per-slot engines' end-of-slot semantics.
		sampleCountdown--
		if sampleCountdown == 0 {
			sampleCountdown = batterySampleStride
			lvl := battery.Level()
			if m != nil {
				obsSlots++
				fracSum += lvl * invCap
				bin := int(lvl * binScale)
				if bin >= batteryBins {
					bin = batteryBins - 1
				}
				m.BatteryHist[bin]++
				if lvl < costGate {
					outage++
				}
			}
			if sprobe != nil {
				sprobe.ObserveBattery(lvl * invCap)
			}
		}
		t++
	}

	stats.EnergyConsumed = battery.Consumed()
	stats.OverflowLost = battery.OverflowLost()
	stats.FinalBattery = battery.Level()
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	if tr != nil {
		tr.RunEnd(trace.RunEnd{Events: res.Events, Captures: res.Captures})
	}
	recordEngine(res.Engine)
	if m != nil {
		m.ObservedSlots = obsSlots
		m.BatteryFracSum = fracSum
		m.EnergyOutageSlots = outage
		// An activation on an event slot always captures, so wasted
		// (no-event) activations are exactly activations − captures.
		m.WastedActivations = stats.Activations - stats.Captures
		m.publish(res)
	}
	sprobe.finish(res)
	return res, nil
}
