package sim

import (
	"eventcap/internal/obs"
)

// batteryBins mirrors obs.BatteryBins for files in this package that
// don't otherwise import obs (the engines' hand-inlined hot loops).
const batteryBins = obs.BatteryBins

// batterySampleStride is the battery-observation stride: occupancy is
// sampled on every stride-th slot (per-slot engines) or every stride-th
// awake slot (kernel) rather than on all of them, so the instrumented
// loops stay within the ≤2% overhead budget of DESIGN.md §9 (a full
// observation costs several ns — a large fraction of a ~30ns reference
// slot). The battery level mixes over thousands of slots, so a 32-slot
// stride loses nothing statistically; ObservedSlots is always the
// denominator. Must be a power of two (the per-slot stride check
// compiles to one AND).
const batterySampleStride = 32

// Metrics is the per-run observability block collected when
// Config.Metrics is set: the energy accounting behind the single QoM
// number. Collection is RNG-neutral (it never draws from any random
// stream, so enabling it cannot change a run's outputs) and
// allocation-free in the slot loop (the struct is fixed-size and
// allocated once per run).
//
// Every event of the run falls into exactly one of three classes, so
//
//	Captures + MissAsleep + MissNoEnergy == Events
//
// always holds (Result.Captures is the capture count):
//
//   - captured: some sensor activated in the event's slot and had the
//     energy for it;
//   - MissNoEnergy: no sensor captured, but at least one deciding
//     sensor chose to activate and was blocked by the energy gate —
//     the miss is energy starvation;
//   - MissAsleep: every deciding sensor slept through the slot (policy
//     choice, zero activation probability, or a dead sensor) — the
//     miss is the policy's sleeping schedule.
//
// Battery occupancy (ObservedSlots, BatteryFracSum, BatteryHist,
// EnergyOutageSlots) tracks sensor 0's end-of-slot level (after
// recharge and any consumption) as a fraction of capacity. The per-slot
// engines sample every batterySampleStride-th slot (a fixed stride that
// keeps the instrumented loop inside the overhead budget); the compiled
// kernel samples every batterySampleStride-th awake slot
// (fast-forwarded sleep runs are skipped wholesale — that is the point
// of the kernel), with KernelSlotsFastForwarded counting the slots it
// skipped. ObservedSlots is always the denominator for the battery
// statistics.
type Metrics struct {
	// MissAsleep counts events no sensor attempted to capture.
	MissAsleep int64
	// MissNoEnergy counts events where an activation attempt was blocked
	// by the energy gate and no sensor captured.
	MissNoEnergy int64
	// WastedActivations counts activations spent on slots without an
	// event (energy burned for no capture opportunity). An activation
	// on an event slot always captures, so this equals the per-sensor
	// sum of Activations − Captures; the engines derive it that way
	// after the loop instead of branching per activation.
	WastedActivations int64
	// EnergyOutageSlots counts observed slots where sensor 0 ended the
	// slot unable to afford a full capture (level below delta1+delta2).
	EnergyOutageSlots int64
	// ObservedSlots is the number of slots battery statistics sampled.
	ObservedSlots int64
	// BatteryFracSum accumulates sensor 0's level/capacity per observed
	// slot; BatteryFracSum / ObservedSlots is the time-weighted mean
	// battery occupancy over the observed slots.
	BatteryFracSum float64
	// BatteryHist bins the observed occupancy fractions into
	// obs.BatteryBins equal-width bins over [0, 1].
	BatteryHist [obs.BatteryBins]int64
	// KernelRuns counts the kernel's fast-forwarded sleep runs, and
	// KernelSlotsFastForwarded the slots they skipped; both stay zero on
	// the reference engine.
	KernelRuns               int64
	KernelSlotsFastForwarded int64
}

// observeBattery records one slot's occupancy fraction (level/capacity).
func (m *Metrics) observeBattery(frac float64) {
	m.ObservedSlots++
	m.BatteryFracSum += frac
	bin := int(frac * obs.BatteryBins)
	if bin >= obs.BatteryBins {
		bin = obs.BatteryBins - 1
	}
	if bin < 0 {
		bin = 0
	}
	m.BatteryHist[bin]++
}

// MeanBatteryFrac returns the time-weighted mean occupancy fraction
// over the observed slots (0 when nothing was observed).
func (m *Metrics) MeanBatteryFrac() float64 {
	if m.ObservedSlots == 0 {
		return 0
	}
	return m.BatteryFracSum / float64(m.ObservedSlots)
}

// Merge adds o's counters into m (combining per-sensor partials).
func (m *Metrics) Merge(o *Metrics) {
	m.MissAsleep += o.MissAsleep
	m.MissNoEnergy += o.MissNoEnergy
	m.WastedActivations += o.WastedActivations
	m.EnergyOutageSlots += o.EnergyOutageSlots
	m.ObservedSlots += o.ObservedSlots
	m.BatteryFracSum += o.BatteryFracSum
	for i := range m.BatteryHist {
		m.BatteryHist[i] += o.BatteryHist[i]
	}
	m.KernelRuns += o.KernelRuns
	m.KernelSlotsFastForwarded += o.KernelSlotsFastForwarded
}

// mergeReplica folds a later replication's Metrics into a batch
// aggregate: the event-class and kernel counters sum across replications,
// while the battery-occupancy fields (ObservedSlots, BatteryFracSum,
// BatteryHist, EnergyOutageSlots) stay replication 0's — batch results
// define occupancy on replication 0 only, mirroring the multi-sensor
// engines' sensor-0 convention.
func (m *Metrics) mergeReplica(o *Metrics) {
	m.MissAsleep += o.MissAsleep
	m.MissNoEnergy += o.MissNoEnergy
	m.WastedActivations += o.WastedActivations
	m.KernelRuns += o.KernelRuns
	m.KernelSlotsFastForwarded += o.KernelSlotsFastForwarded
}

// publish folds the completed run into the process-wide totals that
// cmd/experiments snapshots into run manifests. Called once per run,
// outside the slot loop.
func (m *Metrics) publish(res *Result) {
	obs.SimEvents.Add(res.Events)
	obs.SimCaptures.Add(res.Captures)
	obs.SimMissAsleep.Add(m.MissAsleep)
	obs.SimMissNoEnergy.Add(m.MissNoEnergy)
	obs.SimWastedActivations.Add(m.WastedActivations)
	obs.SimOutageSlots.Add(m.EnergyOutageSlots)
	obs.SimObservedSlots.Add(m.ObservedSlots)
	obs.SimBatteryFracSum.Add(m.BatteryFracSum)
	for i, n := range m.BatteryHist {
		obs.SimBatteryHist.Add(i, n)
	}
	obs.SimKernelRuns.Add(m.KernelRuns)
	obs.SimKernelSlots.Add(m.KernelSlotsFastForwarded)
}

// recordEngine counts which engine actually executed a run.
func recordEngine(e Engine) {
	switch e {
	case EngineKernel:
		obs.SimRunsKernel.Inc()
	case EngineBatch:
		obs.SimRunsBatch.Inc()
	default:
		obs.SimRunsReference.Inc()
	}
}
