package sim

import (
	"fmt"

	"eventcap/internal/core"
	"eventcap/internal/numeric"
)

// AdaptiveGreedyFI is the unknown-distribution extension of the paper's
// full-information policy: it observes every inter-event gap (full
// information makes gaps visible whether or not the sensor was active),
// maintains an empirical estimate of the inter-arrival distribution, and
// recomputes the Theorem-1 greedy policy from the estimate every
// RecomputeEvery observed events. Until WarmupEvents gaps are seen it
// falls back to a blind energy-balanced coin flip.
type AdaptiveGreedyFI struct {
	// E is the recharge rate to balance against; Params the energy model.
	E      float64
	Params core.Params
	// MaxGap bounds the estimator's support (default 4096).
	MaxGap int
	// RecomputeEvery is the number of observed events between policy
	// recomputations (default 50).
	RecomputeEvery int
	// WarmupEvents is how many gaps to observe before trusting the
	// estimate (default 20).
	WarmupEvents int

	est          *core.GapEstimator
	vec          core.Vector
	havePolicy   bool
	sinceEvent   int
	sinceRefresh int
	warmupProb   float64
	initErr      error
}

var _ Policy = (*AdaptiveGreedyFI)(nil)

// Name implements Policy.
func (a *AdaptiveGreedyFI) Name() string { return "adaptive-greedy-fi" }

func (a *AdaptiveGreedyFI) defaults() {
	if a.MaxGap <= 0 {
		a.MaxGap = 4096
	}
	if a.RecomputeEvery <= 0 {
		a.RecomputeEvery = 50
	}
	if a.WarmupEvents <= 0 {
		a.WarmupEvents = 20
	}
}

// Reset implements Policy.
func (a *AdaptiveGreedyFI) Reset() {
	a.defaults()
	est, err := core.NewGapEstimator(a.MaxGap)
	if err != nil {
		a.initErr = err
		return
	}
	a.est = est
	a.vec = core.Vector{}
	a.havePolicy = false
	a.sinceEvent = 0
	a.sinceRefresh = 0
	// Blind warmup: activate with the probability an energy-balanced
	// memoryless policy could afford if events were "typical" — we do not
	// know μ yet, so use the cheapest safe bound c = e/(δ1+δ2): even if
	// every activation captured an event this underspends.
	a.warmupProb = numeric.Clamp01(a.E / a.Params.ActivationCost())
}

// ActivationProb implements Policy.
func (a *AdaptiveGreedyFI) ActivationProb(s SlotState) float64 {
	if a.initErr != nil || s.SinceEvent < 0 {
		return 0 // misconfigured or not running under full information
	}
	if !a.havePolicy {
		return a.warmupProb
	}
	return a.vec.At(s.SinceEvent)
}

// Observe implements Policy: it counts slots between events and refreshes
// the policy on schedule.
func (a *AdaptiveGreedyFI) Observe(o Outcome) {
	if a.initErr != nil || !o.EventKnown {
		return
	}
	a.sinceEvent++
	if !o.Event {
		return
	}
	a.est.Observe(a.sinceEvent)
	a.sinceEvent = 0
	a.sinceRefresh++
	if a.est.Count() < a.WarmupEvents {
		return
	}
	if a.havePolicy && a.sinceRefresh < a.RecomputeEvery {
		return
	}
	d, err := a.est.Distribution()
	if err != nil {
		return
	}
	fi, err := core.GreedyFI(d, a.E, a.Params)
	if err != nil {
		return
	}
	a.vec = fi.Policy
	a.havePolicy = true
	a.sinceRefresh = 0
}

// Err reports a configuration failure from Reset (nil when healthy).
func (a *AdaptiveGreedyFI) Err() error {
	if a.initErr != nil {
		return fmt.Errorf("sim: adaptive policy initialization: %w", a.initErr)
	}
	return nil
}
