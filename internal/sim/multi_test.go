package sim

import (
	"math"
	"strings"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
)

// TestMFITraceMatchesPaper reproduces the Section V-A worked example: two
// sensors, round-robin slots, greedy policy π*_FI(2e) = (0, 0, 1, 1, ...),
// with the scripted event sequence V = (0,0,0,1,0,1,0). The expected
// 7-slot schedule is the table in the paper.
func TestMFITraceMatchesPaper(t *testing.T) {
	// Scripted events via a deterministic "distribution" is awkward;
	// instead replay the dynamics by hand with the same engine rules.
	vector := core.Vector{Prefix: []float64{0, 0}, Tail: 1} // (0,0,1,1,...)

	// Manual replay of the engine semantics.
	type row struct {
		slot      int
		sensor    int // 1-based in the paper
		event     bool
		state     int // H_t
		action1OK bool
		action2OK bool
	}
	events := []bool{false, false, false, true, false, true, false}
	lastEvent := 0
	var got []row
	for slot := 1; slot <= 7; slot++ {
		sensor := (slot-1)%2 + 1
		h := slot - lastEvent
		active := vector.At(h) == 1
		r := row{slot: slot, sensor: sensor, event: events[slot-1], state: h}
		if sensor == 1 {
			r.action1OK = active
		} else {
			r.action2OK = active
		}
		got = append(got, r)
		if events[slot-1] {
			lastEvent = slot
		}
	}

	// The paper's table: states h1,h2,h3,h4,h1,h2,h1; sensor 1 acts a1 in
	// slot 3 only; sensor 2 acts a1 in slot 4 only.
	wantStates := []int{1, 2, 3, 4, 1, 2, 1}
	wantActive1 := map[int]bool{3: true}
	wantActive2 := map[int]bool{4: true}
	for i, r := range got {
		if r.state != wantStates[i] {
			t.Errorf("slot %d: state h%d, want h%d", r.slot, r.state, wantStates[i])
		}
		if r.action1OK != wantActive1[r.slot] {
			t.Errorf("slot %d: sensor 1 active=%v, want %v", r.slot, r.action1OK, wantActive1[r.slot])
		}
		if r.action2OK != wantActive2[r.slot] {
			t.Errorf("slot %d: sensor 2 active=%v, want %v", r.slot, r.action2OK, wantActive2[r.slot])
		}
	}
}

// TestRoundRobinOnlyInChargeActs verifies the M-FI discipline: a sensor
// never activates outside its assigned slots.
func TestRoundRobinOnlyInChargeActs(t *testing.T) {
	d := mustWeibull(t, 20, 3)
	p := core.DefaultParams()
	const n = 3
	var bad int
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: constantFactory(t, 1),
		NewPolicy:   func(int) Policy { return Aggressive{} },
		N:           n,
		Mode:        ModeRoundRobin,
		BatteryCap:  100,
		Slots:       5000,
		Seed:        3,
		Trace: func(r TraceRecord) {
			for s, a := range r.Actions {
				if a && s != r.InCharge {
					bad++
				}
			}
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d activations by sensors not in charge", bad)
	}
}

// TestBlocksAssignment verifies the multi-PE block rotation: sensor s is
// in charge of block b iff b ≡ s (mod N).
func TestBlocksAssignment(t *testing.T) {
	d := mustWeibull(t, 20, 3)
	cfg := Config{
		Dist:        d,
		Params:      core.DefaultParams(),
		NewRecharge: constantFactory(t, 1),
		NewPolicy:   func(int) Policy { return Aggressive{} },
		N:           2,
		Mode:        ModeBlocks,
		BlockLen:    5,
		BatteryCap:  100,
		Slots:       100,
		Seed:        4,
		Trace: func(r TraceRecord) {
			wantCharge := int(((r.Slot - 1) / 5) % 2)
			if r.InCharge != wantCharge {
				t.Errorf("slot %d: in charge %d, want %d", r.Slot, r.InCharge, wantCharge)
			}
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMultiSensorImprovesQoM: N=4 coordinated sensors beat a single
// sensor under the same per-sensor recharge (the premise of Section V).
func TestMultiSensorImprovesQoM(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	e := 0.1

	run := func(n int) float64 {
		fi, err := core.GreedyFI(d, float64(n)*e, p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Dist:        d,
			Params:      p,
			NewRecharge: bernoulliFactory(t, 0.1, e/0.1),
			NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
			N:           n,
			Mode:        ModeRoundRobin,
			BatteryCap:  1000,
			Slots:       600000,
			Seed:        11,
			Info:        FullInfo,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.QoM
	}
	q1, q4 := run(1), run(4)
	if q4 <= q1+0.05 {
		t.Fatalf("4 sensors (%v) not clearly better than 1 (%v)", q4, q1)
	}
}

// TestMPISharedRenewal: under partial information with round robin, a
// capture by any sensor renews the shared f-state (the broadcast of
// Section V-B). We verify by checking that SinceCapture in traces resets
// after captured slots.
func TestMPISharedRenewal(t *testing.T) {
	d := mustWeibull(t, 20, 2)
	p := core.DefaultParams()
	pi, err := core.OptimizeClustering(d, 1.0, p, core.ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prevCaptured := false
	checked := 0
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: constantFactory(t, 0.5),
		NewPolicy:   func(int) Policy { return &VectorPI{Vector: pi.Vector} },
		N:           2,
		Mode:        ModeRoundRobin,
		BatteryCap:  500,
		Slots:       20000,
		Seed:        5,
		Info:        PartialInfo,
		Trace: func(r TraceRecord) {
			if prevCaptured {
				if r.SinceCapture != 1 {
					t.Errorf("slot %d: SinceCapture=%d after a capture, want 1", r.Slot, r.SinceCapture)
				}
				checked++
			}
			prevCaptured = r.Captured
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no captures occurred; test vacuous")
	}
}

// TestLoadBalanceRoundRobin: with a Weibull workload, M-FI spreads
// activations roughly evenly across sensors (Section V-A's observation
// for "natural" distributions).
func TestLoadBalanceRoundRobin(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.6, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.1, 3),
		NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
		N:           3,
		Mode:        ModeRoundRobin,
		BatteryCap:  1000,
		Slots:       600000,
		Seed:        12,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imb := res.LoadImbalance(); imb > 0.25 {
		t.Fatalf("load imbalance %v too high for Weibull round robin", imb)
	}
}

// TestLoadImbalanceAdversarial reproduces the paper's pathological
// example: β1 = 0, β2 = 1 (deterministic inter-arrival of 2) with two
// sensors makes one sensor do all the work under naive round robin.
func TestLoadImbalanceAdversarial(t *testing.T) {
	det, err := dist.NewDeterministic(2)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFI(det, 2*1.0, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dist:        det,
		Params:      p,
		NewRecharge: constantFactory(t, 1.0),
		NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
		N:           2,
		Mode:        ModeRoundRobin,
		BatteryCap:  1000,
		Slots:       100000,
		Seed:        13,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imb := res.LoadImbalance(); imb < 1.5 {
		t.Fatalf("expected severe imbalance (one sensor idle), got %v", imb)
	}
}

func TestLoadImbalanceEmpty(t *testing.T) {
	r := &Result{Sensors: make([]SensorStats, 3)}
	if r.LoadImbalance() != 0 {
		t.Fatal("no activations should give zero imbalance")
	}
	r2 := &Result{}
	if r2.LoadImbalance() != 0 {
		t.Fatal("no sensors should give zero imbalance")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{&VectorFI{}, "vector-fi"},
		{&VectorFI{Label: "greedy"}, "greedy"},
		{&VectorPI{}, "vector-pi"},
		{Aggressive{}, "aggressive"},
		{&Periodic{Theta1: 3, Theta2: 10}, "periodic(3/10)"},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
	e := NewEBCW(&core.EBCWPolicy{PYes: 1, PNo: 0.25})
	if !strings.HasPrefix(e.Name(), "ebcw(") {
		t.Errorf("EBCW name %q", e.Name())
	}
}

func BenchmarkRunSingleSensor(b *testing.B) {
	d := mustWeibull(b, 40, 3)
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.5, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(b, 0.5, 1),
		NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
		BatteryCap:  1000,
		Slots:       100000,
		Seed:        1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQoMWithinBounds(t *testing.T) {
	res, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.QoM < 0 || res.QoM > 1 {
		t.Fatalf("QoM %v out of [0,1]", res.QoM)
	}
	if math.IsNaN(res.QoM) {
		t.Fatal("QoM is NaN")
	}
}

// TestFaultInjection: a sensor that dies stops activating; under round
// robin its slots go uncovered, reducing QoM versus the healthy fleet.
func TestFaultInjection(t *testing.T) {
	d := mustWeibull(t, 20, 3)
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 3*0.3, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(failAt map[int]int64) *Result {
		res, err := Run(Config{
			Dist:        d,
			Params:      p,
			NewRecharge: constantFactory(t, 0.3),
			NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
			N:           3,
			Mode:        ModeRoundRobin,
			BatteryCap:  500,
			Slots:       300000,
			Seed:        21,
			Info:        FullInfo,
			FailAt:      failAt,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(nil)
	faulty := run(map[int]int64{0: 1000})
	if faulty.QoM >= healthy.QoM-0.02 {
		t.Fatalf("failure did not hurt: healthy %v, faulty %v", healthy.QoM, faulty.QoM)
	}
	if faulty.Sensors[0].Activations >= healthy.Sensors[0].Activations {
		t.Fatal("dead sensor kept activating")
	}
	// A dead sensor must not activate after its failure slot.
	post := int64(0)
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: constantFactory(t, 0.3),
		NewPolicy:   func(int) Policy { return Aggressive{} },
		N:           2,
		Mode:        ModeRoundRobin,
		BatteryCap:  500,
		Slots:       5000,
		Seed:        22,
		FailAt:      map[int]int64{1: 100},
		Trace: func(r TraceRecord) {
			if r.Slot >= 100 && len(r.Actions) > 1 && r.Actions[1] {
				post++
			}
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if post != 0 {
		t.Fatalf("dead sensor activated %d times after failing", post)
	}
}
