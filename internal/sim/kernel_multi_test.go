package sim

import (
	"math"
	"reflect"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/obs"
	"eventcap/internal/trace"
)

// multiKernelConfig is kernelBaseConfig lifted to a round-robin fleet:
// the same policy on every sensor, deciding in turn over one PoI.
func multiKernelConfig(t *testing.T, kc kernelCase, newRecharge func() energy.Recharge, n int, batteryCap float64, seed uint64) Config {
	t.Helper()
	cfg := kernelBaseConfig(t, kc, newRecharge, batteryCap, seed)
	cfg.N = n
	cfg.Mode = ModeRoundRobin
	return cfg
}

// TestMultiKernelByteIdenticalDeterministicRecharge is the fleet version
// of the kernel's core contract: under deterministic recharge every field
// of Result — per-sensor counts, QoM, and the floating-point battery
// totals — must match the reference engine bit for bit, for every
// compilable policy shape, fleet sizes 2/4/8, and batteries both
// comfortable and starved.
func TestMultiKernelByteIdenticalDeterministicRecharge(t *testing.T) {
	recharges := []struct {
		name string
		make func() energy.Recharge
	}{
		{"uniform-0.5", func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }},
		{"periodic-5-per-10", func() energy.Recharge { r, _ := energy.NewPeriodic(5, 10); return r }},
	}
	for _, kc := range kernelCases(t) {
		for _, rc := range recharges {
			for _, n := range []int{2, 4, 8} {
				for _, batteryCap := range []float64{7, 100} {
					for seed := uint64(1); seed <= 3; seed++ {
						cfg := multiKernelConfig(t, kc, rc.make, n, batteryCap, seed)

						cfg.Engine = EngineReference
						want, err := Run(cfg)
						if err != nil {
							t.Fatalf("%s/%s N=%d K=%g: reference: %v", kc.name, rc.name, n, batteryCap, err)
						}
						cfg.Engine = EngineKernel
						got, err := Run(cfg)
						if err != nil {
							t.Fatalf("%s/%s N=%d K=%g: kernel: %v", kc.name, rc.name, n, batteryCap, err)
						}
						if got.Engine != EngineKernel || want.Engine != EngineReference {
							t.Fatalf("%s/%s N=%d K=%g seed=%d: engines %v/%v, want kernel/reference",
								kc.name, rc.name, n, batteryCap, seed, got.Engine, want.Engine)
						}
						got.Engine = want.Engine
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s/%s N=%d K=%g seed=%d:\nkernel    %+v\nreference %+v",
								kc.name, rc.name, n, batteryCap, seed, got, want)
						}
					}
				}
			}
		}
	}
}

// TestMultiKernelAutoSelectsKernel checks that EngineAuto now routes an
// eligible round-robin fleet through the multi kernel.
func TestMultiKernelAutoSelectsKernel(t *testing.T) {
	kc := kernelCases(t)[0]
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	cfg := multiKernelConfig(t, kc, newRech, 4, 100, 11)

	cfg.Engine = EngineKernel
	forced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineAuto
	auto, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != EngineKernel {
		t.Fatalf("auto selected %v, want kernel", auto.Engine)
	}
	if !reflect.DeepEqual(auto, forced) {
		t.Errorf("auto %+v != forced kernel %+v", auto, forced)
	}
}

// TestMultiKernelStatisticalEquivalenceBernoulli checks the fleet
// stochastic-recharge contract on the fig6 shape: kernel and reference
// simulate the same process law, so across seeds the paired QoM
// differences must be centered on zero, and the shared event stream must
// never diverge.
func TestMultiKernelStatisticalEquivalenceBernoulli(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.5, 1); return r }
	for _, kc := range kernelCases(t) {
		const seeds = 16
		var diffs []float64
		for seed := uint64(1); seed <= seeds; seed++ {
			cfg := multiKernelConfig(t, kc, newRech, 4, 100, seed)
			cfg.Slots = 100_000

			cfg.Engine = EngineReference
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = EngineKernel
			ker, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ker.Events != ref.Events {
				t.Fatalf("%s seed=%d: event streams diverged (%d vs %d)", kc.name, seed, ker.Events, ref.Events)
			}
			diffs = append(diffs, ker.QoM-ref.QoM)
		}
		var mean, sd float64
		for _, d := range diffs {
			mean += d
		}
		mean /= float64(len(diffs))
		for _, d := range diffs {
			sd += (d - mean) * (d - mean)
		}
		sd = math.Sqrt(sd / float64(len(diffs)-1))
		tol := 4*sd/math.Sqrt(float64(len(diffs))) + 5e-3
		if math.Abs(mean) > tol {
			t.Errorf("%s: mean QoM difference %v exceeds %v (sd %v)", kc.name, mean, tol, sd)
		}
	}
}

// TestMultiKernelMetricsInvariants runs an instrumented fleet and checks
// the miss decomposition and the kernel's slot accounting: fast-forwarded
// slots are counted once per run (not per sensor), so awake + skipped
// must still tile the horizon.
func TestMultiKernelMetricsInvariants(t *testing.T) {
	kc := kernelCases(t)[1] // vector-pi-tail: long sleep runs
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.3, 1); return r }
	cfg := multiKernelConfig(t, kc, newRech, 8, 50, 5)
	cfg.Engine = EngineKernel
	cfg.Metrics = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m == nil {
		t.Fatal("metrics requested but nil")
	}
	if got := res.Captures + m.MissAsleep + m.MissNoEnergy; got != res.Events {
		t.Errorf("captures+missAsleep+missNoEnergy = %d, want events %d", got, res.Events)
	}
	if m.KernelRuns == 0 || m.KernelSlotsFastForwarded == 0 {
		t.Error("fleet kernel reported no fast-forwarded runs")
	}
	awake := res.Slots - m.KernelSlotsFastForwarded
	if awake < 0 {
		t.Fatalf("fast-forwarded %d slots out of %d", m.KernelSlotsFastForwarded, res.Slots)
	}
	if m.ObservedSlots != awake/batterySampleStride {
		t.Errorf("observed %d battery samples, want awake %d / stride %d = %d",
			m.ObservedSlots, awake, batterySampleStride, awake/batterySampleStride)
	}
}

// TestMultiKernelForcedRejectsIneligible enumerates the fleet-specific
// fallback reasons: EngineKernel must refuse, EngineAuto must still run
// the configuration on a fallback path.
func TestMultiKernelForcedRejectsIneligible(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	base := func() Config {
		return multiKernelConfig(t, kernelCases(t)[0], newRech, 4, 100, 1)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"mode-blocks", func(c *Config) { c.Mode = ModeBlocks; c.BlockLen = 5 }},
		{"mode-all-full-info", func(c *Config) { c.Mode = ModeAll }},
		{"tracer", func(c *Config) { c.Tracer = trace.New(nil, trace.NewFlightRecorder(32)) }},
		{"fault injection", func(c *Config) { c.FailAt = map[int]int64{1: 10} }},
		{"timeline", func(c *Config) { c.SampleEvery = 100 }},
		{"per-sensor policy mismatch", func(c *Config) {
			c.Info = PartialInfo
			c.NewPolicy = func(s int) Policy {
				return &VectorPI{Vector: core.Vector{Prefix: []float64{0, 0.25 * float64(s+1)}, Tail: 1}}
			}
		}},
		{"non-fast-forward recharge", func(c *Config) {
			c.NewRecharge = func() energy.Recharge { r, _ := energy.NewClippedGaussian(0.5, 0.1); return r }
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		cfg.Engine = EngineKernel
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: forced kernel did not reject", tc.name)
		}
		cfg.Engine = EngineAuto
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: auto fallback failed: %v", tc.name, err)
		}
	}
}

// independentKernelConfig is a decoupled fleet (ModeAll + PartialInfo)
// with a compilable per-sensor policy, eligible for the per-sensor
// compiled loop inside runIndependent.
func independentKernelConfig(t *testing.T, newRecharge func() energy.Recharge, n int, seed uint64) Config {
	t.Helper()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dist:        d,
		Params:      core.DefaultParams(),
		NewRecharge: newRecharge,
		NewPolicy: func(int) Policy {
			return &VectorPI{Vector: core.Vector{Prefix: []float64{0, 0, 0, 0, 0.5}, Tail: 1}}
		},
		N:          n,
		Mode:       ModeAll,
		Info:       PartialInfo,
		BatteryCap: 50,
		Slots:      50_000,
		Seed:       seed,
	}
}

// TestIndependentKernelByteIdenticalInterpreted pins the decoupled-fleet
// contract: under deterministic recharge the compiled per-sensor loop
// must reproduce the interpreted independent engine bit for bit — same
// stream layout, same draw consumption, same union aggregation.
func TestIndependentKernelByteIdenticalInterpreted(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.4); return r }
	for _, n := range []int{2, 5} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := independentKernelConfig(t, newRech, n, seed)

			cfg.Engine = EngineReference
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("N=%d seed=%d: reference: %v", n, seed, err)
			}
			cfg.Engine = EngineKernel
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("N=%d seed=%d: kernel: %v", n, seed, err)
			}
			if got.Engine != EngineKernel || want.Engine != EngineReference {
				t.Fatalf("N=%d seed=%d: engines %v/%v, want kernel/reference", n, seed, got.Engine, want.Engine)
			}
			got.Engine = want.Engine
			if !reflect.DeepEqual(got, want) {
				t.Errorf("N=%d seed=%d:\ncompiled    %+v\ninterpreted %+v", n, seed, got, want)
			}
		}
	}
}

// TestIndependentKernelEqualInLawBernoulli is the stochastic counterpart:
// paired seeds, shared event trajectories, QoM differences centered on
// zero.
func TestIndependentKernelEqualInLawBernoulli(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewBernoulli(0.4, 1); return r }
	const seeds = 16
	var diffs []float64
	for seed := uint64(1); seed <= seeds; seed++ {
		cfg := independentKernelConfig(t, newRech, 3, seed)

		cfg.Engine = EngineReference
		ref, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = EngineKernel
		ker, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ker.Events != ref.Events {
			t.Fatalf("seed=%d: event streams diverged (%d vs %d)", seed, ker.Events, ref.Events)
		}
		diffs = append(diffs, ker.QoM-ref.QoM)
	}
	var mean, sd float64
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(len(diffs))
	for _, d := range diffs {
		sd += (d - mean) * (d - mean)
	}
	sd = math.Sqrt(sd / float64(len(diffs)-1))
	tol := 4*sd/math.Sqrt(float64(len(diffs))) + 5e-3
	if math.Abs(mean) > tol {
		t.Errorf("mean QoM difference %v exceeds %v (sd %v)", mean, tol, sd)
	}
}

// TestIndependentKernelFaultTruncation checks fault injection stays
// eligible on the compiled independent path and truncates exactly like
// the interpreted loop: a sensor failing at slot F simulates F-1 slots.
func TestIndependentKernelFaultTruncation(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.4); return r }
	cfg := independentKernelConfig(t, newRech, 3, 9)
	cfg.FailAt = map[int]int64{1: 1000}

	cfg.Engine = EngineReference
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineKernel
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got.Engine = want.Engine
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fault run:\ncompiled    %+v\ninterpreted %+v", got, want)
	}
	healthy := cfg
	healthy.FailAt = nil
	healthy.Engine = EngineKernel
	full, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensors[1].Activations >= full.Sensors[1].Activations {
		t.Errorf("failed sensor activated %d times, healthy run %d — truncation had no effect",
			got.Sensors[1].Activations, full.Sensors[1].Activations)
	}
}

// TestEngineFallbackCounters checks that declined EngineAuto dispatches
// surface as sim.engine.fallback.* observability counters.
func TestEngineFallbackCounters(t *testing.T) {
	newRech := func() energy.Recharge { r, _ := energy.NewConstant(0.5); return r }
	probe := func(name string, mutate func(*Config)) float64 {
		t.Helper()
		cfg := multiKernelConfig(t, kernelCases(t)[0], newRech, 3, 100, 1)
		cfg.Slots = 2000
		mutate(&cfg)
		cfg.Engine = EngineAuto
		before := obs.Snapshot()
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return obs.Diff(before, obs.Snapshot())["sim.engine.fallback."+name]
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"mode", func(c *Config) { c.Mode = ModeBlocks; c.BlockLen = 5 }},
		{"fault", func(c *Config) { c.FailAt = map[int]int64{0: 10} }},
		{"tracer", func(c *Config) { c.Tracer = trace.New(nil, trace.NewFlightRecorder(32)) }},
		{"mismatch", func(c *Config) {
			c.Info = PartialInfo
			c.NewPolicy = func(s int) Policy {
				return &VectorPI{Vector: core.Vector{Prefix: []float64{0, 0.25 * float64(s+1)}, Tail: 1}}
			}
		}},
		{"policy", func(c *Config) {
			// Independent fleet whose policy cannot compile: falls back to
			// the interpreted independent engine with the policy reason.
			c.Mode = ModeAll
			c.Info = PartialInfo
			c.NewPolicy = func(int) Policy { return &EBCW{PYes: 0.9, PNo: 0.1} }
		}},
	}
	for _, tc := range cases {
		if got := probe(tc.name, tc.mutate); got < 1 {
			t.Errorf("sim.engine.fallback.%s did not increment (diff %v)", tc.name, got)
		}
	}
	// An eligible fleet must not record any fallback.
	cfg := multiKernelConfig(t, kernelCases(t)[0], newRech, 3, 100, 1)
	cfg.Slots = 2000
	cfg.Engine = EngineAuto
	before := obs.Snapshot()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	diff := obs.Diff(before, obs.Snapshot())
	for k, v := range diff {
		if v > 0 && len(k) > len("sim.engine.fallback.") && k[:len("sim.engine.fallback.")] == "sim.engine.fallback." {
			t.Errorf("eligible fleet recorded fallback %s = %v", k, v)
		}
	}
}
