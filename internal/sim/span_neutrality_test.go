package sim

import (
	"reflect"
	"testing"

	"eventcap/internal/energy"
	"eventcap/internal/obs"
)

// spanCases is metricsCases plus the engines metrics alone cannot
// reach: the chunked batch engine, the sequential batch fallback, and
// the multi-sensor compiled kernel.
func spanCases(t *testing.T) map[string]Config {
	cases := metricsCases(t)
	newRech := func() energy.Recharge {
		r, err := energy.NewBernoulli(0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	batch := kernelBaseConfig(t, kernelCases(t)[0], newRech, 100, 7)
	batch.Slots = 20_000
	batch.Engine = EngineBatch
	batch.Batch = 16
	batch.Workers = 2
	cases["batch"] = batch

	fallback := cases["reference-roundrobin"]
	fallback.Batch = 3 // coordinated fleet: batch engine declines, sequential replications
	cases["batch-fallback"] = fallback

	fleet := multiKernelConfig(t, kernelCases(t)[0], func() energy.Recharge {
		r, err := energy.NewPeriodic(5, 10)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, 4, 100, 2)
	fleet.Engine = EngineKernel
	cases["kernel-multi"] = fleet

	return cases
}

// TestSpansDoNotChangeResults is the RNG-neutrality contract of
// Config.Span and Config.Progress (DESIGN.md §9): attaching the phase
// tracer and work accounting must leave every Result field
// byte-identical on every execution path — spans never draw from a
// random stream.
func TestSpansDoNotChangeResults(t *testing.T) {
	for name, cfg := range spanCases(t) {
		cfg.Span = nil
		cfg.Progress = nil
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		root := obs.BeginSpan("test." + name)
		prog := obs.NewProgress()
		cfg.Span = root
		cfg.Progress = prog
		got, err := Run(cfg)
		root.End()
		if err != nil {
			t.Fatalf("%s (instrumented): %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: span/progress instrumentation changed the run:\nwith    %+v\nwithout %+v", name, got, want)
		}

		// The instrumentation must actually have recorded phases ...
		ph := root.Breakdown()
		if len(ph.Phases) == 0 {
			t.Errorf("%s: no phases recorded under the run span", name)
		}
		// ... and the engines must have reported every slot unit of work:
		// Slots × replications × sensors, whatever the execution path.
		n, b := cfg.N, cfg.Batch
		if n < 1 {
			n = 1
		}
		if b < 1 {
			b = 1
		}
		if wd, _ := prog.Work(); wd != cfg.Slots*int64(n)*int64(b) {
			t.Errorf("%s: work done = %d, want %d (T=%d × N=%d × B=%d)",
				name, wd, cfg.Slots*int64(n)*int64(b), cfg.Slots, n, b)
		}
	}
}
