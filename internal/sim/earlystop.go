package sim

// CI-targeted early stop (DESIGN.md §16): run a batched configuration
// in doubling rounds of replications and stop as soon as the QoM CI's
// relative half-width reaches the target. Reproducibility contract:
// a run that stops after R total replications is byte-identical to a
// plain Batch=R run of the same Config — round k's replications run at
// Seed + (replications already done), which is exactly the seed block
// a single Batch=R call would give them, and per-round Results merge
// the same way runBatchFallback merges per-replication runs. The
// StopDecision records everything needed to re-run the realized
// configuration without the monitor.

import (
	"fmt"

	"eventcap/internal/stats"
)

// EarlyStopOptions configures RunWithEarlyStop. TargetRelHW is the
// relative CI half-width at which replication stops; MinReps is the
// minimum number of replications before stopping is considered
// (defaults to 2 — a CI needs two samples).
type EarlyStopOptions struct {
	TargetRelHW float64
	MinReps     int
}

// StopDecision records how an early-stopped run ended, for the run
// manifest: the monitor's inputs, the replication count actually run,
// and the relative half-width it reached.
type StopDecision struct {
	TargetRelHW  float64 `json:"target_rel_hw"`
	MinReps      int     `json:"min_reps"`
	MaxReps      int     `json:"max_reps"`
	Reps         int     `json:"reps"`
	RelHalfWidth float64 `json:"rel_half_width"`
	// Stopped is true when the target was reached before MaxReps;
	// false means the run exhausted its replication budget.
	Stopped bool `json:"stopped"`
}

// RunWithEarlyStop executes cfg (which must have Batch > 1 — the
// replication budget) in doubling rounds, evaluating the QoM CI after
// each round and stopping once its relative half-width is at or under
// opt.TargetRelHW. The Result aggregates exactly the replications run,
// byte-identically to a plain Batch=R run at the realized R.
func RunWithEarlyStop(cfg Config, opt EarlyStopOptions) (*Result, *StopDecision, error) {
	if opt.TargetRelHW <= 0 {
		return nil, nil, fmt.Errorf("sim: early stop needs a positive relative half-width target, got %g", opt.TargetRelHW)
	}
	maxReps := cfg.Batch
	if maxReps < 2 {
		return nil, nil, fmt.Errorf("sim: early stop needs Batch > 1 as the replication budget, got %d", cfg.Batch)
	}
	minReps := opt.MinReps
	if minReps < 2 {
		minReps = 2
	}
	if minReps > maxReps {
		minReps = maxReps
	}
	mon := stats.ConvergenceMonitor{TargetRelHW: opt.TargetRelHW, MinCount: int64(minReps)}
	sink := cfg.StatsSink

	agg := &Result{Slots: cfg.Slots, Engine: EngineBatch}
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		agg.Metrics = m
	}
	var reps stats.Welford
	done := 0
	var last stats.Report
	for done < maxReps {
		size := minReps
		if done > 0 {
			// Doubling rounds amortize the per-round fixed cost while
			// keeping the overshoot past the smallest converged count
			// within 2×.
			size = done
		}
		if left := maxReps - done; size > left {
			size = left
		}
		sub := cfg
		sub.Seed = cfg.Seed + uint64(done) // seedflow:ok replication block: round replications run at Seed+done .. Seed+done+size-1, the plain Batch=R layout
		sub.Batch = size
		sub.Stats = true
		sub.StatsSink = nil
		if done > 0 {
			// Later rounds mirror runBatchFallback's replication
			// convention: single-stream consumers attach to the first
			// block only.
			sub.Span = nil
			sub.Trace = nil
			sub.Tracer = nil
			sub.SampleEvery = 0
		}
		rr, err := Run(sub)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: early-stop round at %d replications: %w", done, err)
		}
		if rr.Stats == nil {
			return nil, nil, fmt.Errorf("sim: early-stop round returned no stats report (engine %v)", rr.Engine)
		}
		agg.Events += rr.Events
		agg.Captures += rr.Captures
		agg.Sensors = append(agg.Sensors, rr.Sensors...)
		if done == 0 {
			agg.Engine = rr.Engine
			agg.Timeline = rr.Timeline
			if m != nil {
				*m = *rr.Metrics
			}
		} else if m != nil {
			m.mergeReplica(rr.Metrics)
		}
		// Fold the round's per-replication QoM samples in exactly (the
		// report's Welford reconstruction is lossless). A final
		// leftover round of size 1 runs the single-run path (Batch=1 is
		// a plain run) and reports batch means; it contributes one
		// replication sample, the same way ObserveReplica would.
		if size == 1 {
			if rr.Events > 0 {
				reps.Add(float64(rr.Captures) / float64(rr.Events))
			}
		} else {
			if rr.Stats.Method != stats.MethodReplication {
				return nil, nil, fmt.Errorf("sim: early-stop round reported method %q, want replication", rr.Stats.Method)
			}
			reps.Merge(rr.Stats.Welford())
		}
		done += size

		last = stats.ReplicationReport(reps, agg.Events, agg.Captures, stats.DefaultCILevel)
		if sink != nil {
			sink(last)
		}
		if mon.Converged(last) {
			break
		}
	}
	if agg.Events > 0 {
		agg.QoM = float64(agg.Captures) / float64(agg.Events)
	}
	if cfg.Stats || sink != nil {
		r := last
		agg.Stats = &r
	}
	dec := &StopDecision{
		TargetRelHW:  opt.TargetRelHW,
		MinReps:      minReps,
		MaxReps:      maxReps,
		Reps:         done,
		RelHalfWidth: last.RelHalfWidth,
		Stopped:      done < maxReps,
	}
	return agg, dec, nil
}
