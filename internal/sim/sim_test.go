package sim

import (
	"math"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/rng"
	"eventcap/internal/stats"
)

func mustWeibull(t testing.TB, scale, shape float64) *dist.Weibull {
	t.Helper()
	w, err := dist.NewWeibull(scale, shape)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func bernoulliFactory(t testing.TB, q, c float64) func() energy.Recharge {
	t.Helper()
	return func() energy.Recharge {
		r, err := energy.NewBernoulli(q, c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

func constantFactory(t testing.TB, e float64) func() energy.Recharge {
	t.Helper()
	return func() energy.Recharge {
		r, err := energy.NewConstant(e)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

func baseConfig(t testing.TB) Config {
	return Config{
		Dist:        mustWeibull(t, 40, 3),
		Params:      core.DefaultParams(),
		NewRecharge: constantFactory(t, 0.5),
		NewPolicy:   func(int) Policy { return Aggressive{} },
		BatteryCap:  1000,
		Slots:       200000,
		Seed:        1,
	}
}

func TestRunValidation(t *testing.T) {
	good := baseConfig(t)
	cases := map[string]func(*Config){
		"nil dist":       func(c *Config) { c.Dist = nil },
		"nil recharge":   func(c *Config) { c.NewRecharge = nil },
		"nil policy":     func(c *Config) { c.NewPolicy = nil },
		"bad params":     func(c *Config) { c.Params = core.Params{} },
		"negative N":     func(c *Config) { c.N = -2 },
		"zero battery":   func(c *Config) { c.BatteryCap = 0 },
		"zero slots":     func(c *Config) { c.Slots = 0 },
		"blocks w/o len": func(c *Config) { c.Mode = ModeBlocks },
	}
	for name, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 50000
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.QoM != r2.QoM || r1.Events != r2.Events || r1.Captures != r2.Captures {
		t.Fatalf("same seed, different results: %+v vs %+v", r1, r2)
	}
	cfg.Seed = 2
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Captures == r1.Captures && r3.Events == r1.Events {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestEventRateMatchesDistribution(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 500000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRate := float64(res.Events) / float64(res.Slots)
	wantRate := 1 / cfg.Dist.Mean()
	if math.Abs(gotRate-wantRate) > 0.03*wantRate {
		t.Fatalf("event rate %v, want %v", gotRate, wantRate)
	}
}

// TestEnergyConservation: total consumption cannot exceed initial charge
// plus received recharge.
func TestEnergyConservation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 100000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sensors[0]
	maxBudget := cfg.BatteryCap/2 + 0.5*float64(cfg.Slots)
	if s.EnergyConsumed > maxBudget {
		t.Fatalf("consumed %v exceeds available %v", s.EnergyConsumed, maxBudget)
	}
	wantEnergy := float64(s.Activations)*1 + float64(s.Captures)*6
	if math.Abs(s.EnergyConsumed-wantEnergy) > 1e-6 {
		t.Fatalf("consumed %v, accounting says %v", s.EnergyConsumed, wantEnergy)
	}
}

// TestAggressiveMatchesAnalytic: the aggressive baseline's QoM should be
// near e/(δ1+δ2/μ) (core.AggressiveU). The estimate has a known downward
// bias: the δ2 drain after each capture phase-locks the battery's sleep
// slots into the low-hazard region, so the simulated QoM runs a few
// points above the line.
func TestAggressiveMatchesAnalytic(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 1000000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := core.AggressiveU(cfg.Dist, 0.5, cfg.Params)
	if res.QoM < want-0.03 || res.QoM > want+0.12 {
		t.Fatalf("aggressive QoM %v, analytic %v", res.QoM, want)
	}
}

// TestGreedyFIApproachesTheory is the core asymptotic claim (Fig. 3a):
// with a large battery, the simulated QoM of π*_FI approaches the
// analytic U(π*_FI).
func TestGreedyFIApproachesTheory(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.5, 1),
		NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
		BatteryCap:  1000,
		Slots:       1000000,
		Seed:        7,
		Info:        FullInfo,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.QoM-fi.CaptureProb) > 0.02 {
		t.Fatalf("simulated QoM %v, theory %v", res.QoM, fi.CaptureProb)
	}
}

// TestClusteringPIApproachesTheory: same asymptotic property for the
// partial-information clustering policy (Fig. 3b).
func TestClusteringPIApproachesTheory(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	pi, err := core.OptimizeClustering(d, 0.5, p, core.ClusteringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dist:        d,
		Params:      p,
		NewRecharge: bernoulliFactory(t, 0.5, 1),
		NewPolicy:   func(int) Policy { return &VectorPI{Vector: pi.Vector} },
		BatteryCap:  1000,
		Slots:       1000000,
		Seed:        8,
		Info:        PartialInfo,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.QoM-pi.CaptureProb) > 0.03 {
		t.Fatalf("simulated QoM %v, theory %v", res.QoM, pi.CaptureProb)
	}
}

// TestSmallBatteryHurts: QoM with K = activation cost is strictly worse
// than with K = 1000 for the same policy (the Fig. 3 shape).
func TestSmallBatteryHurts(t *testing.T) {
	d := mustWeibull(t, 40, 3)
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(capK float64) float64 {
		cfg := Config{
			Dist:        d,
			Params:      p,
			NewRecharge: bernoulliFactory(t, 0.5, 1),
			NewPolicy:   func(int) Policy { return &VectorFI{Vector: fi.Policy} },
			BatteryCap:  capK,
			Slots:       400000,
			Seed:        9,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.QoM
	}
	small, large := run(7), run(1000)
	if small >= large-0.02 {
		t.Fatalf("tiny battery QoM %v not clearly below large-battery %v", small, large)
	}
}

func TestPeriodicPolicyPattern(t *testing.T) {
	p, err := NewPeriodic(3, 9.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Theta2 != 10 {
		t.Fatalf("θ2 = %d, want ceil(9.2) = 10", p.Theta2)
	}
	active := 0
	for t1 := int64(1); t1 <= 10; t1++ {
		if p.ActivationProb(SlotState{Slot: t1}) == 1 {
			active++
		}
	}
	if active != 3 {
		t.Fatalf("%d active slots per period, want 3", active)
	}
	if _, err := NewPeriodic(0, 5); err == nil {
		t.Fatal("θ1=0 accepted")
	}
	// θ2 below θ1 clamps.
	p2, err := NewPeriodic(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Theta2 != 3 {
		t.Fatalf("θ2 = %d, want clamp to θ1", p2.Theta2)
	}
}

func TestVectorFIFailsSafeWithoutInformation(t *testing.T) {
	v := &VectorFI{Vector: core.Vector{Tail: 1}}
	if got := v.ActivationProb(SlotState{SinceEvent: -1}); got != 0 {
		t.Fatalf("FI policy without information should sleep, got %v", got)
	}
}

func TestEBCWRuntimeStateMachine(t *testing.T) {
	e := &EBCW{PYes: 0.9, PNo: 0.1}
	e.Reset()
	if e.ActivationProb(SlotState{}) != 0.9 {
		t.Fatal("initial state should assume a captured event")
	}
	e.Observe(Outcome{Active: true, EventKnown: true, Event: false})
	if e.ActivationProb(SlotState{}) != 0.1 {
		t.Fatal("no-event observation should switch to PNo")
	}
	// Inactive slots must not change the memory.
	e.Observe(Outcome{Active: false})
	if e.ActivationProb(SlotState{}) != 0.1 {
		t.Fatal("inactive slot changed the observation memory")
	}
	e.Observe(Outcome{Active: true, EventKnown: true, Event: true})
	if e.ActivationProb(SlotState{}) != 0.9 {
		t.Fatal("event observation should switch to PYes")
	}
}

func TestBatteryGateDeniesWhenEmpty(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NewRecharge = constantFactory(t, 0.01) // starved
	cfg.BatteryCap = 7
	cfg.InitialBattery = 7
	cfg.Slots = 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sensors[0].Denied == 0 {
		t.Fatal("starved aggressive sensor was never denied")
	}
	// It can still afford roughly slots*e/(δ1) activations at most.
	if res.Sensors[0].EnergyConsumed > 7+0.01*float64(cfg.Slots)+1e-9 {
		t.Fatal("sensor spent energy it never had")
	}
}

// newTestSource builds a deterministic RNG for test helpers.
func newTestSource(t testing.TB) *rng.Source {
	t.Helper()
	return rng.New(123, 77)
}

// TestTimelineRecording: periodic snapshots carry consistent running and
// per-window QoM, and integrate with the batch-means machinery.
func TestTimelineRecording(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 200000
	cfg.SampleEvery = 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 20 {
		t.Fatalf("got %d timeline points, want 20", len(res.Timeline))
	}
	for i, p := range res.Timeline {
		if p.Slot != int64(i+1)*10000 {
			t.Fatalf("point %d at slot %d", i, p.Slot)
		}
		if p.QoM < 0 || p.QoM > 1 || p.WindowQoM < 0 || p.WindowQoM > 1 {
			t.Fatalf("point %d has QoM out of range: %+v", i, p)
		}
		if p.Battery < 0 || p.Battery > cfg.BatteryCap {
			t.Fatalf("point %d battery %v out of range", i, p.Battery)
		}
	}
	// Final running QoM must equal the result's QoM.
	if last := res.Timeline[len(res.Timeline)-1]; math.Abs(last.QoM-res.QoM) > 1e-12 {
		t.Fatalf("final timeline QoM %v != result QoM %v", last.QoM, res.QoM)
	}
	// Window QoMs feed a batch-means CI that brackets the overall QoM.
	windows := make([]float64, len(res.Timeline))
	for i, p := range res.Timeline {
		windows[i] = p.WindowQoM
	}
	iv, err := stats.MeanCI(windows, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(res.QoM) {
		t.Fatalf("CI %+v does not contain QoM %v", iv, res.QoM)
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Slots = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Fatal("timeline recorded without SampleEvery")
	}
}
