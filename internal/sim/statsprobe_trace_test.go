package sim

import (
	"bytes"
	"reflect"
	"testing"

	"eventcap/internal/trace"
)

// TestTraceQoMReportsMatchProbe: tracetool's offline rebuild
// (trace.QoMReports) replays the exact observation stream the live
// probe saw — per-slot event indicators in slot order, sleep-span
// misses in bulk — so the batch-means report recovered from a trace
// matches Result.Stats bit for bit, on both engines. This is what
// makes `tracetool stats -manifest` an exact check rather than a
// tolerance test.
func TestTraceQoMReportsMatchProbe(t *testing.T) {
	for _, engine := range []Engine{EngineReference, EngineKernel} {
		cfg := kernelBaseConfig(t, kernelCases(t)[0], constantFactory(t, 0.5), 7, 2)
		cfg.Engine = engine
		cfg.Stats = true
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		cfg.Tracer = trace.New(w, nil)

		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%v: closing trace: %v", engine, err)
		}
		reports, err := trace.QoMReports(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(reports) != 1 {
			t.Fatalf("%v: %d runs in trace, want 1", engine, len(reports))
		}
		want := *res.Stats
		want.Battery = nil // the trace carries no battery stream
		if !reflect.DeepEqual(reports[0], want) {
			t.Errorf("%v: trace rebuild diverges from probe:\ntrace %+v\nprobe %+v", engine, reports[0], want)
		}
	}
}
