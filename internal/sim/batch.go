package sim

import (
	"fmt"
	"math"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/obs"
	"eventcap/internal/parallel"
	"eventcap/internal/rng"
)

// The mega-batch engine simulates Config.Batch statistically independent
// replications of one compiled single-sensor configuration in a single
// call, sharing everything a replication does not own: the activation
// table with its zero/one runs, the event distribution's quantile table,
// and the Bernoulli recharge's binomial tables are built once and read by
// every replication; per-replication state (RNG sources, the battery, a
// stateful recharge's phase) lives in a fixed set of values reset in
// place, so the steady-state loop allocates nothing per replication.
//
// Determinism contract: replication r's random streams derive solely from
// Config.Seed + r, laid out exactly as the kernel lays out a run at that
// seed (root Reseed(Seed+r, 0x5eed), then event Split(1), decision
// Split(2), recharge Split(100)). Replication r therefore reproduces the
// run this Config would produce at Seed + r: byte-identically when the
// kernel itself would be byte-deterministic on that configuration
// (deterministic recharge, or any recharge with Metrics on, which
// disables the batched awake runs below), and equal in law otherwise —
// the same clause the kernel's sleep fast-forward already carries. The
// chunk sharding and worker count never touch the streams, so results
// are byte-identical across every Workers/BatchChunk setting.

// defaultBatchChunk is the replications-per-chunk sharding default: large
// enough to amortize per-chunk state (battery, recharge instance, RNG
// values) across many replications, small enough that a 10⁵-replication
// batch still spreads across a worker pool.
const defaultBatchChunk = 1024

// batchPlan is a validated, instantiated batch configuration: the kernel
// plan plus the batch-only shared tables. Exactly one of kernel and
// indep is non-nil: kernel covers the coordinated configurations
// (single sensor and round-robin fleets, one shared table), indep the
// decoupled ModeAll+PartialInfo fleets (one table per sensor over its
// private capture clock).
type batchPlan struct {
	kernel *kernelPlan
	indep  []indepSensorPlan
	table  *core.BatchTable
	// quant replaces Dist.Sample's per-gap transcendentals with an exact
	// threshold lookup when the distribution exposes its inversion map
	// (dist.InverseSampler); nil otherwise, falling back to Dist.Sample.
	quant *dist.QuantileTable
}

func (p *batchPlan) sensors() int {
	if p.indep != nil {
		return len(p.indep)
	}
	return p.kernel.n
}

// resettable matches per-run state that can be restored in place
// (energy.Periodic's phase); stateless processes don't implement it.
type resettable interface{ Reset() }

// batchReusable reports whether a chunk worker may start replications on
// rech as-is: either the process is stateless or its state resets.
func batchReusable(rech energy.FastForwarder) bool {
	if _, ok := rech.(resettable); ok {
		return true
	}
	switch rech.(type) {
	case *energy.Bernoulli, *energy.Constant:
		return true
	default:
		return false
	}
}

// compileBatch probes whether cfg (already validated) can run on the
// batch engine. It returns the plan, or nil and the structural fallback
// reason. Eligibility is the kernel's (or, for decoupled fleets, the
// independent engine's) plus two batch-only conditions: no slot tracer
// (the engine reports aggregates, never slot records), and recharge
// processes whose per-run state — if any — can be reset between
// replications. sp (nilable) is the caller's "compile" span; the
// batch-table build gets its own child under it.
func compileBatch(cfg *Config, sp *obs.Span) (*batchPlan, fallback) {
	if cfg.Tracer != nil {
		return nil, fallback{"tracer", "slot tracing requested"}
	}
	kp, fb := compileKernel(cfg)
	if kp == nil {
		if cfg.independentSensors() {
			return compileBatchIndependent(cfg, sp)
		}
		return nil, fb
	}
	for _, r := range kp.recharges {
		if !batchReusable(r) {
			return nil, fallback{"recharge", fmt.Sprintf("recharge %s carries per-run state without Reset", r.Name())}
		}
	}
	tsp := sp.Child("batch.table")
	plan := &batchPlan{kernel: kp, table: core.CompileBatch(kp.table)}
	if s := dist.AsInverseSampler(cfg.Dist); s != nil {
		plan.quant = dist.NewQuantileTable(s)
	}
	tsp.End()
	return plan, fallback{}
}

// compileBatchIndependent is compileBatch's probe for decoupled
// ModeAll+PartialInfo fleets: every sensor must compile to a per-sensor
// plan, and faults stay on the per-replication fallback (a truncated
// sensor is cheap there and rare enough not to earn a batched loop).
func compileBatchIndependent(cfg *Config, sp *obs.Span) (*batchPlan, fallback) {
	if len(cfg.FailAt) > 0 {
		return nil, fallback{"fault", "fault injection requested"}
	}
	plans, fb := compileIndependent(cfg)
	if plans == nil {
		return nil, fb
	}
	for s := range plans {
		if !batchReusable(plans[s].recharge) {
			return nil, fallback{"recharge", fmt.Sprintf("recharge %s carries per-run state without Reset", plans[s].recharge.Name())}
		}
	}
	tsp := sp.Child("batch.table")
	plan := &batchPlan{indep: plans}
	if s := dist.AsInverseSampler(cfg.Dist); s != nil {
		plan.quant = dist.NewQuantileTable(s)
	}
	tsp.End()
	return plan, fallback{}
}

// runBatch executes the batch: replications are sharded into chunks of
// Config.BatchChunk and the chunks mapped across the worker pool; each
// chunk owns one batchWorker whose state is reset per replication.
func runBatch(cfg Config, plan *batchPlan) (*Result, error) {
	reps := cfg.Batch
	if reps < 1 {
		reps = 1
	}
	chunk := cfg.BatchChunk
	if chunk < 1 {
		chunk = defaultBatchChunk
	}
	numChunks := (reps + chunk - 1) / chunk
	if plan.kernel != nil {
		for _, p := range plan.kernel.policies {
			p.Reset()
		}
	} else {
		for s := range plan.indep {
			plan.indep[s].policy.Reset()
		}
	}

	// Replication r's sensors occupy the rep-major block [r·n, (r+1)·n),
	// matching runBatchFallback's append order.
	n := plan.sensors()
	res := &Result{Slots: cfg.Slots, Sensors: make([]SensorStats, reps*n), Engine: EngineBatch}
	sensors := res.Sensors
	// The stats probe observes at replication granularity (mirroring
	// Metrics.mergeReplica): chunks record their replications' event
	// totals at disjoint indices, and the feed happens in replication
	// order after the join — the workers' awake-run batching and draw
	// discipline stay untouched.
	probe := newStatsProbe(&cfg)
	var repCounts [][2]int64
	if probe != nil {
		repCounts = make([][2]int64, reps)
	}

	ex := cfg.Span.Child("exec.batch")
	defer ex.End()
	ex.Count("replications", int64(reps))
	ex.Count("chunks", int64(numChunks))
	ex.Count("slots", cfg.Slots*int64(reps)*int64(n))

	type chunkOut struct {
		events, captures int64
		m                *Metrics
	}
	outs, err := parallel.MapInner(cfg.Workers, numChunks, func(ci int) (chunkOut, error) {
		csp := ex.Fork("chunk")
		defer csp.End()
		w, err := newBatchRunner(&cfg, plan)
		if err != nil {
			return chunkOut{}, err
		}
		var out chunkOut
		if cfg.Metrics {
			out.m = &Metrics{}
		}
		lo := ci * chunk
		hi := lo + chunk
		if hi > reps {
			hi = reps
		}
		csp.Count("replications", int64(hi-lo))
		for r := lo; r < hi; r++ {
			ev, cp := w.simulate(&cfg, plan, uint64(r), sensors[r*n:(r+1)*n], out.m, r == 0)
			if repCounts != nil {
				repCounts[r] = [2]int64{ev, cp}
			}
			out.events += ev
			out.captures += cp
		}
		cfg.Progress.FinishWork(cfg.Slots * int64(hi-lo) * int64(n))
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	agg := ex.Child("aggregate")
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	for _, o := range outs {
		res.Events += o.events
		res.Captures += o.captures
		if m != nil {
			// Only replication 0's chunk carries battery-occupancy
			// observations, so a plain Merge preserves the replication-0
			// occupancy convention (see Metrics.mergeReplica).
			m.Merge(o.m)
		}
	}
	if probe != nil {
		for _, rc := range repCounts {
			probe.ObserveReplica(rc[0], rc[1])
		}
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	recordEngine(res.Engine)
	if m != nil {
		m.publish(res)
	}
	probe.finish(res)
	agg.End()
	return res, nil
}

// batchRunner is one chunk's replication executor; simulate runs
// replication rep into its rep-major sensors block and returns the
// replication's event and capture counts.
type batchRunner interface {
	simulate(cfg *Config, plan *batchPlan, rep uint64, sensors []SensorStats, m *Metrics, observe bool) (events, captures int64)
}

// newBatchRunner picks the chunk worker for the plan's shape: the
// single-sensor worker (with its awake-run batching), the round-robin
// fleet worker, or the decoupled-fleet worker.
func newBatchRunner(cfg *Config, plan *batchPlan) (batchRunner, error) {
	if plan.indep != nil {
		return newBatchIndepWorker(cfg, plan)
	}
	if plan.kernel.n > 1 {
		return newBatchMultiWorker(cfg, plan)
	}
	return newBatchWorker(cfg, plan)
}

// chunkRecharge hands a chunk its own instance of the plan's recharge
// process: the shared instance when stateless, a fresh prepared instance
// (reset before every replication) otherwise — chunks run concurrently,
// so a stateful process can never be shared.
func chunkRecharge(cfg *Config, shared energy.FastForwarder) (energy.FastForwarder, resettable, error) {
	if _, stateful := shared.(resettable); !stateful {
		return shared, nil, nil
	}
	fresh, ok := cfg.NewRecharge().(energy.FastForwarder)
	if !ok {
		return nil, nil, fmt.Errorf("sim: recharge factory stopped producing fast-forwardable processes")
	}
	if prep, ok := fresh.(energy.FastForwardPreparer); ok {
		prep.PrepareFastForward(prepareRunLength)
	}
	rst, _ := fresh.(resettable)
	return fresh, rst, nil
}

// batchWorker is one chunk's replication state: RNG values reseeded in
// place per replication, one battery reset per replication, and the
// chunk's recharge process (the plan's shared instance when stateless, a
// fresh per-chunk instance reset per replication otherwise).
type batchWorker struct {
	root, eventSrc, decisionSrc, rechargeSrc rng.Source

	battery *energy.Battery
	rech    energy.FastForwarder
	rechRst resettable // non-nil iff the chunk owns a stateful recharge

	bern         *energy.Bernoulli
	isBern       bool
	bernQ, bernC float64
}

func newBatchWorker(cfg *Config, plan *batchPlan) (*batchWorker, error) {
	w := &batchWorker{}
	b, err := energy.NewBattery(cfg.BatteryCap, cfg.InitialBattery)
	if err != nil {
		return nil, err
	}
	w.battery = b
	w.rech, w.rechRst, err = chunkRecharge(cfg, plan.kernel.recharge)
	if err != nil {
		return nil, err
	}
	if bern, ok := w.rech.(*energy.Bernoulli); ok {
		w.bern = bern
		w.isBern = true
		w.bernQ, w.bernC = bern.Q(), bern.C()
	}
	return w, nil
}

// simulate runs one replication, returning its event and capture counts.
// The loop is the kernel's (runKernel) minus tracing, plus the two batch
// accelerations: quantile-table event sampling (byte-identical to
// Dist.Sample by the InverseSampler contract) and closed-form awake runs
// (equal in law; disabled whenever m != nil so instrumented replications
// consume their streams exactly as the kernel would). observe enables
// battery-occupancy sampling, which batch Metrics define on replication 0
// only.
func (w *batchWorker) simulate(cfg *Config, plan *batchPlan, rep uint64, sensors []SensorStats, m *Metrics, observe bool) (events, captures int64) {
	stats := &sensors[0]
	w.root.Reseed(cfg.Seed+rep, 0x5eed) // seedflow:ok replication-root: rep r must equal the kernel's root at Seed+r
	w.root.SplitInto(&w.eventSrc, 1)
	w.root.SplitInto(&w.decisionSrc, 2)
	w.root.SplitInto(&w.rechargeSrc, 100)
	w.battery.Reset(cfg.InitialBattery)
	if w.rechRst != nil {
		w.rechRst.Reset()
	}

	table := plan.table
	quant := plan.quant
	d := cfg.Dist
	battery := w.battery
	rech := w.rech
	state := plan.kernel.state
	modulus := plan.kernel.modulus
	cost := cfg.Params.ActivationCost()
	delta1, delta2 := cfg.Params.Delta1, cfg.Params.Delta2
	isBern, bernQ, bernC := w.isBern, w.bernQ, w.bernC
	// Awake-run batching draws one recharge count per run instead of one
	// Bernoulli per slot, so it is off whenever metrics are on — an
	// instrumented replication must consume its streams exactly as the
	// kernel at Seed + rep would.
	oneRuns := m == nil && isBern

	invCap := 1 / cfg.BatteryCap
	binScale := batteryBins * invCap
	costGate := cost - 1e-12
	var obsSlots, outage int64
	var fracSum float64
	sampleCountdown := int64(math.MaxInt64)
	if m != nil && observe {
		sampleCountdown = batterySampleStride
	}

	var activations, denied int64

	// The paper assumes an event (and capture) at slot 0.
	lastEvent, lastCapture := int64(0), int64(0)
	var nextEvent int64
	if quant != nil {
		nextEvent = int64(quant.Sample(&w.eventSrc))
	} else {
		nextEvent = int64(d.Sample(&w.eventSrc))
	}

	t := int64(1)
	for t <= cfg.Slots {
		var st int64
		switch state {
		case StateSinceEvent:
			st = t - lastEvent
		case StateSinceCapture:
			st = t - lastCapture
		default:
			st = (t-1)%modulus + 1
		}

		if z := table.ZeroRunFrom(int(st)); z > 0 {
			// Sleep run, exactly as the kernel executes it.
			n := z
			if state == StateSlotPhase {
				if wrap := modulus - st + 1; n > wrap {
					n = wrap
				}
			}
			if left := cfg.Slots - t + 1; n > left {
				n = left
			}
			eventsBefore := events
			if state == StateSinceEvent && nextEvent-t+1 <= n {
				n = nextEvent - t + 1
				rech.FastForward(battery, n, &w.rechargeSrc)
				events++
				lastEvent = nextEvent
				if quant != nil {
					nextEvent += int64(quant.Sample(&w.eventSrc))
				} else {
					nextEvent += int64(d.Sample(&w.eventSrc))
				}
			} else {
				rech.FastForward(battery, n, &w.rechargeSrc)
				end := t + n - 1
				for nextEvent <= end {
					events++
					lastEvent = nextEvent
					if quant != nil {
						nextEvent += int64(quant.Sample(&w.eventSrc))
					} else {
						nextEvent += int64(d.Sample(&w.eventSrc))
					}
				}
			}
			if m != nil {
				m.KernelRuns++
				m.KernelSlotsFastForwarded += n
				m.MissAsleep += events - eventsBefore
			}
			t += n
			continue
		}

		if oneRuns {
			if o := table.OneRunFrom(int(st)); o > 1 {
				// Certain-activation run: Bernoulli(p >= 1) consumes no
				// decision draws, so until the next event the slots are a
				// pure recharge/consume stream the battery can absorb in
				// closed form.
				n := o
				if state == StateSlotPhase {
					if wrap := modulus - st + 1; n > wrap {
						n = wrap
					}
				}
				if gap := nextEvent - t; n > gap {
					// The event slot mutates state (capture, h/f reset),
					// so the run stops just before it.
					n = gap
				}
				if left := cfg.Slots - t + 1; n > left {
					n = left
				}
				if n > 1 && w.awakeRun(n, cost, delta1) {
					activations += n
					t += n
					continue
				}
			}
		}

		// Awake slot: replicate the kernel's slot exactly.
		if isBern {
			if w.rechargeSrc.Bernoulli(bernQ) {
				battery.Recharge(bernC)
			}
		} else {
			battery.Recharge(rech.Next(&w.rechargeSrc))
		}
		event := t == nextEvent
		p := table.At(int(st))
		capturedHere, deniedHere := false, false
		if w.decisionSrc.Bernoulli(p) {
			if !battery.CanConsume(cost) {
				denied++
				deniedHere = true
			} else {
				battery.Consume(delta1)
				activations++
				if event {
					battery.Consume(delta2)
					captures++
					lastCapture = t
					capturedHere = true
				}
			}
		}
		if event {
			events++
			lastEvent = t
			if quant != nil {
				nextEvent = t + int64(quant.Sample(&w.eventSrc))
			} else {
				nextEvent = t + int64(d.Sample(&w.eventSrc))
			}
			if m != nil && !capturedHere {
				if deniedHere {
					m.MissNoEnergy++
				} else {
					m.MissAsleep++
				}
			}
		}
		sampleCountdown--
		if sampleCountdown == 0 {
			sampleCountdown = batterySampleStride
			lvl := battery.Level()
			obsSlots++
			fracSum += lvl * invCap
			bin := int(lvl * binScale)
			if bin >= batteryBins {
				bin = batteryBins - 1
			}
			m.BatteryHist[bin]++
			if lvl < costGate {
				outage++
			}
		}
		t++
	}

	stats.Activations = activations
	stats.Captures = captures
	stats.Denied = denied
	stats.EnergyConsumed = battery.Consumed()
	stats.OverflowLost = battery.OverflowLost()
	stats.FinalBattery = battery.Level()
	if m != nil {
		m.ObservedSlots += obsSlots
		m.BatteryFracSum += fracSum
		m.EnergyOutageSlots += outage
		// An activation on an event slot always captures, so wasted
		// (no-event) activations are exactly activations − captures.
		m.WastedActivations += activations - captures
	}
	return events, captures
}

// awakeRun applies n consecutive certain-activation, no-event slots in
// O(1): one binomial recharge count plus closed-form battery moves. It
// succeeds only when no slot in the stretch could hit the energy gate or
// the capacity clip regardless of how deliveries and consumptions
// interleave — then the final level is order-independent and batching the
// recharges before the consumptions reproduces the per-slot outcome. The
// caller falls back to per-slot execution when a guard fails.
func (w *batchWorker) awakeRun(n int64, cost, delta1 float64) bool {
	lvl := w.battery.Level()
	// Gate worst case: every consumption lands before any delivery, so
	// slot j starts at lvl − j·δ1 and the last must still afford cost.
	if lvl-float64(n-1)*delta1 < cost {
		return false
	}
	// Clip worst case: every delivery lands before any consumption.
	if lvl+float64(n)*w.bernC > w.battery.Capacity() {
		return false
	}
	w.bern.FastForward(w.battery, n, &w.rechargeSrc)
	if !w.battery.ConsumeN(delta1, n) {
		// Off the exactness grid: apply the consumptions one by one (the
		// guards still hold, so none is denied).
		for i := int64(0); i < n; i++ {
			w.battery.Consume(delta1)
		}
	}
	return true
}

// runBatchFallback aggregates cfg.Batch replications through the per-run
// engines when the batch engine is ineligible or a per-run engine is
// forced: replication r reruns the configuration at Seed + r with Batch
// cleared, preserving the batch engine's seed pairing so results stay
// comparable across engines. Replications run sequentially — the per-run
// engines parallelize internally where profitable, and the trace hooks
// (handed to replication 0 only, like Timeline) are single-stream
// consumers. Each inner run publishes its own observability totals;
// the aggregate does not publish again.
func runBatchFallback(cfg Config) (*Result, error) {
	reps := cfg.Batch
	ex := cfg.Span.Child("exec.batch_fallback")
	defer ex.End()
	ex.Count("replications", int64(reps))
	res := &Result{Slots: cfg.Slots}
	var m *Metrics
	if cfg.Metrics {
		m = &Metrics{}
		res.Metrics = m
	}
	// The aggregate's stats probe observes at replication granularity,
	// exactly like runBatch; the inner runs never see Stats/StatsSink
	// (their per-event streams would describe one replication, not the
	// batch).
	probe := newStatsProbe(&cfg)
	for r := 0; r < reps; r++ {
		sub := cfg
		sub.Batch = 0
		sub.BatchChunk = 0
		sub.Stats = false
		sub.StatsSink = nil
		sub.Seed = cfg.Seed + uint64(r)
		// Every replication's compile/exec spans nest under this phase;
		// replication 0 stands for all of them (spans are per-phase, and
		// B sequential identical trees would bloat the export), matching
		// the Trace/Timeline convention below.
		sub.Span = ex
		if r > 0 {
			sub.Span = nil
			sub.Trace = nil
			sub.Tracer = nil
			sub.SampleEvery = 0
		}
		rr, err := Run(sub)
		if err != nil {
			return nil, fmt.Errorf("sim: batch replication %d: %w", r, err)
		}
		res.Events += rr.Events
		res.Captures += rr.Captures
		res.Sensors = append(res.Sensors, rr.Sensors...)
		if probe != nil {
			probe.ObserveReplica(rr.Events, rr.Captures)
		}
		if r == 0 {
			res.Engine = rr.Engine
			res.Timeline = rr.Timeline
			if m != nil {
				*m = *rr.Metrics
			}
		} else if m != nil {
			m.mergeReplica(rr.Metrics)
		}
	}
	if res.Events > 0 {
		res.QoM = float64(res.Captures) / float64(res.Events)
	}
	probe.finish(res)
	return res, nil
}
