package sim

import (
	"reflect"
	"testing"

	"eventcap/internal/energy"
)

// metricsCases spans every execution path of Run: the sequential
// reference engine (single- and multi-sensor, coordinated modes, fault
// injection), the independent-sensor fast path, and the compiled kernel
// — with batteries both comfortable and starved (K=7 forces the energy
// gate, exercising MissNoEnergy).
func metricsCases(t *testing.T) map[string]Config {
	cases := make(map[string]Config)

	seq := baseConfig(t)
	seq.Slots = 30000
	seq.Engine = EngineReference
	cases["reference-single"] = seq

	starved := seq
	starved.BatteryCap = 7
	starved.NewRecharge = bernoulliFactory(t, 0.3, 1)
	cases["reference-starved"] = starved

	multi := seq
	multi.N = 3
	multi.Mode = ModeRoundRobin
	cases["reference-roundrobin"] = multi

	faulty := multi
	faulty.FailAt = map[int]int64{1: 5000}
	cases["reference-faults"] = faulty

	indep := seq
	indep.N = 3
	indep.Mode = ModeAll
	indep.Info = PartialInfo
	indep.Workers = 2
	cases["independent"] = indep

	kern := kernelBaseConfig(t, kernelCases(t)[0], func() energy.Recharge {
		r, err := energy.NewBernoulli(0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, 100, 1)
	kern.Engine = EngineKernel
	cases["kernel"] = kern

	return cases
}

// TestMetricsDoNotChangeResults is the RNG-neutrality contract of
// Config.Metrics: enabling collection must leave every other Result
// field byte-identical, on every execution path.
func TestMetricsDoNotChangeResults(t *testing.T) {
	for name, cfg := range metricsCases(t) {
		cfg.Metrics = false
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg.Metrics = true
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Metrics == nil {
			t.Fatalf("%s: Metrics requested but nil", name)
		}
		got.Metrics = nil // the only field allowed to differ
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: metrics changed the run:\nwith    %+v\nwithout %+v", name, got, want)
		}
	}
}

// TestMetricsEventAccounting checks the classification invariant
// Captures + MissAsleep + MissNoEnergy == Events and the battery
// histogram's consistency on every execution path.
func TestMetricsEventAccounting(t *testing.T) {
	for name, cfg := range metricsCases(t) {
		cfg.Metrics = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := res.Metrics
		if got := res.Captures + m.MissAsleep + m.MissNoEnergy; got != res.Events {
			t.Errorf("%s: captures %d + asleep %d + noenergy %d = %d, want events %d",
				name, res.Captures, m.MissAsleep, m.MissNoEnergy, got, res.Events)
		}
		var histSum int64
		for _, n := range m.BatteryHist {
			histSum += n
		}
		if histSum != m.ObservedSlots {
			t.Errorf("%s: histogram sums to %d, want ObservedSlots %d", name, histSum, m.ObservedSlots)
		}
		if f := m.MeanBatteryFrac(); f < 0 || f > 1 {
			t.Errorf("%s: mean battery fraction %v outside [0,1]", name, f)
		}
		if res.Engine == EngineKernel {
			// The kernel samples every stride-th awake slot, and the
			// awake-slot count is exactly Slots − KernelSlotsFastForwarded.
			awake := res.Slots - m.KernelSlotsFastForwarded
			if want := awake / batterySampleStride; m.ObservedSlots != want {
				t.Errorf("%s: kernel observed %d slots, want %d (stride %d over %d awake)",
					name, m.ObservedSlots, want, batterySampleStride, awake)
			}
			if m.KernelRuns == 0 {
				t.Errorf("%s: kernel run recorded no sleep runs", name)
			}
		} else if want := res.Slots / batterySampleStride; m.ObservedSlots != want {
			t.Errorf("%s: reference engine observed %d slots, want %d (stride %d over %d)",
				name, m.ObservedSlots, want, batterySampleStride, res.Slots)
		}
	}
	// The starved configuration must actually exercise the energy gate,
	// or the MissNoEnergy path is untested.
	cfg := metricsCases(t)["reference-starved"]
	cfg.Metrics = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MissNoEnergy == 0 || res.Metrics.EnergyOutageSlots == 0 {
		t.Errorf("starved config saw no energy-gated misses (noenergy=%d outage=%d)",
			res.Metrics.MissNoEnergy, res.Metrics.EnergyOutageSlots)
	}
}

// TestKernelMetricsMatchReference: under deterministic recharge the
// kernel's miss decomposition and wasted-activation count must equal the
// reference engine's exactly — the fast-forward only skips slots where
// nothing observable happens.
func TestKernelMetricsMatchReference(t *testing.T) {
	newRech := func() energy.Recharge {
		r, err := energy.NewPeriodic(5, 10)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, kc := range kernelCases(t) {
		for _, batteryCap := range []float64{7, 100} {
			cfg := kernelBaseConfig(t, kc, newRech, batteryCap, 2)
			cfg.Metrics = true

			cfg.Engine = EngineReference
			ref, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s K=%g: reference: %v", kc.name, batteryCap, err)
			}
			cfg.Engine = EngineKernel
			ker, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s K=%g: kernel: %v", kc.name, batteryCap, err)
			}
			rm, km := ref.Metrics, ker.Metrics
			if rm.MissAsleep != km.MissAsleep || rm.MissNoEnergy != km.MissNoEnergy ||
				rm.WastedActivations != km.WastedActivations {
				t.Errorf("%s K=%g: kernel metrics diverge: asleep %d/%d noenergy %d/%d wasted %d/%d",
					kc.name, batteryCap, km.MissAsleep, rm.MissAsleep,
					km.MissNoEnergy, rm.MissNoEnergy, km.WastedActivations, rm.WastedActivations)
			}
		}
	}
}

func TestMetricsMerge(t *testing.T) {
	a := &Metrics{MissAsleep: 1, MissNoEnergy: 2, WastedActivations: 3, EnergyOutageSlots: 4,
		ObservedSlots: 5, BatteryFracSum: 1.5, KernelRuns: 6, KernelSlotsFastForwarded: 7}
	a.BatteryHist[0] = 3
	b := &Metrics{MissAsleep: 10, ObservedSlots: 20, BatteryFracSum: 2.5}
	b.BatteryHist[0] = 1
	b.BatteryHist[9] = 2
	a.Merge(b)
	if a.MissAsleep != 11 || a.ObservedSlots != 25 || a.BatteryFracSum != 4 ||
		a.BatteryHist[0] != 4 || a.BatteryHist[9] != 2 || a.KernelRuns != 6 {
		t.Fatalf("merge result %+v", a)
	}
	if got := a.MeanBatteryFrac(); got != 4.0/25 {
		t.Fatalf("mean battery frac = %v", got)
	}
	if (&Metrics{}).MeanBatteryFrac() != 0 {
		t.Fatal("empty metrics mean battery frac != 0")
	}
}
