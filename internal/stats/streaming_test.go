package stats

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

func TestWelfordMatchesSummarize(t *testing.T) {
	src := rng.New(3, 0)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = 2 + 3*src.NormFloat64()
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if w.N != int64(s.N) {
		t.Fatalf("N %d, want %d", w.N, s.N)
	}
	if math.Abs(w.Mean-s.Mean) > 1e-12 || math.Abs(w.Variance()-s.Variance) > 1e-9 {
		t.Fatalf("welford mean/var %v/%v, want %v/%v", w.Mean, w.Variance(), s.Mean, s.Variance)
	}
	if math.Abs(w.StdErr()-s.StdErr()) > 1e-12 {
		t.Fatalf("stderr %v, want %v", w.StdErr(), s.StdErr())
	}
}

func TestWelfordMergeAndAddN(t *testing.T) {
	src := rng.New(7, 0)
	var whole, a, b Welford
	for i := 0; i < 500; i++ {
		x := src.Float64()
		whole.Add(x)
		if i < 200 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N != whole.N || math.Abs(a.Mean-whole.Mean) > 1e-12 || math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
		t.Fatalf("merged %+v, want %+v", a, whole)
	}

	// AddN(x, n) must agree with n Add(x) calls.
	var loop, bulk Welford
	loop.Add(4)
	loop.Add(4)
	loop.Add(4)
	loop.Add(1)
	bulk.AddN(4, 3)
	bulk.Add(1)
	if loop.N != bulk.N || math.Abs(loop.Mean-bulk.Mean) > 1e-12 || math.Abs(loop.Variance()-bulk.Variance()) > 1e-12 {
		t.Fatalf("AddN %+v, loop %+v", bulk, loop)
	}

	// Merging the empty accumulator is a no-op either way round.
	var empty Welford
	before := whole
	whole.Merge(empty)
	if whole != before {
		t.Fatal("merging empty changed state")
	}
	empty.Merge(before)
	if empty != before {
		t.Fatal("merging into empty did not copy")
	}
}

func TestP2QuantileKnownDistributions(t *testing.T) {
	// P² vs the exact offline quantile on three shapes: uniform,
	// normal, and exponential (heavy right tail). The published
	// accuracy for n in the tens of thousands is well under 1% of the
	// distribution's scale.
	const n = 50000
	dists := map[string]func(*rng.Source) float64{
		"uniform":     func(s *rng.Source) float64 { return s.Float64() },
		"normal":      func(s *rng.Source) float64 { return s.NormFloat64() },
		"exponential": func(s *rng.Source) float64 { return -math.Log(1 - s.Float64()) },
	}
	for name, draw := range dists {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			src := rng.New(11, 0)
			est := NewP2Quantile(p)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = draw(src)
				est.Add(xs[i])
			}
			exact, err := Quantile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if est.Count() != n {
				t.Fatalf("%s p=%v: count %d", name, p, est.Count())
			}
			// Scale the tolerance by the local spread of the sample.
			scale := math.Abs(exact)
			if scale < 1 {
				scale = 1
			}
			if got := est.Value(); math.Abs(got-exact) > 0.02*scale {
				t.Errorf("%s p=%v: P² %v, exact %v", name, p, got, exact)
			}
		}
	}
}

func TestP2QuantileSmallSamplesExact(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
	for _, x := range []float64{9, 1, 5} {
		est.Add(x)
	}
	exact, err := Quantile([]float64{9, 1, 5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Value(); got != exact {
		t.Fatalf("small-sample value %v, want exact %v", got, exact)
	}
	if est.P() != 0.5 {
		t.Fatalf("P() = %v", est.P())
	}
}

func TestBatchMeansAddNMatchesLoop(t *testing.T) {
	// The probe feeds AddN for fast-forwarded misses; it must land in a
	// bit-identical state to per-event Add calls, across batch-doubling
	// boundaries.
	var loop, bulk BatchMeans
	src := rng.New(21, 0)
	pending := int64(0)
	flush := func() {
		bulk.AddN(0, pending)
		pending = 0
	}
	for i := 0; i < 5000; i++ {
		if src.Float64() < 0.3 {
			flush()
			loop.Add(1)
			bulk.Add(1)
		} else {
			loop.Add(0)
			pending++
		}
	}
	flush()
	if loop != bulk {
		t.Fatalf("AddN state diverged:\nloop %+v\nbulk %+v", loop, bulk)
	}
}

func TestBatchMeansDoubling(t *testing.T) {
	var b BatchMeans
	if b.BatchLen() != 1 {
		t.Fatalf("zero-value batch length %d", b.BatchLen())
	}
	for i := 0; i < 64; i++ {
		b.Add(float64(i % 2))
	}
	// 64 length-1 batches pair-merged into 32 length-2 batches.
	if b.Batches() != 32 || b.BatchLen() != 2 {
		t.Fatalf("after 64 obs: %d batches of %d", b.Batches(), b.BatchLen())
	}
	if b.Count() != 64 || b.Sum() != 32 {
		t.Fatalf("count/sum %d/%v", b.Count(), b.Sum())
	}
	if b.Mean() != 0.5 {
		t.Fatalf("mean %v", b.Mean())
	}
	// Each time the 64 slots fill, the batch length doubles: 256
	// observations end as 32 complete batches of length 8.
	for i := 0; i < 64*3; i++ {
		b.Add(1)
	}
	if b.BatchLen() != 8 || b.Batches() != 32 || b.Count() != 256 {
		t.Fatalf("after 256 obs: %d batches of %d, count %d", b.Batches(), b.BatchLen(), b.Count())
	}
}

func TestBatchMeansCICoverageAR1(t *testing.T) {
	// Nominal coverage on a synthetic AR(1) series (φ=0.8): the 95%
	// batch-means CI must contain the true mean close to 95% of the
	// time. φ=0.8 gives strong autocorrelation — a naive iid CI would
	// cover far less (the sanity check at the bottom).
	const trials, n = 400, 20000
	const truth = 2.0
	contains, naive := 0, 0
	for k := 0; k < trials; k++ {
		src := rng.New(uint64(1000+k), 0)
		var b BatchMeans
		var iid Welford
		x := 0.0
		for i := 0; i < n; i++ {
			x = 0.8*x + src.NormFloat64()
			v := truth + x
			b.Add(v)
			iid.Add(v)
		}
		r := QoMReport(&b, 0.95)
		if r.Level == 0 {
			t.Fatalf("trial %d: no CI after %d observations", k, n)
		}
		if math.Abs(r.Mean-truth) <= r.HalfWidth {
			contains++
		}
		z := NormalQuantile(0.975)
		if math.Abs(iid.Mean-truth) <= z*iid.StdErr() {
			naive++
		}
	}
	rate := float64(contains) / trials
	if rate < 0.85 || rate > 1.0 {
		t.Fatalf("95%% batch-means CI covered %v of the time", rate)
	}
	if naiveRate := float64(naive) / trials; naiveRate > rate-0.2 {
		t.Fatalf("naive iid CI coverage %v not clearly worse than batch means %v — series not autocorrelated enough to test anything", naiveRate, rate)
	}
}

func TestMSERTruncationDetectsWarmup(t *testing.T) {
	// A decaying transient on the first quarter of the batches: MSER
	// must truncate a nontrivial prefix.
	means := make([]float64, 40)
	for i := range means {
		means[i] = 1.0
		if i < 10 {
			means[i] += 5 * math.Exp(-float64(i))
		}
		if i%2 == 0 {
			means[i] += 0.01
		} else {
			means[i] -= 0.01
		}
	}
	d := MSERTruncation(means)
	if d < 1 || d > 10 {
		t.Fatalf("truncation %d, want within the transient (1..10)", d)
	}
	// A flat series needs no truncation.
	flat := make([]float64, 40)
	for i := range flat {
		flat[i] = 3 + 0.001*float64(i%3)
	}
	if d := MSERTruncation(flat); d > 2 {
		t.Fatalf("flat series truncated at %d", d)
	}
	if MSERTruncation(nil) != 0 || MSERTruncation([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must not truncate")
	}
}

func TestQoMReportFields(t *testing.T) {
	var b BatchMeans
	// 512 events, every 4th captured: QoM exactly 0.25.
	for i := 0; i < 512; i++ {
		if i%4 == 0 {
			b.Add(1)
		} else {
			b.Add(0)
		}
	}
	r := QoMReport(&b, 0.95)
	if r.Method != MethodBatchMeans || r.Events != 512 || r.Captures != 128 {
		t.Fatalf("report %+v", r)
	}
	if r.Mean != 0.25 {
		t.Fatalf("mean %v, want exactly 0.25", r.Mean)
	}
	if r.Level != 0.95 || r.Count < 2 || r.Batches == 0 || r.BatchLen == 0 {
		t.Fatalf("CI bookkeeping %+v", r)
	}
	if r.TruncatedCount != int64(r.TruncatedBatches)*r.BatchLen {
		t.Fatalf("truncation accounting %+v", r)
	}
}

func TestReplicationReportAndWelfordRoundTrip(t *testing.T) {
	var w Welford
	qoms := []float64{0.2, 0.25, 0.3, 0.35}
	for _, q := range qoms {
		w.Add(q)
	}
	r := ReplicationReport(w, 4000, 1100, 0.95)
	if r.Method != MethodReplication || r.Count != 4 {
		t.Fatalf("report %+v", r)
	}
	if r.Mean != 1100.0/4000.0 {
		t.Fatalf("pooled mean %v", r.Mean)
	}
	if math.Abs(r.SampleMean-0.275) > 1e-12 {
		t.Fatalf("sample mean %v", r.SampleMean)
	}
	if r.Level != 0.95 || r.HalfWidth <= 0 || r.RelHalfWidth <= 0 {
		t.Fatalf("CI %+v", r)
	}
	// Reconstructing the accumulator from the report is exact.
	got := r.Welford()
	if got.N != w.N || math.Abs(got.Mean-w.Mean) > 1e-15 || math.Abs(got.M2-w.M2) > 1e-12 {
		t.Fatalf("round trip %+v, want %+v", got, w)
	}
	// A single replication yields no CI.
	var one Welford
	one.Add(0.5)
	if r := ReplicationReport(one, 10, 5, 0.95); r.Level != 0 || r.HalfWidth != 0 {
		t.Fatalf("single-rep CI %+v", r)
	}
}

func TestConvergenceMonitor(t *testing.T) {
	mon := ConvergenceMonitor{TargetRelHW: 0.05, MinCount: 4}
	base := Report{Level: 0.95, Count: 8, RelHalfWidth: 0.04}
	if !mon.Converged(base) {
		t.Fatal("tight CI not accepted")
	}
	for name, r := range map[string]Report{
		"wide":    {Level: 0.95, Count: 8, RelHalfWidth: 0.08},
		"few":     {Level: 0.95, Count: 2, RelHalfWidth: 0.01},
		"no-ci":   {Count: 8, RelHalfWidth: 0.01},
		"zero-hw": {Level: 0.95, Count: 8},
	} {
		if mon.Converged(r) {
			t.Errorf("%s accepted: %+v", name, r)
		}
	}
	if (ConvergenceMonitor{}).Converged(base) {
		t.Fatal("disabled monitor converged")
	}
}

func TestPool(t *testing.T) {
	var p Pool
	a := Report{Method: MethodBatchMeans, Events: 1000, Captures: 250, Mean: 0.25, Level: 0.95, HalfWidth: 0.02}
	b := Report{Method: MethodBatchMeans, Events: 3000, Captures: 900, Mean: 0.3, Level: 0.95, HalfWidth: 0.01}
	p.Add(a)
	p.Add(b)
	r := p.Report(0.95)
	if r.Method != MethodPooled || r.Of != MethodBatchMeans || p.Runs() != 2 {
		t.Fatalf("pooled %+v", r)
	}
	if r.Events != 4000 || r.Captures != 1150 || r.Mean != 1150.0/4000.0 {
		t.Fatalf("pooled totals %+v", r)
	}
	wantHW := math.Sqrt(math.Pow(1000*0.02, 2)+math.Pow(3000*0.01, 2)) / 4000
	if math.Abs(r.HalfWidth-wantHW) > 1e-15 {
		t.Fatalf("pooled half-width %v, want %v", r.HalfWidth, wantHW)
	}
	// A CI-less run poisons the pooled half-width but not the mean.
	p.Add(Report{Method: MethodReplication, Events: 1000, Captures: 100})
	r = p.Report(0.95)
	if r.Level != 0 || r.HalfWidth != 0 {
		t.Fatalf("pooled CI survived a CI-less run: %+v", r)
	}
	if r.Mean != 1250.0/5000.0 || r.Of != "mixed" {
		t.Fatalf("pooled mean/of %+v", r)
	}
	// Empty pool: zero report, no CI.
	var empty Pool
	if r := empty.Report(0.95); r.Level != 0 || r.Mean != 0 || r.Count != 0 {
		t.Fatalf("empty pool %+v", r)
	}
}
