package stats

// Streaming (O(1)-memory) estimators behind the simulation's stats
// probe (DESIGN.md §16): Welford mean/variance, the P² quantile
// estimator, batch means with growing batch size for autocorrelated
// per-slot series, MSER warmup truncation, and the relative-half-width
// convergence monitor that drives CI-targeted early stop.
//
// Determinism matters more than generality here: the probe's reports
// land in run manifests that `cmd/tracetool stats` re-derives from a
// trace alone, so every accumulator below is written so that feeding
// the same value sequence reproduces bit-identical state. In
// particular BatchMeans.AddN is exact (not just close) for the 0/1
// QoM indicator stream, because batch lengths are powers of two and
// indicator sums are small integers — both exactly representable.

import (
	"math"
	"sort"
)

// DefaultCILevel is the confidence level used for every streaming CI.
// Fixed rather than configurable: one level keeps manifests, the
// dashboard, and tracetool mutually comparable.
const DefaultCILevel = 0.95

// Report methods: how the CI in a Report was obtained.
const (
	// MethodBatchMeans: one run's per-event indicator stream, batched
	// into power-of-two batches whose means feed the CI.
	MethodBatchMeans = "batch-means"
	// MethodReplication: independent replications (the batch engine),
	// one QoM sample per replication.
	MethodReplication = "replication"
	// MethodPooled: several runs' reports pooled (an experiment series).
	MethodPooled = "pooled"
)

// Welford is the standard online mean/variance accumulator
// (numerically stable single-pass algorithm). The zero value is ready
// to use. Merge implements the parallel combination of Chan et al., so
// per-replication accumulators can be folded deterministically.
type Welford struct {
	N    int64
	Mean float64
	M2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
}

// AddN folds n identical observations in (a degenerate merge: mean x,
// zero spread). Equivalent in law to n Add(x) calls but O(1).
func (w *Welford) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	w.Merge(Welford{N: n, Mean: x})
}

// Merge folds another accumulator in (Chan et al. pairwise update).
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.Mean += d * float64(o.N) / float64(n)
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.N = n
}

// Variance returns the sample variance (n−1 denominator), 0 for fewer
// than two observations.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.N < 1 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.N))
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac 1985): five markers, O(1) memory, no stored
// samples. For the first five observations the estimate is exact
// (computed from the sorted prefix). Construct with NewP2Quantile.
type P2Quantile struct {
	p     float64
	q     [5]float64 // marker heights (first 5 raw observations before init)
	n     [5]int64   // marker positions (1-based)
	np    [5]float64 // desired positions
	dn    [5]float64 // desired-position increments
	count int64
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	return &P2Quantile{p: p}
}

// Count returns the number of observations folded in.
func (e *P2Quantile) Count() int64 { return e.count }

// P returns the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// Add folds one observation in.
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.n = [5]int64{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	// Find the cell k with q[k] <= x < q[k+1], extending extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}
	e.count++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := int64(1)
			if d < 0 {
				s = -1
			}
			if qn := e.parabolic(i, s); e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height update for marker i
// moving by s ∈ {−1, +1}.
func (e *P2Quantile) parabolic(i int, s int64) float64 {
	fs := float64(s)
	n0, n1, n2 := float64(e.n[i-1]), float64(e.n[i]), float64(e.n[i+1])
	return e.q[i] + fs/(n2-n0)*
		((n1-n0+fs)*(e.q[i+1]-e.q[i])/(n2-n1)+
			(n2-n1-fs)*(e.q[i]-e.q[i-1])/(n1-n0))
}

// linear is the fallback height update when the parabolic prediction
// would leave the bracket [q[i−1], q[i+1]].
func (e *P2Quantile) linear(i int, s int64) float64 {
	j := i + int(s)
	return e.q[i] + float64(s)*(e.q[j]-e.q[i])/float64(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate: exact for fewer than
// five observations, the P² central marker afterwards. Returns 0 with
// no observations.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		xs := make([]float64, e.count)
		copy(xs, e.q[:e.count])
		sort.Float64s(xs)
		// Linear interpolation at rank p·(n−1), matching Quantile.
		pos := e.p * float64(len(xs)-1)
		lo := int(pos)
		if lo >= len(xs)-1 {
			return xs[len(xs)-1]
		}
		frac := pos - float64(lo)
		return xs[lo] + frac*(xs[lo+1]-xs[lo])
	}
	return e.q[2]
}

// batchMeansMaxBatches bounds BatchMeans memory: when the 64 slots
// fill, adjacent batches pair-merge and the batch length doubles.
// Power-of-two batch lengths keep every batch mean an exact dyadic
// rational for 0/1 indicator streams, which is what lets
// cmd/tracetool reproduce a probe report bit-for-bit from a trace.
const batchMeansMaxBatches = 64

// mserMinBatches is the minimum completed-batch count before MSER
// truncation is attempted; below it the estimate is too noisy to
// justify discarding data.
const mserMinBatches = 8

// BatchMeans accumulates a (possibly autocorrelated) series into
// growing batches for CI estimation: the method of batch means with
// power-of-two batch-size doubling. The zero value is ready to use
// (initial batch length 1).
type BatchMeans struct {
	batchLen   int64
	means      [batchMeansMaxBatches]float64
	nb         int
	curSum     float64
	curCount   int64
	totalSum   float64
	totalCount int64
}

// Add folds one observation in.
func (b *BatchMeans) Add(x float64) {
	if b.batchLen == 0 {
		b.batchLen = 1
	}
	b.totalSum += x
	b.totalCount++
	b.curSum += x
	b.curCount++
	if b.curCount == b.batchLen {
		b.closeBatch()
	}
}

// AddN folds n identical observations in, walking batch boundaries so
// the resulting state matches n Add(x) calls. Exact (bit-identical to
// the loop) whenever x·k is exactly representable for k up to the
// batch length — always true for the 0/1 indicator streams this
// package feeds it.
func (b *BatchMeans) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if b.batchLen == 0 {
		b.batchLen = 1
	}
	b.totalSum += x * float64(n)
	b.totalCount += n
	for n > 0 {
		take := b.batchLen - b.curCount
		if take > n {
			take = n
		}
		b.curSum += x * float64(take)
		b.curCount += take
		n -= take
		if b.curCount == b.batchLen {
			b.closeBatch()
		}
	}
}

func (b *BatchMeans) closeBatch() {
	b.means[b.nb] = b.curSum / float64(b.batchLen)
	b.nb++
	b.curSum = 0
	b.curCount = 0
	if b.nb == batchMeansMaxBatches {
		for i := 0; i < batchMeansMaxBatches/2; i++ {
			b.means[i] = (b.means[2*i] + b.means[2*i+1]) / 2
		}
		b.nb = batchMeansMaxBatches / 2
		b.batchLen *= 2
	}
}

// Count returns the total number of observations folded in.
func (b *BatchMeans) Count() int64 { return b.totalCount }

// Sum returns the exact running sum of all observations.
func (b *BatchMeans) Sum() float64 { return b.totalSum }

// Mean returns the grand mean over every observation (not just the
// completed batches).
func (b *BatchMeans) Mean() float64 {
	if b.totalCount == 0 {
		return 0
	}
	return b.totalSum / float64(b.totalCount)
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return b.nb }

// BatchLen returns the current batch length.
func (b *BatchMeans) BatchLen() int64 {
	if b.batchLen == 0 {
		return 1
	}
	return b.batchLen
}

// CI computes a confidence interval from the completed batch means,
// after MSER warmup truncation (attempted once mserMinBatches batches
// exist). It returns the retained-batch sample mean and variance, the
// CI half-width, the retained/truncated batch counts, and ok=false
// when fewer than two batches remain (no CI possible yet).
func (b *BatchMeans) CI(level float64) (sampleMean, variance, halfWidth float64, retained, truncated int, ok bool) {
	d := 0
	if b.nb >= mserMinBatches {
		d = MSERTruncation(b.means[:b.nb])
	}
	retained = b.nb - d
	truncated = d
	if retained < 2 {
		return 0, 0, 0, retained, truncated, false
	}
	var w Welford
	for _, m := range b.means[d:b.nb] {
		w.Add(m)
	}
	z := NormalQuantile(0.5 + level/2)
	return w.Mean, w.Variance(), z * w.StdErr(), retained, truncated, true
}

// MSERTruncation returns the warmup truncation point d (in batches)
// for the given batch-mean series: the d ∈ [0, n/2] minimizing the
// MSER statistic SSE(d)/(n−d)², i.e. the squared standard error of
// the retained mean. Computed with suffix sums in O(n).
func MSERTruncation(means []float64) int {
	n := len(means)
	if n < 2 {
		return 0
	}
	// Suffix sums: s[d] = Σ means[d:], s2[d] = Σ means[d:]².
	s := make([]float64, n+1)
	s2 := make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		s[d] = s[d+1] + means[d]
		s2[d] = s2[d+1] + means[d]*means[d]
	}
	best, bestD := math.Inf(1), 0
	for d := 0; d <= n/2; d++ {
		m := float64(n - d)
		sse := s2[d] - s[d]*s[d]/m
		if sse < 0 {
			sse = 0 // numeric guard: SSE is non-negative by construction
		}
		if stat := sse / (m * m); stat < best {
			best = stat
			bestD = d
		}
	}
	return bestD
}

// Report is the streaming-statistics summary attached to results,
// manifests (schema v4), the run journal, and tracetool output. Events
// and Captures are the exact totals behind Mean = Captures/Events; the
// CI fields describe the uncertainty estimate named by Method.
type Report struct {
	// Method is how the CI was obtained: MethodBatchMeans,
	// MethodReplication, or MethodPooled.
	Method string `json:"method"`
	// Events and Captures are the exact event totals; Mean is
	// Captures/Events (the QoM point estimate).
	Events   int64   `json:"events"`
	Captures int64   `json:"captures"`
	Mean     float64 `json:"mean"`

	// Count is the number of CI samples behind the interval: retained
	// batches (batch-means), replications (replication), or runs
	// (pooled). SampleMean/Variance describe those samples — for the
	// replication method SampleMean (the mean of per-replication QoMs)
	// differs from the pooled Mean in general.
	Count      int64   `json:"count,omitempty"`
	SampleMean float64 `json:"sample_mean,omitempty"`
	Variance   float64 `json:"variance,omitempty"`

	// Level is the confidence level (set only when a CI was computed);
	// HalfWidth the CI half-width around Mean, RelHalfWidth the ratio
	// HalfWidth/Mean driving convergence decisions.
	Level        float64 `json:"level,omitempty"`
	HalfWidth    float64 `json:"half_width,omitempty"`
	RelHalfWidth float64 `json:"rel_half_width,omitempty"`

	// Batch-means bookkeeping: completed batches, current batch length,
	// and the MSER warmup truncation (batches and observations dropped
	// from the CI; the point estimate always uses every observation).
	Batches          int   `json:"batches,omitempty"`
	BatchLen         int64 `json:"batch_len,omitempty"`
	TruncatedBatches int   `json:"truncated_batches,omitempty"`
	TruncatedCount   int64 `json:"truncated_count,omitempty"`

	// Of names the underlying per-run method for pooled reports:
	// "batch-means", "replication", or "mixed".
	Of string `json:"of,omitempty"`

	// Battery summarizes the battery-occupancy stream, when sampled.
	Battery *BatteryReport `json:"battery,omitempty"`
}

// BatteryReport summarizes the sampled battery-occupancy stream
// (fractions of capacity in [0,1]).
type BatteryReport struct {
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	P10    float64 `json:"p10"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
}

// Welford reconstructs the replication accumulator a Report was built
// from (exact: M2 = Variance·(N−1)), so early-stop rounds can merge
// per-round reports without keeping the accumulators alive.
func (r Report) Welford() Welford {
	if r.Count == 0 {
		return Welford{}
	}
	return Welford{N: r.Count, Mean: r.SampleMean, M2: r.Variance * float64(r.Count-1)}
}

// QoMReport builds the batch-means Report for a 0/1 QoM indicator
// stream accumulated in b. Both the sim probe and tracetool's replay
// go through this one constructor, which is what makes their reports
// comparable field by field.
func QoMReport(b *BatchMeans, level float64) Report {
	r := Report{
		Method:   MethodBatchMeans,
		Events:   b.Count(),
		Captures: int64(math.Round(b.Sum())), // indicator sums are exact integers
		Mean:     b.Mean(),
		Batches:  b.Batches(),
		BatchLen: b.BatchLen(),
	}
	sm, v, hw, retained, truncated, ok := b.CI(level)
	if ok {
		r.Count = int64(retained)
		r.SampleMean = sm
		r.Variance = v
		r.Level = level
		r.HalfWidth = hw
		r.TruncatedBatches = truncated
		r.TruncatedCount = int64(truncated) * b.BatchLen()
		if r.Mean > 0 {
			r.RelHalfWidth = hw / r.Mean
		}
	}
	return r
}

// ReplicationReport builds the Report for independent replications:
// one QoM sample per replication in w, exact event totals alongside.
// Mean is the pooled Captures/Events; the CI is centered on it with
// the spread of the per-replication samples.
func ReplicationReport(w Welford, events, captures int64, level float64) Report {
	r := Report{
		Method:   MethodReplication,
		Events:   events,
		Captures: captures,
		Count:    w.N,
	}
	if events > 0 {
		r.Mean = float64(captures) / float64(events)
	}
	r.SampleMean = w.Mean
	r.Variance = w.Variance()
	if w.N >= 2 {
		z := NormalQuantile(0.5 + level/2)
		r.Level = level
		r.HalfWidth = z * w.StdErr()
		if r.Mean > 0 {
			r.RelHalfWidth = r.HalfWidth / r.Mean
		}
	}
	return r
}

// ConvergenceMonitor decides when a streaming estimate is tight
// enough: the CI exists, rests on at least MinCount samples, and its
// relative half-width is at or under TargetRelHW.
type ConvergenceMonitor struct {
	TargetRelHW float64
	MinCount    int64
}

// Converged reports whether r satisfies the monitor's target.
func (c ConvergenceMonitor) Converged(r Report) bool {
	if c.TargetRelHW <= 0 || r.Level == 0 || r.Count < c.MinCount {
		return false
	}
	return r.RelHalfWidth > 0 && r.RelHalfWidth <= c.TargetRelHW
}

// Pool combines per-run Reports into one pooled estimate for an
// experiment series: exact pooled mean Σcaptures/Σevents, and a
// half-width from the event-weighted per-run half-widths
// (√Σ(eᵢ·hwᵢ)²/Σe — exact for independent runs). The zero value is
// ready to use.
type Pool struct {
	runs     int64
	events   int64
	captures int64
	wHW2     float64 // Σ (events_i · hw_i)²
	of       string
	noCI     bool // some run had no CI → pooled half-width unavailable
}

// Add folds one run's report in.
func (p *Pool) Add(r Report) {
	p.runs++
	p.events += r.Events
	p.captures += r.Captures
	if r.Level == 0 {
		p.noCI = true
	} else {
		w := float64(r.Events) * r.HalfWidth
		p.wHW2 += w * w
	}
	method := r.Method
	if r.Method == MethodPooled {
		method = r.Of
	}
	switch {
	case p.of == "":
		p.of = method
	case p.of != method:
		p.of = "mixed"
	}
}

// Runs returns the number of reports folded in.
func (p *Pool) Runs() int64 { return p.runs }

// Report returns the pooled report (method "pooled"). Level and the
// half-width fields are set only when every folded run carried a CI.
func (p *Pool) Report(level float64) Report {
	r := Report{
		Method:   MethodPooled,
		Events:   p.events,
		Captures: p.captures,
		Count:    p.runs,
		Of:       p.of,
	}
	if p.events > 0 {
		r.Mean = float64(p.captures) / float64(p.events)
	}
	if p.runs > 0 && !p.noCI && p.events > 0 {
		r.Level = level
		r.HalfWidth = math.Sqrt(p.wHW2) / float64(p.events)
		if r.Mean > 0 {
			r.RelHalfWidth = r.HalfWidth / r.Mean
		}
	}
	return r
}
