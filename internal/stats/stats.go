// Package stats provides the statistical machinery used to validate the
// simulator and to attach uncertainty to measured QoM values: descriptive
// statistics, batch-means confidence intervals for dependent time series
// (simulation output is autocorrelated, so naive CIs would be too tight),
// and a chi-square goodness-of-fit test used by the sampler tests.
package stats

import (
	"fmt"
	"math"
	"sort"

	"eventcap/internal/numeric"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1)
	Min, Max float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var sum numeric.KahanSum
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		sum.Add(x)
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	mean := sum.Value() / float64(len(xs))
	var ss numeric.KahanSum
	for _, x := range xs {
		d := x - mean
		ss.Add(d * d)
	}
	variance := 0.0
	if len(xs) > 1 {
		variance = ss.Value() / float64(len(xs)-1)
	}
	return Summary{N: len(xs), Mean: mean, Variance: variance, Min: minV, Max: maxV}
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.N))
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// MeanCI returns the normal-approximation confidence interval for the
// mean of an i.i.d. sample at the given level (0 < level < 1).
func MeanCI(xs []float64, level float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, fmt.Errorf("stats: need at least 2 observations, got %d", len(xs))
	}
	if !(level > 0 && level < 1) {
		return Interval{}, fmt.Errorf("stats: confidence level must be in (0,1), got %g", level)
	}
	s := Summarize(xs)
	z := NormalQuantile(0.5 + level/2)
	h := z * s.StdErr()
	return Interval{Lo: s.Mean - h, Hi: s.Mean + h, Level: level}, nil
}

// BatchMeansCI estimates a confidence interval for the steady-state mean
// of a dependent (autocorrelated) series using the method of batch means:
// the series is cut into numBatches contiguous batches, whose means are
// approximately independent for long batches.
func BatchMeansCI(series []float64, numBatches int, level float64) (Interval, error) {
	if numBatches < 2 {
		return Interval{}, fmt.Errorf("stats: need at least 2 batches, got %d", numBatches)
	}
	if len(series) < 2*numBatches {
		return Interval{}, fmt.Errorf("stats: series of %d too short for %d batches", len(series), numBatches)
	}
	batchLen := len(series) / numBatches
	means := make([]float64, numBatches)
	for b := 0; b < numBatches; b++ {
		means[b] = Summarize(series[b*batchLen : (b+1)*batchLen]).Mean
	}
	return MeanCI(means, level)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), using the
// Beasley-Springer-Moro rational approximation (absolute error < 3e-9 —
// ample for confidence intervals).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Coefficients of the BSM algorithm.
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}

// ChiSquare runs a chi-square goodness-of-fit test of observed counts
// against expected probabilities (which must sum to ~1). Cells with
// expected count below 5 are pooled into their neighbor to keep the
// approximation valid. It returns the statistic, the degrees of freedom,
// and whether the null hypothesis survives at the 0.01 significance level
// (via the Wilson-Hilferty approximation of the chi-square quantile).
func ChiSquare(observed []int64, probs []float64) (stat float64, dof int, ok bool, err error) {
	if len(observed) != len(probs) {
		return 0, 0, false, fmt.Errorf("stats: %d observed cells but %d probabilities", len(observed), len(probs))
	}
	if len(observed) < 2 {
		return 0, 0, false, fmt.Errorf("stats: need at least 2 cells")
	}
	var total int64
	for _, o := range observed {
		if o < 0 {
			return 0, 0, false, fmt.Errorf("stats: negative count %d", o)
		}
		total += o
	}
	if total == 0 {
		return 0, 0, false, fmt.Errorf("stats: empty sample")
	}
	psum := numeric.Sum(probs)
	if math.Abs(psum-1) > 1e-6 {
		return 0, 0, false, fmt.Errorf("stats: probabilities sum to %g", psum)
	}

	// Pool consecutive cells until each pooled cell reaches expected
	// count 5; a small final remainder merges backward.
	type cell struct {
		obs int64
		exp float64
	}
	var cells []cell
	var cur cell
	for i := range observed {
		cur.obs += observed[i]
		cur.exp += probs[i] * float64(total)
		if cur.exp >= 5 {
			cells = append(cells, cur)
			cur = cell{}
		}
	}
	if cur.exp > 0 {
		if n := len(cells); n > 0 {
			cells[n-1].obs += cur.obs
			cells[n-1].exp += cur.exp
		} else {
			cells = append(cells, cur)
		}
	}
	if len(cells) < 2 {
		return 0, 0, false, fmt.Errorf("stats: too few cells after pooling")
	}
	var s numeric.KahanSum
	for _, c := range cells {
		if c.exp <= 0 {
			continue
		}
		d := float64(c.obs) - c.exp
		s.Add(d * d / c.exp)
	}
	stat = s.Value()
	dof = len(cells) - 1
	crit := chiSquareQuantile99(dof)
	return stat, dof, stat <= crit, nil
}

// chiSquareQuantile99 approximates the 0.99 quantile of chi-square with
// k degrees of freedom (Wilson–Hilferty).
func chiSquareQuantile99(k int) float64 {
	z := NormalQuantile(0.99)
	kf := float64(k)
	t := 1 - 2/(9*kf) + z*math.Sqrt(2/(9*kf))
	return kf * t * t * t
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample by linear
// interpolation of the order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// Autocorrelation returns the lag-k sample autocorrelation of the series.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, fmt.Errorf("stats: lag %d out of range for %d points", lag, len(xs))
	}
	s := Summarize(xs)
	if s.Variance == 0 {
		return 0, fmt.Errorf("stats: zero-variance series")
	}
	var num numeric.KahanSum
	for i := 0; i+lag < len(xs); i++ {
		num.Add((xs[i] - s.Mean) * (xs[i+lag] - s.Mean))
	}
	den := s.Variance * float64(len(xs)-1)
	return num.Value() / den, nil
}
