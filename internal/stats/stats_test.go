package stats

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	want := (1.5*1.5 + 0.5*0.5 + 0.5*0.5 + 1.5*1.5) / 3
	if math.Abs(s.Variance-want) > 1e-12 {
		t.Fatalf("variance %v, want %v", s.Variance, want)
	}
	if math.Abs(s.StdErr()-s.StdDev()/2) > 1e-12 {
		t.Fatal("stderr relation broken")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	if s := Summarize([]float64{7}); s.Variance != 0 || s.Mean != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959964,
		0.995:  2.575829,
		0.025:  -1.959964,
		0.8413: 0.99982, // ~Φ(1)
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 2e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Error("quantile at 0/1 should be NaN")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// ~95% of 95% CIs over repeated normal samples must contain the true
	// mean.
	src := rng.New(5, 0)
	const trials, n = 800, 60
	contains := 0
	for k := 0; k < trials; k++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 3 + 2*src.NormFloat64()
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(3) {
			contains++
		}
	}
	rate := float64(contains) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Fatalf("95%% CI covered the mean %v of the time", rate)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("single observation accepted")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestBatchMeansCI(t *testing.T) {
	// An AR(1)-style dependent series: batch means still bracket the
	// true mean.
	src := rng.New(9, 0)
	const n = 40000
	series := make([]float64, n)
	x := 0.0
	for i := range series {
		x = 0.9*x + src.NormFloat64()
		series[i] = 5 + x
	}
	iv, err := BatchMeansCI(series, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(5) {
		t.Fatalf("batch-means CI %v does not contain the true mean 5", iv)
	}
	if iv.Width() <= 0 {
		t.Fatal("degenerate interval")
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := BatchMeansCI(make([]float64, 10), 1, 0.95); err == nil {
		t.Fatal("single batch accepted")
	}
	if _, err := BatchMeansCI(make([]float64, 5), 4, 0.95); err == nil {
		t.Fatal("too-short series accepted")
	}
}

func TestChiSquareAcceptsTrueDistribution(t *testing.T) {
	src := rng.New(13, 0)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	counts := make([]int64, 4)
	for i := 0; i < 100000; i++ {
		u := src.Float64()
		switch {
		case u < 0.1:
			counts[0]++
		case u < 0.3:
			counts[1]++
		case u < 0.6:
			counts[2]++
		default:
			counts[3]++
		}
	}
	_, dof, ok, err := ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 3 {
		t.Fatalf("dof %d, want 3", dof)
	}
	if !ok {
		t.Fatal("chi-square rejected the true distribution")
	}
}

func TestChiSquareRejectsWrongDistribution(t *testing.T) {
	counts := []int64{50000, 50000} // actually 50/50
	probs := []float64{0.9, 0.1}    // claimed 90/10
	stat, _, ok, err := ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("chi-square accepted a grossly wrong model (stat %v)", stat)
	}
}

func TestChiSquarePoolsSmallCells(t *testing.T) {
	// Many tiny-probability cells must be pooled, not crash or blow up.
	probs := []float64{0.97, 0.01, 0.01, 0.005, 0.005}
	counts := []int64{388, 4, 4, 2, 2} // expected counts below 5 in the tail cells
	_, dof, ok, err := ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if dof >= 4 {
		t.Fatalf("expected pooling to reduce dof, got %d", dof)
	}
	if !ok {
		t.Fatal("exact counts rejected")
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, _, err := ChiSquare([]int64{1}, []float64{1}); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, _, _, err := ChiSquare([]int64{1, 2}, []float64{0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, _, err := ChiSquare([]int64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, _, _, err := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, _, err := ChiSquare([]int64{1, 2}, []float64{0.5, 0.2}); err == nil {
		t.Fatal("non-normalized probabilities accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for q, want := range map[float64]float64{0: 1, 1: 4, 0.5: 2.5} {
		got, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Quantile(xs, 2); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series: lag-1 autocorrelation ≈ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i%2)*2 - 1
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > -0.95 {
		t.Fatalf("lag-1 autocorrelation %v, want ~-1", r1)
	}
	r0, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1) > 1e-9 {
		t.Fatalf("lag-0 autocorrelation %v, want 1", r0)
	}
	if _, err := Autocorrelation(xs, len(xs)); err == nil {
		t.Fatal("excessive lag accepted")
	}
	if _, err := Autocorrelation([]float64{1, 1, 1}, 1); err == nil {
		t.Fatal("zero-variance series accepted")
	}
}
