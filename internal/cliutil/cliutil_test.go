package cliutil

import (
	"math"
	"strings"
	"testing"
)

func TestParseDistOK(t *testing.T) {
	cases := map[string]string{
		"weibull:40,3":      "Weibull(40,3)",
		"pareto:2,10":       "Pareto(2,10)",
		"geometric:0.2":     "Geometric(0.2)",
		"deterministic:7":   "Deterministic(7)",
		"uniform:3,9":       "UniformInt(3,9)",
		"markov:0.7,0.6":    "MarkovRenewal(a=0.7,b=0.6)",
		" WEIBULL : 40, 3 ": "Weibull(40,3)", // whitespace and case
	}
	for spec, wantName := range cases {
		d, err := ParseDist(spec)
		if err != nil {
			t.Errorf("ParseDist(%q): %v", spec, err)
			continue
		}
		if d.Name() != wantName {
			t.Errorf("ParseDist(%q) = %s, want %s", spec, d.Name(), wantName)
		}
	}
}

func TestParseDistErrors(t *testing.T) {
	for _, spec := range []string{
		"", ":1,2", "nope:1", "weibull:40", "weibull:40,3,5",
		"weibull:abc,3", "pareto:0.5,10", "geometric:2",
	} {
		if _, err := ParseDist(spec); err == nil {
			t.Errorf("ParseDist(%q) succeeded", spec)
		}
	}
}

func TestParseRechargeOK(t *testing.T) {
	cases := map[string]float64{
		"bernoulli:0.5,1":   0.5,
		"periodic:5,10":     0.5,
		"constant:0.5":      0.5,
		"onoff:1.5,0.1,0.1": 0.75,
	}
	for spec, wantMean := range cases {
		mk, err := ParseRecharge(spec)
		if err != nil {
			t.Errorf("ParseRecharge(%q): %v", spec, err)
			continue
		}
		r := mk()
		if math.Abs(r.Mean()-wantMean) > 1e-9 {
			t.Errorf("ParseRecharge(%q).Mean() = %v, want %v", spec, r.Mean(), wantMean)
		}
		// Factories must return fresh instances.
		if mk() == r && !strings.HasPrefix(spec, "constant") && !strings.HasPrefix(spec, "bernoulli") {
			t.Errorf("ParseRecharge(%q) reuses stateful instances", spec)
		}
	}
}

func TestParseRechargeGaussianMean(t *testing.T) {
	mk, err := ParseRecharge("gaussian:1,0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m := mk().Mean(); math.Abs(m-1) > 0.01 {
		t.Fatalf("gaussian mean %v, want ~1", m)
	}
}

func TestParseRechargeErrors(t *testing.T) {
	for _, spec := range []string{
		"", "wat:1", "bernoulli:0.5", "bernoulli:2,1", "periodic:5",
		"constant:-1", "onoff:1,0,0.5",
	} {
		if _, err := ParseRecharge(spec); err == nil {
			t.Errorf("ParseRecharge(%q) succeeded", spec)
		}
	}
}

func TestParseDistLogNormal(t *testing.T) {
	d, err := ParseDist("lognormal:3,0.4")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "LogNormal(3,0.4)" {
		t.Fatalf("name %s", d.Name())
	}
	if _, err := ParseDist("lognormal:3"); err == nil {
		t.Fatal("missing sigma accepted")
	}
}

func TestParseDistNegBinomial(t *testing.T) {
	d, err := ParseDist("negbinomial:4,0.3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "NegBinomial(k=4,p=0.3)" {
		t.Fatalf("name %s", d.Name())
	}
	if _, err := ParseDist("erlang:2,0.5"); err != nil {
		t.Fatalf("erlang alias rejected: %v", err)
	}
	if _, err := ParseDist("negbinomial:0,0.5"); err == nil {
		t.Fatal("k=0 accepted")
	}
}
