package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// ResolveProfilePath places a bare profile filename inside outDir so the
// profile lands beside the run manifests it belongs to. Empty paths pass
// through (profile disabled), as do paths that already name a directory
// and paths used without an output directory.
func ResolveProfilePath(path, outDir string) string {
	if path == "" || outDir == "" || filepath.Dir(path) != "." {
		return path
	}
	return filepath.Join(outDir, path)
}

// StartProfiles begins CPU profiling into cpuPath and arranges a heap
// profile to be written to memPath; either path may be empty to disable
// that profile. The returned stop function must run exactly once, after
// the profiled work (it stops the CPU profile, forces a GC so the heap
// profile reflects live data, and writes the heap profile).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cliutil: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cliutil: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cliutil: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("cliutil: creating heap profile: %w", err)
			}
			defer memFile.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("cliutil: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
