// Package cliutil parses the command-line mini-language shared by the
// cmd/ binaries: distribution and recharge-process specs of the form
// "name:param1,param2".
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"eventcap/internal/dist"
	"eventcap/internal/energy"
)

// splitSpec parses "name:1,2" into the name and its float parameters.
func splitSpec(spec string) (string, []float64, error) {
	name, rest, _ := strings.Cut(spec, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return "", nil, fmt.Errorf("cliutil: empty spec")
	}
	var params []float64
	if strings.TrimSpace(rest) != "" {
		for _, tok := range strings.Split(rest, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return "", nil, fmt.Errorf("cliutil: bad parameter %q in %q", tok, spec)
			}
			params = append(params, v)
		}
	}
	return name, params, nil
}

func wantParams(spec string, params []float64, n int) error {
	if len(params) != n {
		return fmt.Errorf("cliutil: %q needs %d parameters, got %d", spec, n, len(params))
	}
	return nil
}

// ParseDist builds an inter-arrival distribution from a spec:
//
//	weibull:SCALE,SHAPE      e.g. weibull:40,3   (the paper's W(40,3))
//	pareto:INDEX,MIN         e.g. pareto:2,10    (the paper's P(2,10))
//	geometric:P              memoryless, the Poisson analog
//	deterministic:D          fixed D-slot gaps
//	uniform:LO,HI            uniform on integer slots [LO, HI]
//	markov:A,B               renewal view of a 2-state Markov chain
//	lognormal:MU,SIGMA       ln X ~ N(MU, SIGMA^2); unimodal hazard
//	negbinomial:K,P          sum of K Geometric(P) stages (discrete Erlang)
func ParseDist(spec string) (dist.Interarrival, error) {
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "weibull":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewWeibull(params[0], params[1])
	case "pareto":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewPareto(params[0], params[1])
	case "geometric":
		if err := wantParams(spec, params, 1); err != nil {
			return nil, err
		}
		return dist.NewGeometric(params[0])
	case "deterministic":
		if err := wantParams(spec, params, 1); err != nil {
			return nil, err
		}
		return dist.NewDeterministic(int(params[0]))
	case "uniform":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewUniformInt(int(params[0]), int(params[1]))
	case "markov":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewMarkovRenewal(params[0], params[1])
	case "lognormal":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewLogNormal(params[0], params[1])
	case "negbinomial", "erlang":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		return dist.NewNegBinomial(int(params[0]), params[1])
	default:
		return nil, fmt.Errorf("cliutil: unknown distribution %q (want weibull, pareto, geometric, deterministic, uniform, markov, lognormal, negbinomial)", name)
	}
}

// ParseRecharge returns a factory for recharge processes from a spec:
//
//	bernoulli:Q,C            C units with probability Q per slot
//	periodic:AMOUNT,PERIOD   AMOUNT units every PERIOD slots
//	constant:E               E units every slot
//	gaussian:MU,SIGMA        max(0, N(MU, SIGMA^2)) per slot
//	onoff:AMT,P_OFF,P_ON     bursty two-state source
//
// A factory is returned (rather than an instance) because stateful
// processes must be per-sensor.
func ParseRecharge(spec string) (func() energy.Recharge, error) {
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	// Validate eagerly by constructing once.
	var factory func() (energy.Recharge, error)
	switch name {
	case "bernoulli":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		factory = func() (energy.Recharge, error) { return energy.NewBernoulli(params[0], params[1]) }
	case "periodic":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		factory = func() (energy.Recharge, error) { return energy.NewPeriodic(params[0], int(params[1])) }
	case "constant":
		if err := wantParams(spec, params, 1); err != nil {
			return nil, err
		}
		factory = func() (energy.Recharge, error) { return energy.NewConstant(params[0]) }
	case "gaussian":
		if err := wantParams(spec, params, 2); err != nil {
			return nil, err
		}
		factory = func() (energy.Recharge, error) { return energy.NewClippedGaussian(params[0], params[1]) }
	case "onoff":
		if err := wantParams(spec, params, 3); err != nil {
			return nil, err
		}
		factory = func() (energy.Recharge, error) { return energy.NewOnOff(params[0], params[1], params[2]) }
	default:
		return nil, fmt.Errorf("cliutil: unknown recharge process %q (want bernoulli, periodic, constant, gaussian, onoff)", name)
	}
	if _, err := factory(); err != nil {
		return nil, err
	}
	return func() energy.Recharge {
		r, err := factory()
		if err != nil {
			// Parameters were validated above; this is unreachable.
			panic(fmt.Sprintf("cliutil: recharge factory failed after validation: %v", err))
		}
		return r
	}, nil
}
