package renewal

import (
	"math"
	"testing"

	"eventcap/internal/dist"
	"eventcap/internal/numeric"
	"eventcap/internal/rng"
)

func mustProcess(t *testing.T, alpha []float64) *Process {
	t.Helper()
	p, err := New(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fromDist(t *testing.T, d dist.Interarrival) *Process {
	t.Helper()
	tab, err := dist.Tabulate(d, 1e-12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return mustProcess(t, tab.Alpha)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty PMF accepted")
	}
	if _, err := New([]float64{0.5, 0.4}); err == nil {
		t.Fatal("sub-stochastic PMF accepted")
	}
	if _, err := New([]float64{1.2, -0.2}); err == nil {
		t.Fatal("negative PMF accepted")
	}
}

func TestDeterministicMass(t *testing.T) {
	// X = 3 always: renewals at exactly 3, 6, 9, ...
	p := mustProcess(t, []float64{0, 0, 1})
	for tt := 1; tt <= 30; tt++ {
		want := 0.0
		if tt%3 == 0 {
			want = 1
		}
		if got := p.Mass(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Mass(%d)=%v, want %v", tt, got, want)
		}
	}
	if p.Mass(0) != 1 || p.Mass(-1) != 0 {
		t.Fatal("Mass boundary conventions violated")
	}
}

func TestGeometricMassConstant(t *testing.T) {
	// Memoryless: every slot is a renewal with probability p,
	// independent of history, so m(t) = p for all t >= 1.
	g, err := dist.NewGeometric(0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, g)
	for tt := 1; tt <= 200; tt++ {
		if got := p.Mass(tt); math.Abs(got-0.3) > 1e-9 {
			t.Fatalf("Mass(%d)=%v, want 0.3", tt, got)
		}
	}
}

func TestElementaryRenewalTheorem(t *testing.T) {
	w, err := dist.NewWeibull(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, w)
	// m(t) -> 1/μ.
	limit := p.LimitRate()
	avg := 0.0
	const from, to = 2000, 3000
	for tt := from; tt < to; tt++ {
		avg += p.Mass(tt)
	}
	avg /= to - from
	if math.Abs(avg-limit) > 1e-6 {
		t.Fatalf("mass average %v, limit %v", avg, limit)
	}
	// M(T)/T -> 1/μ.
	T := 50000
	if got := p.ExpectedCount(T) / float64(T); math.Abs(got-limit) > 1e-3 {
		t.Fatalf("M(T)/T=%v, want %v", got, limit)
	}
}

func TestExpectedCountMonotone(t *testing.T) {
	u, err := dist.NewUniformInt(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, u)
	prev := 0.0
	for T := 1; T <= 100; T++ {
		got := p.ExpectedCount(T)
		if got < prev-1e-12 {
			t.Fatalf("ExpectedCount decreased at %d", T)
		}
		prev = got
	}
	if p.ExpectedCount(0) != 0 {
		t.Fatal("ExpectedCount(0) != 0")
	}
}

func TestMassMatchesMonteCarlo(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, e)
	src := rng.New(99, 0)
	const trials = 300000
	const horizon = 12
	counts := make([]int, horizon+1)
	for k := 0; k < trials; k++ {
		t0 := 0
		for t0 <= horizon {
			t0 += e.Sample(src)
			if t0 <= horizon {
				counts[t0]++
			}
		}
	}
	for tt := 1; tt <= horizon; tt++ {
		got := float64(counts[tt]) / trials
		want := p.Mass(tt)
		sigma := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*sigma {
			t.Errorf("Mass(%d): MC %v vs analytic %v", tt, got, want)
		}
	}
}

func TestResidualPMFAtZeroIsAlpha(t *testing.T) {
	alpha := []float64{0.1, 0.2, 0.3, 0.4}
	p := mustProcess(t, alpha)
	for x := 1; x <= 4; x++ {
		if got := p.ResidualPMF(0, x); math.Abs(got-alpha[x-1]) > 1e-12 {
			t.Fatalf("ResidualPMF(0,%d)=%v, want %v", x, got, alpha[x-1])
		}
	}
	if p.ResidualPMF(0, 0) != 0 || p.ResidualPMF(-1, 1) != 0 {
		t.Fatal("residual boundary conventions violated")
	}
}

func TestResidualPMFSumsToOne(t *testing.T) {
	u, err := dist.NewUniformInt(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, u)
	for _, tt := range []int{0, 1, 3, 10, 50} {
		var sum numeric.KahanSum
		for x := 1; x <= p.MaxSupport()+1; x++ {
			sum.Add(p.ResidualPMF(tt, x))
		}
		if got := sum.Value(); math.Abs(got-1) > 1e-10 {
			t.Fatalf("residual pmf at t=%d sums to %v", tt, got)
		}
	}
}

func TestResidualCDFMonotoneAndCapped(t *testing.T) {
	w, err := dist.NewWeibull(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, w)
	prev := 0.0
	for x := 1; x <= 60; x++ {
		got := p.ResidualCDF(7, x)
		if got < prev-1e-12 || got > 1 {
			t.Fatalf("ResidualCDF(7,%d)=%v not monotone in [0,1]", x, got)
		}
		prev = got
	}
	if p.ResidualCDF(7, 0) != 0 {
		t.Fatal("ResidualCDF(t,0) != 0")
	}
}

func TestResidualHazardGeometricConstant(t *testing.T) {
	g, err := dist.NewGeometric(0.25)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, g)
	for _, tt := range []int{0, 1, 5, 40} {
		if got := p.ResidualHazard(tt); math.Abs(got-0.25) > 1e-9 {
			t.Fatalf("ResidualHazard(%d)=%v, want 0.25", tt, got)
		}
	}
}

// TestResidualMatchesMassIdentity checks ψ_t(1) == m(t+1) by definition of
// both quantities.
func TestResidualMatchesMassIdentity(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{0.4, 0.1, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, e)
	for tt := 0; tt <= 40; tt++ {
		if got, want := p.ResidualHazard(tt), p.Mass(tt+1); math.Abs(got-want) > 1e-10 {
			t.Fatalf("ψ_%d(1)=%v != m(%d)=%v", tt, got, tt+1, want)
		}
	}
}

func BenchmarkMassWeibull(b *testing.B) {
	w, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := dist.Tabulate(w, 1e-12, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(tab.Alpha)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.ExpectedCount(5000)
	}
}

func TestEquilibriumAgeSumsToOne(t *testing.T) {
	u, err := dist.NewUniformInt(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, u)
	eq := p.EquilibriumAge()
	var sum numeric.KahanSum
	for _, v := range eq {
		if v < 0 {
			t.Fatal("negative equilibrium mass")
		}
		sum.Add(v)
	}
	if math.Abs(sum.Value()-1) > 1e-9 {
		t.Fatalf("equilibrium age distribution sums to %v", sum.Value())
	}
	// Hazard under equilibrium: Σ P(age=j)·β_j must equal 1/μ.
	var hz numeric.KahanSum
	for j, w := range eq {
		hz.Add(w * u.Hazard(j+1))
	}
	if math.Abs(hz.Value()-p.EquilibriumHazard()) > 1e-9 {
		t.Fatalf("equilibrium hazard %v, want %v", hz.Value(), p.EquilibriumHazard())
	}
}

// TestEquilibriumMatchesLongRunMass: the renewal mass function converges
// to the equilibrium hazard.
func TestEquilibriumMatchesLongRunMass(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := fromDist(t, e)
	if got, want := p.Mass(5000), p.EquilibriumHazard(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("long-run mass %v, equilibrium hazard %v", got, want)
	}
}
