// Package renewal implements discrete-time renewal theory for slotted
// event processes: the renewal mass function, the renewal function M(T),
// and forward-recurrence (residual life) distributions.
//
// These are the discrete counterparts of the quantities in the paper's
// Appendix B (m(y), G_t(x), Ψ(t)) and provide an independent route to the
// partial-information hazards that cross-validates the Bayes filter in
// internal/core.
package renewal

import (
	"fmt"

	"eventcap/internal/numeric"
)

// Process is a discrete renewal process with a finite inter-arrival PMF.
// alpha[k] = P(X = k+1). A renewal ("event") is assumed at slot 0; Mass
// and the other methods condition on it.
//
// A Process caches the renewal mass function and grows it on demand; it is
// not safe for concurrent use.
type Process struct {
	alpha []float64
	mean  float64
	mass  []float64 // mass[t-1] = m(t) = P(renewal exactly at slot t), t >= 1
}

// New constructs a Process from a PMF over slots 1..len(alpha). The PMF
// must be nonnegative and sum to 1 within 1e-9 (use dist.Tabulate to
// prepare it).
func New(alpha []float64) (*Process, error) {
	if len(alpha) == 0 {
		return nil, fmt.Errorf("renewal: empty PMF")
	}
	var sum, mean numeric.KahanSum
	for k, a := range alpha {
		if a < 0 {
			return nil, fmt.Errorf("renewal: negative PMF %g at slot %d", a, k+1)
		}
		sum.Add(a)
		mean.Add(float64(k+1) * a)
	}
	if s := sum.Value(); s < 1-1e-9 || s > 1+1e-9 {
		return nil, fmt.Errorf("renewal: PMF sums to %g, want 1", s)
	}
	p := &Process{
		alpha: make([]float64, len(alpha)),
		mean:  mean.Value(),
	}
	copy(p.alpha, alpha)
	return p, nil
}

// Mean returns μ = E[X].
func (p *Process) Mean() float64 { return p.mean }

// alphaAt returns α_i (0 outside the table).
func (p *Process) alphaAt(i int) float64 {
	if i < 1 || i > len(p.alpha) {
		return 0
	}
	return p.alpha[i-1]
}

// extendMass grows the cached renewal mass function through slot t using
// the discrete renewal equation m(t) = α(t) + Σ_{s=1}^{t−1} m(s)·α(t−s).
func (p *Process) extendMass(t int) {
	for len(p.mass) < t {
		n := len(p.mass) + 1 // computing m(n)
		var sum numeric.KahanSum
		sum.Add(p.alphaAt(n))
		// Only s with n−s within the PMF support contribute.
		lo := n - len(p.alpha)
		if lo < 1 {
			lo = 1
		}
		for s := lo; s <= n-1; s++ {
			a := p.alphaAt(n - s)
			if a != 0 {
				sum.Add(p.mass[s-1] * a)
			}
		}
		v := sum.Value()
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		p.mass = append(p.mass, v)
	}
}

// Mass returns m(t) = P(a renewal occurs exactly at slot t | renewal at
// slot 0) for t >= 1; Mass(0) is 1 by convention and Mass of negative
// slots is 0.
func (p *Process) Mass(t int) float64 {
	switch {
	case t < 0:
		return 0
	case t == 0:
		return 1
	}
	p.extendMass(t)
	return p.mass[t-1]
}

// ExpectedCount returns M(T) = E[number of renewals in (0, T]].
func (p *Process) ExpectedCount(T int) float64 {
	if T < 1 {
		return 0
	}
	p.extendMass(T)
	var sum numeric.KahanSum
	for t := 1; t <= T; t++ {
		sum.Add(p.mass[t-1])
	}
	return sum.Value()
}

// LimitRate returns the elementary-renewal-theorem limit 1/μ that m(t)
// converges to.
func (p *Process) LimitRate() float64 { return 1 / p.mean }

// ResidualPMF returns P(Ψ(t) = x): the probability that, given a renewal
// at slot 0 and no knowledge of intervening slots, the first renewal
// strictly after slot t occurs at slot t+x (x >= 1). This is the discrete
// version of the paper's G_t distribution:
//
//	ψ_t(x) = Σ_{s=0}^{t} m(s) · α(t+x−s)
//
// where the term for s is "last renewal at or before t happened at s and
// its successor arrives at t+x".
func (p *Process) ResidualPMF(t, x int) float64 {
	if x < 1 || t < 0 {
		return 0
	}
	p.extendMass(t)
	var sum numeric.KahanSum
	// Only s with t+x−s <= len(alpha) contribute.
	lo := t + x - len(p.alpha)
	if lo < 0 {
		lo = 0
	}
	for s := lo; s <= t; s++ {
		a := p.alphaAt(t + x - s)
		if a == 0 {
			continue
		}
		sum.Add(p.Mass(s) * a)
	}
	return sum.Value()
}

// ResidualCDF returns G_t(x) = P(Ψ(t) <= x) = Σ_{k=1}^{x} ψ_t(k).
func (p *Process) ResidualCDF(t, x int) float64 {
	if x < 1 {
		return 0
	}
	var sum numeric.KahanSum
	for k := 1; k <= x; k++ {
		sum.Add(p.ResidualPMF(t, k))
	}
	v := sum.Value()
	if v > 1 {
		v = 1
	}
	return v
}

// ResidualHazard returns P(renewal at slot t+1 | no renewal in (s, t] for
// the unobserved interval), i.e. ψ_t(1) normalized — used as the
// partial-information hazard after a fully unobserved stretch. For t = 0
// it reduces to α_1.
func (p *Process) ResidualHazard(t int) float64 {
	return p.ResidualPMF(t, 1)
}

// MaxSupport returns the largest inter-arrival value with positive
// probability bound (the PMF table length).
func (p *Process) MaxSupport() int { return len(p.alpha) }

// EquilibriumAge returns the stationary (time-average) distribution of the
// renewal process's age: P(age = j) = (1 − F(j−1))/μ for j >= 1. This is
// the belief an observer holds about a renewal process it has never
// observed — the starting point of a sensor deployed long after the
// process began, as opposed to the paper's "event at slot 0" convention.
// The returned slice has one entry per age 1..MaxSupport.
func (p *Process) EquilibriumAge() []float64 {
	out := make([]float64, len(p.alpha))
	surv := 1.0
	var f numeric.KahanSum
	for j := range out {
		out[j] = surv / p.mean
		f.Add(p.alpha[j])
		surv = 1 - f.Value()
		if surv < 0 {
			surv = 0
		}
	}
	return out
}

// EquilibriumHazard returns the probability an event occurs in a slot
// under the stationary regime: exactly 1/μ, included for symmetry and
// tests.
func (p *Process) EquilibriumHazard() float64 { return 1 / p.mean }
