package trace

import (
	"fmt"
	"io"
	"sort"

	"eventcap/internal/stats"
)

// QoMReports rebuilds every run's QoM indicator stream from a trace
// and feeds it through the same streaming batch-means estimator the
// simulation's stats probe uses (stats.QoMReport), so the returned
// reports line up field by field with a manifest's stats block.
//
// Within a run the stream is replayed in slot order, matching the
// engines' chronological feed: a per-slot event record contributes its
// capture indicator (ORed across sensors for fleet runs), a sleep span
// contributes its events as misses in bulk at the span's start slot.
// Batch lengths in the estimator are deterministic in the observation
// sequence, so a single-run trace reproduces the probe's batch-means
// CI bit for bit.
func QoMReports(r io.Reader) ([]stats.Report, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var reports []stats.Report
	type spanEvents struct {
		slot   int64
		events int64
	}
	var (
		started    bool
		eventFlags map[int64]uint8
		spans      []spanEvents
	)
	closeRun := func() {
		// Merge per-slot events and spans into one slot-ordered stream.
		type obsAt struct {
			slot     int64
			span     bool
			events   int64 // span only
			captured bool  // event slot only
		}
		merged := make([]obsAt, 0, len(eventFlags)+len(spans))
		// nondeterm:ok collect-then-sort: the sort below fixes the order
		for slot, flags := range eventFlags {
			merged = append(merged, obsAt{slot: slot, captured: flags&FlagCaptured != 0})
		}
		for _, s := range spans {
			if s.events > 0 {
				merged = append(merged, obsAt{slot: s.slot, span: true, events: s.events})
			}
		}
		// Span slots never carry per-slot event records (the sensors
		// were asleep), so slots are unique and the order total.
		sort.Slice(merged, func(i, j int) bool { return merged[i].slot < merged[j].slot })
		var qom stats.BatchMeans
		for _, o := range merged {
			if o.span {
				qom.AddN(0, o.events)
			} else if o.captured {
				qom.Add(1)
			} else {
				qom.Add(0)
			}
		}
		reports = append(reports, stats.QoMReport(&qom, stats.DefaultCILevel))
	}
	for {
		f, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f.Kind {
		case FrameRunStart:
			if started {
				return nil, fmt.Errorf("trace: qom: run %d has no RunEnd frame", len(reports))
			}
			started = true
			eventFlags = make(map[int64]uint8)
			spans = spans[:0]
		case FrameSlot:
			if started && f.Rec.Flags&FlagEvent != 0 {
				eventFlags[f.Rec.Slot] |= f.Rec.Flags
			}
		case FrameSpan:
			if started {
				spans = append(spans, spanEvents{slot: f.Span.Start, events: f.Span.Events})
			}
		case FrameRunEnd:
			if !started {
				return nil, fmt.Errorf("trace: qom: RunEnd without RunStart")
			}
			closeRun()
			started = false
		}
	}
	if started {
		return nil, fmt.Errorf("trace: qom: trace ends mid-run (missing RunEnd)")
	}
	return reports, nil
}

// PoolQoM folds per-run reports into the pooled estimate tracetool
// prints next to them.
func PoolQoM(reports []stats.Report) stats.Report {
	var p stats.Pool
	for _, r := range reports {
		p.Add(r)
	}
	return p.Report(stats.DefaultCILevel)
}
