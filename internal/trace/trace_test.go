package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// sampleInfo is a RunInfo exercising every field type.
func sampleInfo(engine uint8) RunInfo {
	return RunInfo{
		Engine:     engine,
		Sensors:    3,
		Seed:       42,
		Slots:      1000,
		BatteryCap: 200,
		Cost:       7,
		Policy:     "clustering-pi",
		Dist:       "weibull(40,3)",
		Recharge:   "bernoulli(0.5,1)",
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	frames := []Frame{
		{Kind: FrameRunStart, Run: sampleInfo(EngineReference)},
		{Kind: FrameSlot, Rec: Rec{Slot: 5, Sensor: 0, Engine: EngineReference,
			Flags: FlagEvent | FlagActive | FlagCaptured, H: 5, F: 5, Prob: 0.75, Battery: 120.5, Recharge: 1}},
		{Kind: FrameSlot, Rec: Rec{Slot: 5, Sensor: 2, Engine: EngineReference,
			Flags: FlagEvent | FlagDenied, H: 5, F: 5, Prob: 1, Battery: 3, Recharge: 0}},
		// Marker record: negative sensor, and a slot delta of zero.
		{Kind: FrameSlot, Rec: Rec{Slot: 5, Sensor: -1, Engine: EngineReference, Flags: FlagEvent, H: 5, F: 5}},
		// Backwards slot jump (sensor-major independent order).
		{Kind: FrameSlot, Rec: Rec{Slot: 2, Sensor: 1, Engine: EngineIndependent, H: -1, F: 2, Prob: 0.25, Battery: 9}},
		{Kind: FrameRunEnd, End: RunEnd{Events: 1, Captures: 1}},
		{Kind: FrameRunStart, Run: sampleInfo(EngineKernel)},
		{Kind: FrameSpan, Span: Span{Start: 1, Len: 40, Events: 2, State: uint8(1), Delivered: 20, Battery: 180}},
		{Kind: FrameSlot, Rec: Rec{Slot: 41, Sensor: 0, Engine: EngineKernel, Flags: FlagActive, H: 1, F: 41, Prob: 0.5, Battery: 199, Recharge: 1}},
		{Kind: FrameRunEnd, End: RunEnd{Events: 2, Captures: 0}},
	}
	for _, f := range frames {
		switch f.Kind {
		case FrameRunStart:
			w.RunStart(f.Run)
		case FrameSlot:
			w.Rec(f.Rec)
		case FrameSpan:
			w.Span(f.Span)
		case FrameRunEnd:
			w.RunEnd(f.End)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c := w.Counts()
	if c.Runs != 2 || c.Records != 5 || c.Spans != 1 || c.Bytes != int64(buf.Len()) {
		t.Fatalf("counts = %+v, buffer %d bytes", c, buf.Len())
	}
	if len(w.SHA256()) != 64 {
		t.Fatalf("sha256 %q", w.SHA256())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RunStart(sampleInfo(EngineReference))
	w.Rec(Rec{Slot: 1, Sensor: 0, Prob: 0.5, Battery: 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the slot frame.
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("run-start frame: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.RunStart(sampleInfo(EngineReference))
	for i := 0; i < 10_000; i++ { // force a flush past the 32 KiB buffer
		w.Rec(Rec{Slot: int64(i), Prob: 0.5})
	}
	w.RunEnd(RunEnd{})
	if err := w.Close(); err == nil {
		t.Fatal("Close returned nil after a write failure")
	}
	if err := w.Close(); err == nil {
		t.Fatal("second Close lost the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestFlightRecorderRingKeepsLastN(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.BeginRun(sampleInfo(EngineReference))
	for slot := int64(1); slot <= 100; slot++ {
		fr.Record(&Rec{Slot: slot, Sensor: 0, Prob: 0.5, Battery: 50})
	}
	fr.EndRun(RunEnd{Events: 0, Captures: 0})

	srv := httptest.NewServer(fr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		RingSize   int   `json:"ring_size"`
		TotalDumps int64 `json:"total_dumps"`
		LastRun    *struct {
			Sensors []SensorDump `json:"sensors"`
		} `json:"last_run"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.RingSize != 16 || view.TotalDumps != 0 || view.LastRun == nil {
		t.Fatalf("view = %+v", view)
	}
	recs := view.LastRun.Sensors[0].Records
	if len(recs) != 16 {
		t.Fatalf("ring kept %d records, want 16", len(recs))
	}
	if recs[0].Slot != 85 || recs[15].Slot != 100 {
		t.Fatalf("ring window [%d, %d], want [85, 100]", recs[0].Slot, recs[15].Slot)
	}
}

func TestFlightRecorderInvariantDump(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.BeginRun(sampleInfo(EngineReference))
	fr.Record(&Rec{Slot: 1, Sensor: 1, Prob: 0.5, Battery: 100})
	fr.Record(&Rec{Slot: 2, Sensor: 1, Prob: 1.5, Battery: 100}) // p > 1
	fr.Record(&Rec{Slot: 3, Sensor: 1, Prob: 1.5, Battery: 100}) // second violation: no new dump
	if got := fr.TotalDumps(); got != 1 {
		t.Fatalf("TotalDumps = %d, want 1 (once per run)", got)
	}
	d := fr.Dumps()
	if len(d) != 1 || d[0].Reason != "invariant" || d[0].Slot != 2 {
		t.Fatalf("dumps = %+v", d)
	}
	if len(d[0].Sensors) != 1 || d[0].Sensors[0].Sensor != 1 || len(d[0].Sensors[0].Records) != 2 {
		t.Fatalf("dump sensors = %+v", d[0].Sensors)
	}

	// A new run re-arms the trigger.
	fr.BeginRun(sampleInfo(EngineReference))
	fr.Record(&Rec{Slot: 1, Sensor: 0, Prob: 0.5, Battery: -1}) // battery < 0
	if got := fr.TotalDumps(); got != 2 {
		t.Fatalf("TotalDumps after second run = %d, want 2", got)
	}
}

// TestRecordSlotMatchesRecord pins the hot-path RecordSlot variant to
// Record: same ring contents, same invariant triggering, same handling
// of marker and out-of-range sensors.
func TestRecordSlotMatchesRecord(t *testing.T) {
	recs := []Rec{
		{Slot: 1, Sensor: 0, Engine: EngineReference, Flags: FlagActive, H: 3, F: 7, Prob: 0.5, Battery: 50, Recharge: 1},
		{Slot: 2, Sensor: -1, Flags: FlagEvent},                      // marker: skipped by both
		{Slot: 3, Sensor: 5, Prob: 0.5, Battery: 50},                 // out of range: skipped by both
		{Slot: 4, Sensor: 0, Engine: EngineKernel, Prob: 2, Battery: 50}, // invariant violation
	}
	a := NewFlightRecorder(16)
	b := NewFlightRecorder(16)
	a.BeginRun(sampleInfo(EngineReference))
	b.BeginRun(sampleInfo(EngineReference))
	for i := range recs {
		r := recs[i]
		a.Record(&r)
		b.RecordSlot(r.Slot, r.Sensor, r.Engine, r.Flags, r.H, r.F, r.Prob, r.Battery, r.Recharge)
	}
	if got, want := b.TotalDumps(), a.TotalDumps(); got != want || got != 1 {
		t.Fatalf("TotalDumps: RecordSlot %d, Record %d, want 1", got, want)
	}
	sa, sb := a.snapshotRing(0), b.snapshotRing(0)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("ring contents diverge:\nRecord     %+v\nRecordSlot %+v", sa, sb)
	}
	if len(sb.Records) != 2 {
		t.Fatalf("ring kept %d records, want 2 (markers and out-of-range skipped)", len(sb.Records))
	}
}

func TestFlightRecorderFaultAndOutageDumps(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.BeginRun(sampleInfo(EngineReference))
	fr.Record(&Rec{Slot: 1, Sensor: 0, Prob: 0.5, Battery: 3})
	fr.Record(&Rec{Slot: 1, Sensor: 2, Prob: 0.5, Battery: 5})
	fr.Fault(2, 7)
	fr.OutageMiss(9)
	fr.OutageMiss(11) // once per run
	if got := fr.TotalDumps(); got != 2 {
		t.Fatalf("TotalDumps = %d, want 2", got)
	}
	d := fr.Dumps()
	if d[0].Reason != "fault" || d[0].Slot != 7 || len(d[0].Sensors) != 1 {
		t.Fatalf("fault dump = %+v", d[0])
	}
	if d[1].Reason != "outage_miss" || d[1].Slot != 9 || len(d[1].Sensors) != 3 {
		t.Fatalf("outage dump = %+v", d[1])
	}
}

func TestFlightRecorderStoresEarliestDumps(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.BeginRun(sampleInfo(EngineReference))
	for i := 0; i < maxStoredDumps+5; i++ {
		fr.Fault(0, int64(i))
	}
	if got := fr.TotalDumps(); got != int64(maxStoredDumps+5) {
		t.Fatalf("TotalDumps = %d", got)
	}
	d := fr.Dumps()
	if len(d) != maxStoredDumps {
		t.Fatalf("stored %d dumps, want %d", len(d), maxStoredDumps)
	}
	if d[0].Slot != 0 || d[maxStoredDumps-1].Slot != int64(maxStoredDumps-1) {
		t.Fatal("stored dumps are not the earliest triggers")
	}
}

// buildTrace writes a two-run trace with a known decomposition:
// run 1 (reference, 2 sensors): 3 events — one captured, one denied
// (noenergy), one missed asleep; run 2 (kernel): a span holding one
// slept-through event plus one captured awake event.
func buildTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)

	info := sampleInfo(EngineReference)
	info.Sensors = 2
	w.RunStart(info)
	// Slot 10: sensor 0 captures, sensor 1 idle (prob 0 not recorded).
	w.Rec(Rec{Slot: 10, Sensor: 0, Engine: EngineReference, Flags: FlagEvent | FlagActive | FlagCaptured, H: 10, F: 10, Prob: 0.8, Battery: 90, Recharge: 1})
	// Slot 20: event, sensor 1 denied (noenergy miss).
	w.Rec(Rec{Slot: 20, Sensor: 1, Engine: EngineReference, Flags: FlagEvent | FlagDenied, H: 10, F: 20, Prob: 1, Battery: 2})
	// Slot 30: event with no decider — marker record (asleep miss).
	w.Rec(Rec{Slot: 30, Sensor: -1, Engine: EngineReference, Flags: FlagEvent, H: 10, F: 30})
	// Slot 35: wasted activation (no event).
	w.Rec(Rec{Slot: 35, Sensor: 0, Engine: EngineReference, Flags: FlagActive, H: 15, F: 25, Prob: 0.3, Battery: 80})
	w.RunEnd(RunEnd{Events: 3, Captures: 1})

	w.RunStart(sampleInfo(EngineKernel))
	w.Span(Span{Start: 1, Len: 50, Events: 1, State: 1, Delivered: 25, Battery: 150})
	w.Rec(Rec{Slot: 51, Sensor: 0, Engine: EngineKernel, Flags: FlagEvent | FlagActive | FlagCaptured, H: 1, F: 51, Prob: 0.9, Battery: 150, Recharge: 1})
	w.RunEnd(RunEnd{Events: 2, Captures: 1})

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestReplayReconstruction(t *testing.T) {
	sum, err := Replay(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{
		Runs: 2, Records: 5, Spans: 1,
		Events: 5, Captures: 2, MissAsleep: 2, MissNoEnergy: 1,
		Activations: 3, SensorCaptures: 2, Denied: 1, Wasted: 1,
		SpanSlots: 50, SpanEvents: 1,
		QoM: 0.4,
	}
	if *sum != want {
		t.Fatalf("summary:\ngot  %+v\nwant %+v", *sum, want)
	}
}

func TestReplayDetectsRunEndMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RunStart(sampleInfo(EngineReference))
	w.Rec(Rec{Slot: 1, Sensor: 0, Flags: FlagEvent | FlagActive | FlagCaptured, Prob: 1, Battery: 50})
	w.RunEnd(RunEnd{Events: 2, Captures: 1}) // trace shows 1 event, RunEnd claims 2
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&buf); err == nil || !strings.Contains(err.Error(), "reconstructed") {
		t.Fatalf("mismatched RunEnd accepted: %v", err)
	}
}

func TestReplayRejectsMissingRunEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RunStart(sampleInfo(EngineReference))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&buf); err == nil || !strings.Contains(err.Error(), "mid-run") {
		t.Fatalf("mid-run trace accepted: %v", err)
	}
}

func TestStatsRegionsAndOutage(t *testing.T) {
	rep, err := Stats(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 || rep.Records != 5 || rep.Spans != 1 || rep.SpanSlots != 50 || rep.SpanEvents != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Regions: prob 0 (marker), 0.3, 0.8, 0.9, 1.
	if len(rep.Regions) != 5 {
		t.Fatalf("regions = %+v", rep.Regions)
	}
	for i := 1; i < len(rep.Regions); i++ {
		if rep.Regions[i-1].Prob >= rep.Regions[i].Prob {
			t.Fatal("regions not sorted by prob")
		}
	}
	var atOne RegionStat
	for _, r := range rep.Regions {
		if r.Prob == 1 {
			atOne = r
		}
	}
	if atOne.Slots != 1 || atOne.Denied != 1 || atOne.Events != 1 || atOne.Misses != 1 {
		t.Fatalf("prob-1 region = %+v", atOne)
	}
	// One outage episode: sensor 1's battery 2 < cost 7 at slot 20.
	if rep.Outage.Episodes != 1 || rep.Outage.Slots != 1 || rep.Outage.MaxLen != 1 {
		t.Fatalf("outage = %+v", rep.Outage)
	}
}

func TestDiffIdenticalAndEngineBlind(t *testing.T) {
	a, b := buildTrace(t), buildTrace(t)
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("identical traces diverge: %+v", d)
	}

	// Same frames, different engine tags: still identical.
	var ta, tb bytes.Buffer
	wa, wb := NewWriter(&ta), NewWriter(&tb)
	wa.RunStart(sampleInfo(EngineReference))
	wb.RunStart(sampleInfo(EngineKernel))
	wa.Rec(Rec{Slot: 1, Sensor: 0, Engine: EngineReference, Prob: 0.5, Battery: 10})
	wb.Rec(Rec{Slot: 1, Sensor: 0, Engine: EngineKernel, Prob: 0.5, Battery: 10})
	wa.RunEnd(RunEnd{})
	wb.RunEnd(RunEnd{})
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = Diff(&ta, &tb)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("engine-tag difference reported as divergence: %+v", d)
	}
}

func TestDiffFindsFirstDivergence(t *testing.T) {
	var ta, tb bytes.Buffer
	wa, wb := NewWriter(&ta), NewWriter(&tb)
	for _, w := range []*Writer{wa, wb} {
		w.RunStart(sampleInfo(EngineReference))
		w.Rec(Rec{Slot: 1, Sensor: 0, Prob: 0.5, Battery: 10})
	}
	wa.Rec(Rec{Slot: 2, Sensor: 0, Prob: 0.5, Battery: 11})
	wb.Rec(Rec{Slot: 2, Sensor: 0, Prob: 0.5, Battery: 12}) // diverges here
	for _, w := range []*Writer{wa, wb} {
		w.RunEnd(RunEnd{})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	d, err := Diff(&ta, &tb)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Frame != 2 || d.Run != 0 || d.Slot != 2 {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.A, "battery=11") || !strings.Contains(d.B, "battery=12") {
		t.Fatalf("descriptions: a=%q b=%q", d.A, d.B)
	}
}

func TestDiffPrefixTrace(t *testing.T) {
	full, err := io.ReadAll(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// b is a valid trace that is a strict frame-prefix of a.
	var tb bytes.Buffer
	wb := NewWriter(&tb)
	info := sampleInfo(EngineReference)
	info.Sensors = 2
	wb.RunStart(info)
	wb.Rec(Rec{Slot: 10, Sensor: 0, Engine: EngineReference, Flags: FlagEvent | FlagActive | FlagCaptured, H: 10, F: 10, Prob: 0.8, Battery: 90, Recharge: 1})
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := Diff(bytes.NewReader(full), &tb)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.B != "<end of trace>" || d.Frame != 2 {
		t.Fatalf("prefix divergence = %+v", d)
	}
}

func TestDumpReasonString(t *testing.T) {
	if got := DumpInvariant.String(); got != "invariant" {
		t.Fatalf("DumpInvariant.String() = %q", got)
	}
	if got := DumpOutageMiss.String(); got != "outage_miss" {
		t.Fatalf("DumpOutageMiss.String() = %q", got)
	}
}

func TestEngineName(t *testing.T) {
	cases := map[uint8]string{
		EngineReference: "reference", EngineKernel: "kernel",
		EngineIndependent: "independent", 99: "unknown",
	}
	for code, want := range cases {
		if got := EngineName(code); got != want {
			t.Fatalf("EngineName(%d) = %q, want %q", code, got, want)
		}
	}
}
