package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
)

// The binary trace format. A file is the magic string followed by a
// frame stream; every frame is a kind byte and a kind-specific body.
// Integers are varints (signed values zigzag-encoded), floats are
// IEEE-754 bits little-endian, strings are a uvarint length plus bytes.
// Slot numbers are delta-encoded against the previous frame's last slot
// within each run, so a dense single-sensor trace costs ~2 bytes of
// slot bookkeeping per record.
const Magic = "EVCTRC1\n"

// Frame kinds.
const (
	FrameRunStart byte = 0x01
	FrameSlot     byte = 0x02
	FrameSpan     byte = 0x03
	FrameRunEnd   byte = 0x04
)

// teeCount hashes and counts everything written through it.
type teeCount struct {
	dst io.Writer
	h   hash.Hash
	n   int64
}

func (t *teeCount) Write(p []byte) (int, error) {
	t.h.Write(p)
	t.n += int64(len(p))
	return t.dst.Write(p)
}

// Writer streams trace frames into dst. Write errors are sticky and
// surface at Close — the simulation hot path records without checking
// errors per slot, and a run never fails mid-flight on trace I/O.
type Writer struct {
	tc     *teeCount
	bw     *bufio.Writer
	buf    []byte
	last   int64 // previous frame's last slot, for delta encoding
	err    error
	counts Counts
	closed bool
}

// NewWriter starts a trace stream on dst by writing the magic header.
func NewWriter(dst io.Writer) *Writer {
	tc := &teeCount{dst: dst, h: sha256.New()}
	w := &Writer{tc: tc, bw: bufio.NewWriterSize(tc, 1<<15), buf: make([]byte, 0, 128)}
	_, err := w.bw.WriteString(Magic)
	w.setErr(err)
	return w
}

func (w *Writer) setErr(err error) {
	if err != nil && w.err == nil {
		w.err = err
	}
}

func (w *Writer) flushFrame() {
	if w.err != nil {
		w.buf = w.buf[:0]
		return
	}
	_, err := w.bw.Write(w.buf)
	w.setErr(err)
	w.buf = w.buf[:0]
}

func (w *Writer) appendUvarint(v uint64)  { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *Writer) appendVarint(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *Writer) appendFloat(f float64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f)) }
func (w *Writer) appendString(s string)   { w.appendUvarint(uint64(len(s))); w.buf = append(w.buf, s...) }

// RunStart opens a traced run and resets the slot delta base.
func (w *Writer) RunStart(info RunInfo) {
	w.buf = append(w.buf, FrameRunStart, info.Engine)
	w.appendUvarint(uint64(info.Sensors))
	w.appendUvarint(info.Seed)
	w.appendUvarint(uint64(info.Slots))
	w.appendFloat(info.BatteryCap)
	w.appendFloat(info.Cost)
	w.appendString(info.Policy)
	w.appendString(info.Dist)
	w.appendString(info.Recharge)
	w.flushFrame()
	w.last = 0
	w.counts.Runs++
}

// Rec appends one slot record.
func (w *Writer) Rec(r Rec) {
	w.buf = append(w.buf, FrameSlot)
	w.appendVarint(r.Slot - w.last)
	w.appendVarint(int64(r.Sensor))
	w.buf = append(w.buf, r.Engine, r.Flags)
	w.appendVarint(int64(r.H))
	w.appendVarint(int64(r.F))
	w.appendFloat(r.Prob)
	w.appendFloat(r.Battery)
	w.appendFloat(r.Recharge)
	w.flushFrame()
	w.last = r.Slot
	w.counts.Records++
}

// Span appends one fast-forwarded sleep run.
func (w *Writer) Span(sp Span) {
	w.buf = append(w.buf, FrameSpan)
	w.appendVarint(sp.Start - w.last)
	w.appendUvarint(uint64(sp.Len))
	w.appendUvarint(uint64(sp.Events))
	w.buf = append(w.buf, sp.State)
	w.appendFloat(sp.Delivered)
	w.appendFloat(sp.Battery)
	w.flushFrame()
	w.last = sp.Start + sp.Len - 1
	w.counts.Spans++
}

// RunEnd closes the current run with the engine's own totals.
func (w *Writer) RunEnd(e RunEnd) {
	w.buf = append(w.buf, FrameRunEnd)
	w.appendUvarint(uint64(e.Events))
	w.appendUvarint(uint64(e.Captures))
	w.flushFrame()
}

// Close flushes the stream, folds the writer's totals into the
// process-wide trace counters, and returns the first error the stream
// hit (if any). It does not close dst.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.setErr(w.bw.Flush())
	w.counts.Bytes = w.tc.n
	tracedRuns.Add(w.counts.Runs)
	tracedRecords.Add(w.counts.Records)
	tracedSpans.Add(w.counts.Spans)
	tracedBytes.Add(w.counts.Bytes)
	if w.err != nil {
		return fmt.Errorf("trace: writing stream: %w", w.err)
	}
	return nil
}

// SHA256 returns the hex digest of every byte written so far (after
// Close, the digest of the whole file).
func (w *Writer) SHA256() string {
	return hex.EncodeToString(w.tc.h.Sum(nil))
}

// Counts reports what the writer emitted (Bytes is set by Close).
func (w *Writer) Counts() Counts { return w.counts }
