package trace

// Tracer fans simulation trace callbacks out to the attached sinks: a
// full-trace Writer, a FlightRecorder, or both. The engines hold a
// possibly-nil *Tracer and guard every call site on it, so the untraced
// hot path pays one predictable branch per slot.
//
// Engines may skip Slot calls for decision-irrelevant slots (activation
// probability zero and no event) unless Full reports true — the full
// trace records every decided slot, the flight recorder only the ones
// worth replaying a debugging session over.
type Tracer struct {
	w  *Writer
	fr *FlightRecorder
}

// New returns a tracer over the given sinks (either may be nil; a
// tracer with neither is valid and records nothing).
func New(w *Writer, fr *FlightRecorder) *Tracer {
	return &Tracer{w: w, fr: fr}
}

// Full reports whether a full-trace writer is attached, i.e. whether
// engines must report every decided slot (and serialize multi-stream
// runs into a deterministic order).
func (t *Tracer) Full() bool { return t != nil && t.w != nil }

// Writer returns the attached full-trace writer, if any.
func (t *Tracer) Writer() *Writer { return t.w }

// Recorder returns the attached flight recorder, if any.
func (t *Tracer) Recorder() *FlightRecorder { return t.fr }

// RunStart opens a traced run.
func (t *Tracer) RunStart(info RunInfo) {
	if t.w != nil {
		t.w.RunStart(info)
	}
	if t.fr != nil {
		t.fr.BeginRun(info)
	}
}

// Slot records one slot decision. Engine hot loops bypass this fan-out
// by caching Writer()/Recorder() and calling the sinks directly (one
// record copy instead of two); Slot remains for the cold sites.
func (t *Tracer) Slot(r Rec) {
	if t.w != nil {
		t.w.Rec(r)
	}
	if t.fr != nil {
		t.fr.Record(&r)
	}
}

// Span records one fast-forwarded sleep run.
func (t *Tracer) Span(sp Span) {
	if t.w != nil {
		t.w.Span(sp)
	}
	if t.fr != nil {
		t.fr.Span(sp)
	}
}

// RunEnd closes the current run with the engine's totals.
func (t *Tracer) RunEnd(e RunEnd) {
	if t.w != nil {
		t.w.RunEnd(e)
	}
	if t.fr != nil {
		t.fr.EndRun(e)
	}
}

// Fault reports a sensor death (flight-recorder trigger; the full trace
// shows the death as the sensor's records simply stopping).
func (t *Tracer) Fault(sensor int, slot int64) {
	if t.fr != nil {
		t.fr.Fault(sensor, slot)
	}
}

// OutageMiss reports an event missed with every activation attempt
// energy-denied (flight-recorder trigger).
func (t *Tracer) OutageMiss(slot int64) {
	if t.fr != nil {
		t.fr.OutageMiss(slot)
	}
}
