// Package trace is the slot-level tracing subsystem of the simulation
// stack (DESIGN.md §11). It records what the aggregate counters of
// internal/obs cannot answer: the hazard state, battery level,
// activation probability and decision outcome of individual slots, so a
// missed event can be explained rather than merely counted.
//
// Two modes share one record type:
//
//   - Full trace: a streaming Writer encodes every decided slot (and,
//     on the compiled kernel, every fast-forwarded sleep run as one
//     compressed Span) into a compact binary file. The Reader, Replay,
//     Stats and Diff functions consume that file; cmd/tracetool wraps
//     them.
//   - Flight recorder: a fixed-size ring of the last N decision-relevant
//     records per sensor, cheap enough to leave on, dumped on invariant
//     violation, fault injection, first miss-after-outage, or on demand
//     through the -metrics-addr debug server (/debug/trace).
//
// The package depends only on the standard library and internal/obs,
// and — like obs — never draws from a random stream: attaching a Tracer
// cannot change any simulation output (the RNG-neutrality contract of
// DESIGN.md §9, asserted by TestTracingDoesNotChangeResults).
package trace

import "eventcap/internal/obs"

// Engine codes tag each record with the execution path that produced it.
// They mirror sim's engines but are fixed small integers so the binary
// format does not depend on sim's iota ordering.
const (
	// EngineReference is the interpreted per-slot engine.
	EngineReference uint8 = 1
	// EngineKernel is the compiled slot-skipping kernel.
	EngineKernel uint8 = 2
	// EngineIndependent is the per-sensor independent fast path
	// (ModeAll + PartialInfo + N > 1).
	EngineIndependent uint8 = 3
)

// EngineName renders an engine code for human-facing output.
func EngineName(code uint8) string {
	switch code {
	case EngineReference:
		return "reference"
	case EngineKernel:
		return "kernel"
	case EngineIndependent:
		return "independent"
	}
	return "unknown"
}

// Rec flag bits. FlagActive and FlagDenied are mutually exclusive;
// FlagCaptured implies FlagActive and FlagEvent.
const (
	// FlagEvent marks a slot in which the event occurred.
	FlagEvent uint8 = 1 << iota
	// FlagActive marks a successful activation (energy gate passed).
	FlagActive
	// FlagDenied marks an activation attempt blocked by the energy gate.
	FlagDenied
	// FlagCaptured marks an activation that captured the slot's event.
	FlagCaptured
	// FlagSpan marks a flight-recorder ring entry holding a compressed
	// fast-forward span (see FlightRecorder.Span for the field reuse);
	// full-trace files encode spans as their own frame kind instead.
	FlagSpan
)

// Rec is one slot-level trace record: the decision-time view of one
// sensor in one slot. A Sensor of -1 marks an aggregate per-slot record
// (an event slot in which no individual sensor decided, or the
// independent engine's event-outcome summary).
type Rec struct {
	// Slot is the 1-based absolute slot number.
	Slot int64
	// Sensor is the 0-based deciding sensor, or -1 for a slot marker.
	Sensor int32
	// Engine is the engine code that executed the slot.
	Engine uint8
	// Flags is the decision outcome (Flag* bits).
	Flags uint8
	// H is the full-information hazard state h (slots since the last
	// event) at decision time; -1 under partial information.
	H int32
	// F is the partial-information state f (slots since the last
	// capture) at decision time; -1 when not tracked.
	F int32
	// Prob is the policy's activation probability for this state.
	Prob float64
	// Battery is the sensor's energy level after recharge, at decision
	// time.
	Battery float64
	// Recharge is the energy delivered to the sensor this slot.
	Recharge float64
}

// Span is one fast-forwarded sleep run of the compiled kernel,
// compressed into a single record: the policy was provably silent for
// Len slots, so no per-slot decisions exist to trace.
type Span struct {
	// Start is the first slot of the run (1-based).
	Start int64
	// Len is the number of slots fast-forwarded.
	Len int64
	// Events is how many events fell inside the run — all of them
	// policy-scheduled misses (miss-asleep) by construction.
	Events int64
	// State is the sim.StateKind code driving the run length.
	State uint8
	// Delivered is the total recharge energy delivered across the run.
	Delivered float64
	// Battery is the level at the end of the run.
	Battery float64
}

// RunInfo opens each traced run with the configuration a reader needs
// to interpret its records.
type RunInfo struct {
	Engine     uint8
	Sensors    int
	Seed       uint64
	Slots      int64
	BatteryCap float64
	// Cost is the activation cost δ1+δ2 the energy gate enforces;
	// Battery < Cost at decision time is an energy outage.
	Cost     float64
	Policy   string
	Dist     string
	Recharge string
}

// RunEnd closes each traced run with the engine's own totals, letting
// any reader self-verify its reconstruction (Replay asserts against
// these before trusting a file).
type RunEnd struct {
	Events   int64
	Captures int64
}

// Counts summarizes what a Writer emitted.
type Counts struct {
	Runs    int64
	Records int64
	Spans   int64
	Bytes   int64
}

// Process-wide trace totals, flushed by Writer.Close rather than per
// record so the streaming hot path never touches an atomic.
var (
	tracedRuns    = obs.NewCounter("trace.runs")
	tracedRecords = obs.NewCounter("trace.records")
	tracedSpans   = obs.NewCounter("trace.spans")
	tracedBytes   = obs.NewCounter("trace.bytes")
)

// DumpReason labels a flight-recorder dump trigger and counts its
// firings in the process-wide obs metric set (the name doubles as the
// metric name, so it must follow the obs dot-schema — enforced by the
// expvarname analyzer).
type DumpReason struct {
	name string
	c    *obs.Counter
}

// NewDumpReason registers a dump-reason counter under name.
func NewDumpReason(name string) DumpReason {
	// expvarname:ok forwarding point: callers' literals are schema-checked at their NewDumpReason call
	return DumpReason{name: name, c: obs.NewCounter(name)}
}

// String returns the reason's short label (the metric name's last
// segment).
func (r DumpReason) String() string {
	for i := len(r.name) - 1; i >= 0; i-- {
		if r.name[i] == '.' {
			return r.name[i+1:]
		}
	}
	return r.name
}

// Built-in flight-recorder dump reasons.
var (
	// DumpInvariant fires when a recorded slot violates a state
	// invariant (probability outside [0,1], battery outside [0,K]).
	DumpInvariant = NewDumpReason("trace.dump.invariant")
	// DumpFault fires when fault injection kills a sensor.
	DumpFault = NewDumpReason("trace.dump.fault")
	// DumpOutageMiss fires on a run's first event missed because every
	// activation attempt hit the energy gate (miss-after-outage).
	DumpOutageMiss = NewDumpReason("trace.dump.outage_miss")
)
