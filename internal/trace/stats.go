package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// RegionStat aggregates the slots decided at one activation-probability
// level. Clustering policies are piecewise-constant in the hazard
// state, so grouping by probability recovers the policy's regions and
// shows where the captures and the misses live.
type RegionStat struct {
	Prob     float64 `json:"prob"`
	Slots    int64   `json:"slots"`
	Active   int64   `json:"active"`
	Denied   int64   `json:"denied"`
	Events   int64   `json:"events"`
	Captures int64   `json:"captures"`
	Misses   int64   `json:"misses"`
	// MinH/MaxH bound the hazard states seen in the region (-1 when the
	// trace carries no full-information state).
	MinH int32 `json:"min_h"`
	MaxH int32 `json:"max_h"`
}

// OutageStats summarizes energy-outage episodes: maximal runs of
// consecutive recorded slots (per sensor) whose decision-time battery
// was below the activation cost.
type OutageStats struct {
	Episodes int64   `json:"episodes"`
	Slots    int64   `json:"slots"`
	MeanLen  float64 `json:"mean_len"`
	MaxLen   int64   `json:"max_len"`
}

// StatsReport is the stats subcommand's aggregation of one trace.
type StatsReport struct {
	Runs       int64        `json:"runs"`
	Records    int64        `json:"records"`
	Spans      int64        `json:"spans"`
	SpanSlots  int64        `json:"span_slots"`
	SpanEvents int64        `json:"span_events"`
	Regions    []RegionStat `json:"regions"`
	Outage     OutageStats  `json:"outage"`
}

// outageRun tracks one sensor's in-progress outage episode.
type outageRun struct {
	length int64
}

// Stats aggregates a trace into a per-region activation/miss breakdown
// and outage-episode lengths.
func Stats(r io.Reader) (*StatsReport, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rep := &StatsReport{}
	regions := make(map[uint64]*RegionStat)
	var cost float64
	open := make(map[int32]*outageRun) // per-sensor in-progress episodes
	closeEpisode := func(o *outageRun) {
		if o.length > 0 {
			rep.Outage.Episodes++
			rep.Outage.Slots += o.length
			if o.length > rep.Outage.MaxLen {
				rep.Outage.MaxLen = o.length
			}
			o.length = 0
		}
	}
	closeAll := func() {
		// nondeterm:ok order-independent accumulation into scalar totals
		for _, o := range open {
			closeEpisode(o)
		}
		clear(open)
	}
	for {
		f, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f.Kind {
		case FrameRunStart:
			rep.Runs++
			cost = f.Run.Cost
			closeAll()
		case FrameSlot:
			rep.Records++
			rec := f.Rec
			if rec.Sensor < 0 {
				// Slot markers carry aggregate event outcomes, not a
				// sensor decision; count their event in the zero-prob
				// region so events stay complete.
				rec.Prob = 0
			}
			key := math.Float64bits(rec.Prob)
			rs := regions[key]
			if rs == nil {
				rs = &RegionStat{Prob: rec.Prob, MinH: math.MaxInt32, MaxH: -1}
				regions[key] = rs
			}
			rs.Slots++
			if rec.Flags&FlagActive != 0 {
				rs.Active++
			}
			if rec.Flags&FlagDenied != 0 {
				rs.Denied++
			}
			if rec.Flags&FlagEvent != 0 {
				rs.Events++
				if rec.Flags&FlagCaptured != 0 {
					rs.Captures++
				} else {
					rs.Misses++
				}
			}
			if rec.Sensor >= 0 && rec.H >= 0 {
				if rec.H < rs.MinH {
					rs.MinH = rec.H
				}
				if rec.H > rs.MaxH {
					rs.MaxH = rec.H
				}
			}
			if rec.Sensor >= 0 {
				o := open[rec.Sensor]
				if o == nil {
					o = &outageRun{}
					open[rec.Sensor] = o
				}
				if rec.Battery < cost {
					o.length++
				} else {
					closeEpisode(o)
				}
			}
		case FrameSpan:
			rep.Spans++
			rep.SpanSlots += f.Span.Len
			rep.SpanEvents += f.Span.Events
			// A sleep run breaks slot adjacency: whatever outage was
			// accumulating ended (the sensor was not even deciding).
			closeAll()
		case FrameRunEnd:
			closeAll()
		}
	}
	closeAll()
	if rep.Outage.Episodes > 0 {
		rep.Outage.MeanLen = float64(rep.Outage.Slots) / float64(rep.Outage.Episodes)
	}
	// nondeterm:ok collect-then-sort: map order never reaches the output
	for _, rs := range regions {
		if rs.MinH == math.MaxInt32 {
			rs.MinH = -1
		}
		rep.Regions = append(rep.Regions, *rs)
	}
	sort.Slice(rep.Regions, func(i, j int) bool { return rep.Regions[i].Prob < rep.Regions[j].Prob })
	return rep, nil
}

// Divergence locates the first difference between two traces.
type Divergence struct {
	// Frame is the 0-based index of the first differing frame.
	Frame int64
	// Run is the 0-based run index the divergence falls in.
	Run int64
	// Slot anchors the divergence on the timeline (0 for run-boundary
	// frames).
	Slot int64
	// A and B describe the differing frames ("<end of trace>" when one
	// stream is a prefix of the other).
	A, B string
}

// Diff compares two traces frame by frame and returns the first
// divergence, or nil when the streams are identical. Engine tags are
// ignored so a reference trace and a kernel trace of the same run can
// be compared up to their structural difference (the kernel's sleep
// spans replace per-slot records, which Diff reports as the divergence
// slot — exactly where the engines' executions stop being comparable).
func Diff(a, b io.Reader) (*Divergence, error) {
	ra, err := NewReader(a)
	if err != nil {
		return nil, fmt.Errorf("trace a: %w", err)
	}
	rb, err := NewReader(b)
	if err != nil {
		return nil, fmt.Errorf("trace b: %w", err)
	}
	var frame, run int64
	for {
		fa, errA := ra.Next()
		fb, errB := rb.Next()
		endA, endB := errA == io.EOF, errB == io.EOF
		if errA != nil && !endA {
			return nil, fmt.Errorf("trace a: %w", errA)
		}
		if errB != nil && !endB {
			return nil, fmt.Errorf("trace b: %w", errB)
		}
		if endA && endB {
			return nil, nil
		}
		if endA || endB {
			d := &Divergence{Frame: frame, Run: run, A: "<end of trace>", B: "<end of trace>"}
			if !endA {
				d.A = describeFrame(fa)
				d.Slot = fa.Slot()
			}
			if !endB {
				d.B = describeFrame(fb)
				d.Slot = fb.Slot()
			}
			return d, nil
		}
		if normalizeEngine(fa) != normalizeEngine(fb) {
			return &Divergence{
				Frame: frame, Run: run, Slot: fa.Slot(),
				A: describeFrame(fa), B: describeFrame(fb),
			}, nil
		}
		if fa.Kind == FrameRunEnd {
			run++
		}
		frame++
	}
}

// normalizeEngine blanks the engine tags so Diff compares behavior, not
// which engine produced it.
func normalizeEngine(f Frame) Frame {
	f.Run.Engine = 0
	f.Rec.Engine = 0
	return f
}

// describeFrame renders a frame for divergence reports.
func describeFrame(f Frame) string {
	switch f.Kind {
	case FrameRunStart:
		return fmt.Sprintf("run-start{engine=%s sensors=%d seed=%d slots=%d policy=%s}",
			EngineName(f.Run.Engine), f.Run.Sensors, f.Run.Seed, f.Run.Slots, f.Run.Policy)
	case FrameSlot:
		r := f.Rec
		return fmt.Sprintf("slot{t=%d sensor=%d h=%d f=%d prob=%g battery=%g recharge=%g flags=%s}",
			r.Slot, r.Sensor, r.H, r.F, r.Prob, r.Battery, r.Recharge, FlagString(r.Flags))
	case FrameSpan:
		s := f.Span
		return fmt.Sprintf("span{start=%d len=%d events=%d delivered=%g battery=%g}",
			s.Start, s.Len, s.Events, s.Delivered, s.Battery)
	case FrameRunEnd:
		return fmt.Sprintf("run-end{events=%d captures=%d}", f.End.Events, f.End.Captures)
	}
	return fmt.Sprintf("unknown{kind=0x%02x}", f.Kind)
}

// FlagString renders a flag byte as "event|active|captured" etc., or
// "-" when no flag is set.
func FlagString(flags uint8) string {
	if flags == 0 {
		return "-"
	}
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagEvent, "event"},
		{FlagActive, "active"},
		{FlagDenied, "denied"},
		{FlagCaptured, "captured"},
		{FlagSpan, "span"},
	}
	out := ""
	for _, n := range names {
		if flags&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}
