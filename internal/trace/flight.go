package trace

import (
	"encoding/json"
	"net/http"
	"sync"
)

// maxStoredDumps bounds the dumps a recorder keeps in memory; the
// earliest triggers are kept (the first anomaly is the one that
// explains the rest) and every trigger still counts in its DumpReason
// metric.
const maxStoredDumps = 8

// SensorDump is one sensor's ring contents, oldest record first.
type SensorDump struct {
	Sensor  int   `json:"sensor"`
	Records []Rec `json:"records"`
}

// Dump is one flight-recorder dump: the triggering context plus the
// ring contents of the sensors involved.
type Dump struct {
	Reason string `json:"reason"`
	// Slot is the slot at which the trigger fired.
	Slot int64 `json:"slot"`
	// Run identifies the traced run the trigger belongs to.
	Run     RunInfo      `json:"run"`
	Sensors []SensorDump `json:"sensors"`
}

// FlightRecorder keeps a fixed-size ring of the last N decision-relevant
// slot records per sensor. Recording is lock-free — each engine context
// writes only its own sensor's ring — and costs one ring store plus an
// invariant check per record; the mutex guards only the rare dump path
// and the HTTP handler.
//
// Engines call BeginRun/Record/Span/EndRun from the run's own
// goroutines (per-sensor goroutines write disjoint rings on the
// independent path); the handler never reads live rings, only completed
// dumps and the snapshot EndRun takes, so no lock sits on the hot path.
type FlightRecorder struct {
	size int
	mask int64

	rings [][]Rec
	heads []int64
	info  RunInfo
	// capHi is the battery invariant's upper bound (BatteryCap plus
	// rounding slack), precomputed per run so the per-record check is
	// four compares with no arithmetic.
	capHi float64

	invariantFired bool
	outageFired    bool

	mu         sync.Mutex
	dumps      []Dump
	totalDumps int64
	lastRun    []SensorDump // EndRun's snapshot of the final rings
	lastInfo   RunInfo
	lastEnd    RunEnd
	haveRun    bool
}

// NewFlightRecorder returns a recorder keeping the last n records per
// sensor (n is rounded up to a power of two, minimum 16).
func NewFlightRecorder(n int) *FlightRecorder {
	size := 16
	for size < n {
		size <<= 1
	}
	return &FlightRecorder{size: size, mask: int64(size - 1)}
}

// RingSize returns the per-sensor ring capacity.
func (fr *FlightRecorder) RingSize() int { return fr.size }

// BeginRun resets the rings for a new traced run.
func (fr *FlightRecorder) BeginRun(info RunInfo) {
	fr.info = info
	fr.capHi = info.BatteryCap * (1 + 1e-9)
	fr.invariantFired = false
	fr.outageFired = false
	if len(fr.rings) < info.Sensors {
		fr.rings = make([][]Rec, info.Sensors)
		fr.heads = make([]int64, info.Sensors)
		for s := range fr.rings {
			fr.rings[s] = make([]Rec, fr.size)
		}
	}
	for s := range fr.heads {
		fr.heads[s] = 0
	}
}

// Record pushes one slot record onto its sensor's ring and checks the
// state invariants (probability in [0,1], battery in [0,K]); a
// violation triggers an automatic dump, once per run. Records with
// Sensor < 0 (slot markers) carry no sensor state and are skipped.
// The record is passed by pointer so the hot path copies its 48 bytes
// exactly once (caller's stack → ring slot); the pointer is not
// retained. The rare trigger path lives in invariantHit — this call is
// the armed recorder's per-slot cost, priced against the ≤2% budget of
// BENCH_trace.json.
func (fr *FlightRecorder) Record(r *Rec) {
	s := int(r.Sensor)
	if s < 0 || s >= len(fr.rings) {
		return
	}
	h := fr.heads[s]
	fr.rings[s][h&fr.mask] = *r
	fr.heads[s] = h + 1
	if r.Prob < 0 || r.Prob > 1 || r.Battery < 0 || r.Battery > fr.capHi {
		fr.invariantHit(r.Slot, s)
	}
}

// RecordSlot is Record with the fields passed as arguments instead of
// through a Rec. Engines use it on flight-only runs (no full-trace
// writer forcing a Rec into existence anyway): the fields travel in
// registers and are stored exactly once, into the ring slot — the
// cheapest shape a record can take, and the one the ≤2% armed-recorder
// budget of BENCH_trace.json is priced against.
func (fr *FlightRecorder) RecordSlot(slot int64, sensor int32, engine, flags uint8, h, f int32, prob, battery, recharge float64) {
	s := int(sensor)
	if s < 0 || s >= len(fr.rings) {
		return
	}
	hd := fr.heads[s]
	r := &fr.rings[s][hd&fr.mask]
	r.Slot = slot
	r.Sensor = sensor
	r.Engine = engine
	r.Flags = flags
	r.H = h
	r.F = f
	r.Prob = prob
	r.Battery = battery
	r.Recharge = recharge
	fr.heads[s] = hd + 1
	if prob < 0 || prob > 1 || battery < 0 || battery > fr.capHi {
		fr.invariantHit(slot, s)
	}
}

// invariantHit is Record's cold path: dump once per run.
func (fr *FlightRecorder) invariantHit(slot int64, s int) {
	if fr.invariantFired {
		return
	}
	fr.invariantFired = true
	fr.trigger(DumpInvariant, slot, s)
}

// Span records a fast-forwarded sleep run in the (single-sensor)
// kernel's ring as a FlagSpan entry, reusing Rec fields: H holds the
// run length, F the events slept through, Recharge the delivered
// energy, Battery the level at the end of the run.
func (fr *FlightRecorder) Span(sp Span) {
	fr.Record(&Rec{
		Slot:     sp.Start,
		Sensor:   0,
		Engine:   EngineKernel,
		Flags:    FlagSpan,
		H:        int32(sp.Len),
		F:        int32(sp.Events),
		Battery:  sp.Battery,
		Recharge: sp.Delivered,
	})
}

// Fault records a sensor death at slot and dumps that sensor's ring.
func (fr *FlightRecorder) Fault(sensor int, slot int64) {
	fr.trigger(DumpFault, slot, sensor)
}

// OutageMiss records a missed event whose activation attempts all hit
// the energy gate; the first one per run dumps every ring (which sensor
// starved is exactly the open question).
func (fr *FlightRecorder) OutageMiss(slot int64) {
	if fr.outageFired {
		return
	}
	fr.outageFired = true
	sensors := make([]int, len(fr.rings))
	for s := range sensors {
		sensors[s] = s
	}
	fr.trigger(DumpOutageMiss, slot, sensors...)
}

// EndRun snapshots the final rings so the debug handler can serve the
// last completed run without touching live state.
func (fr *FlightRecorder) EndRun(e RunEnd) {
	snap := make([]SensorDump, len(fr.rings))
	for s := range fr.rings {
		snap[s] = fr.snapshotRing(s)
	}
	fr.mu.Lock()
	fr.lastRun = snap
	fr.lastInfo = fr.info
	fr.lastEnd = e
	fr.haveRun = true
	fr.mu.Unlock()
}

// snapshotRing copies sensor s's ring in oldest-first order. Callers
// must own the ring (engine context) or hold fr.mu over a completed
// run's data.
func (fr *FlightRecorder) snapshotRing(s int) SensorDump {
	head := fr.heads[s]
	n := head
	if n > int64(fr.size) {
		n = int64(fr.size)
	}
	out := SensorDump{Sensor: s, Records: make([]Rec, 0, n)}
	for i := head - n; i < head; i++ {
		out.Records = append(out.Records, fr.rings[s][i&fr.mask])
	}
	return out
}

// trigger counts and stores one dump of the given sensors' rings. The
// calling goroutine must own those rings.
func (fr *FlightRecorder) trigger(reason DumpReason, slot int64, sensors ...int) {
	reason.c.Add(1)
	d := Dump{Reason: reason.String(), Slot: slot, Run: fr.info}
	for _, s := range sensors {
		if s >= 0 && s < len(fr.rings) {
			d.Sensors = append(d.Sensors, fr.snapshotRing(s))
		}
	}
	fr.mu.Lock()
	fr.totalDumps++
	if len(fr.dumps) < maxStoredDumps {
		fr.dumps = append(fr.dumps, d)
	}
	fr.mu.Unlock()
}

// Dumps returns the stored dumps (earliest triggers first).
func (fr *FlightRecorder) Dumps() []Dump {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]Dump(nil), fr.dumps...)
}

// TotalDumps returns how many triggers fired (stored or not).
func (fr *FlightRecorder) TotalDumps() int64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.totalDumps
}

// flightView is the JSON document the debug handler serves.
type flightView struct {
	RingSize   int          `json:"ring_size"`
	TotalDumps int64        `json:"total_dumps"`
	Dumps      []Dump       `json:"dumps"`
	LastRun    *lastRunView `json:"last_run,omitempty"`
}

type lastRunView struct {
	Run      RunInfo      `json:"run"`
	Events   int64        `json:"events"`
	Captures int64        `json:"captures"`
	Sensors  []SensorDump `json:"sensors"`
}

// Handler serves the recorder's state as JSON: the stored dumps plus
// the final rings of the last completed run (live rings are never read,
// so a mid-run request sees the previous run — the price of a lock-free
// hot path).
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fr.mu.Lock()
		view := flightView{
			RingSize:   fr.size,
			TotalDumps: fr.totalDumps,
			Dumps:      append([]Dump(nil), fr.dumps...),
		}
		if fr.haveRun {
			view.LastRun = &lastRunView{
				Run:      fr.lastInfo,
				Events:   fr.lastEnd.Events,
				Captures: fr.lastEnd.Captures,
				Sensors:  fr.lastRun,
			}
		}
		fr.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}
