package trace

import (
	"fmt"
	"io"
)

// Summary is a trace-only reconstruction of a run set's results: every
// field below is re-derived purely from the frame stream, then checked
// against each run's RunEnd totals, so a Summary that comes back
// without error is a self-verified audit of the trace. cmd/tracetool's
// replay subcommand compares it against the run manifest's metrics
// block.
type Summary struct {
	Runs    int64
	Records int64
	Spans   int64

	// Events/Captures count event slots (captured by at least one
	// sensor), matching sim.Result and the sim.events / sim.captures
	// counters.
	Events   int64
	Captures int64
	// The miss decomposition: Captures + MissAsleep + MissNoEnergy ==
	// Events (spans contribute all their events to MissAsleep).
	MissAsleep   int64
	MissNoEnergy int64

	// Activations and SensorCaptures count per-sensor records, so with
	// multiple sensors they can exceed the slot-level totals above;
	// Wasted = Activations - SensorCaptures (the sim.wasted_activations
	// identity).
	Activations    int64
	SensorCaptures int64
	Denied         int64
	Wasted         int64

	SpanSlots  int64
	SpanEvents int64

	// QoM is Captures/Events over the whole trace.
	QoM float64
}

// replayRun accumulates one run's reconstruction.
type replayRun struct {
	// eventFlags ORs the flags of every record at each event slot
	// (per-sensor records and slot markers agree by construction; the
	// OR makes replay independent of record order within a slot).
	eventFlags map[int64]uint8
	spanEvents int64
	spanSlots  int64
	started    bool
}

// Replay reconstructs a Summary from a trace stream, verifying each
// run's reconstruction against its RunEnd frame. A trace written with a
// full-trace Writer always replays; flight-recorder rings are not
// replayable (they are bounded windows, not complete histories).
func Replay(r io.Reader) (*Summary, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	sum := &Summary{}
	run := replayRun{}
	for {
		f, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f.Kind {
		case FrameRunStart:
			if run.started {
				return nil, fmt.Errorf("trace: replay: run %d has no RunEnd frame", sum.Runs)
			}
			run = replayRun{eventFlags: make(map[int64]uint8), started: true}
		case FrameSlot:
			if !run.started {
				return nil, fmt.Errorf("trace: replay: slot record before any RunStart")
			}
			sum.Records++
			rec := f.Rec
			if rec.Flags&FlagEvent != 0 {
				run.eventFlags[rec.Slot] |= rec.Flags
			}
			if rec.Sensor >= 0 {
				if rec.Flags&FlagActive != 0 {
					sum.Activations++
				}
				if rec.Flags&FlagDenied != 0 {
					sum.Denied++
				}
				if rec.Flags&FlagCaptured != 0 {
					sum.SensorCaptures++
				}
			}
		case FrameSpan:
			if !run.started {
				return nil, fmt.Errorf("trace: replay: span record before any RunStart")
			}
			sum.Spans++
			run.spanEvents += f.Span.Events
			run.spanSlots += f.Span.Len
		case FrameRunEnd:
			if !run.started {
				return nil, fmt.Errorf("trace: replay: RunEnd without RunStart")
			}
			events := int64(len(run.eventFlags)) + run.spanEvents
			var captures, noenergy int64
			// nondeterm:ok order-independent counting over the slot set
			for _, flags := range run.eventFlags {
				switch {
				case flags&FlagCaptured != 0:
					captures++
				case flags&FlagDenied != 0:
					noenergy++
				}
			}
			if events != f.End.Events || captures != f.End.Captures {
				return nil, fmt.Errorf(
					"trace: replay: run %d reconstructed events=%d captures=%d, but RunEnd recorded events=%d captures=%d",
					sum.Runs, events, captures, f.End.Events, f.End.Captures)
			}
			sum.Runs++
			sum.Events += events
			sum.Captures += captures
			sum.MissNoEnergy += noenergy
			sum.MissAsleep += events - captures - noenergy
			sum.SpanEvents += run.spanEvents
			sum.SpanSlots += run.spanSlots
			run = replayRun{}
		}
	}
	if run.started {
		return nil, fmt.Errorf("trace: replay: trace ends mid-run (missing RunEnd)")
	}
	sum.Wasted = sum.Activations - sum.SensorCaptures
	if sum.Events > 0 {
		sum.QoM = float64(sum.Captures) / float64(sum.Events)
	}
	return sum, nil
}
