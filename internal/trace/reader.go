package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame is one decoded trace frame; Kind discriminates which field is
// meaningful. All fields are comparable values, so two frames can be
// compared with == (Diff relies on this).
type Frame struct {
	Kind byte
	Run  RunInfo
	Rec  Rec
	Span Span
	End  RunEnd
}

// Slot returns the frame's slot anchor for human-facing reports: the
// record's slot, a span's first slot, and 0 for run boundaries.
func (f *Frame) Slot() int64 {
	switch f.Kind {
	case FrameSlot:
		return f.Rec.Slot
	case FrameSpan:
		return f.Span.Start
	}
	return 0
}

// Reader decodes a trace stream produced by Writer.
type Reader struct {
	br   *bufio.Reader
	last int64
}

// maxStringLen bounds decoded string fields so a corrupt length prefix
// cannot trigger a huge allocation.
const maxStringLen = 1 << 16

// NewReader checks the magic header and returns a frame reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<15)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file?)", magic)
	}
	return &Reader{br: br}, nil
}

func (r *Reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.br) }
func (r *Reader) varint() (int64, error)   { return binary.ReadVarint(r.br) }

func (r *Reader) float() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *Reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Next decodes the next frame. It returns io.EOF (exactly) at a clean
// end of stream and a wrapped error on truncation or corruption.
func (r *Reader) Next() (Frame, error) {
	kind, err := r.br.ReadByte()
	if err == io.EOF {
		return Frame{}, io.EOF
	}
	if err != nil {
		return Frame{}, fmt.Errorf("trace: reading frame kind: %w", err)
	}
	f, err := r.body(kind)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("trace: decoding frame kind 0x%02x: %w", kind, err)
	}
	return f, nil
}

func (r *Reader) body(kind byte) (Frame, error) {
	f := Frame{Kind: kind}
	switch kind {
	case FrameRunStart:
		engine, err := r.br.ReadByte()
		if err != nil {
			return f, err
		}
		sensors, err := r.uvarint()
		if err != nil {
			return f, err
		}
		seed, err := r.uvarint()
		if err != nil {
			return f, err
		}
		slots, err := r.uvarint()
		if err != nil {
			return f, err
		}
		capK, err := r.float()
		if err != nil {
			return f, err
		}
		cost, err := r.float()
		if err != nil {
			return f, err
		}
		policy, err := r.string()
		if err != nil {
			return f, err
		}
		dist, err := r.string()
		if err != nil {
			return f, err
		}
		recharge, err := r.string()
		if err != nil {
			return f, err
		}
		f.Run = RunInfo{
			Engine: engine, Sensors: int(sensors), Seed: seed, Slots: int64(slots),
			BatteryCap: capK, Cost: cost, Policy: policy, Dist: dist, Recharge: recharge,
		}
		r.last = 0
	case FrameSlot:
		delta, err := r.varint()
		if err != nil {
			return f, err
		}
		sensor, err := r.varint()
		if err != nil {
			return f, err
		}
		engine, err := r.br.ReadByte()
		if err != nil {
			return f, err
		}
		flags, err := r.br.ReadByte()
		if err != nil {
			return f, err
		}
		h, err := r.varint()
		if err != nil {
			return f, err
		}
		fc, err := r.varint()
		if err != nil {
			return f, err
		}
		prob, err := r.float()
		if err != nil {
			return f, err
		}
		battery, err := r.float()
		if err != nil {
			return f, err
		}
		recharge, err := r.float()
		if err != nil {
			return f, err
		}
		f.Rec = Rec{
			Slot: r.last + delta, Sensor: int32(sensor), Engine: engine, Flags: flags,
			H: int32(h), F: int32(fc), Prob: prob, Battery: battery, Recharge: recharge,
		}
		r.last = f.Rec.Slot
	case FrameSpan:
		delta, err := r.varint()
		if err != nil {
			return f, err
		}
		length, err := r.uvarint()
		if err != nil {
			return f, err
		}
		events, err := r.uvarint()
		if err != nil {
			return f, err
		}
		state, err := r.br.ReadByte()
		if err != nil {
			return f, err
		}
		delivered, err := r.float()
		if err != nil {
			return f, err
		}
		battery, err := r.float()
		if err != nil {
			return f, err
		}
		f.Span = Span{
			Start: r.last + delta, Len: int64(length), Events: int64(events),
			State: state, Delivered: delivered, Battery: battery,
		}
		r.last = f.Span.Start + f.Span.Len - 1
	case FrameRunEnd:
		events, err := r.uvarint()
		if err != nil {
			return f, err
		}
		captures, err := r.uvarint()
		if err != nil {
			return f, err
		}
		f.End = RunEnd{Events: int64(events), Captures: int64(captures)}
	default:
		return f, fmt.Errorf("unknown frame kind")
	}
	return f, nil
}
